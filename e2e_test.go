package datablinder_test

// Process-level end-to-end test: builds the real cloudserver and gateway
// binaries, runs them as separate processes (the paper's Fig. 3
// deployment), and drives a full register/insert/search/aggregate flow
// through the CLI, including a gateway restart against persistent state.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	out := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Dir = "."
	if raw, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, raw)
	}
	return out
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestE2EBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-level e2e in -short mode")
	}
	dir := t.TempDir()
	cloudBin := buildBinary(t, dir, "./cmd/cloudserver", "cloudserver")
	gatewayBin := buildBinary(t, dir, "./cmd/gateway", "gateway")

	addr := freePort(t)
	cloud := exec.Command(cloudBin, "-listen", addr, "-data", filepath.Join(dir, "cloud-data"))
	cloud.Stdout = os.Stderr
	cloud.Stderr = os.Stderr
	if err := cloud.Start(); err != nil {
		t.Fatalf("starting cloudserver: %v", err)
	}
	t.Cleanup(func() {
		cloud.Process.Kill()
		cloud.Wait()
	})
	// Wait for the listener.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cloudserver never came up: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Write the schema and a document to disk for the CLI.
	schemaJSON := `{
	  "name": "observation",
	  "fields": [
	    {"name": "status", "type": "string", "sensitive": true,
	     "annotation": {"class": 4, "ops": ["I", "EQ"], "tactics": ["DET"]}},
	    {"name": "subject", "type": "string", "sensitive": true,
	     "annotation": {"class": 2, "ops": ["I", "EQ"]}},
	    {"name": "value", "type": "float", "sensitive": true,
	     "annotation": {"class": 4, "ops": ["I", "EQ"], "aggs": ["avg"], "tactics": ["DET", "Paillier"]}}
	  ]
	}`
	schemaPath := filepath.Join(dir, "schema.json")
	if err := os.WriteFile(schemaPath, []byte(schemaJSON), 0o600); err != nil {
		t.Fatal(err)
	}
	docPath := filepath.Join(dir, "doc.json")
	doc := map[string]any{
		"id": "e2e-1",
		"fields": map[string]any{
			"status": "final", "subject": "alice", "value": 6.3,
		},
	}
	raw, _ := json.Marshal(doc)
	if err := os.WriteFile(docPath, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	gw := func(args ...string) string {
		t.Helper()
		base := []string{
			"-cloud", addr,
			"-key", filepath.Join(dir, "master.key"),
			"-state", filepath.Join(dir, "gateway.aof"),
		}
		cmd := exec.Command(gatewayBin, append(base, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("gateway %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	if out := gw("register", schemaPath); !strings.Contains(out, "registered schema") {
		t.Fatalf("register output: %s", out)
	}
	if out := gw("insert", "observation", docPath); !strings.Contains(out, "inserted e2e-1") {
		t.Fatalf("insert output: %s", out)
	}
	// Each gw invocation is a fresh gateway process: state restores from
	// the key file + AOF every time, which is itself the restart test.
	if out := gw("get", "observation", "e2e-1"); !strings.Contains(out, "alice") {
		t.Fatalf("get output: %s", out)
	}
	if out := gw("search", "observation", "subject=alice"); !strings.Contains(out, "1 matching") {
		t.Fatalf("search output: %s", out)
	}
	if out := gw("search", "observation", "status=final"); !strings.Contains(out, "1 matching") {
		t.Fatalf("DET search output: %s", out)
	}
	if out := gw("agg", "observation", "value", "avg", "status=final"); !strings.Contains(out, "6.3") {
		t.Fatalf("agg output: %s", out)
	}
	if out := gw("count", "observation"); !strings.Contains(out, "1") {
		t.Fatalf("count output: %s", out)
	}
	// Insert a second doc and re-aggregate.
	doc["id"] = "e2e-2"
	doc["fields"].(map[string]any)["value"] = 4.3
	raw, _ = json.Marshal(doc)
	os.WriteFile(docPath, raw, 0o600)
	gw("insert", "observation", docPath)
	if out := gw("agg", "observation", "value", "avg", "subject=alice"); !strings.Contains(out, "5.3") {
		t.Fatalf("avg after second insert: %s", out)
	}
	if out := gw("delete", "observation", "e2e-1"); !strings.Contains(out, "deleted") {
		t.Fatalf("delete output: %s", out)
	}
	if out := gw("search", "observation", "subject=alice"); !strings.Contains(out, "1 matching") {
		t.Fatalf("search after delete: %s", out)
	}
	if out := gw("plan", "observation", "value"); !strings.Contains(out, "Paillier") {
		t.Fatalf("plan output: %s", out)
	}
	fmt.Fprintln(os.Stderr, "e2e: full CLI flow against separate cloudserver process OK")
}
