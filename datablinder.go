// Package datablinder is a distributed data protection middleware
// supporting search and computation on encrypted data — a from-scratch Go
// reproduction of the system described in:
//
//	Heydari Beni, Lagaisse, Joosen, Aly, Brackx.
//	"DataBlinder: A distributed data protection middleware supporting
//	search and computation on encrypted data." Middleware Industry 2019.
//
// Applications in the trusted zone open a Client (the gateway), annotate
// their document schemas with per-field protection classes (C1..C5) and
// required operations, and use plain CRUD/search/aggregate calls. The
// middleware adaptively selects cryptographic data protection tactics
// (DET, RND, Mitra, Sophos, BIEX-2Lev, BIEX-ZMF, OPE, ORE, Paillier) per
// field, encrypts everything gateway-side, and executes token-based
// protocols against the untrusted cloud side (see cmd/cloudserver).
//
// Quick start:
//
//	client, err := datablinder.Open(ctx, datablinder.Options{InProcessCloud: true})
//	...
//	schema := &datablinder.Schema{Name: "observation", Fields: []datablinder.Field{
//	    datablinder.MustField("status", datablinder.TypeString, "C3, op [I, EQ, BL]"),
//	    datablinder.MustField("value", datablinder.TypeFloat, "C3, op [I, EQ, BL], agg [avg]"),
//	}}
//	err = client.RegisterSchema(ctx, schema)
//	obs := client.Entities("observation")
//	id, err := obs.Insert(ctx, &datablinder.Document{Fields: map[string]any{...}})
//	docs, err := obs.Search(ctx, datablinder.Eq{Field: "status", Value: "final"})
//	avg, err := obs.Aggregate(ctx, "value", datablinder.AggAvg, nil)
package datablinder

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"datablinder/internal/cloud"
	"datablinder/internal/cloud/ring"
	"datablinder/internal/coalesce"
	"datablinder/internal/core"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/planner"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/store/wal"
	"datablinder/internal/tactics"
	"datablinder/internal/transport"
)

// Re-exported data access model types (paper §3.2).
type (
	// Schema describes one document type and its protection annotations.
	Schema = model.Schema
	// Field is a named, typed, annotated schema field.
	Field = model.Field
	// Annotation is the per-field protection annotation.
	Annotation = model.Annotation
	// Document is an application document.
	Document = model.Document
	// FieldType is a schema field type.
	FieldType = model.FieldType
	// Class is a protection class C1..C5.
	Class = model.Class
	// Agg is an aggregate function.
	Agg = model.Agg
	// Op is a data-access operation code.
	Op = model.Op
	// Leakage is the five-level leakage taxonomy.
	Leakage = model.Leakage
	// TacticDescriptor describes a registered tactic (Table 2 metadata).
	TacticDescriptor = spi.Descriptor
)

// Re-exported query predicate types.
type (
	// Predicate is a search query tree node.
	Predicate = core.Predicate
	// Eq matches field == value.
	Eq = core.Eq
	// Range matches a numeric interval.
	Range = core.Range
	// And is a conjunction.
	And = core.And
	// Or is a disjunction.
	Or = core.Or
	// Not is a negation.
	Not = core.Not
)

// Field type constants.
const (
	TypeString = model.TypeString
	TypeInt    = model.TypeInt
	TypeFloat  = model.TypeFloat
	TypeBool   = model.TypeBool
)

// Protection classes (C1 = most protective).
const (
	Class1 = model.Class1
	Class2 = model.Class2
	Class3 = model.Class3
	Class4 = model.Class4
	Class5 = model.Class5
)

// Aggregate functions.
const (
	AggSum   = model.AggSum
	AggAvg   = model.AggAvg
	AggCount = model.AggCount
	AggMin   = model.AggMin
	AggMax   = model.AggMax
)

// Range constructor helpers.
var (
	// Gte matches field >= v.
	Gte = core.Gte
	// Lte matches field <= v.
	Lte = core.Lte
	// Between matches lo <= field <= hi.
	Between = core.Between
)

// Errors surfaced by the client.
var (
	ErrDocumentExists   = core.ErrDocumentExists
	ErrDocumentMissing  = core.ErrDocumentMissing
	ErrSchemaUnknown    = core.ErrSchemaUnknown
	ErrSchemaExists     = core.ErrSchemaExists
	ErrUnsupportedQuery = core.ErrUnsupportedQuery
)

// NewField builds a sensitive field from the paper's annotation notation,
// e.g. NewField("status", TypeString, "C3, op [I, EQ, BL]").
func NewField(name string, ft FieldType, annotation string) (Field, error) {
	ann, err := model.ParseAnnotation(annotation)
	if err != nil {
		return Field{}, err
	}
	return Field{Name: name, Type: ft, Sensitive: true, Annotation: ann}, nil
}

// MustField is NewField panicking on error; use for static schemas.
func MustField(name string, ft FieldType, annotation string) Field {
	f, err := NewField(name, ft, annotation)
	if err != nil {
		panic(err)
	}
	return f
}

// PlainField builds an insensitive (unindexed, but still stored encrypted
// inside the document blob) field.
func PlainField(name string, ft FieldType) Field {
	return Field{Name: name, Type: ft}
}

// Options configures Open.
type Options struct {
	// CloudAddr is the TCP address of a running cloudserver. Mutually
	// exclusive with InProcessCloud and CloudAddrs.
	CloudAddr string
	// CloudAddrs lists the TCP addresses of a sharded cloud tier, one per
	// shard. Order matters: shard identity is positional, so the same list
	// (in the same order) must be passed on every gateway start or routing
	// keys will resolve to the wrong nodes. One address behaves exactly
	// like CloudAddr.
	CloudAddrs []string
	// InProcessCloud embeds a cloud node in this process (single-process
	// demos, tests, benchmarks).
	InProcessCloud bool
	// Shards is the number of embedded cloud nodes in InProcessCloud mode
	// (0 or 1 = single node, the pre-sharding behavior). Persistence paths
	// get a per-shard "shard-<i>" suffix/subdirectory.
	Shards int
	// PoolSize is the per-shard TCP connection pool size (CloudAddr /
	// CloudAddrs modes).
	PoolSize int
	// VirtualNodes is the consistent-hash virtual node count per shard
	// (0 = ring.DefaultVirtualNodes). All gateways of one deployment must
	// agree on it.
	VirtualNodes int
	// DisableCoalescing routes every cloud RPC individually instead of
	// merging concurrent callers' sub-calls into per-shard group commits
	// (see README "Write-path coalescing"). Coalescing is on by default;
	// disable it only for debugging or A/B benchmarking.
	DisableCoalescing bool
	// DisableBinaryWire pins the gateway↔cloud channel to the v1 JSON
	// framing instead of negotiating the binary wire codec (see README
	// "Wire protocol"). Binary is on by default; disable it only for
	// debugging or A/B benchmarking — servers that lack v2 fall back to
	// JSON automatically, no pinning needed.
	DisableBinaryWire bool

	// MasterKeyPath loads (or, with CreateKey, creates) the gateway master
	// key file. Empty means an ephemeral random key.
	MasterKeyPath string
	// CreateKey writes a fresh master key to MasterKeyPath when the file
	// does not exist yet.
	CreateKey bool

	// LocalStatePath enables WAL persistence of gateway state (tactic
	// counters, schemas). Empty means in-memory. A v1 text AOF at this
	// path is migrated on first open.
	LocalStatePath string

	// CloudKVPath / CloudDocDir enable persistence for the in-process
	// cloud node.
	CloudKVPath string
	CloudDocDir string

	// FsyncPolicy selects WAL durability for the local store and any
	// in-process cloud node: "always", "interval" (default), or "never".
	FsyncPolicy string

	// Planner enables cost-based tactic selection: new plans pick the
	// cheapest tactic satisfying the field's leakage budget (live
	// measurements first, descriptor cost priors before any exist)
	// instead of the classic highest-tolerated-leakage rule. Annotation
	// tactic pins remain hard overrides either way.
	Planner bool
	// ReplanInterval, with Planner set, starts a background loop that
	// periodically re-evaluates every unpinned field against the live
	// cost model and online re-indexes fields whose plan is beaten by at
	// least the hysteresis margin. Zero means no background loop — call
	// Client.Replan explicitly.
	ReplanInterval time.Duration
	// PlannerHysteresis is the fractional cost advantage a challenger
	// plan needs before a replan triggers a migration (default 0.3).
	PlannerHysteresis float64
	// MigrateThrottle pauses online re-index scans between batches to
	// bound the migration's impact on live traffic.
	MigrateThrottle time.Duration
}

// Client is the application-facing gateway handle (the Schema, Entities
// and Keys interfaces of the paper's Fig. 3).
type Client struct {
	engine *core.Engine
	local  *kvstore.Store
	conn   transport.Conn
	nodes  []*cloud.Node // non-empty in in-process mode (one per shard)
}

// Open assembles a gateway: key management, local state, cloud channel,
// tactic registry, and the middleware core. It restores previously
// registered schemas from persistent local state.
func Open(ctx context.Context, opts Options) (*Client, error) {
	remote := opts.CloudAddr != "" || len(opts.CloudAddrs) > 0
	if !remote && !opts.InProcessCloud {
		return nil, errors.New("datablinder: Options needs CloudAddr(s) or InProcessCloud")
	}
	if remote && opts.InProcessCloud {
		return nil, errors.New("datablinder: CloudAddr(s) and InProcessCloud are mutually exclusive")
	}
	if opts.CloudAddr != "" && len(opts.CloudAddrs) > 0 {
		return nil, errors.New("datablinder: CloudAddr and CloudAddrs are mutually exclusive")
	}

	var provider *keys.Store
	var err error
	switch {
	case opts.MasterKeyPath == "":
		provider, err = keys.NewRandomStore()
	default:
		provider, err = keys.Load(opts.MasterKeyPath)
		if err != nil && opts.CreateKey {
			provider, err = keys.NewRandomStore()
			if err == nil {
				err = provider.Save(opts.MasterKeyPath)
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("datablinder: key setup: %w", err)
	}

	fsync, err := wal.ParsePolicy(opts.FsyncPolicy)
	if err != nil {
		return nil, fmt.Errorf("datablinder: %w", err)
	}
	var local *kvstore.Store
	if opts.LocalStatePath != "" {
		local, err = kvstore.Open(opts.LocalStatePath, kvstore.Options{Fsync: fsync})
		if err != nil {
			return nil, fmt.Errorf("datablinder: local state: %w", err)
		}
	} else {
		local = kvstore.New()
	}

	client := &Client{local: local}
	if opts.InProcessCloud {
		n := opts.Shards
		if n < 1 {
			n = 1
		}
		conns := make([]transport.Conn, 0, n)
		for i := 0; i < n; i++ {
			kvPath, docDir := opts.CloudKVPath, opts.CloudDocDir
			if n > 1 {
				// Each shard persists independently, like separate nodes.
				if kvPath != "" {
					kvPath = fmt.Sprintf("%s.shard-%d", kvPath, i)
				}
				if docDir != "" {
					docDir = filepath.Join(docDir, fmt.Sprintf("shard-%d", i))
				}
			}
			node, err := cloud.NewNode(cloud.Options{KVPath: kvPath, DocDir: docDir, FsyncPolicy: opts.FsyncPolicy})
			if err != nil {
				client.Close()
				return nil, err
			}
			client.nodes = append(client.nodes, node)
			if opts.DisableBinaryWire {
				conns = append(conns, transport.NewLoopbackJSON(node.Mux))
			} else {
				conns = append(conns, transport.NewLoopback(node.Mux))
			}
		}
		client.conn = shardConn(conns, opts.VirtualNodes)
	} else {
		addrs := opts.CloudAddrs
		if len(addrs) == 0 {
			addrs = []string{opts.CloudAddr}
		}
		conns := make([]transport.Conn, 0, len(addrs))
		for _, addr := range addrs {
			conn, err := transport.Dial(addr, transport.DialOptions{
				PoolSize:      opts.PoolSize,
				DisableBinary: opts.DisableBinaryWire,
			})
			if err != nil {
				for _, c := range conns {
					c.Close()
				}
				local.Close()
				return nil, fmt.Errorf("datablinder: dialing shard %s: %w", addr, err)
			}
			conns = append(conns, conn)
		}
		client.conn = shardConn(conns, opts.VirtualNodes)
	}

	registry, err := tactics.Registry()
	if err != nil {
		client.Close()
		return nil, err
	}
	engine, err := core.NewEngine(core.Config{
		Keys:              provider,
		Cloud:             client.conn,
		Local:             local,
		Registry:          registry,
		Coalesce:          coalesce.Options{Disabled: opts.DisableCoalescing},
		Planner:           opts.Planner,
		ReplanInterval:    opts.ReplanInterval,
		PlannerHysteresis: opts.PlannerHysteresis,
		MigrateThrottle:   opts.MigrateThrottle,
	})
	if err != nil {
		client.Close()
		return nil, err
	}
	client.engine = engine
	if err := engine.LoadSchemas(ctx); err != nil {
		client.Close()
		return nil, fmt.Errorf("datablinder: restoring schemas: %w", err)
	}
	return client, nil
}

// shardConn wraps shard connections for the engine: a single connection
// passes through untouched (the pre-sharding fast path — no ring, no
// hashing), several front a consistent-hash ring client.
func shardConn(conns []transport.Conn, vnodes int) transport.Conn {
	if len(conns) == 1 {
		return conns[0]
	}
	return ring.NewClient(conns, vnodes)
}

// Close stops background planner work, drains the write coalescers, and
// releases the cloud connection and local state. It is idempotent.
func (c *Client) Close() error {
	var first error
	if c.engine != nil {
		c.engine.Close()
	}
	if c.conn != nil {
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, node := range c.nodes {
		if err := node.Close(); err != nil && first == nil {
			first = err
		}
	}
	if c.local != nil {
		if err := c.local.Close(); err != nil && first == nil && !errors.Is(err, kvstore.ErrClosed) {
			first = err
		}
	}
	return first
}

// RegisterSchema validates and registers a schema, running adaptive
// tactic selection for every sensitive field (the Schema interface).
func (c *Client) RegisterSchema(ctx context.Context, s *Schema) error {
	return c.engine.RegisterSchema(ctx, s)
}

// Schemas lists the registered schema names.
func (c *Client) Schemas() []string { return c.engine.Schemas() }

// CoalesceStats reports the write coalescers' aggregated counters —
// merge rate, flushes by trigger, batch-size histogram (all zero when
// DisableCoalescing was set). The same numbers are exported process-wide
// on the -pprof endpoint's /debug/vars as "datablinder_coalesce".
func (c *Client) CoalesceStats() coalesce.Stats { return c.engine.CoalesceStats() }

// TacticCatalog returns the descriptors of every registered tactic
// (Table 2 of the paper is generated from this).
func (c *Client) TacticCatalog() []TacticDescriptor {
	return c.engine.Registry().Descriptors()
}

// FieldPlan reports which tactic serves each operation of a field, plus
// the field's effective protection class under the weakest-link rule.
func (c *Client) FieldPlan(schema, field string) (ops map[Op]string, aggs map[Agg]string, effective Class, err error) {
	plan, err := c.engine.Plan(schema, field)
	if err != nil {
		return nil, nil, 0, err
	}
	cls, err := c.engine.EffectiveClass(schema, field)
	if err != nil {
		return nil, nil, 0, err
	}
	return plan.ByOp, plan.ByAgg, cls, nil
}

// TacticStats snapshots the live per-tactic per-operation cost counters
// (EWMA latency, sample counts) feeding the planner. The same numbers are
// exported process-wide on /debug/vars as "datablinder_tactics".
func (c *Client) TacticStats() planner.Snapshot { return c.engine.TacticStats() }

// Replan re-evaluates every unpinned sensitive field against the live
// cost model and online re-indexes those whose current plan is beaten by
// at least the hysteresis margin. It returns the "schema.field" names it
// migrated. Fields pinned via annotation `tactic [...]` are never touched.
func (c *Client) Replan(ctx context.Context) ([]string, error) {
	return c.engine.Replan(ctx)
}

// Migrate re-indexes one field onto the named tactic online: existing
// documents are re-indexed in background batches while reads and writes
// continue, then the plan cuts over atomically. It returns
// core.ErrMigrationActive when the field is already migrating.
func (c *Client) Migrate(ctx context.Context, schema, field, tactic string) error {
	return c.engine.Migrate(ctx, schema, field, tactic)
}

// MigrationsActive lists the "schema.field" names currently mid-migration.
func (c *Client) MigrationsActive() []string { return c.engine.MigrationsActive() }

// Entities returns the data-access handle for one schema (the Entities
// interface).
func (c *Client) Entities(schema string) *Collection {
	return &Collection{engine: c.engine, schema: schema}
}

// Collection is the per-schema data access API.
type Collection struct {
	engine *core.Engine
	schema string
}

// Insert stores a new document and indexes its sensitive fields. With an
// empty doc.ID an id is generated; the stored id is returned.
func (col *Collection) Insert(ctx context.Context, doc *Document) (string, error) {
	return col.engine.Insert(ctx, col.schema, doc)
}

// Get retrieves and decrypts one document by id.
func (col *Collection) Get(ctx context.Context, id string) (*Document, error) {
	return col.engine.Get(ctx, col.schema, id)
}

// Update replaces a document, re-indexing changed fields.
func (col *Collection) Update(ctx context.Context, doc *Document) error {
	return col.engine.Update(ctx, col.schema, doc)
}

// Delete removes a document and all its index entries.
func (col *Collection) Delete(ctx context.Context, id string) error {
	return col.engine.Delete(ctx, col.schema, id)
}

// Count returns the number of stored documents.
func (col *Collection) Count(ctx context.Context) (int, error) {
	return col.engine.Count(ctx, col.schema)
}

// SearchIDs evaluates a predicate and returns matching ids, sorted.
// A nil predicate matches everything.
func (col *Collection) SearchIDs(ctx context.Context, p Predicate) ([]string, error) {
	return col.engine.SearchIDs(ctx, col.schema, p)
}

// Search evaluates a predicate and returns decrypted documents.
func (col *Collection) Search(ctx context.Context, p Predicate) ([]*Document, error) {
	return col.engine.Search(ctx, col.schema, p)
}

// Compact runs index maintenance for a hot (field, value) keyword where
// the selected tactic supports it (BIEX 2Lev packing). It changes no
// results, only read efficiency; fields without compactable tactics are a
// no-op.
func (col *Collection) Compact(ctx context.Context, field string, value any) error {
	return col.engine.Compact(ctx, col.schema, field, value)
}

// Aggregate computes an aggregate of field over matching documents
// (nil predicate = all). Sum and average execute homomorphically on the
// cloud (Paillier); count is set cardinality; min/max fall back to
// gateway-side computation.
func (col *Collection) Aggregate(ctx context.Context, field string, agg Agg, where Predicate) (float64, error) {
	return col.engine.Aggregate(ctx, col.schema, field, agg, where)
}
