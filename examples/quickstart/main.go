// Quickstart: the smallest end-to-end DataBlinder program.
//
// It opens a gateway with an embedded (in-process) cloud node, registers a
// two-field schema, inserts a handful of documents, and runs an equality
// search and a homomorphic average — everything the cloud side ever sees
// is ciphertext.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"datablinder"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// An in-process cloud keeps the quickstart self-contained; production
	// deployments point CloudAddr at a cmd/cloudserver instance instead.
	client, err := datablinder.Open(ctx, datablinder.Options{InProcessCloud: true})
	if err != nil {
		return err
	}
	defer client.Close()

	// Annotate the schema: protection class + required operations per
	// field. The middleware selects tactics adaptively from this alone.
	schema := &datablinder.Schema{
		Name: "vitals",
		Fields: []datablinder.Field{
			datablinder.MustField("patient", datablinder.TypeString, "C2, op [I, EQ]"),
			datablinder.MustField("heart_rate", datablinder.TypeFloat, "C4, op [I, EQ], agg [avg], tactic [DET, Paillier]"),
		},
	}
	if err := client.RegisterSchema(ctx, schema); err != nil {
		return err
	}
	for _, f := range []string{"patient", "heart_rate"} {
		ops, aggs, effective, err := client.FieldPlan("vitals", f)
		if err != nil {
			return err
		}
		fmt.Printf("field %-11s -> ops %v aggs %v (effective protection %s)\n", f, ops, aggs, effective)
	}

	vitals := client.Entities("vitals")
	readings := []struct {
		patient string
		hr      float64
	}{
		{"alice", 62}, {"alice", 71}, {"alice", 64}, {"bob", 80}, {"bob", 85},
	}
	for _, r := range readings {
		id, err := vitals.Insert(ctx, &datablinder.Document{
			Fields: map[string]any{"patient": r.patient, "heart_rate": r.hr},
		})
		if err != nil {
			return err
		}
		fmt.Printf("inserted %s (%s, %.0f bpm)\n", id, r.patient, r.hr)
	}

	// Equality search runs through the Mitra SSE protocol: the cloud sees
	// only pseudo-random tokens, never "alice".
	docs, err := vitals.Search(ctx, datablinder.Eq{Field: "patient", Value: "alice"})
	if err != nil {
		return err
	}
	fmt.Printf("\nalice has %d readings:\n", len(docs))
	for _, d := range docs {
		fmt.Printf("  %s -> %.0f bpm\n", d.ID, d.Fields["heart_rate"])
	}

	// The average is computed homomorphically on the cloud (Paillier): the
	// individual readings are never decrypted server-side.
	avg, err := vitals.Aggregate(ctx, "heart_rate", datablinder.AggAvg,
		datablinder.Eq{Field: "patient", Value: "alice"})
	if err != nil {
		return err
	}
	fmt.Printf("\navg(heart_rate) for alice = %.2f bpm (computed on encrypted data)\n", avg)
	return nil
}
