// E-finance: an invoice-processing scenario modeled on the paper's other
// industrial context (UnifiedPost-style e-finance). Invoices carry
// customer identifiers, amounts, and due dates; the business outsources
// them to the cloud but must still run dunning queries (overdue invoices
// per customer), totals, and reconciliation lookups — all on ciphertext.
//
// It also demonstrates crypto agility: the same schema annotated once with
// the ORE range tactic and once with OPE, without touching application
// code — only the annotation changes.
//
// Run with:
//
//	go run ./examples/efinance
package main

import (
	"context"
	"fmt"
	"log"

	"datablinder"
)

func invoiceSchema(rangeTactic string) *datablinder.Schema {
	return &datablinder.Schema{
		Name: "invoice-" + rangeTactic,
		Fields: []datablinder.Field{
			datablinder.PlainField("number", datablinder.TypeString),
			datablinder.MustField("customer", datablinder.TypeString, "C2, op [I, EQ]"),
			datablinder.MustField("state", datablinder.TypeString, "C4, op [I, EQ], tactic [DET]"),
			datablinder.MustField("due", datablinder.TypeInt,
				"C5, op [I, EQ, RG], tactic [DET, "+rangeTactic+"]"),
			datablinder.MustField("amount_cents", datablinder.TypeInt,
				"C5, op [I, RG], agg [sum, avg], tactic ["+rangeTactic+", Paillier]"),
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	client, err := datablinder.Open(ctx, datablinder.Options{InProcessCloud: true})
	if err != nil {
		return err
	}
	defer client.Close()

	// Crypto agility: the application logic below is identical for both
	// range tactics; only the schema annotation differs.
	for _, rangeTactic := range []string{"OPE", "ORE"} {
		fmt.Printf("==== range tactic: %s ====\n", rangeTactic)
		if err := demo(ctx, client, rangeTactic); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func demo(ctx context.Context, client *datablinder.Client, rangeTactic string) error {
	schema := invoiceSchema(rangeTactic)
	if err := client.RegisterSchema(ctx, schema); err != nil {
		return err
	}
	invoices := client.Entities(schema.Name)

	// due dates are days since epoch for readability.
	seed := []struct {
		number   string
		customer string
		state    string
		due      int64
		cents    int64
	}{
		{"INV-001", "acme", "open", 19900, 125_00},
		{"INV-002", "acme", "open", 19930, 89_50},
		{"INV-003", "acme", "paid", 19870, 42_00},
		{"INV-004", "globex", "open", 19880, 1_250_00},
		{"INV-005", "globex", "disputed", 19910, 310_75},
		{"INV-006", "initech", "open", 19860, 77_10},
	}
	for _, in := range seed {
		_, err := invoices.Insert(ctx, &datablinder.Document{
			ID: in.number,
			Fields: map[string]any{
				"number": in.number, "customer": in.customer,
				"state": in.state, "due": in.due, "amount_cents": in.cents,
			},
		})
		if err != nil {
			return err
		}
	}

	// Dunning: open invoices due on or before day 19900.
	today := int64(19900)
	overdue, err := invoices.SearchIDs(ctx, datablinder.And{Preds: []datablinder.Predicate{
		datablinder.Eq{Field: "state", Value: "open"},
		datablinder.Lte("due", today),
	}})
	if err != nil {
		return err
	}
	fmt.Printf("overdue open invoices (due <= %d): %v\n", today, overdue)

	// Reconciliation lookup: all invoices for one customer (Mitra SSE).
	docs, err := invoices.Search(ctx, datablinder.Eq{Field: "customer", Value: "acme"})
	if err != nil {
		return err
	}
	fmt.Printf("acme has %d invoices:\n", len(docs))
	for _, d := range docs {
		fmt.Printf("  %-8s %-9s due=%v amount=%.2f EUR\n",
			d.ID, d.Fields["state"], d.Fields["due"],
			float64(d.Fields["amount_cents"].(int64))/100)
	}

	// Exposure: total outstanding amount, homomorphically (Paillier).
	total, err := invoices.Aggregate(ctx, "amount_cents", datablinder.AggSum,
		datablinder.Eq{Field: "state", Value: "open"})
	if err != nil {
		return err
	}
	fmt.Printf("total open exposure = %.2f EUR (cloud-side homomorphic sum)\n", total/100)

	// Large invoices via range query on the encrypted amount column.
	big, err := invoices.SearchIDs(ctx, datablinder.Gte("amount_cents", int64(300_00)))
	if err != nil {
		return err
	}
	fmt.Printf("invoices >= 300 EUR: %v\n", big)
	return nil
}
