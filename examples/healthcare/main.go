// Healthcare: the paper's §5.1 validation case — FHIR-compliant medical
// Observation documents with the exact per-field annotations from the
// paper, demonstrating that adaptive tactic selection reproduces the
// paper's selection table and that boolean, range, and aggregate queries
// all run over encrypted data.
//
// Run with:
//
//	go run ./examples/healthcare
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"datablinder"
)

// observationSchema carries the §5.1 annotations:
//
//	status     C3, op [I, EQ, BL]
//	code       C3, op [I, EQ, BL]
//	subject    C2, op [I, EQ]
//	effective  C5, op [I, EQ, BL, RG]
//	issued     C5, op [I, EQ, BL, RG]
//	performer  C1, op [I]
//	value      C3, op [I, EQ, BL], agg [avg]
func observationSchema() *datablinder.Schema {
	return &datablinder.Schema{
		Name: "observation",
		Fields: []datablinder.Field{
			datablinder.PlainField("identifier", datablinder.TypeString),
			datablinder.MustField("status", datablinder.TypeString, "C3, op [I, EQ, BL]"),
			datablinder.MustField("code", datablinder.TypeString, "C3, op [I, EQ, BL]"),
			datablinder.MustField("subject", datablinder.TypeString, "C2, op [I, EQ]"),
			datablinder.MustField("effective", datablinder.TypeInt, "C5, op [I, EQ, BL, RG], tactic [DET, OPE, BIEX-2Lev]"),
			datablinder.MustField("issued", datablinder.TypeInt, "C5, op [I, EQ, BL, RG], tactic [DET, OPE, BIEX-2Lev]"),
			datablinder.MustField("performer", datablinder.TypeString, "C1, op [I]"),
			datablinder.MustField("value", datablinder.TypeFloat, "C3, op [I, EQ, BL], agg [avg]"),
			datablinder.MustField("interpretation", datablinder.TypeString, "C3, op [I, EQ, BL]"),
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	client, err := datablinder.Open(ctx, datablinder.Options{InProcessCloud: true})
	if err != nil {
		return err
	}
	defer client.Close()

	schema := observationSchema()
	if err := client.RegisterSchema(ctx, schema); err != nil {
		return err
	}

	// Show the adaptive selection — this reproduces the paper's §5.1
	// tactic-selection table.
	fmt.Println("adaptive tactic selection (paper §5.1 table):")
	for _, f := range schema.SensitiveFields() {
		ops, aggs, effective, err := client.FieldPlan("observation", f.Name)
		if err != nil {
			return err
		}
		tactics := map[string]bool{}
		for _, t := range ops {
			tactics[t] = true
		}
		for _, t := range aggs {
			tactics[t] = true
		}
		names := make([]string, 0, len(tactics))
		for t := range tactics {
			names = append(names, t)
		}
		fmt.Printf("  %-14s %-26s -> %-22s (effective %s)\n",
			f.Name, f.Annotation.String(), strings.Join(names, ", "), effective)
	}

	obs := client.Entities("observation")

	// The paper's example document f001: a glucose blood-test observation.
	f001 := &datablinder.Document{ID: "f001", Fields: map[string]any{
		"identifier": "6323", "status": "final", "code": "glucose",
		"subject": "John Doe", "effective": int64(1359966610),
		"issued": int64(1362407410), "performer": "John Smith",
		"value": 6.3, "interpretation": "High",
	}}
	if _, err := obs.Insert(ctx, f001); err != nil {
		return err
	}
	more := []*datablinder.Document{
		{ID: "f002", Fields: map[string]any{
			"status": "final", "code": "glucose", "subject": "John Doe",
			"effective": int64(1360570000), "issued": int64(1360590000),
			"performer": "John Smith", "value": 5.4, "interpretation": "normal"}},
		{ID: "f003", Fields: map[string]any{
			"status": "final", "code": "heart-rate", "subject": "John Doe",
			"effective": int64(1361170000), "issued": int64(1361190000),
			"performer": "Mary Major", "value": 74.0, "interpretation": "normal"}},
		{ID: "f004", Fields: map[string]any{
			"status": "preliminary", "code": "glucose", "subject": "Carol Cole",
			"effective": int64(1361770000), "issued": int64(1361790000),
			"performer": "Mary Major", "value": 11.7, "interpretation": "critical"}},
	}
	for _, d := range more {
		if _, err := obs.Insert(ctx, d); err != nil {
			return err
		}
	}

	// Boolean search (BIEX-2Lev): "finding the patient with a particular
	// condition" — final AND glucose AND NOT normal.
	fmt.Println("\nboolean query: status=final AND code=glucose AND NOT interpretation=normal")
	ids, err := obs.SearchIDs(ctx, datablinder.And{Preds: []datablinder.Predicate{
		datablinder.Eq{Field: "status", Value: "final"},
		datablinder.Eq{Field: "code", Value: "glucose"},
		datablinder.Not{Pred: datablinder.Eq{Field: "interpretation", Value: "normal"}},
	}})
	if err != nil {
		return err
	}
	fmt.Printf("  -> %v\n", ids)

	// Range query (OPE): observations in a date window.
	fmt.Println("\nrange query: effective in [1360000000, 1361500000]")
	ids, err = obs.SearchIDs(ctx, datablinder.Between("effective", 1360000000, 1361500000))
	if err != nil {
		return err
	}
	fmt.Printf("  -> %v\n", ids)

	// Aggregated search (Paillier): average glucose for John Doe — the
	// paper's motivating "calculating the average ..." query.
	avg, err := obs.Aggregate(ctx, "value", datablinder.AggAvg,
		datablinder.And{Preds: []datablinder.Predicate{
			datablinder.Eq{Field: "subject", Value: "John Doe"},
			datablinder.Eq{Field: "code", Value: "glucose"},
		}})
	if err != nil {
		return err
	}
	fmt.Printf("\navg glucose for John Doe = %.2f mmol/L (homomorphic, cloud-side)\n", avg)

	// Updates re-index: f004 gets finalized.
	f004, err := obs.Get(ctx, "f004")
	if err != nil {
		return err
	}
	f004.Fields["status"] = "final"
	if err := obs.Update(ctx, f004); err != nil {
		return err
	}
	ids, err = obs.SearchIDs(ctx, datablinder.Eq{Field: "status", Value: "preliminary"})
	if err != nil {
		return err
	}
	fmt.Printf("\nafter finalizing f004, preliminary observations: %v\n", ids)
	return nil
}
