// Command blinderbench reproduces the paper's §5.2 performance evaluation:
// Figure 5 (per-operation and overall throughput of S_A / S_B / S_C) and
// the overall latency table (avg, p50, p75, p99).
//
// Usage:
//
//	blinderbench                      # laptop-scale run of both experiments
//	blinderbench -experiment fig5     # only the throughput comparison
//	blinderbench -experiment latency  # only the latency table
//	blinderbench -experiment concurrency   # fan-out + pipelining speedups
//	blinderbench -experiment hotpath  # A/B the crypto hot-path caches
//	blinderbench -experiment sharding # 1/2/4/8-shard cloud-tier scaling
//	blinderbench -experiment coalesce # write-path group commit A/B
//	blinderbench -experiment persist  # WAL vs text-AOF durability + recovery
//	blinderbench -experiment planner  # adaptive tactic planner vs static assignments
//	blinderbench -requests 151000 -users 1000   # the paper's full scale
//
// Each scenario runs against a fresh in-process cloud node over the
// loopback transport, so differences isolate tactic cost (S_B vs S_A) and
// middleware cost (S_C vs S_B) rather than network jitter — the paper's
// two headline numbers (~44% and ~1.4% overall throughput loss).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"datablinder/internal/bench"
	"datablinder/internal/cloud"
	"datablinder/internal/keys"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

func main() {
	experiment := flag.String("experiment", "all", "fig5 | latency | concurrency | hotpath | sharding | coalesce | wire | persist | planner | all")
	plannerOut := flag.String("planner-out", "BENCH_planner.json", "output path for the planner experiment's JSON result")
	hotpathOut := flag.String("hotpath-out", "BENCH_hotpath.json", "output path for the hotpath experiment's JSON result")
	persistOut := flag.String("persist-out", "BENCH_persist.json", "output path for the persist experiment's JSON result")
	wireOut := flag.String("wire-out", "BENCH_wire.json", "output path for the wire experiment's JSON result")
	shardingOut := flag.String("sharding-out", "BENCH_sharding.json", "output path for the sharding experiment's JSON result")
	coalesceOut := flag.String("coalesce-out", "BENCH_coalesce.json", "output path for the coalesce experiment's JSON result")
	users := flag.Int("users", 64, "concurrent virtual users (paper: 1000)")
	requests := flag.Int("requests", 4500, "total requests, split insert/search/aggregate (paper: ~151000)")
	seed := flag.Int64("seed", 1, "workload seed")
	netDelay := flag.Duration("netdelay", 2*time.Millisecond, "simulated gateway->cloud RTT per RPC (paper deployment spanned private and public clouds); 0 disables")
	flag.Parse()
	netDelaySet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "netdelay" {
			netDelaySet = true
		}
	})

	if err := run(*experiment, *users, *requests, *seed, *netDelay, netDelaySet, *hotpathOut, *shardingOut, *coalesceOut, *wireOut, *persistOut, *plannerOut); err != nil {
		log.Fatalf("blinderbench: %v", err)
	}
}

func run(experiment string, users, requests int, seed int64, netDelay time.Duration, netDelaySet bool, hotpathOut, shardingOut, coalesceOut, wireOut, persistOut, plannerOut string) error {
	switch experiment {
	case "fig5", "latency", "concurrency", "hotpath", "sharding", "coalesce", "wire", "persist", "planner", "all":
	default:
		return fmt.Errorf("unknown experiment %q (want fig5, latency, concurrency, hotpath, sharding, coalesce, wire, persist, planner, or all)", experiment)
	}

	if experiment == "planner" || experiment == "all" {
		cfg := bench.DefaultPlannerConfig()
		cfg.Seed = seed
		fmt.Fprintf(os.Stderr, "running planner experiment (rf corpus %d, %d inserts + %d queries per arm, %d callers)...\n",
			cfg.ReadCorpus, cfg.Inserts, cfg.Queries, cfg.Callers)
		r, err := bench.RunPlanner(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatPlanner(r))
		if err := bench.WritePlannerJSON(r, plannerOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", plannerOut)
		if experiment == "planner" {
			return nil
		}
	}

	if experiment == "persist" || experiment == "all" {
		cfg := bench.DefaultPersistConfig()
		cfg.Seed = seed
		fmt.Fprintf(os.Stderr, "running persist experiment (%d Set ops per cell, policies %v, callers %v, recovery over %d records)...\n",
			cfg.Inserts, cfg.Policies, cfg.CallerCounts, cfg.RecoveryRecords)
		r, err := bench.RunPersist(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatPersist(r))
		if err := bench.WritePersistJSON(r, persistOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", persistOut)
		if experiment == "persist" {
			return nil
		}
	}

	if experiment == "wire" || experiment == "all" {
		cfg := bench.DefaultWireConfig()
		cfg.Seed = seed
		fmt.Fprintf(os.Stderr, "running wire experiment (%d TCP shards, %d inserts + %d searches per cell, callers %v)...\n",
			cfg.Shards, cfg.Docs, cfg.Searches, cfg.CallerCounts)
		r, err := bench.RunWire(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatWire(r))
		if err := bench.WriteWireJSON(r, wireOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", wireOut)
		if experiment == "wire" {
			return nil
		}
	}

	if experiment == "coalesce" || experiment == "all" {
		cfg := bench.DefaultCoalesceConfig()
		cfg.Seed = seed
		fmt.Fprintf(os.Stderr, "running coalesce experiment (%d shards, %d callers, %d inserts + %d gets per arm)...\n",
			cfg.Shards, cfg.Callers, cfg.Inserts, cfg.Gets)
		r, err := bench.RunCoalesce(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatCoalesce(r))
		if err := bench.WriteCoalesceJSON(r, coalesceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", coalesceOut)
		if experiment == "coalesce" {
			return nil
		}
	}

	if experiment == "sharding" || experiment == "all" {
		cfg := bench.DefaultShardingConfig()
		cfg.Seed = seed
		fmt.Fprintf(os.Stderr, "running sharding experiment (shard counts %v, %d inserts + %d queries per tier)...\n",
			cfg.ShardCounts, cfg.Inserts, cfg.EqQueries+cfg.BoolQueries+cfg.RangeQueries)
		r, err := bench.RunSharding(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatSharding(r))
		if err := bench.WriteShardingJSON(r, shardingOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", shardingOut)
		if experiment == "sharding" {
			return nil
		}
	}

	if experiment == "hotpath" || experiment == "all" {
		cfg := bench.DefaultHotpathConfig()
		cfg.Seed = seed
		fmt.Fprintf(os.Stderr, "running hotpath experiment (%d inserts/arm, %d-bit Paillier)...\n", cfg.Docs, cfg.PaillierBits)
		r, err := bench.RunHotpath(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatHotpath(r))
		if err := bench.WriteHotpathJSON(r, hotpathOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", hotpathOut)
		if experiment == "hotpath" {
			return nil
		}
	}

	if experiment == "concurrency" || experiment == "all" {
		cfg := bench.DefaultConcurrencyConfig()
		// The concurrency experiment keeps its own higher default RTT (round
		// trips must dominate for the speedups to be meaningful); an explicit
		// -netdelay still overrides it.
		if netDelaySet {
			cfg.NetDelay = netDelay
		}
		fmt.Fprintf(os.Stderr, "running concurrency experiment (%d clients, simulated RTT %v)...\n", cfg.Clients, cfg.NetDelay)
		r, err := bench.RunConcurrency(context.Background(), cfg)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatConcurrency(r))
		if experiment == "concurrency" {
			return nil
		}
	}

	newEnv := func() (transport.Conn, keys.Provider, *kvstore.Store, func(), error) {
		node, err := cloud.NewNode(cloud.Options{})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		kp, err := keys.NewRandomStore()
		if err != nil {
			node.Close()
			return nil, nil, nil, nil, err
		}
		local := kvstore.New()
		cleanup := func() {
			node.Close()
			local.Close()
		}
		return transport.NewLoopback(node.Mux), kp, local, cleanup, nil
	}

	base := bench.Config{Users: users, Requests: requests, Seed: seed, NetDelay: netDelay}
	fmt.Fprintf(os.Stderr, "running S_A, S_B, S_C with %d users x %d requests each (simulated RTT %v)...\n", users, requests, netDelay)
	a, b, c, err := bench.RunAll(context.Background(), base, newEnv)
	if err != nil {
		return err
	}

	if experiment == "fig5" || experiment == "all" {
		fmt.Println(bench.FormatFigure5(a, b, c))
	}
	if experiment == "latency" || experiment == "all" {
		fmt.Println(bench.FormatLatencyTable(a, b, c))
	}
	return nil
}
