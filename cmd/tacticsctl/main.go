// Command tacticsctl inspects DataBlinder's tactic catalog and SPI:
//
//	tacticsctl table2            # regenerate the paper's Table 2 from the registry
//	tacticsctl table1            # regenerate the paper's Table 1 (SPI map)
//	tacticsctl plan <schema.json> # show adaptive tactic selection for a schema file
//
// The schema file is the JSON encoding of a datablinder.Schema.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/tactics"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tacticsctl table2 | table1 | leakage | plan <schema.json>")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "table2":
		err = printTable2()
	case "table1":
		err = printTable1()
	case "leakage":
		err = printLeakage()
	case "plan":
		if len(os.Args) < 3 {
			err = fmt.Errorf("plan needs a schema file")
		} else {
			err = printPlan(os.Args[2])
		}
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		log.Fatalf("tacticsctl: %v", err)
	}
}

// printTable2 regenerates the paper's Table 2 from the live registry.
func printTable2() error {
	registry, err := tactics.Registry()
	if err != nil {
		return err
	}
	fmt.Printf("Table 2 — implemented cryptographic constructions (from the live registry)\n\n")
	fmt.Printf("%-16s %-16s %-8s %-12s %8s %6s  %-26s %-12s\n",
		"Operation", "Scheme", "Class", "Leakage", "Gateway", "Cloud", "Challenge", "Impl")
	// Order rows the way the paper does: by operation family.
	order := []string{"Equality Search", "Boolean Search", "Range Query", "Sum / Average"}
	descriptors := registry.Descriptors()
	sort.SliceStable(descriptors, func(i, j int) bool {
		return opRank(order, descriptors[i].Operation) < opRank(order, descriptors[j].Operation)
	})
	for _, d := range descriptors {
		class, leak := "-", "-"
		if d.Class != 0 {
			class = d.Class.String()
		}
		if d.Leakage != 0 {
			leak = d.Leakage.String()
		}
		impl := "implemented"
		if d.Origin == spi.OriginAdapted {
			impl = "adapted"
		}
		fmt.Printf("%-16s %-16s %-8s %-12s %8d %6d  %-26s %-12s\n",
			d.Operation, d.Name, class, leak,
			len(d.GatewayInterfaces), len(d.CloudInterfaces), d.Challenge, impl)
	}
	return nil
}

func opRank(order []string, op string) int {
	for i, o := range order {
		if o == op {
			return i
		}
	}
	return len(order)
}

// printTable1 regenerates the paper's Table 1: the SPI interfaces per
// high-level operation.
func printTable1() error {
	m := spi.SPIMap()
	rows := []string{"Insert", "Update", "Delete", "Read", "Equality Search", "Boolean Search", "Aggregate"}
	fmt.Printf("Table 1 — Service Provider Interface (SPI)\n\n")
	fmt.Printf("%-16s  %-44s  %s\n", "Operation", "Gateway Interfaces", "Cloud Interfaces")
	for _, r := range rows {
		e := m[r]
		fmt.Printf("%-16s  %-44s  %s\n", r, strings.Join(e.Gateway, ", "), strings.Join(e.Cloud, ", "))
	}
	return nil
}

// printLeakage reifies the paper's Fig. 1 tactic model: each tactic's
// per-operation leakage profile and performance metrics.
func printLeakage() error {
	registry, err := tactics.Registry()
	if err != nil {
		return err
	}
	fmt.Printf("Per-operation leakage profiles (paper Fig. 1 reification)\n")
	for _, d := range registry.Descriptors() {
		fmt.Printf("\n%s", d.Name)
		if d.Leakage != 0 {
			fmt.Printf("  [overall: %s, class %s]", d.Leakage, d.Class)
		} else {
			fmt.Printf("  [aggregate-only: never searched by value]")
		}
		fmt.Println()
		for _, ol := range d.OpLeakage {
			fmt.Printf("  %-6s %-12s %s\n", ol.Op.Name(), ol.Leakage.String(), ol.Note)
		}
		fmt.Printf("  perf: %s; %d round trip(s); client storage: %s; server storage ~%.1fx\n",
			d.Perf.Complexity, d.Perf.RoundTrips, d.Perf.ClientStorage, d.Perf.ServerStorageFactor)
	}
	return nil
}

// printPlan loads a schema file, validates it, and shows per-field
// adaptive tactic selection with effective protection classes.
func printPlan(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s model.Schema
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("decoding schema: %w", err)
	}
	if err := s.Validate(); err != nil {
		return err
	}
	registry, err := tactics.Registry()
	if err != nil {
		return err
	}
	fmt.Printf("schema %q — adaptive tactic selection\n\n", s.Name)
	fmt.Printf("%-14s %-10s %-28s %-24s %s\n", "field", "requested", "annotation", "tactics", "effective")
	for _, f := range s.SensitiveFields() {
		plan, err := registry.Select(f)
		if err != nil {
			return fmt.Errorf("field %q: %w", f.Name, err)
		}
		fmt.Printf("%-14s %-10s %-28s %-24s %s\n",
			f.Name, f.Annotation.Class, f.Annotation.String(),
			strings.Join(plan.Tactics, ", "), registry.EffectiveClass(plan))
	}
	return nil
}
