// Command cloudserver runs DataBlinder's untrusted-zone node: the
// encrypted document store, the tactic index store, and the cloud halves
// of every tactic protocol, served over the framed JSON RPC transport.
//
// Usage:
//
//	cloudserver -listen 127.0.0.1:7700 [-data ./cloud-data] [-pprof addr]
//
// With -data, the key-value index store persists to an append-only file
// and the document store snapshots to JSON files on shutdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"datablinder/internal/cloud"
	"datablinder/internal/pprofserve"
	"datablinder/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "address to serve the gateway RPC protocol on")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory only)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	stopPprof, err := pprofserve.Start(*pprofAddr)
	if err != nil {
		log.Fatalf("cloudserver: pprof: %v", err)
	}
	defer stopPprof()

	if err := run(*listen, *dataDir); err != nil {
		log.Fatalf("cloudserver: %v", err)
	}
}

func run(listen, dataDir string) error {
	opts := cloud.Options{}
	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o700); err != nil {
			return fmt.Errorf("creating data dir: %w", err)
		}
		opts.KVPath = filepath.Join(dataDir, "index.aof")
		opts.DocDir = filepath.Join(dataDir, "docs")
	}
	node, err := cloud.NewNode(opts)
	if err != nil {
		return err
	}
	defer node.Close()

	srv := transport.NewServer(node.Mux)
	addr, err := srv.Listen(listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("cloudserver: serving %d RPC methods on %s (persistence: %v)",
		len(node.Mux.Services()), addr, dataDir != "")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("cloudserver: shutting down")
	return nil
}
