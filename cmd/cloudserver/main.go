// Command cloudserver runs DataBlinder's untrusted-zone node: the
// encrypted document store, the tactic index store, and the cloud halves
// of every tactic protocol, served over the framed JSON RPC transport.
//
// Usage:
//
//	cloudserver -listen 127.0.0.1:7700 [-shards 4] [-data ./cloud-data] [-fsync always|interval|never] [-pprof addr] [-max-inflight N]
//
// With -data, both stores persist through segmented binary write-ahead
// logs with group-committed fsync and background snapshot compaction;
// -fsync picks the durability policy (default "interval": at most the
// last second of writes is lost to a crash). Pre-WAL data directories
// (text index.aof, per-collection JSON snapshots) migrate automatically
// on first start.
//
// With -shards N (N > 1), the process hosts N independent cloud nodes —
// disjoint stores, one listener each — on consecutive ports starting at
// -listen's port. Shard i persists under <data>/shard-<i>. This is the
// single-machine way to stand up a sharded tier; production deployments
// run one cloudserver per machine and list every address in the gateway's
// -shard-addrs flag instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"

	"datablinder/internal/cloud"
	"datablinder/internal/pprofserve"
	"datablinder/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7700", "address to serve the gateway RPC protocol on (with -shards N, the first of N consecutive ports)")
	shards := flag.Int("shards", 1, "number of independent cloud nodes to host (consecutive ports from -listen)")
	dataDir := flag.String("data", "", "persistence directory (empty = in-memory only)")
	fsync := flag.String("fsync", "interval", "WAL durability policy: always (fsync per write, group-committed), interval (1s background), never")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	maxInFlight := flag.Int("max-inflight", transport.DefaultMaxInFlight, "per-connection cap on concurrently executing RPCs (coalesced gateway batches count as one)")
	wireJSON := flag.Bool("wire-json", false, "answer codec negotiation with v1: every connection stays on JSON framing")
	flag.Parse()

	stopPprof, err := pprofserve.Start(*pprofAddr)
	if err != nil {
		log.Fatalf("cloudserver: pprof: %v", err)
	}
	defer stopPprof()

	if err := run(*listen, *shards, *dataDir, *fsync, *maxInFlight, *wireJSON); err != nil {
		log.Fatalf("cloudserver: %v", err)
	}
}

// shardAddrs expands a base listen address into n consecutive-port
// addresses (shard i listens on port+i).
func shardAddrs(listen string, n int) ([]string, error) {
	if n <= 1 {
		return []string{listen}, nil
	}
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		return nil, fmt.Errorf("parsing -listen: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("parsing -listen port: %w", err)
	}
	if port == 0 {
		return nil, fmt.Errorf("-shards > 1 needs an explicit base port, not :0")
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	return addrs, nil
}

func run(listen string, shards int, dataDir, fsync string, maxInFlight int, wireJSON bool) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", shards)
	}
	addrs, err := shardAddrs(listen, shards)
	if err != nil {
		return err
	}

	for i, shardAddr := range addrs {
		opts := cloud.Options{FsyncPolicy: fsync}
		if dataDir != "" {
			dir := dataDir
			if shards > 1 {
				dir = filepath.Join(dataDir, fmt.Sprintf("shard-%d", i))
			}
			if err := os.MkdirAll(dir, 0o700); err != nil {
				return fmt.Errorf("creating data dir: %w", err)
			}
			// v1 layouts used <dir>/index.aof; cloud.NewNode migrates it.
			opts.KVPath = filepath.Join(dir, "index")
			opts.DocDir = filepath.Join(dir, "docs")
		}
		node, err := cloud.NewNode(opts)
		if err != nil {
			return err
		}
		defer node.Close()

		srv := transport.NewServer(node.Mux)
		srv.MaxInFlight = maxInFlight
		srv.DisableBinary = wireJSON
		addr, err := srv.Listen(shardAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Printf("cloudserver: shard %d/%d serving %d RPC methods on %s (persistence: %v)",
			i+1, shards, len(node.Mux.Services()), addr, dataDir != "")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("cloudserver: shutting down")
	return nil
}
