package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"datablinder"
)

// testClient opens an in-process gateway for dispatch tests.
func testClient(t *testing.T) *datablinder.Client {
	t.Helper()
	client, err := datablinder.Open(context.Background(), datablinder.Options{InProcessCloud: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func writeJSON(t *testing.T, name string, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDispatchFullFlow(t *testing.T) {
	client := testClient(t)
	ctx := context.Background()

	schema := &datablinder.Schema{
		Name: "obs",
		Fields: []datablinder.Field{
			datablinder.MustField("subject", datablinder.TypeString, "C2, op [I, EQ]"),
			datablinder.MustField("taken", datablinder.TypeInt, "C5, op [I, RG], tactic [OPE]"),
			datablinder.MustField("v", datablinder.TypeFloat, "C4, op [I, EQ], agg [avg], tactic [DET, Paillier]"),
		},
	}
	schemaPath := writeJSON(t, "schema.json", schema)
	docPath := writeJSON(t, "doc.json", &datablinder.Document{
		ID:     "d1",
		Fields: map[string]any{"subject": "alice", "taken": 100, "v": 6.0},
	})

	steps := [][]string{
		{"register", schemaPath},
		{"insert", "obs", docPath},
		{"get", "obs", "d1"},
		{"search", "obs", "subject=alice"},
		{"range", "obs", "taken", "50", "150"},
		{"agg", "obs", "v", "avg", "subject=alice"},
		{"agg", "obs", "v", "count"},
		{"plan", "obs", "v"},
		{"count", "obs"},
		{"delete", "obs", "d1"},
	}
	for _, args := range steps {
		if err := dispatch(ctx, client, args); err != nil {
			t.Fatalf("dispatch(%v): %v", args, err)
		}
	}
}

func TestDispatchErrors(t *testing.T) {
	client := testClient(t)
	ctx := context.Background()
	bad := [][]string{
		{"unknown-command"},
		{"register"},                   // missing file
		{"register", "/no/such/file"},  // unreadable
		{"insert", "obs"},              // missing doc
		{"get", "obs"},                 // missing id
		{"search", "obs", "malformed"}, // no '='
		{"range", "obs", "f"},          // missing bounds
		{"agg", "obs", "f"},            // missing fn
		{"plan", "obs"},                // missing field
		{"count"},                      // missing schema
		{"delete", "obs"},              // missing id
		{"get", "nosuchschema", "id"},  // unknown schema
	}
	for _, args := range bad {
		if err := dispatch(ctx, client, args); err == nil {
			t.Errorf("dispatch(%v) succeeded, want error", args)
		}
	}
}

func TestDispatchInsertFromStdin(t *testing.T) {
	client := testClient(t)
	ctx := context.Background()
	schema := &datablinder.Schema{
		Name:   "s",
		Fields: []datablinder.Field{datablinder.MustField("f", datablinder.TypeString, "C2, op [I, EQ]")},
	}
	if err := dispatch(ctx, client, []string{"register", writeJSON(t, "s.json", schema)}); err != nil {
		t.Fatal(err)
	}
	// Feed the document through stdin ("-").
	raw, _ := json.Marshal(&datablinder.Document{ID: "x", Fields: map[string]any{"f": "v"}})
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.Write(raw)
		w.Close()
	}()
	if err := dispatch(ctx, client, []string{"insert", "s", "-"}); err != nil {
		t.Fatalf("insert from stdin: %v", err)
	}
	docs, err := client.Entities("s").Search(ctx, datablinder.Eq{Field: "f", Value: "v"})
	if err != nil || len(docs) != 1 {
		t.Fatalf("search after stdin insert = %v, %v", docs, err)
	}
}

func TestParseScalar(t *testing.T) {
	tests := []struct {
		in   string
		want any
	}{
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"6.3", 6.3},
		{"glucose", "glucose"},
		{"", ""},
		{"12abc", "12abc"},
	}
	for _, tt := range tests {
		if got := parseScalar(tt.in); got != tt.want {
			t.Errorf("parseScalar(%q) = %v (%T), want %v (%T)", tt.in, got, got, tt.want, tt.want)
		}
	}
}

func TestParseEq(t *testing.T) {
	eq, err := parseEq("code=glucose")
	if err != nil || eq.Field != "code" || eq.Value != "glucose" {
		t.Fatalf("parseEq = %+v, %v", eq, err)
	}
	eq, err = parseEq("effective=1359966610")
	if err != nil || eq.Value != int64(1359966610) {
		t.Fatalf("parseEq(numeric) = %+v, %v", eq, err)
	}
	// Values containing '=' keep everything after the first separator.
	eq, err = parseEq("note=a=b")
	if err != nil || eq.Field != "note" || eq.Value != "a=b" {
		t.Fatalf("parseEq(embedded =) = %+v, %v", eq, err)
	}
	if _, err := parseEq("no-separator"); err == nil {
		t.Fatal("parseEq accepted input without =")
	}
}
