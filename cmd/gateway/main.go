// Command gateway is DataBlinder's trusted-zone CLI: it connects to a
// cloudserver, manages schemas and keys, and executes data-access
// operations through the middleware.
//
// Usage:
//
//	gateway [-cloud 127.0.0.1:7700 | -shard-addrs a:1,b:2,...] [-key master.key] [-state gw.aof] [-pprof addr] [-no-coalesce] <command> [args]
//
// Commands:
//
//	register <schema.json>            register an annotated schema
//	insert <schema> <doc.json|->      insert a document (- reads stdin)
//	get <schema> <id>                 fetch and decrypt a document
//	delete <schema> <id>              delete a document
//	search <schema> <field>=<value>   equality search
//	range <schema> <field> <lo> <hi>  numeric range search
//	agg <schema> <field> <fn> [<where-field>=<value>]  aggregate (sum/avg/count/min/max)
//	plan <schema> <field>             show a field's tactic plan
//	count <schema>                    count stored documents
//	replan                            re-evaluate unpinned fields against live costs
//	migrate <schema> <field> <tactic> online re-index one field onto a tactic
//	tactic-stats                      dump live per-tactic cost counters
//
// With -planner, schema registration picks the cheapest tactic satisfying
// each field's leakage budget instead of the classic
// highest-tolerated-leakage rule, and -replan-interval starts a background
// loop that migrates fields whose plan the live cost model has overtaken
// (a one-shot CLI process exits before the loop matters; the flag is for
// long-running embeddings of this command).
//
// The master key file is created on first use; the state file persists
// tactic counters and schemas across gateway restarts.
//
// -shard-addrs routes to a sharded cloud tier (comma-separated, one
// address per shard). The list is positional: pass the same addresses in
// the same order on every start, or routing keys will resolve to the
// wrong shards.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"datablinder"
	"datablinder/internal/pprofserve"
)

func main() {
	cloudAddr := flag.String("cloud", "127.0.0.1:7700", "cloudserver address (single node)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated sharded cloud tier addresses (overrides -cloud; order is positional shard identity)")
	keyPath := flag.String("key", "datablinder-master.key", "master key file (created if absent)")
	statePath := flag.String("state", "datablinder-gateway.aof", "gateway state directory (a v1 state file at this path is migrated)")
	fsync := flag.String("fsync", "interval", "state WAL durability policy: always, interval, never")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	noCoalesce := flag.Bool("no-coalesce", false, "disable cross-caller write coalescing (per-shard group commit)")
	wireJSON := flag.Bool("wire-json", false, "pin the cloud channel to v1 JSON framing instead of negotiating the binary wire codec")
	planner := flag.Bool("planner", false, "cost-based tactic selection: pick the cheapest tactic within each field's leakage budget")
	replanInterval := flag.Duration("replan-interval", 0, "with -planner, re-evaluate plans against live costs at this interval (0 = only on explicit replan)")
	flag.Parse()

	stopPprof, err := pprofserve.Start(*pprofAddr)
	if err != nil {
		log.Fatalf("gateway: pprof: %v", err)
	}
	defer stopPprof()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: gateway [flags] <command> [args]; see -h")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	opts := datablinder.Options{
		MasterKeyPath:     *keyPath,
		CreateKey:         true,
		LocalStatePath:    *statePath,
		FsyncPolicy:       *fsync,
		DisableCoalescing: *noCoalesce,
		DisableBinaryWire: *wireJSON,
		Planner:           *planner,
		ReplanInterval:    *replanInterval,
	}
	if *shardAddrs != "" {
		for _, addr := range strings.Split(*shardAddrs, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				opts.CloudAddrs = append(opts.CloudAddrs, addr)
			}
		}
	} else {
		opts.CloudAddr = *cloudAddr
	}
	client, err := datablinder.Open(ctx, opts)
	if err != nil {
		log.Fatalf("gateway: %v", err)
	}
	defer client.Close()

	if err := dispatch(ctx, client, flag.Args()); err != nil {
		log.Fatalf("gateway: %v", err)
	}
}

func dispatch(ctx context.Context, client *datablinder.Client, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "register":
		return cmdRegister(ctx, client, rest)
	case "insert":
		return cmdInsert(ctx, client, rest)
	case "get":
		return cmdGet(ctx, client, rest)
	case "delete":
		return cmdDelete(ctx, client, rest)
	case "search":
		return cmdSearch(ctx, client, rest)
	case "range":
		return cmdRange(ctx, client, rest)
	case "agg":
		return cmdAgg(ctx, client, rest)
	case "plan":
		return cmdPlan(client, rest)
	case "count":
		return cmdCount(ctx, client, rest)
	case "replan":
		return cmdReplan(ctx, client, rest)
	case "migrate":
		return cmdMigrate(ctx, client, rest)
	case "tactic-stats":
		return printJSON(client.TacticStats())
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func cmdRegister(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("register <schema.json>")
	}
	raw, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var s datablinder.Schema
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("decoding schema: %w", err)
	}
	if err := client.RegisterSchema(ctx, &s); err != nil {
		return err
	}
	fmt.Printf("registered schema %q with %d sensitive fields\n", s.Name, len(s.SensitiveFields()))
	return nil
}

func cmdInsert(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("insert <schema> <doc.json|->")
	}
	var raw []byte
	var err error
	if args[1] == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(args[1])
	}
	if err != nil {
		return err
	}
	var doc datablinder.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("decoding document: %w", err)
	}
	id, err := client.Entities(args[0]).Insert(ctx, &doc)
	if err != nil {
		return err
	}
	fmt.Printf("inserted %s\n", id)
	return nil
}

func cmdGet(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("get <schema> <id>")
	}
	doc, err := client.Entities(args[0]).Get(ctx, args[1])
	if err != nil {
		return err
	}
	return printJSON(doc)
}

func cmdDelete(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("delete <schema> <id>")
	}
	if err := client.Entities(args[0]).Delete(ctx, args[1]); err != nil {
		return err
	}
	fmt.Printf("deleted %s\n", args[1])
	return nil
}

// parseEq parses "field=value" into an equality predicate, guessing the
// value type (int, float, then string).
func parseEq(s string) (datablinder.Eq, error) {
	field, value, ok := strings.Cut(s, "=")
	if !ok {
		return datablinder.Eq{}, fmt.Errorf("want field=value, got %q", s)
	}
	return datablinder.Eq{Field: field, Value: parseScalar(value)}, nil
}

func parseScalar(s string) any {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

func cmdSearch(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("search <schema> <field>=<value>")
	}
	eq, err := parseEq(args[1])
	if err != nil {
		return err
	}
	docs, err := client.Entities(args[0]).Search(ctx, eq)
	if err != nil {
		return err
	}
	fmt.Printf("%d matching documents\n", len(docs))
	return printJSON(docs)
}

func cmdRange(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("range <schema> <field> <lo> <hi>")
	}
	docs, err := client.Entities(args[0]).Search(ctx,
		datablinder.Between(args[1], parseScalar(args[2]), parseScalar(args[3])))
	if err != nil {
		return err
	}
	fmt.Printf("%d matching documents\n", len(docs))
	return printJSON(docs)
}

func cmdAgg(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 3 && len(args) != 4 {
		return fmt.Errorf("agg <schema> <field> <fn> [<where-field>=<value>]")
	}
	var where datablinder.Predicate
	if len(args) == 4 {
		eq, err := parseEq(args[3])
		if err != nil {
			return err
		}
		where = eq
	}
	v, err := client.Entities(args[0]).Aggregate(ctx, args[1], datablinder.Agg(args[2]), where)
	if err != nil {
		return err
	}
	fmt.Printf("%s(%s) = %g\n", args[2], args[1], v)
	return nil
}

func cmdPlan(client *datablinder.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("plan <schema> <field>")
	}
	ops, aggs, effective, err := client.FieldPlan(args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Printf("field %s.%s (effective protection %s)\n", args[0], args[1], effective)
	for op, tactic := range ops {
		fmt.Printf("  %-4s -> %s\n", string(op), tactic)
	}
	for agg, tactic := range aggs {
		fmt.Printf("  %-4s -> %s\n", string(agg), tactic)
	}
	return nil
}

func cmdCount(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("count <schema>")
	}
	n, err := client.Entities(args[0]).Count(ctx)
	if err != nil {
		return err
	}
	fmt.Println(n)
	return nil
}

func cmdReplan(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("replan takes no arguments")
	}
	migrated, err := client.Replan(ctx)
	if err != nil {
		return err
	}
	if len(migrated) == 0 {
		fmt.Println("all plans already optimal")
		return nil
	}
	for _, f := range migrated {
		fmt.Printf("migrated %s\n", f)
	}
	return nil
}

func cmdMigrate(ctx context.Context, client *datablinder.Client, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("migrate <schema> <field> <tactic>")
	}
	if err := client.Migrate(ctx, args[0], args[1], args[2]); err != nil {
		return err
	}
	fmt.Printf("migrated %s.%s to %s\n", args[0], args[1], args[2])
	return nil
}

func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
