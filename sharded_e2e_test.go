package datablinder_test

// Sharded-tier end-to-end test: three real cloud nodes served over TCP,
// fronted by the gateway's consistent-hash ring, running the full mixed
// workload — insert, equality (DET / Mitra / Sophos / RND), boolean
// (BIEX And/Or), range (OPE and ORE), Paillier sum/avg, count, get,
// fetch, update, delete — and asserting that every query class returns
// results identical to an unsharded single-node deployment holding the
// same documents. Any gateway call site missed during the single-node →
// ring conversion fails loudly here: a keyless RPC on a multi-shard
// connection is an error by construction.
//
// The test is deliberately run in CI under -race: the sharded paths
// scatter concurrently across shards, so it also exercises the merge
// machinery for data races.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"datablinder"
	"datablinder/internal/cloud"
	"datablinder/internal/transport"
)

// shardedSchema covers every query class and every tactic family the
// sharded tier routes differently: DET point lookups, BIEX boolean,
// Mitra and Sophos SSE, OPE and ORE ranges, RND scatter-scan equality,
// Paillier aggregates.
func shardedSchema() *datablinder.Schema {
	return &datablinder.Schema{
		Name: "observation",
		Fields: []datablinder.Field{
			datablinder.PlainField("identifier", datablinder.TypeString),
			datablinder.MustField("status", datablinder.TypeString, "C5, op [I, EQ, BL], tactic [DET, BIEX-2Lev]"),
			datablinder.MustField("code", datablinder.TypeString, "C5, op [I, EQ, BL], tactic [DET, BIEX-2Lev]"),
			datablinder.MustField("subject", datablinder.TypeString, "C2, op [I, EQ], tactic [Mitra]"),
			datablinder.MustField("performer", datablinder.TypeString, "C2, op [I, EQ], tactic [Sophos]"),
			datablinder.MustField("note", datablinder.TypeString, "C1, op [I, EQ], tactic [RND]"),
			// effective carries BL too: its 60 distinct values give the
			// keyword-partitioned BIEX index enough routing labels to reach
			// every shard, which the balance assertion below depends on.
			datablinder.MustField("effective", datablinder.TypeInt, "C5, op [I, RG, BL], tactic [OPE, BIEX-2Lev]"),
			datablinder.MustField("amount", datablinder.TypeInt, "C5, op [I, RG], tactic [ORE]"),
			datablinder.MustField("value", datablinder.TypeFloat, "C5, op [I, EQ], agg [sum, avg], tactic [DET, Paillier]"),
		},
	}
}

// startShard brings up one real cloud node on a TCP listener and returns
// its address.
func startShard(t *testing.T) string {
	t.Helper()
	node, err := cloud.NewNode(cloud.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	srv := transport.NewServer(node.Mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// shardedDoc builds the i-th deterministic document. Fixed IDs keep the
// two deployments comparable document-for-document.
func shardedDoc(i int) *datablinder.Document {
	statuses := []string{"final", "preliminary", "amended", "draft", "registered"}
	codes := []string{"glucose", "cholesterol", "heart-rate", "bmi", "hemoglobin"}
	return &datablinder.Document{
		ID: fmt.Sprintf("doc-%03d", i),
		Fields: map[string]any{
			"identifier": fmt.Sprintf("obs-%03d", i),
			"status":     statuses[i%len(statuses)],
			"code":       codes[i%len(codes)],
			"subject":    fmt.Sprintf("patient-%02d", i%12),
			"performer":  fmt.Sprintf("dr-%02d", i%7),
			"note":       fmt.Sprintf("note text %d", i%9),
			"effective":  int64(1600000000 + i*1000),
			"amount":     int64((i * 37) % 500),
			"value":      float64(10 + i%50),
		},
	}
}

func sortedIDs(t *testing.T, col *datablinder.Collection, q datablinder.Predicate) []string {
	t.Helper()
	ids, err := col.SearchIDs(context.Background(), q)
	if err != nil {
		t.Fatalf("search %+v: %v", q, err)
	}
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}

func TestShardedTierMatchesSingleNode(t *testing.T) {
	ctx := context.Background()

	addrs := []string{startShard(t), startShard(t), startShard(t)}
	sharded, err := datablinder.Open(ctx, datablinder.Options{CloudAddrs: addrs})
	if err != nil {
		t.Fatalf("opening sharded client: %v", err)
	}
	defer sharded.Close()

	single, err := datablinder.Open(ctx, datablinder.Options{InProcessCloud: true})
	if err != nil {
		t.Fatalf("opening single-node client: %v", err)
	}
	defer single.Close()

	schema := shardedSchema()
	for _, c := range []*datablinder.Client{sharded, single} {
		if err := c.RegisterSchema(ctx, schema); err != nil {
			t.Fatalf("registering schema: %v", err)
		}
	}
	shardedCol := sharded.Entities(schema.Name)
	singleCol := single.Entities(schema.Name)

	const seqDocs = 48
	for i := 0; i < seqDocs; i++ {
		for _, col := range []*datablinder.Collection{shardedCol, singleCol} {
			if _, err := col.Insert(ctx, shardedDoc(i)); err != nil {
				t.Fatalf("inserting doc %d: %v", i, err)
			}
		}
	}

	// The remaining documents load concurrently: several callers in flight
	// at once is the regime the gateway's write coalescer merges, so this
	// phase exercises group commit against both deployments and the
	// identity assertions below prove coalesced writes land exactly like
	// sequential ones.
	const docs = 60
	var wg sync.WaitGroup
	insertErrs := make(chan error, (docs-seqDocs)*2)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := seqDocs + w; i < docs; i += 6 {
				for _, col := range []*datablinder.Collection{shardedCol, singleCol} {
					if _, err := col.Insert(ctx, shardedDoc(i)); err != nil {
						insertErrs <- fmt.Errorf("concurrent insert doc %d: %w", i, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(insertErrs)
	for err := range insertErrs {
		t.Fatal(err)
	}

	// Both deployments must agree on every query class. Result sets are
	// compared sorted: the sharded tier's merge order for multi-shard
	// gathers is not required to match single-node posting order.
	sameIDs := func(name string, q datablinder.Predicate) {
		t.Helper()
		got, want := sortedIDs(t, shardedCol, q), sortedIDs(t, singleCol, q)
		if len(want) == 0 {
			t.Fatalf("%s: single-node returned no results — query exercises nothing", name)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: sharded %v != single-node %v", name, got, want)
		}
	}

	sameIDs("equality DET status", datablinder.Eq{Field: "status", Value: "final"})
	sameIDs("equality DET value", datablinder.Eq{Field: "value", Value: float64(12)})
	sameIDs("equality Mitra subject", datablinder.Eq{Field: "subject", Value: "patient-03"})
	sameIDs("equality Sophos performer", datablinder.Eq{Field: "performer", Value: "dr-02"})
	sameIDs("equality RND note", datablinder.Eq{Field: "note", Value: "note text 4"})
	sameIDs("boolean BIEX and", datablinder.And{Preds: []datablinder.Predicate{
		datablinder.Eq{Field: "status", Value: "final"},
		datablinder.Eq{Field: "code", Value: "glucose"},
	}})
	sameIDs("boolean or", datablinder.Or{Preds: []datablinder.Predicate{
		datablinder.Eq{Field: "status", Value: "draft"},
		datablinder.Eq{Field: "code", Value: "bmi"},
	}})
	// Boolean edge cases under sharding: a conjunction repeating its anchor
	// literal, a conjunction spanning a high-cardinality keyword (the
	// anchor and constraint live on different shards with high probability),
	// and an empty-result conjunction.
	sameIDs("boolean duplicate anchor", datablinder.And{Preds: []datablinder.Predicate{
		datablinder.Eq{Field: "status", Value: "final"},
		datablinder.Eq{Field: "status", Value: "final"},
		datablinder.Eq{Field: "code", Value: "glucose"},
	}})
	sameIDs("boolean high-cardinality keyword", datablinder.And{Preds: []datablinder.Predicate{
		datablinder.Eq{Field: "status", Value: "final"},
		datablinder.Eq{Field: "effective", Value: int64(1600000000)},
	}})
	// status and code cycle in lockstep (both i%5), so "final" never
	// co-occurs with "cholesterol": both deployments must agree on empty.
	emptyQ := datablinder.And{Preds: []datablinder.Predicate{
		datablinder.Eq{Field: "status", Value: "final"},
		datablinder.Eq{Field: "code", Value: "cholesterol"},
	}}
	if got, want := sortedIDs(t, shardedCol, emptyQ), sortedIDs(t, singleCol, emptyQ); len(got) != 0 || len(want) != 0 {
		t.Errorf("empty conjunction: sharded %v, single-node %v — want both empty", got, want)
	}
	sameIDs("range OPE effective", datablinder.Between("effective", int64(1600010000), int64(1600040000)))
	sameIDs("range ORE amount", datablinder.Between("amount", int64(100), int64(300)))
	sameIDs("mixed and (range + eq)", datablinder.And{Preds: []datablinder.Predicate{
		datablinder.Between("effective", int64(1600000000), int64(1600030000)),
		datablinder.Eq{Field: "status", Value: "preliminary"},
	}})

	// Paillier aggregates: per-shard partial sums are combined
	// homomorphically at the gateway, so the result must be exact.
	for _, agg := range []datablinder.Agg{"sum", "avg"} {
		got, err := shardedCol.Aggregate(ctx, "value", agg, nil)
		if err != nil {
			t.Fatalf("sharded %s: %v", agg, err)
		}
		want, err := singleCol.Aggregate(ctx, "value", agg, nil)
		if err != nil {
			t.Fatalf("single-node %s: %v", agg, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s(value): sharded %g != single-node %g", agg, got, want)
		}
	}
	gotFiltered, err := shardedCol.Aggregate(ctx, "value", "sum", datablinder.Eq{Field: "status", Value: "final"})
	if err != nil {
		t.Fatalf("sharded filtered sum: %v", err)
	}
	wantFiltered, err := singleCol.Aggregate(ctx, "value", "sum", datablinder.Eq{Field: "status", Value: "final"})
	if err != nil {
		t.Fatalf("single-node filtered sum: %v", err)
	}
	if math.Abs(gotFiltered-wantFiltered) > 1e-9 {
		t.Errorf("filtered sum(value): sharded %g != single-node %g", gotFiltered, wantFiltered)
	}

	// Count scatter-sums document counts across shards.
	gotCount, err := shardedCol.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gotCount != docs {
		t.Errorf("sharded count = %d, want %d", gotCount, docs)
	}

	// Get decrypts a single routed document; full Search exercises the
	// cross-shard getmany reassembly, which must preserve the id order the
	// search produced.
	doc, err := shardedCol.Get(ctx, "doc-017")
	if err != nil {
		t.Fatalf("sharded get: %v", err)
	}
	if doc.Fields["identifier"] != "obs-017" {
		t.Errorf("get doc-017: identifier = %v", doc.Fields["identifier"])
	}
	results, err := shardedCol.Search(ctx, datablinder.Eq{Field: "status", Value: "final"})
	if err != nil {
		t.Fatalf("sharded search with fetch: %v", err)
	}
	fetchedIDs := make([]string, len(results))
	for i, d := range results {
		fetchedIDs[i] = d.ID
	}
	searchIDs, err := shardedCol.SearchIDs(ctx, datablinder.Eq{Field: "status", Value: "final"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fetchedIDs) != fmt.Sprint(searchIDs) {
		t.Errorf("fetch reordered results: docs %v, ids %v", fetchedIDs, searchIDs)
	}

	// Update and delete route through the ring too; both deployments must
	// stay in lockstep afterwards.
	for _, col := range []*datablinder.Collection{shardedCol, singleCol} {
		upd := shardedDoc(5)
		upd.Fields["status"] = "amended"
		if err := col.Update(ctx, upd); err != nil {
			t.Fatalf("update: %v", err)
		}
		if err := col.Delete(ctx, "doc-010"); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	sameIDs("equality after update", datablinder.Eq{Field: "status", Value: "amended"})
	sameIDs("equality after delete", datablinder.Eq{Field: "status", Value: "final"})
	if _, err := shardedCol.Get(ctx, "doc-010"); err == nil {
		t.Error("get deleted doc-010: want error, got nil")
	}

	// The coalescer must actually have been on the write path of the
	// sharded deployment: every document insert funnels through it.
	// (Trigger mix and merge counts are timing-dependent, so only the
	// invariants are asserted.)
	cs := sharded.CoalesceStats()
	if cs.Enqueued == 0 || cs.Flushes == 0 {
		t.Errorf("coalescer saw no traffic: %+v", cs)
	}
	if cs.QueueDepth != 0 {
		t.Errorf("coalescer queue not empty after quiescence: depth %d", cs.QueueDepth)
	}

	// The documents must actually be spread over the three shards — a
	// routing bug that funnels everything to one node would still pass the
	// equality checks above. The BIEX index must spread too: the emm + zmf
	// kvstore namespaces (written only by BIEX) must hold keys on every
	// shard, with a bounded max/min ratio. A regression back to namespace
	// pinning piles everything on one shard and fails both checks. The
	// ratio threshold is 4, not lower: the corpus has ~70 distinct routing
	// labels but the 10 enum keywords own most of the cells, and a
	// consistent-hash split of 10 heavy labels over 3 shards is lumpy.
	spread := 0
	biexSpread := 0
	biexKeys := make([]int, len(addrs))
	for i, addr := range addrs {
		conn, err := transport.Dial(addr, transport.DialOptions{})
		if err != nil {
			t.Fatalf("dialing shard %d: %v", i, err)
		}
		var st cloud.StatsReply
		if err := conn.Call(ctx, cloud.AdminService, "stats", nil, &st); err != nil {
			conn.Close()
			t.Fatalf("stats on shard %d: %v", i, err)
		}
		conn.Close()
		if st.Collections[schema.Name] > 0 {
			spread++
		}
		biexKeys[i] = st.Namespaces["emm"].Keys + st.Namespaces["zmf"].Keys
		if biexKeys[i] > 0 {
			biexSpread++
		}
	}
	if spread < 2 {
		t.Errorf("documents landed on %d of %d shards — ring routing is not spreading", spread, len(addrs))
	}
	if biexSpread < len(addrs) {
		t.Errorf("BIEX index keys on %d of %d shards (%v) — keyword partitioning is not spreading", biexSpread, len(addrs), biexKeys)
	} else {
		lo, hi := biexKeys[0], biexKeys[0]
		for _, k := range biexKeys[1:] {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		if ratio := float64(hi) / float64(lo); ratio > 4 {
			t.Errorf("BIEX index key balance %v: max/min = %.1fx, want <= 4x", biexKeys, ratio)
		}
	}
}
