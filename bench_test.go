// Benchmarks regenerating the paper's evaluation artifacts:
//
//	Figure 5 rows    -> BenchmarkFig5Insert/*, BenchmarkFig5Search/*,
//	                    BenchmarkFig5Aggregate/*  (S_A/S_B/S_C columns;
//	                    cmd/blinderbench prints the full figure + deltas)
//	§5.2 latency     -> the same benchmarks' ns/op are the per-request
//	                    latencies; cmd/blinderbench -experiment latency
//	                    prints the percentile table
//	Table 2 catalog  -> asserted by TestTable2Catalog (internal/spi);
//	                    printed by cmd/tacticsctl table2
//
// Ablation benchmarks for the design choices called out in DESIGN.md:
//
//	BenchmarkEqualityTactics/* — DET vs Mitra vs Sophos vs RND vs BIEX
//	BenchmarkRangeTactics/*    — OPE sorted-index vs ORE compare-scan
//	BenchmarkAggregates/*      — homomorphic vs fetch-and-sum averages
//	BenchmarkTransport/*       — loopback vs real TCP round trips
package datablinder_test

import (
	"context"
	"fmt"
	"testing"

	"datablinder"

	"datablinder/internal/bench"
	"datablinder/internal/cloud"
	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	tbiex "datablinder/internal/tactics/biex"
	"datablinder/internal/transport"
)

// benchEnv builds a fresh in-process cloud + gateway client per benchmark.
func benchEnv(b *testing.B) (transport.Conn, keys.Provider, *kvstore.Store) {
	b.Helper()
	node, err := cloud.NewNode(cloud.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { node.Close() })
	kp, err := keys.NewRandomStore()
	if err != nil {
		b.Fatal(err)
	}
	local := kvstore.New()
	b.Cleanup(func() { local.Close() })
	return transport.NewLoopback(node.Mux), kp, local
}

func benchClient(b *testing.B, schema *datablinder.Schema) *datablinder.Client {
	b.Helper()
	client, err := datablinder.Open(context.Background(), datablinder.Options{InProcessCloud: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	if err := client.RegisterSchema(context.Background(), schema); err != nil {
		b.Fatal(err)
	}
	return client
}

// scenarioOps runs one op kind through a scenario app for b.N iterations.
func scenarioOps(b *testing.B, scenario string, op bench.OpKind) {
	b.Helper()
	conn, kp, local := benchEnv(b)
	ctx := context.Background()
	a, err := bench.NewApp(ctx, scenario, conn, kp, local)
	if err != nil {
		b.Fatal(err)
	}
	gen := fhir.NewGenerator(1, 0, 0)
	// Seed a corpus for search/aggregate benchmarks.
	if op != bench.OpInsert {
		for i := 0; i < 500; i++ {
			if err := a.Insert(ctx, gen.Observation()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch op {
		case bench.OpInsert:
			if err := a.Insert(ctx, gen.Observation()); err != nil {
				b.Fatal(err)
			}
		case bench.OpSearch:
			if _, err := a.SearchEq(ctx, "code", fhir.Codes[i%len(fhir.Codes)]); err != nil {
				b.Fatal(err)
			}
		case bench.OpAggregate:
			if _, err := a.AverageWhere(ctx, "code", fhir.Codes[i%len(fhir.Codes)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig5Insert(b *testing.B) {
	for _, s := range []string{"A", "B", "C"} {
		b.Run("S_"+s, func(b *testing.B) { scenarioOps(b, s, bench.OpInsert) })
	}
}

func BenchmarkFig5Search(b *testing.B) {
	for _, s := range []string{"A", "B", "C"} {
		b.Run("S_"+s, func(b *testing.B) { scenarioOps(b, s, bench.OpSearch) })
	}
}

func BenchmarkFig5Aggregate(b *testing.B) {
	for _, s := range []string{"A", "B", "C"} {
		b.Run("S_"+s, func(b *testing.B) { scenarioOps(b, s, bench.OpAggregate) })
	}
}

// equalitySchema pins one equality tactic onto a single field.
func equalitySchema(tactic string) *datablinder.Schema {
	class := map[string]string{
		"DET": "C4", "Mitra": "C2", "Sophos": "C2", "RND": "C1",
		"BIEX-2Lev": "C3", "BIEX-ZMF": "C3",
	}[tactic]
	return &datablinder.Schema{
		Name: "eqbench-" + tactic,
		Fields: []datablinder.Field{
			datablinder.MustField("kw", datablinder.TypeString,
				fmt.Sprintf("%s, op [I, EQ], tactic [%s]", class, tactic)),
		},
	}
}

// BenchmarkEqualityTactics contrasts the equality-search tactics on a
// shared corpus shape: 400 documents, 20 distinct keywords.
func BenchmarkEqualityTactics(b *testing.B) {
	for _, tactic := range []string{"DET", "Mitra", "Sophos", "RND", "BIEX-2Lev", "BIEX-ZMF"} {
		b.Run(tactic, func(b *testing.B) {
			client := benchClient(b, equalitySchema(tactic))
			col := client.Entities("eqbench-" + tactic)
			ctx := context.Background()
			for i := 0; i < 400; i++ {
				_, err := col.Insert(ctx, &datablinder.Document{
					ID:     fmt.Sprintf("d%04d", i),
					Fields: map[string]any{"kw": fmt.Sprintf("k%02d", i%20)},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := col.SearchIDs(ctx, datablinder.Eq{Field: "kw", Value: fmt.Sprintf("k%02d", i%20)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRangeTactics contrasts OPE's sorted-index range scan with ORE's
// linear compare scan at the same corpus size.
func BenchmarkRangeTactics(b *testing.B) {
	for _, tactic := range []string{"OPE", "ORE"} {
		b.Run(tactic, func(b *testing.B) {
			schema := &datablinder.Schema{
				Name: "rgbench-" + tactic,
				Fields: []datablinder.Field{
					datablinder.MustField("ts", datablinder.TypeInt,
						fmt.Sprintf("C5, op [I, RG], tactic [%s]", tactic)),
				},
			}
			client := benchClient(b, schema)
			col := client.Entities(schema.Name)
			ctx := context.Background()
			for i := 0; i < 1000; i++ {
				_, err := col.Insert(ctx, &datablinder.Document{
					ID:     fmt.Sprintf("d%04d", i),
					Fields: map[string]any{"ts": int64(i * 17)},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := int64((i % 900) * 17)
				if _, err := col.SearchIDs(ctx, datablinder.Between("ts", lo, lo+170)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregates contrasts the homomorphic (Paillier) average with
// the gateway-side fetch-and-compute fallback (min runs that path).
func BenchmarkAggregates(b *testing.B) {
	schema := &datablinder.Schema{
		Name: "aggbench",
		Fields: []datablinder.Field{
			datablinder.MustField("v", datablinder.TypeFloat,
				"C4, op [I, EQ], agg [avg, min], tactic [DET, Paillier]"),
		},
	}
	client := benchClient(b, schema)
	col := client.Entities("aggbench")
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		_, err := col.Insert(ctx, &datablinder.Document{
			ID:     fmt.Sprintf("d%04d", i),
			Fields: map[string]any{"v": float64(i)},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("PaillierAvg", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := col.Aggregate(ctx, "v", datablinder.AggAvg, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FetchMin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := col.Aggregate(ctx, "v", datablinder.AggMin, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := col.Aggregate(ctx, "v", datablinder.AggCount, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBIEXCompaction contrasts searching a hot keyword whose
// global-multimap list lives in per-update tail cells (dynamic inserts)
// against the same list after 2Lev compaction into packed buckets — the
// read-efficiency motivation for the two-level design.
func BenchmarkBIEXCompaction(b *testing.B) {
	mk := func(b *testing.B, compact bool) (spibench, func()) {
		conn, kp, local := benchEnv(b)
		ctx := context.Background()
		inst, err := tbiex.Registration2Lev().Factory(spi.Binding{
			Schema: "hot", Keys: kp, Cloud: conn, Local: local,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 800; i++ {
			if err := inst.(spi.DocInserter).InsertDoc(ctx, fmt.Sprintf("d%04d", i),
				map[string]any{"code": "glucose"}); err != nil {
				b.Fatal(err)
			}
		}
		if compact {
			if err := inst.(*tbiex.Tactic).Compact(ctx, "code", "glucose"); err != nil {
				b.Fatal(err)
			}
		}
		search := func() {
			if ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose"); err != nil || len(ids) != 800 {
				b.Fatalf("search = %d ids, %v", len(ids), err)
			}
		}
		return spibench{search}, func() {}
	}
	b.Run("TailCells", func(b *testing.B) {
		s, done := mk(b, false)
		defer done()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.search()
		}
	})
	b.Run("PackedBuckets", func(b *testing.B) {
		s, done := mk(b, true)
		defer done()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.search()
		}
	})
}

type spibench struct {
	search func()
}

// BenchmarkTransport measures the RPC substrate: in-process loopback vs a
// real TCP socket, for the smallest useful call (document count).
func BenchmarkTransport(b *testing.B) {
	node, err := cloud.NewNode(cloud.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()

	run := func(b *testing.B, conn transport.Conn) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var reply cloud.DocCountReply
			if err := conn.Call(ctx, cloud.DocService, "count",
				cloud.DocCountArgs{Collection: "c"}, &reply); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Loopback", func(b *testing.B) {
		run(b, transport.NewLoopback(node.Mux))
	})
	b.Run("TCP", func(b *testing.B) {
		srv := transport.NewServer(node.Mux)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client, err := transport.Dial(addr, transport.DialOptions{PoolSize: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		run(b, client)
	})
}
