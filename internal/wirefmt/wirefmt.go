// Package wirefmt provides the append-style binary primitives underlying
// wire codec v2 (internal/transport): unsigned varints, zigzag-encoded
// signed varints, and length-prefixed byte/string fields.
//
// Writers append into caller-owned buffers (typically drawn from the
// transport frame pool) and never allocate beyond slice growth. Readers
// are strictly bounds-checked and never panic on malformed input: every
// length is validated against the remaining input before it is used, so
// adversarial frames fail with ErrMalformed instead of an out-of-memory
// allocation or an index panic. Decoded byte slices alias the input
// buffer (zero-copy); callers that retain them beyond the buffer's
// lifetime must copy.
package wirefmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrMalformed reports a truncated or corrupt binary value.
var ErrMalformed = errors.New("wirefmt: malformed input")

// AppendUvarint appends u in unsigned LEB128 form.
func AppendUvarint(b []byte, u uint64) []byte {
	return binary.AppendUvarint(b, u)
}

// AppendInt64 appends v as a zigzag-encoded varint.
func AppendInt64(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// AppendBytes appends p as a length-prefixed byte field. nil and empty
// slices both encode as length 0 (the wire does not distinguish them).
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s as a length-prefixed string field.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendByteSlices appends a count-prefixed sequence of byte fields.
func AppendByteSlices(b []byte, ps [][]byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(ps)))
	for _, p := range ps {
		b = AppendBytes(b, p)
	}
	return b
}

// AppendStrings appends a count-prefixed sequence of string fields.
func AppendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendUint64s appends a count-prefixed sequence of uvarints.
func AppendUint64s(b []byte, us []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(us)))
	for _, u := range us {
		b = binary.AppendUvarint(b, u)
	}
	return b
}

// Reader consumes binary fields from a buffer. The first malformed field
// latches an error; subsequent reads return zero values, so decode
// functions can read unconditionally and check Err once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over b. The Reader aliases b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// readerPool recycles Reader structs for the hot decode paths: a Reader
// passed through a function pointer escapes to the heap, and payload
// decoders run once per RPC. Decoded values alias the payload buffer, not
// the Reader, so pooling the struct is safe as long as the decode
// function does not retain the Reader itself.
var readerPool = sync.Pool{New: func() any { return new(Reader) }}

// GetReader returns a pooled Reader over b. Return it with PutReader once
// decoding is done; the decode function must not retain it.
func GetReader(b []byte) *Reader {
	r := readerPool.Get().(*Reader)
	r.b, r.err = b, nil
	return r
}

// PutReader recycles a Reader obtained from GetReader.
func PutReader(r *Reader) {
	r.b, r.err = nil, nil
	readerPool.Put(r)
}

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.b) }

// Finish returns the latched error, or ErrMalformed if unconsumed bytes
// remain (a well-formed value consumes its input exactly).
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b))
	}
	return nil
}

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrMalformed
	}
}

// Byte consumes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Uvarint consumes one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return u
}

// Int64 consumes one zigzag-encoded varint.
func (r *Reader) Int64() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Count consumes a count prefix, rejecting counts that could not possibly
// fit in the remaining input (each element needs ≥1 byte). This bounds
// slice pre-allocation by the input size, so a hostile 2^60 count cannot
// force a huge make().
func (r *Reader) Count() int {
	u := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if u > uint64(len(r.b)) {
		r.fail()
		return 0
	}
	return int(u)
}

// Bytes consumes one length-prefixed byte field. The result aliases the
// input buffer; it is nil for a zero-length field.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	p := r.b[:n:n]
	r.b = r.b[n:]
	return p
}

// String consumes one length-prefixed string field (copies).
func (r *Reader) String() string { return string(r.Bytes()) }

// Bool consumes one 0/1 byte; any other value is malformed.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.b) == 0 || r.b[0] > 1 {
		r.fail()
		return false
	}
	v := r.b[0] == 1
	r.b = r.b[1:]
	return v
}

// ByteSlices consumes a count-prefixed sequence of byte fields.
func (r *Reader) ByteSlices() [][]byte {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = r.Bytes()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Strings consumes a count-prefixed sequence of string fields.
func (r *Reader) Strings() []string {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Uint64s consumes a count-prefixed sequence of uvarints.
func (r *Reader) Uint64s() []uint64 {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uvarint()
	}
	if r.err != nil {
		return nil
	}
	return out
}
