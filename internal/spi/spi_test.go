package spi_test

import (
	"errors"
	"strings"
	"testing"

	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/tactics"
)

func registry(t *testing.T) *spi.Registry {
	t.Helper()
	r, err := tactics.Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	return r
}

func field(name string, ft model.FieldType, ann string) model.Field {
	a, err := model.ParseAnnotation(ann)
	if err != nil {
		panic(err)
	}
	return model.Field{Name: name, Type: ft, Sensitive: true, Annotation: a}
}

func TestRegistryNames(t *testing.T) {
	r := registry(t)
	want := []string{"BIEX-2Lev", "BIEX-ZMF", "DET", "Mitra", "OPE", "ORE", "Paillier", "RND", "Sophos"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	reg := spi.Registration{
		Descriptor: spi.Descriptor{Name: "X"},
		Factory:    func(spi.Binding) (spi.Tactic, error) { return nil, nil },
	}
	if _, err := spi.NewRegistry(reg, reg); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := spi.NewRegistry(spi.Registration{Descriptor: spi.Descriptor{Name: "Y"}}); err == nil {
		t.Fatal("nil factory accepted")
	}
	if _, err := spi.NewRegistry(spi.Registration{Factory: reg.Factory}); err == nil {
		t.Fatal("empty name accepted")
	}
}

// TestPaperSelections verifies the §5.1 tactic-selection table emerges
// from the adaptive algorithm without pins.
func TestPaperSelections(t *testing.T) {
	r := registry(t)
	tests := []struct {
		name  string
		field model.Field
		op    model.Op
		want  string
	}{
		// status C3, op [I, EQ, BL] -> BIEX for boolean.
		{"status boolean", field("status", model.TypeString, "C3, op [I, EQ, BL]"), model.OpBoolean, "BIEX-2Lev"},
		// status equality also lands on BIEX (3 <= C3, highest tolerated).
		{"status equality", field("status", model.TypeString, "C3, op [I, EQ, BL]"), model.OpEquality, "BIEX-2Lev"},
		// subject C2, op [I, EQ] -> Mitra (identifier protection level).
		{"subject", field("subject", model.TypeString, "C2, op [I, EQ]"), model.OpEquality, "Mitra"},
		// performer C1, op [I] -> RND (structure protection level).
		{"performer", field("performer", model.TypeString, "C1, op [I]"), model.OpInsert, "RND"},
		// effective C5 int with ranges -> OPE.
		{"effective range", field("effective", model.TypeInt, "C5, op [I, EQ, BL, RG]"), model.OpRange, "OPE"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			plan, err := r.Select(tt.field)
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			if got := plan.ByOp[tt.op]; got != tt.want {
				t.Fatalf("op %s -> %q, want %q (plan %+v)", string(tt.op), got, tt.want, plan)
			}
		})
	}
}

func TestSelectRespectsClassCeiling(t *testing.T) {
	r := registry(t)
	// A C1 field requesting equality can only use RND.
	plan, err := r.Select(field("f", model.TypeString, "C1, op [I, EQ]"))
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if plan.ByOp[model.OpEquality] != "RND" {
		t.Fatalf("C1 equality -> %q, want RND", plan.ByOp[model.OpEquality])
	}
	// A C1 field requesting range queries is unsatisfiable: range tactics
	// leak order.
	_, err = r.Select(field("f", model.TypeInt, "C1, op [I, RG]"))
	if !errors.Is(err, spi.ErrNoTactic) {
		t.Fatalf("C1 range err = %v, want ErrNoTactic", err)
	}
	// C5 permits it.
	if _, err := r.Select(field("f", model.TypeInt, "C5, op [I, RG]")); err != nil {
		t.Fatalf("C5 range: %v", err)
	}
}

func TestSelectRespectsFieldType(t *testing.T) {
	r := registry(t)
	// Range on a string field is rejected by schema validation before
	// selection, but selection itself must also never pick numeric-only
	// tactics for strings: request an aggregate on a string field.
	f := field("f", model.TypeString, "C5, op [I]")
	f.Annotation.Aggs = []model.Agg{model.AggSum}
	if _, err := r.Select(f); !errors.Is(err, spi.ErrNoTactic) {
		t.Fatalf("sum on string err = %v, want ErrNoTactic", err)
	}
}

func TestSelectAggregates(t *testing.T) {
	r := registry(t)
	f := field("value", model.TypeFloat, "C3, op [I, EQ, BL], agg [avg]")
	plan, err := r.Select(f)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if plan.ByAgg[model.AggAvg] != "Paillier" {
		t.Fatalf("avg -> %q, want Paillier", plan.ByAgg[model.AggAvg])
	}
	// The paper's value field: BIEX-2Lev + Paillier.
	joined := strings.Join(plan.Tactics, ",")
	if !strings.Contains(joined, "BIEX-2Lev") || !strings.Contains(joined, "Paillier") {
		t.Fatalf("value plan tactics = %v", plan.Tactics)
	}
}

func TestCountNeedsNoAggregateTactic(t *testing.T) {
	r := registry(t)
	f := field("status", model.TypeString, "C3, op [I, EQ]")
	f.Annotation.Aggs = []model.Agg{model.AggCount}
	plan, err := r.Select(f)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if _, ok := plan.ByAgg[model.AggCount]; ok {
		t.Fatal("count was assigned a tactic; it is pure resolution")
	}
}

func TestSelectHonorsPins(t *testing.T) {
	r := registry(t)
	f := field("effective", model.TypeInt, "C5, op [I, EQ, RG], tactic [DET, OPE]")
	plan, err := r.Select(f)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if plan.ByOp[model.OpEquality] != "DET" {
		t.Fatalf("pinned equality -> %q, want DET", plan.ByOp[model.OpEquality])
	}
	if plan.ByOp[model.OpRange] != "OPE" {
		t.Fatalf("pinned range -> %q, want OPE", plan.ByOp[model.OpRange])
	}
	// Unknown pin.
	f2 := field("f", model.TypeString, "C5, op [I], tactic [NoSuch]")
	if _, err := r.Select(f2); !errors.Is(err, spi.ErrUnknownTactic) {
		t.Fatalf("unknown pin err = %v", err)
	}
	// Pinned tactic above the ceiling is rejected.
	f3 := field("f", model.TypeString, "C2, op [I, EQ], tactic [DET]")
	if _, err := r.Select(f3); !errors.Is(err, spi.ErrNoTactic) {
		t.Fatalf("over-ceiling pin err = %v", err)
	}
}

func TestEffectiveClassWeakestLink(t *testing.T) {
	r := registry(t)
	f := field("effective", model.TypeInt, "C5, op [I, EQ, RG], tactic [DET, OPE]")
	plan, err := r.Select(f)
	if err != nil {
		t.Fatal(err)
	}
	// DET leaks Equalities (C4) but OPE leaks Order (C5): the chain is as
	// weak as OPE.
	if got := r.EffectiveClass(plan); got != model.Class5 {
		t.Fatalf("EffectiveClass = %v, want C5", got)
	}

	f2 := field("subject", model.TypeString, "C2, op [I, EQ]")
	plan2, err := r.Select(f2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.EffectiveClass(plan2); got != model.Class2 {
		t.Fatalf("EffectiveClass = %v, want C2", got)
	}
}

// TestTable2Catalog asserts the registry reproduces the paper's Table 2
// rows: scheme, class, leakage, and SPI interface counts.
func TestTable2Catalog(t *testing.T) {
	r := registry(t)
	want := []struct {
		name    string
		class   model.Class
		leakage model.Leakage
		gateway int
		cloud   int
	}{
		{"DET", model.Class4, model.LeakEqualities, 9, 6},
		{"Mitra", model.Class2, model.LeakIdentifiers, 7, 5},
		{"Sophos", model.Class2, model.LeakIdentifiers, 6, 4},
		{"RND", model.Class1, model.LeakStructure, 6, 4},
		{"BIEX-2Lev", model.Class3, model.LeakPredicates, 8, 5},
		{"BIEX-ZMF", model.Class3, model.LeakPredicates, 8, 5},
		{"OPE", model.Class5, model.LeakOrder, 3, 3},
		{"ORE", model.Class5, model.LeakOrder, 3, 3},
		{"Paillier", 0, 0, 3, 3},
	}
	for _, row := range want {
		reg, err := r.Lookup(row.name)
		if err != nil {
			t.Errorf("Lookup(%s): %v", row.name, err)
			continue
		}
		d := reg.Descriptor
		if d.Class != row.class {
			t.Errorf("%s class = %v, want %v", row.name, d.Class, row.class)
		}
		if d.Leakage != row.leakage {
			t.Errorf("%s leakage = %v, want %v", row.name, d.Leakage, row.leakage)
		}
		if len(d.GatewayInterfaces) != row.gateway {
			t.Errorf("%s gateway SPI = %d, want %d", row.name, len(d.GatewayInterfaces), row.gateway)
		}
		if len(d.CloudInterfaces) != row.cloud {
			t.Errorf("%s cloud SPI = %d, want %d", row.name, len(d.CloudInterfaces), row.cloud)
		}
	}
}

// TestTable1SPIMap asserts the Table 1 operation-to-interface map.
func TestTable1SPIMap(t *testing.T) {
	m := spi.SPIMap()
	if len(m) != 7 {
		t.Fatalf("SPIMap has %d rows, want 7", len(m))
	}
	insert := m["Insert"]
	if len(insert.Gateway) != 3 || insert.Gateway[0] != "Insertion" {
		t.Fatalf("Insert gateway = %v", insert.Gateway)
	}
	agg := m["Aggregate"]
	if len(agg.Cloud) != 1 || agg.Cloud[0] != "AggFunction" {
		t.Fatalf("Aggregate cloud = %v", agg.Cloud)
	}
}

func TestDescriptorHelpers(t *testing.T) {
	r := registry(t)
	det, _ := r.Lookup("DET")
	if !det.Descriptor.SupportsOp(model.OpEquality) {
		t.Fatal("DET should support EQ")
	}
	if det.Descriptor.SupportsOp(model.OpRange) {
		t.Fatal("DET should not support RG")
	}
	p, _ := r.Lookup("Paillier")
	if !p.Descriptor.SupportsAgg(model.AggAvg) {
		t.Fatal("Paillier should support avg")
	}
	if p.Descriptor.SupportsType(model.TypeString) {
		t.Fatal("Paillier should reject string fields")
	}
	if !p.Descriptor.SupportsType(model.TypeFloat) {
		t.Fatal("Paillier should accept float fields")
	}
}
