// Package spi defines DataBlinder's Service Provider Interface (paper §4.2,
// Table 1): the contract between the middleware core and pluggable data
// protection tactics. Security experts implement these interfaces; the
// middleware loads the right implementations dynamically at runtime via the
// strategy pattern (the Registry's adaptive selection).
//
// A tactic instance is bound per (schema, tactic): cross-field structures
// like BIEX span every boolean-annotated field of a schema, while per-field
// behaviour is expressed by passing the field name on each operation.
package spi

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Errors returned by the registry.
var (
	ErrUnknownTactic = errors.New("spi: unknown tactic")
	ErrNoTactic      = errors.New("spi: no tactic satisfies the annotation")
)

// Origin records whether the integration was written from scratch or
// adapted from an existing implementation (Table 2's last column).
type Origin string

// Origins.
const (
	OriginImplemented Origin = "implemented"
	OriginAdapted     Origin = "adapted"
)

// Descriptor reifies a tactic for the registry, the selection algorithm,
// and the Table 2 catalog: its leakage profile (per operation), protection
// class, supported operations, performance metadata, and SPI surface.
type Descriptor struct {
	// Name is the tactic's catalog name, e.g. "DET", "BIEX-2Lev".
	Name string
	// Operation is the high-level operation family the paper's Table 2
	// files the tactic under, e.g. "Equality Search".
	Operation string
	// Class is the protection class (0 for aggregate-only tactics, which
	// Table 2 marks "-" because they index nothing).
	Class model.Class
	// Leakage is the overall (weakest-operation) leakage level; 0 when
	// not applicable.
	Leakage model.Leakage
	// OpLeakage details leakage per tactic operation (Fig. 1).
	OpLeakage []model.OpLeakage
	// Ops are the data-access operations the tactic supports.
	Ops []model.Op
	// Aggs are the aggregate functions the tactic supports.
	Aggs []model.Agg
	// NumericOnly restricts the tactic to numeric fields (OPE, ORE,
	// Paillier).
	NumericOnly bool
	// GatewayInterfaces and CloudInterfaces name the Table 1 interfaces
	// each half implements; their lengths are Table 2's SPI counts.
	GatewayInterfaces []string
	CloudInterfaces   []string
	// Perf is the descriptive cost profile (Fig. 1's performance metrics).
	Perf model.PerfMetrics
	// Challenge is Table 2's integration-challenge note.
	Challenge string
	// Origin is Table 2's implementation provenance.
	Origin Origin
}

// SupportsOp reports whether the tactic offers op.
func (d Descriptor) SupportsOp(op model.Op) bool {
	for _, o := range d.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// SupportsAgg reports whether the tactic offers agg.
func (d Descriptor) SupportsAgg(agg model.Agg) bool {
	for _, a := range d.Aggs {
		if a == agg {
			return true
		}
	}
	return false
}

// SupportsType reports whether the tactic can protect a field of type t.
func (d Descriptor) SupportsType(t model.FieldType) bool {
	return !d.NumericOnly || t.Numeric()
}

// Binding carries the dependencies every tactic instance receives — the
// tactic commonalities of §4.2: key management, the channel to the cloud
// half, and gateway-local repository services.
type Binding struct {
	// Schema is the document type this instance serves.
	Schema string
	// Keys provides per-(schema, field, tactic, purpose) key material.
	Keys keys.Provider
	// Cloud reaches the tactic's cloud-side implementation.
	Cloud transport.Conn
	// Local is the gateway-side state store (counters, TDP states, ...).
	Local *kvstore.Store
}

// Tactic is the mandatory surface of every gateway-side tactic instance.
type Tactic interface {
	// Descriptor returns the tactic's static description.
	Descriptor() Descriptor
	// Setup performs key generation and initial provisioning (the
	// mandatory setup interface of §4.2). It must be idempotent.
	Setup(ctx context.Context) error
}

// Inserter indexes a field value at insertion time.
type Inserter interface {
	Insert(ctx context.Context, field, docID string, value any) error
}

// Deleter removes a field value from the index. value is the previously
// indexed value (the engine retrieves it before deletion, per Table 1's
// Update row requiring Retrieval).
type Deleter interface {
	Delete(ctx context.Context, field, docID string, value any) error
}

// DocInserter indexes several fields of one document in one call. Tactics
// whose structures span fields (BIEX's cross-keyword multimap) implement
// this instead of per-field Inserter, and per-field tactics implement it
// to coalesce their per-field cloud mutations into one transport batch
// frame (DET). The engine prefers this interface over Inserter, passing
// every field of the document assigned to the tactic in one call.
type DocInserter interface {
	InsertDoc(ctx context.Context, docID string, fields map[string]any) error
}

// DocDeleter removes a whole document from a cross-field structure.
type DocDeleter interface {
	DeleteDoc(ctx context.Context, docID string, fields map[string]any) error
}

// EqSearcher answers equality queries on one field.
type EqSearcher interface {
	SearchEq(ctx context.Context, field string, value any) ([]string, error)
}

// BoolLiteral is one leaf of a boolean query: field = value, possibly
// negated.
type BoolLiteral struct {
	Field   string
	Value   any
	Negated bool
}

// BoolQuery is a cross-field boolean formula in DNF.
type BoolQuery [][]BoolLiteral

// BoolSearcher answers boolean queries spanning the schema's
// boolean-annotated fields.
type BoolSearcher interface {
	SearchBool(ctx context.Context, q BoolQuery) ([]string, error)
}

// RangeSearcher answers range queries on one numeric field. Nil bounds are
// unbounded; inclusivity is per bound.
type RangeSearcher interface {
	SearchRange(ctx context.Context, field string, lo, hi any, loInc, hiInc bool) ([]string, error)
}

// Compactor is an optional maintenance interface: tactics with amortized
// static structures (BIEX's 2Lev multimap) rebuild one keyword's cells
// into their read-efficient packed form.
type Compactor interface {
	Compact(ctx context.Context, field string, value any) error
}

// Aggregator computes an aggregate of a field over the given documents
// (cloud-side where the tactic allows, e.g. Paillier sums).
type Aggregator interface {
	Aggregate(ctx context.Context, field string, agg model.Agg, docIDs []string) (float64, error)
}

// Factory constructs a tactic instance for a binding.
type Factory func(Binding) (Tactic, error)

// Registration couples a descriptor with its factory.
type Registration struct {
	Descriptor Descriptor
	Factory    Factory
}

// Registry is the tactic catalog plus the adaptive selection algorithm.
// Populate it at startup (no global registration side effects); it is
// read-only afterwards and safe for concurrent use.
type Registry struct {
	byName map[string]Registration
	names  []string
}

// NewRegistry builds a registry from registrations.
func NewRegistry(regs ...Registration) (*Registry, error) {
	r := &Registry{byName: make(map[string]Registration, len(regs))}
	for _, reg := range regs {
		if reg.Descriptor.Name == "" {
			return nil, errors.New("spi: registration without a name")
		}
		if reg.Factory == nil {
			return nil, fmt.Errorf("spi: tactic %q has no factory", reg.Descriptor.Name)
		}
		if _, dup := r.byName[reg.Descriptor.Name]; dup {
			return nil, fmt.Errorf("spi: duplicate tactic %q", reg.Descriptor.Name)
		}
		r.byName[reg.Descriptor.Name] = reg
		r.names = append(r.names, reg.Descriptor.Name)
	}
	sort.Strings(r.names)
	return r, nil
}

// Names returns the registered tactic names, sorted.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Lookup returns the registration for name.
func (r *Registry) Lookup(name string) (Registration, error) {
	reg, ok := r.byName[name]
	if !ok {
		return Registration{}, fmt.Errorf("%w: %q", ErrUnknownTactic, name)
	}
	return reg, nil
}

// Descriptors returns all descriptors sorted by name.
func (r *Registry) Descriptors() []Descriptor {
	out := make([]Descriptor, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.byName[n].Descriptor)
	}
	return out
}

// Plan is the outcome of tactic selection for one field: which tactic
// serves each requested operation and aggregate.
type Plan struct {
	// ByOp maps each requested search/insert operation to a tactic name.
	ByOp map[model.Op]string
	// ByAgg maps each requested aggregate to a tactic name.
	ByAgg map[model.Agg]string
	// Tactics is the deduplicated, sorted set of tactic names involved.
	Tactics []string
}

// CostFn reports the estimated latency (nanoseconds) of running op
// through tactic, and whether an estimate exists at all. The engine wires
// this to the planner's live cost model; selection itself stays agnostic
// about where the numbers come from.
type CostFn func(tactic string, op model.Op) (ns float64, ok bool)

// SelectOptions parameterize tactic selection.
type SelectOptions struct {
	// Cheapest switches selection from the classic leakage-maximal rule
	// to cost-based planning: among the tactics tolerated by the field's
	// class, pick the one with the lowest workload-weighted cost. Requires
	// Cost; falls back to the classic rule for any operation where no
	// candidate has a cost estimate.
	Cheapest bool
	// Cost estimates per-(tactic, op) latency. In classic mode it only
	// refines tie-breaking among equal-leakage candidates; in Cheapest
	// mode it drives the ranking.
	Cost CostFn
	// Weights is the workload mix (relative op frequencies) used to weigh
	// per-op costs in Cheapest mode. Nil means uniform weights.
	Weights map[model.Op]float64
}

// Select runs tactic selection for one annotated field with the classic
// rule: for every requested operation it picks, among the registered
// tactics that support the operation and field type, the one with the
// *highest leakage still tolerated* by the field's protection class.
// This reproduces the paper's §5.1 selections: a C2 subject gets Mitra,
// a C1 performer gets RND, a C3 status gets BIEX. Ties break by name for
// determinism. Explicit pins in the annotation restrict the candidate set.
func (r *Registry) Select(field model.Field) (Plan, error) {
	return r.SelectWith(field, SelectOptions{})
}

// SelectWith is Select with an explicit cost model. The classic rule's
// leakage ranking assumed leakage and performance trade off monotonically
// across the catalog; that assumption breaks in practice (equal-leakage
// tactics invert cost rankings with workload shape), so equal-leakage
// candidates rank by measured cost when both have one, and Cheapest mode
// drops the leakage-as-cost-proxy entirely: it minimizes estimated cost
// over every tactic the field's class tolerates. Annotation pins always
// restrict the candidate set, and the class leakage ceiling is enforced
// in every mode — including over pinned candidates.
func (r *Registry) SelectWith(field model.Field, opts SelectOptions) (Plan, error) {
	ann := field.Annotation
	if err := ann.Validate(); err != nil {
		return Plan{}, err
	}
	candidates := r.names
	if len(ann.Tactics) > 0 {
		candidates = ann.Tactics
		for _, n := range candidates {
			if _, ok := r.byName[n]; !ok {
				return Plan{}, fmt.Errorf("%w: pinned %q on field %q", ErrUnknownTactic, n, field.Name)
			}
		}
	}

	plan := Plan{ByOp: make(map[model.Op]string), ByAgg: make(map[model.Agg]string)}
	insertDeferred := false
	for _, op := range ann.Ops {
		if op == model.OpRead || op == model.OpUpdate || op == model.OpDelete {
			continue // CRUD plumbing is engine-level, not index-level
		}
		if op == model.OpInsert && opts.Cheapest {
			// Defer: in cost mode the insert slot should reuse a tactic the
			// search ops already forced into the plan (every plan tactic
			// pays inserts anyway), instead of adding a new index.
			insertDeferred = true
			continue
		}
		op := op
		name, err := r.pick(field, candidates, op, func(d Descriptor) bool { return d.SupportsOp(op) }, opts)
		if err != nil {
			return Plan{}, fmt.Errorf("spi: field %q op %s: %w", field.Name, string(op), err)
		}
		plan.ByOp[op] = name
	}
	for _, agg := range ann.Aggs {
		switch agg {
		case model.AggCount, model.AggMin, model.AggMax:
			// Resolved at the gateway: count is the matching set's
			// cardinality; min/max fall back to fetch-and-compare. No
			// cloud-side tactic is involved.
			continue
		}
		name, err := r.pick(field, candidates, "", func(d Descriptor) bool { return d.SupportsAgg(agg) }, opts)
		if err != nil {
			return Plan{}, fmt.Errorf("spi: field %q agg %s: %w", field.Name, string(agg), err)
		}
		plan.ByAgg[agg] = name
	}
	if insertDeferred {
		pool := candidates
		if sub := r.insertCapable(field, plan); len(sub) > 0 {
			pool = sub
		}
		name, err := r.pick(field, pool, model.OpInsert, func(d Descriptor) bool { return d.SupportsOp(model.OpInsert) }, opts)
		if err != nil {
			return Plan{}, fmt.Errorf("spi: field %q op %s: %w", field.Name, string(model.OpInsert), err)
		}
		plan.ByOp[model.OpInsert] = name
	}

	seen := make(map[string]bool)
	for _, n := range plan.ByOp {
		if !seen[n] {
			seen[n] = true
			plan.Tactics = append(plan.Tactics, n)
		}
	}
	for _, n := range plan.ByAgg {
		if !seen[n] {
			seen[n] = true
			plan.Tactics = append(plan.Tactics, n)
		}
	}
	sort.Strings(plan.Tactics)
	return plan, nil
}

// insertCapable returns the plan's already-chosen tactics that can also
// absorb the field's inserts, sorted for determinism.
func (r *Registry) insertCapable(field model.Field, plan Plan) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		d := r.byName[n].Descriptor
		if d.SupportsOp(model.OpInsert) && d.SupportsType(field.Type) {
			out = append(out, n)
		}
	}
	for _, n := range plan.ByOp {
		add(n)
	}
	for _, n := range plan.ByAgg {
		add(n)
	}
	sort.Strings(out)
	return out
}

// eligible filters candidates by capability, field type, and the class
// leakage ceiling.
func (r *Registry) eligible(field model.Field, candidates []string, ok func(Descriptor) bool) []string {
	var out []string
	for _, n := range candidates {
		d := r.byName[n].Descriptor
		if !ok(d) || !d.SupportsType(field.Type) {
			continue
		}
		// Aggregate-only tactics (Leakage 0) index nothing searchable and
		// always satisfy the ceiling.
		if d.Leakage != 0 && !field.Annotation.Class.Tolerates(d.Leakage) {
			continue
		}
		out = append(out, n)
	}
	return out
}

// pick selects one tactic for op among candidates. Classic mode ranks by
// highest tolerated leakage; equal-leakage ties rank by measured cost
// when the cost model has estimates for both (the catalog's leakage
// ordering is not a reliable cost ordering), and by name otherwise.
// Cheapest mode ranks by workload-weighted estimated cost across the ops
// the tactic would serve (the requested op plus the insert/delete
// maintenance it must absorb as a plan member), falling back to the
// classic rule when no candidate has any estimate. costOp is "" for
// aggregate picks, which carry no per-op cost series.
func (r *Registry) pick(field model.Field, candidates []string, costOp model.Op, ok func(Descriptor) bool, opts SelectOptions) (string, error) {
	pool := r.eligible(field, candidates, ok)
	if len(pool) == 0 {
		return "", fmt.Errorf("%w (class %s, type %s)", ErrNoTactic, field.Annotation.Class, string(field.Type))
	}
	if opts.Cheapest && opts.Cost != nil && costOp != "" {
		if best, found := r.pickCheapest(pool, costOp, opts); found {
			return best, nil
		}
	}
	best := pool[0]
	bestLeak := r.byName[best].Descriptor.Leakage
	bestCost, bestHasCost := pickCost(opts, best, costOp)
	for _, n := range pool[1:] {
		leak := r.byName[n].Descriptor.Leakage
		cost, hasCost := pickCost(opts, n, costOp)
		better := false
		switch {
		case leak != bestLeak:
			better = leak > bestLeak
		case hasCost && bestHasCost && cost != bestCost:
			better = cost < bestCost
		default:
			better = n < best
		}
		if better {
			best, bestLeak, bestCost, bestHasCost = n, leak, cost, hasCost
		}
	}
	return best, nil
}

// pickCost evaluates the tie-break cost of one candidate, when available.
func pickCost(opts SelectOptions, tactic string, costOp model.Op) (float64, bool) {
	if opts.Cost == nil || costOp == "" {
		return 0, false
	}
	return opts.Cost(tactic, costOp)
}

// pickCheapest ranks pool by workload-weighted estimated cost. A tactic's
// score covers the requested op plus insert/delete maintenance, weighted
// by the observed workload mix. found is false when no candidate has any
// estimate (the caller then falls back to the classic rule).
func (r *Registry) pickCheapest(pool []string, costOp model.Op, opts SelectOptions) (string, bool) {
	group := []model.Op{costOp}
	if costOp != model.OpInsert {
		group = append(group, model.OpInsert)
	}
	if costOp != model.OpDelete {
		group = append(group, model.OpDelete)
	}
	weight := func(op model.Op) float64 {
		if opts.Weights == nil {
			return 1
		}
		return opts.Weights[op]
	}
	best, bestScore := "", 0.0
	var bestLeak model.Leakage = -1
	for _, n := range pool {
		score, any := 0.0, false
		for _, op := range group {
			if c, ok := opts.Cost(n, op); ok {
				score += weight(op) * c
				any = true
			}
		}
		if !any {
			continue
		}
		leak := r.byName[n].Descriptor.Leakage
		better := false
		switch {
		case best == "":
			better = true
		case score != bestScore:
			better = score < bestScore
		case leak != bestLeak:
			// Equal cost: the higher-leakage tactic is usually the simpler
			// mechanism; prefer it, matching the classic rule's intuition.
			better = leak > bestLeak
		default:
			better = n < best
		}
		if better {
			best, bestScore, bestLeak = n, score, leak
		}
	}
	return best, best != ""
}

// EffectiveClass computes a field's protection level under the
// weakest-link rule: the class of the highest-leakage tactic in the plan.
func (r *Registry) EffectiveClass(p Plan) model.Class {
	var worst model.Leakage
	for _, n := range p.Tactics {
		if d, ok := r.byName[n]; ok && d.Descriptor.Leakage > worst {
			worst = d.Descriptor.Leakage
		}
	}
	if worst == 0 {
		return model.Class1
	}
	return model.ClassForLeakage(worst)
}

// SPIMap reproduces the paper's Table 1: the gateway and cloud interfaces
// required per high-level operation.
func SPIMap() map[string]struct{ Gateway, Cloud []string } {
	return map[string]struct{ Gateway, Cloud []string }{
		"Insert": {
			Gateway: []string{"Insertion", "DocIDGen", "SecureEnc"},
			Cloud:   []string{"Insertion"},
		},
		"Update": {
			Gateway: []string{"Update", "DocIDGen", "Retrieval", "SecureEnc"},
			Cloud:   []string{"Update", "Retrieval"},
		},
		"Delete": {
			Gateway: []string{"Deletion"},
			Cloud:   []string{"Deletion"},
		},
		"Read": {
			Gateway: []string{"Retrieval", "SecureEnc"},
			Cloud:   []string{"Retrieval"},
		},
		"Equality Search": {
			Gateway: []string{"EqQuery", "EqResolution", "<Read>"},
			Cloud:   []string{"EqQuery"},
		},
		"Boolean Search": {
			Gateway: []string{"BoolQuery", "BoolResolution", "<Read>"},
			Cloud:   []string{"BoolQuery"},
		},
		"Aggregate": {
			Gateway: []string{"<Query>", "AggFunctionResolution"},
			Cloud:   []string{"AggFunction"},
		},
	}
}
