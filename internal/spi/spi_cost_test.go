package spi_test

import (
	"testing"

	"datablinder/internal/model"
	"datablinder/internal/spi"
)

// costTable is a CostFn backed by a fixed map; pairs absent from the map
// report ok=false (unmeasured).
func costTable(m map[string]map[model.Op]float64) spi.CostFn {
	return func(tactic string, op model.Op) (float64, bool) {
		c, ok := m[tactic][op]
		return c, ok
	}
}

// TestClassicTieBreaksByMeasuredCost covers the satellite fix: OPE and ORE
// both leak order (equal leakage), so the classic rule historically picked
// OPE purely by name. With measured costs for both, the cheaper one must
// win; with a measurement for only one side, the deterministic name
// tie-break must survive unchanged.
func TestClassicTieBreaksByMeasuredCost(t *testing.T) {
	r := registry(t)
	f := field("amount", model.TypeFloat, "C5, op [I, RG]")

	base, err := r.Select(f)
	if err != nil {
		t.Fatal(err)
	}
	if base.ByOp[model.OpRange] != "OPE" {
		t.Fatalf("classic default range tactic = %q, want OPE (name tie-break)", base.ByOp[model.OpRange])
	}

	// ORE measured much cheaper for range queries on this workload.
	costs := costTable(map[string]map[model.Op]float64{
		"OPE": {model.OpRange: 500_000, model.OpInsert: 900_000},
		"ORE": {model.OpRange: 60_000, model.OpInsert: 40_000},
	})
	plan, err := r.SelectWith(f, spi.SelectOptions{Cost: costs})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ByOp[model.OpRange] != "ORE" {
		t.Fatalf("measured tie-break range tactic = %q, want ORE", plan.ByOp[model.OpRange])
	}
	if plan.ByOp[model.OpInsert] != "ORE" {
		t.Fatalf("measured tie-break insert tactic = %q, want ORE", plan.ByOp[model.OpInsert])
	}

	// Only one side measured: ranking by half a comparison would flap with
	// measurement order, so the name tie-break must still decide.
	oneSided, err := r.SelectWith(f, spi.SelectOptions{Cost: costTable(map[string]map[model.Op]float64{
		"ORE": {model.OpRange: 60_000},
	})})
	if err != nil {
		t.Fatal(err)
	}
	if oneSided.ByOp[model.OpRange] != "OPE" {
		t.Fatalf("one-sided measurement range tactic = %q, want OPE", oneSided.ByOp[model.OpRange])
	}
}

// TestCheapestMinimizesWeightedCost exercises planner mode: selection must
// follow the workload mix, not the leakage ordering, and the insert slot
// must reuse the chosen search tactic instead of adding an index.
func TestCheapestMinimizesWeightedCost(t *testing.T) {
	r := registry(t)
	f := field("amount", model.TypeFloat, "C5, op [I, RG]")
	costs := costTable(map[string]map[model.Op]float64{
		"OPE": {model.OpRange: 100_000, model.OpInsert: 900_000, model.OpDelete: 40_000},
		"ORE": {model.OpRange: 2_000_000, model.OpInsert: 40_000, model.OpDelete: 30_000},
	})

	insertHeavy, err := r.SelectWith(f, spi.SelectOptions{
		Cheapest: true,
		Cost:     costs,
		Weights:  map[model.Op]float64{model.OpInsert: 100, model.OpRange: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if insertHeavy.ByOp[model.OpRange] != "ORE" || insertHeavy.ByOp[model.OpInsert] != "ORE" {
		t.Fatalf("insert-heavy plan = %v, want ORE/ORE", insertHeavy.ByOp)
	}

	queryHeavy, err := r.SelectWith(f, spi.SelectOptions{
		Cheapest: true,
		Cost:     costs,
		Weights:  map[model.Op]float64{model.OpInsert: 1, model.OpRange: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if queryHeavy.ByOp[model.OpRange] != "OPE" {
		t.Fatalf("query-heavy range tactic = %q, want OPE", queryHeavy.ByOp[model.OpRange])
	}
	if queryHeavy.ByOp[model.OpInsert] != "OPE" {
		t.Fatalf("query-heavy insert tactic = %q, want OPE (reuse search tactic)", queryHeavy.ByOp[model.OpInsert])
	}
	if len(queryHeavy.Tactics) != 1 {
		t.Fatalf("query-heavy plan tactics = %v, want a single index", queryHeavy.Tactics)
	}
}

// TestCheapestRespectsLeakageCeiling: cost can never buy leakage — a
// tactic above the class ceiling stays excluded however cheap it is.
func TestCheapestRespectsLeakageCeiling(t *testing.T) {
	r := registry(t)
	f := field("note", model.TypeString, "C1, op [I]")
	plan, err := r.SelectWith(f, spi.SelectOptions{
		Cheapest: true,
		Cost: costTable(map[string]map[model.Op]float64{
			"DET": {model.OpInsert: 1},
			"RND": {model.OpInsert: 1_000_000},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ByOp[model.OpInsert] != "RND" {
		t.Fatalf("C1 insert tactic = %q, want RND (DET exceeds ceiling)", plan.ByOp[model.OpInsert])
	}
}

// TestCheapestHonorsPins: Annotation.Tactics pins are hard overrides; the
// planner only chooses within them.
func TestCheapestHonorsPins(t *testing.T) {
	r := registry(t)
	f := field("amount", model.TypeFloat, "C5, op [I, RG], tactic [OPE]")
	plan, err := r.SelectWith(f, spi.SelectOptions{
		Cheapest: true,
		Cost: costTable(map[string]map[model.Op]float64{
			"OPE": {model.OpRange: 1_000_000, model.OpInsert: 1_000_000},
			"ORE": {model.OpRange: 1, model.OpInsert: 1},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ByOp[model.OpRange] != "OPE" || plan.ByOp[model.OpInsert] != "OPE" {
		t.Fatalf("pinned plan = %v, want OPE everywhere", plan.ByOp)
	}
}

// TestCheapestFallsBackWithoutEstimates: when no candidate has a cost
// estimate, Cheapest degrades to the classic deterministic rule.
func TestCheapestFallsBackWithoutEstimates(t *testing.T) {
	r := registry(t)
	f := field("amount", model.TypeFloat, "C5, op [I, RG]")
	plan, err := r.SelectWith(f, spi.SelectOptions{
		Cheapest: true,
		Cost:     func(string, model.Op) (float64, bool) { return 0, false },
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ByOp[model.OpRange] != "OPE" {
		t.Fatalf("fallback range tactic = %q, want OPE", plan.ByOp[model.OpRange])
	}
}
