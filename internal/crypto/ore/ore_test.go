package ore

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"datablinder/internal/crypto/primitives"
)

func cipher(t testing.TB) *Cipher {
	t.Helper()
	k, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	return New(k)
}

func TestDeterminism(t *testing.T) {
	c := cipher(t)
	if !bytes.Equal(c.EncryptUint64(99), c.EncryptUint64(99)) {
		t.Fatal("ORE not deterministic")
	}
}

func TestCiphertextShape(t *testing.T) {
	c := cipher(t)
	ct := c.EncryptUint64(12345)
	if len(ct) != CiphertextSize {
		t.Fatalf("size = %d, want %d", len(ct), CiphertextSize)
	}
	for i, b := range ct {
		if b > 2 {
			t.Fatalf("position %d holds %d, want mod-3 value", i, b)
		}
	}
}

func TestCompareFixed(t *testing.T) {
	c := cipher(t)
	tests := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, -1},
		{1, 0, 1},
		{5, 5, 0},
		{100, 200, -1},
		{1 << 40, 1 << 39, 1},
		{math.MaxUint64, math.MaxUint64 - 1, 1},
		{math.MaxUint64, math.MaxUint64, 0},
	}
	for _, tt := range tests {
		got, err := Compare(c.EncryptUint64(tt.a), c.EncryptUint64(tt.b))
		if err != nil {
			t.Fatalf("Compare(%d,%d): %v", tt.a, tt.b, err)
		}
		if got != tt.want {
			t.Fatalf("Compare(Enc(%d),Enc(%d)) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareQuick(t *testing.T) {
	c := cipher(t)
	f := func(a, b uint64) bool {
		got, err := Compare(c.EncryptUint64(a), c.EncryptUint64(b))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return got == -1
		case a > b:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedEmbedding(t *testing.T) {
	c := cipher(t)
	values := []int64{math.MinInt64, -5, -1, 0, 1, 5, math.MaxInt64}
	for i := 1; i < len(values); i++ {
		got, err := Compare(c.EncryptInt64(values[i-1]), c.EncryptInt64(values[i]))
		if err != nil || got != -1 {
			t.Fatalf("Compare(Enc(%d),Enc(%d)) = %d, %v", values[i-1], values[i], got, err)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	c := cipher(t)
	ct := c.EncryptUint64(1)
	if _, err := Compare(ct[:10], ct); err != ErrCiphertextSize {
		t.Fatalf("short input: %v", err)
	}
	bad := append([]byte(nil), ct...)
	bad[0] = 7 // not a mod-3 value
	if _, err := Compare(bad, ct); err != ErrMalformed {
		t.Fatalf("malformed input: %v", err)
	}
}

func TestEqualHelper(t *testing.T) {
	c := cipher(t)
	a := c.EncryptUint64(77)
	b := c.EncryptUint64(77)
	if !Equal(a, b) {
		t.Fatal("Equal(same plaintext) = false")
	}
	if Equal(a, c.EncryptUint64(78)) {
		t.Fatal("Equal(different plaintexts) = true")
	}
	if Equal(a[:5], b) {
		t.Fatal("Equal accepted short ciphertext")
	}
}

func TestKeysDiffer(t *testing.T) {
	c1, c2 := cipher(t), cipher(t)
	if bytes.Equal(c1.EncryptUint64(42), c2.EncryptUint64(42)) {
		t.Fatal("two keys produced identical ciphertexts")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := cipher(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncryptUint64(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkCompare(b *testing.B) {
	c := cipher(b)
	x := c.EncryptUint64(123)
	y := c.EncryptUint64(456)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
