// Package ore implements a practical order-revealing encryption scheme in
// the style of Chenette–Lewi–Weis–Wu (FSE 2016), the construction behind
// the FastORE library the paper integrates (the ORE tactic, protection
// class 5 — order leakage).
//
// Unlike OPE, ciphertexts are not themselves ordered numbers; a public
// Compare function reveals the order (and nothing else beyond the index of
// the first differing bit, the scheme's documented leakage). For each bit
// position i of the 64-bit plaintext, the ciphertext stores
//
//	u_i = ( PRF(k, prefix_{i}) + b_i ) mod 3
//
// where prefix_i is the i-bit prefix of the plaintext. Comparison scans for
// the first position where two ciphertexts disagree and uses mod-3
// arithmetic to learn which plaintext is larger.
package ore

import (
	"bytes"
	"errors"

	"datablinder/internal/crypto/primitives"
)

// Bits is the plaintext width in bits.
const Bits = 64

// CiphertextSize is the serialized ciphertext width: one byte per bit
// position (values in {0,1,2}).
const CiphertextSize = Bits

// Errors returned by this package.
var (
	ErrCiphertextSize = errors.New("ore: ciphertext must be 64 bytes")
	ErrMalformed      = errors.New("ore: malformed ciphertext")
)

// Cipher is a stateless ORE cipher. It is safe for concurrent use.
type Cipher struct {
	key primitives.Key
}

// New constructs an ORE cipher from key.
func New(key primitives.Key) *Cipher {
	return &Cipher{key: key}
}

// EncryptUint64 encrypts m. Encryption is deterministic per key.
func (c *Cipher) EncryptUint64(m uint64) []byte {
	out := make([]byte, CiphertextSize)
	// prefix holds the bits of m above position i, packed into a uint64 and
	// tagged with the bit index so distinct positions never collide.
	for i := 0; i < Bits; i++ {
		shift := uint(Bits - i)
		var prefix uint64
		if shift < 64 {
			prefix = m >> shift
		}
		b := (m >> uint(Bits-1-i)) & 1
		f := primitives.PRFUint64(c.key,
			primitives.Uint64Bytes(uint64(i)),
			primitives.Uint64Bytes(prefix))
		out[i] = byte((f + b) % 3)
	}
	return out
}

// EncryptInt64 embeds signed values order-preservingly (offset by 2^63).
func (c *Cipher) EncryptInt64(v int64) []byte {
	return c.EncryptUint64(uint64(v) ^ (1 << 63))
}

// Compare reveals the order of the plaintexts inside a and b without any
// key. It is the operation the cloud executes for range predicates.
func Compare(a, b []byte) (int, error) {
	if len(a) != CiphertextSize || len(b) != CiphertextSize {
		return 0, ErrCiphertextSize
	}
	for i := 0; i < CiphertextSize; i++ {
		if a[i] > 2 || b[i] > 2 {
			return 0, ErrMalformed
		}
		if a[i] == b[i] {
			continue
		}
		// At the first differing position the prefixes were equal, so the
		// PRF values were equal and the difference is the plaintext bit:
		// b_i(b) - b_i(a) mod 3 == 1 means a's bit is 0 and b's bit is 1.
		if (a[i]+1)%3 == b[i] {
			return -1, nil
		}
		return 1, nil
	}
	return 0, nil
}

// Equal reports whether two ciphertexts encrypt the same plaintext.
func Equal(a, b []byte) bool {
	return len(a) == CiphertextSize && bytes.Equal(a, b)
}
