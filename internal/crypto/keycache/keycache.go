// Package keycache provides a small bounded LRU used to memoize derived
// per-keyword and per-field cryptographic state (PRF-derived keys,
// constructed AEAD/DET ciphers) on the gateway hot path. Derivation is
// deterministic, so a cache hit is observationally identical to
// re-deriving — the cache only removes CPU work, never changes results.
//
// A process-wide toggle (SetEnabled) lets benchmarks A/B the caches
// without re-plumbing construction paths: while disabled every lookup
// misses and nothing is stored.
package keycache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultSize is a reasonable bound for per-keyword caches: large enough
// to cover a working set of hot keywords, small enough that adversarially
// many distinct keywords cannot grow memory without bound.
const DefaultSize = 1024

var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled toggles all key caches process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether key caching is active.
func Enabled() bool { return enabled.Load() }

// Cache is a bounded LRU safe for concurrent use. The zero value is not
// usable; construct with New.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache holding at most max entries (DefaultSize if
// max <= 0).
func New[K comparable, V any](max int) *Cache[K, V] {
	if max <= 0 {
		max = DefaultSize
	}
	return &Cache[K, V]{
		max:   max,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the cached value for key, marking it most-recently used.
// Always misses while caching is disabled.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	var zero V
	if !enabled.Load() {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put stores key→val, evicting the least-recently-used entry when full.
// A no-op while caching is disabled.
func (c *Cache[K, V]) Put(key K, val V) {
	if !enabled.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// GetOrCompute returns the cached value for key, calling compute on a
// miss and caching the result. compute runs outside the cache lock, so
// concurrent misses on the same key may compute twice — harmless for the
// deterministic derivations this cache holds, and it keeps slow PRF work
// from serializing unrelated lookups.
func (c *Cache[K, V]) GetOrCompute(key K, compute func() (V, error)) (V, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		var zero V
		return zero, err
	}
	c.Put(key, v)
	return v, nil
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
