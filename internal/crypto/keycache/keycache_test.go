package keycache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New[string, int](3)
	for i := 1; i <= 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing before eviction")
	}
	c.Put("k4", 4) // k2 is now least-recently used → evicted
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 survived eviction")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 2)
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatalf("Get(a) = %d, %v; want 2, true", v, ok)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestDisabledBypasses(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	SetEnabled(false)
	defer SetEnabled(true)
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get hit while disabled")
	}
	c.Put("b", 2)
	SetEnabled(true)
	if _, ok := c.Get("b"); ok {
		t.Fatal("Put stored while disabled")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("pre-disable entry lost")
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[string, int](4)
	calls := 0
	f := func() (int, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute("k", f)
		if err != nil || v != 42 {
			t.Fatalf("GetOrCompute = %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if _, err := c.GetOrCompute("err", func() (int, error) {
		return 0, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("compute error swallowed")
	}
	if _, ok := c.Get("err"); ok {
		t.Fatal("failed compute was cached")
	}
}

// TestConcurrentHammer exercises the cache from parallel goroutines under
// -race: overlapping gets, puts, evictions, and toggle flips.
func TestConcurrentHammer(t *testing.T) {
	c := New[int, int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*37 + i) % 64 // twice the capacity → constant eviction
				v, err := c.GetOrCompute(k, func() (int, error) { return k * 2, nil })
				if err != nil || v != k*2 {
					t.Errorf("GetOrCompute(%d) = %d, %v", k, v, err)
					return
				}
			}
		}(g)
	}
	// A ninth goroutine flips the global toggle while the others run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			SetEnabled(i%2 == 0)
		}
		SetEnabled(true)
	}()
	wg.Wait()
}
