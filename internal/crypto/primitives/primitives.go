// Package primitives provides the basic cryptographic building blocks used
// by every DataBlinder tactic: an AEAD cipher (AES-256-GCM), a PRF
// (HMAC-SHA256), HKDF key derivation, and a deterministic SIV-style
// encryption mode.
//
// These correspond to the Bouncy Castle primitives used by the original
// DataBlinder proof of concept (AES/GCM, HMAC-SHA256, etc.), implemented
// here on top of the Go standard library.
package primitives

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// KeySize is the byte length of all symmetric keys (AES-256, HMAC).
	KeySize = 32
	// NonceSize is the AES-GCM nonce length in bytes.
	NonceSize = 12
	// TagSize is the AES-GCM authentication tag length in bytes.
	TagSize = 16
	// PRFSize is the output length of the PRF (HMAC-SHA256).
	PRFSize = sha256.Size
)

// Common errors returned by this package.
var (
	ErrBadKeyLength   = errors.New("primitives: key must be 32 bytes")
	ErrCiphertext     = errors.New("primitives: ciphertext too short")
	ErrAuthentication = errors.New("primitives: message authentication failed")
)

// Key is a 32-byte symmetric key.
type Key [KeySize]byte

// NewRandomKey returns a fresh key drawn from crypto/rand.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("primitives: generating key: %w", err)
	}
	return k, nil
}

// KeyFromBytes copies b into a Key. b must be exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, ErrBadKeyLength
	}
	copy(k[:], b)
	return k, nil
}

// Zero overwrites the key material.
func (k *Key) Zero() {
	for i := range k {
		k[i] = 0
	}
}

// PRF computes HMAC-SHA256(key, data...) over the concatenation of the data
// slices. It is the universal pseudo-random function used for token and
// address derivation throughout the SSE schemes.
func PRF(key Key, data ...[]byte) []byte {
	mac := hmac.New(sha256.New, key[:])
	for _, d := range data {
		mac.Write(d)
	}
	return mac.Sum(nil)
}

// PRFKey derives a sub-Key via the PRF. It is a convenience for building
// per-keyword or per-field key hierarchies.
func PRFKey(key Key, data ...[]byte) Key {
	var out Key
	copy(out[:], PRF(key, data...))
	return out
}

// PRFUint64 derives a pseudo-random uint64 from the PRF output.
func PRFUint64(key Key, data ...[]byte) uint64 {
	return binary.BigEndian.Uint64(PRF(key, data...)[:8])
}

// HKDF derives length bytes of key material from the input keying material
// using HKDF-SHA256 (RFC 5869) with the given salt and info strings.
func HKDF(ikm, salt, info []byte, length int) ([]byte, error) {
	if length <= 0 || length > 255*sha256.Size {
		return nil, fmt.Errorf("primitives: invalid HKDF output length %d", length)
	}
	// Extract.
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(ikm)
	prk := ext.Sum(nil)
	// Expand.
	out := make([]byte, 0, length)
	var prev []byte
	for i := byte(1); len(out) < length; i++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(prev)
		exp.Write(info)
		exp.Write([]byte{i})
		prev = exp.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}

// DeriveKey derives a named sub-key from a master key using HKDF with the
// label as info. Derivation is deterministic: the same (master, label)
// always yields the same sub-key.
func DeriveKey(master Key, label string) (Key, error) {
	raw, err := HKDF(master[:], nil, []byte(label), KeySize)
	if err != nil {
		return Key{}, err
	}
	return KeyFromBytes(raw)
}

// AEAD wraps AES-256-GCM for authenticated encryption with associated data.
type AEAD struct {
	gcm cipher.AEAD
}

// NewAEAD constructs an AES-256-GCM AEAD from key.
func NewAEAD(key Key) (*AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("primitives: AES init: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("primitives: GCM init: %w", err)
	}
	return &AEAD{gcm: gcm}, nil
}

// Seal encrypts plaintext with a fresh random nonce and returns
// nonce || ciphertext || tag. ad is optional associated data.
func (a *AEAD) Seal(plaintext, ad []byte) ([]byte, error) {
	nonce := make([]byte, NonceSize)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("primitives: nonce: %w", err)
	}
	out := make([]byte, NonceSize, NonceSize+len(plaintext)+TagSize)
	copy(out, nonce)
	return a.gcm.Seal(out, nonce, plaintext, ad), nil
}

// Open decrypts a blob produced by Seal, authenticating ad.
func (a *AEAD) Open(blob, ad []byte) ([]byte, error) {
	if len(blob) < NonceSize+TagSize {
		return nil, ErrCiphertext
	}
	pt, err := a.gcm.Open(nil, blob[:NonceSize], blob[NonceSize:], ad)
	if err != nil {
		return nil, ErrAuthentication
	}
	return pt, nil
}

// DET is a deterministic authenticated encryption mode (SIV-style): the
// nonce is the truncated PRF of the plaintext under a separate MAC key, so
// equal plaintexts produce equal ciphertexts. This is the DET tactic's
// cryptographic core (protection class 4 — equality leakage).
type DET struct {
	aead   *AEAD
	macKey Key
}

// NewDET builds a deterministic cipher. encKey and macKey must be
// independent keys (derive them from a master key with distinct labels).
func NewDET(encKey, macKey Key) (*DET, error) {
	aead, err := NewAEAD(encKey)
	if err != nil {
		return nil, err
	}
	return &DET{aead: aead, macKey: macKey}, nil
}

// Encrypt deterministically encrypts plaintext. Equal inputs yield equal
// outputs; distinct inputs yield distinct outputs except with negligible
// probability.
func (d *DET) Encrypt(plaintext []byte) []byte {
	siv := PRF(d.macKey, plaintext)[:NonceSize]
	out := make([]byte, NonceSize, NonceSize+len(plaintext)+TagSize)
	copy(out, siv)
	return d.aead.gcm.Seal(out, siv, plaintext, nil)
}

// Decrypt reverses Encrypt, verifying both the GCM tag and the synthetic IV.
func (d *DET) Decrypt(blob []byte) ([]byte, error) {
	if len(blob) < NonceSize+TagSize {
		return nil, ErrCiphertext
	}
	pt, err := d.aead.gcm.Open(nil, blob[:NonceSize], blob[NonceSize:], nil)
	if err != nil {
		return nil, ErrAuthentication
	}
	want := PRF(d.macKey, pt)[:NonceSize]
	if subtle.ConstantTimeCompare(want, blob[:NonceSize]) != 1 {
		return nil, ErrAuthentication
	}
	return pt, nil
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("primitives: random bytes: %w", err)
	}
	return b, nil
}

// XOR returns a XOR b. The slices must have equal length; XOR panics
// otherwise because mismatched pads indicate a protocol bug, not an
// operational error.
func XOR(a, b []byte) []byte {
	if len(a) != len(b) {
		panic(fmt.Sprintf("primitives: XOR length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Uint64Bytes encodes v as 8 big-endian bytes.
func Uint64Bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
