// Package primitives provides the basic cryptographic building blocks used
// by every DataBlinder tactic: an AEAD cipher (AES-256-GCM), a PRF
// (HMAC-SHA256), HKDF key derivation, and a deterministic SIV-style
// encryption mode.
//
// These correspond to the Bouncy Castle primitives used by the original
// DataBlinder proof of concept (AES/GCM, HMAC-SHA256, etc.), implemented
// here on top of the Go standard library.
package primitives

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"sync"
	"sync/atomic"
)

const (
	// KeySize is the byte length of all symmetric keys (AES-256, HMAC).
	KeySize = 32
	// NonceSize is the AES-GCM nonce length in bytes.
	NonceSize = 12
	// TagSize is the AES-GCM authentication tag length in bytes.
	TagSize = 16
	// PRFSize is the output length of the PRF (HMAC-SHA256).
	PRFSize = sha256.Size
)

// Common errors returned by this package.
var (
	ErrBadKeyLength   = errors.New("primitives: key must be 32 bytes")
	ErrCiphertext     = errors.New("primitives: ciphertext too short")
	ErrAuthentication = errors.New("primitives: message authentication failed")
)

// Key is a 32-byte symmetric key.
type Key [KeySize]byte

// NewRandomKey returns a fresh key drawn from crypto/rand.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("primitives: generating key: %w", err)
	}
	return k, nil
}

// KeyFromBytes copies b into a Key. b must be exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, ErrBadKeyLength
	}
	copy(k[:], b)
	return k, nil
}

// Zero overwrites the key material.
func (k *Key) Zero() {
	for i := range k {
		k[i] = 0
	}
}

// hotPathCaching gates the HMAC state pool and the DeriveKey memo. Both
// are semantically transparent (same outputs, fewer allocations); the
// toggle exists so benchmarks can A/B the optimized hot path against the
// allocate-per-call baseline.
var hotPathCaching atomic.Bool

func init() { hotPathCaching.Store(true) }

// SetHotPathCaching enables or disables the HMAC state pool and the
// DeriveKey memo (both on by default). It exists for benchmark baselines;
// production code never needs to call it.
func SetHotPathCaching(on bool) { hotPathCaching.Store(on) }

// HotPathCaching reports whether the primitive-level caches are active.
func HotPathCaching() bool { return hotPathCaching.Load() }

// The HMAC pool: keyed HMAC states are reusable via Reset, so the states
// for frequently used keys are pooled instead of re-initialized (two
// SHA-256 key schedules plus several allocations) on every PRF call.
// The pool map is sharded to keep lookups contention-free and bounded per
// shard so an adversarial or merely huge keyword population cannot pin
// unbounded memory: keys beyond a shard's capacity simply fall back to
// hmac.New.
const (
	macPoolShards   = 64
	macPoolPerShard = 64
)

type macShard struct {
	mu sync.RWMutex
	m  map[Key]*sync.Pool
}

var macShards [macPoolShards]macShard

// macPoolFor returns the HMAC state pool for key, or nil when the shard is
// full (callers fall back to a fresh HMAC).
func macPoolFor(key Key) *sync.Pool {
	sh := &macShards[key[0]%macPoolShards]
	sh.mu.RLock()
	p := sh.m[key]
	sh.mu.RUnlock()
	if p != nil {
		return p
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p := sh.m[key]; p != nil {
		return p
	}
	if sh.m == nil {
		sh.m = make(map[Key]*sync.Pool, macPoolPerShard)
	}
	if len(sh.m) >= macPoolPerShard {
		return nil
	}
	k := key
	p = &sync.Pool{New: func() any { return hmac.New(sha256.New, k[:]) }}
	sh.m[key] = p
	return p
}

// PRF computes HMAC-SHA256(key, data...) over the concatenation of the data
// slices. It is the universal pseudo-random function used for token and
// address derivation throughout the SSE schemes.
func PRF(key Key, data ...[]byte) []byte {
	return PRFInto(nil, key, data...)
}

// PRFInto appends the PRF output to dst and returns the extended slice,
// letting hot paths reuse caller-owned buffers. dst may be nil.
func PRFInto(dst []byte, key Key, data ...[]byte) []byte {
	var mac hash.Hash
	var pool *sync.Pool
	if hotPathCaching.Load() {
		pool = macPoolFor(key)
	}
	if pool != nil {
		mac = pool.Get().(hash.Hash)
	} else {
		mac = hmac.New(sha256.New, key[:])
	}
	for _, d := range data {
		mac.Write(d)
	}
	out := mac.Sum(dst)
	if pool != nil {
		mac.Reset()
		pool.Put(mac)
	}
	return out
}

// PRFKey derives a sub-Key via the PRF. It is a convenience for building
// per-keyword or per-field key hierarchies.
func PRFKey(key Key, data ...[]byte) Key {
	var out Key
	PRFInto(out[:0], key, data...)
	return out
}

// PRFUint64 derives a pseudo-random uint64 from the PRF output.
func PRFUint64(key Key, data ...[]byte) uint64 {
	var buf [PRFSize]byte
	PRFInto(buf[:0], key, data...)
	return binary.BigEndian.Uint64(buf[:8])
}

// HKDF derives length bytes of key material from the input keying material
// using HKDF-SHA256 (RFC 5869) with the given salt and info strings.
func HKDF(ikm, salt, info []byte, length int) ([]byte, error) {
	if length <= 0 || length > 255*sha256.Size {
		return nil, fmt.Errorf("primitives: invalid HKDF output length %d", length)
	}
	// Extract.
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(ikm)
	prk := ext.Sum(nil)
	// Expand.
	out := make([]byte, 0, length)
	var prev []byte
	for i := byte(1); len(out) < length; i++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(prev)
		exp.Write(info)
		exp.Write([]byte{i})
		prev = exp.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}

// deriveMemo caches DeriveKey results. Derivation is deterministic, so the
// cache is a pure speedup: HKDF runs once per (master, label). The map is
// dropped wholesale when it reaches deriveMemoMax entries — label sets are
// small and stable in practice (field × tactic × purpose), so eviction is
// effectively never hit outside adversarial inputs.
const deriveMemoMax = 4096

type deriveMemoKey struct {
	master Key
	label  string
}

var (
	deriveMemoMu sync.RWMutex
	deriveMemo   map[deriveMemoKey]Key
)

// DeriveKey derives a named sub-key from a master key using HKDF with the
// label as info. Derivation is deterministic: the same (master, label)
// always yields the same sub-key, and results are memoized so HKDF runs
// once per (master, label).
func DeriveKey(master Key, label string) (Key, error) {
	memo := hotPathCaching.Load()
	mk := deriveMemoKey{master: master, label: label}
	if memo {
		deriveMemoMu.RLock()
		k, ok := deriveMemo[mk]
		deriveMemoMu.RUnlock()
		if ok {
			return k, nil
		}
	}
	raw, err := HKDF(master[:], nil, []byte(label), KeySize)
	if err != nil {
		return Key{}, err
	}
	k, err := KeyFromBytes(raw)
	if err != nil {
		return Key{}, err
	}
	if memo {
		deriveMemoMu.Lock()
		if deriveMemo == nil || len(deriveMemo) >= deriveMemoMax {
			deriveMemo = make(map[deriveMemoKey]Key, 64)
		}
		deriveMemo[mk] = k
		deriveMemoMu.Unlock()
	}
	return k, nil
}

// AEAD wraps AES-256-GCM for authenticated encryption with associated data.
type AEAD struct {
	gcm cipher.AEAD
}

// NewAEAD constructs an AES-256-GCM AEAD from key.
func NewAEAD(key Key) (*AEAD, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("primitives: AES init: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("primitives: GCM init: %w", err)
	}
	return &AEAD{gcm: gcm}, nil
}

// Seal encrypts plaintext with a fresh random nonce and returns
// nonce || ciphertext || tag. ad is optional associated data.
func (a *AEAD) Seal(plaintext, ad []byte) ([]byte, error) {
	return a.SealInto(nil, plaintext, ad)
}

// SealInto appends nonce || ciphertext || tag to dst and returns the
// extended slice, letting hot paths reuse caller-owned buffers. dst may be
// nil (equivalent to Seal).
func (a *AEAD) SealInto(dst, plaintext, ad []byte) ([]byte, error) {
	var nonce [NonceSize]byte
	if _, err := io.ReadFull(rand.Reader, nonce[:]); err != nil {
		return nil, fmt.Errorf("primitives: nonce: %w", err)
	}
	need := len(dst) + NonceSize + len(plaintext) + TagSize
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, nonce[:]...)
	return a.gcm.Seal(dst, nonce[:], plaintext, ad), nil
}

// Open decrypts a blob produced by Seal, authenticating ad.
func (a *AEAD) Open(blob, ad []byte) ([]byte, error) {
	if len(blob) < NonceSize+TagSize {
		return nil, ErrCiphertext
	}
	pt, err := a.gcm.Open(nil, blob[:NonceSize], blob[NonceSize:], ad)
	if err != nil {
		return nil, ErrAuthentication
	}
	return pt, nil
}

// DET is a deterministic authenticated encryption mode (SIV-style): the
// nonce is the truncated PRF of the plaintext under a separate MAC key, so
// equal plaintexts produce equal ciphertexts. This is the DET tactic's
// cryptographic core (protection class 4 — equality leakage).
type DET struct {
	aead   *AEAD
	macKey Key
}

// NewDET builds a deterministic cipher. encKey and macKey must be
// independent keys (derive them from a master key with distinct labels).
func NewDET(encKey, macKey Key) (*DET, error) {
	aead, err := NewAEAD(encKey)
	if err != nil {
		return nil, err
	}
	return &DET{aead: aead, macKey: macKey}, nil
}

// Encrypt deterministically encrypts plaintext. Equal inputs yield equal
// outputs; distinct inputs yield distinct outputs except with negligible
// probability.
func (d *DET) Encrypt(plaintext []byte) []byte {
	var sivBuf [PRFSize]byte
	siv := PRFInto(sivBuf[:0], d.macKey, plaintext)[:NonceSize]
	out := make([]byte, NonceSize, NonceSize+len(plaintext)+TagSize)
	copy(out, siv)
	return d.aead.gcm.Seal(out, siv, plaintext, nil)
}

// Decrypt reverses Encrypt, verifying both the GCM tag and the synthetic IV.
func (d *DET) Decrypt(blob []byte) ([]byte, error) {
	if len(blob) < NonceSize+TagSize {
		return nil, ErrCiphertext
	}
	pt, err := d.aead.gcm.Open(nil, blob[:NonceSize], blob[NonceSize:], nil)
	if err != nil {
		return nil, ErrAuthentication
	}
	var wantBuf [PRFSize]byte
	want := PRFInto(wantBuf[:0], d.macKey, pt)[:NonceSize]
	if subtle.ConstantTimeCompare(want, blob[:NonceSize]) != 1 {
		return nil, ErrAuthentication
	}
	return pt, nil
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("primitives: random bytes: %w", err)
	}
	return b, nil
}

// XOR returns a XOR b. The slices must have equal length; XOR panics
// otherwise because mismatched pads indicate a protocol bug, not an
// operational error.
func XOR(a, b []byte) []byte {
	if len(a) != len(b) {
		panic(fmt.Sprintf("primitives: XOR length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]byte, len(a))
	subtle.XORBytes(out, a, b)
	return out
}

// Uint64Bytes encodes v as 8 big-endian bytes.
func Uint64Bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}
