//go:build race

package primitives

// raceEnabled reports that the race detector is active. sync.Pool
// deliberately drops items under -race, so exact allocation pinning is
// meaningless there.
const raceEnabled = true
