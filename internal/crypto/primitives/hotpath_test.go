package primitives

import (
	"bytes"
	"sync"
	"testing"
)

// TestPRFMatchesBaseline pins the pooled PRF to the allocate-per-call
// reference output across toggle states and buffer reuse.
func TestPRFMatchesBaseline(t *testing.T) {
	key, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{[]byte("namespace"), {0}, []byte("keyword")}

	SetHotPathCaching(false)
	want := PRF(key, data...)
	SetHotPathCaching(true)
	defer SetHotPathCaching(true)

	if got := PRF(key, data...); !bytes.Equal(got, want) {
		t.Fatalf("pooled PRF = %x, want %x", got, want)
	}
	// Repeat to exercise the Reset path of a recycled HMAC state.
	if got := PRF(key, data...); !bytes.Equal(got, want) {
		t.Fatalf("recycled PRF = %x, want %x", got, want)
	}
	buf := make([]byte, 0, PRFSize)
	if got := PRFInto(buf, key, data...); !bytes.Equal(got, want) {
		t.Fatalf("PRFInto = %x, want %x", got, want)
	}
	prefix := []byte("prefix")
	out := PRFInto(append([]byte(nil), prefix...), key, data...)
	if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], want) {
		t.Fatalf("PRFInto with prefix = %x", out)
	}
}

func TestDeriveKeyMemoMatchesBaseline(t *testing.T) {
	master, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	SetHotPathCaching(false)
	want, err := DeriveKey(master, "label-a")
	if err != nil {
		t.Fatal(err)
	}
	SetHotPathCaching(true)
	defer SetHotPathCaching(true)
	for i := 0; i < 3; i++ {
		got, err := DeriveKey(master, "label-a")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("memoized DeriveKey = %x, want %x", got, want)
		}
	}
}

func TestSealIntoRoundTrip(t *testing.T) {
	key, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	aead, err := NewAEAD(key)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the quick brown fox")
	ad := []byte("assoc")
	buf := make([]byte, 0, NonceSize+len(pt)+TagSize)
	ct, err := aead.SealInto(buf, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := aead.Open(ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %q, want %q", got, pt)
	}
	// With a prefix already in dst, the frame must append after it.
	prefix := []byte("hdr")
	out, err := aead.SealInto(append([]byte(nil), prefix...), pt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) {
		t.Fatalf("SealInto clobbered prefix: %q", out[:len(prefix)])
	}
	if got, err := aead.Open(out[len(prefix):], nil); err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("SealInto-with-prefix round trip = %q, %v", got, err)
	}
}

// TestHotPathAllocs pins the allocation counts of the PRF, AEAD.Seal and
// DET.Encrypt hot paths so regressions show up as test failures rather
// than as GC pressure in production. The ceilings account for two costs
// outside this package's control: the variadic data slice (1 alloc) and
// one internal allocation in the stdlib's GCM Seal. Skipped under -race,
// where sync.Pool deliberately drops items.
func TestHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	key, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	SetHotPathCaching(true)
	data := []byte("allocation-regression-probe")

	// PRFInto with a caller buffer: only the variadic slice remains once
	// the HMAC state pool is warm (7+ allocs without pooling).
	buf := make([]byte, 0, PRFSize)
	PRFInto(buf, key, data) // warm the pool outside the measurement
	if got := testing.AllocsPerRun(200, func() {
		PRFInto(buf, key, data)
	}); got > 1 {
		t.Errorf("PRFInto allocs/op = %.1f, want <= 1", got)
	}
	// PRF (allocating variant): variadic slice + output slice.
	if got := testing.AllocsPerRun(200, func() {
		PRF(key, data)
	}); got > 2 {
		t.Errorf("PRF allocs/op = %.1f, want <= 2", got)
	}

	aead, err := NewAEAD(key)
	if err != nil {
		t.Fatal(err)
	}
	sealBuf := make([]byte, 0, NonceSize+len(data)+TagSize)
	if got := testing.AllocsPerRun(200, func() {
		if _, err := aead.SealInto(sealBuf, data, nil); err != nil {
			t.Fatal(err)
		}
	}); got > 1 {
		t.Errorf("SealInto allocs/op = %.1f, want <= 1", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := aead.Seal(data, nil); err != nil {
			t.Fatal(err)
		}
	}); got > 2 {
		t.Errorf("Seal allocs/op = %.1f, want <= 2", got)
	}

	encKey, _ := NewRandomKey()
	macKey, _ := NewRandomKey()
	det, err := NewDET(encKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	det.Encrypt(data) // warm the MAC pool for macKey
	if got := testing.AllocsPerRun(200, func() {
		det.Encrypt(data)
	}); got > 3 {
		t.Errorf("DET.Encrypt allocs/op = %.1f, want <= 3", got)
	}
}

// TestMACPoolConcurrent hammers the pooled PRF from parallel goroutines
// under -race, over more distinct keys than one pool shard holds so both
// the pooled and fallback paths run.
func TestMACPoolConcurrent(t *testing.T) {
	const keys = 128
	ks := make([]Key, keys)
	want := make([][]byte, keys)
	SetHotPathCaching(true)
	for i := range ks {
		k, err := NewRandomKey()
		if err != nil {
			t.Fatal(err)
		}
		ks[i] = k
		want[i] = PRF(k, []byte{byte(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := iter % keys
				if got := PRF(ks[i], []byte{byte(i)}); !bytes.Equal(got, want[i]) {
					t.Errorf("concurrent PRF mismatch for key %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkPRFInto(b *testing.B) {
	key, _ := NewRandomKey()
	data := []byte("benchmark-keyword")
	for _, mode := range []struct {
		name string
		on   bool
	}{{"pooled", true}, {"baseline", false}} {
		b.Run(mode.name, func(b *testing.B) {
			SetHotPathCaching(mode.on)
			defer SetHotPathCaching(true)
			buf := make([]byte, 0, PRFSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				PRFInto(buf, key, data)
			}
		})
	}
}

func BenchmarkSealInto(b *testing.B) {
	key, _ := NewRandomKey()
	aead, _ := NewAEAD(key)
	pt := make([]byte, 256)
	buf := make([]byte, 0, NonceSize+len(pt)+TagSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aead.SealInto(buf, pt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

