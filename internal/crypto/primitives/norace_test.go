//go:build !race

package primitives

const raceEnabled = false
