package primitives

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func mustKey(t *testing.T) Key {
	t.Helper()
	k, err := NewRandomKey()
	if err != nil {
		t.Fatalf("NewRandomKey: %v", err)
	}
	return k
}

func TestKeyFromBytes(t *testing.T) {
	tests := []struct {
		name    string
		in      []byte
		wantErr bool
	}{
		{"exact", make([]byte, KeySize), false},
		{"short", make([]byte, KeySize-1), true},
		{"long", make([]byte, KeySize+1), true},
		{"empty", nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := KeyFromBytes(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("KeyFromBytes(%d bytes) err=%v, wantErr=%v", len(tt.in), err, tt.wantErr)
			}
		})
	}
}

func TestKeyZero(t *testing.T) {
	k := mustKey(t)
	k.Zero()
	for i, b := range k {
		if b != 0 {
			t.Fatalf("byte %d not zeroed: %x", i, b)
		}
	}
}

func TestPRFMatchesHMAC(t *testing.T) {
	k := mustKey(t)
	data := []byte("hello world")
	mac := hmac.New(sha256.New, k[:])
	mac.Write(data)
	want := mac.Sum(nil)
	got := PRF(k, data)
	if !bytes.Equal(got, want) {
		t.Fatalf("PRF != HMAC-SHA256: got %x want %x", got, want)
	}
}

func TestPRFConcatenation(t *testing.T) {
	// PRF over multiple slices must equal PRF over their concatenation.
	k := mustKey(t)
	a, b := []byte("foo"), []byte("bar")
	if !bytes.Equal(PRF(k, a, b), PRF(k, []byte("foobar"))) {
		t.Fatal("PRF(a,b) != PRF(a||b)")
	}
}

func TestPRFKeyDeterministic(t *testing.T) {
	k := mustKey(t)
	k1 := PRFKey(k, []byte("label"))
	k2 := PRFKey(k, []byte("label"))
	if k1 != k2 {
		t.Fatal("PRFKey not deterministic")
	}
	k3 := PRFKey(k, []byte("other"))
	if k1 == k3 {
		t.Fatal("PRFKey collision across labels")
	}
}

func TestHKDFProperties(t *testing.T) {
	ikm := []byte("input keying material")
	out1, err := HKDF(ikm, []byte("salt"), []byte("info"), 64)
	if err != nil {
		t.Fatalf("HKDF: %v", err)
	}
	if len(out1) != 64 {
		t.Fatalf("HKDF length = %d, want 64", len(out1))
	}
	out2, err := HKDF(ikm, []byte("salt"), []byte("info"), 64)
	if err != nil {
		t.Fatalf("HKDF: %v", err)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatal("HKDF not deterministic")
	}
	out3, err := HKDF(ikm, []byte("salt"), []byte("other info"), 64)
	if err != nil {
		t.Fatalf("HKDF: %v", err)
	}
	if bytes.Equal(out1, out3) {
		t.Fatal("HKDF ignored info parameter")
	}
	// Prefix property: a shorter read is a prefix of a longer one.
	short, err := HKDF(ikm, []byte("salt"), []byte("info"), 16)
	if err != nil {
		t.Fatalf("HKDF: %v", err)
	}
	if !bytes.Equal(short, out1[:16]) {
		t.Fatal("HKDF output not prefix-consistent")
	}
}

func TestHKDFInvalidLength(t *testing.T) {
	if _, err := HKDF([]byte("x"), nil, nil, 0); err == nil {
		t.Fatal("HKDF accepted zero length")
	}
	if _, err := HKDF([]byte("x"), nil, nil, 255*sha256.Size+1); err == nil {
		t.Fatal("HKDF accepted oversized length")
	}
}

func TestDeriveKeySeparation(t *testing.T) {
	master := mustKey(t)
	a, err := DeriveKey(master, "tactic/det/enc")
	if err != nil {
		t.Fatalf("DeriveKey: %v", err)
	}
	b, err := DeriveKey(master, "tactic/det/mac")
	if err != nil {
		t.Fatalf("DeriveKey: %v", err)
	}
	if a == b {
		t.Fatal("distinct labels produced identical keys")
	}
	a2, err := DeriveKey(master, "tactic/det/enc")
	if err != nil {
		t.Fatalf("DeriveKey: %v", err)
	}
	if a != a2 {
		t.Fatal("DeriveKey not deterministic")
	}
}

func TestAEADRoundTrip(t *testing.T) {
	aead, err := NewAEAD(mustKey(t))
	if err != nil {
		t.Fatalf("NewAEAD: %v", err)
	}
	tests := []struct {
		name string
		pt   []byte
		ad   []byte
	}{
		{"empty", nil, nil},
		{"short", []byte("x"), nil},
		{"with ad", []byte("patient record"), []byte("doc-42")},
		{"binary", []byte{0, 1, 2, 255, 254}, []byte{9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ct, err := aead.Seal(tt.pt, tt.ad)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			got, err := aead.Open(ct, tt.ad)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if !bytes.Equal(got, tt.pt) {
				t.Fatalf("round trip: got %q want %q", got, tt.pt)
			}
		})
	}
}

func TestAEADProbabilistic(t *testing.T) {
	aead, err := NewAEAD(mustKey(t))
	if err != nil {
		t.Fatalf("NewAEAD: %v", err)
	}
	c1, _ := aead.Seal([]byte("same"), nil)
	c2, _ := aead.Seal([]byte("same"), nil)
	if bytes.Equal(c1, c2) {
		t.Fatal("AEAD produced identical ciphertexts for equal plaintexts")
	}
}

func TestAEADTamperDetection(t *testing.T) {
	aead, err := NewAEAD(mustKey(t))
	if err != nil {
		t.Fatalf("NewAEAD: %v", err)
	}
	ct, _ := aead.Seal([]byte("sensitive"), []byte("ad"))
	for i := 0; i < len(ct); i += 7 {
		mut := append([]byte(nil), ct...)
		mut[i] ^= 0x01
		if _, err := aead.Open(mut, []byte("ad")); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	if _, err := aead.Open(ct, []byte("wrong ad")); err == nil {
		t.Fatal("wrong associated data accepted")
	}
	if _, err := aead.Open(ct[:NonceSize+TagSize-1], nil); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestDETDeterminism(t *testing.T) {
	enc, mac := mustKey(t), mustKey(t)
	det, err := NewDET(enc, mac)
	if err != nil {
		t.Fatalf("NewDET: %v", err)
	}
	c1 := det.Encrypt([]byte("glucose"))
	c2 := det.Encrypt([]byte("glucose"))
	if !bytes.Equal(c1, c2) {
		t.Fatal("DET not deterministic")
	}
	c3 := det.Encrypt([]byte("insulin"))
	if bytes.Equal(c1, c3) {
		t.Fatal("DET collision across plaintexts")
	}
	pt, err := det.Decrypt(c1)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if string(pt) != "glucose" {
		t.Fatalf("round trip: got %q", pt)
	}
}

func TestDETTamper(t *testing.T) {
	det, err := NewDET(mustKey(t), mustKey(t))
	if err != nil {
		t.Fatalf("NewDET: %v", err)
	}
	ct := det.Encrypt([]byte("value"))
	mut := append([]byte(nil), ct...)
	mut[0] ^= 1
	if _, err := det.Decrypt(mut); err == nil {
		t.Fatal("tampered DET ciphertext accepted")
	}
	if _, err := det.Decrypt(ct[:4]); err == nil {
		t.Fatal("short DET ciphertext accepted")
	}
}

func TestDETQuickRoundTrip(t *testing.T) {
	det, err := NewDET(mustKey(t), mustKey(t))
	if err != nil {
		t.Fatalf("NewDET: %v", err)
	}
	f := func(pt []byte) bool {
		got, err := det.Decrypt(det.Encrypt(pt))
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAEADQuickRoundTrip(t *testing.T) {
	aead, err := NewAEAD(mustKey(t))
	if err != nil {
		t.Fatalf("NewAEAD: %v", err)
	}
	f := func(pt, ad []byte) bool {
		ct, err := aead.Seal(pt, ad)
		if err != nil {
			return false
		}
		got, err := aead.Open(ct, ad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXOR(t *testing.T) {
	a := []byte{0xFF, 0x00, 0xAA}
	b := []byte{0x0F, 0xF0, 0x55}
	got := XOR(a, b)
	want := []byte{0xF0, 0xF0, 0xFF}
	if !bytes.Equal(got, want) {
		t.Fatalf("XOR = %x, want %x", got, want)
	}
	// Involution: a ^ b ^ b == a.
	if !bytes.Equal(XOR(got, b), a) {
		t.Fatal("XOR not an involution")
	}
}

func TestXORPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XOR did not panic on length mismatch")
		}
	}()
	XOR([]byte{1}, []byte{1, 2})
}

func TestRandomBytes(t *testing.T) {
	a, err := RandomBytes(32)
	if err != nil {
		t.Fatalf("RandomBytes: %v", err)
	}
	b, err := RandomBytes(32)
	if err != nil {
		t.Fatalf("RandomBytes: %v", err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("RandomBytes returned identical outputs")
	}
	if len(a) != 32 {
		t.Fatalf("len = %d, want 32", len(a))
	}
}

func TestUint64Bytes(t *testing.T) {
	b := Uint64Bytes(0x0102030405060708)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(b, want) {
		t.Fatalf("Uint64Bytes = %x", b)
	}
}

func BenchmarkAEADSeal(b *testing.B) {
	k, _ := NewRandomKey()
	aead, _ := NewAEAD(k)
	pt := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aead.Seal(pt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDETEncrypt(b *testing.B) {
	k1, _ := NewRandomKey()
	k2, _ := NewRandomKey()
	det, _ := NewDET(k1, k2)
	pt := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Encrypt(pt)
	}
}

func BenchmarkPRF(b *testing.B) {
	k, _ := NewRandomKey()
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PRF(k, data)
	}
}
