package paillier

import (
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKey caches one key pair across tests; keygen dominates test time.
var (
	testKeyOnce sync.Once
	testKey     *PrivateKey
)

func key(t testing.TB) *PrivateKey {
	t.Helper()
	testKeyOnce.Do(func() {
		k, err := GenerateKey(512)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestGenerateKeyRejectsSmall(t *testing.T) {
	if _, err := GenerateKey(128); err != ErrKeySize {
		t.Fatalf("GenerateKey(128) = %v, want ErrKeySize", err)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	values := []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), 9223372036854775807, -9223372036854775808}
	for _, v := range values {
		ct, err := sk.EncryptInt64(v)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", v, err)
		}
		got, err := sk.DecryptInt64(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	sk := key(t)
	c1, _ := sk.EncryptInt64(7)
	c2, _ := sk.EncryptInt64(7)
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("two encryptions of 7 are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := key(t)
	tests := []struct{ a, b int64 }{
		{1, 2}, {0, 0}, {-5, 3}, {100, -200}, {1 << 30, 1 << 30},
	}
	for _, tt := range tests {
		ca, _ := sk.EncryptInt64(tt.a)
		cb, _ := sk.EncryptInt64(tt.b)
		sum, err := Add(ca, cb)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		got, err := sk.DecryptInt64(sum)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got != tt.a+tt.b {
			t.Fatalf("Dec(Enc(%d)*Enc(%d)) = %d, want %d", tt.a, tt.b, got, tt.a+tt.b)
		}
	}
}

func TestHomomorphicAddQuick(t *testing.T) {
	sk := key(t)
	f := func(a, b int32) bool {
		ca, err := sk.EncryptInt64(int64(a))
		if err != nil {
			return false
		}
		cb, err := sk.EncryptInt64(int64(b))
		if err != nil {
			return false
		}
		sum, err := Add(ca, cb)
		if err != nil {
			return false
		}
		got, err := sk.DecryptInt64(sum)
		return err == nil && got == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAddPlain(t *testing.T) {
	sk := key(t)
	ct, _ := sk.EncryptInt64(10)
	ct2, err := AddPlain(ct, big.NewInt(-3))
	if err != nil {
		t.Fatalf("AddPlain: %v", err)
	}
	got, _ := sk.DecryptInt64(ct2)
	if got != 7 {
		t.Fatalf("AddPlain = %d, want 7", got)
	}
}

func TestMulPlain(t *testing.T) {
	sk := key(t)
	tests := []struct{ v, k, want int64 }{
		{6, 7, 42}, {5, 0, 0}, {-4, 3, -12}, {4, -3, -12}, {-4, -3, 12},
	}
	for _, tt := range tests {
		ct, _ := sk.EncryptInt64(tt.v)
		prod, err := MulPlain(ct, big.NewInt(tt.k))
		if err != nil {
			t.Fatalf("MulPlain: %v", err)
		}
		got, _ := sk.DecryptInt64(prod)
		if got != tt.want {
			t.Fatalf("Dec(Enc(%d)^%d) = %d, want %d", tt.v, tt.k, got, tt.want)
		}
	}
}

func TestSum(t *testing.T) {
	sk := key(t)
	var cts []*Ciphertext
	want := int64(0)
	for _, v := range []int64{5, -2, 10, 0, 7} {
		ct, _ := sk.EncryptInt64(v)
		cts = append(cts, ct)
		want += v
	}
	sum, err := Sum(&sk.PublicKey, cts...)
	if err != nil {
		t.Fatalf("Sum: %v", err)
	}
	got, _ := sk.DecryptInt64(sum)
	if got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
	// Empty sum decrypts to zero.
	empty, err := Sum(&sk.PublicKey)
	if err != nil {
		t.Fatalf("empty Sum: %v", err)
	}
	if got, _ := sk.DecryptInt64(empty); got != 0 {
		t.Fatalf("empty Sum = %d, want 0", got)
	}
}

func TestMessageRange(t *testing.T) {
	sk := key(t)
	tooBig := new(big.Int).Rsh(sk.N, 1) // (n-1)/2 + 1 > maxAbs
	tooBig.Add(tooBig, big.NewInt(1))
	if _, err := sk.Encrypt(tooBig); err != ErrMessageRange {
		t.Fatalf("Encrypt(overflow) = %v, want ErrMessageRange", err)
	}
	neg := new(big.Int).Neg(tooBig)
	if _, err := sk.Encrypt(neg); err != ErrMessageRange {
		t.Fatalf("Encrypt(-overflow) = %v, want ErrMessageRange", err)
	}
	// The boundary value itself must round-trip.
	max := sk.maxAbs()
	ct, err := sk.Encrypt(max)
	if err != nil {
		t.Fatalf("Encrypt(maxAbs): %v", err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil || got.Cmp(max) != 0 {
		t.Fatalf("maxAbs round trip = %s, %v", got, err)
	}
}

func TestMismatchedKeys(t *testing.T) {
	sk1 := key(t)
	sk2, err := GenerateKey(512)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	a, _ := sk1.EncryptInt64(1)
	b, _ := sk2.EncryptInt64(2)
	if _, err := Add(a, b); err != ErrMismatchedKeys {
		t.Fatalf("Add across keys = %v, want ErrMismatchedKeys", err)
	}
}

func TestCiphertextSerialization(t *testing.T) {
	sk := key(t)
	ct, _ := sk.EncryptInt64(123)
	b := ct.Bytes()
	ct2, err := CiphertextFromBytes(&sk.PublicKey, b)
	if err != nil {
		t.Fatalf("CiphertextFromBytes: %v", err)
	}
	got, _ := sk.DecryptInt64(ct2)
	if got != 123 {
		t.Fatalf("serialized round trip = %d", got)
	}
	if _, err := CiphertextFromBytes(&sk.PublicKey, nil); err == nil {
		t.Fatal("empty ciphertext accepted")
	}
	huge := new(big.Int).Set(sk.N2).Bytes()
	if _, err := CiphertextFromBytes(&sk.PublicKey, huge); err == nil {
		t.Fatal("out-of-range ciphertext accepted")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	sk := key(t)
	pk2, err := PublicKeyFromN(sk.PublicKey.Bytes())
	if err != nil {
		t.Fatalf("PublicKeyFromN: %v", err)
	}
	// Cloud-side key must produce ciphertexts the gateway can decrypt and
	// combine with gateway-side ciphertexts.
	ct, err := pk2.EncryptInt64(55)
	if err != nil {
		t.Fatalf("Encrypt under reconstructed key: %v", err)
	}
	got, err := sk.DecryptInt64(&Ciphertext{C: ct.C, pk: &sk.PublicKey})
	if err != nil || got != 55 {
		t.Fatalf("cross-serialization round trip = %d, %v", got, err)
	}
	if _, err := PublicKeyFromN([]byte{1}); err == nil {
		t.Fatal("tiny modulus accepted")
	}
}

func TestDecryptRejectsGarbage(t *testing.T) {
	sk := key(t)
	if _, err := sk.Decrypt(&Ciphertext{C: big.NewInt(0), pk: &sk.PublicKey}); err == nil {
		t.Fatal("zero ciphertext accepted")
	}
	if _, err := sk.Decrypt(&Ciphertext{C: sk.N2, pk: &sk.PublicKey}); err == nil {
		t.Fatal("ciphertext = n² accepted")
	}
}

// TestAverageProtocol mirrors the middleware's Average aggregate: the cloud
// homomorphically sums and counts; the gateway decrypts and divides.
func TestAverageProtocol(t *testing.T) {
	sk := key(t)
	values := []int64{60, 72, 66, 80} // heart rates
	var cts []*Ciphertext
	for _, v := range values {
		ct, _ := sk.EncryptInt64(v)
		cts = append(cts, ct)
	}
	sum, err := Sum(&sk.PublicKey, cts...)
	if err != nil {
		t.Fatalf("Sum: %v", err)
	}
	total, _ := sk.DecryptInt64(sum)
	avg := float64(total) / float64(len(values))
	if avg != 69.5 {
		t.Fatalf("average = %g, want 69.5", avg)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	sk := key(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.EncryptInt64(12345); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	sk := key(b)
	ct, _ := sk.EncryptInt64(12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.DecryptInt64(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomomorphicAdd(b *testing.B) {
	sk := key(b)
	x, _ := sk.EncryptInt64(1)
	y, _ := sk.EncryptInt64(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Add(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
