// Package paillier implements the Paillier public-key cryptosystem
// (Paillier, EUROCRYPT 1999): an additively homomorphic scheme used by the
// DataBlinder Sum and Average aggregate tactics. The original system used
// the Javallier library; this is a from-scratch implementation over
// math/big.
//
// Homomorphic properties (all mod n²):
//
//	Enc(a) * Enc(b)   = Enc(a + b)
//	Enc(a) ^ k        = Enc(a * k)
//
// Signed values are supported by encoding negatives as n - |v| and decoding
// plaintexts above n/2 back to negative numbers.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Common errors.
var (
	ErrKeySize        = errors.New("paillier: key size must be at least 256 bits")
	ErrMessageRange   = errors.New("paillier: message out of range")
	ErrInvalidCipher  = errors.New("paillier: ciphertext out of range")
	ErrMismatchedKeys = errors.New("paillier: ciphertexts from different keys")
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key.
type PublicKey struct {
	N  *big.Int // modulus n = p*q
	G  *big.Int // generator, fixed to n+1
	N2 *big.Int // n² cache

	// pool, when non-nil, holds precomputed r^n mod n² masks so Encrypt
	// skips the per-call exponentiation. See EnableRandPool.
	pool *randPool
}

// PrivateKey is a Paillier private key.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int // lcm(p-1, q-1)
	Mu     *big.Int // (L(g^lambda mod n²))^-1 mod n
}

// GenerateKey creates a Paillier key pair with an n of the given bit size.
// Bit sizes of 1024+ are cryptographically meaningful; tests may use
// smaller sizes (>= 256) for speed.
func GenerateKey(bits int) (*PrivateKey, error) {
	if bits < 256 {
		return nil, ErrKeySize
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)

		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)

		// mu = (L(g^lambda mod n²))^-1 mod n, with L(x) = (x-1)/n.
		glambda := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(glambda, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue // degenerate parameters; retry
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, G: g, N2: n2},
			Lambda:    lambda,
			Mu:        mu,
		}, nil
	}
}

func lFunc(x, n *big.Int) *big.Int {
	r := new(big.Int).Sub(x, one)
	return r.Div(r, n)
}

// Ciphertext is a Paillier ciphertext bound to its public key.
type Ciphertext struct {
	C  *big.Int
	pk *PublicKey
}

// maxAbs returns the largest magnitude the signed encoding can represent:
// values v with |v| <= (n-1)/2 round-trip safely.
func (pk *PublicKey) maxAbs() *big.Int {
	m := new(big.Int).Sub(pk.N, one)
	return m.Rsh(m, 1)
}

// encode maps a signed big.Int into Z_n.
func (pk *PublicKey) encode(v *big.Int) (*big.Int, error) {
	if new(big.Int).Abs(v).Cmp(pk.maxAbs()) > 0 {
		return nil, ErrMessageRange
	}
	if v.Sign() >= 0 {
		return new(big.Int).Set(v), nil
	}
	return new(big.Int).Add(pk.N, v), nil
}

// decode maps an element of Z_n back to a signed big.Int.
func (pk *PublicKey) decode(m *big.Int) *big.Int {
	if m.Cmp(pk.maxAbs()) > 0 {
		return new(big.Int).Sub(m, pk.N)
	}
	return new(big.Int).Set(m)
}

// Encrypt encrypts the signed value v. When a randomness pool is enabled
// (EnableRandPool) and warm, the mask r^n mod n² is precomputed and this
// costs one modular multiplication.
func (pk *PublicKey) Encrypt(v *big.Int) (*Ciphertext, error) {
	m, err := pk.encode(v)
	if err != nil {
		return nil, err
	}
	rn, err := pk.mask()
	if err != nil {
		return nil, err
	}
	return pk.encryptWithMask(m, rn), nil
}

// encryptWithMask completes the online phase of encryption given the mask
// rn = r^n mod n²: c = g^m * rn mod n². With g = n+1: g^m = 1 + m*n
// (mod n²). rn is not modified.
func (pk *PublicKey) encryptWithMask(m, rn *big.Int) *Ciphertext {
	gm := new(big.Int).Mul(m, pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c, pk: pk}
}

// EncryptInt64 encrypts a signed 64-bit value.
func (pk *PublicKey) EncryptInt64(v int64) (*Ciphertext, error) {
	return pk.Encrypt(big.NewInt(v))
}

// EncryptZero returns a fresh encryption of zero, the identity element for
// homomorphic addition. Enc(0) = r^n mod n², so a pooled mask IS the
// ciphertext — no multiplication at all.
func (pk *PublicKey) EncryptZero() (*Ciphertext, error) {
	rn, err := pk.mask()
	if err != nil {
		return nil, err
	}
	return &Ciphertext{C: rn, pk: pk}, nil
}

// Decrypt recovers the signed plaintext from ct.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if ct.C.Sign() <= 0 || ct.C.Cmp(sk.N2) >= 0 {
		return nil, ErrInvalidCipher
	}
	clambda := new(big.Int).Exp(ct.C, sk.Lambda, sk.N2)
	m := lFunc(clambda, sk.N)
	m.Mul(m, sk.Mu)
	m.Mod(m, sk.N)
	return sk.decode(m), nil
}

// DecryptInt64 decrypts and converts to int64, erroring on overflow.
func (sk *PrivateKey) DecryptInt64(ct *Ciphertext) (int64, error) {
	m, err := sk.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	if !m.IsInt64() {
		return 0, fmt.Errorf("paillier: plaintext %s exceeds int64", m)
	}
	return m.Int64(), nil
}

// Add homomorphically adds two ciphertexts: Dec(Add(a,b)) = Dec(a)+Dec(b).
func Add(a, b *Ciphertext) (*Ciphertext, error) {
	if a.pk == nil || b.pk == nil || a.pk.N.Cmp(b.pk.N) != 0 {
		return nil, ErrMismatchedKeys
	}
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, a.pk.N2)
	return &Ciphertext{C: c, pk: a.pk}, nil
}

// AddPlain homomorphically adds plaintext v to ciphertext a.
func AddPlain(a *Ciphertext, v *big.Int) (*Ciphertext, error) {
	m, err := a.pk.encode(v)
	if err != nil {
		return nil, err
	}
	gm := new(big.Int).Mul(m, a.pk.N)
	gm.Add(gm, one)
	gm.Mod(gm, a.pk.N2)
	c := gm.Mul(gm, a.C)
	c.Mod(c, a.pk.N2)
	return &Ciphertext{C: c, pk: a.pk}, nil
}

// MulPlain homomorphically multiplies the plaintext inside a by scalar k:
// Dec(MulPlain(a,k)) = Dec(a)*k.
func MulPlain(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	m, err := a.pk.encode(k)
	if err != nil {
		return nil, err
	}
	c := new(big.Int).Exp(a.C, m, a.pk.N2)
	return &Ciphertext{C: c, pk: a.pk}, nil
}

// Sum homomorphically adds a sequence of ciphertexts. It returns an
// encryption of zero for an empty input, which requires pk.
func Sum(pk *PublicKey, cts ...*Ciphertext) (*Ciphertext, error) {
	acc, err := pk.EncryptZero()
	if err != nil {
		return nil, err
	}
	for _, ct := range cts {
		acc, err = Add(acc, ct)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Bytes serializes the ciphertext value.
func (ct *Ciphertext) Bytes() []byte { return ct.C.Bytes() }

// CiphertextFromBytes deserializes a ciphertext under pk.
func CiphertextFromBytes(pk *PublicKey, b []byte) (*Ciphertext, error) {
	c := new(big.Int).SetBytes(b)
	if c.Sign() <= 0 || c.Cmp(pk.N2) >= 0 {
		return nil, ErrInvalidCipher
	}
	return &Ciphertext{C: c, pk: pk}, nil
}

// PublicKeyFromN reconstructs a public key from its modulus bytes. It is
// used to ship the key to the cloud side for aggregate protocols.
func PublicKeyFromN(nBytes []byte) (*PublicKey, error) {
	n := new(big.Int).SetBytes(nBytes)
	if n.BitLen() < 256 {
		return nil, ErrKeySize
	}
	return &PublicKey{
		N:  n,
		G:  new(big.Int).Add(n, one),
		N2: new(big.Int).Mul(n, n),
	}, nil
}

// Bytes serializes the public key (its modulus).
func (pk *PublicKey) Bytes() []byte { return pk.N.Bytes() }
