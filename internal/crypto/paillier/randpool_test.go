package paillier

import (
	"math/big"
	"sync"
	"testing"
)

// testKeyBits keeps pool tests fast; correctness does not depend on size.
const testKeyBits = 512

func TestEncryptWithPoolRoundTrips(t *testing.T) {
	sk, err := GenerateKey(testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	sk.EnableRandPool(8)
	if err := sk.FillRandPool(); err != nil {
		t.Fatal(err)
	}
	if got := sk.RandPoolLen(); got != 8 {
		t.Fatalf("RandPoolLen = %d, want 8", got)
	}
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		ct, err := sk.EncryptInt64(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.DecryptInt64(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip of %d = %d", v, got)
		}
	}
	// Drain past capacity so the inline fallback path runs too.
	for i := 0; i < 20; i++ {
		ct, err := sk.EncryptInt64(7)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := sk.DecryptInt64(ct); err != nil || got != 7 {
			t.Fatalf("drained round trip = %d, %v", got, err)
		}
	}
}

func TestEncryptZeroPooledIsIdentity(t *testing.T) {
	sk, err := GenerateKey(testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	sk.EnableRandPool(4)
	if err := sk.FillRandPool(); err != nil {
		t.Fatal(err)
	}
	ct, err := sk.EncryptInt64(42)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := sk.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Add(ct, zero)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sk.DecryptInt64(sum); err != nil || got != 42 {
		t.Fatalf("42 + Enc(0) = %d, %v", got, err)
	}
	// Pooled zeros must still be probabilistic: two draws differ.
	z2, err := sk.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	if zero.C.Cmp(z2.C) == 0 {
		t.Fatal("two EncryptZero calls produced identical ciphertexts")
	}
}

func TestRandPoolingToggle(t *testing.T) {
	sk, err := GenerateKey(testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	sk.EnableRandPool(4)
	if err := sk.FillRandPool(); err != nil {
		t.Fatal(err)
	}
	SetRandPooling(false)
	defer SetRandPooling(true)
	ct, err := sk.EncryptInt64(-99)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := sk.DecryptInt64(ct); err != nil || got != -99 {
		t.Fatalf("toggle-off round trip = %d, %v", got, err)
	}
	// Pool untouched while the toggle is off.
	if got := sk.RandPoolLen(); got != 4 {
		t.Fatalf("RandPoolLen = %d after disabled encrypt, want 4", got)
	}
}

// TestRandPoolConcurrent hammers pooled encryption from parallel goroutines
// under -race: draws, refills, and inline fallbacks all interleave.
func TestRandPoolConcurrent(t *testing.T) {
	sk, err := GenerateKey(testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	sk.EnableRandPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				v := int64(g*100 + i)
				ct, err := sk.EncryptInt64(v)
				if err != nil {
					t.Errorf("Encrypt(%d): %v", v, err)
					return
				}
				got, err := sk.DecryptInt64(ct)
				if err != nil || got != v {
					t.Errorf("round trip of %d = %d, %v", v, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkPaillierEncrypt measures the offline/online split: "inline"
// pays the full r^n mod n² exponentiation per op; "pooled-online" times
// only the online phase (one mulmod) against precomputed masks, which is
// what a warm randomness pool delivers per Encrypt. Masks are cycled
// rather than refilled so the offline phase stays outside the measurement
// regardless of b.N (reusing a mask is benchmark-only, never done by the
// real pool).
func BenchmarkPaillierEncrypt(b *testing.B) {
	sk, err := GenerateKey(1024)
	if err != nil {
		b.Fatal(err)
	}
	v := big.NewInt(123456)
	b.Run("inline", func(b *testing.B) {
		SetRandPooling(false)
		defer SetRandPooling(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sk.Encrypt(v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled-online", func(b *testing.B) {
		masks := make([]*big.Int, 64)
		for i := range masks {
			m, err := sk.newMask()
			if err != nil {
				b.Fatal(err)
			}
			masks[i] = m
		}
		m, err := sk.PublicKey.encode(v)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sk.encryptWithMask(m, masks[i%len(masks)])
		}
	})
}
