package paillier

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sync/atomic"
)

// The expensive part of a Paillier encryption is the random mask
// r^n mod n² — one full-width modular exponentiation per ciphertext. The
// mask is independent of the message, so it can be precomputed off the hot
// path: with a warm pool, Encrypt is a single modular multiplication. This
// is the classic offline/online split for Paillier (see the homomorphic
// encryption survey in PAPERS.md).

// randPooling gates pool draws globally so benchmarks can A/B the
// precomputation without re-plumbing key setup. Pools still fill in the
// background while disabled; draws just bypass them.
var randPooling atomic.Bool

func init() { randPooling.Store(true) }

// SetRandPooling toggles use of precomputed encryption masks globally.
func SetRandPooling(on bool) { randPooling.Store(on) }

// RandPooling reports whether pooled masks are in use.
func RandPooling() bool { return randPooling.Load() }

// randPool buffers precomputed masks for one public key. The filler
// goroutine is self-terminating: it runs only while the pool has room and
// exits once full, so keys need no Close/teardown lifecycle. Each draw
// re-kicks the filler if it has stopped.
type randPool struct {
	masks   chan *big.Int
	filling atomic.Bool
	pk      *PublicKey
}

// EnableRandPool attaches a mask pool of the given capacity to pk and
// starts filling it in the background. capacity <= 0 detaches any pool.
// Calling it again replaces the existing pool.
func (pk *PublicKey) EnableRandPool(capacity int) {
	if capacity <= 0 {
		pk.pool = nil
		return
	}
	p := &randPool{masks: make(chan *big.Int, capacity), pk: pk}
	pk.pool = p
	p.kick()
}

// RandPoolLen reports how many precomputed masks are ready to draw.
func (pk *PublicKey) RandPoolLen() int {
	if pk.pool == nil {
		return 0
	}
	return len(pk.pool.masks)
}

// FillRandPool synchronously tops the pool up to capacity. Benchmarks call
// it to measure warm (pure online-phase) throughput.
func (pk *PublicKey) FillRandPool() error {
	p := pk.pool
	if p == nil {
		return nil
	}
	for {
		m, err := pk.newMask()
		if err != nil {
			return err
		}
		select {
		case p.masks <- m:
		default:
			return nil
		}
	}
}

func (p *randPool) kick() {
	if p.filling.CompareAndSwap(false, true) {
		go p.fill()
	}
}

func (p *randPool) fill() {
	defer p.filling.Store(false)
	for {
		m, err := p.pk.newMask()
		if err != nil {
			return // rand.Reader failure; surface on the inline path
		}
		select {
		case p.masks <- m:
		default:
			return // full: exit until the next draw kicks a new filler
		}
	}
}

// mask returns a fresh r^n mod n² value, preferring the precomputed pool
// and falling back to inline computation when it is dry or disabled.
func (pk *PublicKey) mask() (*big.Int, error) {
	if p := pk.pool; p != nil && randPooling.Load() {
		select {
		case m := <-p.masks:
			p.kick()
			return m, nil
		default:
			p.kick()
		}
	}
	return pk.newMask()
}

// newMask samples r uniform in [1, n) with gcd(r, n) = 1 and returns
// r^n mod n².
func (pk *PublicKey) newMask() (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: sampling r: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return new(big.Int).Exp(r, pk.N, pk.N2), nil
		}
	}
}
