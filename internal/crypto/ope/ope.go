// Package ope implements a stateless order-preserving encryption scheme in
// the style of Boldyreva et al. (the OPE tactic, protection class 5 —
// order leakage).
//
// The scheme maps the 64-bit unsigned plaintext domain into a 96-bit
// ciphertext range by recursive binary range splitting: at each recursion
// node the range split point is drawn pseudo-randomly (PRF-keyed, hence
// deterministic per key) from the window that leaves both halves enough
// room. Equal plaintexts always map to equal ciphertexts and the mapping
// is strictly monotone.
//
// Substitution note (recorded in DESIGN.md): the reference construction
// samples the split with a hypergeometric distribution; this implementation
// samples uniformly. That changes only the distribution of ciphertext gaps
// — determinism, strict monotonicity, and the order-leakage profile are
// identical, which is what the middleware's behaviour depends on.
package ope

import (
	"bytes"
	"errors"
	"math/big"

	"datablinder/internal/crypto/primitives"
)

// CiphertextSize is the fixed serialized ciphertext width in bytes
// (96 bits, big-endian). Lexicographic byte comparison of ciphertexts
// matches numeric order.
const CiphertextSize = 12

// rangeBits is the ciphertext range size in bits.
const rangeBits = 96

// ErrCiphertextSize is returned when decrypt/compare inputs have the wrong width.
var ErrCiphertextSize = errors.New("ope: ciphertext must be 12 bytes")

// Cipher is a stateless OPE cipher. It is safe for concurrent use.
type Cipher struct {
	key primitives.Key
}

// New constructs an OPE cipher from key.
func New(key primitives.Key) *Cipher {
	return &Cipher{key: key}
}

var (
	domainMax = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 64), big.NewInt(1))
	rangeMax  = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), rangeBits), big.NewInt(1))
)

// EncryptUint64 maps m to its order-preserving ciphertext.
func (c *Cipher) EncryptUint64(m uint64) []byte {
	ct := c.encrypt(new(big.Int).SetUint64(m))
	out := make([]byte, CiphertextSize)
	ct.FillBytes(out)
	return out
}

// EncryptInt64 maps a signed value through the order-preserving
// offset-by-2^63 embedding, so signed comparisons are preserved.
func (c *Cipher) EncryptInt64(v int64) []byte {
	return c.EncryptUint64(uint64(v) ^ (1 << 63))
}

// DecryptUint64 recovers the plaintext by binary search over the same
// deterministic mapping used for encryption.
func (c *Cipher) DecryptUint64(ct []byte) (uint64, error) {
	if len(ct) != CiphertextSize {
		return 0, ErrCiphertextSize
	}
	target := new(big.Int).SetBytes(ct)
	lo, hi := uint64(0), ^uint64(0)
	for lo < hi {
		mid := lo + (hi-lo)/2
		mc := c.encrypt(new(big.Int).SetUint64(mid))
		switch mc.Cmp(target) {
		case 0:
			return mid, nil
		case -1:
			lo = mid + 1
		default:
			if mid == 0 {
				return 0, errors.New("ope: ciphertext does not decrypt")
			}
			hi = mid - 1
		}
	}
	if c.encrypt(new(big.Int).SetUint64(lo)).Cmp(target) != 0 {
		return 0, errors.New("ope: ciphertext does not decrypt")
	}
	return lo, nil
}

// DecryptInt64 reverses EncryptInt64.
func (c *Cipher) DecryptInt64(ct []byte) (int64, error) {
	u, err := c.DecryptUint64(ct)
	if err != nil {
		return 0, err
	}
	return int64(u ^ (1 << 63)), nil
}

// Compare orders two ciphertexts: -1, 0, or +1. It requires no key and is
// the operation the cloud side runs for range queries.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// encrypt walks the deterministic recursive range split.
func (c *Cipher) encrypt(m *big.Int) *big.Int {
	dlo := new(big.Int)
	dhi := new(big.Int).Set(domainMax)
	rlo := new(big.Int)
	rhi := new(big.Int).Set(rangeMax)

	one := big.NewInt(1)
	for dlo.Cmp(dhi) < 0 {
		// dm = dlo + (dhi-dlo)/2
		dm := new(big.Int).Sub(dhi, dlo)
		dm.Rsh(dm, 1)
		dm.Add(dm, dlo)

		// Window for the split point rm:
		//   rmMin = rlo + (dm - dlo)   (left half keeps >= left domain size)
		//   rmMax = rhi - (dhi - dm)   (right half keeps >= right domain size)
		rmMin := new(big.Int).Sub(dm, dlo)
		rmMin.Add(rmMin, rlo)
		rmMax := new(big.Int).Sub(dhi, dm)
		rmMax.Sub(rhi, rmMax)

		rm := c.uniform(rmMin, rmMax, dlo, dhi, rlo, rhi)

		if m.Cmp(dm) <= 0 {
			dhi.Set(dm)
			rhi.Set(rm)
		} else {
			dlo.Add(dm, one)
			rlo.Add(rm, one)
		}
	}
	// Single plaintext left: pick its ciphertext uniformly in the leaf range.
	return c.uniform(rlo, rhi, dlo, dhi, rlo, rhi)
}

// uniform deterministically samples a value in [lo, hi] keyed by the full
// recursion node coordinates, via counter-mode PRF rejection sampling.
func (c *Cipher) uniform(lo, hi, dlo, dhi, rlo, rhi *big.Int) *big.Int {
	size := new(big.Int).Sub(hi, lo)
	size.Add(size, big.NewInt(1))
	if size.Sign() <= 0 {
		// The window invariant guarantees lo <= hi; violation is a bug.
		panic("ope: empty sampling window")
	}
	seed := make([]byte, 0, 4*CiphertextSize)
	seed = append(seed, pad(dlo)...)
	seed = append(seed, pad(dhi)...)
	seed = append(seed, pad(rlo)...)
	seed = append(seed, pad(rhi)...)

	// Rejection sampling: draw 128-bit candidates until one falls below the
	// largest multiple of size (eliminates modulo bias); the loop is
	// deterministic because the counter is part of the PRF input.
	bound := new(big.Int).Lsh(big.NewInt(1), 128)
	limit := new(big.Int).Div(bound, size)
	limit.Mul(limit, size)
	for ctr := uint64(0); ; ctr++ {
		draw := primitives.PRF(c.key, seed, primitives.Uint64Bytes(ctr))
		v := new(big.Int).SetBytes(draw[:16])
		if v.Cmp(limit) >= 0 {
			continue
		}
		v.Mod(v, size)
		return v.Add(v, lo)
	}
}

func pad(v *big.Int) []byte {
	out := make([]byte, CiphertextSize+1)
	v.FillBytes(out)
	return out
}
