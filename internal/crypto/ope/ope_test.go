package ope

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"datablinder/internal/crypto/primitives"
)

func cipher(t testing.TB) *Cipher {
	t.Helper()
	k, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	return New(k)
}

func TestDeterminism(t *testing.T) {
	c := cipher(t)
	a := c.EncryptUint64(123456)
	b := c.EncryptUint64(123456)
	if !bytes.Equal(a, b) {
		t.Fatal("OPE not deterministic")
	}
}

func TestKeysDiffer(t *testing.T) {
	c1, c2 := cipher(t), cipher(t)
	if bytes.Equal(c1.EncryptUint64(42), c2.EncryptUint64(42)) {
		t.Fatal("two keys produced identical ciphertexts")
	}
}

func TestOrderPreservationFixed(t *testing.T) {
	c := cipher(t)
	values := []uint64{0, 1, 2, 100, 1000, 1 << 20, 1 << 40, 1<<63 - 1, 1 << 63, math.MaxUint64 - 1, math.MaxUint64}
	cts := make([][]byte, len(values))
	for i, v := range values {
		cts[i] = c.EncryptUint64(v)
		if len(cts[i]) != CiphertextSize {
			t.Fatalf("ciphertext size = %d", len(cts[i]))
		}
	}
	for i := 1; i < len(values); i++ {
		if Compare(cts[i-1], cts[i]) >= 0 {
			t.Fatalf("order violated: Enc(%d) >= Enc(%d)", values[i-1], values[i])
		}
	}
}

func TestOrderPreservationQuick(t *testing.T) {
	c := cipher(t)
	f := func(a, b uint64) bool {
		ca, cb := c.EncryptUint64(a), c.EncryptUint64(b)
		switch {
		case a < b:
			return Compare(ca, cb) < 0
		case a > b:
			return Compare(ca, cb) > 0
		default:
			return Compare(ca, cb) == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedEmbedding(t *testing.T) {
	c := cipher(t)
	values := []int64{math.MinInt64, -1000, -1, 0, 1, 1000, math.MaxInt64}
	for i := 1; i < len(values); i++ {
		a := c.EncryptInt64(values[i-1])
		b := c.EncryptInt64(values[i])
		if Compare(a, b) >= 0 {
			t.Fatalf("signed order violated at %d < %d", values[i-1], values[i])
		}
	}
}

func TestDecrypt(t *testing.T) {
	c := cipher(t)
	for _, v := range []uint64{0, 7, 1 << 33, math.MaxUint64} {
		ct := c.EncryptUint64(v)
		got, err := c.DecryptUint64(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
	for _, v := range []int64{math.MinInt64, -42, 0, 42, math.MaxInt64} {
		ct := c.EncryptInt64(v)
		got, err := c.DecryptInt64(ct)
		if err != nil || got != v {
			t.Fatalf("signed round trip %d -> %d, %v", v, got, err)
		}
	}
}

func TestDecryptErrors(t *testing.T) {
	c := cipher(t)
	if _, err := c.DecryptUint64([]byte{1, 2, 3}); err != ErrCiphertextSize {
		t.Fatalf("short ciphertext: %v", err)
	}
	// A ciphertext value that no plaintext maps to (between two leaf images)
	// must be rejected: flipping the last bit of a real ciphertext is
	// overwhelmingly likely to land in a gap.
	ct := c.EncryptUint64(12345)
	mut := append([]byte(nil), ct...)
	mut[CiphertextSize-1] ^= 1
	if _, err := c.DecryptUint64(mut); err == nil {
		got, _ := c.DecryptUint64(mut)
		if c2 := c.EncryptUint64(got); !bytes.Equal(c2, mut) {
			t.Fatal("decrypt returned wrong plaintext for gap ciphertext")
		}
	}
}

func TestCompareIsLexicographic(t *testing.T) {
	// Ciphertexts are fixed-width big-endian, so range predicates can be
	// evaluated by plain byte comparison on the cloud.
	c := cipher(t)
	a, b := c.EncryptUint64(10), c.EncryptUint64(20)
	if bytes.Compare(a, b) != Compare(a, b) {
		t.Fatal("Compare disagrees with bytes.Compare")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := cipher(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncryptUint64(uint64(i) * 2654435761)
	}
}
