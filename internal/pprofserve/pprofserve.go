// Package pprofserve starts an optional net/http/pprof listener for the
// long-running commands (gateway, cloudserver). Profiling is off unless a
// listen address is given, so production deployments expose nothing by
// default.
package pprofserve

import (
	"errors"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
)

// Start serves the default mux (which net/http/pprof registered itself on)
// at addr in a background goroutine. An empty addr is a no-op. The returned
// stop function closes the listener.
func Start(addr string) (stop func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
			log.Printf("pprof: server stopped: %v", err)
		}
	}()
	log.Printf("pprof: profiling at http://%s/debug/pprof/", ln.Addr())
	return func() { ln.Close() }, nil
}
