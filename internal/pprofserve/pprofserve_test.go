package pprofserve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatalf("Start(\"\") = %v", err)
	}
	stop() // must be callable
}

// TestPprofRegistered checks the blank import wired /debug/pprof/ into the
// default mux, which Start serves.
func TestPprofRegistered(t *testing.T) {
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	http.DefaultServeMux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "pprof") {
		t.Fatalf("/debug/pprof/ body = %q", rec.Body.String())
	}
}

func TestStartListens(t *testing.T) {
	stop, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	stop()
}

func TestStartBadAddr(t *testing.T) {
	if _, err := Start("257.0.0.1:1"); err == nil {
		t.Fatal("bad address accepted")
	}
}
