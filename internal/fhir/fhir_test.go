package fhir

import (
	"testing"

	"datablinder/internal/model"
)

func TestObservationSchemaValid(t *testing.T) {
	if err := ObservationSchema().Validate(); err != nil {
		t.Fatalf("ObservationSchema invalid: %v", err)
	}
	if err := BenchmarkSchema().Validate(); err != nil {
		t.Fatalf("BenchmarkSchema invalid: %v", err)
	}
}

func TestPaperExampleValidatesAgainstSchema(t *testing.T) {
	doc := PaperExample()
	if err := doc.ValidateAgainst(ObservationSchema()); err != nil {
		t.Fatalf("paper example rejected: %v", err)
	}
	if doc.ID != "f001" || doc.Fields["value"] != 6.3 {
		t.Fatalf("paper example fields = %+v", doc.Fields)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(42, 0, 0)
	g2 := NewGenerator(42, 0, 0)
	for i := 0; i < 20; i++ {
		d1, d2 := g1.Observation(), g2.Observation()
		if d1.ID != d2.ID {
			t.Fatalf("ids diverge: %s vs %s", d1.ID, d2.ID)
		}
		for k, v := range d1.Fields {
			if d2.Fields[k] != v {
				t.Fatalf("field %s diverges: %v vs %v", k, v, d2.Fields[k])
			}
		}
	}
	g3 := NewGenerator(43, 0, 0)
	g3.Observation()
	if NewGenerator(42, 0, 0).Observation().Fields["subject"] == g3.Observation().Fields["subject"] &&
		NewGenerator(42, 0, 0).Observation().Fields["value"] == g3.Observation().Fields["value"] {
		t.Log("seeds 42/43 coincidentally agree on one doc; acceptable")
	}
}

func TestGeneratedDocumentsValidate(t *testing.T) {
	g := NewGenerator(7, 50, 10)
	schema := ObservationSchema()
	bench := BenchmarkSchema()
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		d := g.Observation()
		if seen[d.ID] {
			t.Fatalf("duplicate id %s", d.ID)
		}
		seen[d.ID] = true
		if err := d.ValidateAgainst(schema); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
		// Bench schema has no interpretation field; drop it before check.
		delete(d.Fields, "interpretation")
		if err := d.ValidateAgainst(bench); err != nil {
			t.Fatalf("doc %d invalid against bench schema: %v", i, err)
		}
		code := d.Fields["code"].(string)
		vr, ok := valueRanges[code]
		if !ok {
			t.Fatalf("unknown code %q", code)
		}
		v := d.Fields["value"].(float64)
		if v < vr[0]-0.01 || v > vr[1]+0.01 {
			t.Fatalf("value %g outside range for %s", v, code)
		}
		eff := d.Fields["effective"].(int64)
		iss := d.Fields["issued"].(int64)
		if iss < eff {
			t.Fatalf("issued %d before effective %d", iss, eff)
		}
	}
}

func TestGeneratorPopulationSizes(t *testing.T) {
	g := NewGenerator(1, 5, 2)
	if len(g.Patients()) != 5 {
		t.Fatalf("patients = %d", len(g.Patients()))
	}
	subjects := map[any]bool{}
	performers := map[any]bool{}
	for i := 0; i < 200; i++ {
		d := g.Observation()
		subjects[d.Fields["subject"]] = true
		performers[d.Fields["performer"]] = true
	}
	if len(subjects) > 5 {
		t.Fatalf("more subjects than patients: %d", len(subjects))
	}
	if len(performers) > 2 {
		t.Fatalf("more performers than doctors: %d", len(performers))
	}
}

func TestSchemaFieldAnnotationsMatchPaper(t *testing.T) {
	s := ObservationSchema()
	cases := map[string]model.Class{
		"status": model.Class3, "code": model.Class3, "subject": model.Class2,
		"effective": model.Class5, "issued": model.Class5,
		"performer": model.Class1, "value": model.Class3,
	}
	for name, class := range cases {
		f, ok := s.Field(name)
		if !ok {
			t.Fatalf("field %s missing", name)
		}
		if f.Annotation.Class != class {
			t.Errorf("%s class = %v, want %v", name, f.Annotation.Class, class)
		}
	}
	// value requests avg per the paper's table.
	f, _ := s.Field("value")
	if !f.Annotation.HasAgg(model.AggAvg) {
		t.Error("value lacks avg aggregate")
	}
	// performer is insert-only.
	f, _ = s.Field("performer")
	if len(f.Annotation.Ops) != 1 || f.Annotation.Ops[0] != model.OpInsert {
		t.Errorf("performer ops = %v", f.Annotation.Ops)
	}
}
