// Package fhir models the paper's §5.1 validation case: FHIR-compliant
// medical Observation documents (measurements and assertions about
// patients, e.g. the amount of glucose observed in a blood test), plus a
// deterministic synthetic generator used by the examples and the
// evaluation harness.
//
// The original evaluation used FHIR-compliant medical data from the
// industrial partners; this generator substitutes a synthetic population
// with the same document shape and realistic value distributions.
package fhir

import (
	"fmt"
	"math/rand"

	"datablinder/internal/model"
)

// Observation field vocabulary.
var (
	// Statuses follows the FHIR ObservationStatus value set.
	Statuses = []string{"final", "preliminary", "amended", "draft", "registered"}
	// Codes are common LOINC-style observation codes.
	Codes = []string{"glucose", "cholesterol", "heart-rate", "bmi", "hemoglobin", "blood-pressure", "creatinine", "sodium"}
	// Interpretations are FHIR interpretation codes.
	Interpretations = []string{"normal", "high", "low", "critical"}
)

// valueRange gives each code a plausible measurement range.
var valueRanges = map[string][2]float64{
	"glucose":        {3.5, 12.0},
	"cholesterol":    {2.0, 8.5},
	"heart-rate":     {45, 180},
	"bmi":            {15, 45},
	"hemoglobin":     {7, 19},
	"blood-pressure": {85, 200},
	"creatinine":     {0.4, 3.0},
	"sodium":         {125, 150},
}

// baseEffective is 2013-02-04T09:30:10Z, the example document's timestamp.
const baseEffective = 1359966610

// ObservationSchema returns the §5.1 Observation schema with the paper's
// exact annotations. Adaptive selection reproduces the paper's tactic
// table from these annotations alone: status/code/value → BIEX-2Lev,
// subject → Mitra, effective/issued → DET+OPE, performer → RND,
// value additionally → Paillier.
func ObservationSchema() *model.Schema {
	must := func(s string) model.Annotation {
		a, err := model.ParseAnnotation(s)
		if err != nil {
			panic(err)
		}
		return a
	}
	return &model.Schema{
		Name: "observation",
		Fields: []model.Field{
			{Name: "identifier", Type: model.TypeString},
			{Name: "status", Type: model.TypeString, Sensitive: true, Annotation: must("C3, op [I, EQ, BL]")},
			{Name: "code", Type: model.TypeString, Sensitive: true, Annotation: must("C3, op [I, EQ, BL]")},
			{Name: "subject", Type: model.TypeString, Sensitive: true, Annotation: must("C2, op [I, EQ]")},
			{Name: "effective", Type: model.TypeInt, Sensitive: true, Annotation: must("C5, op [I, EQ, BL, RG], tactic [DET, OPE, BIEX-2Lev]")},
			{Name: "issued", Type: model.TypeInt, Sensitive: true, Annotation: must("C5, op [I, EQ, BL, RG], tactic [DET, OPE, BIEX-2Lev]")},
			{Name: "performer", Type: model.TypeString, Sensitive: true, Annotation: must("C1, op [I]")},
			{Name: "value", Type: model.TypeFloat, Sensitive: true, Annotation: must("C3, op [I, EQ, BL], agg [avg, sum]")},
			{Name: "interpretation", Type: model.TypeString, Sensitive: true, Annotation: must("C3, op [I, EQ, BL]")},
		},
	}
}

// BenchmarkSchema returns the schema variant used by the §5.2 performance
// evaluation: "8 tactics ... namely Mitra, RND, Paillier, and five times
// DET" — the five DET instances protect status, code, effective, issued
// and value; Mitra protects subject; RND protects performer; Paillier
// aggregates value.
func BenchmarkSchema() *model.Schema {
	must := func(s string) model.Annotation {
		a, err := model.ParseAnnotation(s)
		if err != nil {
			panic(err)
		}
		return a
	}
	return &model.Schema{
		Name: "observation",
		Fields: []model.Field{
			{Name: "identifier", Type: model.TypeString},
			{Name: "status", Type: model.TypeString, Sensitive: true, Annotation: must("C4, op [I, EQ], tactic [DET]")},
			{Name: "code", Type: model.TypeString, Sensitive: true, Annotation: must("C4, op [I, EQ], tactic [DET]")},
			{Name: "subject", Type: model.TypeString, Sensitive: true, Annotation: must("C2, op [I, EQ], tactic [Mitra]")},
			{Name: "effective", Type: model.TypeInt, Sensitive: true, Annotation: must("C4, op [I, EQ], tactic [DET]")},
			{Name: "issued", Type: model.TypeInt, Sensitive: true, Annotation: must("C4, op [I, EQ], tactic [DET]")},
			{Name: "performer", Type: model.TypeString, Sensitive: true, Annotation: must("C1, op [I], tactic [RND]")},
			{Name: "value", Type: model.TypeFloat, Sensitive: true, Annotation: must("C4, op [I, EQ], agg [avg, sum], tactic [DET, Paillier]")},
		},
	}
}

// Generator produces a deterministic synthetic Observation population.
// It is not safe for concurrent use; give each goroutine its own
// generator (With different seeds) or serialize access.
type Generator struct {
	rng      *rand.Rand
	patients []string
	doctors  []string
	next     int
}

// NewGenerator builds a generator over a synthetic population. seed fixes
// the sequence; patients/doctors size the population (0 picks defaults).
func NewGenerator(seed int64, patients, doctors int) *Generator {
	if patients <= 0 {
		patients = 200
	}
	if doctors <= 0 {
		doctors = 25
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < patients; i++ {
		g.patients = append(g.patients, fmt.Sprintf("patient-%04d", i))
	}
	for i := 0; i < doctors; i++ {
		g.doctors = append(g.doctors, fmt.Sprintf("dr-%03d", i))
	}
	return g
}

// Patients returns the patient identifier pool.
func (g *Generator) Patients() []string { return g.patients }

// Observation generates the next synthetic observation document.
func (g *Generator) Observation() *model.Document {
	g.next++
	code := Codes[g.rng.Intn(len(Codes))]
	vr := valueRanges[code]
	effective := int64(baseEffective + g.rng.Intn(3*365*24*3600))
	value := vr[0] + g.rng.Float64()*(vr[1]-vr[0])
	return &model.Document{
		ID: fmt.Sprintf("obs-%08d", g.next),
		Fields: map[string]any{
			"identifier": fmt.Sprintf("%06d", 6000+g.next),
			"status":     Statuses[g.rng.Intn(len(Statuses))],
			"code":       code,
			"subject":    g.patients[g.rng.Intn(len(g.patients))],
			"effective":  effective,
			"issued":     effective + int64(g.rng.Intn(30*24*3600)),
			"performer":  g.doctors[g.rng.Intn(len(g.doctors))],
			"value":      float64(int(value*100)) / 100,
		},
	}
}

// PaperExample returns the exact glucose observation from §5.1 of the
// paper (document f001).
func PaperExample() *model.Document {
	return &model.Document{
		ID: "f001",
		Fields: map[string]any{
			"identifier":     "6323",
			"status":         "final",
			"code":           "glucose",
			"subject":        "John Doe",
			"effective":      int64(1359966610),
			"issued":         int64(1362407410),
			"performer":      "John Smith",
			"value":          6.3,
			"interpretation": "High",
		},
	}
}
