// Package keys implements DataBlinder's key management integration (the
// resources subsystem of Fig. 4 and the Keys interface of Fig. 3). The
// middleware requests per-(schema, field, tactic, purpose) keys through the
// Provider interface; the bundled implementation derives them from a master
// secret with HKDF, mimicking an on-premise HSM that never releases the
// master key itself.
package keys

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"datablinder/internal/crypto/primitives"
)

// Errors returned by this package.
var (
	ErrEmptyLabel = errors.New("keys: key label components must be non-empty")
	ErrBadKeyFile = errors.New("keys: key file must hold 64 hex characters")
)

// Ref names one derived key: schema/field/tactic/purpose. All components
// are required; purpose distinguishes multiple keys inside one tactic
// (e.g. "enc" vs "mac" vs "token").
type Ref struct {
	Schema  string
	Field   string
	Tactic  string
	Purpose string
}

func (r Ref) validate() error {
	if r.Schema == "" || r.Field == "" || r.Tactic == "" || r.Purpose == "" {
		return ErrEmptyLabel
	}
	for _, c := range []string{r.Schema, r.Field, r.Tactic, r.Purpose} {
		if strings.Contains(c, "/") {
			return fmt.Errorf("keys: label component %q contains '/'", c)
		}
	}
	return nil
}

// label renders the derivation label. Components are '/'-separated and
// forbidden from containing '/', so distinct refs never collide.
func (r Ref) label() string {
	return r.Schema + "/" + r.Field + "/" + r.Tactic + "/" + r.Purpose
}

// Provider hands out symmetric keys for tactic protocols. Implementations
// must return stable keys: the same Ref always yields the same Key.
type Provider interface {
	// Key returns the symmetric key for ref.
	Key(ref Ref) (primitives.Key, error)
}

// Store is the bundled Provider: an HKDF hierarchy under a master key with
// a memoization cache. It is safe for concurrent use.
type Store struct {
	master primitives.Key

	mu    sync.RWMutex
	cache map[string]primitives.Key
}

// NewStore builds a Store over the given master key.
func NewStore(master primitives.Key) *Store {
	return &Store{master: master, cache: make(map[string]primitives.Key)}
}

// NewRandomStore builds a Store over a fresh random master key. The key is
// irrecoverable once the process exits; use Load/Save for durable setups.
func NewRandomStore() (*Store, error) {
	master, err := primitives.NewRandomKey()
	if err != nil {
		return nil, err
	}
	return NewStore(master), nil
}

// Load reads a 64-hex-character master key from path.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keys: reading key file: %w", err)
	}
	raw, err := hex.DecodeString(strings.TrimSpace(string(data)))
	if err != nil || len(raw) != primitives.KeySize {
		return nil, ErrBadKeyFile
	}
	master, err := primitives.KeyFromBytes(raw)
	if err != nil {
		return nil, err
	}
	return NewStore(master), nil
}

// Save writes the master key to path (0600). It exists for demo and
// development deployments; production setups should source the master key
// from an HSM.
func (s *Store) Save(path string) error {
	data := hex.EncodeToString(s.master[:]) + "\n"
	if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
		return fmt.Errorf("keys: writing key file: %w", err)
	}
	return nil
}

// Key implements Provider.
func (s *Store) Key(ref Ref) (primitives.Key, error) {
	if err := ref.validate(); err != nil {
		return primitives.Key{}, err
	}
	label := ref.label()
	s.mu.RLock()
	k, ok := s.cache[label]
	s.mu.RUnlock()
	if ok {
		return k, nil
	}
	k, err := primitives.DeriveKey(s.master, label)
	if err != nil {
		return primitives.Key{}, err
	}
	s.mu.Lock()
	s.cache[label] = k
	s.mu.Unlock()
	return k, nil
}

var _ Provider = (*Store)(nil)
