package keys

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datablinder/internal/crypto/primitives"
)

func store(t *testing.T) *Store {
	t.Helper()
	s, err := NewRandomStore()
	if err != nil {
		t.Fatalf("NewRandomStore: %v", err)
	}
	return s
}

func TestKeyDeterministic(t *testing.T) {
	s := store(t)
	ref := Ref{Schema: "obs", Field: "status", Tactic: "det", Purpose: "enc"}
	k1, err := s.Key(ref)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	k2, err := s.Key(ref)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if k1 != k2 {
		t.Fatal("same ref yielded different keys")
	}
}

func TestKeySeparation(t *testing.T) {
	s := store(t)
	base := Ref{Schema: "obs", Field: "status", Tactic: "det", Purpose: "enc"}
	variants := []Ref{
		{Schema: "other", Field: "status", Tactic: "det", Purpose: "enc"},
		{Schema: "obs", Field: "code", Tactic: "det", Purpose: "enc"},
		{Schema: "obs", Field: "status", Tactic: "rnd", Purpose: "enc"},
		{Schema: "obs", Field: "status", Tactic: "det", Purpose: "mac"},
	}
	k0, err := s.Key(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		k, err := s.Key(v)
		if err != nil {
			t.Fatal(err)
		}
		if k == k0 {
			t.Fatalf("ref %+v collided with base", v)
		}
	}
}

func TestKeyValidation(t *testing.T) {
	s := store(t)
	bad := []Ref{
		{},
		{Schema: "s", Field: "f", Tactic: "t"},  // missing purpose
		{Schema: "s", Field: "f", Purpose: "p"}, // missing tactic
		{Schema: "a/b", Field: "f", Tactic: "t", Purpose: "p"}, // separator in component
		{Schema: "s", Field: "f", Tactic: "t", Purpose: "p/q"}, // separator in purpose
	}
	for _, ref := range bad {
		if _, err := s.Key(ref); err == nil {
			t.Errorf("Key(%+v) succeeded, want error", ref)
		}
	}
}

func TestLabelInjectionResistance(t *testing.T) {
	// ("ab", "c") and ("a", "bc") style splits must not collide because
	// components cannot contain the separator.
	s := store(t)
	k1, err := s.Key(Ref{Schema: "ab", Field: "c", Tactic: "t", Purpose: "p"})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.Key(Ref{Schema: "a", Field: "bc", Tactic: "t", Purpose: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("distinct refs produced the same key")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := store(t)
	path := filepath.Join(t.TempDir(), "master.key")
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("key file mode = %v, want 0600", info.Mode().Perm())
	}
	s2, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ref := Ref{Schema: "s", Field: "f", Tactic: "t", Purpose: "p"}
	k1, _ := s.Key(ref)
	k2, _ := s2.Key(ref)
	if k1 != k2 {
		t.Fatal("loaded store derives different keys")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("Load(missing) succeeded")
	}
	path := filepath.Join(t.TempDir(), "bad.key")
	os.WriteFile(path, []byte("nothex"), 0o600)
	if _, err := Load(path); !errors.Is(err, ErrBadKeyFile) {
		t.Fatalf("Load(bad hex) = %v", err)
	}
	os.WriteFile(path, []byte("abcd"), 0o600)
	if _, err := Load(path); !errors.Is(err, ErrBadKeyFile) {
		t.Fatalf("Load(short) = %v", err)
	}
}

func TestConcurrentDerivation(t *testing.T) {
	s := store(t)
	var wg sync.WaitGroup
	results := make([]primitives.Key, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, err := s.Key(Ref{Schema: "s", Field: "f", Tactic: "t", Purpose: "p"})
			if err != nil {
				t.Errorf("Key: %v", err)
				return
			}
			results[i] = k
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent derivations disagree")
		}
	}
}
