package bench

import (
	"context"
	"testing"
	"time"

	"datablinder/internal/transport"
)

// TestRunShardingSmoke runs a miniature scaling curve (no service-time
// model, so it is CPU-fast) and checks the result's shape: every tier
// measured, every op accounted for, balance vectors sized to the tier,
// and all inserted documents present across the shards of each tier.
func TestRunShardingSmoke(t *testing.T) {
	cfg := ShardingConfig{
		ShardCounts: []int{1, 3},
		Inserts:     40,
		EqQueries:   24, BoolQueries: 4, RangeQueries: 4,
		Users: 8, NodeWidth: 4, ServiceTime: 0,
		Seed: 7,
	}
	r, err := RunSharding(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(r.Runs))
	}
	for _, run := range r.Runs {
		if run.InsertOps != cfg.Inserts {
			t.Errorf("%d shards: %d insert ops, want %d", run.Shards, run.InsertOps, cfg.Inserts)
		}
		if want := cfg.EqQueries + cfg.BoolQueries + cfg.RangeQueries; run.QueryOps != want {
			t.Errorf("%d shards: %d query ops, want %d", run.Shards, run.QueryOps, want)
		}
		if len(run.DocsPerShard) != run.Shards || len(run.RPCsPerShard) != run.Shards {
			t.Fatalf("%d shards: balance vectors sized %d/%d", run.Shards, len(run.DocsPerShard), len(run.RPCsPerShard))
		}
		docs := 0
		for _, d := range run.DocsPerShard {
			docs += d
		}
		if docs != cfg.Inserts {
			t.Errorf("%d shards: %d docs stored across shards, want %d", run.Shards, docs, cfg.Inserts)
		}
		if run.AggregateThroughput <= 0 {
			t.Errorf("%d shards: non-positive aggregate throughput", run.Shards)
		}
	}
	// The multi-shard tier must actually spread documents.
	multi := r.Runs[1]
	for s, d := range multi.DocsPerShard {
		if d == 0 {
			t.Errorf("shard %d stored no documents: %v", s, multi.DocsPerShard)
		}
	}
}

// TestNodeConnBatchCost verifies the capacity model charges batch RPCs per
// sub-operation, not per frame: a 3-op batch must cost three quanta.
func TestNodeConnBatchCost(t *testing.T) {
	stub := connFunc(func(context.Context, string, string, any, any) error { return nil })
	quantum := 20 * time.Millisecond
	nc := newNodeConn(stub, 1, quantum)

	t0 := time.Now()
	if err := nc.Call(context.Background(), "svc", "m", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Upper bound is generous: on a loaded single-core -race run scheduling
	// delay stacks on top of the one-quantum sleep.
	if single := time.Since(t0); single < quantum || single >= 3*quantum {
		t.Errorf("plain call took %v, want about one %v quantum", single, quantum)
	}

	t0 = time.Now()
	if err := nc.Call(context.Background(), transport.BatchService, transport.BatchMethod, []int{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if batched := time.Since(t0); batched < 3*quantum {
		t.Errorf("3-op batch took %v, want at least %v (3 quanta)", batched, 3*quantum)
	}
}

type connFunc func(ctx context.Context, service, method string, args, reply any) error

func (f connFunc) Call(ctx context.Context, service, method string, args, reply any) error {
	return f(ctx, service, method, args, reply)
}
func (connFunc) Close() error { return nil }
