package bench

import (
	"context"
	"testing"
)

// TestRunPersistSmoke runs a miniature persistence A/B and checks the
// result's shape: every (engine, policy, callers) cell present with
// positive throughput, single-caller cells carrying allocation counts,
// all three recovery arms measured over the configured history, and the
// headline ratios populated. Magnitude thresholds live in the full
// blinderbench run, not here — a 2-core CI runner at toy scale proves
// shape, not speedups.
func TestRunPersistSmoke(t *testing.T) {
	cfg := PersistConfig{
		Inserts:         64,
		CallerCounts:    []int{1, 4},
		Policies:        []string{"always", "never"},
		RecoveryRecords: 4000,
		RecoveryKeys:    500,
		ValueBytes:      48,
		Seed:            7,
	}
	r, err := RunPersist(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * len(cfg.Policies) * len(cfg.CallerCounts)
	if len(r.Runs) != wantCells {
		t.Fatalf("got %d cells, want %d", len(r.Runs), wantCells)
	}
	for _, run := range r.Runs {
		if run.Ops != cfg.Inserts || run.Throughput <= 0 || run.NsPerOp <= 0 {
			t.Errorf("%s/%s/%d: bad accounting %+v", run.Engine, run.Policy, run.Callers, run)
		}
		if run.Callers == 1 && run.AllocsPerOp <= 0 {
			t.Errorf("%s/%s/1: missing allocs/op", run.Engine, run.Policy)
		}
	}
	if len(r.Recovery) != 3 {
		t.Fatalf("got %d recovery runs, want 3", len(r.Recovery))
	}
	engines := map[string]bool{}
	for _, run := range r.Recovery {
		engines[run.Engine] = true
		if run.Records != cfg.RecoveryRecords || run.LoadMs <= 0 {
			t.Errorf("recovery %s: bad accounting %+v", run.Engine, run)
		}
	}
	for _, e := range []string{"text-aof", "wal-replay", "wal-snapshot"} {
		if !engines[e] {
			t.Errorf("recovery arm %s missing", e)
		}
	}
	if r.AlwaysSpeedup <= 0 || r.SnapshotSpeedup <= 0 {
		t.Errorf("headline ratios not populated: %+v", r)
	}
	// The WAL write path must allocate less than the base64+Sprintf text
	// path per durable Set — that inequality holds at any scale.
	if r.AllocsReduction <= 0 {
		t.Errorf("allocs reduction %.3f, want > 0", r.AllocsReduction)
	}
}
