// Benchmark provenance: every BENCH_*.json blinderbench writes embeds the
// git commit, Go version, GOMAXPROCS, and a UTC timestamp, so results
// collected across PRs (the repo's perf trajectory) stay comparable — a
// number without its commit and core count is noise.

package bench

import (
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Meta identifies the build and machine a benchmark result came from.
type Meta struct {
	// GitCommit is the abbreviated HEAD hash, or "unknown" outside a git
	// checkout (e.g. a copied binary run from an empty directory).
	GitCommit string `json:"git_commit"`
	// GoVersion is runtime.Version() of the binary that produced the result.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the scheduler width at collection time — the single
	// biggest lever on every concurrency number in these files.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Timestamp is the collection time in RFC 3339 UTC.
	Timestamp string `json:"timestamp_utc"`
}

// CollectMeta gathers provenance for a result about to be written.
func CollectMeta() Meta {
	m := Meta{
		GitCommit:  "unknown",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if commit := strings.TrimSpace(string(out)); commit != "" {
			m.GitCommit = commit
		}
	}
	return m
}
