// Hot-path experiment: A/B-measures the CPU optimizations behind the
// gateway's crypto pipeline by flipping their global toggles.
//
// Two measurements, both over the loopback transport with no simulated
// network delay (the point is CPU and allocator cost, not round trips):
//
//	sse token  — client-side SSE update-token generation (Mitra update +
//	             EMM append per op) with the derivation caches on vs off;
//	             pure gateway CPU, where the per-keyword key LRUs live
//	insert     — full engine.Insert over the benchmark schema with the
//	             caches on vs off: ns/op, allocs/op, B/op end to end
//	paillier   — Encrypt with the randomness pool warm vs inline
//	             exponentiation per call: ns/op and the resulting speedup
//
// The toggles are primitives.SetHotPathCaching (pooled HMAC states +
// DeriveKey memo), keycache.SetEnabled (per-keyword/per-field derived-key
// LRUs), and paillier.SetRandPooling (precomputed r^n mod n² masks).

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"os"
	"runtime"
	"strings"
	"time"

	"datablinder/internal/cloud"
	"datablinder/internal/coalesce"
	"datablinder/internal/core"
	"datablinder/internal/crypto/keycache"
	"datablinder/internal/crypto/paillier"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/sse/emm"
	"datablinder/internal/sse/mitra"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	"datablinder/internal/transport"
)

// HotpathConfig parameterizes the hot-path experiment.
type HotpathConfig struct {
	// Docs is the number of engine.Insert calls measured per arm.
	Docs int
	// PaillierBits is the key size of the Paillier measurement.
	PaillierBits int
	// PoolSize is the randomness-pool capacity; the warm arm times PoolSize
	// draws per round against a freshly filled pool.
	PoolSize int
	// Rounds is how many fill-then-drain rounds the warm arm averages over.
	Rounds int
	// Seed fixes the synthetic population.
	Seed int64
}

// DefaultHotpathConfig returns a laptop-scale configuration.
func DefaultHotpathConfig() HotpathConfig {
	return HotpathConfig{Docs: 300, PaillierBits: 1024, PoolSize: 64, Rounds: 4, Seed: 1}
}

// HotpathArm is one measured arm of a scenario.
type HotpathArm struct {
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// HotpathResult carries all three measurements plus the derived ratios.
type HotpathResult struct {
	// SSETokenCached / SSETokenUncached are client-side SSE update-token
	// generations with the derivation caches on / off.
	SSETokenCached   HotpathArm `json:"sse_token_cached"`
	SSETokenUncached HotpathArm `json:"sse_token_uncached"`
	// SSEAllocReductionPct is the allocs/op saved by the caches on the SSE
	// token path.
	SSEAllocReductionPct float64 `json:"sse_alloc_reduction_pct"`
	// SSESpeedup is uncached over cached ns/op on the SSE token path.
	SSESpeedup float64 `json:"sse_speedup"`

	// SSEInsertCached / SSEInsertUncached are full-pipeline inserts with the
	// derivation caches on / off.
	SSEInsertCached   HotpathArm `json:"sse_insert_cached"`
	SSEInsertUncached HotpathArm `json:"sse_insert_uncached"`
	// InsertAllocReductionPct is the allocs/op saved by the caches.
	InsertAllocReductionPct float64 `json:"insert_alloc_reduction_pct"`
	// InsertSpeedup is uncached over cached ns/op.
	InsertSpeedup float64 `json:"insert_speedup"`

	// PaillierInline / PaillierPooled are Encrypt with the pool disabled /
	// warm.
	PaillierInline HotpathArm `json:"paillier_inline"`
	PaillierPooled HotpathArm `json:"paillier_pooled"`
	// PaillierSpeedup is inline over pooled ns/op.
	PaillierSpeedup float64 `json:"paillier_speedup"`

	Config HotpathConfig `json:"config"`
	// Meta is stamped by WriteHotpathJSON, not RunHotpath, so in-memory
	// results stay free of machine identity until they are persisted.
	Meta Meta `json:"meta"`
}

// setHotpathToggles flips every hot-path optimization at once.
func setHotpathToggles(on bool) {
	primitives.SetHotPathCaching(on)
	keycache.SetEnabled(on)
	paillier.SetRandPooling(on)
}

// hotpathEngine builds a fresh loopback engine with the benchmark schema
// registered. Registration happens AFTER the caller has set the toggles so
// each arm's tactic instances start cold.
func hotpathEngine(ctx context.Context) (*core.Engine, func(), error) {
	node, err := cloud.NewNode(cloud.Options{})
	if err != nil {
		return nil, nil, err
	}
	kp, err := keys.NewRandomStore()
	if err != nil {
		node.Close()
		return nil, nil, err
	}
	local := kvstore.New()
	cleanup := func() {
		node.Close()
		local.Close()
	}
	registry, err := tactics.Registry()
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	// Coalescing off: this experiment isolates gateway CPU per op, and the
	// alloc attribution below assumes each op's RPCs happen inline on the
	// driving goroutine.
	engine, err := core.NewEngine(core.Config{
		Keys: kp, Cloud: transport.NewLoopback(node.Mux), Local: local, Registry: registry,
		Coalesce: coalesce.Options{Disabled: true},
	})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if err := engine.RegisterSchema(ctx, fhir.BenchmarkSchema()); err != nil {
		cleanup()
		return nil, nil, err
	}
	return engine, cleanup, nil
}

// measureAlloc runs fn once per op on the calling goroutine and attributes
// the process-wide allocation deltas to the ops. The driver is
// single-threaded, so beyond server-side handler work (which both arms pay
// identically) the deltas are the op's own pipeline cost.
func measureAlloc(ops int, fn func(i int) error) (HotpathArm, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		if err := fn(i); err != nil {
			return HotpathArm{}, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	return HotpathArm{
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
	}, nil
}

// runInsertArm measures cfg.Docs full-pipeline inserts on a fresh engine
// with the hot-path toggles set as requested.
func runInsertArm(ctx context.Context, cfg HotpathConfig, cached bool) (HotpathArm, error) {
	setHotpathToggles(cached)
	engine, cleanup, err := hotpathEngine(ctx)
	if err != nil {
		return HotpathArm{}, err
	}
	defer cleanup()

	gen := fhir.NewGenerator(cfg.Seed, 0, 0)
	schema := fhir.BenchmarkSchema().Name
	// Warm up: a few inserts populate caches (cached arm) and steady-state
	// allocator structures (both arms) before measurement. Document IDs are
	// sequential per generator, so warmup draws come first.
	for i := 0; i < 10; i++ {
		if _, err := engine.Insert(ctx, schema, gen.Observation()); err != nil {
			return HotpathArm{}, fmt.Errorf("bench: warmup insert: %w", err)
		}
	}
	docs := make([]*model.Document, cfg.Docs)
	for i := range docs {
		docs[i] = gen.Observation()
	}
	return measureAlloc(cfg.Docs, func(i int) error {
		_, err := engine.Insert(ctx, schema, docs[i])
		return err
	})
}

// runTokenArm measures cfg.Docs client-side SSE update-token generations
// (one Mitra update token plus one EMM append token per op) over a bounded
// keyword vocabulary — the regime the per-keyword key caches target. No
// transport or server work is involved; this isolates gateway crypto CPU.
func runTokenArm(cfg HotpathConfig, cached bool) (HotpathArm, error) {
	setHotpathToggles(cached)
	var mk, ek primitives.Key
	for i := range mk {
		mk[i] = byte(i + 1)
		ek[i] = byte(i + 101)
	}
	mc := mitra.NewClient(mk, mitra.NewMemState())
	ec := emm.NewClient(ek, emm.NewMemState())
	keywords := make([]string, 32)
	for i := range keywords {
		keywords[i] = fmt.Sprintf("code-%02d", i)
	}
	// Warm up one full vocabulary pass so the cached arm starts hot.
	for i, w := range keywords {
		if _, err := mc.Update("obs", w, mitra.OpAdd, fmt.Sprintf("warm-%d", i)); err != nil {
			return HotpathArm{}, err
		}
		if _, err := ec.Append("obs", w, fmt.Sprintf("warm-%d", i)); err != nil {
			return HotpathArm{}, err
		}
	}
	return measureAlloc(cfg.Docs, func(i int) error {
		w := keywords[i%len(keywords)]
		id := fmt.Sprintf("doc-%08d", i)
		if _, err := mc.Update("obs", w, mitra.OpAdd, id); err != nil {
			return err
		}
		_, err := ec.Append("obs", w, id)
		return err
	})
}

// runPaillierArms measures Encrypt with the pool disabled, then warm. The
// warm arm times exactly PoolSize draws against a freshly filled pool per
// round so every measured Encrypt takes the pooled path; refills happen
// outside the timer.
func runPaillierArms(cfg HotpathConfig) (inline, pooled HotpathArm, err error) {
	sk, err := paillier.GenerateKey(cfg.PaillierBits)
	if err != nil {
		return HotpathArm{}, HotpathArm{}, err
	}
	v := big.NewInt(123456)

	paillier.SetRandPooling(false)
	inlineOps := cfg.Rounds * 8 // full exponentiation per op; keep it short
	if inlineOps < 8 {
		inlineOps = 8
	}
	inline, err = measureAlloc(inlineOps, func(int) error {
		_, err := sk.Encrypt(v)
		return err
	})
	if err != nil {
		return HotpathArm{}, HotpathArm{}, err
	}

	paillier.SetRandPooling(true)
	sk.EnableRandPool(cfg.PoolSize)
	var total HotpathArm
	for r := 0; r < cfg.Rounds; r++ {
		if err := sk.FillRandPool(); err != nil {
			return HotpathArm{}, HotpathArm{}, err
		}
		arm, err := measureAlloc(cfg.PoolSize, func(int) error {
			_, err := sk.Encrypt(v)
			return err
		})
		if err != nil {
			return HotpathArm{}, HotpathArm{}, err
		}
		total.Ops += arm.Ops
		total.NsPerOp += arm.NsPerOp
		total.AllocsPerOp += arm.AllocsPerOp
		total.BytesPerOp += arm.BytesPerOp
	}
	total.NsPerOp /= float64(cfg.Rounds)
	total.AllocsPerOp /= float64(cfg.Rounds)
	total.BytesPerOp /= float64(cfg.Rounds)
	return inline, total, nil
}

// RunHotpath executes the full experiment and restores every toggle to its
// default (on) before returning.
func RunHotpath(ctx context.Context, cfg HotpathConfig) (HotpathResult, error) {
	if cfg.Docs <= 0 || cfg.PaillierBits < 256 || cfg.PoolSize <= 0 || cfg.Rounds <= 0 {
		return HotpathResult{}, fmt.Errorf("bench: hotpath config must be positive (PaillierBits >= 256)")
	}
	defer setHotpathToggles(true)

	r := HotpathResult{Config: cfg}
	var err error
	if r.SSETokenUncached, err = runTokenArm(cfg, false); err != nil {
		return HotpathResult{}, fmt.Errorf("bench: uncached token arm: %w", err)
	}
	if r.SSETokenCached, err = runTokenArm(cfg, true); err != nil {
		return HotpathResult{}, fmt.Errorf("bench: cached token arm: %w", err)
	}
	if r.SSETokenUncached.AllocsPerOp > 0 {
		r.SSEAllocReductionPct = 100 * (1 - r.SSETokenCached.AllocsPerOp/r.SSETokenUncached.AllocsPerOp)
	}
	if r.SSETokenCached.NsPerOp > 0 {
		r.SSESpeedup = r.SSETokenUncached.NsPerOp / r.SSETokenCached.NsPerOp
	}
	if r.SSEInsertUncached, err = runInsertArm(ctx, cfg, false); err != nil {
		return HotpathResult{}, fmt.Errorf("bench: uncached insert arm: %w", err)
	}
	if r.SSEInsertCached, err = runInsertArm(ctx, cfg, true); err != nil {
		return HotpathResult{}, fmt.Errorf("bench: cached insert arm: %w", err)
	}
	if r.SSEInsertUncached.AllocsPerOp > 0 {
		r.InsertAllocReductionPct = 100 * (1 - r.SSEInsertCached.AllocsPerOp/r.SSEInsertUncached.AllocsPerOp)
	}
	if r.SSEInsertCached.NsPerOp > 0 {
		r.InsertSpeedup = r.SSEInsertUncached.NsPerOp / r.SSEInsertCached.NsPerOp
	}

	if r.PaillierInline, r.PaillierPooled, err = runPaillierArms(cfg); err != nil {
		return HotpathResult{}, fmt.Errorf("bench: paillier arms: %w", err)
	}
	if r.PaillierPooled.NsPerOp > 0 {
		r.PaillierSpeedup = r.PaillierInline.NsPerOp / r.PaillierPooled.NsPerOp
	}
	return r, nil
}

// WriteHotpathJSON writes the result to path as indented JSON, stamped
// with build/machine provenance.
func WriteHotpathJSON(r HotpathResult, path string) error {
	r.Meta = CollectMeta()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatHotpath renders the experiment as a table.
func FormatHotpath(r HotpathResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hot-path experiment (%d inserts/arm, %d-bit Paillier, pool %d)\n\n",
		r.Config.Docs, r.Config.PaillierBits, r.Config.PoolSize)
	fmt.Fprintf(&b, "%-26s %12s %12s %12s\n", "scenario", "ns/op", "allocs/op", "B/op")
	row := func(name string, a HotpathArm) {
		fmt.Fprintf(&b, "%-26s %12.0f %12.1f %12.0f\n", name, a.NsPerOp, a.AllocsPerOp, a.BytesPerOp)
	}
	row("sse token, caches off", r.SSETokenUncached)
	row("sse token, caches on", r.SSETokenCached)
	row("insert, caches off", r.SSEInsertUncached)
	row("insert, caches on", r.SSEInsertCached)
	row("paillier encrypt, inline", r.PaillierInline)
	row("paillier encrypt, pooled", r.PaillierPooled)
	fmt.Fprintf(&b, "\nsse token: %.1f%% fewer allocs/op, %.2fx faster with caches on\n",
		r.SSEAllocReductionPct, r.SSESpeedup)
	fmt.Fprintf(&b, "insert: %.1f%% fewer allocs/op, %.2fx faster with caches on\n",
		r.InsertAllocReductionPct, r.InsertSpeedup)
	fmt.Fprintf(&b, "paillier: %.0fx faster with a warm randomness pool\n", r.PaillierSpeedup)
	return b.String()
}
