package bench

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"datablinder/internal/cloud"
	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

func newEnv(t testing.TB) func() (transport.Conn, keys.Provider, *kvstore.Store, func(), error) {
	t.Helper()
	return func() (transport.Conn, keys.Provider, *kvstore.Store, func(), error) {
		node, err := cloud.NewNode(cloud.Options{})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		kp, err := keys.NewRandomStore()
		if err != nil {
			node.Close()
			return nil, nil, nil, nil, err
		}
		local := kvstore.New()
		return transport.NewLoopback(node.Mux), kp, local, func() {
			node.Close()
			local.Close()
		}, nil
	}
}

func smokeConfig() Config {
	return Config{Users: 8, Requests: 120, Seed: 7}
}

func runScenario(t *testing.T, scenario string) Result {
	t.Helper()
	conn, kp, local, cleanup, err := newEnv(t)()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	cfg := smokeConfig()
	cfg.Scenario = scenario
	cfg.Conn = conn
	cfg.Keys = kp
	cfg.Local = local
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", scenario, err)
	}
	return res
}

func TestScenarioSmoke(t *testing.T) {
	for _, s := range []string{"A", "B", "C"} {
		s := s
		t.Run(s, func(t *testing.T) {
			res := runScenario(t, s)
			if res.Requests != 120 {
				t.Fatalf("requests = %d, want 120", res.Requests)
			}
			for _, kind := range []OpKind{OpInsert, OpSearch, OpAggregate} {
				if res.PerOp[kind].Count == 0 {
					t.Errorf("no %s operations recorded", kind)
				}
				if res.PerOp[kind].Avg <= 0 {
					t.Errorf("%s avg latency is zero", kind)
				}
			}
			if res.Overall() <= 0 {
				t.Error("overall throughput is zero")
			}
			stats := res.PerOp["overall"]
			if stats.P50 > stats.P75 || stats.P75 > stats.P99 {
				t.Errorf("percentiles not monotone: %+v", stats)
			}
		})
	}
}

func TestIndexOpsCountedOnlyForTactics(t *testing.T) {
	b := runScenario(t, "B")
	c := runScenario(t, "C")
	if b.IndexOps == 0 || c.IndexOps == 0 {
		t.Fatalf("index ops: B=%d C=%d, want nonzero", b.IndexOps, c.IndexOps)
	}
	// S_B and S_C run the same tactic pipeline; their secure-index op
	// counts should be close (C adds no extra index RPCs, only local
	// dispatch).
	ratio := float64(c.IndexOps) / float64(b.IndexOps)
	if math.Abs(ratio-1) > 0.1 {
		t.Fatalf("index op ratio C/B = %.2f (B=%d C=%d)", ratio, b.IndexOps, c.IndexOps)
	}
}

func TestScenarioResultsAgree(t *testing.T) {
	// The three scenarios answer the same queries; spot-check that a
	// search for a fixed patient returns identical document id sets.
	ctx := context.Background()
	for _, s := range []string{"A", "B", "C"} {
		conn, kp, local, cleanup, err := newEnv(t)()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cleanup)
		a, err := NewApp(ctx, s, conn, kp, local)
		if err != nil {
			t.Fatalf("newApp(%s): %v", s, err)
		}
		gen := fhir.NewGenerator(99, 0, 0)
		want := map[string]float64{}
		for i := 0; i < 30; i++ {
			doc := gen.Observation()
			if err := a.Insert(ctx, doc); err != nil {
				t.Fatalf("insert: %v", err)
			}
			if doc.Fields["code"] == "glucose" {
				want[doc.ID] = doc.Fields["value"].(float64)
			}
		}
		docs, err := a.SearchEq(ctx, "code", "glucose")
		if err != nil {
			t.Fatalf("search(%s): %v", s, err)
		}
		if len(docs) != len(want) {
			t.Fatalf("scenario %s: search returned %d docs, want %d", s, len(docs), len(want))
		}
		var sum float64
		for id, v := range want {
			sum += v
			found := false
			for _, d := range docs {
				if d.ID == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("scenario %s: missing doc %s", s, id)
			}
		}
		avg, err := a.AverageWhere(ctx, "code", "glucose")
		if err != nil {
			t.Fatalf("avg(%s): %v", s, err)
		}
		wantAvg := sum / float64(len(want))
		if math.Abs(avg-wantAvg) > 1e-4 {
			t.Fatalf("scenario %s: avg = %g, want %g", s, avg, wantAvg)
		}
	}
}

func TestFormatters(t *testing.T) {
	mk := func(name string, n int, lat time.Duration) Result {
		rec := NewRecorder()
		for i := 0; i < n; i++ {
			rec.Record(OpInsert, lat)
			rec.Record(OpSearch, lat)
			rec.Record(OpAggregate, lat)
		}
		return rec.snapshot(name, time.Second, 42, 3)
	}
	a := mk("S_A", 100, time.Millisecond)
	b := mk("S_B", 56, 2*time.Millisecond)
	c := mk("S_C", 55, 2*time.Millisecond)
	fig := FormatFigure5(a, b, c)
	if !strings.Contains(fig, "overall") || !strings.Contains(fig, "S_B") {
		t.Fatalf("FormatFigure5 output:\n%s", fig)
	}
	if !strings.Contains(fig, "44.0%") {
		t.Fatalf("expected 44.0%% loss in:\n%s", fig)
	}
	lat := FormatLatencyTable(a, b, c)
	if !strings.Contains(lat, "p99") || !strings.Contains(lat, "S_C") {
		t.Fatalf("FormatLatencyTable output:\n%s", lat)
	}
}

func TestComputeStats(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	s := computeStats(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Avg != 50500*time.Microsecond {
		t.Fatalf("avg = %v", s.Avg)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v", s.P99)
	}
	if zero := computeStats(nil); zero.Count != 0 || zero.Avg != 0 {
		t.Fatalf("empty stats = %+v", zero)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("Run accepted zero config")
	}
	conn, kp, local, cleanup, err := newEnv(t)()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	if _, err := Run(context.Background(), Config{
		Scenario: "Z", Users: 1, Requests: 3, Conn: conn, Keys: kp, Local: local,
	}); err == nil {
		t.Fatal("Run accepted unknown scenario")
	}
}
