// Wire experiment: A/B-measures the binary wire codec (v2) against the v1
// JSON framing on the gateway↔cloud channel, over real TCP shards — the
// "base64 tax" the codec exists to remove. Both arms run the identical
// deployment (3 cloud nodes behind real TCP servers, the production ring
// client and coalescer in front); the only difference is the client
// pinning its connections to v1 JSON framing via DialOptions.
//
// Two measured phases per arm, at 1 caller (clean per-op costs) and at
// Callers concurrent callers (the contended regime):
//
//	insert     — full engine.Insert over a DET + Mitra + RND schema: the
//	             doc.put record plus three index writes per document, all
//	             ciphertext-heavy payloads that v1 ships base64-inflated
//	sse-search — engine.SearchIDs equality over the Mitra SSE index,
//	             a scatter query whose token and posting-list traffic
//	             crosses every shard
//
// Per phase the experiment reports throughput, wire bytes per operation
// (from the transport's datablinder_wire counters — both directions and
// both ends, since client and servers share the process; the A/B ratio is
// what matters), and heap allocations per operation (runtime Mallocs
// delta across the phase, again both ends — JSON's reflection, map, and
// base64 churn versus the codec's append/subslice discipline). The
// schema is deliberately crypto-light (HMAC/AES tactics only, no OPE or
// Paillier) so codec cost is the dominant non-workload term rather than
// being drowned in public-key arithmetic identical across arms.

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"datablinder/internal/cloud"
	"datablinder/internal/cloud/ring"
	"datablinder/internal/core"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	"datablinder/internal/tactics/mitra"
	"datablinder/internal/transport"
)

// WireConfig parameterizes the wire-codec experiment.
type WireConfig struct {
	// Shards is the TCP cloud tier size.
	Shards int
	// Docs documents are inserted per phase run.
	Docs int
	// Searches SSE equality queries are issued per phase run.
	Searches int
	// CallerCounts lists the concurrency levels to measure, in order.
	CallerCounts []int
	// BodyBytes sizes each document's opaque body field — the ciphertext
	// bulk the base64 tax scales with.
	BodyBytes int
	// Seed fixes the synthetic population and the query draw.
	Seed int64
}

// DefaultWireConfig returns a laptop-scale configuration: enough volume
// for stable per-op byte and allocation counts, seconds to run.
func DefaultWireConfig() WireConfig {
	return WireConfig{
		Shards: 3, Docs: 240, Searches: 480,
		CallerCounts: []int{1, 16}, BodyBytes: 240, Seed: 1,
	}
}

// WireRun is one (codec, caller-count) cell's measurement.
type WireRun struct {
	Codec   string `json:"codec"` // "json" or "binary"
	Callers int    `json:"callers"`

	InsertOps         int     `json:"insert_ops"`
	InsertThroughput  float64 `json:"insert_throughput_per_s"`
	InsertBytesPerOp  float64 `json:"insert_wire_bytes_per_op"`
	InsertAllocsPerOp float64 `json:"insert_allocs_per_op"`

	SearchOps         int     `json:"search_ops"`
	SearchThroughput  float64 `json:"search_throughput_per_s"`
	SearchBytesPerOp  float64 `json:"search_wire_bytes_per_op"`
	SearchAllocsPerOp float64 `json:"search_allocs_per_op"`
}

// WireRPCRun is one codec's per-RPC cost on a single hot method, measured
// at the transport boundary: one client, one TCP server, the same args
// every call. Engine work (crypto, planning, coalescing) is out of the
// loop, so the allocation delta between codecs is the codec's own —
// JSON's reflection/map/base64 churn versus the binary append/subslice
// path — rather than being diluted by workload allocations identical
// across arms.
type WireRPCRun struct {
	Codec       string  `json:"codec"`
	Method      string  `json:"method"` // "doc.put" or "mitra.search"
	Ops         int     `json:"ops"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"wire_bytes_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

// WireResult carries every cell plus the headline reductions. Byte
// reductions come from the single-caller end-to-end cells (wire bytes are
// exact either way and the end-to-end number includes batch framing);
// allocation reductions come from the transport-boundary RPC runs, where
// the counter isolates what the codec itself allocates.
type WireResult struct {
	Runs    []WireRun    `json:"runs"`
	RPCRuns []WireRPCRun `json:"rpc_runs"`
	// *Reduction fields are fractional savings of binary over JSON
	// (0.42 = binary uses 42% fewer than JSON).
	InsertBytesReduction  float64    `json:"insert_bytes_reduction"`
	InsertAllocsReduction float64    `json:"insert_allocs_reduction"`
	SearchBytesReduction  float64    `json:"search_bytes_reduction"`
	SearchAllocsReduction float64    `json:"search_allocs_reduction"`
	Config                WireConfig `json:"config"`
	// Meta is stamped by WriteWireJSON.
	Meta Meta `json:"meta"`
}

// wireSchema is the crypto-light schema described in the package comment:
// DET point equality, Mitra SSE equality (the measured search class), and
// an RND-encrypted opaque body carrying the ciphertext bulk.
func wireSchema() *model.Schema {
	must := func(s string) model.Annotation {
		a, err := model.ParseAnnotation(s)
		if err != nil {
			panic(err)
		}
		return a
	}
	return &model.Schema{
		Name: "wirebench",
		Fields: []model.Field{
			{Name: "identifier", Type: model.TypeString},
			{Name: "status", Type: model.TypeString, Sensitive: true, Annotation: must("C5, op [I, EQ], tactic [DET]")},
			{Name: "subject", Type: model.TypeString, Sensitive: true, Annotation: must("C2, op [I, EQ], tactic [Mitra]")},
			{Name: "body", Type: model.TypeString, Sensitive: true, Annotation: must("C1, op [I, EQ], tactic [RND]")},
		},
	}
}

// wireDocs materializes the deterministic population outside the timed
// region: ~30 distinct subjects (the SSE search targets), bodies of
// BodyBytes printable characters.
func wireDocs(cfg WireConfig) []*model.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	statuses := []string{"final", "preliminary", "amended", "draft"}
	docs := make([]*model.Document, cfg.Docs)
	for i := range docs {
		var b strings.Builder
		b.Grow(cfg.BodyBytes)
		for j := 0; j < cfg.BodyBytes; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		docs[i] = &model.Document{
			ID: fmt.Sprintf("wdoc-%04d", i),
			Fields: map[string]any{
				"identifier": fmt.Sprintf("obs-%04d", i),
				"status":     statuses[i%len(statuses)],
				"subject":    fmt.Sprintf("patient-%02d", i%30),
				"body":       b.String(),
			},
		}
	}
	return docs
}

// wireDeployment assembles the tier: Shards real cloud nodes behind TCP
// servers, dialed with the codec either negotiated (binary arm) or pinned
// to v1 (json arm), fronted by the production ring client and an engine
// at default coalescing.
func wireDeployment(cfg WireConfig, jsonArm bool) (*core.Engine, func(), error) {
	var closers []func()
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	conns := make([]transport.Conn, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		node, err := cloud.NewNode(cloud.Options{})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		closers = append(closers, func() { node.Close() })
		srv := transport.NewServer(node.Mux)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		closers = append(closers, func() { srv.Close() })
		conn, err := transport.Dial(addr, transport.DialOptions{DisableBinary: jsonArm})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		closers = append(closers, func() { conn.Close() })
		conns = append(conns, conn)
	}
	var conn transport.Conn = conns[0]
	if cfg.Shards > 1 {
		conn = ring.NewClient(conns, 0)
	}
	kp, err := keys.NewRandomStore()
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	local := kvstore.New()
	closers = append(closers, func() { local.Close() })
	registry, err := tactics.Registry()
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	engine, err := core.NewEngine(core.Config{
		Keys: kp, Cloud: conn, Local: local, Registry: registry,
	})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if err := engine.RegisterSchema(context.Background(), wireSchema()); err != nil {
		cleanup()
		return nil, nil, err
	}
	return engine, cleanup, nil
}

// wirePhase times total ops at the given concurrency and captures the
// wire-byte and allocation deltas around it. The engine is drained before
// both snapshots so async coalescer flushes land inside the window.
func wirePhase(engine *core.Engine, callers, total int, op func(i int) error) (elapsed time.Duration, bytes uint64, allocs uint64, err error) {
	engine.Drain()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	w0 := transport.WireStats()

	t0 := time.Now()
	errs := make([]error, callers)
	done := make(chan int, callers)
	for w := 0; w < callers; w++ {
		go func(w int) {
			for i := w; i < total; i += callers {
				if e := op(i); e != nil {
					errs[w] = e
					break
				}
			}
			done <- w
		}(w)
	}
	for w := 0; w < callers; w++ {
		<-done
	}
	engine.Drain()
	elapsed = time.Since(t0)

	w1 := transport.WireStats()
	runtime.ReadMemStats(&m1)
	for _, e := range errs {
		if e != nil {
			return 0, 0, 0, e
		}
	}
	return elapsed, w1.TotalBytes() - w0.TotalBytes(), m1.Mallocs - m0.Mallocs, nil
}

// runWireCell measures one (codec, caller-count) cell on a fresh tier.
func runWireCell(cfg WireConfig, jsonArm bool, callers int) (WireRun, error) {
	codec := "binary"
	if jsonArm {
		codec = "json"
	}
	run := WireRun{Codec: codec, Callers: callers}
	engine, cleanup, err := wireDeployment(cfg, jsonArm)
	if err != nil {
		return run, err
	}
	defer cleanup()

	ctx := context.Background()
	schema := wireSchema().Name
	docs := wireDocs(cfg)

	elapsed, bytes, allocs, err := wirePhase(engine, callers, len(docs), func(i int) error {
		_, err := engine.Insert(ctx, schema, docs[i])
		return err
	})
	if err != nil {
		return run, fmt.Errorf("bench: wire %s/%d insert: %w", codec, callers, err)
	}
	run.InsertOps = len(docs)
	if elapsed > 0 {
		run.InsertThroughput = float64(run.InsertOps) / elapsed.Seconds()
	}
	run.InsertBytesPerOp = float64(bytes) / float64(run.InsertOps)
	run.InsertAllocsPerOp = float64(allocs) / float64(run.InsertOps)

	queries := make([]core.Predicate, cfg.Searches)
	for i := range queries {
		queries[i] = core.Eq{Field: "subject", Value: fmt.Sprintf("patient-%02d", i%30)}
	}
	elapsed, bytes, allocs, err = wirePhase(engine, callers, len(queries), func(i int) error {
		_, err := engine.SearchIDs(ctx, schema, queries[i])
		return err
	})
	if err != nil {
		return run, fmt.Errorf("bench: wire %s/%d search: %w", codec, callers, err)
	}
	run.SearchOps = len(queries)
	if elapsed > 0 {
		run.SearchThroughput = float64(run.SearchOps) / elapsed.Seconds()
	}
	run.SearchBytesPerOp = float64(bytes) / float64(run.SearchOps)
	run.SearchAllocsPerOp = float64(allocs) / float64(run.SearchOps)
	return run, nil
}

// measureWireRPCs measures one codec's per-RPC cost on the two hot
// methods over a single real TCP connection: doc.put carrying a
// BodyBytes-scale ciphertext blob (the insert record write) and
// mitra.search carrying a 24-address SSE token. Allocations are the
// process-wide Mallocs delta across the loop — client and server share
// the process, so both ends' codec work is billed, and nothing else runs.
func measureWireRPCs(cfg WireConfig, jsonArm bool) ([]WireRPCRun, error) {
	codec := "binary"
	if jsonArm {
		codec = "json"
	}
	node, err := cloud.NewNode(cloud.Options{})
	if err != nil {
		return nil, err
	}
	defer node.Close()
	srv := transport.NewServer(node.Mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	conn, err := transport.Dial(addr, transport.DialOptions{PoolSize: 1, DisableBinary: jsonArm})
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(cfg.Seed))
	blob := make([]byte, cfg.BodyBytes+160) // body ciphertext + record envelope scale
	rng.Read(blob)
	token := make([][]byte, 24)
	for i := range token {
		token[i] = make([]byte, 32)
		rng.Read(token[i])
	}

	const ops = 1500
	var runs []WireRPCRun
	for _, m := range []struct {
		method string
		call   func(i int) error
	}{
		{"doc.put", func(i int) error {
			return conn.Call(ctx, cloud.DocService, "put",
				cloud.DocPutArgs{Collection: "wirebench", ID: fmt.Sprintf("rpc-%03d", i%64), Blob: blob}, nil)
		}},
		{"mitra.search", func(i int) error {
			var reply mitra.SearchReply
			return conn.Call(ctx, mitra.Service, "search",
				mitra.SearchArgs{Schema: "wirebench", Addrs: token}, &reply)
		}},
	} {
		for i := 0; i < 50; i++ { // warm pools and lazy paths
			if err := m.call(i); err != nil {
				return nil, fmt.Errorf("bench: wire rpc %s/%s warmup: %w", codec, m.method, err)
			}
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		w0 := transport.WireStats()
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if err := m.call(i); err != nil {
				return nil, fmt.Errorf("bench: wire rpc %s/%s: %w", codec, m.method, err)
			}
		}
		elapsed := time.Since(t0)
		w1 := transport.WireStats()
		runtime.ReadMemStats(&m1)
		runs = append(runs, WireRPCRun{
			Codec: codec, Method: m.method, Ops: ops,
			AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / ops,
			BytesPerOp:  float64(w1.TotalBytes()-w0.TotalBytes()) / ops,
			NsPerOp:     float64(elapsed.Nanoseconds()) / ops,
		})
	}
	return runs, nil
}

// RunWire measures every cell (json and binary at each caller count) and
// derives the headline reductions from the single-caller cells.
func RunWire(ctx context.Context, cfg WireConfig) (WireResult, error) {
	_ = ctx
	if cfg.Shards < 1 || cfg.Docs <= 0 || cfg.Searches <= 0 || len(cfg.CallerCounts) == 0 {
		return WireResult{}, fmt.Errorf("bench: wire config must be positive")
	}
	r := WireResult{Config: cfg}
	cells := make(map[string]WireRun)
	for _, jsonArm := range []bool{true, false} {
		for _, callers := range cfg.CallerCounts {
			if callers < 1 {
				return WireResult{}, fmt.Errorf("bench: caller count must be >= 1 (got %d)", callers)
			}
			codec := "binary"
			if jsonArm {
				codec = "json"
			}
			fmt.Fprintf(os.Stderr, "  %s codec, %d caller(s)...\n", codec, callers)
			run, err := runWireCell(cfg, jsonArm, callers)
			if err != nil {
				return WireResult{}, err
			}
			r.Runs = append(r.Runs, run)
			cells[fmt.Sprintf("%s/%d", codec, callers)] = run
		}
	}
	for _, jsonArm := range []bool{true, false} {
		codec := "binary"
		if jsonArm {
			codec = "json"
		}
		fmt.Fprintf(os.Stderr, "  %s codec, per-RPC transport-boundary runs...\n", codec)
		rpcRuns, err := measureWireRPCs(cfg, jsonArm)
		if err != nil {
			return WireResult{}, err
		}
		r.RPCRuns = append(r.RPCRuns, rpcRuns...)
	}

	reduction := func(json, bin float64) float64 {
		if json <= 0 {
			return 0
		}
		return 1 - bin/json
	}
	base := cfg.CallerCounts[0]
	j, jok := cells[fmt.Sprintf("json/%d", base)]
	b, bok := cells[fmt.Sprintf("binary/%d", base)]
	if jok && bok {
		r.InsertBytesReduction = reduction(j.InsertBytesPerOp, b.InsertBytesPerOp)
		r.SearchBytesReduction = reduction(j.SearchBytesPerOp, b.SearchBytesPerOp)
	}
	rpc := make(map[string]WireRPCRun)
	for _, run := range r.RPCRuns {
		rpc[run.Codec+"/"+run.Method] = run
	}
	r.InsertAllocsReduction = reduction(rpc["json/doc.put"].AllocsPerOp, rpc["binary/doc.put"].AllocsPerOp)
	r.SearchAllocsReduction = reduction(rpc["json/mitra.search"].AllocsPerOp, rpc["binary/mitra.search"].AllocsPerOp)
	return r, nil
}

// WriteWireJSON stamps provenance and persists the result.
func WriteWireJSON(r WireResult, path string) error {
	r.Meta = CollectMeta()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatWire renders the A/B grid plus the headline reductions.
func FormatWire(r WireResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wire codec experiment (%d TCP shards, %d inserts + %d SSE searches per cell, body %dB)\n\n",
		r.Config.Shards, r.Config.Docs, r.Config.Searches, r.Config.BodyBytes)
	fmt.Fprintf(&b, "%8s %8s %12s %14s %14s %12s %14s %14s\n",
		"codec", "callers", "insert/s", "ins B/op", "ins allocs/op", "search/s", "srch B/op", "srch allocs/op")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%8s %8d %12.1f %14.1f %14.1f %12.1f %14.1f %14.1f\n",
			run.Codec, run.Callers,
			run.InsertThroughput, run.InsertBytesPerOp, run.InsertAllocsPerOp,
			run.SearchThroughput, run.SearchBytesPerOp, run.SearchAllocsPerOp)
	}
	fmt.Fprintf(&b, "\nper-RPC transport-boundary runs (one connection, fixed args):\n")
	fmt.Fprintf(&b, "%8s %14s %12s %14s %12s\n", "codec", "method", "allocs/op", "wire B/op", "ns/op")
	for _, run := range r.RPCRuns {
		fmt.Fprintf(&b, "%8s %14s %12.1f %14.1f %12.1f\n",
			run.Codec, run.Method, run.AllocsPerOp, run.BytesPerOp, run.NsPerOp)
	}
	fmt.Fprintf(&b, "\nbinary vs json: doc-insert %.1f%% fewer wire bytes (end-to-end), %.1f%% fewer allocs (per RPC); "+
		"SSE search %.1f%% fewer wire bytes (end-to-end), %.1f%% fewer allocs (per RPC)\n",
		100*r.InsertBytesReduction, 100*r.InsertAllocsReduction,
		100*r.SearchBytesReduction, 100*r.SearchAllocsReduction)
	return b.String()
}
