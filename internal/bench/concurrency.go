// Concurrency experiment: quantifies the gateway's fan-out and the
// transport's pipelining against their sequential baselines.
//
// Three measurements, each over simulated gateway↔cloud latency (the
// regime the paper's deployment actually ran in — a private datacenter
// talking to a public cloud):
//
//	search   — multi-leaf disjunction across mixed-tactic fields, parallel
//	           leaf evaluation vs core.Config{Sequential: true}
//	insert   — multi-field document insert fanning out across tactic
//	           indexes vs the same sequential baseline
//	pipeline — N concurrent callers multiplexed over ONE TCP socket vs a
//	           single caller (the transport-level win, isolated from the
//	           engine)

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"datablinder/internal/cloud"
	"datablinder/internal/coalesce"
	"datablinder/internal/core"
	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	"datablinder/internal/transport"
)

// ConcurrencyConfig parameterizes the concurrency experiment.
type ConcurrencyConfig struct {
	// SeedDocs documents are loaded before the measured phases.
	SeedDocs int
	// Searches multi-leaf disjunctions are measured per engine mode.
	Searches int
	// Inserts multi-field documents are measured per engine mode.
	Inserts int
	// Clients is the concurrent-caller count of the pipeline scenario.
	Clients int
	// ClientOps is the total RPC count of the pipeline scenario (split
	// across callers).
	ClientOps int
	// NetDelay is the simulated gateway→cloud RTT applied to every RPC of
	// the engine scenarios and served by the pipeline scenario's handler.
	NetDelay time.Duration
	// Seed fixes the synthetic population.
	Seed int64
}

// DefaultConcurrencyConfig returns a laptop-scale configuration.
func DefaultConcurrencyConfig() ConcurrencyConfig {
	return ConcurrencyConfig{
		SeedDocs: 60, Searches: 30, Inserts: 30,
		Clients: 16, ClientOps: 480,
		NetDelay: 10 * time.Millisecond, Seed: 1,
	}
}

// ModeStats is one measured mode of one scenario.
type ModeStats struct {
	Ops        int
	Elapsed    time.Duration
	Throughput float64 // ops per second
}

func measure(ops int, elapsed time.Duration) ModeStats {
	s := ModeStats{Ops: ops, Elapsed: elapsed}
	if elapsed > 0 {
		s.Throughput = float64(ops) / elapsed.Seconds()
	}
	return s
}

// ConcurrencyResult carries all six measurements.
type ConcurrencyResult struct {
	SearchSeq, SearchPar     ModeStats
	InsertSeq, InsertPar     ModeStats
	PipelineOne, PipelineFan ModeStats
	Clients                  int
	NetDelay                 time.Duration
}

// SearchSpeedup is parallel over sequential search throughput.
func (r ConcurrencyResult) SearchSpeedup() float64 { return speedup(r.SearchPar, r.SearchSeq) }

// InsertSpeedup is parallel over sequential insert throughput.
func (r ConcurrencyResult) InsertSpeedup() float64 { return speedup(r.InsertPar, r.InsertSeq) }

// PipelineSpeedup is N-caller over single-caller throughput on one socket.
func (r ConcurrencyResult) PipelineSpeedup() float64 { return speedup(r.PipelineFan, r.PipelineOne) }

func speedup(num, den ModeStats) float64 {
	if den.Throughput == 0 {
		return 0
	}
	return num.Throughput / den.Throughput
}

// concurrencyQuery builds the measured multi-leaf disjunction: six leaves
// over four fields served by two different tactics (DET and Mitra). The
// benchmark schema has no boolean-search tactic, so the engine evaluates
// this recursively — one index round trip per leaf, the shape the parallel
// evaluator collapses into a single round-trip time.
func concurrencyQuery(i int, patients []string) core.Predicate {
	return core.Or{Preds: []core.Predicate{
		core.Eq{Field: "status", Value: fhir.Statuses[i%len(fhir.Statuses)]},
		core.Eq{Field: "status", Value: fhir.Statuses[(i+1)%len(fhir.Statuses)]},
		core.Eq{Field: "code", Value: fhir.Codes[i%len(fhir.Codes)]},
		core.Eq{Field: "code", Value: fhir.Codes[(i+2)%len(fhir.Codes)]},
		core.Eq{Field: "subject", Value: patients[i%len(patients)]},
		core.Eq{Field: "subject", Value: patients[(i+1)%len(patients)]},
	}}
}

// concurrencyEngine builds a fresh cloud node plus engine in the requested
// mode, with NetDelay injected on every RPC.
func concurrencyEngine(ctx context.Context, cfg ConcurrencyConfig, sequential bool) (*core.Engine, func(), error) {
	node, err := cloud.NewNode(cloud.Options{})
	if err != nil {
		return nil, nil, err
	}
	kp, err := keys.NewRandomStore()
	if err != nil {
		node.Close()
		return nil, nil, err
	}
	local := kvstore.New()
	cleanup := func() {
		node.Close()
		local.Close()
	}
	var conn transport.Conn = transport.NewLoopback(node.Mux)
	if cfg.NetDelay > 0 {
		conn = delayConn{Conn: conn, delay: cfg.NetDelay}
	}
	registry, err := tactics.Registry()
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	// Coalescing off: the experiment compares sequential vs pipelined
	// engine dispatch under a fixed simulated network delay; merging
	// frames across callers would change what "one RPC" costs mid-series.
	engine, err := core.NewEngine(core.Config{
		Keys: kp, Cloud: conn, Local: local, Registry: registry, Sequential: sequential,
		Coalesce: coalesce.Options{Disabled: true},
	})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	if err := engine.RegisterSchema(ctx, fhir.BenchmarkSchema()); err != nil {
		cleanup()
		return nil, nil, err
	}
	return engine, cleanup, nil
}

// runEngineMode seeds one engine and measures its search and insert phases.
func runEngineMode(ctx context.Context, cfg ConcurrencyConfig, sequential bool) (search, insert ModeStats, err error) {
	engine, cleanup, err := concurrencyEngine(ctx, cfg, sequential)
	if err != nil {
		return ModeStats{}, ModeStats{}, err
	}
	defer cleanup()

	gen := fhir.NewGenerator(cfg.Seed, 0, 0)
	schema := fhir.BenchmarkSchema().Name
	for i := 0; i < cfg.SeedDocs; i++ {
		if _, err := engine.Insert(ctx, schema, gen.Observation()); err != nil {
			return ModeStats{}, ModeStats{}, fmt.Errorf("bench: seeding: %w", err)
		}
	}
	patients := gen.Patients()

	t0 := time.Now()
	for i := 0; i < cfg.Searches; i++ {
		if _, err := engine.Search(ctx, schema, concurrencyQuery(i, patients)); err != nil {
			return ModeStats{}, ModeStats{}, fmt.Errorf("bench: search %d: %w", i, err)
		}
	}
	search = measure(cfg.Searches, time.Since(t0))

	t0 = time.Now()
	for i := 0; i < cfg.Inserts; i++ {
		if _, err := engine.Insert(ctx, schema, gen.Observation()); err != nil {
			return ModeStats{}, ModeStats{}, fmt.Errorf("bench: insert %d: %w", i, err)
		}
	}
	insert = measure(cfg.Inserts, time.Since(t0))
	return search, insert, nil
}

// runPipeline serves a handler that sleeps NetDelay per request (the
// simulated cloud) over real TCP and measures a PoolSize=1 client with one
// caller, then with cfg.Clients callers. The single socket is the point:
// any throughput gain beyond 1× is pure RPC multiplexing.
func runPipeline(ctx context.Context, cfg ConcurrencyConfig) (one, fan ModeStats, err error) {
	mux := transport.NewMux()
	mux.Handle("cloud", "op", func(hctx context.Context, _ json.RawMessage) (any, error) {
		select {
		case <-time.After(cfg.NetDelay):
			return nil, nil
		case <-hctx.Done():
			return nil, hctx.Err()
		}
	})
	srv := transport.NewServer(mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return ModeStats{}, ModeStats{}, err
	}
	defer srv.Close()
	client, err := transport.Dial(addr, transport.DialOptions{PoolSize: 1})
	if err != nil {
		return ModeStats{}, ModeStats{}, err
	}
	defer client.Close()

	run := func(callers, ops int) (ModeStats, error) {
		var wg sync.WaitGroup
		errs := make(chan error, callers)
		t0 := time.Now()
		for c := 0; c < callers; c++ {
			n := ops / callers
			if c < ops%callers {
				n++
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := client.Call(ctx, "cloud", "op", nil, nil); err != nil {
						errs <- err
						return
					}
				}
			}(n)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return ModeStats{}, err
		}
		return measure(ops, time.Since(t0)), nil
	}

	// The single-caller leg uses a proportional slice of the op budget so
	// both legs take comparable wall time.
	oneOps := cfg.ClientOps / cfg.Clients * 2
	if oneOps < 1 {
		oneOps = 1
	}
	if one, err = run(1, oneOps); err != nil {
		return ModeStats{}, ModeStats{}, err
	}
	fan, err = run(cfg.Clients, cfg.ClientOps)
	return one, fan, err
}

// RunConcurrency executes the full experiment.
func RunConcurrency(ctx context.Context, cfg ConcurrencyConfig) (ConcurrencyResult, error) {
	if cfg.SeedDocs <= 0 || cfg.Searches <= 0 || cfg.Inserts <= 0 || cfg.Clients <= 1 || cfg.ClientOps < cfg.Clients {
		return ConcurrencyResult{}, fmt.Errorf("bench: concurrency config must be positive (Clients > 1, ClientOps >= Clients)")
	}
	r := ConcurrencyResult{Clients: cfg.Clients, NetDelay: cfg.NetDelay}
	var err error
	if r.SearchSeq, r.InsertSeq, err = runEngineMode(ctx, cfg, true); err != nil {
		return ConcurrencyResult{}, fmt.Errorf("bench: sequential mode: %w", err)
	}
	if r.SearchPar, r.InsertPar, err = runEngineMode(ctx, cfg, false); err != nil {
		return ConcurrencyResult{}, fmt.Errorf("bench: parallel mode: %w", err)
	}
	if r.PipelineOne, r.PipelineFan, err = runPipeline(ctx, cfg); err != nil {
		return ConcurrencyResult{}, fmt.Errorf("bench: pipeline: %w", err)
	}
	return r, nil
}

// FormatConcurrency renders the experiment as a table.
func FormatConcurrency(r ConcurrencyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrency experiment (simulated RTT %v)\n\n", r.NetDelay)
	fmt.Fprintf(&b, "%-28s %10s %12s %12s\n", "scenario", "ops", "throughput", "speedup")
	row := func(name string, s ModeStats, sp float64) {
		su := "baseline"
		if sp > 0 {
			su = fmt.Sprintf("%.2fx", sp)
		}
		fmt.Fprintf(&b, "%-28s %10d %9.1f/s %12s\n", name, s.Ops, s.Throughput, su)
	}
	row("search 6-leaf sequential", r.SearchSeq, 0)
	row("search 6-leaf parallel", r.SearchPar, r.SearchSpeedup())
	row("insert 8-field sequential", r.InsertSeq, 0)
	row("insert 8-field parallel", r.InsertPar, r.InsertSpeedup())
	row("1 caller, 1 socket", r.PipelineOne, 0)
	row(fmt.Sprintf("%d callers, 1 socket", r.Clients), r.PipelineFan, r.PipelineSpeedup())
	return b.String()
}
