// Scenario implementations for the §5.2 evaluation:
//
//	S_A — the application does plain data operations; no middleware, no
//	      tactics (plaintext documents, plaintext indexes).
//	S_B — the data protection tactics are hard-coded into the application
//	      without the middleware (direct tactic calls, fixed pipeline).
//	S_C — the application uses DataBlinder to enforce the same tactics
//	      (schema validation, adaptive selection, SPI dispatch).
//
// All three run against the same cloud node through the same transport,
// so differences isolate tactic cost (S_B vs S_A) and middleware cost
// (S_C vs S_B) — the paper's ~44% and ~1.4% headline numbers.

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync/atomic"
	"time"

	"datablinder/internal/cloud"
	"datablinder/internal/core"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	tdet "datablinder/internal/tactics/det"
	tmitra "datablinder/internal/tactics/mitra"
	tpaillier "datablinder/internal/tactics/paillier"
	trnd "datablinder/internal/tactics/rnd"
	"datablinder/internal/transport"
)

// App is the uniform surface the workload driver and the repository
// benchmarks exercise.
type App interface {
	// Insert stores one observation document.
	Insert(ctx context.Context, doc *model.Document) error
	// SearchEq finds documents by field equality and fetches them.
	SearchEq(ctx context.Context, field string, value any) ([]*model.Document, error)
	// AverageWhere computes avg(value) over documents matching
	// whereField = whereValue (the paper's "aggregated search").
	AverageWhere(ctx context.Context, whereField string, whereValue any) (float64, error)
}

// delayConn simulates network round-trip latency per RPC.
type delayConn struct {
	transport.Conn
	delay time.Duration
}

func (c delayConn) Call(ctx context.Context, service, method string, args, reply any) error {
	timer := time.NewTimer(c.delay)
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
		return ctx.Err()
	}
	return c.Conn.Call(ctx, service, method, args, reply)
}

// countingConn counts logical index-service operations (everything except
// the document service), reproducing the paper's "~350k secure index
// operations" stat. A transport batch counts as its number of sub-calls,
// not one — batching changes frames, not index operations.
type countingConn struct {
	transport.Conn
	indexOps *int64
}

func (c countingConn) Call(ctx context.Context, service, method string, args, reply any) error {
	switch {
	case service == transport.BatchService:
		if v := reflect.ValueOf(args); v.Kind() == reflect.Slice {
			atomic.AddInt64(c.indexOps, int64(v.Len()))
		}
	case service != cloud.DocService:
		atomic.AddInt64(c.indexOps, 1)
	}
	return c.Conn.Call(ctx, service, method, args, reply)
}

// detFields are the five DET-protected fields of the benchmark schema.
var detFields = []string{"status", "code", "effective", "issued", "value"}

// ---- S_A: plain application, no protection --------------------------------

// plainApp stores plaintext documents and maintains plaintext secondary
// indexes (the det index service doubles as a plain inverted index: the
// "ciphertext" key is the plaintext value).
type plainApp struct {
	conn       transport.Conn
	collection string
}

func newPlainApp(conn transport.Conn) *plainApp {
	return &plainApp{conn: conn, collection: "observation-plain"}
}

func (a *plainApp) Insert(ctx context.Context, doc *model.Document) error {
	blob, err := json.Marshal(doc.Fields)
	if err != nil {
		return err
	}
	if err := a.conn.Call(ctx, cloud.DocService, "put",
		cloud.DocPutArgs{Collection: a.collection, ID: doc.ID, Blob: blob, IfAbsent: true}, nil); err != nil {
		return err
	}
	for _, f := range append(append([]string(nil), detFields...), "subject") {
		v, ok := doc.Fields[f]
		if !ok {
			continue
		}
		if err := a.conn.Call(ctx, tdet.Service, "add", tdet.AddArgs{
			Schema: a.collection, Field: f,
			CT: []byte(model.ValueToString(v)), DocID: doc.ID,
		}, nil); err != nil {
			return err
		}
	}
	return nil
}

func (a *plainApp) lookup(ctx context.Context, field string, value any) ([]string, error) {
	var reply tdet.LookupReply
	if err := a.conn.Call(ctx, tdet.Service, "lookup", tdet.LookupArgs{
		Schema: a.collection, Field: field, CT: []byte(model.ValueToString(value)),
	}, &reply); err != nil {
		return nil, err
	}
	return reply.DocIDs, nil
}

func (a *plainApp) fetch(ctx context.Context, ids []string) ([]*model.Document, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var reply cloud.DocGetManyReply
	if err := a.conn.Call(ctx, cloud.DocService, "getmany",
		cloud.DocGetManyArgs{Collection: a.collection, IDs: ids}, &reply); err != nil {
		return nil, err
	}
	docs := make([]*model.Document, 0, len(reply.Records))
	for _, rec := range reply.Records {
		var fields map[string]any
		if err := json.Unmarshal(rec.Blob, &fields); err != nil {
			return nil, err
		}
		docs = append(docs, &model.Document{ID: rec.ID, Fields: fields})
	}
	return docs, nil
}

func (a *plainApp) SearchEq(ctx context.Context, field string, value any) ([]*model.Document, error) {
	ids, err := a.lookup(ctx, field, value)
	if err != nil {
		return nil, err
	}
	return a.fetch(ctx, ids)
}

func (a *plainApp) AverageWhere(ctx context.Context, whereField string, whereValue any) (float64, error) {
	docs, err := a.SearchEq(ctx, whereField, whereValue)
	if err != nil {
		return 0, err
	}
	if len(docs) == 0 {
		return 0, nil
	}
	var sum float64
	n := 0
	for _, d := range docs {
		if v, ok := d.Fields["value"].(float64); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// ---- S_B: tactics hard-coded into the application -------------------------

// hardcodedApp wires the eight tactic instances of the §5.2 experiment
// (5×DET, Mitra, RND, Paillier) directly, with a fixed field→tactic
// pipeline and no middleware dispatch.
type hardcodedApp struct {
	conn       transport.Conn
	collection string
	aead       *primitives.AEAD

	det      *tdet.Tactic
	mitra    spi.Tactic
	rnd      *trnd.Tactic
	paillier *tpaillier.Tactic
}

func newHardcodedApp(ctx context.Context, conn transport.Conn, kp keys.Provider, local *kvstore.Store) (*hardcodedApp, error) {
	const collection = "observation-hardcoded"
	b := spi.Binding{Schema: collection, Keys: kp, Cloud: conn, Local: local}

	detT, err := tdet.New(b)
	if err != nil {
		return nil, err
	}
	mitraT, err := tmitra.New(b)
	if err != nil {
		return nil, err
	}
	rndT, err := trnd.New(b)
	if err != nil {
		return nil, err
	}
	paillierT, err := tpaillier.New(b)
	if err != nil {
		return nil, err
	}
	if err := paillierT.Setup(ctx); err != nil {
		return nil, err
	}
	docKey, err := kp.Key(keys.Ref{Schema: collection, Field: "*", Tactic: "SecureEnc", Purpose: "doc"})
	if err != nil {
		return nil, err
	}
	aead, err := primitives.NewAEAD(docKey)
	if err != nil {
		return nil, err
	}
	return &hardcodedApp{
		conn:       conn,
		collection: collection,
		aead:       aead,
		det:        detT.(*tdet.Tactic),
		mitra:      mitraT,
		rnd:        rndT.(*trnd.Tactic),
		paillier:   paillierT.(*tpaillier.Tactic),
	}, nil
}

func (a *hardcodedApp) Insert(ctx context.Context, doc *model.Document) error {
	pt, err := json.Marshal(doc.Fields)
	if err != nil {
		return err
	}
	blob, err := a.aead.Seal(pt, []byte(doc.ID))
	if err != nil {
		return err
	}
	if err := a.conn.Call(ctx, cloud.DocService, "put",
		cloud.DocPutArgs{Collection: a.collection, ID: doc.ID, Blob: blob, IfAbsent: true}, nil); err != nil {
		return err
	}
	for _, f := range detFields {
		if v, ok := doc.Fields[f]; ok {
			if err := a.det.Insert(ctx, f, doc.ID, v); err != nil {
				return err
			}
		}
	}
	if v, ok := doc.Fields["subject"]; ok {
		if err := a.mitra.(spi.Inserter).Insert(ctx, "subject", doc.ID, v); err != nil {
			return err
		}
	}
	if v, ok := doc.Fields["performer"]; ok {
		if err := a.rnd.Insert(ctx, "performer", doc.ID, v); err != nil {
			return err
		}
	}
	if v, ok := doc.Fields["value"]; ok {
		if err := a.paillier.Insert(ctx, "value", doc.ID, v); err != nil {
			return err
		}
	}
	return nil
}

func (a *hardcodedApp) searchIDs(ctx context.Context, field string, value any) ([]string, error) {
	if field == "subject" {
		return a.mitra.(spi.EqSearcher).SearchEq(ctx, field, value)
	}
	return a.det.SearchEq(ctx, field, value)
}

func (a *hardcodedApp) SearchEq(ctx context.Context, field string, value any) ([]*model.Document, error) {
	ids, err := a.searchIDs(ctx, field, value)
	if err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, nil
	}
	var reply cloud.DocGetManyReply
	if err := a.conn.Call(ctx, cloud.DocService, "getmany",
		cloud.DocGetManyArgs{Collection: a.collection, IDs: ids}, &reply); err != nil {
		return nil, err
	}
	docs := make([]*model.Document, 0, len(reply.Records))
	for _, rec := range reply.Records {
		pt, err := a.aead.Open(rec.Blob, []byte(rec.ID))
		if err != nil {
			return nil, err
		}
		var fields map[string]any
		if err := json.Unmarshal(pt, &fields); err != nil {
			return nil, err
		}
		docs = append(docs, &model.Document{ID: rec.ID, Fields: fields})
	}
	return docs, nil
}

func (a *hardcodedApp) AverageWhere(ctx context.Context, whereField string, whereValue any) (float64, error) {
	ids, err := a.searchIDs(ctx, whereField, whereValue)
	if err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, nil
	}
	return a.paillier.Aggregate(ctx, "value", model.AggAvg, ids)
}

// ---- S_C: DataBlinder middleware -------------------------------------------

// middlewareApp drives the full engine: schema validation, adaptive
// selection, SPI dispatch, policy enforcement.
type middlewareApp struct {
	engine *core.Engine
	schema string
}

func newMiddlewareApp(ctx context.Context, conn transport.Conn, kp keys.Provider, local *kvstore.Store) (*middlewareApp, error) {
	registry, err := tactics.Registry()
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(core.Config{Keys: kp, Cloud: conn, Local: local, Registry: registry})
	if err != nil {
		return nil, err
	}
	schema := fhir.BenchmarkSchema()
	if err := engine.RegisterSchema(ctx, schema); err != nil {
		return nil, err
	}
	return &middlewareApp{engine: engine, schema: schema.Name}, nil
}

func (a *middlewareApp) Insert(ctx context.Context, doc *model.Document) error {
	_, err := a.engine.Insert(ctx, a.schema, doc)
	return err
}

func (a *middlewareApp) SearchEq(ctx context.Context, field string, value any) ([]*model.Document, error) {
	return a.engine.Search(ctx, a.schema, core.Eq{Field: field, Value: value})
}

func (a *middlewareApp) AverageWhere(ctx context.Context, whereField string, whereValue any) (float64, error) {
	return a.engine.Aggregate(ctx, a.schema, "value", model.AggAvg,
		core.Eq{Field: whereField, Value: whereValue})
}

var (
	_ App = (*plainApp)(nil)
	_ App = (*hardcodedApp)(nil)
	_ App = (*middlewareApp)(nil)
)

// newApp constructs the scenario's app over a shared cloud connection.
func NewApp(ctx context.Context, scenario string, conn transport.Conn, kp keys.Provider, local *kvstore.Store) (App, error) {
	switch scenario {
	case "A":
		return newPlainApp(conn), nil
	case "B":
		return newHardcodedApp(ctx, conn, kp, local)
	case "C":
		return newMiddlewareApp(ctx, conn, kp, local)
	default:
		return nil, fmt.Errorf("bench: unknown scenario %q", scenario)
	}
}
