package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunHotpathSmoke runs a tiny configuration end to end: both insert
// arms, both token arms, both Paillier arms, plus the JSON artifact.
func TestRunHotpathSmoke(t *testing.T) {
	cfg := HotpathConfig{Docs: 6, PaillierBits: 256, PoolSize: 2, Rounds: 1, Seed: 1}
	r, err := RunHotpath(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunHotpath: %v", err)
	}
	for name, arm := range map[string]HotpathArm{
		"sse token cached":   r.SSETokenCached,
		"sse token uncached": r.SSETokenUncached,
		"insert cached":      r.SSEInsertCached,
		"insert uncached":    r.SSEInsertUncached,
		"paillier inline":    r.PaillierInline,
		"paillier pooled":    r.PaillierPooled,
	} {
		if arm.Ops <= 0 || arm.NsPerOp <= 0 {
			t.Errorf("%s arm empty: %+v", name, arm)
		}
	}
	if r.PaillierSpeedup <= 0 {
		t.Errorf("PaillierSpeedup = %v", r.PaillierSpeedup)
	}

	path := filepath.Join(t.TempDir(), "BENCH_hotpath.json")
	if err := WriteHotpathJSON(r, path); err != nil {
		t.Fatalf("WriteHotpathJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back HotpathResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if back.Config.Docs != cfg.Docs {
		t.Errorf("artifact config = %+v", back.Config)
	}

	if s := FormatHotpath(r); s == "" {
		t.Error("FormatHotpath returned empty string")
	}
}

func TestRunHotpathRejectsBadConfig(t *testing.T) {
	if _, err := RunHotpath(context.Background(), HotpathConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
