// Persist experiment: measures what the segmented binary WAL buys over
// the v1 text append-only file on the index store's durable write path,
// and what snapshots buy on restart.
//
// Three measured dimensions:
//
//	throughput — kvstore.Set ops/s per fsync policy at 1 caller (clean
//	             per-op cost) and Callers concurrent callers (the regime
//	             group commit amortizes: N callers share one fsync). The
//	             baseline arm is a faithful replica of the v1 write path —
//	             one big mutex, base64 text records via fmt.Fprintf, an
//	             fsync per record under "always" — because the store
//	             itself no longer has a text mode to A/B against.
//	allocs     — heap allocations per durable Set (runtime Mallocs delta,
//	             single caller), v1's per-record base64+Sprintf churn
//	             versus the WAL's pooled binary frames.
//	recovery   — cold-start time over the same RecoveryRecords-record
//	             history three ways: parsing the v1 text AOF, replaying
//	             the full WAL (parallel across lock stripes), and loading
//	             a snapshot plus empty tail.
//
// Both arms run on real files in a temp directory; fsync cost is the
// machine's, so absolute numbers vary but the A/B ratios are what the
// acceptance thresholds bind.

package bench

import (
	"bufio"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"datablinder/internal/store/kvstore"
	"datablinder/internal/store/wal"
)

// PersistConfig parameterizes the persistence experiment.
type PersistConfig struct {
	// Inserts is the number of Set ops per throughput cell.
	Inserts int
	// CallerCounts lists the concurrency levels to measure, in order.
	CallerCounts []int
	// Policies lists the fsync policies to measure ("always", "interval",
	// "never").
	Policies []string
	// RecoveryRecords is the history length for the recovery comparison.
	RecoveryRecords int
	// RecoveryKeys is the number of distinct keys the recovery history
	// cycles over. Records/Keys is the update factor: both text-AOF parse
	// and full-WAL replay scale with the record count, snapshot load with
	// the live key count — the gap is exactly what snapshots buy.
	RecoveryKeys int
	// ValueBytes sizes each Set value.
	ValueBytes int
	// Seed fixes the synthetic key/value population.
	Seed int64
}

// DefaultPersistConfig returns a laptop-scale configuration: enough ops
// for stable throughput under fsync=always, a recovery history long
// enough (100k records) that replay dominates open cost.
func DefaultPersistConfig() PersistConfig {
	return PersistConfig{
		Inserts:         2000,
		CallerCounts:    []int{1, 16},
		Policies:        []string{"always", "interval", "never"},
		RecoveryRecords: 100_000,
		RecoveryKeys:    10_000,
		ValueBytes:      64,
		Seed:            1,
	}
}

// PersistRun is one (engine, policy, caller-count) throughput cell.
type PersistRun struct {
	Engine      string  `json:"engine"` // "text-aof" or "wal"
	Policy      string  `json:"policy"`
	Callers     int     `json:"callers"`
	Ops         int     `json:"ops"`
	Throughput  float64 `json:"throughput_per_s"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"` // filled on single-caller cells
}

// RecoveryRun is one engine's cold-start cost over the same history.
type RecoveryRun struct {
	Engine  string  `json:"engine"` // "text-aof", "wal-replay", "wal-snapshot"
	Records int     `json:"records"`
	LoadMs  float64 `json:"load_ms"`
}

// PersistResult carries every cell plus the headline ratios the
// acceptance criteria bind.
type PersistResult struct {
	Runs     []PersistRun  `json:"runs"`
	Recovery []RecoveryRun `json:"recovery"`
	// AlwaysSpeedup is WAL/text-AOF throughput at fsync=always and the
	// highest caller count — the group-commit headline.
	AlwaysSpeedup float64 `json:"always_speedup_concurrent"`
	// AllocsReduction is the fractional single-caller allocs/op saving of
	// the WAL write path over the text AOF (0.4 = 40% fewer).
	AllocsReduction float64 `json:"allocs_reduction"`
	// SnapshotSpeedup is full-WAL-replay time over snapshot-load time for
	// the RecoveryRecords history.
	SnapshotSpeedup float64       `json:"snapshot_recovery_speedup"`
	Config          PersistConfig `json:"config"`
	// Meta is stamped by WritePersistJSON.
	Meta Meta `json:"meta"`
}

// legacyAOF replicates the v1 kvstore persistence path closely enough to
// be a fair baseline: a single mutex around an in-memory map and a
// buffered text AOF of base64 records, flushed+fsynced per record under
// "always", once a second under "interval", and only at close under
// "never". (The v1 store had per-stripe data locks but serialized every
// append through one log mutex; collapsing both into one mutex changes
// nothing measurable when the log write dominates.)
type legacyAOF struct {
	mu     sync.Mutex
	m      map[string][]byte
	f      *os.File
	w      *bufio.Writer
	policy string
	stop   chan struct{}
	done   chan struct{}
}

func openLegacyAOF(path, policy string) (*legacyAOF, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	s := &legacyAOF{
		m: make(map[string][]byte), f: f, w: bufio.NewWriter(f),
		policy: policy, stop: make(chan struct{}), done: make(chan struct{}),
	}
	if policy == "interval" {
		go s.intervalSync()
	} else {
		close(s.done)
	}
	return s, nil
}

func (s *legacyAOF) intervalSync() {
	defer close(s.done)
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			s.w.Flush()
			s.f.Sync()
			s.mu.Unlock()
		case <-s.stop:
			return
		}
	}
}

func (s *legacyAOF) set(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[string(key)] = value
	enc := base64.StdEncoding
	if _, err := fmt.Fprintf(s.w, "SET %s %s\n", enc.EncodeToString(key), enc.EncodeToString(value)); err != nil {
		return err
	}
	if s.policy == "always" {
		if err := s.w.Flush(); err != nil {
			return err
		}
		return s.f.Sync()
	}
	return nil
}

// load parses the AOF back into memory — the v1 Open path.
func (s *legacyAOF) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for scanner.Scan() {
		op, rest, ok := strings.Cut(scanner.Text(), " ")
		if !ok || op != "SET" {
			return fmt.Errorf("bench: malformed legacy record %q", scanner.Text())
		}
		k64, v64, ok := strings.Cut(rest, " ")
		if !ok {
			return fmt.Errorf("bench: malformed legacy record %q", scanner.Text())
		}
		key, err := base64.StdEncoding.DecodeString(k64)
		if err != nil {
			return err
		}
		val, err := base64.StdEncoding.DecodeString(v64)
		if err != nil {
			return err
		}
		s.m[string(key)] = val
	}
	return scanner.Err()
}

func (s *legacyAOF) close() error {
	if s.policy == "interval" {
		close(s.stop)
		<-s.done
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Flush()
	s.f.Sync()
	return s.f.Close()
}

// persistKeys materializes the key/value population outside the timed
// region. Keys mimic index-store shape (namespace-prefixed, distinct).
func persistKeys(n, valueBytes int, seed int64) (keys, vals [][]byte) {
	rng := rand.New(rand.NewSource(seed))
	keys = make([][]byte, n)
	vals = make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("det/wirebench/status/%08d", i))
		v := make([]byte, valueBytes)
		rng.Read(v)
		vals[i] = v
	}
	return keys, vals
}

// persistPhase drives total ops across callers and returns the elapsed
// time plus the process Mallocs delta.
func persistPhase(callers, total int, op func(i int) error) (time.Duration, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += callers {
				if e := op(i); e != nil {
					errs[w] = e
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	return elapsed, m1.Mallocs - m0.Mallocs, nil
}

// runPersistCell measures one (engine, policy, callers) cell on a fresh
// store in a fresh directory.
func runPersistCell(cfg PersistConfig, dir, engine, policy string, callers int) (PersistRun, error) {
	run := PersistRun{Engine: engine, Policy: policy, Callers: callers, Ops: cfg.Inserts}
	keys, vals := persistKeys(cfg.Inserts, cfg.ValueBytes, cfg.Seed)

	var op func(i int) error
	var closeStore func() error
	switch engine {
	case "text-aof":
		s, err := openLegacyAOF(filepath.Join(dir, "index.aof"), policy)
		if err != nil {
			return run, err
		}
		op = func(i int) error { return s.set(keys[i], vals[i]) }
		closeStore = s.close
	case "wal":
		fsync, err := wal.ParsePolicy(policy)
		if err != nil {
			return run, err
		}
		s, err := kvstore.Open(filepath.Join(dir, "index"), kvstore.Options{Fsync: fsync})
		if err != nil {
			return run, err
		}
		op = func(i int) error { return s.Set(keys[i], vals[i]) }
		closeStore = s.Close
	default:
		return run, fmt.Errorf("bench: unknown persist engine %q", engine)
	}

	elapsed, allocs, err := persistPhase(callers, cfg.Inserts, op)
	cerr := closeStore()
	if err != nil {
		return run, fmt.Errorf("bench: persist %s/%s/%d: %w", engine, policy, callers, err)
	}
	if cerr != nil {
		return run, fmt.Errorf("bench: persist %s/%s/%d close: %w", engine, policy, callers, cerr)
	}
	if elapsed > 0 {
		run.Throughput = float64(run.Ops) / elapsed.Seconds()
	}
	run.NsPerOp = float64(elapsed.Nanoseconds()) / float64(run.Ops)
	if callers == 1 {
		run.AllocsPerOp = float64(allocs) / float64(run.Ops)
	}
	return run, nil
}

// runRecovery builds one RecoveryRecords-record history per engine and
// times the cold start. fsync=never keeps history construction fast; the
// recovery path is identical regardless of how the log was synced.
func runRecovery(cfg PersistConfig, dir string) ([]RecoveryRun, error) {
	keys, vals := persistKeys(cfg.RecoveryKeys, cfg.ValueBytes, cfg.Seed+1)
	key := func(i int) []byte { return keys[i%cfg.RecoveryKeys] }
	val := func(i int) []byte { return vals[(i/cfg.RecoveryKeys)%cfg.RecoveryKeys] }
	var runs []RecoveryRun

	// v1 text AOF: write the history, then time the parse.
	aofPath := filepath.Join(dir, "legacy.aof")
	legacy, err := openLegacyAOF(aofPath, "never")
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.RecoveryRecords; i++ {
		if err := legacy.set(key(i), val(i)); err != nil {
			return nil, err
		}
	}
	if err := legacy.close(); err != nil {
		return nil, err
	}
	cold := &legacyAOF{m: make(map[string][]byte)}
	t0 := time.Now()
	if err := cold.load(aofPath); err != nil {
		return nil, err
	}
	legacyMs := float64(time.Since(t0).Microseconds()) / 1000
	if len(cold.m) != cfg.RecoveryKeys {
		return nil, fmt.Errorf("bench: legacy recovery loaded %d keys, want %d", len(cold.m), cfg.RecoveryKeys)
	}
	runs = append(runs, RecoveryRun{Engine: "text-aof", Records: cfg.RecoveryRecords, LoadMs: legacyMs})

	// WAL: write the same history once, time a full-log replay, then
	// snapshot (Compact) and time the snapshot-load start.
	walPath := filepath.Join(dir, "walstore")
	s, err := kvstore.Open(walPath, kvstore.Options{Fsync: wal.FsyncNever})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.RecoveryRecords; i++ {
		if err := s.Set(key(i), val(i)); err != nil {
			return nil, err
		}
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	// First open replays the full log (timed as wal-replay) and compacts
	// before closing, so the second open (timed as wal-snapshot) starts
	// from the snapshot with an empty tail.
	for _, arm := range []struct {
		engine  string
		compact bool
	}{{"wal-replay", true}, {"wal-snapshot", false}} {
		t0 := time.Now()
		s, err := kvstore.Open(walPath, kvstore.Options{Fsync: wal.FsyncNever})
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if n, err := s.Len(); err != nil || n != cfg.RecoveryKeys {
			s.Close()
			return nil, fmt.Errorf("bench: %s recovered %d keys (err %v), want %d", arm.engine, n, err, cfg.RecoveryKeys)
		}
		if arm.compact {
			if err := s.Compact(); err != nil {
				s.Close()
				return nil, err
			}
		}
		if err := s.Close(); err != nil {
			return nil, err
		}
		runs = append(runs, RecoveryRun{Engine: arm.engine, Records: cfg.RecoveryRecords, LoadMs: ms})
	}
	return runs, nil
}

// RunPersist measures every throughput cell and the recovery comparison.
func RunPersist(ctx context.Context, cfg PersistConfig) (PersistResult, error) {
	_ = ctx
	if cfg.Inserts <= 0 || cfg.RecoveryRecords <= 0 || len(cfg.CallerCounts) == 0 || len(cfg.Policies) == 0 {
		return PersistResult{}, fmt.Errorf("bench: persist config must be positive")
	}
	if cfg.RecoveryKeys <= 0 || cfg.RecoveryKeys > cfg.RecoveryRecords {
		return PersistResult{}, fmt.Errorf("bench: recovery keys must be in [1, records]")
	}
	root, err := os.MkdirTemp("", "blinderbench-persist-*")
	if err != nil {
		return PersistResult{}, err
	}
	defer os.RemoveAll(root)

	r := PersistResult{Config: cfg}
	cells := make(map[string]PersistRun)
	cell := 0
	for _, engine := range []string{"text-aof", "wal"} {
		for _, policy := range cfg.Policies {
			for _, callers := range cfg.CallerCounts {
				if callers < 1 {
					return PersistResult{}, fmt.Errorf("bench: caller count must be >= 1 (got %d)", callers)
				}
				cell++
				dir := filepath.Join(root, fmt.Sprintf("cell-%d", cell))
				if err := os.MkdirAll(dir, 0o700); err != nil {
					return PersistResult{}, err
				}
				fmt.Fprintf(os.Stderr, "  %s, fsync=%s, %d caller(s)...\n", engine, policy, callers)
				run, err := runPersistCell(cfg, dir, engine, policy, callers)
				if err != nil {
					return PersistResult{}, err
				}
				r.Runs = append(r.Runs, run)
				cells[fmt.Sprintf("%s/%s/%d", engine, policy, callers)] = run
			}
		}
	}

	fmt.Fprintf(os.Stderr, "  recovery comparison (%d records)...\n", cfg.RecoveryRecords)
	recDir := filepath.Join(root, "recovery")
	if err := os.MkdirAll(recDir, 0o700); err != nil {
		return PersistResult{}, err
	}
	r.Recovery, err = runRecovery(cfg, recDir)
	if err != nil {
		return PersistResult{}, err
	}

	top := cfg.CallerCounts[len(cfg.CallerCounts)-1]
	if legacy, ok := cells[fmt.Sprintf("text-aof/always/%d", top)]; ok {
		if w, ok := cells[fmt.Sprintf("wal/always/%d", top)]; ok && legacy.Throughput > 0 {
			r.AlwaysSpeedup = w.Throughput / legacy.Throughput
		}
	}
	if legacy, ok := cells["text-aof/always/1"]; ok {
		if w, ok := cells["wal/always/1"]; ok && legacy.AllocsPerOp > 0 {
			r.AllocsReduction = 1 - w.AllocsPerOp/legacy.AllocsPerOp
		}
	}
	rec := make(map[string]RecoveryRun)
	for _, run := range r.Recovery {
		rec[run.Engine] = run
	}
	if full, snap := rec["wal-replay"], rec["wal-snapshot"]; snap.LoadMs > 0 {
		r.SnapshotSpeedup = full.LoadMs / snap.LoadMs
	}
	return r, nil
}

// WritePersistJSON stamps provenance and persists the result.
func WritePersistJSON(r PersistResult, path string) error {
	r.Meta = CollectMeta()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatPersist renders the policy grid plus the headline ratios.
func FormatPersist(r PersistResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Persistence experiment (%d Set ops per cell, %dB values, recovery over %d records / %d live keys)\n\n",
		r.Config.Inserts, r.Config.ValueBytes, r.Config.RecoveryRecords, r.Config.RecoveryKeys)
	fmt.Fprintf(&b, "%10s %10s %8s %12s %12s %12s\n", "engine", "fsync", "callers", "ops/s", "ns/op", "allocs/op")
	for _, run := range r.Runs {
		allocs := "-"
		if run.AllocsPerOp > 0 {
			allocs = fmt.Sprintf("%.1f", run.AllocsPerOp)
		}
		fmt.Fprintf(&b, "%10s %10s %8d %12.1f %12.1f %12s\n",
			run.Engine, run.Policy, run.Callers, run.Throughput, run.NsPerOp, allocs)
	}
	fmt.Fprintf(&b, "\ncold-start recovery:\n")
	fmt.Fprintf(&b, "%14s %10s %10s\n", "engine", "records", "load ms")
	for _, run := range r.Recovery {
		fmt.Fprintf(&b, "%14s %10d %10.1f\n", run.Engine, run.Records, run.LoadMs)
	}
	fmt.Fprintf(&b, "\nwal vs text-aof: %.1fx durable-insert throughput at fsync=always with %d callers, "+
		"%.1f%% fewer allocs/op; snapshot recovery %.1fx faster than full-log replay\n",
		r.AlwaysSpeedup, r.Config.CallerCounts[len(r.Config.CallerCounts)-1],
		100*r.AllocsReduction, r.SnapshotSpeedup)
	return b.String()
}
