package bench

import (
	"context"
	"testing"
)

// TestRunWireSmoke runs a miniature A/B (tiny population, one caller
// count) and checks the result's shape: every cell present with positive
// throughput and per-op accounting, RPC-level runs covering both codecs
// and both hot methods, and the binary arm strictly cheaper than JSON on
// wire bytes in every cell — that inequality is the experiment's reason
// to exist and holds at any scale.
func TestRunWireSmoke(t *testing.T) {
	cfg := WireConfig{
		Shards: 2, Docs: 24, Searches: 32,
		CallerCounts: []int{2}, BodyBytes: 96, Seed: 7,
	}
	r, err := RunWire(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("got %d cells, want 2", len(r.Runs))
	}
	byCodec := map[string]WireRun{}
	for _, run := range r.Runs {
		byCodec[run.Codec] = run
		if run.InsertOps != cfg.Docs || run.SearchOps != cfg.Searches {
			t.Errorf("%s: ops %d/%d, want %d/%d", run.Codec, run.InsertOps, run.SearchOps, cfg.Docs, cfg.Searches)
		}
		if run.InsertThroughput <= 0 || run.SearchThroughput <= 0 {
			t.Errorf("%s: non-positive throughput %+v", run.Codec, run)
		}
		if run.InsertBytesPerOp <= 0 || run.SearchBytesPerOp <= 0 {
			t.Errorf("%s: non-positive wire bytes per op %+v", run.Codec, run)
		}
	}
	j, b := byCodec["json"], byCodec["binary"]
	if b.InsertBytesPerOp >= j.InsertBytesPerOp {
		t.Errorf("binary insert bytes/op %.1f not below json %.1f", b.InsertBytesPerOp, j.InsertBytesPerOp)
	}
	if b.SearchBytesPerOp >= j.SearchBytesPerOp {
		t.Errorf("binary search bytes/op %.1f not below json %.1f", b.SearchBytesPerOp, j.SearchBytesPerOp)
	}

	if len(r.RPCRuns) != 4 {
		t.Fatalf("got %d RPC runs, want 4", len(r.RPCRuns))
	}
	rpc := map[string]WireRPCRun{}
	for _, run := range r.RPCRuns {
		rpc[run.Codec+"/"+run.Method] = run
		if run.AllocsPerOp <= 0 || run.BytesPerOp <= 0 {
			t.Errorf("rpc %s/%s: non-positive accounting %+v", run.Codec, run.Method, run)
		}
	}
	for _, method := range []string{"doc.put", "mitra.search"} {
		if rpc["binary/"+method].BytesPerOp >= rpc["json/"+method].BytesPerOp {
			t.Errorf("rpc %s: binary bytes/op %.1f not below json %.1f",
				method, rpc["binary/"+method].BytesPerOp, rpc["json/"+method].BytesPerOp)
		}
		if rpc["binary/"+method].AllocsPerOp >= rpc["json/"+method].AllocsPerOp {
			t.Errorf("rpc %s: binary allocs/op %.1f not below json %.1f",
				method, rpc["binary/"+method].AllocsPerOp, rpc["json/"+method].AllocsPerOp)
		}
	}
}
