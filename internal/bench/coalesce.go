// Coalesce experiment: A/B-measures the gateway's per-shard group-commit
// stage (internal/coalesce) under the traffic shape it exists for — many
// concurrent callers hammering a small sharded tier across a network where
// the per-frame cost dwarfs the per-operation cost.
//
// Node cost model. Each shard sits behind an rpcConn that admits at most
// NodeWidth concurrent frames and charges RPCOverhead of (sleeping,
// non-CPU) latency per frame plus PerOp per operation the frame carries —
// the shape of a real RPC over a datacenter link, where syscalls, framing,
// and scheduling cost far more than one extra key-value insert riding in
// an already-open frame. Uncoalesced, every caller ships its own small
// frame per shard and pays RPCOverhead each time; coalesced, one mega-
// batch per shard amortizes RPCOverhead over every active caller's
// sub-calls and pays the (much smaller) PerOp cost for the extra work.
// The frame and sub-operation counters on each rpcConn report exactly how
// much framing the coalescer removed.
//
// Two measured phases per arm, both driven by Callers goroutines:
//
//	insert — full engine.Insert over the sharding schema (doc.put plus
//	         DET/Mitra/BIEX/OPE index writes), the write path the group
//	         commit targets
//	get    — engine.Get over a small hot id set, exercising read-side
//	         coalescing: singleflight joins of identical in-flight gets
//	         and doc.get → doc.getmany merging per shard
//
// The BIEX packing numbers (cross cells vs wire entries for a 10-keyword
// document) are measured directly on the SSE client, independent of the
// RPC model.

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datablinder/internal/cloud/ring"
	"datablinder/internal/coalesce"
	"datablinder/internal/core"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	ssebiex "datablinder/internal/sse/biex"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	"datablinder/internal/transport"

	cloudnode "datablinder/internal/cloud"
)

// CoalesceConfig parameterizes the coalesce experiment.
type CoalesceConfig struct {
	// Shards is the cloud tier size.
	Shards int
	// Callers is the concurrent gateway caller count of both phases.
	Callers int
	// Inserts documents are written in the insert phase (split across
	// callers).
	Inserts int
	// Gets point reads are issued in the get phase (split across callers).
	Gets int
	// HotIDs is how many distinct documents the get phase draws from;
	// Gets >> HotIDs makes identical in-flight reads common, the case
	// singleflight deduplication exists for.
	HotIDs int
	// NodeWidth is how many frames one node serves concurrently.
	NodeWidth int
	// RPCOverhead is the simulated fixed cost per frame.
	RPCOverhead time.Duration
	// PerOp is the simulated cost per sub-operation a frame carries.
	PerOp time.Duration
	// Seed fixes the synthetic population and the get phase's id draw.
	Seed int64
}

// DefaultCoalesceConfig returns a laptop-scale configuration sized so the
// uncoalesced arm is firmly frame-bound: 16 callers against a 4-shard tier
// over a gateway↔cloud link in the regime the paper deployed in (private
// datacenter to public cloud, where a round trip costs milliseconds and a
// sub-operation riding an open frame costs microseconds).
func DefaultCoalesceConfig() CoalesceConfig {
	return CoalesceConfig{
		Shards: 4, Callers: 16,
		Inserts: 480, Gets: 960, HotIDs: 64,
		NodeWidth: 4, RPCOverhead: 5 * time.Millisecond, PerOp: 25 * time.Microsecond,
		Seed: 1,
	}
}

// CoalesceRun is one arm's measurement.
type CoalesceRun struct {
	InsertOps        int     `json:"insert_ops"`
	InsertThroughput float64 `json:"insert_throughput_per_s"`
	GetOps           int     `json:"get_ops"`
	GetThroughput    float64 `json:"get_throughput_per_s"`
	// Frames is how many RPC frames the tier served across both phases;
	// SubOps is how many operations those frames carried. SubOps is
	// workload-determined and near-identical across arms — Frames is what
	// coalescing collapses.
	Frames int64 `json:"frames"`
	SubOps int64 `json:"sub_ops"`
}

// CoalesceResult carries both arms plus the derived ratios.
type CoalesceResult struct {
	Baseline  CoalesceRun `json:"baseline"`
	Coalesced CoalesceRun `json:"coalesced"`
	// InsertSpeedup / GetSpeedup are coalesced over baseline throughput.
	InsertSpeedup float64 `json:"insert_speedup"`
	GetSpeedup    float64 `json:"get_speedup"`
	// FrameReduction is baseline frames over coalesced frames.
	FrameReduction float64 `json:"frame_reduction"`
	// BiexCrossCells10 / BiexCrossWire10 are a 10-keyword document's cross
	// multimap cells and the top-level wire entries carrying them — the
	// O(k²) → O(1)-per-shard packing win, measured on the SSE client.
	BiexCrossCells10 int `json:"biex_cross_cells_10kw"`
	BiexCrossWire10  int `json:"biex_cross_wire_entries_10kw"`
	// Stats is the coalesced arm's aggregated coalescer counters.
	Stats  coalesce.Stats `json:"coalesce_stats"`
	Config CoalesceConfig `json:"config"`
	// Meta is stamped by WriteCoalesceJSON.
	Meta Meta `json:"meta"`
}

// rpcConn models one shard's RPC cost: at most width in-flight frames,
// each charged overhead plus ops×perOp of sleeping latency. Operations are
// counted through batch framing (a _batch.exec frame carrying k sub-calls
// counts the sum of its sub-calls' operations), so both arms are billed
// identically per unit of index work and differ only in framing.
type rpcConn struct {
	transport.Conn
	slots           chan struct{}
	overhead, perOp time.Duration

	frames atomic.Int64
	subOps atomic.Int64
}

func newRPCConn(conn transport.Conn, width int, overhead, perOp time.Duration) *rpcConn {
	if width <= 0 {
		width = 1
	}
	return &rpcConn{Conn: conn, slots: make(chan struct{}, width), overhead: overhead, perOp: perOp}
}

func (c *rpcConn) Call(ctx context.Context, service, method string, args, reply any) error {
	select {
	case c.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-c.slots }()
	ops := countFrameOps(service, method, args)
	c.frames.Add(1)
	c.subOps.Add(int64(ops))
	if cost := c.overhead + time.Duration(ops)*c.perOp; cost > 0 {
		t := time.NewTimer(cost)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return c.Conn.Call(ctx, service, method, args, reply)
}

// countFrameOps counts the operations one frame carries. Batch frames sum
// their sub-calls; multi-item calls (getmany, putmany, BIEX cell batches)
// count per item, so packing and coalescing change framing, not billed
// work.
func countFrameOps(service, method string, args any) int {
	if service != transport.BatchService {
		payload, err := json.Marshal(args)
		if err != nil {
			return 1
		}
		return countSubOps(service, method, payload)
	}
	raw, err := json.Marshal(args)
	if err != nil {
		return 1
	}
	var subs []struct {
		Service string          `json:"service"`
		Method  string          `json:"method"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal(raw, &subs); err != nil {
		return 1
	}
	n := 0
	for _, s := range subs {
		n += countSubOps(s.Service, s.Method, s.Payload)
	}
	if n < 1 {
		n = 1
	}
	return n
}

func countSubOps(service, method string, payload json.RawMessage) int {
	n := 1
	switch service + "." + method {
	case "biex.insert":
		var a struct {
			Entries ssebiex.Entries `json:"entries"`
		}
		if json.Unmarshal(payload, &a) == nil {
			n = a.Entries.Cells()
		}
	case "doc.getmany":
		var a struct {
			IDs []string `json:"ids"`
		}
		if json.Unmarshal(payload, &a) == nil {
			n = len(a.IDs)
		}
	case "doc.putmany":
		var a struct {
			Records []json.RawMessage `json:"records"`
		}
		if json.Unmarshal(payload, &a) == nil {
			n = len(a.Records)
		}
	case "doc.deletemany":
		var a struct {
			IDs []string `json:"ids"`
		}
		if json.Unmarshal(payload, &a) == nil {
			n = len(a.IDs)
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// coalesceDeployment assembles a Shards-node tier behind rpcConns and an
// engine with coalescing either disabled (the baseline arm) or at the
// production defaults.
func coalesceDeployment(ctx context.Context, cfg CoalesceConfig, disabled bool) (*core.Engine, []*rpcConn, func(), error) {
	var nodes []*cloudnode.Node
	cleanup := func() {
		for _, node := range nodes {
			node.Close()
		}
	}
	wrapped := make([]*rpcConn, 0, cfg.Shards)
	conns := make([]transport.Conn, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		node, err := cloudnode.NewNode(cloudnode.Options{})
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		nodes = append(nodes, node)
		rc := newRPCConn(transport.NewLoopback(node.Mux), cfg.NodeWidth, cfg.RPCOverhead, cfg.PerOp)
		wrapped = append(wrapped, rc)
		conns = append(conns, rc)
	}
	var conn transport.Conn = conns[0]
	if cfg.Shards > 1 {
		conn = ring.NewClient(conns, 0)
	}
	kp, err := keys.NewRandomStore()
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	local := kvstore.New()
	fullCleanup := func() {
		cleanup()
		local.Close()
	}
	registry, err := tactics.Registry()
	if err != nil {
		fullCleanup()
		return nil, nil, nil, err
	}
	engine, err := core.NewEngine(core.Config{
		Keys: kp, Cloud: conn, Local: local, Registry: registry,
		Coalesce: coalesce.Options{Disabled: disabled},
	})
	if err != nil {
		fullCleanup()
		return nil, nil, nil, err
	}
	if err := engine.RegisterSchema(ctx, shardingSchema()); err != nil {
		fullCleanup()
		return nil, nil, nil, err
	}
	return engine, wrapped, fullCleanup, nil
}

// runCoalesceArm measures one arm: the insert phase then the get phase,
// both at cfg.Callers concurrency.
func runCoalesceArm(ctx context.Context, cfg CoalesceConfig, disabled bool) (CoalesceRun, coalesce.Stats, error) {
	engine, wrapped, cleanup, err := coalesceDeployment(ctx, cfg, disabled)
	if err != nil {
		return CoalesceRun{}, coalesce.Stats{}, err
	}
	defer cleanup()

	gen := fhir.NewGenerator(cfg.Seed, 0, 0)
	schema := shardingSchema().Name
	docs := make([]*model.Document, cfg.Inserts)
	for i := range docs {
		docs[i] = gen.Observation()
	}

	var run CoalesceRun
	ids := make([]string, cfg.Inserts)
	workers := func(total int, op func(i int) error) error {
		var wg sync.WaitGroup
		errs := make([]error, cfg.Callers)
		for w := 0; w < cfg.Callers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < total; i += cfg.Callers {
					if err := op(i); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	t0 := time.Now()
	err = workers(cfg.Inserts, func(i int) error {
		id, err := engine.Insert(ctx, schema, docs[i])
		ids[i] = id
		return err
	})
	if err != nil {
		return CoalesceRun{}, coalesce.Stats{}, fmt.Errorf("bench: coalesce insert: %w", err)
	}
	elapsed := time.Since(t0)
	run.InsertOps = cfg.Inserts
	if elapsed > 0 {
		run.InsertThroughput = float64(cfg.Inserts) / elapsed.Seconds()
	}

	hot := cfg.HotIDs
	if hot <= 0 || hot > len(ids) {
		hot = len(ids)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	gets := make([]string, cfg.Gets)
	for i := range gets {
		gets[i] = ids[rng.Intn(hot)]
	}
	t0 = time.Now()
	err = workers(cfg.Gets, func(i int) error {
		_, err := engine.Get(ctx, schema, gets[i])
		return err
	})
	if err != nil {
		return CoalesceRun{}, coalesce.Stats{}, fmt.Errorf("bench: coalesce get: %w", err)
	}
	elapsed = time.Since(t0)
	run.GetOps = cfg.Gets
	if elapsed > 0 {
		run.GetThroughput = float64(cfg.Gets) / elapsed.Seconds()
	}

	engine.Drain()
	stats := engine.CoalesceStats()
	for _, rc := range wrapped {
		run.Frames += rc.frames.Load()
		run.SubOps += rc.subOps.Load()
	}
	return run, stats, nil
}

// measureBiexPacking inserts one 10-keyword document through the BIEX SSE
// client and reports the cross multimap's cell count against the wire
// entries shipping those cells.
func measureBiexPacking() (cells, wire int, err error) {
	key, err := primitives.NewRandomKey()
	if err != nil {
		return 0, 0, err
	}
	client, err := ssebiex.NewClient(key, ssebiex.NewMemState(), ssebiex.Variant2Lev)
	if err != nil {
		return 0, 0, err
	}
	kws := make([]string, 10)
	for i := range kws {
		kws[i] = fmt.Sprintf("field-%d:value-%d", i, i)
	}
	groups, err := client.Insert("obs", "doc-pack", kws, ssebiex.SingleShard)
	if err != nil {
		return 0, 0, err
	}
	for _, g := range groups {
		cells += len(g.Cross)
		wire += len(g.Cross) + len(g.CrossPacked)
		for _, p := range g.CrossPacked {
			cells += p.Count
		}
	}
	return cells, wire, nil
}

// RunCoalesce runs both arms and the packing measurement.
func RunCoalesce(ctx context.Context, cfg CoalesceConfig) (CoalesceResult, error) {
	r := CoalesceResult{Config: cfg}
	var err error
	if r.Baseline, _, err = runCoalesceArm(ctx, cfg, true); err != nil {
		return r, err
	}
	if r.Coalesced, r.Stats, err = runCoalesceArm(ctx, cfg, false); err != nil {
		return r, err
	}
	if r.Baseline.InsertThroughput > 0 {
		r.InsertSpeedup = r.Coalesced.InsertThroughput / r.Baseline.InsertThroughput
	}
	if r.Baseline.GetThroughput > 0 {
		r.GetSpeedup = r.Coalesced.GetThroughput / r.Baseline.GetThroughput
	}
	if r.Coalesced.Frames > 0 {
		r.FrameReduction = float64(r.Baseline.Frames) / float64(r.Coalesced.Frames)
	}
	if r.BiexCrossCells10, r.BiexCrossWire10, err = measureBiexPacking(); err != nil {
		return r, err
	}
	return r, nil
}

// WriteCoalesceJSON stamps provenance and persists the result.
func WriteCoalesceJSON(r CoalesceResult, path string) error {
	r.Meta = CollectMeta()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatCoalesce renders both arms as a table.
func FormatCoalesce(r CoalesceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Coalesce experiment (%d shards, %d callers, %d inserts + %d gets over %d hot ids, frame %v + %v/op, node width %d)\n\n",
		r.Config.Shards, r.Config.Callers, r.Config.Inserts, r.Config.Gets, r.Config.HotIDs,
		r.Config.RPCOverhead, r.Config.PerOp, r.Config.NodeWidth)
	fmt.Fprintf(&b, "%10s %12s %12s %10s %10s\n", "arm", "insert/s", "get/s", "frames", "sub-ops")
	fmt.Fprintf(&b, "%10s %12.1f %12.1f %10d %10d\n", "baseline",
		r.Baseline.InsertThroughput, r.Baseline.GetThroughput, r.Baseline.Frames, r.Baseline.SubOps)
	fmt.Fprintf(&b, "%10s %12.1f %12.1f %10d %10d\n", "coalesced",
		r.Coalesced.InsertThroughput, r.Coalesced.GetThroughput, r.Coalesced.Frames, r.Coalesced.SubOps)
	fmt.Fprintf(&b, "\ninsert speedup %.2fx, get speedup %.2fx, %.1fx fewer frames\n",
		r.InsertSpeedup, r.GetSpeedup, r.FrameReduction)
	fmt.Fprintf(&b, "coalescer: %d enqueued, %d flushes, %d dedup joins, %d gets merged, max queue depth %d\n",
		r.Stats.Enqueued, r.Stats.Flushes, r.Stats.DedupHits, r.Stats.GetsMerged, r.Stats.MaxQueueDepth)
	fmt.Fprintf(&b, "biex 10-keyword doc: %d cross cells in %d wire entries\n",
		r.BiexCrossCells10, r.BiexCrossWire10)
	return b.String()
}
