// Planner experiment: A/B-measures adaptive cost-based tactic selection
// against every static single-tactic assignment on a mixed range workload.
//
// The schema carries two C5 range fields with opposite workload shapes:
// wf is write-heavy (a stream of inserts, occasional range queries), rf is
// read-heavy (a settled corpus, a stream of range queries). The range
// tactic spectrum prices them oppositely — OPE pays an expensive mutable
// encoding per insert but answers ranges with a sorted-index scan, ORE
// inserts cheaply but compare-scans the whole column per query — so any
// static assignment is wrong for one of the two fields. The adaptive arm
// starts both fields on the priors' pick, observes the live workload, and
// lets Replan online re-index each field onto the tactic its own traffic
// mix favors.
//
// Each arm runs two engine generations over the same stores, mirroring a
// production restart: the first generation registers the schema and seeds
// the corpus, the second observes only the probe workload — so the
// planner's per-field rates reflect the live traffic window, not corpus
// construction.
//
// The adaptive arm's re-index runs under live verified traffic: a driver
// issues range queries (checked against the known corpus) and dual-write
// inserts while Replan migrates, and the result records how many queries
// were answered mid-migration and how many came back wrong (which must be
// zero). The measured phase then runs the identical mixed workload on all
// arms; every rf query is verified in every arm.

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cloudnode "datablinder/internal/cloud"
	"datablinder/internal/core"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	"datablinder/internal/transport"
)

// PlannerConfig parameterizes the planner experiment.
type PlannerConfig struct {
	// ReadCorpus is the rf corpus size seeded before measurement.
	ReadCorpus int
	// WriteSeed is the wf corpus size seeded before measurement (so wf
	// range queries have matches).
	WriteSeed int
	// ProbeInserts / ProbeQueries shape the unmeasured probe workload the
	// planner's rates and EWMAs are fed by: wf inserts and rf range
	// queries (each at least planner.MinSamples).
	ProbeInserts int
	ProbeQueries int
	// Inserts / Queries / LiveInserts / WfQueries compose the measured
	// mixed workload: wf inserts, verified rf range queries, rf inserts
	// landing outside the queried value window, and wf range queries.
	Inserts     int
	Queries     int
	LiveInserts int
	WfQueries   int
	// QueryWidth is the rf range queries' value-window width.
	QueryWidth int
	// Callers is the workload concurrency.
	Callers int
	// MigrateThrottle paces the adaptive arm's online re-index batches.
	MigrateThrottle time.Duration
	// Seed fixes the workload interleaving and query windows.
	Seed int64
}

// DefaultPlannerConfig returns a laptop-scale configuration: corpus and
// workload sized so the static arms' mispriced side (OPE's inserts, ORE's
// scans) dominates their wall clock.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		ReadCorpus: 1000, WriteSeed: 64,
		ProbeInserts: 120, ProbeQueries: 40,
		Inserts: 400, Queries: 300, LiveInserts: 40, WfQueries: 20,
		QueryWidth: 16, Callers: 8,
		MigrateThrottle: 2 * time.Millisecond,
		Seed:            1,
	}
}

// PlannerArm is one measured configuration's result.
type PlannerArm struct {
	Name string `json:"name"`
	// PlanWF / PlanRF are the tactics serving each field's range queries
	// during the measured phase.
	PlanWF string `json:"plan_wf"`
	PlanRF string `json:"plan_rf"`
	// WallMs / Throughput cover the measured mixed workload.
	WallMs     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_per_s"`
	// InsertAvgMs / QueryAvgMs break the workload down by kind (wf
	// inserts vs rf range queries).
	InsertAvgMs float64 `json:"insert_avg_ms"`
	QueryAvgMs  float64 `json:"query_avg_ms"`
	// WrongResults counts verified rf queries whose result set differed
	// from the plaintext ground truth. Must be zero.
	WrongResults int `json:"wrong_results"`
}

// PlannerResult carries every arm plus the adaptive arm's migration
// telemetry and the derived speedups.
type PlannerResult struct {
	Arms []PlannerArm `json:"arms"`
	// Migrated lists the fields Replan moved in the adaptive arm.
	Migrated []string `json:"migrated"`
	// MigrationWallMs is how long the adaptive arm's Replan (including
	// its synchronous online re-indexes) took.
	MigrationWallMs float64 `json:"migration_wall_ms"`
	// QueriesDuringMigration / WrongDuringMigration count the verified
	// queries the live driver issued while a re-index was in flight, and
	// how many were wrong (must be zero).
	QueriesDuringMigration int `json:"queries_during_migration"`
	WrongDuringMigration   int `json:"wrong_during_migration"`
	// SpeedupVsWorst / SpeedupVsBest compare adaptive throughput to the
	// static arms.
	SpeedupVsWorst float64       `json:"speedup_vs_worst_static"`
	SpeedupVsBest  float64       `json:"speedup_vs_best_static"`
	Config         PlannerConfig `json:"config"`
	// Meta is stamped by WritePlannerJSON.
	Meta Meta `json:"meta"`
}

// plannerSchema builds the two-field range schema; pin pins both fields
// to one tactic ("" leaves selection to the engine).
func plannerSchema(pin string) *model.Schema {
	ann := "C5, op [I, RG]"
	if pin != "" {
		ann = fmt.Sprintf("%s, tactic [%s]", ann, pin)
	}
	a, err := model.ParseAnnotation(ann)
	if err != nil {
		panic(err)
	}
	return &model.Schema{
		Name: "planbench",
		Fields: []model.Field{
			{Name: "wf", Type: model.TypeFloat, Sensitive: true, Annotation: a},
			{Name: "rf", Type: model.TypeFloat, Sensitive: true, Annotation: a},
		},
	}
}

// plannerEnv is one arm's deployment: a single in-process cloud node and
// the gateway stores both engine generations share.
type plannerEnv struct {
	node  *cloudnode.Node
	local *kvstore.Store
	keys  keys.Provider
}

func newPlannerEnv() (*plannerEnv, error) {
	node, err := cloudnode.NewNode(cloudnode.Options{})
	if err != nil {
		return nil, err
	}
	kp, err := keys.NewRandomStore()
	if err != nil {
		node.Close()
		return nil, err
	}
	return &plannerEnv{node: node, local: kvstore.New(), keys: kp}, nil
}

func (env *plannerEnv) close() {
	env.node.Close()
	env.local.Close()
}

func (env *plannerEnv) engine(cfg PlannerConfig, planner bool) (*core.Engine, error) {
	registry, err := tactics.Registry()
	if err != nil {
		return nil, err
	}
	return core.NewEngine(core.Config{
		Keys:     env.keys,
		Cloud:    transport.NewLoopback(env.node.Mux),
		Local:    env.local,
		Registry: registry,
		Planner:  planner,
		MigrateThrottle: func() time.Duration {
			if planner {
				return cfg.MigrateThrottle
			}
			return 0
		}(),
	})
}

// Value windows. Reader corpus values live at rfBase+i, live inserts land
// above rfLive (outside every query window), wf docs at their own offsets.
const (
	rfBase      = 10_000
	rfLive      = 50_000
	rfTransient = 60_000
	wfBase      = 0
	wfStream    = 30_000
)

func wfDoc(v float64) *model.Document {
	return &model.Document{Fields: map[string]any{"wf": v}}
}

func rfDoc(v float64) *model.Document {
	return &model.Document{Fields: map[string]any{"rf": v}}
}

// plannerCorpus tracks the verified rf corpus: ids by value index.
type plannerCorpus struct {
	ids []string // ids[i] holds the document with rf = rfBase+i
}

// expect returns the sorted ids of corpus docs with value index in
// [lo, hi] (inclusive).
func (c *plannerCorpus) expect(lo, hi int) []string {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(c.ids) {
		hi = len(c.ids) - 1
	}
	var out []string
	for i := lo; i <= hi; i++ {
		out = append(out, c.ids[i])
	}
	sort.Strings(out)
	return out
}

// verifyQuery runs one rf range query over [lo, hi] value indexes and
// reports whether the result matched the ground truth.
func verifyQuery(ctx context.Context, engine *core.Engine, corpus *plannerCorpus, lo, hi int) (bool, error) {
	got, err := engine.SearchIDs(ctx, "planbench",
		core.Between("rf", float64(rfBase+lo), float64(rfBase+hi)))
	if err != nil {
		return false, err
	}
	want := corpus.expect(lo, hi)
	if len(got) != len(want) {
		return false, nil
	}
	for i := range got {
		if got[i] != want[i] {
			return false, nil
		}
	}
	return true, nil
}

// plannerOp is one measured-workload operation.
type plannerOp struct {
	kind int // 0 wf insert, 1 rf verified query, 2 rf live insert, 3 wf query
	idx  int
	lo   int // query window (kinds 1, 3)
}

const (
	opWfInsert = iota
	opRfQuery
	opRfLiveInsert
	opWfQuery
)

// plannerWorkload builds the deterministic interleaved measured workload.
func plannerWorkload(cfg PlannerConfig, rng *rand.Rand) []plannerOp {
	ops := make([]plannerOp, 0, cfg.Inserts+cfg.Queries+cfg.LiveInserts+cfg.WfQueries)
	for i := 0; i < cfg.Inserts; i++ {
		ops = append(ops, plannerOp{kind: opWfInsert, idx: i})
	}
	for i := 0; i < cfg.Queries; i++ {
		ops = append(ops, plannerOp{kind: opRfQuery, idx: i, lo: rng.Intn(cfg.ReadCorpus - cfg.QueryWidth)})
	}
	for i := 0; i < cfg.LiveInserts; i++ {
		ops = append(ops, plannerOp{kind: opRfLiveInsert, idx: i})
	}
	for i := 0; i < cfg.WfQueries; i++ {
		ops = append(ops, plannerOp{kind: opWfQuery, idx: i, lo: rng.Intn(cfg.WriteSeed)})
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// runPlannerArm measures one arm end to end. pin == "" runs the adaptive
// arm: planner engines, a Replan under live verified traffic between the
// probe and the measured phase.
func runPlannerArm(ctx context.Context, cfg PlannerConfig, name, pin string, r *PlannerResult) (PlannerArm, error) {
	arm := PlannerArm{Name: name}
	adaptive := pin == ""

	env, err := newPlannerEnv()
	if err != nil {
		return arm, err
	}
	defer env.close()

	// Generation 1: register the schema and seed the corpus.
	gen1, err := env.engine(cfg, adaptive)
	if err != nil {
		return arm, err
	}
	if err := gen1.RegisterSchema(ctx, plannerSchema(pin)); err != nil {
		gen1.Close()
		return arm, err
	}
	corpus := &plannerCorpus{ids: make([]string, cfg.ReadCorpus)}
	for i := 0; i < cfg.ReadCorpus; i++ {
		id, err := gen1.Insert(ctx, "planbench", rfDoc(float64(rfBase+i)))
		if err != nil {
			gen1.Close()
			return arm, fmt.Errorf("bench: planner corpus: %w", err)
		}
		corpus.ids[i] = id
	}
	for i := 0; i < cfg.WriteSeed; i++ {
		if _, err := gen1.Insert(ctx, "planbench", wfDoc(float64(wfBase+i))); err != nil {
			gen1.Close()
			return arm, err
		}
	}
	gen1.Close()

	// Generation 2: the restarted gateway that observes only live traffic.
	engine, err := env.engine(cfg, adaptive)
	if err != nil {
		return arm, err
	}
	defer engine.Close()
	if err := engine.LoadSchemas(ctx); err != nil {
		return arm, err
	}

	// Probe: feed the cost model the live workload shape (unmeasured,
	// identical in every arm).
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.ProbeInserts; i++ {
		if _, err := engine.Insert(ctx, "planbench", wfDoc(float64(wfStream+i))); err != nil {
			return arm, err
		}
	}
	for i := 0; i < cfg.ProbeQueries; i++ {
		lo := rng.Intn(cfg.ReadCorpus - cfg.QueryWidth)
		ok, err := verifyQuery(ctx, engine, corpus, lo, lo+cfg.QueryWidth-1)
		if err != nil {
			return arm, err
		}
		if !ok {
			arm.WrongResults++
		}
	}

	if adaptive {
		// Replan under live verified traffic: a driver queries and
		// dual-writes while the online re-index runs.
		stop := make(chan struct{})
		var during, wrong, transient int
		var driverErr error
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo := rng.Intn(cfg.ReadCorpus - cfg.QueryWidth)
				mid := len(engine.MigrationsActive()) > 0
				ok, err := verifyQuery(ctx, engine, corpus, lo, lo+cfg.QueryWidth-1)
				if err != nil {
					driverErr = err
					return
				}
				if mid {
					during++
					if !ok {
						wrong++
					}
				} else if !ok {
					wrong++
				}
				if i%4 == 0 { // dual-write inserts through the window
					if _, err := engine.Insert(ctx, "planbench", rfDoc(float64(rfTransient+transient))); err != nil {
						driverErr = err
						return
					}
					transient++
				}
			}
		}()
		t0 := time.Now()
		migrated, err := engine.Replan(ctx)
		r.MigrationWallMs = float64(time.Since(t0).Microseconds()) / 1e3
		close(stop)
		wg.Wait()
		if err != nil {
			return arm, fmt.Errorf("bench: replan: %w", err)
		}
		if driverErr != nil {
			return arm, fmt.Errorf("bench: migration driver: %w", driverErr)
		}
		r.Migrated = migrated
		r.QueriesDuringMigration = during
		r.WrongDuringMigration = wrong
		arm.WrongResults += wrong
	}

	for field, dst := range map[string]*string{"wf": &arm.PlanWF, "rf": &arm.PlanRF} {
		plan, err := engine.Plan("planbench", field)
		if err != nil {
			return arm, err
		}
		*dst = plan.ByOp[model.OpRange]
	}

	// Measured phase: the identical mixed workload in every arm.
	ops := plannerWorkload(cfg, rand.New(rand.NewSource(cfg.Seed+1)))
	var wrongCnt, insertNs, insertCnt, queryNs, queryCnt atomic.Int64
	errs := make([]error, cfg.Callers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += cfg.Callers {
				op := ops[i]
				opStart := time.Now()
				switch op.kind {
				case opWfInsert:
					if _, err := engine.Insert(ctx, "planbench", wfDoc(float64(wfStream+cfg.ProbeInserts+op.idx))); err != nil {
						errs[w] = err
						return
					}
					insertNs.Add(time.Since(opStart).Nanoseconds())
					insertCnt.Add(1)
				case opRfQuery:
					ok, err := verifyQuery(ctx, engine, corpus, op.lo, op.lo+cfg.QueryWidth-1)
					if err != nil {
						errs[w] = err
						return
					}
					if !ok {
						wrongCnt.Add(1)
					}
					queryNs.Add(time.Since(opStart).Nanoseconds())
					queryCnt.Add(1)
				case opRfLiveInsert:
					if _, err := engine.Insert(ctx, "planbench", rfDoc(float64(rfLive+op.idx))); err != nil {
						errs[w] = err
						return
					}
				case opWfQuery:
					if _, err := engine.SearchIDs(ctx, "planbench",
						core.Between("wf", float64(wfBase+op.lo), float64(wfBase+op.lo+cfg.QueryWidth))); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return arm, fmt.Errorf("bench: planner workload: %w", err)
		}
	}
	arm.WrongResults += int(wrongCnt.Load())
	arm.WallMs = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		arm.Throughput = float64(len(ops)) / elapsed.Seconds()
	}
	if n := insertCnt.Load(); n > 0 {
		arm.InsertAvgMs = float64(insertNs.Load()) / float64(n) / 1e6
	}
	if n := queryCnt.Load(); n > 0 {
		arm.QueryAvgMs = float64(queryNs.Load()) / float64(n) / 1e6
	}
	return arm, nil
}

// RunPlanner runs the static arms and the adaptive arm and derives the
// speedups.
func RunPlanner(ctx context.Context, cfg PlannerConfig) (PlannerResult, error) {
	r := PlannerResult{Config: cfg}
	arms := []struct{ name, pin string }{
		{"static-OPE", "OPE"},
		{"static-ORE", "ORE"},
		{"adaptive", ""},
	}
	var adaptive PlannerArm
	var worst, best float64
	for _, a := range arms {
		arm, err := runPlannerArm(ctx, cfg, a.name, a.pin, &r)
		if err != nil {
			return r, err
		}
		r.Arms = append(r.Arms, arm)
		if a.pin == "" {
			adaptive = arm
		} else {
			if worst == 0 || arm.Throughput < worst {
				worst = arm.Throughput
			}
			if arm.Throughput > best {
				best = arm.Throughput
			}
		}
	}
	if worst > 0 {
		r.SpeedupVsWorst = adaptive.Throughput / worst
	}
	if best > 0 {
		r.SpeedupVsBest = adaptive.Throughput / best
	}
	return r, nil
}

// WritePlannerJSON stamps provenance and persists the result.
func WritePlannerJSON(r PlannerResult, path string) error {
	r.Meta = CollectMeta()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatPlanner renders the arms as a table.
func FormatPlanner(r PlannerResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Planner experiment (rf corpus %d, %d inserts + %d verified queries + %d live inserts, %d callers)\n\n",
		r.Config.ReadCorpus, r.Config.Inserts, r.Config.Queries, r.Config.LiveInserts, r.Config.Callers)
	fmt.Fprintf(&b, "%12s %8s %8s %10s %10s %11s %11s %7s\n",
		"arm", "wf", "rf", "wall ms", "ops/s", "insert ms", "query ms", "wrong")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%12s %8s %8s %10.1f %10.1f %11.3f %11.3f %7d\n",
			a.Name, a.PlanWF, a.PlanRF, a.WallMs, a.Throughput, a.InsertAvgMs, a.QueryAvgMs, a.WrongResults)
	}
	fmt.Fprintf(&b, "\nadaptive vs worst static %.2fx, vs best static %.2fx\n",
		r.SpeedupVsWorst, r.SpeedupVsBest)
	fmt.Fprintf(&b, "replan migrated %v in %.1f ms; %d verified queries answered mid-migration, %d wrong\n",
		r.Migrated, r.MigrationWallMs, r.QueriesDuringMigration, r.WrongDuringMigration)
	return b.String()
}
