// Statistics collection for the evaluation harness: per-operation latency
// recording and throughput computation (the Locust role in the paper's
// setup).

package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// OpKind labels the three workload operation families of Figure 5.
type OpKind string

// Operation kinds.
const (
	OpInsert    OpKind = "insert"
	OpSearch    OpKind = "search"
	OpAggregate OpKind = "aggregate"
)

// Recorder accumulates latencies per operation kind. It is safe for
// concurrent use.
type Recorder struct {
	mu   sync.Mutex
	data map[OpKind][]time.Duration
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{data: make(map[OpKind][]time.Duration)}
}

// Record adds one sample.
func (r *Recorder) Record(kind OpKind, d time.Duration) {
	r.mu.Lock()
	r.data[kind] = append(r.data[kind], d)
	r.mu.Unlock()
}

// LatencyStats summarizes a latency distribution the way the paper's
// latency table does: average plus 50th/75th/99th percentiles.
type LatencyStats struct {
	Count int
	Total time.Duration // sum of all samples (drives per-op throughput)
	Avg   time.Duration
	P50   time.Duration
	P75   time.Duration
	P99   time.Duration
}

func computeStats(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	return LatencyStats{
		Count: len(sorted),
		Total: total,
		Avg:   total / time.Duration(len(sorted)),
		P50:   pct(0.50),
		P75:   pct(0.75),
		P99:   pct(0.99),
	}
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario string
	Elapsed  time.Duration
	PerOp    map[OpKind]LatencyStats
	// IndexOps counts secure-index RPCs issued (the paper reports ~350k
	// per experiment at full scale).
	IndexOps int64
	// Requests is the total number of workload requests.
	Requests int
	// Users is the virtual-user concurrency of the run.
	Users int
}

// snapshot freezes the recorder into a Result.
func (r *Recorder) snapshot(scenario string, elapsed time.Duration, indexOps int64, users int) Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := Result{
		Scenario: scenario,
		Elapsed:  elapsed,
		PerOp:    make(map[OpKind]LatencyStats, len(r.data)),
		IndexOps: indexOps,
		Users:    users,
	}
	var all []time.Duration
	for kind, samples := range r.data {
		res.PerOp[kind] = computeStats(samples)
		res.Requests += len(samples)
		all = append(all, samples...)
	}
	res.PerOp["overall"] = computeStats(all)
	return res
}

// Throughput estimates the sustainable requests/second for one operation
// kind: the number of completed operations divided by the wall-clock time
// the virtual-user pool spent inside that operation (time-in-op / users).
// This is how a mixed workload exposes per-operation capacity — dividing
// by total elapsed time would just mirror the workload mix.
func (res Result) Throughput(kind OpKind) float64 {
	s := res.PerOp[kind]
	if s.Total <= 0 {
		return 0
	}
	users := res.Users
	if users <= 0 {
		users = 1
	}
	return float64(s.Count) / (s.Total.Seconds() / float64(users))
}

// Overall returns total requests/second.
func (res Result) Overall() float64 {
	if res.Elapsed <= 0 {
		return 0
	}
	return float64(res.Requests) / res.Elapsed.Seconds()
}

// FormatFigure5 renders the Figure 5 comparison: per-operation and overall
// throughput for the three scenarios, plus the paper's two headline
// deltas (overall loss of tactics vs plain, and of middleware vs
// hard-coded tactics).
func FormatFigure5(a, b, c Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — per-operation and overall throughput (req/s)\n")
	fmt.Fprintf(&sb, "%-22s %12s %12s %12s\n", "operation", "S_A plain", "S_B tactics", "S_C middleware")
	for _, kind := range []OpKind{OpInsert, OpSearch, OpAggregate} {
		fmt.Fprintf(&sb, "%-22s %12.1f %12.1f %12.1f\n",
			string(kind), a.Throughput(kind), b.Throughput(kind), c.Throughput(kind))
	}
	fmt.Fprintf(&sb, "%-22s %12.1f %12.1f %12.1f\n", "overall", a.Overall(), b.Overall(), c.Overall())
	fmt.Fprintf(&sb, "\nheadline deltas (paper: ~44%% and ~1.4%%):\n")
	fmt.Fprintf(&sb, "  tactics vs plain (S_B/S_A):        %5.1f%% overall throughput loss\n", lossPct(a.Overall(), b.Overall()))
	fmt.Fprintf(&sb, "  middleware vs hard-coded (S_C/S_B): %5.1f%% additional overall throughput loss\n", lossPct(b.Overall(), c.Overall()))
	fmt.Fprintf(&sb, "\nsecure index operations: S_B=%d S_C=%d\n", b.IndexOps, c.IndexOps)
	return sb.String()
}

func lossPct(base, got float64) float64 {
	if base <= 0 {
		return 0
	}
	return (1 - got/base) * 100
}

// FormatLatencyTable renders the §5.2 latency table: overall average and
// 50th/75th/99th percentile latency per scenario.
func FormatLatencyTable(results ...Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "§5.2 latency table — overall request latency\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", "scenario", "avg", "p50", "p75", "p99")
	for _, r := range results {
		s := r.PerOp["overall"]
		fmt.Fprintf(&sb, "%-16s %10s %10s %10s %10s\n", r.Scenario,
			round(s.Avg), round(s.P50), round(s.P75), round(s.P99))
	}
	return sb.String()
}

func round(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
