package bench

import (
	"context"
	"testing"
	"time"
)

func testConcurrencyConfig() ConcurrencyConfig {
	return ConcurrencyConfig{
		SeedDocs: 24, Searches: 10, Inserts: 10,
		Clients: 8, ClientOps: 96,
		NetDelay: 10 * time.Millisecond, Seed: 7,
	}
}

// TestConcurrencySpeedups is the acceptance check for the fan-out work:
// parallel search and insert must sustain at least 2x the sequential
// baseline's throughput, and N callers on one socket must beat one caller
// by at least 2x. The 10ms simulated RTT makes round trips dominate, so
// the ratios are governed by overlap, not scheduler noise.
func TestConcurrencySpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	r, err := RunConcurrency(context.Background(), testConcurrencyConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatConcurrency(r))
	if s := r.SearchSpeedup(); s < 2 {
		t.Errorf("multi-leaf search speedup = %.2fx, want >= 2x", s)
	}
	if s := r.InsertSpeedup(); s < 2 {
		t.Errorf("multi-field insert speedup = %.2fx, want >= 2x", s)
	}
	if s := r.PipelineSpeedup(); s < 2 {
		t.Errorf("pipelined client speedup = %.2fx, want >= 2x", s)
	}
}

func TestConcurrencyValidation(t *testing.T) {
	if _, err := RunConcurrency(context.Background(), ConcurrencyConfig{}); err == nil {
		t.Fatal("RunConcurrency accepted a zero config")
	}
	cfg := testConcurrencyConfig()
	cfg.Clients = 1
	if _, err := RunConcurrency(context.Background(), cfg); err == nil {
		t.Fatal("RunConcurrency accepted Clients=1")
	}
}
