// Package bench reproduces the paper's §5.2 performance evaluation: a
// Locust-style load generator driving the three scenarios (S_A plain,
// S_B hard-coded tactics, S_C DataBlinder) with a balanced
// read/write/aggregate workload over synthetic FHIR observations, and the
// statistics needed to regenerate Figure 5 and the latency table.
package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Config parameterizes one scenario run.
type Config struct {
	// Scenario is "A", "B" or "C".
	Scenario string
	// Users is the number of concurrent virtual users (paper: 1000).
	Users int
	// Requests is the total request count (paper: ~151k). One third are
	// inserts, one third equality searches, one third aggregates.
	Requests int
	// Seed fixes the synthetic population and workload.
	Seed int64
	// NetDelay simulates the gateway->cloud network round-trip time by
	// sleeping on every RPC. The paper's deployment spanned a private
	// OpenStack datacenter and a public cloud provider; the loopback
	// transport alone would make the plaintext baseline unrealistically
	// cheap relative to the tactic scenarios.
	NetDelay time.Duration

	// Conn is the shared cloud connection.
	Conn transport.Conn
	// Keys provides key material (S_B and S_C).
	Keys keys.Provider
	// Local is the gateway state store (S_B and S_C).
	Local *kvstore.Store
}

// DefaultConfig returns a laptop-scale configuration (the full paper scale
// is Requests=151000, Users=1000).
func DefaultConfig() Config {
	return Config{Users: 64, Requests: 4500, Seed: 1}
}

// Run executes one scenario and reports its statistics.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Users <= 0 || cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("bench: Users and Requests must be positive")
	}
	var indexOps int64
	var conn transport.Conn = cfg.Conn
	if cfg.NetDelay > 0 {
		conn = delayConn{Conn: conn, delay: cfg.NetDelay}
	}
	conn = countingConn{Conn: conn, indexOps: &indexOps}
	a, err := NewApp(ctx, cfg.Scenario, conn, cfg.Keys, cfg.Local)
	if err != nil {
		return Result{}, err
	}

	// Pre-generate the document stream (one third of all requests).
	nDocs := cfg.Requests / 3
	if nDocs == 0 {
		nDocs = 1
	}
	gen := fhir.NewGenerator(cfg.Seed, 0, 0)
	docs := make([]*model.Document, nDocs)
	for i := range docs {
		docs[i] = gen.Observation()
	}
	patients := gen.Patients()

	rec := NewRecorder()
	var (
		nextReq int64 = -1
		nextDoc int64 = -1
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
	}
	start := time.Now()
	for u := 0; u < cfg.Users; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&nextReq, 1)
				if i >= int64(cfg.Requests) || ctx.Err() != nil {
					return
				}
				var err error
				t0 := time.Now()
				switch i % 3 {
				case 0: // write
					d := atomic.AddInt64(&nextDoc, 1)
					if d >= int64(len(docs)) {
						// Document stream exhausted (rounding); count as a
						// search instead.
						err = doSearch(ctx, a, patients, i)
						rec.Record(OpSearch, time.Since(t0))
					} else {
						err = a.Insert(ctx, docs[d])
						rec.Record(OpInsert, time.Since(t0))
					}
				case 1: // read (equality search protocols)
					err = doSearch(ctx, a, patients, i)
					rec.Record(OpSearch, time.Since(t0))
				default: // aggregate (search + homomorphic average)
					_, err = a.AverageWhere(ctx, "code", fhir.Codes[int(i)%len(fhir.Codes)])
					rec.Record(OpAggregate, time.Since(t0))
				}
				if err != nil {
					fail(fmt.Errorf("bench: scenario %s request %d: %w", cfg.Scenario, i, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return Result{}, runErr
	}
	return rec.snapshot("S_"+cfg.Scenario, elapsed, indexOps, cfg.Users), nil
}

// doSearch issues one equality search, rotating over the three searchable
// dimensions of the benchmark schema.
func doSearch(ctx context.Context, a App, patients []string, i int64) error {
	var err error
	switch i % 9 {
	case 1, 4:
		_, err = a.SearchEq(ctx, "status", fhir.Statuses[int(i)%len(fhir.Statuses)])
	case 7:
		_, err = a.SearchEq(ctx, "subject", patients[int(i)%len(patients)])
	default:
		_, err = a.SearchEq(ctx, "code", fhir.Codes[int(i)%len(fhir.Codes)])
	}
	return err
}

// RunAll executes S_A, S_B and S_C with identical workloads against fresh
// state, returning the three results in order. newConn must produce a
// connection to a FRESH cloud node per scenario so index state does not
// leak across scenarios.
func RunAll(ctx context.Context, base Config, newEnv func() (transport.Conn, keys.Provider, *kvstore.Store, func(), error)) (a, b, c Result, err error) {
	run := func(scenario string) (Result, error) {
		conn, kp, local, cleanup, err := newEnv()
		if err != nil {
			return Result{}, err
		}
		defer cleanup()
		cfg := base
		cfg.Scenario = scenario
		cfg.Conn = conn
		cfg.Keys = kp
		cfg.Local = local
		return Run(ctx, cfg)
	}
	if a, err = run("A"); err != nil {
		return
	}
	if b, err = run("B"); err != nil {
		return
	}
	c, err = run("C")
	return
}
