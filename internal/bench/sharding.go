// Sharding experiment: measures how gateway throughput scales as the
// cloud tier grows from 1 to N shards behind the consistent-hash ring.
//
// Node capacity model. The interesting quantity is how much of a sharded
// tier's aggregate service capacity the ring router and scatter-gather
// machinery can keep busy — but in-process loopback nodes share the bench
// host's CPUs, so raw loopback deployments would measure the host, not
// the tier. Each node is therefore wrapped in a nodeConn that admits at
// most NodeWidth concurrent RPCs and charges ServiceTime of (sleeping,
// non-CPU) latency per call: a fixed per-node service rate, which is the
// regime a real tier of independent machines runs in. Doubling the shard
// count doubles the tier's RPC capacity; the measured curves show how
// much of that the gateway actually converts into throughput, and where
// it bends (range queries broadcast to every shard, so they scale with
// the slowest node rather than the tier; point ops and keyword-routed
// boolean conjunctions scale with the shard count).
//
// The workload is the standard mix: document inserts (every index
// written), DET/Mitra equality, BIEX boolean, and OPE range queries,
// weighted read-mostly with high-cardinality lookups dominating, the
// shape of the paper's §5.2 workload. Paillier is deliberately absent — its encrypt cost is
// pure gateway CPU, identical at every shard count, and would only
// compress the measured ratios; sharded aggregate correctness is the
// e2e test's job.

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"datablinder/internal/cloud"
	"datablinder/internal/cloud/ring"
	"datablinder/internal/coalesce"
	"datablinder/internal/conc"
	"datablinder/internal/core"
	"datablinder/internal/fhir"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	biextactic "datablinder/internal/tactics/biex"
	"datablinder/internal/transport"
)

// ShardingConfig parameterizes the sharding experiment.
type ShardingConfig struct {
	// ShardCounts lists the tier sizes to measure, in order.
	ShardCounts []int
	// Inserts documents are written per deployment (the insert phase).
	Inserts int
	// EqQueries / BoolQueries / RangeQueries size the query phase's mix.
	EqQueries    int
	BoolQueries  int
	RangeQueries int
	// Users is the number of concurrent gateway workers driving the load.
	Users int
	// NodeWidth is how many RPCs one node serves concurrently.
	NodeWidth int
	// ServiceTime is the simulated per-RPC service time at a node.
	ServiceTime time.Duration
	// VirtualNodes is the ring's per-shard virtual node count (0 = default).
	VirtualNodes int
	// Seed fixes the synthetic population and the query interleaving.
	Seed int64
}

// DefaultShardingConfig returns a laptop-scale configuration: enough load
// to saturate the modeled single node, small enough to finish in seconds.
func DefaultShardingConfig() ShardingConfig {
	return ShardingConfig{
		ShardCounts: []int{1, 2, 4, 8},
		Inserts:     800,
		EqQueries:   1600, BoolQueries: 160, RangeQueries: 80,
		Users: 256, NodeWidth: 8, ServiceTime: 8 * time.Millisecond,
		Seed: 1,
	}
}

// ShardingRun is one deployment's measurement.
type ShardingRun struct {
	Shards              int     `json:"shards"`
	InsertOps           int     `json:"insert_ops"`
	InsertThroughput    float64 `json:"insert_throughput_per_s"`
	QueryOps            int     `json:"query_ops"`
	QueryThroughput     float64 `json:"query_throughput_per_s"`
	AggregateThroughput float64 `json:"aggregate_throughput_per_s"`
	// DocsPerShard / IndexKeysPerShard verify the ring spread data evenly,
	// gathered through each node's admin stats RPC.
	DocsPerShard      []int `json:"docs_per_shard"`
	IndexKeysPerShard []int `json:"index_keys_per_shard"`
	// BiexKeysPerShard isolates the boolean index's spread (the emm + zmf
	// kvstore namespaces — only BIEX writes them). Before keyword
	// partitioning this column showed the ~12x pileup on the home shard.
	BiexKeysPerShard []int `json:"biex_keys_per_shard"`
	// RPCsPerShard counts the RPCs each node served across both phases —
	// the load-balance view (a shard can hold its fair share of keys but
	// still serve a disproportionate share of traffic, e.g. the BIEX home
	// shard).
	RPCsPerShard []int `json:"rpcs_per_shard"`
}

// ShardingResult carries the full scaling curve.
type ShardingResult struct {
	Runs []ShardingRun `json:"runs"`
	// Speedup4v1 / Speedup8v1 are aggregate throughput at 4 and 8 shards
	// over 1 shard (0 when either size was not measured).
	Speedup4v1 float64        `json:"speedup_4v1"`
	Speedup8v1 float64        `json:"speedup_8v1,omitempty"`
	Config     ShardingConfig `json:"config"`
	// Meta is stamped by WriteShardingJSON.
	Meta Meta `json:"meta"`
}

// nodeConn models a cloud node with a fixed service rate: at most width
// in-flight RPCs, each charged service of latency per operation — a batch
// RPC carrying k sub-operations costs k quanta, because a real node's
// index work scales with operations, not with how they were framed.
// (Charging per RPC would bill a single node one quantum for a 3-op batch
// but a sharded tier three, penalizing exactly the deployments that split
// batches per shard.) The sleep happens while holding a slot, so a
// saturated node queues callers exactly like a busy remote process would,
// without consuming bench-host CPU.
type nodeConn struct {
	transport.Conn
	slots   chan struct{}
	service time.Duration
	calls   atomic.Int64
}

func newNodeConn(conn transport.Conn, width int, service time.Duration) *nodeConn {
	if width < 1 {
		width = 1
	}
	return &nodeConn{Conn: conn, slots: make(chan struct{}, width), service: service}
}

func (c *nodeConn) Call(ctx context.Context, service, method string, args, reply any) error {
	c.calls.Add(1)
	select {
	case c.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-c.slots }()
	if c.service > 0 {
		cost := c.service
		if service == transport.BatchService {
			if v := reflect.ValueOf(args); v.Kind() == reflect.Slice && v.Len() > 1 {
				cost = time.Duration(v.Len()) * c.service
			}
		}
		// BIEX insert batches get the same per-operation accounting: one
		// RPC carries a whole per-shard group of index cells, and a real
		// node's multimap work scales with the cell count, not the frame
		// count. Charging per frame would bill a single node one quantum
		// for a 15-cell document but a sharded tier one per shard — again
		// penalizing exactly the deployments that split batches.
		if service == biextactic.Service && method == "insert" {
			if a, ok := args.(biextactic.InsertArgs); ok {
				n := a.Entries.Cells()
				if n > 1 {
					cost = time.Duration(n) * c.service
				}
			}
		}
		t := time.NewTimer(cost)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return c.Conn.Call(ctx, service, method, args, reply)
}

// shardingSchema covers every query class the scaling run measures:
// DET + BIEX equality/boolean on status, code, and issued, Mitra + BIEX
// on subject and performer, OPE range on effective. Field names match the
// fhir generator so the synthetic population is reusable. The boolean
// span deliberately includes the high-cardinality fields (issued near
// unique, subject ~200 patients, performer ~25 practitioners): clinical
// boolean queries combine patient or practitioner with status/code, and
// those labels are what give the keyword-partitioned BIEX index a
// population that actually exercises the ring's spread — status and code
// alone are 13 enum keywords, too few to balance eight shards.
func shardingSchema() *model.Schema {
	must := func(s string) model.Annotation {
		a, err := model.ParseAnnotation(s)
		if err != nil {
			panic(err)
		}
		return a
	}
	return &model.Schema{
		Name: "observation",
		Fields: []model.Field{
			{Name: "identifier", Type: model.TypeString},
			{Name: "status", Type: model.TypeString, Sensitive: true, Annotation: must("C5, op [I, EQ, BL], tactic [DET, BIEX-2Lev]")},
			{Name: "code", Type: model.TypeString, Sensitive: true, Annotation: must("C5, op [I, EQ, BL], tactic [DET, BIEX-2Lev]")},
			{Name: "subject", Type: model.TypeString, Sensitive: true, Annotation: must("C3, op [I, EQ, BL], tactic [Mitra, BIEX-2Lev]")},
			{Name: "effective", Type: model.TypeInt, Sensitive: true, Annotation: must("C5, op [I, RG], tactic [OPE]")},
			{Name: "issued", Type: model.TypeInt, Sensitive: true, Annotation: must("C4, op [I, EQ, BL], tactic [DET, BIEX-2Lev]")},
			{Name: "performer", Type: model.TypeString, Sensitive: true, Annotation: must("C3, op [I, EQ, BL], tactic [Mitra, BIEX-2Lev]")},
			{Name: "value", Type: model.TypeFloat},
		},
	}
}

// shardingDeployment assembles an n-shard in-process tier: n independent
// nodes, each behind a capacity-modeling nodeConn, fronted by the same
// ring client the production gateway uses (or directly for n == 1, the
// unsharded fast path). The raw loopback connections are returned too so
// the balance check can read admin stats without consuming capacity slots.
func shardingDeployment(ctx context.Context, cfg ShardingConfig, n int) (*core.Engine, []transport.Conn, []*nodeConn, func(), error) {
	var nodes []*cloud.Node
	cleanup := func() {
		for _, node := range nodes {
			node.Close()
		}
	}
	raw := make([]transport.Conn, 0, n)
	wrapped := make([]*nodeConn, 0, n)
	conns := make([]transport.Conn, 0, n)
	for i := 0; i < n; i++ {
		node, err := cloud.NewNode(cloud.Options{})
		if err != nil {
			cleanup()
			return nil, nil, nil, nil, err
		}
		nodes = append(nodes, node)
		lb := transport.NewLoopback(node.Mux)
		raw = append(raw, lb)
		nc := newNodeConn(lb, cfg.NodeWidth, cfg.ServiceTime)
		wrapped = append(wrapped, nc)
		conns = append(conns, nc)
	}
	var conn transport.Conn = conns[0]
	if n > 1 {
		conn = ring.NewClient(conns, cfg.VirtualNodes)
	}
	kp, err := keys.NewRandomStore()
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, err
	}
	local := kvstore.New()
	fullCleanup := func() {
		cleanup()
		local.Close()
	}
	registry, err := tactics.Registry()
	if err != nil {
		fullCleanup()
		return nil, nil, nil, nil, err
	}
	// Coalescing stays off here: nodeConn's capacity model charges per
	// sub-operation, so merged frames would not change the modeled cost,
	// and keeping the write path identical to earlier runs keeps the
	// scaling numbers comparable across revisions.
	engine, err := core.NewEngine(core.Config{
		Keys: kp, Cloud: conn, Local: local, Registry: registry,
		Coalesce: coalesce.Options{Disabled: true},
	})
	if err != nil {
		fullCleanup()
		return nil, nil, nil, nil, err
	}
	if err := engine.RegisterSchema(ctx, shardingSchema()); err != nil {
		fullCleanup()
		return nil, nil, nil, nil, err
	}
	return engine, raw, wrapped, fullCleanup, nil
}

// shardingQueries builds the query phase's mix — equality over four
// fields, And/Or boolean pairs, and effective-time range windows — then
// shuffles it deterministically so every class is in flight together.
// Equality is weighted patient-centric (two thirds subject/issued, one
// third status/code), the shape of the paper's §5.2 read-mostly workload:
// high-cardinality lookups dominate, low-cardinality enum scans are the
// minority. That weighting is also what makes the mix honest about
// sharding — enum equality concentrates on the few shards owning those
// posting lists, and drowning the mix in it would just measure that
// hotspot instead of the tier.
func shardingQueries(cfg ShardingConfig, docs []*model.Document, patients []string) []core.Predicate {
	var qs []core.Predicate
	for i := 0; i < cfg.EqQueries; i++ {
		switch i % 6 {
		case 0, 1:
			qs = append(qs, core.Eq{Field: "subject", Value: patients[i%len(patients)]})
		case 2, 3:
			qs = append(qs, core.Eq{Field: "issued", Value: docs[i%len(docs)].Fields["issued"]})
		case 4:
			qs = append(qs, core.Eq{Field: "status", Value: fhir.Statuses[i%len(fhir.Statuses)]})
		default:
			qs = append(qs, core.Eq{Field: "code", Value: fhir.Codes[i%len(fhir.Codes)]})
		}
	}
	for i := 0; i < cfg.BoolQueries; i++ {
		status := core.Eq{Field: "status", Value: fhir.Statuses[i%len(fhir.Statuses)]}
		code := core.Eq{Field: "code", Value: fhir.Codes[i%len(fhir.Codes)]}
		// Half the boolean load is patient/practitioner-anchored — the
		// clinical shape ("patient X's final observations") — whose
		// high-cardinality anchors route conjunctions across the whole
		// ring; the other half stays on the enum pairs.
		switch i % 4 {
		case 0:
			qs = append(qs, core.And{Preds: []core.Predicate{status, code}})
		case 1:
			qs = append(qs, core.Or{Preds: []core.Predicate{status, code}})
		case 2:
			subject := core.Eq{Field: "subject", Value: patients[i%len(patients)]}
			qs = append(qs, core.And{Preds: []core.Predicate{subject, status}})
		default:
			performer := core.Eq{Field: "performer", Value: docs[i%len(docs)].Fields["performer"]}
			qs = append(qs, core.And{Preds: []core.Predicate{performer, code}})
		}
	}
	if cfg.RangeQueries > 0 {
		effs := make([]int64, 0, len(docs))
		for _, d := range docs {
			if v, ok := d.Fields["effective"].(int64); ok {
				effs = append(effs, v)
			}
		}
		sort.Slice(effs, func(i, j int) bool { return effs[i] < effs[j] })
		window := len(effs) / 8
		if window < 1 {
			window = 1
		}
		for i := 0; i < cfg.RangeQueries; i++ {
			lo := (i * 13) % (len(effs) - window)
			qs = append(qs, core.Between("effective", effs[lo], effs[lo+window]))
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

// runShardingDeployment measures one tier size: a timed concurrent insert
// phase, a timed concurrent mixed-query phase, then a balance snapshot.
func runShardingDeployment(ctx context.Context, cfg ShardingConfig, n int) (ShardingRun, error) {
	engine, raw, wrapped, cleanup, err := shardingDeployment(ctx, cfg, n)
	if err != nil {
		return ShardingRun{}, err
	}
	defer cleanup()

	// The generator is not concurrency-safe: materialize the population
	// up front, outside the timed region.
	gen := fhir.NewGenerator(cfg.Seed, 0, 0)
	docs := make([]*model.Document, cfg.Inserts)
	for i := range docs {
		docs[i] = gen.Observation()
	}
	schema := shardingSchema().Name

	t0 := time.Now()
	err = conc.ForEach(ctx, len(docs), cfg.Users, func(gctx context.Context, i int) error {
		_, err := engine.Insert(gctx, schema, docs[i])
		return err
	})
	if err != nil {
		return ShardingRun{}, fmt.Errorf("bench: %d-shard insert phase: %w", n, err)
	}
	insertElapsed := time.Since(t0)

	queries := shardingQueries(cfg, docs, gen.Patients())
	t0 = time.Now()
	err = conc.ForEach(ctx, len(queries), cfg.Users, func(gctx context.Context, i int) error {
		_, err := engine.SearchIDs(gctx, schema, queries[i])
		return err
	})
	if err != nil {
		return ShardingRun{}, fmt.Errorf("bench: %d-shard query phase: %w", n, err)
	}
	queryElapsed := time.Since(t0)

	run := ShardingRun{Shards: n, InsertOps: len(docs), QueryOps: len(queries)}
	if insertElapsed > 0 {
		run.InsertThroughput = float64(run.InsertOps) / insertElapsed.Seconds()
	}
	if queryElapsed > 0 {
		run.QueryThroughput = float64(run.QueryOps) / queryElapsed.Seconds()
	}
	if total := insertElapsed + queryElapsed; total > 0 {
		run.AggregateThroughput = float64(run.InsertOps+run.QueryOps) / total.Seconds()
	}
	for _, rc := range raw {
		var st cloud.StatsReply
		if err := rc.Call(ctx, cloud.AdminService, "stats", nil, &st); err != nil {
			return ShardingRun{}, fmt.Errorf("bench: %d-shard stats: %w", n, err)
		}
		keyTotal := 0
		for _, ns := range st.Namespaces {
			keyTotal += ns.Keys
		}
		run.DocsPerShard = append(run.DocsPerShard, st.Collections[schema])
		run.IndexKeysPerShard = append(run.IndexKeysPerShard, keyTotal)
		run.BiexKeysPerShard = append(run.BiexKeysPerShard,
			st.Namespaces["emm"].Keys+st.Namespaces["zmf"].Keys)
	}
	for _, nc := range wrapped {
		run.RPCsPerShard = append(run.RPCsPerShard, int(nc.calls.Load()))
	}
	return run, nil
}

// RunSharding measures every configured tier size and derives the 4-vs-1
// aggregate speedup.
func RunSharding(ctx context.Context, cfg ShardingConfig) (ShardingResult, error) {
	if len(cfg.ShardCounts) == 0 || cfg.Inserts <= 0 || cfg.Users <= 0 ||
		cfg.NodeWidth <= 0 || cfg.EqQueries+cfg.BoolQueries+cfg.RangeQueries <= 0 {
		return ShardingResult{}, fmt.Errorf("bench: sharding config must be positive")
	}
	r := ShardingResult{Config: cfg}
	for _, n := range cfg.ShardCounts {
		if n < 1 {
			return ShardingResult{}, fmt.Errorf("bench: shard count must be >= 1 (got %d)", n)
		}
		fmt.Fprintf(os.Stderr, "  %d shard(s)...\n", n)
		run, err := runShardingDeployment(ctx, cfg, n)
		if err != nil {
			return ShardingResult{}, err
		}
		r.Runs = append(r.Runs, run)
	}
	var at1, at4, at8 float64
	for _, run := range r.Runs {
		switch run.Shards {
		case 1:
			at1 = run.AggregateThroughput
		case 4:
			at4 = run.AggregateThroughput
		case 8:
			at8 = run.AggregateThroughput
		}
	}
	if at1 > 0 && at4 > 0 {
		r.Speedup4v1 = at4 / at1
	}
	if at1 > 0 && at8 > 0 {
		r.Speedup8v1 = at8 / at1
	}
	return r, nil
}

// WriteShardingJSON writes the result to path as indented JSON, stamped
// with build/machine provenance.
func WriteShardingJSON(r ShardingResult, path string) error {
	r.Meta = CollectMeta()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatSharding renders the scaling curve as a table.
func FormatSharding(r ShardingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharding experiment (%d inserts + %d queries, %d users, node width %d, service time %v)\n\n",
		r.Config.Inserts, r.Config.EqQueries+r.Config.BoolQueries+r.Config.RangeQueries,
		r.Config.Users, r.Config.NodeWidth, r.Config.ServiceTime)
	fmt.Fprintf(&b, "%6s %12s %12s %12s %10s %10s   %s\n",
		"shards", "insert/s", "query/s", "aggregate/s", "speedup", "biex-bal", "rpcs/shard")
	var base float64
	for _, run := range r.Runs {
		if run.Shards == 1 {
			base = run.AggregateThroughput
		}
	}
	for _, run := range r.Runs {
		su := "-"
		if base > 0 {
			su = fmt.Sprintf("%.2fx", run.AggregateThroughput/base)
		}
		bal := "-"
		if lo, hi := minMax(run.BiexKeysPerShard); lo > 0 {
			bal = fmt.Sprintf("%.2fx", float64(hi)/float64(lo))
		}
		fmt.Fprintf(&b, "%6d %12.1f %12.1f %12.1f %10s %10s   %v\n",
			run.Shards, run.InsertThroughput, run.QueryThroughput,
			run.AggregateThroughput, su, bal, run.RPCsPerShard)
	}
	if r.Speedup4v1 > 0 {
		fmt.Fprintf(&b, "\naggregate insert+query throughput at 4 shards: %.2fx the single-node tier\n", r.Speedup4v1)
	}
	if r.Speedup8v1 > 0 {
		fmt.Fprintf(&b, "aggregate insert+query throughput at 8 shards: %.2fx the single-node tier\n", r.Speedup8v1)
	}
	return b.String()
}

// minMax returns the smallest and largest element (0, 0 for empty input).
func minMax(xs []int) (lo, hi int) {
	for i, x := range xs {
		if i == 0 || x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
