package conc

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupCollectsFirstError(t *testing.T) {
	g, ctx := WithContext(context.Background())
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return nil // cancelled by the failing sibling
		case <-time.After(5 * time.Second):
			return errors.New("sibling was not cancelled")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}

func TestGroupNoError(t *testing.T) {
	g, _ := WithContext(context.Background())
	var n int64
	for i := 0; i < 32; i++ {
		g.Go(func() error {
			atomic.AddInt64(&n, 1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if n != 32 {
		t.Fatalf("ran %d tasks, want 32", n)
	}
}

func TestGroupLimit(t *testing.T) {
	g, _ := WithContext(context.Background())
	g.SetLimit(3)
	var cur, peak int64
	for i := 0; i < 24; i++ {
		g.Go(func() error {
			c := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeds limit 3", peak)
	}
}

func TestForEach(t *testing.T) {
	var n int64
	err := ForEach(context.Background(), 100, 8, func(_ context.Context, i int) error {
		atomic.AddInt64(&n, int64(i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4950 {
		t.Fatalf("sum = %d, want 4950", n)
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	err := ForEach(context.Background(), 1000, 2, func(ctx context.Context, i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ForEach = %v, want boom", err)
	}
	if atomic.LoadInt64(&ran) == 1000 {
		t.Log("all tasks ran despite early error (timing-dependent, not fatal)")
	}
}
