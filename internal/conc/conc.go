// Package conc provides the small structured-concurrency primitive the
// middleware core fans out with: an error group in the style of
// golang.org/x/sync/errgroup (not imported — the repository is
// standard-library-only), with first-error context cancellation and an
// optional concurrency limit.
package conc

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Group runs a set of goroutines and collects the first error. Associated
// with a context via WithContext, the first failure cancels the context so
// sibling tasks (RPCs in flight, decrypt workers) stop early.
type Group struct {
	cancel context.CancelCauseFunc

	wg  sync.WaitGroup
	sem chan struct{}

	once sync.Once
	err  error
}

// WithContext returns a Group and a derived context that is cancelled the
// first time a task fails or Wait returns.
func WithContext(ctx context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancelCause(ctx)
	return &Group{cancel: cancel}, ctx
}

// SetLimit bounds the number of concurrently running tasks. It must be
// called before the first Go. n <= 0 means unbounded.
func (g *Group) SetLimit(n int) {
	if n > 0 {
		g.sem = make(chan struct{}, n)
	}
}

// Go runs f on a new goroutine, blocking first if the concurrency limit is
// reached. The first non-nil error wins and cancels the group context.
func (g *Group) Go(f func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			defer func() { <-g.sem }()
		}
		if err := f(); err != nil {
			g.once.Do(func() {
				g.err = err
				if g.cancel != nil {
					g.cancel(err)
				}
			})
		}
	}()
}

// Wait blocks until every task returned, then reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	if g.cancel != nil {
		g.cancel(nil)
	}
	return g.err
}

// NumWorkers returns the default worker-pool width for CPU-bound stages
// (AEAD opens, JSON decodes): the machine's logical CPU count, minimum 1.
func NumWorkers() int {
	if n := runtime.NumCPU(); n > 1 {
		return n
	}
	return 1
}

// ForEach runs f(i) for every i in [0, n) with at most limit concurrent
// (unbounded if limit <= 0), cancelling the rest on first error.
func ForEach(ctx context.Context, n, limit int, f func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return f(ctx, 0)
	}
	g, gctx := WithContext(ctx)
	g.SetLimit(limit)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() error {
			if err := gctx.Err(); err != nil {
				return fmt.Errorf("conc: cancelled before task %d: %w", i, context.Cause(gctx))
			}
			return f(gctx, i)
		})
	}
	return g.Wait()
}
