// Package cloud assembles DataBlinder's untrusted-zone deployment (paper
// Fig. 3/4): the document store holding whole-document ciphertexts, the
// key-value store backing every tactic's secure indexes, and the RPC
// services — the cloud halves of all tactics plus the document service.
//
// Nothing in this process ever sees a decryption key: it stores opaque
// blobs and executes token-driven index protocols.
package cloud

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"datablinder/internal/store/docstore"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/store/wal"
	"datablinder/internal/tactics"
	"datablinder/internal/transport"
)

// DocService is the RPC service name of the encrypted document store.
const DocService = "doc"

// Document service payloads.
type (
	// DocPutArgs stores a document blob.
	DocPutArgs struct {
		Collection string `json:"collection"`
		ID         string `json:"id"`
		Blob       []byte `json:"blob"`
		// IfAbsent makes the call fail when the id already exists
		// (insert semantics); otherwise it overwrites (update semantics).
		IfAbsent bool `json:"if_absent,omitempty"`
	}
	// DocGetArgs fetches one blob.
	DocGetArgs struct {
		Collection string `json:"collection"`
		ID         string `json:"id"`
	}
	// DocGetReply is one blob.
	DocGetReply struct {
		Blob []byte `json:"blob"`
	}
	// DocGetManyArgs fetches several blobs.
	DocGetManyArgs struct {
		Collection string   `json:"collection"`
		IDs        []string `json:"ids"`
	}
	// DocGetManyReply preserves request order, skipping missing ids.
	DocGetManyReply struct {
		Records []docstore.Record `json:"records"`
	}
	// DocDeleteArgs removes one document.
	DocDeleteArgs struct {
		Collection string `json:"collection"`
		ID         string `json:"id"`
	}
	// DocPutManyArgs stores several blobs of one collection in one round
	// trip (bulk loads, multi-document writers).
	DocPutManyArgs struct {
		Collection string            `json:"collection"`
		Records    []docstore.Record `json:"records"`
		// IfAbsent applies insert semantics to every record; the call
		// fails on the first pre-existing id (earlier records stay).
		IfAbsent bool `json:"if_absent,omitempty"`
	}
	// DocDeleteManyArgs removes several documents in one round trip,
	// skipping missing ids.
	DocDeleteManyArgs struct {
		Collection string   `json:"collection"`
		IDs        []string `json:"ids"`
	}
	// DocDeleteManyReply reports how many ids were actually removed.
	DocDeleteManyReply struct {
		Deleted int `json:"deleted"`
	}
	// DocScanArgs pages through a collection in id order.
	DocScanArgs struct {
		Collection string `json:"collection"`
		After      string `json:"after"`
		Limit      int    `json:"limit"`
	}
	// DocScanReply is one page.
	DocScanReply struct {
		Records []docstore.Record `json:"records"`
	}
	// DocCountArgs counts a collection.
	DocCountArgs struct {
		Collection string `json:"collection"`
	}
	// DocCountReply is the collection size.
	DocCountReply struct {
		Count int `json:"count"`
	}
)

// AdminService is the RPC service name of the node-introspection surface.
const AdminService = "admin"

// StatsReply reports one node's storage footprint: per-namespace index
// statistics and per-collection document counts. The sharding benchmark
// gathers it from every shard to verify consistent-hash routing spreads
// each index family evenly; operators can hit it next to -pprof.
type StatsReply struct {
	Namespaces  map[string]kvstore.NamespaceStats `json:"namespaces"`
	Collections map[string]int                    `json:"collections"`
}

// Options configures a cloud node.
type Options struct {
	// KVPath enables WAL persistence for the index store (a directory of
	// log segments; a v1 text AOF at this path or at KVPath+".aof" is
	// migrated on first open).
	KVPath string
	// DocDir enables WAL persistence for the document store.
	DocDir string
	// FsyncPolicy selects log durability for both stores: "always",
	// "interval" (default), or "never".
	FsyncPolicy string
}

// Node is one cloud deployment: stores plus a ready-to-serve mux.
type Node struct {
	KV   *kvstore.Store
	Docs *docstore.Store
	Mux  *transport.Mux
}

// NewNode builds a cloud node with all tactic cloud halves registered.
func NewNode(opts Options) (*Node, error) {
	fsync, err := wal.ParsePolicy(opts.FsyncPolicy)
	if err != nil {
		return nil, fmt.Errorf("cloud: %w", err)
	}
	var kv *kvstore.Store
	if opts.KVPath != "" {
		kv, err = kvstore.Open(opts.KVPath, kvstore.Options{
			Fsync: fsync,
			// Pre-WAL cloud layouts kept the text AOF beside the doc dir.
			LegacyAOF: opts.KVPath + ".aof",
		})
		if err != nil {
			return nil, fmt.Errorf("cloud: opening kv store: %w", err)
		}
	} else {
		kv = kvstore.New()
	}
	var docs *docstore.Store
	if opts.DocDir != "" {
		docs, err = docstore.Open(opts.DocDir, docstore.Options{Fsync: fsync})
		if err != nil {
			kv.Close()
			return nil, fmt.Errorf("cloud: opening doc store: %w", err)
		}
	} else {
		docs = docstore.New()
	}

	mux := transport.NewMux()
	tactics.RegisterCloud(mux, kv)
	registerDocService(mux, docs)
	registerAdminService(mux, kv, docs)
	return &Node{KV: kv, Docs: docs, Mux: mux}, nil
}

func registerAdminService(mux *transport.Mux, kv *kvstore.Store, docs *docstore.Store) {
	mux.Handle(AdminService, "stats", func(_ context.Context, _ json.RawMessage) (any, error) {
		ns, err := kv.Stats()
		if err != nil {
			return nil, err
		}
		cols := make(map[string]int)
		names, err := docs.Collections()
		if err != nil {
			return nil, err
		}
		for _, col := range names {
			n, err := docs.Count(col)
			if err != nil {
				return nil, err
			}
			cols[col] = n
		}
		return StatsReply{Namespaces: ns, Collections: cols}, nil
	})
}

// Close flushes and closes both stores.
func (n *Node) Close() error {
	kvErr := n.KV.Close()
	docErr := n.Docs.Close()
	if kvErr != nil {
		return kvErr
	}
	return docErr
}

// coded maps the doc store's sentinel errors to structured transport
// codes, so gateways branch on codes instead of message substrings.
func coded(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, docstore.ErrNotFound):
		return transport.WithCode(err, transport.CodeNotFound)
	case errors.Is(err, docstore.ErrExists):
		return transport.WithCode(err, transport.CodeAlreadyExists)
	}
	return err
}

func registerDocService(mux *transport.Mux, docs *docstore.Store) {
	transport.HandleTyped(mux, DocService, "put", func(_ context.Context, in *DocPutArgs) (any, error) {
		if in.IfAbsent {
			return nil, coded(docs.Insert(in.Collection, in.ID, in.Blob))
		}
		return nil, docs.Put(in.Collection, in.ID, in.Blob)
	})
	transport.HandleTyped(mux, DocService, "putmany", func(_ context.Context, in *DocPutManyArgs) (any, error) {
		for _, rec := range in.Records {
			if in.IfAbsent {
				if err := docs.Insert(in.Collection, rec.ID, rec.Blob); err != nil {
					return nil, coded(err)
				}
				continue
			}
			if err := docs.Put(in.Collection, rec.ID, rec.Blob); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	transport.HandleTyped(mux, DocService, "deletemany", func(_ context.Context, in *DocDeleteManyArgs) (any, error) {
		deleted := 0
		for _, id := range in.IDs {
			err := docs.Delete(in.Collection, id)
			if err == nil {
				deleted++
				continue
			}
			if errors.Is(err, docstore.ErrNotFound) {
				continue // bulk deletes are idempotent per id
			}
			return nil, err
		}
		return &DocDeleteManyReply{Deleted: deleted}, nil
	})
	transport.HandleTyped(mux, DocService, "get", func(_ context.Context, in *DocGetArgs) (any, error) {
		blob, err := docs.Get(in.Collection, in.ID)
		if err != nil {
			return nil, coded(err)
		}
		return &DocGetReply{Blob: blob}, nil
	})
	transport.HandleTyped(mux, DocService, "getmany", func(_ context.Context, in *DocGetManyArgs) (any, error) {
		recs, err := docs.GetMany(in.Collection, in.IDs)
		if err != nil {
			return nil, err
		}
		return &DocGetManyReply{Records: recs}, nil
	})
	transport.HandleTyped(mux, DocService, "delete", func(_ context.Context, in *DocDeleteArgs) (any, error) {
		return nil, coded(docs.Delete(in.Collection, in.ID))
	})
	transport.HandleTyped(mux, DocService, "scan", func(_ context.Context, in *DocScanArgs) (any, error) {
		recs, err := docs.Scan(in.Collection, in.After, in.Limit)
		if err != nil {
			return nil, err
		}
		return &DocScanReply{Records: recs}, nil
	})
	transport.HandleTyped(mux, DocService, "count", func(_ context.Context, in *DocCountArgs) (any, error) {
		n, err := docs.Count(in.Collection)
		if err != nil {
			return nil, err
		}
		return &DocCountReply{Count: n}, nil
	})
}
