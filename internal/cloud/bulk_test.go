package cloud

import (
	"context"
	"fmt"
	"testing"

	"datablinder/internal/store/docstore"
	"datablinder/internal/transport"
)

func bulkNode(t *testing.T) (*Node, transport.Conn) {
	t.Helper()
	node, err := NewNode(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	conn := transport.NewLoopback(node.Mux)
	t.Cleanup(func() { conn.Close() })
	return node, conn
}

func TestDocPutMany(t *testing.T) {
	node, conn := bulkNode(t)
	ctx := context.Background()

	recs := []docstore.Record{
		{ID: "a", Blob: []byte("1")},
		{ID: "b", Blob: []byte("2")},
		{ID: "c", Blob: []byte("3")},
	}
	if err := conn.Call(ctx, DocService, "putmany",
		DocPutManyArgs{Collection: "c", Records: recs, IfAbsent: true}, nil); err != nil {
		t.Fatalf("putmany: %v", err)
	}
	for _, r := range recs {
		blob, err := node.Docs.Get("c", r.ID)
		if err != nil || string(blob) != string(r.Blob) {
			t.Fatalf("doc %s = %q, %v", r.ID, blob, err)
		}
	}

	// IfAbsent fails on the first duplicate with a coded error; earlier
	// records of the batch stay stored.
	err := conn.Call(ctx, DocService, "putmany", DocPutManyArgs{
		Collection: "c",
		Records: []docstore.Record{
			{ID: "d", Blob: []byte("4")},
			{ID: "b", Blob: []byte("dup")},
			{ID: "e", Blob: []byte("5")},
		},
		IfAbsent: true,
	}, nil)
	if !transport.IsAlreadyExistsError(err) {
		t.Fatalf("duplicate putmany = %v, want already_exists", err)
	}
	if blob, _ := node.Docs.Get("c", "d"); string(blob) != "4" {
		t.Fatalf("pre-duplicate record lost: %q", blob)
	}
	if blob, _ := node.Docs.Get("c", "b"); string(blob) != "2" {
		t.Fatalf("duplicate overwrote existing: %q", blob)
	}
	if _, err := node.Docs.Get("c", "e"); err == nil {
		t.Fatal("post-duplicate record was stored")
	}

	// Without IfAbsent putmany overwrites.
	if err := conn.Call(ctx, DocService, "putmany", DocPutManyArgs{
		Collection: "c",
		Records:    []docstore.Record{{ID: "b", Blob: []byte("new")}},
	}, nil); err != nil {
		t.Fatalf("overwrite putmany: %v", err)
	}
	if blob, _ := node.Docs.Get("c", "b"); string(blob) != "new" {
		t.Fatalf("overwrite lost: %q", blob)
	}
}

func TestDocDeleteMany(t *testing.T) {
	node, conn := bulkNode(t)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("d%d", i)
		if err := node.Docs.Put("c", id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	var reply DocDeleteManyReply
	if err := conn.Call(ctx, DocService, "deletemany",
		DocDeleteManyArgs{Collection: "c", IDs: []string{"d0", "missing", "d2", "d0"}}, &reply); err != nil {
		t.Fatalf("deletemany: %v", err)
	}
	if reply.Deleted != 2 { // d0 once, d2 once; missing and the repeat are skipped
		t.Fatalf("Deleted = %d, want 2", reply.Deleted)
	}
	if n, _ := node.Docs.Count("c"); n != 2 {
		t.Fatalf("remaining docs = %d, want 2", n)
	}
	for _, id := range []string{"d1", "d3"} {
		if _, err := node.Docs.Get("c", id); err != nil {
			t.Fatalf("unrelated doc %s deleted: %v", id, err)
		}
	}
}

// TestDocServiceErrorCodes verifies the doc service attaches structured
// codes so gateways never have to match on error strings.
func TestDocServiceErrorCodes(t *testing.T) {
	_, conn := bulkNode(t)
	ctx := context.Background()

	err := conn.Call(ctx, DocService, "get", DocGetArgs{Collection: "c", ID: "nope"}, nil)
	if transport.ErrorCode(err) != transport.CodeNotFound {
		t.Fatalf("get missing: code = %q (err %v)", transport.ErrorCode(err), err)
	}
	err = conn.Call(ctx, DocService, "delete", DocDeleteArgs{Collection: "c", ID: "nope"}, nil)
	if transport.ErrorCode(err) != transport.CodeNotFound {
		t.Fatalf("delete missing: code = %q (err %v)", transport.ErrorCode(err), err)
	}
	if err := conn.Call(ctx, DocService, "put",
		DocPutArgs{Collection: "c", ID: "x", Blob: []byte("1"), IfAbsent: true}, nil); err != nil {
		t.Fatal(err)
	}
	err = conn.Call(ctx, DocService, "put",
		DocPutArgs{Collection: "c", ID: "x", Blob: []byte("2"), IfAbsent: true}, nil)
	if transport.ErrorCode(err) != transport.CodeAlreadyExists {
		t.Fatalf("duplicate put: code = %q (err %v)", transport.ErrorCode(err), err)
	}
}

// TestCodesSurviveTCP runs the same coded-error checks across a real
// socket: the code must travel inside the response frame.
func TestCodesSurviveTCP(t *testing.T) {
	node, err := NewNode(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv := transport.NewServer(node.Mux)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := transport.Dial(addr, transport.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx := context.Background()
	err = conn.Call(ctx, DocService, "get", DocGetArgs{Collection: "c", ID: "nope"}, nil)
	if transport.ErrorCode(err) != transport.CodeNotFound {
		t.Fatalf("code over TCP = %q (err %v)", transport.ErrorCode(err), err)
	}
	if !transport.IsNotFoundError(err) {
		t.Fatalf("IsNotFoundError over TCP = false (err %v)", err)
	}
}
