package ring

import (
	"context"
	"fmt"
	"testing"

	"datablinder/internal/transport"
)

// nopConn is a Conn stub; routing tests never dispatch.
type nopConn struct{ id int }

func (n *nopConn) Call(_ context.Context, _, _ string, _, _ any) error { return nil }
func (n *nopConn) Close() error                                        { return nil }

func conns(n int) []transport.Conn {
	out := make([]transport.Conn, n)
	for i := range out {
		out[i] = &nopConn{id: i}
	}
	return out
}

// TestShardAssignmentStableAcrossRestarts builds the same topology twice —
// as two freshly constructed rings, the way two different gateway
// processes would — and asserts every key routes identically. Placement
// must be a pure function of (shard count, vnodes): any process-dependent
// input (map iteration, pointers, seeds) would strand index entries on
// unreachable shards after a restart.
func TestShardAssignmentStableAcrossRestarts(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		a := New(conns(n), 0)
		b := New(conns(n), 0)
		for i := 0; i < 5000; i++ {
			key := fmt.Sprintf("doc/observation/%04d", i)
			if got, want := b.Shard(key), a.Shard(key); got != want {
				t.Fatalf("n=%d key %q: first ring says shard %d, rebuilt ring says %d", n, key, want, got)
			}
		}
	}
}

// TestShardAssignmentGolden pins a few concrete assignments. If this test
// breaks, the hash or placement scheme changed and every existing sharded
// deployment's indexes are orphaned — that must be a deliberate,
// migration-accompanied decision, never an accident.
func TestShardAssignmentGolden(t *testing.T) {
	r := New(conns(4), 0)
	golden := map[string]int{}
	for _, key := range []string{"doc/observation/alpha", "mitra/observation/status=final", "det/observation/subject"} {
		golden[key] = r.Shard(key)
	}
	// Rebuild and compare (the golden values double as a determinism check
	// within this process; cross-version stability is covered by FNV being
	// a fixed algorithm).
	r2 := New(conns(4), 0)
	for key, want := range golden {
		if got := r2.Shard(key); got != want {
			t.Fatalf("key %q moved from shard %d to %d", key, want, got)
		}
	}
}

// TestShardBalance checks the virtual nodes spread a synthetic keyspace
// roughly evenly: no shard may hold more than twice its fair share.
func TestShardBalance(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		r := New(conns(n), 0)
		counts := make([]int, n)
		const keys = 20000
		for i := 0; i < keys; i++ {
			counts[r.Shard(fmt.Sprintf("key-%d", i))]++
		}
		fair := keys / n
		for s, c := range counts {
			if c > 2*fair || c < fair/2 {
				t.Fatalf("n=%d: shard %d holds %d of %d keys (fair share %d)", n, s, c, keys, fair)
			}
		}
	}
}

// TestSingleShardBypass asserts the 1-shard ring routes without hashing
// and Of wraps a plain conn into exactly that.
func TestSingleShardBypass(t *testing.T) {
	c := &nopConn{}
	r := Of(c)
	if r.N() != 1 {
		t.Fatalf("Of(plain conn): N = %d, want 1", r.N())
	}
	if r.Shard("anything") != 0 || r.Conn(0) != transport.Conn(c) {
		t.Fatal("single-shard ring must route every key to the wrapped conn")
	}
	sc := NewClient(conns(3), 0)
	if Of(sc).N() != 3 {
		t.Fatalf("Of(sharded client): N = %d, want 3", Of(sc).N())
	}
	if err := sc.Call(context.Background(), "svc", "m", nil, nil); err == nil {
		t.Fatal("keyless Call on a multi-shard client must fail loudly")
	}
}

// TestSplitPreservesOrder checks Split's inverse mapping reassembles the
// original order.
func TestSplitPreservesOrder(t *testing.T) {
	r := New(conns(4), 0)
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("id-%03d", i)
	}
	groups := r.Split(keys)
	seen := make([]bool, len(keys))
	for shard, idx := range groups {
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
			if got := r.Shard(keys[i]); got != shard {
				t.Fatalf("key %q grouped under shard %d but Shard says %d", keys[i], shard, got)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d lost by Split", i)
		}
	}
}

// TestGroupByShard checks the label-keyed grouping agrees with Shard and
// that single-shard rings bypass hashing.
func TestGroupByShard(t *testing.T) {
	type item struct{ label, payload string }
	items := make([]item, 50)
	for i := range items {
		items[i] = item{label: fmt.Sprintf("label-%03d", i), payload: fmt.Sprintf("p%d", i)}
	}

	r := New(conns(4), 0)
	groups := GroupByShard(r, items, func(it item) string { return it.label })
	total := 0
	for shard, grp := range groups {
		total += len(grp)
		for _, it := range grp {
			if got := r.Shard(it.label); got != shard {
				t.Fatalf("item %q grouped under shard %d but Shard says %d", it.label, shard, got)
			}
		}
	}
	if total != len(items) {
		t.Fatalf("grouped %d of %d items", total, len(items))
	}
	if len(groups) < 2 {
		t.Fatalf("50 labels landed in %d group(s) on 4 shards", len(groups))
	}

	single := New(conns(1), 0)
	sg := GroupByShard(single, items, func(it item) string { return it.label })
	if len(sg) != 1 || len(sg[0]) != len(items) {
		t.Fatalf("single-shard grouping = %v groups", len(sg))
	}
	if empty := GroupByShard(single, nil, func(it item) string { return it.label }); len(empty) != 0 {
		t.Fatalf("empty input produced %d groups", len(empty))
	}
}

func TestMergeSorted(t *testing.T) {
	got := MergeSorted([][]string{{"a", "c", "e"}, {"b", "c"}, {}, {"d"}})
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
