// Package ring implements the gateway's shard router for a sharded cloud
// tier: N independent cloud nodes, each holding a disjoint slice of the
// document store and of every tactic's secure index, fronted by a
// consistent-hash ring with virtual nodes.
//
// Routing keys are stable strings chosen by each call site — the document
// id for the doc service, the token/label prefix for kvstore-backed index
// namespaces — so a posting structure lands deterministically on one shard
// across process restarts, while multi-keyword and range queries
// scatter-gather across all shards (Each) and merge gateway-side.
//
// Placement is a pure function of the shard count and the virtual-node
// count: point i of shard s hashes "shard-<s>/vnode-<i>" onto a 64-bit
// circle. No process state (timestamps, random seeds, pointer values)
// participates, which is what makes key→shard assignment stable across
// restarts — the property the secure indexes depend on.
package ring

import (
	"context"
	"fmt"
	"sort"

	"datablinder/internal/conc"
	"datablinder/internal/transport"
)

// DefaultVirtualNodes is the number of points each shard contributes to
// the circle. Arc lengths concentrate as the point count grows; 256 keeps
// every shard's share of a uniform key space within roughly ±25% of fair
// at small shard counts, without making Shard's binary search noticeable
// (the search is over n*256 points).
const DefaultVirtualNodes = 256

// point is one virtual node on the hash circle.
type point struct {
	hash  uint64
	shard int
}

// Ring maps routing keys onto a fixed set of shard connections. A Ring
// over one connection routes everything to it without hashing, so the
// single-node configuration behaves exactly like an unsharded deployment.
type Ring struct {
	conns  []transport.Conn
	points []point // sorted by hash; empty for single-shard rings
}

// hash64 hashes s with FNV-1a followed by a murmur-style avalanche
// finalizer. Both stages are fixed constants — stable across processes and
// Go versions, unlike the runtime's seeded map hash. The finalizer matters:
// raw FNV-1a over short, near-identical strings ("shard-0/vnode-1",
// "shard-0/vnode-2", ...) leaves enough structure in the high bits to skew
// arc lengths by 3-4x; full avalanche restores uniform placement.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// New builds a ring over conns with vnodes virtual nodes per shard
// (DefaultVirtualNodes if vnodes <= 0). Shard identity is positional: the
// i-th connection is shard i, and placement depends only on (i, vnodes),
// so the same address list always reproduces the same assignment.
func New(conns []transport.Conn, vnodes int) *Ring {
	r := &Ring{conns: conns}
	if len(conns) <= 1 {
		return r
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r.points = make([]point, 0, len(conns)*vnodes)
	for s := range conns {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:  hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// N returns the number of shards.
func (r *Ring) N() int { return len(r.conns) }

// WithConns returns a ring with identical placement (the point array is
// shared, so key→shard assignment and the virtual-node count are exactly
// preserved) but every connection replaced by wrap(shard, conn). It exists
// to interpose per-shard middleware — the gateway's write coalescer —
// without re-deriving placement, which the secure indexes depend on.
func (r *Ring) WithConns(wrap func(shard int, conn transport.Conn) transport.Conn) *Ring {
	conns := make([]transport.Conn, len(r.conns))
	for i, c := range r.conns {
		conns[i] = wrap(i, c)
	}
	return &Ring{conns: conns, points: r.points}
}

// Shard returns the shard index owning key: the first point clockwise of
// the key's hash.
func (r *Ring) Shard(key string) int {
	if len(r.points) == 0 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// Conn returns the connection of shard i.
func (r *Ring) Conn(i int) transport.Conn { return r.conns[i] }

// Call routes one RPC to the shard owning key.
func (r *Ring) Call(ctx context.Context, key, service, method string, args, reply any) error {
	return r.conns[r.Shard(key)].Call(ctx, service, method, args, reply)
}

// Each runs f once per shard, concurrently, cancelling the rest on first
// error — the scatter half of scatter-gather. f must write its result into
// per-shard storage (slices indexed by shard); the caller merges after
// Each returns.
func (r *Ring) Each(ctx context.Context, f func(ctx context.Context, shard int, conn transport.Conn) error) error {
	if len(r.conns) == 1 {
		return f(ctx, 0, r.conns[0])
	}
	return conc.ForEach(ctx, len(r.conns), 0, func(gctx context.Context, i int) error {
		return f(gctx, i, r.conns[i])
	})
}

// Broadcast sends the same call to every shard, discarding replies — for
// idempotent provisioning (shipping a tactic's public key) that every
// shard must hold.
func (r *Ring) Broadcast(ctx context.Context, service, method string, args any) error {
	return r.Each(ctx, func(gctx context.Context, _ int, conn transport.Conn) error {
		return conn.Call(gctx, service, method, args, nil)
	})
}

// GroupByShard partitions items by the shard owning each item's routing
// label — the batch-shaped companion to Shard for label-keyed payloads
// (index entry groups, conjunction tokens). Single-shard rings return one
// group without hashing.
func GroupByShard[T any](r *Ring, items []T, label func(T) string) map[int][]T {
	groups := make(map[int][]T)
	if len(r.points) == 0 {
		if len(items) > 0 {
			groups[0] = items
		}
		return groups
	}
	for _, it := range items {
		s := r.Shard(label(it))
		groups[s] = append(groups[s], it)
	}
	return groups
}

// Split partitions keys by owning shard, preserving each key's index into
// the original slice so gathered results can be reassembled in request
// order. Single-shard rings return one group without hashing.
func (r *Ring) Split(keys []string) map[int][]int {
	groups := make(map[int][]int, len(r.conns))
	if len(r.points) == 0 {
		idx := make([]int, len(keys))
		for i := range keys {
			idx[i] = i
		}
		groups[0] = idx
		return groups
	}
	for i, k := range keys {
		s := r.Shard(k)
		groups[s] = append(groups[s], i)
	}
	return groups
}

// Close closes every shard connection, returning the first error.
func (r *Ring) Close() error {
	var first error
	for _, c := range r.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ringer is implemented by connections that front a ring (Client below).
type ringer interface{ Ring() *Ring }

// Of returns the ring behind conn: the sharded client's own ring when conn
// is one, otherwise a fresh single-shard ring wrapping conn. Engine and
// tactic code calls Of once at construction and then routes uniformly; on
// an unsharded connection every helper degenerates to a direct call, so
// single-node behavior is unchanged.
func Of(conn transport.Conn) *Ring {
	if r, ok := conn.(ringer); ok {
		return r.Ring()
	}
	return &Ring{conns: []transport.Conn{conn}}
}

// Client is the transport.Conn handed to the engine when the cloud tier is
// sharded. Direct Call is only legal with a single shard (there is no
// routing key); every sharded call site must go through Of(...).Call /
// Each / Split. A loud error here means a call site was missed during the
// single-node → ring conversion, which the sharded e2e test exercises.
type Client struct {
	ring *Ring
}

// NewClient builds a sharded connection over conns (positional shard
// identity) with vnodes virtual nodes per shard.
func NewClient(conns []transport.Conn, vnodes int) *Client {
	return &Client{ring: New(conns, vnodes)}
}

// ClientOf wraps an existing ring (typically one rebuilt by WithConns) as
// a sharded connection.
func ClientOf(r *Ring) *Client { return &Client{ring: r} }

// Ring exposes the routing view (the Of hook).
func (c *Client) Ring() *Ring { return c.ring }

// Call implements transport.Conn. With one shard it forwards directly;
// with several it refuses, because a keyless call cannot be routed.
func (c *Client) Call(ctx context.Context, service, method string, args, reply any) error {
	if c.ring.N() == 1 {
		return c.ring.Conn(0).Call(ctx, service, method, args, reply)
	}
	return fmt.Errorf("ring: %s.%s called without a routing key on a %d-shard connection", service, method, c.ring.N())
}

// Close implements transport.Conn.
func (c *Client) Close() error { return c.ring.Close() }

// MergeSorted k-way merges ascending string slices into one ascending
// slice, dropping duplicates across inputs. Shards hold disjoint key sets,
// so duplicates only occur when a caller merges overlapping pages.
func MergeSorted(lists [][]string) []string {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]string, 0, n)
	pos := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 || l[pos[i]] < lists[best][pos[best]] {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		v := lists[best][pos[best]]
		pos[best]++
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
}

var _ transport.Conn = (*Client)(nil)
