// Typed wire codecs (codec v2) for the document service: blobs ride as
// raw bytes instead of base64 JSON. Registered at init so any process
// importing this package — gateway and cloudserver both — negotiates them.

package cloud

import (
	"datablinder/internal/store/docstore"
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func appendRecords(b []byte, recs []docstore.Record) []byte {
	b = wirefmt.AppendUvarint(b, uint64(len(recs)))
	for _, rec := range recs {
		b = wirefmt.AppendString(b, rec.ID)
		b = wirefmt.AppendBytes(b, rec.Blob)
	}
	return b
}

func readRecords(r *wirefmt.Reader) []docstore.Record {
	n := r.Count()
	if n == 0 {
		return nil
	}
	recs := make([]docstore.Record, n)
	for i := range recs {
		recs[i].ID = r.String()
		recs[i].Blob = r.Bytes()
	}
	return recs
}

func init() {
	transport.RegisterCodec(DocService, "put", transport.WriteCodec(
		func(b []byte, a *DocPutArgs) []byte {
			b = wirefmt.AppendString(b, a.Collection)
			b = wirefmt.AppendString(b, a.ID)
			b = wirefmt.AppendBytes(b, a.Blob)
			return wirefmt.AppendBool(b, a.IfAbsent)
		},
		func(r *wirefmt.Reader, a *DocPutArgs) {
			a.Collection = r.String()
			a.ID = r.String()
			a.Blob = r.Bytes()
			a.IfAbsent = r.Bool()
		},
	))
	transport.RegisterCodec(DocService, "putmany", transport.WriteCodec(
		func(b []byte, a *DocPutManyArgs) []byte {
			b = wirefmt.AppendString(b, a.Collection)
			b = appendRecords(b, a.Records)
			return wirefmt.AppendBool(b, a.IfAbsent)
		},
		func(r *wirefmt.Reader, a *DocPutManyArgs) {
			a.Collection = r.String()
			a.Records = readRecords(r)
			a.IfAbsent = r.Bool()
		},
	))
	transport.RegisterCodec(DocService, "get", transport.Codec(
		func(b []byte, a *DocGetArgs) []byte {
			b = wirefmt.AppendString(b, a.Collection)
			return wirefmt.AppendString(b, a.ID)
		},
		func(r *wirefmt.Reader, a *DocGetArgs) {
			a.Collection = r.String()
			a.ID = r.String()
		},
		func(b []byte, out *DocGetReply) []byte { return wirefmt.AppendBytes(b, out.Blob) },
		func(r *wirefmt.Reader, out *DocGetReply) { out.Blob = r.Bytes() },
	))
	transport.RegisterCodec(DocService, "getmany", transport.Codec(
		func(b []byte, a *DocGetManyArgs) []byte {
			b = wirefmt.AppendString(b, a.Collection)
			return wirefmt.AppendStrings(b, a.IDs)
		},
		func(r *wirefmt.Reader, a *DocGetManyArgs) {
			a.Collection = r.String()
			a.IDs = r.Strings()
		},
		func(b []byte, out *DocGetManyReply) []byte { return appendRecords(b, out.Records) },
		func(r *wirefmt.Reader, out *DocGetManyReply) { out.Records = readRecords(r) },
	))
	transport.RegisterCodec(DocService, "delete", transport.WriteCodec(
		func(b []byte, a *DocDeleteArgs) []byte {
			b = wirefmt.AppendString(b, a.Collection)
			return wirefmt.AppendString(b, a.ID)
		},
		func(r *wirefmt.Reader, a *DocDeleteArgs) {
			a.Collection = r.String()
			a.ID = r.String()
		},
	))
	transport.RegisterCodec(DocService, "deletemany", transport.Codec(
		func(b []byte, a *DocDeleteManyArgs) []byte {
			b = wirefmt.AppendString(b, a.Collection)
			return wirefmt.AppendStrings(b, a.IDs)
		},
		func(r *wirefmt.Reader, a *DocDeleteManyArgs) {
			a.Collection = r.String()
			a.IDs = r.Strings()
		},
		func(b []byte, out *DocDeleteManyReply) []byte {
			return wirefmt.AppendUvarint(b, uint64(out.Deleted))
		},
		func(r *wirefmt.Reader, out *DocDeleteManyReply) { out.Deleted = int(r.Uvarint()) },
	))
	transport.RegisterCodec(DocService, "scan", transport.Codec(
		func(b []byte, a *DocScanArgs) []byte {
			b = wirefmt.AppendString(b, a.Collection)
			b = wirefmt.AppendString(b, a.After)
			return wirefmt.AppendUvarint(b, uint64(a.Limit))
		},
		func(r *wirefmt.Reader, a *DocScanArgs) {
			a.Collection = r.String()
			a.After = r.String()
			a.Limit = int(r.Uvarint())
		},
		func(b []byte, out *DocScanReply) []byte { return appendRecords(b, out.Records) },
		func(r *wirefmt.Reader, out *DocScanReply) { out.Records = readRecords(r) },
	))
	transport.RegisterCodec(DocService, "count", transport.Codec(
		func(b []byte, a *DocCountArgs) []byte { return wirefmt.AppendString(b, a.Collection) },
		func(r *wirefmt.Reader, a *DocCountArgs) { a.Collection = r.String() },
		func(b []byte, out *DocCountReply) []byte { return wirefmt.AppendUvarint(b, uint64(out.Count)) },
		func(r *wirefmt.Reader, out *DocCountReply) { out.Count = int(r.Uvarint()) },
	))
}
