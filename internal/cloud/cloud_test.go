package cloud

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"datablinder/internal/transport"
)

func TestNodeRegistersAllServices(t *testing.T) {
	node, err := NewNode(Options{})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	defer node.Close()

	services := node.Mux.Services()
	wantPrefixes := []string{"doc.", "det.", "rnd.", "mitra.", "sophos.", "biex.", "ope.", "ore.", "agg."}
	for _, p := range wantPrefixes {
		found := false
		for _, s := range services {
			if strings.HasPrefix(s, p) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* service registered (have %v)", p, services)
		}
	}
}

func TestDocServiceCRUD(t *testing.T) {
	node, err := NewNode(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	conn := transport.NewLoopback(node.Mux)
	ctx := context.Background()

	// put with IfAbsent.
	if err := conn.Call(ctx, DocService, "put",
		DocPutArgs{Collection: "c", ID: "d1", Blob: []byte("b1"), IfAbsent: true}, nil); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := conn.Call(ctx, DocService, "put",
		DocPutArgs{Collection: "c", ID: "d1", Blob: []byte("b2"), IfAbsent: true}, nil); err == nil {
		t.Fatal("duplicate IfAbsent put succeeded")
	}
	// overwrite without IfAbsent.
	if err := conn.Call(ctx, DocService, "put",
		DocPutArgs{Collection: "c", ID: "d1", Blob: []byte("b3")}, nil); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	var got DocGetReply
	if err := conn.Call(ctx, DocService, "get", DocGetArgs{Collection: "c", ID: "d1"}, &got); err != nil {
		t.Fatalf("get: %v", err)
	}
	if string(got.Blob) != "b3" {
		t.Fatalf("get blob = %q", got.Blob)
	}
	// getmany preserves order, skips missing.
	conn.Call(ctx, DocService, "put", DocPutArgs{Collection: "c", ID: "d2", Blob: []byte("x")}, nil)
	var many DocGetManyReply
	if err := conn.Call(ctx, DocService, "getmany",
		DocGetManyArgs{Collection: "c", IDs: []string{"d2", "missing", "d1"}}, &many); err != nil {
		t.Fatalf("getmany: %v", err)
	}
	if len(many.Records) != 2 || many.Records[0].ID != "d2" || many.Records[1].ID != "d1" {
		t.Fatalf("getmany = %+v", many.Records)
	}
	// count + scan.
	var count DocCountReply
	if err := conn.Call(ctx, DocService, "count", DocCountArgs{Collection: "c"}, &count); err != nil || count.Count != 2 {
		t.Fatalf("count = %+v, %v", count, err)
	}
	var scan DocScanReply
	if err := conn.Call(ctx, DocService, "scan", DocScanArgs{Collection: "c", Limit: 10}, &scan); err != nil || len(scan.Records) != 2 {
		t.Fatalf("scan = %+v, %v", scan, err)
	}
	// delete.
	if err := conn.Call(ctx, DocService, "delete", DocDeleteArgs{Collection: "c", ID: "d1"}, nil); err != nil {
		t.Fatalf("delete: %v", err)
	}
	err = conn.Call(ctx, DocService, "get", DocGetArgs{Collection: "c", ID: "d1"}, &got)
	if err == nil || !transport.IsNotFoundError(err) {
		t.Fatalf("get after delete = %v", err)
	}
}

func TestNodePersistence(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		KVPath: filepath.Join(dir, "kv.aof"),
		DocDir: filepath.Join(dir, "docs"),
	}
	node, err := NewNode(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	conn := transport.NewLoopback(node.Mux)
	if err := conn.Call(ctx, DocService, "put",
		DocPutArgs{Collection: "c", ID: "d1", Blob: []byte("persisted")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := node.KV.Set([]byte("idx"), []byte("entry")); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	node2, err := NewNode(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer node2.Close()
	blob, err := node2.Docs.Get("c", "d1")
	if err != nil || string(blob) != "persisted" {
		t.Fatalf("doc not restored: %q, %v", blob, err)
	}
	v, ok, err := node2.KV.Get([]byte("idx"))
	if err != nil || !ok || string(v) != "entry" {
		t.Fatalf("kv not restored: %q, %v, %v", v, ok, err)
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	node, err := NewNode(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := node.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
