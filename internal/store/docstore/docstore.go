// Package docstore implements the document-oriented store DataBlinder's
// cloud side keeps encrypted documents in. The original system used MongoDB
// or Elasticsearch; the middleware only ever needs put/get/delete/scan by
// document identifier on opaque (encrypted) blobs within named collections,
// which this package provides backed by the segmented binary write-ahead
// log in internal/store/wal: every mutation is logged as it happens (not
// only at Close, as the old JSON-snapshot scheme did), so a crash loses at
// most the configured fsync window.
//
// All operations are safe for concurrent use.
package docstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"datablinder/internal/store/wal"
)

// Common errors.
var (
	ErrClosed   = errors.New("docstore: store is closed")
	ErrNotFound = errors.New("docstore: document not found")
	ErrExists   = errors.New("docstore: document already exists")
)

// Record is a stored document: an identifier plus an opaque payload. The
// payload is typically a whole-document AEAD ciphertext; the store never
// interprets it.
type Record struct {
	ID   string `json:"id"`
	Blob []byte `json:"blob"`
}

// Store is an in-memory multi-collection document store with optional WAL
// persistence.
type Store struct {
	mu          sync.RWMutex
	collections map[string]map[string][]byte
	closed      bool
	seq         uint64 // last claimed commit sequence; guarded by mu

	wal        *wal.Log
	opts       Options
	wg         sync.WaitGroup
	compacting atomic.Bool
}

// New returns an empty in-memory store with no persistence.
func New() *Store {
	return &Store{collections: make(map[string]map[string][]byte)}
}

func (s *Store) collection(name string) map[string][]byte {
	col := s.collections[name]
	if col == nil {
		col = make(map[string][]byte)
		s.collections[name] = col
	}
	return col
}

// Insert stores blob under id in collection, failing if id already exists.
func (s *Store) Insert(collection, id string, blob []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	col := s.collection(collection)
	if _, ok := col[id]; ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrExists, collection, id)
	}
	col[id] = append([]byte(nil), blob...)
	seq, ok := s.claimLocked()
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return s.logPut(seq, collection, id, blob)
}

// Put stores blob under id in collection, overwriting any existing value.
func (s *Store) Put(collection, id string, blob []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.collection(collection)[id] = append([]byte(nil), blob...)
	seq, ok := s.claimLocked()
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return s.logPut(seq, collection, id, blob)
}

// Get returns the blob stored under id in collection.
func (s *Store) Get(collection, id string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	blob, ok := s.collections[collection][id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	return append([]byte(nil), blob...), nil
}

// GetMany returns the records for the given ids, skipping missing ones.
// The result preserves the order of ids.
func (s *Store) GetMany(collection string, ids []string) ([]Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	col := s.collections[collection]
	out := make([]Record, 0, len(ids))
	for _, id := range ids {
		if blob, ok := col[id]; ok {
			out = append(out, Record{ID: id, Blob: append([]byte(nil), blob...)})
		}
	}
	return out, nil
}

// Delete removes id from collection. Deleting a missing document returns
// ErrNotFound.
func (s *Store) Delete(collection, id string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	col := s.collections[collection]
	if _, ok := col[id]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	delete(col, id)
	seq, ok := s.claimLocked()
	s.mu.Unlock()
	if !ok {
		return nil
	}
	return s.logDel(seq, collection, id)
}

// Exists reports whether id is present in collection.
func (s *Store) Exists(collection, id string) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.collections[collection][id]
	return ok, nil
}

// Count returns the number of documents in collection.
func (s *Store) Count(collection string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.collections[collection]), nil
}

// Scan returns up to limit records from collection with id > after, in id
// order. A limit <= 0 means no limit. It supports the RND tactic's
// exhaustive equality search and administrative tooling.
func (s *Store) Scan(collection, after string, limit int) ([]Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	col := s.collections[collection]
	ids := make([]string, 0, len(col))
	for id := range col {
		if id > after {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]Record, len(ids))
	for i, id := range ids {
		out[i] = Record{ID: id, Blob: append([]byte(nil), col[id]...)}
	}
	return out, nil
}

// Collections returns the collection names, sorted.
func (s *Store) Collections() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	names := make([]string, 0, len(s.collections))
	for n := range s.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
