package docstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestInsertGetDelete(t *testing.T) {
	s := New()
	if err := s.Insert("obs", "d1", []byte("blob1")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := s.Insert("obs", "d1", []byte("blob2")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Insert = %v, want ErrExists", err)
	}
	blob, err := s.Get("obs", "d1")
	if err != nil || string(blob) != "blob1" {
		t.Fatalf("Get = %q, %v", blob, err)
	}
	if err := s.Delete("obs", "d1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("obs", "d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete("obs", "d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Delete = %v, want ErrNotFound", err)
	}
}

func TestPutOverwrites(t *testing.T) {
	s := New()
	s.Put("c", "id", []byte("v1"))
	s.Put("c", "id", []byte("v2"))
	blob, err := s.Get("c", "id")
	if err != nil || string(blob) != "v2" {
		t.Fatalf("Get = %q, %v", blob, err)
	}
}

func TestCollectionsAreIsolated(t *testing.T) {
	s := New()
	s.Put("a", "id", []byte("in-a"))
	if _, err := s.Get("b", "id"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-collection Get = %v, want ErrNotFound", err)
	}
	names, _ := s.Collections()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("Collections = %v", names)
	}
}

func TestGetMany(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Put("c", fmt.Sprintf("d%d", i), []byte{byte(i)})
	}
	recs, err := s.GetMany("c", []string{"d3", "d0", "missing", "d4"})
	if err != nil {
		t.Fatalf("GetMany: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("GetMany returned %d records, want 3", len(recs))
	}
	// Order of requested ids is preserved.
	if recs[0].ID != "d3" || recs[1].ID != "d0" || recs[2].ID != "d4" {
		t.Fatalf("GetMany order = %v", []string{recs[0].ID, recs[1].ID, recs[2].ID})
	}
}

func TestScanPagination(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Put("c", fmt.Sprintf("d%02d", i), []byte("x"))
	}
	var all []string
	after := ""
	for {
		recs, err := s.Scan("c", after, 3)
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			all = append(all, r.ID)
		}
		after = recs[len(recs)-1].ID
	}
	if len(all) != 10 {
		t.Fatalf("paginated scan returned %d docs, want 10", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("scan not ordered: %v", all)
		}
	}
	// limit <= 0 means everything.
	recs, _ := s.Scan("c", "", 0)
	if len(recs) != 10 {
		t.Fatalf("unlimited scan = %d docs, want 10", len(recs))
	}
}

func TestCountExists(t *testing.T) {
	s := New()
	s.Put("c", "a", []byte("1"))
	s.Put("c", "b", []byte("2"))
	if n, _ := s.Count("c"); n != 2 {
		t.Fatalf("Count = %d", n)
	}
	if ok, _ := s.Exists("c", "a"); !ok {
		t.Fatal("Exists(a) = false")
	}
	if ok, _ := s.Exists("c", "z"); ok {
		t.Fatal("Exists(z) = true")
	}
}

func TestBlobCopySemantics(t *testing.T) {
	s := New()
	buf := []byte("original")
	s.Put("c", "id", buf)
	buf[0] = 'X'
	got, _ := s.Get("c", "id")
	if string(got) != "original" {
		t.Fatalf("store aliased caller slice: %q", got)
	}
	got[0] = 'Y'
	got2, _ := s.Get("c", "id")
	if string(got2) != "original" {
		t.Fatalf("store returned aliased slice: %q", got2)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	payload := []byte{0x00, 0x01, 0xFF, 'j', 's', 'o', 'n'}
	s.Put("obs", "d1", payload)
	s.Put("patients", "p1", []byte("enc"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, err := s2.Get("obs", "d1")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("snapshot round trip = %x, %v", got, err)
	}
	if n, _ := s2.Count("patients"); n != 1 {
		t.Fatalf("patients count = %d", n)
	}
}

func TestClosedStore(t *testing.T) {
	s := New()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put("c", "id", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := s.Get("c", "id"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if _, err := s.Scan("c", "", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Scan after close = %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-i%d", g, i)
				if err := s.Insert("c", id, []byte(id)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				if _, err := s.Get("c", id); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n, _ := s.Count("c"); n != 8*200 {
		t.Fatalf("Count = %d, want %d", n, 8*200)
	}
}

func TestOpenRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "obs.json"), []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted corrupt snapshot")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o600)
	os.MkdirAll(filepath.Join(dir, "subdir"), 0o700)
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with foreign files: %v", err)
	}
	s.Close()
}
