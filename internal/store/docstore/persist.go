// WAL-backed persistence for the document store: per-mutation log records
// (put/delete), snapshot-as-compaction, and a one-shot migration from the
// v1 layout of Close-time JSON snapshot files.
//
// Frame format: one op byte, then collection and id as wirefmt strings,
// then (for puts) the blob. A snapshot payload concatenates
// length-prefixed put frames for every stored document.

package docstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"datablinder/internal/store/wal"
	"datablinder/internal/wirefmt"
)

// Op codes for persisted mutations.
const (
	dopPut byte = iota + 1
	dopDel
)

// DefaultCompactBytes is the sealed-log size that triggers a background
// snapshot+compaction when Options.CompactBytes is zero.
const DefaultCompactBytes = 64 << 20

// Options tunes persistence; the zero value is the default configuration.
type Options struct {
	// Fsync selects the durability policy (zero value: wal.FsyncInterval).
	Fsync wal.Policy
	// SyncInterval is the interval-policy flush cadence (0 = 1s).
	SyncInterval time.Duration
	// SegmentSize rotates log segments at this size (0 = 16 MiB).
	SegmentSize int64
	// Strict makes a torn log tail a fatal Open error.
	Strict bool
	// CompactBytes triggers a background snapshot once the sealed log
	// exceeds this size (0 = 64 MiB; negative disables auto-compaction).
	CompactBytes int64
}

func (o Options) withDefaults() Options {
	if o.CompactBytes == 0 {
		o.CompactBytes = DefaultCompactBytes
	}
	return o
}

// Open returns a store persisted under dir, replaying any existing state.
// v1 "<collection>.json" snapshot files found in an otherwise-empty dir
// are migrated into the log and retired with a ".migrated" suffix.
func Open(dir string, options ...Options) (*Store, error) {
	var opts Options
	if len(options) > 0 {
		opts = options[0]
	}
	opts = opts.withDefaults()
	s := New()
	s.opts = opts
	l, err := wal.Open(dir, wal.Options{
		Fsync:        opts.Fsync,
		SyncInterval: opts.SyncInterval,
		SegmentSize:  opts.SegmentSize,
		Strict:       opts.Strict,
	})
	if err != nil {
		return nil, fmt.Errorf("docstore: %w", err)
	}
	migrated := false
	if l.Empty() {
		migrated, err = s.loadLegacyJSON(dir)
		if err != nil {
			l.Close()
			return nil, err
		}
	}
	if err := s.recover(l); err != nil {
		l.Close()
		return nil, err
	}
	s.wal = l
	s.seq = l.MaxSeq()
	if migrated {
		// Persist the migrated collections immediately: the retired JSON
		// files are never read again.
		if err := s.Snapshot(); err != nil {
			l.Close()
			return nil, err
		}
	}
	return s, nil
}

// WAL exposes the underlying log for stats, benchmarks, and the planned
// replica catch-up protocol. Nil for in-memory stores.
func (s *Store) WAL() *wal.Log { return s.wal }

// loadLegacyJSON loads v1 per-collection snapshot files, retiring each
// with a ".migrated" suffix. A corrupt file fails the open untouched.
func (s *Store) loadLegacyJSON(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, fmt.Errorf("docstore: reading snapshot dir: %w", err)
	}
	var loaded []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		name := e.Name()[:len(e.Name())-len(".json")]
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return false, fmt.Errorf("docstore: reading snapshot %s: %w", e.Name(), err)
		}
		var recs []Record
		if err := json.Unmarshal(data, &recs); err != nil {
			return false, fmt.Errorf("docstore: decoding snapshot %s: %w", e.Name(), err)
		}
		col := make(map[string][]byte, len(recs))
		for _, r := range recs {
			col[r.ID] = r.Blob
		}
		s.collections[name] = col
		loaded = append(loaded, e.Name())
	}
	for _, name := range loaded {
		p := filepath.Join(dir, name)
		if err := os.Rename(p, p+".migrated"); err != nil {
			return false, fmt.Errorf("docstore: retiring snapshot %s: %w", name, err)
		}
	}
	return len(loaded) > 0, nil
}

// claimLocked reserves the next commit sequence and registers an in-flight
// append; the caller holds mu exclusively.
func (s *Store) claimLocked() (uint64, bool) {
	if s.wal == nil {
		return 0, false
	}
	s.wg.Add(1)
	s.seq++
	return s.seq, true
}

// framePool recycles frame-encoding buffers on the persisted write path.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func (s *Store) logPut(seq uint64, collection, id string, blob []byte) error {
	bp := framePool.Get().(*[]byte)
	b := append((*bp)[:0], dopPut)
	b = wirefmt.AppendString(b, collection)
	b = wirefmt.AppendString(b, id)
	b = wirefmt.AppendBytes(b, blob)
	err := s.logFrame(seq, b)
	*bp = b
	framePool.Put(bp)
	return err
}

func (s *Store) logDel(seq uint64, collection, id string) error {
	bp := framePool.Get().(*[]byte)
	b := append((*bp)[:0], dopDel)
	b = wirefmt.AppendString(b, collection)
	b = wirefmt.AppendString(b, id)
	err := s.logFrame(seq, b)
	*bp = b
	framePool.Put(bp)
	return err
}

// logFrame appends one claimed frame outside the store mutex, so readers
// never wait behind a group commit.
func (s *Store) logFrame(seq uint64, frame []byte) error {
	err := s.wal.Append(seq, frame)
	s.wg.Done()
	if err != nil {
		return fmt.Errorf("docstore: wal append: %w", err)
	}
	s.maybeCompact()
	return nil
}

// applyFrame decodes one frame and mutates the collections. Recovery-only:
// the store is not yet shared, and the frame memory is owned, so decoded
// blobs are stored without copying.
func (s *Store) applyFrame(frame []byte) error {
	if len(frame) < 2 {
		return fmt.Errorf("docstore: malformed frame (%d bytes)", len(frame))
	}
	r := wirefmt.GetReader(frame[1:])
	defer wirefmt.PutReader(r)
	col := r.String()
	id := r.String()
	switch frame[0] {
	case dopPut:
		blob := r.Bytes()
		if err := r.Finish(); err != nil {
			return fmt.Errorf("docstore: malformed put frame: %w", err)
		}
		s.collection(col)[id] = blob
	case dopDel:
		if err := r.Finish(); err != nil {
			return fmt.Errorf("docstore: malformed delete frame: %w", err)
		}
		delete(s.collections[col], id)
	default:
		return fmt.Errorf("docstore: unknown op %d", frame[0])
	}
	return nil
}

// recover loads the snapshot and replays the log tail in sequence order.
func (s *Store) recover(l *wal.Log) error {
	snap, _, hasSnap, err := l.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("docstore: %w", err)
	}
	if hasSnap {
		r := wirefmt.NewReader(snap)
		for r.Len() > 0 {
			frame := r.Bytes()
			if r.Err() != nil {
				break
			}
			if err := s.applyFrame(frame); err != nil {
				return err
			}
		}
		if err := r.Finish(); err != nil {
			return fmt.Errorf("docstore: corrupt snapshot: %w", err)
		}
	}
	type rec struct {
		seq   uint64
		frame []byte
	}
	var tail []rec
	if err := l.Replay(func(seq uint64, frame []byte) error {
		tail = append(tail, rec{seq, frame})
		return nil
	}); err != nil {
		return fmt.Errorf("docstore: %w", err)
	}
	// Appends race outside the store mutex, so file order can disagree
	// with commit order; replay in sequence order.
	sort.Slice(tail, func(a, b int) bool { return tail[a].seq < tail[b].seq })
	for _, rc := range tail {
		if err := s.applyFrame(rc.frame); err != nil {
			return fmt.Errorf("docstore: log record seq %d: %w", rc.seq, err)
		}
	}
	return nil
}

// serializeLocked encodes every collection as a snapshot payload; the
// caller holds mu (read or write).
func (s *Store) serializeLocked() []byte {
	b := make([]byte, 0, 1<<16)
	var frame []byte
	for name, col := range s.collections {
		for id, blob := range col {
			frame = append(frame[:0], dopPut)
			frame = wirefmt.AppendString(frame, name)
			frame = wirefmt.AppendString(frame, id)
			frame = wirefmt.AppendBytes(frame, blob)
			b = wirefmt.AppendBytes(b, frame)
		}
	}
	return b
}

// Snapshot writes a durable snapshot of every collection and drops the log
// segments it covers, bounding recovery to snapshot + tail. A no-op for
// stores created with New.
func (s *Store) Snapshot() error {
	if s.wal == nil {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.closed {
			return ErrClosed
		}
		return nil
	}
	// A read lock freezes the state: writers claim sequences under the
	// write lock, so everything with seq ≤ the captured value is applied.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	seq := s.seq
	payload := s.serializeLocked()
	s.mu.RUnlock()
	if err := s.wal.WriteSnapshot(seq, payload); err != nil {
		return fmt.Errorf("docstore: %w", err)
	}
	return nil
}

// maybeCompact kicks off one background snapshot when the sealed log has
// outgrown the configured bound.
func (s *Store) maybeCompact() {
	if s.opts.CompactBytes <= 0 || s.wal.SealedBytes() < s.opts.CompactBytes {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		s.Snapshot() //nolint:errcheck // best-effort; retried on the next trigger
	}()
}

// Sync forces everything logged so far to stable storage.
func (s *Store) Sync() error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("docstore: sync: %w", err)
	}
	return nil
}

// Close marks the store closed. With persistence enabled it writes a final
// snapshot (so the next open recovers without replaying the tail) and
// closes the log. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var payload []byte
	seq := s.seq
	if s.wal != nil {
		payload = s.serializeLocked()
	}
	s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	s.wg.Wait()
	snapErr := s.wal.WriteSnapshot(seq, payload)
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("docstore: closing WAL: %w", err)
	}
	if snapErr != nil && !errors.Is(snapErr, wal.ErrClosed) {
		return fmt.Errorf("docstore: final snapshot: %w", snapErr)
	}
	return nil
}
