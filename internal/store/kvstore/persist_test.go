package kvstore

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"datablinder/internal/store/wal"
)

// b64 builds a v1 text-AOF record from raw arguments.
func b64rec(op string, args ...[]byte) string {
	parts := []string{op}
	for _, a := range args {
		parts = append(parts, base64.StdEncoding.EncodeToString(a))
	}
	return strings.Join(parts, " ")
}

func TestLegacyMigrationInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	v1 := strings.Join([]string{
		b64rec("SET", []byte("k"), []byte("v")),
		b64rec("HSET", []byte("h"), []byte("f"), []byte("hv")),
		b64rec("SADD", []byte("s"), []byte("m")),
		b64rec("INCR", []byte("c"), []byte("42")),
		b64rec("ZADD", []byte("z"), []byte("\x01"), []byte("doc1")),
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(v1), 0o600); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open over v1 AOF: %v", err)
	}
	if v, ok, _ := s.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("migrated string = %q, %v", v, ok)
	}
	if c, _ := s.Counter([]byte("c")); c != 42 {
		t.Fatalf("migrated counter = %d", c)
	}
	// New writes must persist through the WAL.
	if err := s.Set([]byte("post"), []byte("migration")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if fi, err := os.Stat(path); err != nil || !fi.IsDir() {
		t.Fatalf("path is not a WAL directory after migration: %v %v", fi, err)
	}
	if _, err := os.Stat(path + ".legacy"); err != nil {
		t.Fatalf("legacy AOF not retired: %v", err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after migration: %v", err)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get([]byte("post")); !ok || string(v) != "migration" {
		t.Fatalf("post-migration write lost: %q, %v", v, ok)
	}
	if v, ok, _ := s2.HGet([]byte("h"), []byte("f")); !ok || string(v) != "hv" {
		t.Fatalf("migrated hash lost on second open: %q, %v", v, ok)
	}
	if z, _ := s2.ZCard([]byte("z")); z != 1 {
		t.Fatalf("migrated zset lost: card=%d", z)
	}
}

func TestLegacyMigrationSidecar(t *testing.T) {
	// The old cloud layout: WAL dir at <dir>/index, v1 AOF at <dir>/index.aof.
	dir := t.TempDir()
	legacy := filepath.Join(dir, "index.aof")
	if err := os.WriteFile(legacy, []byte(b64rec("SET", []byte("k"), []byte("v"))+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	s, err := Open(filepath.Join(dir, "index"), Options{LegacyAOF: legacy})
	if err != nil {
		t.Fatalf("Open with LegacyAOF: %v", err)
	}
	if v, ok, _ := s.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("sidecar migration = %q, %v", v, ok)
	}
	s.Close()
	if _, err := os.Stat(legacy + ".migrated"); err != nil {
		t.Fatalf("sidecar AOF not retired: %v", err)
	}
	// Second open must not re-apply the retired file.
	s2, err := Open(filepath.Join(dir, "index"), Options{LegacyAOF: legacy})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("state lost after sidecar migration: %q, %v", v, ok)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	s, err := Open(path, Options{Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial record at the tail of the last
	// segment; reopen must truncate it and keep every complete record.
	segs, err := filepath.Glob(filepath.Join(path, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x33, 0x99, 0x05, 0x01})
	f.Close()

	s2, err := Open(path, Options{Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	for i := 0; i < 50; i++ {
		if _, ok, _ := s2.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d lost to torn-tail truncation", i)
		}
	}
	if st := s2.WAL().Stats(); st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}

	// Strict mode refuses the same damage instead of truncating.
	s2.Close()
	f, err = os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x44, 0x88})
	f.Close()
	if _, err := Open(path, Options{Strict: true}); err == nil {
		t.Fatal("Strict Open accepted a torn tail")
	}
}

func TestCompactBoundsRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	s, err := Open(path, Options{Fsync: wal.FsyncNever, SegmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 128)
	for i := 0; i < 500; i++ {
		if err := s.Set([]byte(fmt.Sprintf("k%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Post-snapshot writes form the tail.
	for i := 500; i < 520; i++ {
		if err := s.Set([]byte(fmt.Sprintf("k%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 520; i++ {
		if _, ok, _ := s2.Get([]byte(fmt.Sprintf("k%04d", i))); !ok {
			t.Fatalf("k%04d lost across compaction", i)
		}
	}
	// Recovery must have replayed only the tail, not all 520 writes.
	if st := s2.WAL().Stats(); st.RecoveryRecords >= 100 {
		t.Fatalf("recovery replayed %d records; snapshot did not bound the tail", st.RecoveryRecords)
	}
}

func TestAutoCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	s, err := Open(path, Options{Fsync: wal.FsyncNever, SegmentSize: 2 << 10, CompactBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("y"), 256)
	for i := 0; i < 400; i++ {
		if err := s.Set([]byte(fmt.Sprintf("k%d", i%10)), val); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.WAL().Stats(); st.Snapshots > 0 && st.CompactedSegments > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no auto-compaction after %d sealed bytes", s.WAL().SealedBytes())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConcurrentPersistedWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store")
	s, err := Open(path, Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("g%d-%d", g, i))
				if err := s.Set(k, k); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				if _, err := s.Incr([]byte("shared"), 1); err != nil {
					t.Errorf("Incr: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if c, _ := s2.Counter([]byte("shared")); c != 8*50 {
		t.Fatalf("replayed counter = %d, want %d", c, 8*50)
	}
	for g := 0; g < 8; g++ {
		for i := 0; i < 50; i++ {
			k := []byte(fmt.Sprintf("g%d-%d", g, i))
			if _, ok, _ := s2.Get(k); !ok {
				t.Fatalf("%s lost", k)
			}
		}
	}
}

// crashEnvDir is set in the child process of TestCrashRecovery; the child
// writes acked keys to a ledger until the parent SIGKILLs it.
const (
	crashEnvDir    = "KVSTORE_CRASH_DIR"
	crashEnvPolicy = "KVSTORE_CRASH_POLICY"
)

// TestCrashHelper is not a real test: it is the body of the crash-injected
// child process. It appends keys under concurrent load, recording each
// acknowledged write in a ledger file, until it is killed.
func TestCrashHelper(t *testing.T) {
	dir := os.Getenv(crashEnvDir)
	if dir == "" {
		t.Skip("crash helper: driven by TestCrashRecovery")
	}
	policy := wal.Policy(os.Getenv(crashEnvPolicy))
	s, err := Open(filepath.Join(dir, "store"), Options{Fsync: policy, SegmentSize: 32 << 10})
	if err != nil {
		t.Fatalf("helper open: %v", err)
	}
	ledger, err := os.OpenFile(filepath.Join(dir, "ledger"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatalf("helper ledger: %v", err)
	}
	// 4 concurrent writers; the ledger line is written only after the
	// store acknowledges, so under fsync=always every ledger entry is a
	// durability promise. Ledger writes are unbuffered single syscalls —
	// surviving SIGKILL needs only the page cache, not the disk.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				key := fmt.Sprintf("w%d-%d", g, i)
				if err := s.Set([]byte(key), []byte(key)); err != nil {
					return
				}
				mu.Lock()
				fmt.Fprintf(ledger, "%s\n", key)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a crash-injected child process")
	}
	for _, policy := range []wal.Policy{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				crashEnvDir+"="+dir,
				crashEnvPolicy+"="+string(policy),
			)
			if err := cmd.Start(); err != nil {
				t.Fatalf("starting child: %v", err)
			}
			// Let the child ack a meaningful number of writes, then pull
			// the plug mid-stream.
			ledgerPath := filepath.Join(dir, "ledger")
			deadline := time.Now().Add(10 * time.Second)
			for {
				if fi, err := os.Stat(ledgerPath); err == nil && fi.Size() > 4096 {
					break
				}
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatal("child produced no writes in 10s")
				}
				time.Sleep(10 * time.Millisecond)
			}
			time.Sleep(100 * time.Millisecond)
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
			cmd.Wait() //nolint:errcheck // killed by design

			// Reopen: no policy may corrupt the store...
			s, err := Open(filepath.Join(dir, "store"), Options{Fsync: policy})
			if err != nil {
				t.Fatalf("reopen after SIGKILL: %v", err)
			}
			defer s.Close()

			// ...and under fsync=always every acked write must be present.
			if policy != wal.FsyncAlways {
				return
			}
			lf, err := os.Open(ledgerPath)
			if err != nil {
				t.Fatal(err)
			}
			defer lf.Close()
			acked := 0
			sc := bufio.NewScanner(lf)
			var lines []string
			for sc.Scan() {
				lines = append(lines, sc.Text())
			}
			// The final line can itself be torn by the SIGKILL; only
			// newline-terminated entries are completed acks, and Scanner
			// surfaces an unterminated tail as a final token — drop it by
			// re-checking the raw file.
			raw, err := os.ReadFile(ledgerPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(raw) > 0 && raw[len(raw)-1] != '\n' && len(lines) > 0 {
				lines = lines[:len(lines)-1]
			}
			for _, key := range lines {
				if key == "" {
					continue
				}
				if _, ok, _ := s.Get([]byte(key)); !ok {
					t.Fatalf("acked write %q lost after SIGKILL under fsync=always", key)
				}
				acked++
			}
			if acked == 0 {
				t.Fatal("ledger empty; crash test proved nothing")
			}
			t.Logf("verified %d acked writes survived SIGKILL", acked)
		})
	}
}
