package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetGetDel(t *testing.T) {
	s := New()
	if err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := s.Del([]byte("k")); err != nil {
		t.Fatalf("Del: %v", err)
	}
	if _, ok, _ := s.Get([]byte("k")); ok {
		t.Fatal("key survived Del")
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	v, ok, err := s.Get([]byte("nope"))
	if err != nil || ok || v != nil {
		t.Fatalf("Get(missing) = %q, %v, %v", v, ok, err)
	}
}

func TestValueCopySemantics(t *testing.T) {
	s := New()
	buf := []byte("original")
	if err := s.Set([]byte("k"), buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutating the caller's slice must not affect the store
	v, _, _ := s.Get([]byte("k"))
	if string(v) != "original" {
		t.Fatalf("store aliased caller slice: %q", v)
	}
	v[0] = 'Y' // mutating the returned slice must not affect the store
	v2, _, _ := s.Get([]byte("k"))
	if string(v2) != "original" {
		t.Fatalf("store returned aliased slice: %q", v2)
	}
}

func TestHashOps(t *testing.T) {
	s := New()
	if err := s.HSet([]byte("h"), []byte("f1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.HSet([]byte("h"), []byte("f2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.HGet([]byte("h"), []byte("f1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("HGet = %q, %v, %v", v, ok, err)
	}
	if n, _ := s.HLen([]byte("h")); n != 2 {
		t.Fatalf("HLen = %d, want 2", n)
	}
	fields, err := s.HFields([]byte("h"))
	if err != nil || len(fields) != 2 || string(fields[0]) != "f1" || string(fields[1]) != "f2" {
		t.Fatalf("HFields = %v, %v", fields, err)
	}
	if err := s.HDel([]byte("h"), []byte("f1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.HGet([]byte("h"), []byte("f1")); ok {
		t.Fatal("field survived HDel")
	}
	if n, _ := s.HLen([]byte("h")); n != 1 {
		t.Fatalf("HLen after HDel = %d, want 1", n)
	}
}

func TestSetOps(t *testing.T) {
	s := New()
	for _, m := range []string{"b", "a", "c", "a"} {
		if err := s.SAdd([]byte("s"), []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := s.SCard([]byte("s")); n != 3 {
		t.Fatalf("SCard = %d, want 3 (dedup)", n)
	}
	members, _ := s.SMembers([]byte("s"))
	want := []string{"a", "b", "c"}
	for i, m := range members {
		if string(m) != want[i] {
			t.Fatalf("SMembers[%d] = %q, want %q", i, m, want[i])
		}
	}
	if ok, _ := s.SIsMember([]byte("s"), []byte("b")); !ok {
		t.Fatal("SIsMember(b) = false")
	}
	if err := s.SRem([]byte("s"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.SIsMember([]byte("s"), []byte("b")); ok {
		t.Fatal("member survived SRem")
	}
}

func TestCounters(t *testing.T) {
	s := New()
	if v, err := s.Incr([]byte("c"), 5); err != nil || v != 5 {
		t.Fatalf("Incr = %d, %v", v, err)
	}
	if v, err := s.Incr([]byte("c"), -2); err != nil || v != 3 {
		t.Fatalf("Incr = %d, %v", v, err)
	}
	if v, err := s.Counter([]byte("c")); err != nil || v != 3 {
		t.Fatalf("Counter = %d, %v", v, err)
	}
	if v, err := s.Counter([]byte("unset")); err != nil || v != 0 {
		t.Fatalf("Counter(unset) = %d, %v", v, err)
	}
}

func TestKeysPrefix(t *testing.T) {
	s := New()
	for _, k := range []string{"idx:a", "idx:b", "doc:1"} {
		if err := s.Set([]byte(k), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys([]byte("idx:"))
	if err != nil || len(keys) != 2 {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
}

func TestLen(t *testing.T) {
	s := New()
	s.Set([]byte("a"), []byte("1"))
	s.HSet([]byte("b"), []byte("f"), []byte("1"))
	s.SAdd([]byte("c"), []byte("m"))
	s.Incr([]byte("d"), 1)
	if n, _ := s.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
}

func TestClosedStore(t *testing.T) {
	s := New()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Set([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Set after close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close = %v, want ErrClosed", err)
	}
	if _, err := s.Incr([]byte("k"), 1); err != ErrClosed {
		t.Fatalf("Incr after close = %v, want ErrClosed", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")

	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Set([]byte("k"), []byte("v"))
	s.HSet([]byte("h"), []byte("f"), []byte("hv"))
	s.SAdd([]byte("set"), []byte("m1"))
	s.SAdd([]byte("set"), []byte("m2"))
	s.SRem([]byte("set"), []byte("m1"))
	s.Incr([]byte("c"), 7)
	s.Set([]byte("gone"), []byte("x"))
	s.Del([]byte("gone"))
	s.HSet([]byte("h"), []byte("dead"), []byte("x"))
	s.HDel([]byte("h"), []byte("dead"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("string not replayed: %q, %v", v, ok)
	}
	if v, ok, _ := s2.HGet([]byte("h"), []byte("f")); !ok || string(v) != "hv" {
		t.Fatalf("hash not replayed: %q, %v", v, ok)
	}
	if _, ok, _ := s2.HGet([]byte("h"), []byte("dead")); ok {
		t.Fatal("HDel not replayed")
	}
	if ok, _ := s2.SIsMember([]byte("set"), []byte("m2")); !ok {
		t.Fatal("SAdd not replayed")
	}
	if ok, _ := s2.SIsMember([]byte("set"), []byte("m1")); ok {
		t.Fatal("SRem not replayed")
	}
	if c, _ := s2.Counter([]byte("c")); c != 7 {
		t.Fatalf("counter not replayed: %d", c)
	}
	if _, ok, _ := s2.Get([]byte("gone")); ok {
		t.Fatal("DEL not replayed")
	}
}

func TestPersistenceBinaryKeys(t *testing.T) {
	// Keys/values containing spaces, newlines, and non-UTF8 bytes must
	// survive the text AOF format.
	path := filepath.Join(t.TempDir(), "bin.aof")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte{0, 1, ' ', '\n', 0xFF}
	val := []byte{0xde, 0xad, '\n', ' '}
	s.Set(key, val)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	v, ok, _ := s2.Get(key)
	if !ok || !bytes.Equal(v, val) {
		t.Fatalf("binary round trip failed: %x, %v", v, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("k%d-%d", g, i))
				if err := s.Set(k, k); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				if _, _, err := s.Get(k); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if _, err := s.Incr([]byte("shared"), 1); err != nil {
					t.Errorf("Incr: %v", err)
					return
				}
				if err := s.SAdd([]byte("all"), k); err != nil {
					t.Errorf("SAdd: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c, _ := s.Counter([]byte("shared")); c != 8*200 {
		t.Fatalf("counter = %d, want %d", c, 8*200)
	}
	if n, _ := s.SCard([]byte("all")); n != 8*200 {
		t.Fatalf("set card = %d, want %d", n, 8*200)
	}
}

func TestQuickSetGet(t *testing.T) {
	s := New()
	f := func(k, v []byte) bool {
		if err := s.Set(k, v); err != nil {
			return false
		}
		got, ok, err := s.Get(k)
		return err == nil && ok && bytes.Equal(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	s := New()
	bad := []string{
		"",
		"SET",
		"SET !!notbase64!! dg==",
		"SET dg==",           // missing value
		"HSET dg== dg==",     // missing value
		"INCR dg== bm90bnVt", // non-numeric delta
		"BOGUS dg== dg==",
	}
	for _, rec := range bad {
		if err := s.replay(rec); err == nil {
			t.Errorf("replay(%q) succeeded, want error", rec)
		}
	}
}

func TestOpenRejectsCorruptAOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.aof")
	if err := os.WriteFile(path, []byte("SET dg== dg==\nGARBAGE LINE\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted corrupt AOF")
	}
}

func TestOpenCreatesMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.aof")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open(new path): %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("AOF not created: %v", err)
	}
}
