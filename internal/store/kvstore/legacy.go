// v1 text append-only-file parsing, kept only to migrate pre-WAL data
// directories: base64-armored space-separated records, one per line.
// Parsing is strict — a corrupt legacy file fails Open untouched rather
// than silently losing records.

package kvstore

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"os"
	"strings"
)

func dec(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }

// loadLegacyAOF replays a v1 text AOF into the in-memory state. Called
// during Open before the WAL exists, so replayed mutations are not logged.
func (s *Store) loadLegacyAOF(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("kvstore: opening AOF: %w", err)
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for scanner.Scan() {
		line++
		if err := s.replay(scanner.Text()); err != nil {
			return fmt.Errorf("kvstore: AOF line %d: %w", line, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("kvstore: reading AOF: %w", err)
	}
	return nil
}

// replay applies one v1 AOF record. Records are space-separated:
//
//	SET key val | DEL key | HSET key field val | HDEL key field |
//	SADD key member | SREM key member | INCR key delta
func (s *Store) replay(rec string) error {
	parts := strings.Split(rec, " ")
	if len(parts) < 2 {
		return fmt.Errorf("malformed record %q", rec)
	}
	op := parts[0]
	key, err := dec(parts[1])
	if err != nil {
		return fmt.Errorf("bad key encoding: %w", err)
	}
	sh := s.shard(key)
	k := string(key)
	arg := func(i int) ([]byte, error) {
		if i >= len(parts) {
			return nil, fmt.Errorf("record %q missing argument %d", rec, i)
		}
		return dec(parts[i])
	}
	switch op {
	case "SET":
		v, err := arg(2)
		if err != nil {
			return err
		}
		sh.strings[k] = v
	case "DEL":
		delete(sh.strings, k)
		delete(sh.hashes, k)
		delete(sh.sets, k)
		delete(sh.counters, k)
		delete(sh.zsets, k)
	case "HSET":
		f, err := arg(2)
		if err != nil {
			return err
		}
		v, err := arg(3)
		if err != nil {
			return err
		}
		h := sh.hashes[k]
		if h == nil {
			h = make(map[string][]byte)
			sh.hashes[k] = h
		}
		h[string(f)] = v
	case "HDEL":
		f, err := arg(2)
		if err != nil {
			return err
		}
		delete(sh.hashes[k], string(f))
	case "SADD":
		m, err := arg(2)
		if err != nil {
			return err
		}
		set := sh.sets[k]
		if set == nil {
			set = make(map[string]struct{})
			sh.sets[k] = set
		}
		set[string(m)] = struct{}{}
	case "SREM":
		m, err := arg(2)
		if err != nil {
			return err
		}
		delete(sh.sets[k], string(m))
	case "INCR":
		d, err := arg(2)
		if err != nil {
			return err
		}
		var delta int64
		if _, err := fmt.Sscanf(string(d), "%d", &delta); err != nil {
			return fmt.Errorf("bad INCR delta: %w", err)
		}
		sh.counters[k] += delta
	case "ZADD", "ZREM":
		return s.replayZ(op, key, parts)
	default:
		return fmt.Errorf("unknown op %q", op)
	}
	return nil
}
