// WAL-backed persistence: the binary op codec, recovery (snapshot +
// parallel tail replay), background snapshot/compaction, and migration
// from the v1 text append-only file.
//
// Frame format: one op byte followed by wirefmt fields, key first — the
// key leads so recovery can route a frame to its lock stripe without
// decoding the rest. A snapshot payload is a concatenation of
// length-prefixed frames describing the full state.

package kvstore

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"datablinder/internal/conc"
	"datablinder/internal/store/wal"
	"datablinder/internal/wirefmt"
)

// Op codes for persisted mutations.
const (
	opSet byte = iota + 1
	opDel
	opHSet
	opHDel
	opSAdd
	opSRem
	opIncr
	opZAdd
	opZRem
	opMax = opZRem
)

// DefaultCompactBytes is the sealed-log size that triggers a background
// snapshot+compaction when Options.CompactBytes is zero.
const DefaultCompactBytes = 64 << 20

// Options tunes persistence. The zero value is a sensible default
// (interval fsync, 16 MiB segments, compaction at 64 MiB of sealed log).
type Options struct {
	// Fsync selects the durability policy (zero value: wal.FsyncInterval).
	Fsync wal.Policy
	// SyncInterval is the interval-policy flush cadence (0 = 1s).
	SyncInterval time.Duration
	// SegmentSize rotates log segments at this size (0 = 16 MiB).
	SegmentSize int64
	// Strict makes a torn log tail a fatal Open error instead of
	// truncating at the last valid record.
	Strict bool
	// CompactBytes triggers a background snapshot once the sealed log
	// exceeds this size (0 = 64 MiB; negative disables auto-compaction).
	CompactBytes int64
	// LegacyAOF names a v1 text append-only file to migrate when the WAL
	// directory is empty (the old cloud layout kept "<dir>/index.aof"
	// beside the doc directory). The path itself is also checked: if it is
	// a regular file, it is treated as a v1 AOF and migrated in place.
	LegacyAOF string
}

func (o Options) withDefaults() Options {
	if o.CompactBytes == 0 {
		o.CompactBytes = DefaultCompactBytes
	}
	return o
}

// Open returns a store persisted under path (a directory of log segments
// and snapshots; created if missing), replaying any existing state. A v1
// text AOF — either at path itself or at Options.LegacyAOF — is migrated
// into the log on first open and retired with a suffix rename.
func Open(path string, options ...Options) (*Store, error) {
	var opts Options
	if len(options) > 0 {
		opts = options[0]
	}
	opts = opts.withDefaults()
	s := New()
	s.opts = opts

	migrated := false
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		// v1 layout: path is the text AOF itself. Parse before renaming so
		// a corrupt file is rejected untouched.
		if err := s.loadLegacyAOF(path); err != nil {
			return nil, err
		}
		if err := os.Rename(path, path+".legacy"); err != nil {
			return nil, fmt.Errorf("kvstore: retiring legacy AOF: %w", err)
		}
		migrated = true
	}

	l, err := wal.Open(path, wal.Options{
		Fsync:        opts.Fsync,
		SyncInterval: opts.SyncInterval,
		SegmentSize:  opts.SegmentSize,
		Strict:       opts.Strict,
	})
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	if !migrated && opts.LegacyAOF != "" && l.Empty() {
		if fi, err := os.Stat(opts.LegacyAOF); err == nil && fi.Mode().IsRegular() {
			if err := s.loadLegacyAOF(opts.LegacyAOF); err != nil {
				l.Close()
				return nil, err
			}
			if err := os.Rename(opts.LegacyAOF, opts.LegacyAOF+".migrated"); err != nil {
				l.Close()
				return nil, fmt.Errorf("kvstore: retiring legacy AOF: %w", err)
			}
			migrated = true
		}
	}
	if err := s.recover(l); err != nil {
		l.Close()
		return nil, err
	}
	s.wal = l
	s.seq.Store(l.MaxSeq())
	if migrated {
		// Persist the migrated state immediately: the retired text file is
		// never read again, so the log must own a full copy from day one.
		if err := s.Compact(); err != nil {
			l.Close()
			return nil, fmt.Errorf("kvstore: snapshotting migrated state: %w", err)
		}
	}
	return s, nil
}

// WAL exposes the underlying log for stats, benchmarks, and the planned
// replica catch-up protocol. Nil for in-memory stores.
func (s *Store) WAL() *wal.Log { return s.wal }

// claim reserves the next commit sequence and registers an in-flight
// append. Callers must hold the key's stripe lock: that is what orders
// same-key sequences, and what lets Close drain claimants by cycling the
// stripe locks. Returns ok=false when the store has no persistence.
func (s *Store) claim() (uint64, bool) {
	if s.wal == nil {
		return 0, false
	}
	s.wg.Add(1)
	return s.seq.Add(1), true
}

// logFrame appends one claimed frame to the log. Runs outside any stripe
// lock: under fsync=always this blocks on a group commit, and readers of
// the same stripe must not wait behind it.
func (s *Store) logFrame(seq uint64, frame []byte) error {
	err := s.wal.Append(seq, frame)
	s.wg.Done()
	if err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	s.maybeCompact()
	return nil
}

// framePool recycles frame-encoding buffers on the persisted write path.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func (s *Store) log1(seq uint64, op byte, key []byte) error {
	bp := framePool.Get().(*[]byte)
	b := append((*bp)[:0], op)
	b = wirefmt.AppendBytes(b, key)
	err := s.logFrame(seq, b)
	*bp = b
	framePool.Put(bp)
	return err
}

func (s *Store) log2(seq uint64, op byte, key, a []byte) error {
	bp := framePool.Get().(*[]byte)
	b := append((*bp)[:0], op)
	b = wirefmt.AppendBytes(b, key)
	b = wirefmt.AppendBytes(b, a)
	err := s.logFrame(seq, b)
	*bp = b
	framePool.Put(bp)
	return err
}

func (s *Store) log3(seq uint64, op byte, key, a, c []byte) error {
	bp := framePool.Get().(*[]byte)
	b := append((*bp)[:0], op)
	b = wirefmt.AppendBytes(b, key)
	b = wirefmt.AppendBytes(b, a)
	b = wirefmt.AppendBytes(b, c)
	err := s.logFrame(seq, b)
	*bp = b
	framePool.Put(bp)
	return err
}

func (s *Store) logIncr(seq uint64, key []byte, delta int64) error {
	bp := framePool.Get().(*[]byte)
	b := append((*bp)[:0], opIncr)
	b = wirefmt.AppendBytes(b, key)
	b = wirefmt.AppendInt64(b, delta)
	err := s.logFrame(seq, b)
	*bp = b
	framePool.Put(bp)
	return err
}

// frameShard routes a frame to its lock stripe by peeking the leading key.
func frameShard(frame []byte) (int, error) {
	if len(frame) < 2 || frame[0] < opSet || frame[0] > opMax {
		return 0, fmt.Errorf("kvstore: malformed frame (%d bytes)", len(frame))
	}
	r := wirefmt.GetReader(frame[1:])
	key := r.Bytes()
	err := r.Err()
	wirefmt.PutReader(r)
	if err != nil {
		return 0, fmt.Errorf("kvstore: malformed frame key: %w", err)
	}
	return shardIndex(key), nil
}

// applyFrame decodes one frame and mutates sh. Recovery-only: the caller
// owns the shard exclusively, and the frame's backing memory, so decoded
// slices are stored without copying.
func (s *Store) applyFrame(sh *shard, frame []byte) error {
	r := wirefmt.GetReader(frame[1:])
	defer wirefmt.PutReader(r)
	k := r.String()
	switch frame[0] {
	case opSet:
		v := r.Bytes()
		if err := r.Finish(); err != nil {
			return err
		}
		sh.strings[k] = v
	case opDel:
		if err := r.Finish(); err != nil {
			return err
		}
		delete(sh.strings, k)
		delete(sh.hashes, k)
		delete(sh.sets, k)
		delete(sh.counters, k)
		delete(sh.zsets, k)
	case opHSet:
		f := r.String()
		v := r.Bytes()
		if err := r.Finish(); err != nil {
			return err
		}
		h := sh.hashes[k]
		if h == nil {
			h = make(map[string][]byte)
			sh.hashes[k] = h
		}
		h[f] = v
	case opHDel:
		f := r.String()
		if err := r.Finish(); err != nil {
			return err
		}
		delete(sh.hashes[k], f)
	case opSAdd:
		m := r.String()
		if err := r.Finish(); err != nil {
			return err
		}
		set := sh.sets[k]
		if set == nil {
			set = make(map[string]struct{})
			sh.sets[k] = set
		}
		set[m] = struct{}{}
	case opSRem:
		m := r.String()
		if err := r.Finish(); err != nil {
			return err
		}
		delete(sh.sets[k], m)
	case opIncr:
		d := r.Int64()
		if err := r.Finish(); err != nil {
			return err
		}
		sh.counters[k] += d
	case opZAdd:
		score := r.Bytes()
		member := r.Bytes()
		if err := r.Finish(); err != nil {
			return err
		}
		sh.zinsert(k, score, member)
	case opZRem:
		score := r.Bytes()
		member := r.Bytes()
		if err := r.Finish(); err != nil {
			return err
		}
		sh.zremove(k, score, member)
	default:
		return fmt.Errorf("kvstore: unknown op %d", frame[0])
	}
	return nil
}

// recover loads the snapshot and replays the log tail, bucketing frames by
// lock stripe and applying all stripes concurrently. Log records may sit
// out of sequence order in the file (appends race outside the stripe
// locks), so each stripe's tail is sorted by sequence before applying.
func (s *Store) recover(l *wal.Log) error {
	snap, snapSeq, hasSnap, err := l.LoadSnapshot()
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	var snapFrames [numShards][][]byte
	if hasSnap {
		r := wirefmt.NewReader(snap)
		for r.Len() > 0 {
			frame := r.Bytes()
			if r.Err() != nil {
				break
			}
			si, err := frameShard(frame)
			if err != nil {
				return fmt.Errorf("kvstore: snapshot seq %d: %w", snapSeq, err)
			}
			snapFrames[si] = append(snapFrames[si], frame)
		}
		if err := r.Finish(); err != nil {
			return fmt.Errorf("kvstore: corrupt snapshot: %w", err)
		}
	}
	type rec struct {
		seq   uint64
		frame []byte
	}
	var tail [numShards][]rec
	if err := l.Replay(func(seq uint64, frame []byte) error {
		si, err := frameShard(frame)
		if err != nil {
			return err
		}
		tail[si] = append(tail[si], rec{seq, frame})
		return nil
	}); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	return conc.ForEach(context.Background(), numShards, 0, func(_ context.Context, i int) error {
		sh := &s.shards[i]
		for _, frame := range snapFrames[i] {
			if err := s.applyFrame(sh, frame); err != nil {
				return fmt.Errorf("kvstore: snapshot frame: %w", err)
			}
		}
		t := tail[i]
		sort.Slice(t, func(a, b int) bool { return t[a].seq < t[b].seq })
		for _, rc := range t {
			if err := s.applyFrame(sh, rc.frame); err != nil {
				return fmt.Errorf("kvstore: log record seq %d: %w", rc.seq, err)
			}
		}
		return nil
	})
}

// serializeLocked encodes the full store state as a snapshot payload. The
// caller holds every stripe lock.
func (s *Store) serializeLocked() []byte {
	b := make([]byte, 0, 1<<16)
	var frame []byte
	for i := range s.shards {
		sh := &s.shards[i]
		for k, v := range sh.strings {
			frame = append(frame[:0], opSet)
			frame = wirefmt.AppendString(frame, k)
			frame = wirefmt.AppendBytes(frame, v)
			b = wirefmt.AppendBytes(b, frame)
		}
		for k, h := range sh.hashes {
			for f, v := range h {
				frame = append(frame[:0], opHSet)
				frame = wirefmt.AppendString(frame, k)
				frame = wirefmt.AppendString(frame, f)
				frame = wirefmt.AppendBytes(frame, v)
				b = wirefmt.AppendBytes(b, frame)
			}
		}
		for k, set := range sh.sets {
			for m := range set {
				frame = append(frame[:0], opSAdd)
				frame = wirefmt.AppendString(frame, k)
				frame = wirefmt.AppendString(frame, m)
				b = wirefmt.AppendBytes(b, frame)
			}
		}
		for k, v := range sh.counters {
			frame = append(frame[:0], opIncr)
			frame = wirefmt.AppendString(frame, k)
			frame = wirefmt.AppendInt64(frame, v)
			b = wirefmt.AppendBytes(b, frame)
		}
		for k, z := range sh.zsets {
			for _, e := range z {
				frame = append(frame[:0], opZAdd)
				frame = wirefmt.AppendString(frame, k)
				frame = wirefmt.AppendBytes(frame, e.score)
				frame = wirefmt.AppendBytes(frame, e.member)
				b = wirefmt.AppendBytes(b, frame)
			}
		}
	}
	return b
}

// Compact writes a durable snapshot of the current state and drops the log
// segments it covers, bounding recovery to snapshot + tail. The store is
// frozen (every stripe locked) only while serializing; the snapshot write
// itself runs concurrently with new appends.
func (s *Store) Compact() error {
	if s.wal == nil {
		return nil
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	if s.closed.Load() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
		return ErrClosed
	}
	// Every claimed sequence's mutation is applied under its stripe lock,
	// so with all stripes held the state reflects exactly seq ≤ seqNow.
	seqNow := s.seq.Load()
	payload := s.serializeLocked()
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	if err := s.wal.WriteSnapshot(seqNow, payload); err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	return nil
}

// maybeCompact kicks off one background compaction when the sealed log has
// outgrown the configured bound.
func (s *Store) maybeCompact() {
	if s.opts.CompactBytes <= 0 || s.wal.SealedBytes() < s.opts.CompactBytes {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		s.Compact() //nolint:errcheck // best-effort; retried on the next trigger
	}()
}
