package kvstore

import (
	"bytes"
	"fmt"
	"sort"
)

// zentry is one sorted-set element: ordered by (score, member).
type zentry struct {
	score  []byte
	member []byte
}

// zless orders entries lexicographically by score, then member.
func zless(a, b zentry) bool {
	if c := bytes.Compare(a.score, b.score); c != 0 {
		return c < 0
	}
	return bytes.Compare(a.member, b.member) < 0
}

// zfind returns the insertion index of e and whether an equal entry exists.
func zfind(z []zentry, e zentry) (int, bool) {
	i := sort.Search(len(z), func(i int) bool { return !zless(z[i], e) })
	if i < len(z) && bytes.Equal(z[i].score, e.score) && bytes.Equal(z[i].member, e.member) {
		return i, true
	}
	return i, false
}

// zinsert adds (score, member) to the sorted set at k, reporting whether
// the set changed. The slices are stored as given; callers copy if needed.
func (sh *shard) zinsert(k string, score, member []byte) bool {
	e := zentry{score: score, member: member}
	z := sh.zsets[k]
	i, exists := zfind(z, e)
	if exists {
		return false
	}
	z = append(z, zentry{})
	copy(z[i+1:], z[i:])
	z[i] = e
	sh.zsets[k] = z
	return true
}

// zremove deletes (score, member) from the sorted set at k, reporting
// whether an entry was removed.
func (sh *shard) zremove(k string, score, member []byte) bool {
	z := sh.zsets[k]
	i, exists := zfind(z, zentry{score: score, member: member})
	if !exists {
		return false
	}
	sh.zsets[k] = append(z[:i], z[i+1:]...)
	return true
}

// ZAdd inserts (score, member) into the sorted set at key. Scores order
// lexicographically — fixed-width big-endian encodings (like OPE
// ciphertexts) therefore order numerically. Duplicate (score, member)
// pairs are ignored.
func (s *Store) ZAdd(key, score, member []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	changed := sh.zinsert(string(key),
		append([]byte(nil), score...), append([]byte(nil), member...))
	var seq uint64
	ok := false
	if changed {
		seq, ok = s.claim()
	}
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log3(seq, opZAdd, key, score, member)
}

// ZRem removes (score, member) from the sorted set at key.
func (s *Store) ZRem(key, score, member []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	changed := sh.zremove(string(key), score, member)
	var seq uint64
	ok := false
	if changed {
		seq, ok = s.claim()
	}
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log3(seq, opZRem, key, score, member)
}

// ZPair is one (score, member) element returned by range queries.
type ZPair struct {
	Score  []byte
	Member []byte
}

// ZRangeByScore returns the elements whose score lies between lo and hi.
// Nil bounds are unbounded; inclusivity is per bound.
func (s *Store) ZRangeByScore(key, lo, hi []byte, loInc, hiInc bool) ([]ZPair, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	z := sh.zsets[string(key)]
	start := 0
	if lo != nil {
		start = sort.Search(len(z), func(i int) bool {
			c := bytes.Compare(z[i].score, lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(z)
	if hi != nil {
		end = sort.Search(len(z), func(i int) bool {
			c := bytes.Compare(z[i].score, hi)
			if hiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil, nil
	}
	out := make([]ZPair, 0, end-start)
	for _, e := range z[start:end] {
		out = append(out, ZPair{
			Score:  append([]byte(nil), e.score...),
			Member: append([]byte(nil), e.member...),
		})
	}
	return out, nil
}

// ZCard returns the cardinality of the sorted set at key.
func (s *Store) ZCard(key []byte) (int, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return len(sh.zsets[string(key)]), nil
}

// replayZ applies ZADD/ZREM v1 AOF records; called from replay.
func (s *Store) replayZ(op string, key []byte, parts []string) error {
	if len(parts) < 4 {
		return fmt.Errorf("malformed %s record", op)
	}
	score, err := dec(parts[2])
	if err != nil {
		return err
	}
	member, err := dec(parts[3])
	if err != nil {
		return err
	}
	sh := s.shard(key)
	switch op {
	case "ZADD":
		sh.zinsert(string(key), score, member)
	case "ZREM":
		sh.zremove(string(key), score, member)
	}
	return nil
}
