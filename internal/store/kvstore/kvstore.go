// Package kvstore implements a Redis-like key-value store with the basic
// constructions DataBlinder tactics build custom secure indexes from:
// byte-string values, hash maps, sets, and counters. The original system
// deployed Redis "in a semi-persistent durability mode" on both the gateway
// and the cloud; this package provides the same contract in-process, with
// optional append-only-file persistence.
//
// All operations are safe for concurrent use. The store is striped into
// independently locked shards (the key hashes to a shard), so concurrent
// server dispatch on different keys does not contend on one lock. AOF
// records are serialized behind a dedicated writer mutex; operations on
// the same key serialize on their shard lock before logging, and
// operations on different keys commute, so replay order is equivalent.
package kvstore

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// numShards is the striping factor. Power of two, sized well above typical
// server-dispatch concurrency so shard collisions are rare.
const numShards = 32

// shard is one independently locked slice of the keyspace.
type shard struct {
	mu       sync.RWMutex
	strings  map[string][]byte
	hashes   map[string]map[string][]byte
	sets     map[string]map[string]struct{}
	counters map[string]int64
	zsets    map[string][]zentry
}

// Store is an in-memory key-value store with optional AOF persistence.
// The zero value is not usable; construct with New or Open.
type Store struct {
	shards [numShards]shard
	closed atomic.Bool

	// aofMu serializes AOF appends across shards; aof and f are set once
	// at Open and never change afterwards.
	aofMu sync.Mutex
	aof   *bufio.Writer
	f     *os.File
}

// New returns an empty in-memory store with no persistence.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.strings = make(map[string][]byte)
		sh.hashes = make(map[string]map[string][]byte)
		sh.sets = make(map[string]map[string]struct{})
		sh.counters = make(map[string]int64)
		sh.zsets = make(map[string][]zentry)
	}
	return s
}

// shard returns the shard owning key.
func (s *Store) shard(key []byte) *shard {
	// FNV-1a over the key bytes.
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return &s.shards[h%numShards]
}

// Open returns a store backed by an append-only file at path, replaying any
// existing log — the "semi-persistent durability mode" of the paper's Redis
// deployment. Writes are buffered; call Sync or Close to flush.
func Open(path string) (*Store, error) {
	s := New()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening AOF: %w", err)
	}
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for scanner.Scan() {
		line++
		if err := s.replay(scanner.Text()); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvstore: AOF line %d: %w", line, err)
		}
	}
	if err := scanner.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: reading AOF: %w", err)
	}
	s.f = f
	s.aof = bufio.NewWriter(f)
	return s, nil
}

func enc(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

func dec(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }

// replay applies one AOF record. Records are space-separated:
//
//	SET key val | DEL key | HSET key field val | HDEL key field |
//	SADD key member | SREM key member | INCR key delta
func (s *Store) replay(rec string) error {
	parts := strings.Split(rec, " ")
	if len(parts) < 2 {
		return fmt.Errorf("malformed record %q", rec)
	}
	op := parts[0]
	key, err := dec(parts[1])
	if err != nil {
		return fmt.Errorf("bad key encoding: %w", err)
	}
	sh := s.shard(key)
	k := string(key)
	arg := func(i int) ([]byte, error) {
		if i >= len(parts) {
			return nil, fmt.Errorf("record %q missing argument %d", rec, i)
		}
		return dec(parts[i])
	}
	switch op {
	case "SET":
		v, err := arg(2)
		if err != nil {
			return err
		}
		sh.strings[k] = v
	case "DEL":
		delete(sh.strings, k)
		delete(sh.hashes, k)
		delete(sh.sets, k)
		delete(sh.counters, k)
		delete(sh.zsets, k)
	case "HSET":
		f, err := arg(2)
		if err != nil {
			return err
		}
		v, err := arg(3)
		if err != nil {
			return err
		}
		h := sh.hashes[k]
		if h == nil {
			h = make(map[string][]byte)
			sh.hashes[k] = h
		}
		h[string(f)] = v
	case "HDEL":
		f, err := arg(2)
		if err != nil {
			return err
		}
		delete(sh.hashes[k], string(f))
	case "SADD":
		m, err := arg(2)
		if err != nil {
			return err
		}
		set := sh.sets[k]
		if set == nil {
			set = make(map[string]struct{})
			sh.sets[k] = set
		}
		set[string(m)] = struct{}{}
	case "SREM":
		m, err := arg(2)
		if err != nil {
			return err
		}
		delete(sh.sets[k], string(m))
	case "INCR":
		d, err := arg(2)
		if err != nil {
			return err
		}
		var delta int64
		if _, err := fmt.Sscanf(string(d), "%d", &delta); err != nil {
			return fmt.Errorf("bad INCR delta: %w", err)
		}
		sh.counters[k] += delta
	case "ZADD", "ZREM":
		return s.replayZ(op, key, parts)
	default:
		return fmt.Errorf("unknown op %q", op)
	}
	return nil
}

// log appends a record to the AOF if persistence is enabled. Callers hold
// their shard lock, which serializes same-key records; records for
// different keys may interleave in any order, which is safe because they
// commute under replay.
func (s *Store) log(op string, args ...[]byte) {
	if s.aof == nil {
		return
	}
	rec := make([]string, 0, len(args)+1)
	rec = append(rec, op)
	for _, a := range args {
		rec = append(rec, enc(a))
	}
	line := strings.Join(rec, " ")
	s.aofMu.Lock()
	fmt.Fprintln(s.aof, line)
	s.aofMu.Unlock()
}

// Set stores value under key.
func (s *Store) Set(key, value []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	cp := append([]byte(nil), value...)
	sh.strings[string(key)] = cp
	s.log("SET", key, value)
	return nil
}

// Get returns the value for key and whether it exists.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	v, ok := sh.strings[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Del removes key from all namespaces (string, hash, set, counter).
func (s *Store) Del(key []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	k := string(key)
	delete(sh.strings, k)
	delete(sh.hashes, k)
	delete(sh.sets, k)
	delete(sh.counters, k)
	delete(sh.zsets, k)
	s.log("DEL", key)
	return nil
}

// HSet stores value under (key, field) in a hash map.
func (s *Store) HSet(key, field, value []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	h := sh.hashes[string(key)]
	if h == nil {
		h = make(map[string][]byte)
		sh.hashes[string(key)] = h
	}
	h[string(field)] = append([]byte(nil), value...)
	s.log("HSET", key, field, value)
	return nil
}

// HGet returns the value for (key, field) and whether it exists.
func (s *Store) HGet(key, field []byte) ([]byte, bool, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	v, ok := sh.hashes[string(key)][string(field)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// HDel removes field from the hash at key.
func (s *Store) HDel(key, field []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	delete(sh.hashes[string(key)], string(field))
	s.log("HDEL", key, field)
	return nil
}

// HLen returns the number of fields in the hash at key.
func (s *Store) HLen(key []byte) (int, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return len(sh.hashes[string(key)]), nil
}

// HFields returns the field names of the hash at key, sorted.
func (s *Store) HFields(key []byte) ([][]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	h := sh.hashes[string(key)]
	names := make([]string, 0, len(h))
	for f := range h {
		names = append(names, f)
	}
	sort.Strings(names)
	out := make([][]byte, len(names))
	for i, f := range names {
		out[i] = []byte(f)
	}
	return out, nil
}

// SAdd adds member to the set at key.
func (s *Store) SAdd(key, member []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	set := sh.sets[string(key)]
	if set == nil {
		set = make(map[string]struct{})
		sh.sets[string(key)] = set
	}
	set[string(member)] = struct{}{}
	s.log("SADD", key, member)
	return nil
}

// SRem removes member from the set at key.
func (s *Store) SRem(key, member []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	delete(sh.sets[string(key)], string(member))
	s.log("SREM", key, member)
	return nil
}

// SMembers returns the members of the set at key, sorted.
func (s *Store) SMembers(key []byte) ([][]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	set := sh.sets[string(key)]
	members := make([]string, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Strings(members)
	out := make([][]byte, len(members))
	for i, m := range members {
		out[i] = []byte(m)
	}
	return out, nil
}

// SCard returns the cardinality of the set at key.
func (s *Store) SCard(key []byte) (int, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return len(sh.sets[string(key)]), nil
}

// SIsMember reports whether member is in the set at key.
func (s *Store) SIsMember(key, member []byte) (bool, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return false, ErrClosed
	}
	_, ok := sh.sets[string(key)][string(member)]
	return ok, nil
}

// Incr adds delta to the counter at key and returns the new value.
func (s *Store) Incr(key []byte, delta int64) (int64, error) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	sh.counters[string(key)] += delta
	s.log("INCR", key, []byte(fmt.Sprintf("%d", delta)))
	return sh.counters[string(key)], nil
}

// Counter returns the current counter value at key (0 if unset).
func (s *Store) Counter(key []byte) (int64, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return sh.counters[string(key)], nil
}

// Keys returns all string keys with the given prefix, sorted. It exists for
// administrative tooling and tests; tactics never enumerate keys.
func (s *Store) Keys(prefix []byte) ([][]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	var keys []string
	p := string(prefix)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.strings {
			if strings.HasPrefix(k, p) {
				keys = append(keys, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out, nil
}

// Len returns the total number of top-level keys across all namespaces.
func (s *Store) Len() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.strings) + len(sh.hashes) + len(sh.sets) + len(sh.counters) + len(sh.zsets)
		sh.mu.RUnlock()
	}
	return n, nil
}

// NamespaceStats summarizes one slice of the keyspace. Namespaces are the
// first '/'-separated segment of the key ("detidx", "mitra", "aggidx", …)
// — exactly how the tactics partition their index structures — so the
// stats read as one row per secure index family.
type NamespaceStats struct {
	// Keys counts top-level keys (strings, hashes, sets, counters, zsets).
	Keys int `json:"keys"`
	// Items counts leaf entries: hash fields, set members, zset elements,
	// plus one per string/counter key.
	Items int `json:"items"`
	// Bytes approximates payload size (keys + stored values).
	Bytes int64 `json:"bytes"`
}

// namespaceOf extracts the stats namespace from a key.
func namespaceOf(k string) string {
	if i := strings.IndexByte(k, '/'); i >= 0 {
		return k[:i]
	}
	return k
}

// Stats reports per-namespace keyspace statistics. The sharding benchmark
// uses it to verify routing spreads each index family evenly across cloud
// nodes; it is also exported over the admin RPC for the -pprof style debug
// surface.
func (s *Store) Stats() (map[string]NamespaceStats, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	out := make(map[string]NamespaceStats)
	add := func(k string, items int, bytes int64) {
		ns := out[namespaceOf(k)]
		ns.Keys++
		ns.Items += items
		ns.Bytes += int64(len(k)) + bytes
		out[namespaceOf(k)] = ns
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.strings {
			add(k, 1, int64(len(v)))
		}
		for k, h := range sh.hashes {
			var b int64
			for f, v := range h {
				b += int64(len(f) + len(v))
			}
			add(k, len(h), b)
		}
		for k, set := range sh.sets {
			var b int64
			for m := range set {
				b += int64(len(m))
			}
			add(k, len(set), b)
		}
		for k := range sh.counters {
			add(k, 1, 8)
		}
		for k, z := range sh.zsets {
			var b int64
			for _, e := range z {
				b += int64(len(e.score) + len(e.member))
			}
			add(k, len(z), b)
		}
		sh.mu.RUnlock()
	}
	return out, nil
}

// Sync flushes buffered AOF writes to the operating system.
func (s *Store) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.aof == nil {
		return nil
	}
	s.aofMu.Lock()
	defer s.aofMu.Unlock()
	if err := s.aof.Flush(); err != nil {
		return fmt.Errorf("kvstore: flushing AOF: %w", err)
	}
	return nil
}

// Close flushes and closes the store. Subsequent operations return
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Drain: an in-flight operation that passed its closed check still
	// holds its shard lock until it has appended to the AOF; cycling every
	// shard lock waits all of them out before the final flush.
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].mu.Unlock() //nolint:staticcheck // empty critical section is the drain
	}
	s.aofMu.Lock()
	defer s.aofMu.Unlock()
	if s.aof != nil {
		if err := s.aof.Flush(); err != nil {
			s.f.Close()
			return fmt.Errorf("kvstore: flushing AOF on close: %w", err)
		}
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("kvstore: closing AOF: %w", err)
		}
	}
	return nil
}
