// Package kvstore implements a Redis-like key-value store with the basic
// constructions DataBlinder tactics build custom secure indexes from:
// byte-string values, hash maps, sets, and counters. The original system
// deployed Redis "in a semi-persistent durability mode" on both the gateway
// and the cloud; this package provides the same contract in-process, with
// optional append-only-file persistence.
//
// All operations are safe for concurrent use.
package kvstore

import (
	"bufio"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// Store is an in-memory key-value store with optional AOF persistence.
// The zero value is not usable; construct with New or Open.
type Store struct {
	mu       sync.RWMutex
	strings  map[string][]byte
	hashes   map[string]map[string][]byte
	sets     map[string]map[string]struct{}
	counters map[string]int64
	zsets    map[string][]zentry
	closed   bool

	aof *bufio.Writer
	f   *os.File
}

// New returns an empty in-memory store with no persistence.
func New() *Store {
	return &Store{
		strings:  make(map[string][]byte),
		hashes:   make(map[string]map[string][]byte),
		sets:     make(map[string]map[string]struct{}),
		counters: make(map[string]int64),
		zsets:    make(map[string][]zentry),
	}
}

// Open returns a store backed by an append-only file at path, replaying any
// existing log — the "semi-persistent durability mode" of the paper's Redis
// deployment. Writes are buffered; call Sync or Close to flush.
func Open(path string) (*Store, error) {
	s := New()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening AOF: %w", err)
	}
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for scanner.Scan() {
		line++
		if err := s.replay(scanner.Text()); err != nil {
			f.Close()
			return nil, fmt.Errorf("kvstore: AOF line %d: %w", line, err)
		}
	}
	if err := scanner.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: reading AOF: %w", err)
	}
	s.f = f
	s.aof = bufio.NewWriter(f)
	return s, nil
}

func enc(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

func dec(s string) ([]byte, error) { return base64.StdEncoding.DecodeString(s) }

// replay applies one AOF record. Records are space-separated:
//
//	SET key val | DEL key | HSET key field val | HDEL key field |
//	SADD key member | SREM key member | INCR key delta
func (s *Store) replay(rec string) error {
	parts := strings.Split(rec, " ")
	if len(parts) < 2 {
		return fmt.Errorf("malformed record %q", rec)
	}
	op := parts[0]
	key, err := dec(parts[1])
	if err != nil {
		return fmt.Errorf("bad key encoding: %w", err)
	}
	k := string(key)
	arg := func(i int) ([]byte, error) {
		if i >= len(parts) {
			return nil, fmt.Errorf("record %q missing argument %d", rec, i)
		}
		return dec(parts[i])
	}
	switch op {
	case "SET":
		v, err := arg(2)
		if err != nil {
			return err
		}
		s.strings[k] = v
	case "DEL":
		delete(s.strings, k)
		delete(s.hashes, k)
		delete(s.sets, k)
		delete(s.counters, k)
		delete(s.zsets, k)
	case "HSET":
		f, err := arg(2)
		if err != nil {
			return err
		}
		v, err := arg(3)
		if err != nil {
			return err
		}
		h := s.hashes[k]
		if h == nil {
			h = make(map[string][]byte)
			s.hashes[k] = h
		}
		h[string(f)] = v
	case "HDEL":
		f, err := arg(2)
		if err != nil {
			return err
		}
		delete(s.hashes[k], string(f))
	case "SADD":
		m, err := arg(2)
		if err != nil {
			return err
		}
		set := s.sets[k]
		if set == nil {
			set = make(map[string]struct{})
			s.sets[k] = set
		}
		set[string(m)] = struct{}{}
	case "SREM":
		m, err := arg(2)
		if err != nil {
			return err
		}
		delete(s.sets[k], string(m))
	case "INCR":
		d, err := arg(2)
		if err != nil {
			return err
		}
		var delta int64
		if _, err := fmt.Sscanf(string(d), "%d", &delta); err != nil {
			return fmt.Errorf("bad INCR delta: %w", err)
		}
		s.counters[k] += delta
	case "ZADD", "ZREM":
		return s.replayZ(op, key, parts)
	default:
		return fmt.Errorf("unknown op %q", op)
	}
	return nil
}

// log appends a record to the AOF if persistence is enabled. Caller must
// hold s.mu.
func (s *Store) log(op string, args ...[]byte) {
	if s.aof == nil {
		return
	}
	rec := make([]string, 0, len(args)+1)
	rec = append(rec, op)
	for _, a := range args {
		rec = append(rec, enc(a))
	}
	fmt.Fprintln(s.aof, strings.Join(rec, " "))
}

// Set stores value under key.
func (s *Store) Set(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cp := append([]byte(nil), value...)
	s.strings[string(key)] = cp
	s.log("SET", key, value)
	return nil
}

// Get returns the value for key and whether it exists.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.strings[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Del removes key from all namespaces (string, hash, set, counter).
func (s *Store) Del(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	k := string(key)
	delete(s.strings, k)
	delete(s.hashes, k)
	delete(s.sets, k)
	delete(s.counters, k)
	delete(s.zsets, k)
	s.log("DEL", key)
	return nil
}

// HSet stores value under (key, field) in a hash map.
func (s *Store) HSet(key, field, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	h := s.hashes[string(key)]
	if h == nil {
		h = make(map[string][]byte)
		s.hashes[string(key)] = h
	}
	h[string(field)] = append([]byte(nil), value...)
	s.log("HSET", key, field, value)
	return nil
}

// HGet returns the value for (key, field) and whether it exists.
func (s *Store) HGet(key, field []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.hashes[string(key)][string(field)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// HDel removes field from the hash at key.
func (s *Store) HDel(key, field []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.hashes[string(key)], string(field))
	s.log("HDEL", key, field)
	return nil
}

// HLen returns the number of fields in the hash at key.
func (s *Store) HLen(key []byte) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.hashes[string(key)]), nil
}

// HFields returns the field names of the hash at key, sorted.
func (s *Store) HFields(key []byte) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	h := s.hashes[string(key)]
	names := make([]string, 0, len(h))
	for f := range h {
		names = append(names, f)
	}
	sort.Strings(names)
	out := make([][]byte, len(names))
	for i, f := range names {
		out[i] = []byte(f)
	}
	return out, nil
}

// SAdd adds member to the set at key.
func (s *Store) SAdd(key, member []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	set := s.sets[string(key)]
	if set == nil {
		set = make(map[string]struct{})
		s.sets[string(key)] = set
	}
	set[string(member)] = struct{}{}
	s.log("SADD", key, member)
	return nil
}

// SRem removes member from the set at key.
func (s *Store) SRem(key, member []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.sets[string(key)], string(member))
	s.log("SREM", key, member)
	return nil
}

// SMembers returns the members of the set at key, sorted.
func (s *Store) SMembers(key []byte) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	set := s.sets[string(key)]
	members := make([]string, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Strings(members)
	out := make([][]byte, len(members))
	for i, m := range members {
		out[i] = []byte(m)
	}
	return out, nil
}

// SCard returns the cardinality of the set at key.
func (s *Store) SCard(key []byte) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.sets[string(key)]), nil
}

// SIsMember reports whether member is in the set at key.
func (s *Store) SIsMember(key, member []byte) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.sets[string(key)][string(member)]
	return ok, nil
}

// Incr adds delta to the counter at key and returns the new value.
func (s *Store) Incr(key []byte, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	s.counters[string(key)] += delta
	s.log("INCR", key, []byte(fmt.Sprintf("%d", delta)))
	return s.counters[string(key)], nil
}

// Counter returns the current counter value at key (0 if unset).
func (s *Store) Counter(key []byte) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.counters[string(key)], nil
}

// Keys returns all string keys with the given prefix, sorted. It exists for
// administrative tooling and tests; tactics never enumerate keys.
func (s *Store) Keys(prefix []byte) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	var keys []string
	p := string(prefix)
	for k := range s.strings {
		if strings.HasPrefix(k, p) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out, nil
}

// Len returns the total number of top-level keys across all namespaces.
func (s *Store) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	return len(s.strings) + len(s.hashes) + len(s.sets) + len(s.counters) + len(s.zsets), nil
}

// Sync flushes buffered AOF writes to the operating system.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.aof == nil {
		return nil
	}
	if err := s.aof.Flush(); err != nil {
		return fmt.Errorf("kvstore: flushing AOF: %w", err)
	}
	return nil
}

// Close flushes and closes the store. Subsequent operations return
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.aof != nil {
		if err := s.aof.Flush(); err != nil {
			s.f.Close()
			return fmt.Errorf("kvstore: flushing AOF on close: %w", err)
		}
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("kvstore: closing AOF: %w", err)
		}
	}
	return nil
}
