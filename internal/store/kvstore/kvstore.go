// Package kvstore implements a Redis-like key-value store with the basic
// constructions DataBlinder tactics build custom secure indexes from:
// byte-string values, hash maps, sets, and counters. The original system
// deployed Redis "in a semi-persistent durability mode" on both the gateway
// and the cloud; this package provides the same contract in-process, backed
// by the segmented binary write-ahead log in internal/store/wal.
//
// All operations are safe for concurrent use. The store is striped into
// independently locked shards (the key hashes to a shard), so concurrent
// server dispatch on different keys does not contend on one lock. A
// persisted mutation claims a store-wide commit sequence while holding its
// shard lock — fixing same-key order — but appends to the log *outside*
// the lock, so readers and same-shard writers never wait behind an fsync.
// Recovery re-orders by sequence within each stripe and replays all
// stripes in parallel.
package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"datablinder/internal/store/wal"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("kvstore: store is closed")

// numShards is the striping factor. Power of two, sized well above typical
// server-dispatch concurrency so shard collisions are rare.
const numShards = 32

// shard is one independently locked slice of the keyspace.
type shard struct {
	mu       sync.RWMutex
	strings  map[string][]byte
	hashes   map[string]map[string][]byte
	sets     map[string]map[string]struct{}
	counters map[string]int64
	zsets    map[string][]zentry
}

// Store is an in-memory key-value store with optional WAL persistence.
// The zero value is not usable; construct with New or Open.
type Store struct {
	shards [numShards]shard
	closed atomic.Bool

	// Persistence state (wal nil = in-memory only). seq is claimed under
	// the owning stripe lock; the log append happens after the lock is
	// released, tracked by wg so Close can wait out in-flight appends.
	wal        *wal.Log
	opts       Options
	seq        atomic.Uint64
	wg         sync.WaitGroup
	compacting atomic.Bool
}

// New returns an empty in-memory store with no persistence.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.strings = make(map[string][]byte)
		sh.hashes = make(map[string]map[string][]byte)
		sh.sets = make(map[string]map[string]struct{})
		sh.counters = make(map[string]int64)
		sh.zsets = make(map[string][]zentry)
	}
	return s
}

// shardIndex returns the stripe index owning key (FNV-1a over the bytes).
func shardIndex(key []byte) int {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h % numShards)
}

// shard returns the shard owning key.
func (s *Store) shard(key []byte) *shard {
	return &s.shards[shardIndex(key)]
}

// Set stores value under key.
func (s *Store) Set(key, value []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	sh.strings[string(key)] = append([]byte(nil), value...)
	seq, ok := s.claim()
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log2(seq, opSet, key, value)
}

// Get returns the value for key and whether it exists.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	v, ok := sh.strings[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Del removes key from all namespaces (string, hash, set, counter).
func (s *Store) Del(key []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	k := string(key)
	delete(sh.strings, k)
	delete(sh.hashes, k)
	delete(sh.sets, k)
	delete(sh.counters, k)
	delete(sh.zsets, k)
	seq, ok := s.claim()
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log1(seq, opDel, key)
}

// HSet stores value under (key, field) in a hash map.
func (s *Store) HSet(key, field, value []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	h := sh.hashes[string(key)]
	if h == nil {
		h = make(map[string][]byte)
		sh.hashes[string(key)] = h
	}
	h[string(field)] = append([]byte(nil), value...)
	seq, ok := s.claim()
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log3(seq, opHSet, key, field, value)
}

// HGet returns the value for (key, field) and whether it exists.
func (s *Store) HGet(key, field []byte) ([]byte, bool, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	v, ok := sh.hashes[string(key)][string(field)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// HDel removes field from the hash at key.
func (s *Store) HDel(key, field []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	delete(sh.hashes[string(key)], string(field))
	seq, ok := s.claim()
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log2(seq, opHDel, key, field)
}

// HLen returns the number of fields in the hash at key.
func (s *Store) HLen(key []byte) (int, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return len(sh.hashes[string(key)]), nil
}

// HFields returns the field names of the hash at key, sorted.
func (s *Store) HFields(key []byte) ([][]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	h := sh.hashes[string(key)]
	names := make([]string, 0, len(h))
	for f := range h {
		names = append(names, f)
	}
	sort.Strings(names)
	out := make([][]byte, len(names))
	for i, f := range names {
		out[i] = []byte(f)
	}
	return out, nil
}

// SAdd adds member to the set at key.
func (s *Store) SAdd(key, member []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	set := sh.sets[string(key)]
	if set == nil {
		set = make(map[string]struct{})
		sh.sets[string(key)] = set
	}
	set[string(member)] = struct{}{}
	seq, ok := s.claim()
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log2(seq, opSAdd, key, member)
}

// SRem removes member from the set at key.
func (s *Store) SRem(key, member []byte) error {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	delete(sh.sets[string(key)], string(member))
	seq, ok := s.claim()
	sh.mu.Unlock()
	if !ok {
		return nil
	}
	return s.log2(seq, opSRem, key, member)
}

// SMembers returns the members of the set at key, sorted.
func (s *Store) SMembers(key []byte) ([][]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	set := sh.sets[string(key)]
	members := make([]string, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Strings(members)
	out := make([][]byte, len(members))
	for i, m := range members {
		out[i] = []byte(m)
	}
	return out, nil
}

// SCard returns the cardinality of the set at key.
func (s *Store) SCard(key []byte) (int, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return len(sh.sets[string(key)]), nil
}

// SIsMember reports whether member is in the set at key.
func (s *Store) SIsMember(key, member []byte) (bool, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return false, ErrClosed
	}
	_, ok := sh.sets[string(key)][string(member)]
	return ok, nil
}

// Incr adds delta to the counter at key and returns the new value.
func (s *Store) Incr(key []byte, delta int64) (int64, error) {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return 0, ErrClosed
	}
	sh.counters[string(key)] += delta
	v := sh.counters[string(key)]
	seq, ok := s.claim()
	sh.mu.Unlock()
	if !ok {
		return v, nil
	}
	if err := s.logIncr(seq, key, delta); err != nil {
		return 0, err
	}
	return v, nil
}

// Counter returns the current counter value at key (0 if unset).
func (s *Store) Counter(key []byte) (int64, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return sh.counters[string(key)], nil
}

// Keys returns all string keys with the given prefix, sorted. It exists for
// administrative tooling and tests; tactics never enumerate keys.
func (s *Store) Keys(prefix []byte) ([][]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	var keys []string
	p := string(prefix)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.strings {
			if strings.HasPrefix(k, p) {
				keys = append(keys, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out, nil
}

// Len returns the total number of top-level keys across all namespaces.
func (s *Store) Len() (int, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.strings) + len(sh.hashes) + len(sh.sets) + len(sh.counters) + len(sh.zsets)
		sh.mu.RUnlock()
	}
	return n, nil
}

// NamespaceStats summarizes one slice of the keyspace. Namespaces are the
// first '/'-separated segment of the key ("detidx", "mitra", "aggidx", …)
// — exactly how the tactics partition their index structures — so the
// stats read as one row per secure index family.
type NamespaceStats struct {
	// Keys counts top-level keys (strings, hashes, sets, counters, zsets).
	Keys int `json:"keys"`
	// Items counts leaf entries: hash fields, set members, zset elements,
	// plus one per string/counter key.
	Items int `json:"items"`
	// Bytes approximates payload size (keys + stored values).
	Bytes int64 `json:"bytes"`
}

// namespaceOf extracts the stats namespace from a key.
func namespaceOf(k string) string {
	if i := strings.IndexByte(k, '/'); i >= 0 {
		return k[:i]
	}
	return k
}

// Stats reports per-namespace keyspace statistics. The sharding benchmark
// uses it to verify routing spreads each index family evenly across cloud
// nodes; it is also exported over the admin RPC for the -pprof style debug
// surface.
func (s *Store) Stats() (map[string]NamespaceStats, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	out := make(map[string]NamespaceStats)
	add := func(k string, items int, bytes int64) {
		ns := out[namespaceOf(k)]
		ns.Keys++
		ns.Items += items
		ns.Bytes += int64(len(k)) + bytes
		out[namespaceOf(k)] = ns
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.strings {
			add(k, 1, int64(len(v)))
		}
		for k, h := range sh.hashes {
			var b int64
			for f, v := range h {
				b += int64(len(f) + len(v))
			}
			add(k, len(h), b)
		}
		for k, set := range sh.sets {
			var b int64
			for m := range set {
				b += int64(len(m))
			}
			add(k, len(set), b)
		}
		for k := range sh.counters {
			add(k, 1, 8)
		}
		for k, z := range sh.zsets {
			var b int64
			for _, e := range z {
				b += int64(len(e.score) + len(e.member))
			}
			add(k, len(z), b)
		}
		sh.mu.RUnlock()
	}
	return out, nil
}

// Sync forces everything appended so far to stable storage.
func (s *Store) Sync() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("kvstore: sync: %w", err)
	}
	return nil
}

// Close flushes and closes the store. Subsequent operations return
// ErrClosed. Close is idempotent.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Drain: an operation that passed its closed check claims its commit
	// sequence under its shard lock, so cycling every shard lock waits out
	// all claimants; wg then waits out their in-flight log appends.
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].mu.Unlock() //nolint:staticcheck // empty critical section is the drain
	}
	s.wg.Wait()
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("kvstore: closing WAL: %w", err)
	}
	return nil
}
