package kvstore

import (
	"encoding/binary"
	"path/filepath"
	"testing"
	"testing/quick"
)

func score(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func TestZAddRangeByScore(t *testing.T) {
	s := New()
	for _, v := range []uint64{50, 10, 30, 20, 40} {
		if err := s.ZAdd([]byte("z"), score(v), []byte{byte(v)}); err != nil {
			t.Fatalf("ZAdd: %v", err)
		}
	}
	if n, _ := s.ZCard([]byte("z")); n != 5 {
		t.Fatalf("ZCard = %d", n)
	}

	tests := []struct {
		name         string
		lo, hi       []byte
		loInc, hiInc bool
		want         []uint64
	}{
		{"all", nil, nil, true, true, []uint64{10, 20, 30, 40, 50}},
		{"inclusive", score(20), score(40), true, true, []uint64{20, 30, 40}},
		{"exclusive", score(20), score(40), false, false, []uint64{30}},
		{"lo only", score(35), nil, true, true, []uint64{40, 50}},
		{"hi only", nil, score(25), true, true, []uint64{10, 20}},
		{"empty window", score(41), score(49), true, true, nil},
		{"inverted", score(40), score(20), true, true, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := s.ZRangeByScore([]byte("z"), tt.lo, tt.hi, tt.loInc, tt.hiInc)
			if err != nil {
				t.Fatalf("ZRangeByScore: %v", err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %d results, want %d", len(got), len(tt.want))
			}
			for i, p := range got {
				if binary.BigEndian.Uint64(p.Score) != tt.want[i] {
					t.Fatalf("result[%d] = %d, want %d", i, binary.BigEndian.Uint64(p.Score), tt.want[i])
				}
			}
		})
	}
}

func TestZAddDuplicateIgnored(t *testing.T) {
	s := New()
	s.ZAdd([]byte("z"), score(1), []byte("m"))
	s.ZAdd([]byte("z"), score(1), []byte("m"))
	if n, _ := s.ZCard([]byte("z")); n != 1 {
		t.Fatalf("ZCard after duplicate = %d", n)
	}
	// Same score, different member: both kept.
	s.ZAdd([]byte("z"), score(1), []byte("m2"))
	if n, _ := s.ZCard([]byte("z")); n != 2 {
		t.Fatalf("ZCard with same-score members = %d", n)
	}
}

func TestZRem(t *testing.T) {
	s := New()
	s.ZAdd([]byte("z"), score(1), []byte("a"))
	s.ZAdd([]byte("z"), score(2), []byte("b"))
	if err := s.ZRem([]byte("z"), score(1), []byte("a")); err != nil {
		t.Fatalf("ZRem: %v", err)
	}
	if n, _ := s.ZCard([]byte("z")); n != 1 {
		t.Fatalf("ZCard after ZRem = %d", n)
	}
	// Removing a missing element is a no-op.
	if err := s.ZRem([]byte("z"), score(9), []byte("x")); err != nil {
		t.Fatalf("ZRem(missing): %v", err)
	}
}

func TestZSetDelIntegration(t *testing.T) {
	s := New()
	s.ZAdd([]byte("z"), score(1), []byte("a"))
	s.Del([]byte("z"))
	if n, _ := s.ZCard([]byte("z")); n != 0 {
		t.Fatalf("ZCard after Del = %d", n)
	}
}

func TestZSetPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "z.aof")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.ZAdd([]byte("z"), score(3), []byte("c"))
	s.ZAdd([]byte("z"), score(1), []byte("a"))
	s.ZAdd([]byte("z"), score(2), []byte("b"))
	s.ZRem([]byte("z"), score(2), []byte("b"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, err := s2.ZRangeByScore([]byte("z"), nil, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0].Member) != "a" || string(got[1].Member) != "c" {
		t.Fatalf("replayed zset = %v", got)
	}
}

func TestZSetEqualsReferenceQuick(t *testing.T) {
	// Property: ZRangeByScore over random adds/removes always matches a
	// plaintext reference implementation.
	s := New()
	type el struct{ score, member uint64 }
	ref := map[el]bool{}
	key := []byte("z")
	f := func(sc, mem uint64, del bool, lo, hi uint16) bool {
		e := el{sc % 1000, mem % 50}
		if del {
			s.ZRem(key, score(e.score), score(e.member))
			delete(ref, e)
		} else {
			s.ZAdd(key, score(e.score), score(e.member))
			ref[e] = true
		}
		loS, hiS := uint64(lo)%1000, uint64(hi)%1000
		if loS > hiS {
			loS, hiS = hiS, loS
		}
		got, err := s.ZRangeByScore(key, score(loS), score(hiS), true, true)
		if err != nil {
			return false
		}
		want := 0
		for e := range ref {
			if e.score >= loS && e.score <= hiS {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		// Results must be score-ordered.
		for i := 1; i < len(got); i++ {
			if string(got[i-1].Score) > string(got[i].Score) {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

func quickCheck(f func(sc, mem uint64, del bool, lo, hi uint16) bool) error {
	return quick.Check(f, &quick.Config{MaxCount: 300})
}

func TestZSetClosed(t *testing.T) {
	s := New()
	s.Close()
	if err := s.ZAdd([]byte("z"), score(1), []byte("a")); err != ErrClosed {
		t.Fatalf("ZAdd after close = %v", err)
	}
	if _, err := s.ZRangeByScore([]byte("z"), nil, nil, true, true); err != ErrClosed {
		t.Fatalf("ZRangeByScore after close = %v", err)
	}
}
