package kvstore

import "testing"

func TestStatsPerNamespace(t *testing.T) {
	s := New()
	defer s.Close()

	if err := s.Set([]byte("detidx/obs/status"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.HSet([]byte("aggidx/obs/value"), []byte("d1"), []byte("ct-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.HSet([]byte("aggidx/obs/value"), []byte("d2"), []byte("ct-2")); err != nil {
		t.Fatal(err)
	}
	if err := s.SAdd([]byte("detidx/obs/code/abc"), []byte("d1")); err != nil {
		t.Fatal(err)
	}
	if err := s.ZAdd([]byte("opeidx/obs/value"), []byte{1}, []byte("d1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Incr([]byte("plainkey"), 3); err != nil {
		t.Fatal(err)
	}

	stats, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats["detidx"]; got.Keys != 2 || got.Items != 2 {
		t.Fatalf("detidx stats = %+v, want 2 keys / 2 items", got)
	}
	if got := stats["aggidx"]; got.Keys != 1 || got.Items != 2 {
		t.Fatalf("aggidx stats = %+v, want 1 key / 2 items", got)
	}
	if got := stats["opeidx"]; got.Keys != 1 || got.Items != 1 {
		t.Fatalf("opeidx stats = %+v, want 1 key / 1 item", got)
	}
	if got := stats["plainkey"]; got.Keys != 1 {
		t.Fatalf("plainkey stats = %+v, want 1 key", got)
	}
	for ns, st := range stats {
		if st.Bytes <= 0 {
			t.Fatalf("namespace %q reports %d bytes", ns, st.Bytes)
		}
	}
}
