package kvstore

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestStripedConcurrent hammers every namespace from parallel goroutines
// under -race, with keys spread across all shards and an AOF attached so
// log serialization is exercised too. The store is replayed afterwards to
// confirm the interleaved AOF reproduces the same state.
func TestStripedConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "striped.aof")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := []byte(fmt.Sprintf("k%d-%d", g, i))
				val := []byte(fmt.Sprintf("v%d-%d", g, i))
				if err := s.Set(key, val); err != nil {
					t.Errorf("Set: %v", err)
					return
				}
				if v, ok, err := s.Get(key); err != nil || !ok || !bytes.Equal(v, val) {
					t.Errorf("Get(%s) = %q, %v, %v", key, v, ok, err)
					return
				}
				if err := s.HSet([]byte("shared-hash"), key, val); err != nil {
					t.Errorf("HSet: %v", err)
					return
				}
				if err := s.SAdd([]byte(fmt.Sprintf("set%d", g)), key); err != nil {
					t.Errorf("SAdd: %v", err)
					return
				}
				if _, err := s.Incr([]byte("shared-counter"), 1); err != nil {
					t.Errorf("Incr: %v", err)
					return
				}
				if err := s.ZAdd([]byte("shared-zset"), key, val); err != nil {
					t.Errorf("ZAdd: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total, err := s.Counter([]byte("shared-counter"))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("shared counter = %d, want %d", total, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, err := Open(path)
	if err != nil {
		t.Fatalf("replaying interleaved AOF: %v", err)
	}
	defer replayed.Close()
	if got, _ := replayed.Counter([]byte("shared-counter")); got != total {
		t.Fatalf("replayed counter = %d, want %d", got, total)
	}
	if n, _ := replayed.HLen([]byte("shared-hash")); n != goroutines*perG {
		t.Fatalf("replayed hash len = %d, want %d", n, goroutines*perG)
	}
	if n, _ := replayed.ZCard([]byte("shared-zset")); n != goroutines*perG {
		t.Fatalf("replayed zset card = %d, want %d", n, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		key := []byte(fmt.Sprintf("k%d-%d", g, perG-1))
		v, ok, err := replayed.Get(key)
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v%d-%d", g, perG-1))) {
			t.Fatalf("replayed Get(%s) = %q, %v, %v", key, v, ok, err)
		}
	}
}

// TestCloseDrainsInFlight checks ops racing Close either complete fully or
// report ErrClosed — never a partial write or a panic.
func TestCloseDrainsInFlight(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "close.aof"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := []byte(fmt.Sprintf("c%d-%d", g, i))
				if err := s.Set(key, key); err != nil && err != ErrClosed {
					t.Errorf("Set during close: %v", err)
					return
				}
			}
		}(g)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// BenchmarkStoreParallelSet measures multi-writer throughput: before
// striping every Set serialized on one store-wide mutex.
func BenchmarkStoreParallelSet(b *testing.B) {
	s := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		buf := make([]byte, 16)
		for pb.Next() {
			n := copy(buf, fmt.Sprintf("bench%d", i))
			if err := s.Set(buf[:n], buf[:n]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkStoreParallelGet measures read scalability across shards.
func BenchmarkStoreParallelGet(b *testing.B) {
	s := New()
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench%d", i))
		if err := s.Set(keys[i], keys[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok, err := s.Get(keys[i%len(keys)]); err != nil || !ok {
				b.Fatal("missing key")
			}
			i++
		}
	})
}
