// Snapshots and compaction. A snapshot is a single framed record (the
// same encoding as log records, so the CRC machinery is shared) whose
// sequence is the covering sequence S: every store mutation with seq ≤ S
// is reflected in the payload. It is written to a temp file, fsynced,
// atomically renamed to snap-<S>.snap, and the directory fsynced — a
// crash leaves either the old snapshot or the new one, never a torn one.
//
// Compaction follows from the covering property alone: any *sealed*
// segment whose highest record sequence is ≤ S holds only mutations the
// snapshot already reflects, so it is deleted. Records with seq ≤ S that
// land in later segments (an append that raced the snapshot freeze) are
// skipped individually during replay. Recovery therefore replays
// snapshot + tail instead of the whole history.

package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// LoadSnapshot returns the newest snapshot's payload and covering
// sequence, or ok=false when the log has none. Call before Replay.
func (l *Log) LoadSnapshot() (payload []byte, seq uint64, ok bool, err error) {
	l.mu.Lock()
	name := l.snapName
	l.mu.Unlock()
	if name == "" {
		return nil, 0, false, nil
	}
	f, err := os.Open(filepath.Join(l.dir, name))
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: opening snapshot: %w", err)
	}
	defer f.Close()
	rr := NewRecordReader(f)
	seq, payload, err = rr.Next()
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: snapshot %s: %w", name, err)
	}
	if _, _, err := rr.Next(); err != io.EOF {
		return nil, 0, false, fmt.Errorf("%w: snapshot %s has trailing data", ErrTorn, name)
	}
	l.mu.Lock()
	l.snapSeq = seq
	if seq > l.maxSeq {
		l.maxSeq = seq
	}
	l.mu.Unlock()
	return payload, seq, true, nil
}

// Replay streams every record with seq greater than the loaded snapshot's
// covering sequence to apply, in file order, then opens a fresh active
// segment and enables appends. A torn tail of the last segment is
// truncated at the last CRC-valid record (fatal under Options.Strict);
// corruption in any earlier segment is always fatal. Replay must be
// called exactly once, after LoadSnapshot.
func (l *Log) Replay(apply func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.ready {
		l.mu.Unlock()
		return fmt.Errorf("wal: Replay called twice")
	}
	files := l.segFiles
	l.segFiles = nil
	snapSeq := l.snapSeq
	l.mu.Unlock()

	t0 := time.Now()
	var replayed uint64
	var sealed []segment
	for i, name := range files {
		info, n, err := l.replaySegment(name, i == len(files)-1, snapSeq, apply)
		if err != nil {
			return err
		}
		replayed += n
		if info.size == 0 {
			// A zero-length segment (crash between create and first flush)
			// carries nothing; drop the file.
			os.Remove(filepath.Join(l.dir, name))
			continue
		}
		sealed = append(sealed, info)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Segments fully covered by the snapshot are dead history.
	kept := sealed[:0]
	for _, s := range sealed {
		if s.last > l.maxSeq {
			l.maxSeq = s.last
		}
		if s.last <= snapSeq && l.snapName != "" {
			os.Remove(filepath.Join(l.dir, s.name))
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	if err := l.openSegmentLocked(); err != nil {
		return err
	}
	l.ready = true
	if l.opts.Fsync == FsyncInterval {
		l.done = make(chan struct{})
		go l.runIntervalSync()
	}
	l.stats.recoveryNanos.Store(uint64(time.Since(t0).Nanoseconds()))
	l.stats.recoveryRecords.Store(replayed)
	return nil
}

// replaySegment validates and applies one segment, returning its metadata
// (with size reflecting any tail truncation) and the applied record count.
func (l *Log) replaySegment(name string, last bool, snapSeq uint64, apply func(uint64, []byte) error) (segment, uint64, error) {
	path := filepath.Join(l.dir, name)
	f, err := os.Open(path)
	if err != nil {
		return segment{}, 0, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	rr := NewRecordReader(f)
	info := segment{name: name}
	var applied uint64
	for {
		seq, payload, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if l.opts.Strict || !last {
				return segment{}, 0, fmt.Errorf("wal: segment %s at offset %d: %w", name, rr.Offset(), err)
			}
			// Torn tail of the newest segment: a crash mid-append. Keep the
			// valid prefix, drop the rest.
			if terr := os.Truncate(path, rr.Offset()); terr != nil {
				return segment{}, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", name, terr)
			}
			l.stats.tornTails.Add(1)
			break
		}
		info.records++
		if info.first == 0 || seq < info.first {
			info.first = seq
		}
		if seq > info.last {
			info.last = seq
		}
		if seq <= snapSeq {
			continue
		}
		if err := apply(seq, payload); err != nil {
			return segment{}, 0, fmt.Errorf("wal: applying record seq %d of %s: %w", seq, name, err)
		}
		applied++
	}
	info.size = rr.Offset()
	return info, applied, nil
}

// WriteSnapshot durably writes a snapshot covering sequence seq, then
// deletes every sealed segment it fully covers. The caller guarantees the
// payload reflects every mutation with sequence ≤ seq (the stores freeze
// their stripes, capture seq, and serialize before calling). Safe to run
// concurrently with appends.
func (l *Log) WriteSnapshot(seq uint64, payload []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !l.ready {
		l.mu.Unlock()
		return fmt.Errorf("wal: WriteSnapshot before Replay")
	}
	l.mu.Unlock()

	t0 := time.Now()
	name := fmt.Sprintf("snap-%016d.snap", seq)
	tmp := filepath.Join(l.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot: %w", err)
	}
	rec := AppendRecord(make([]byte, 0, len(payload)+20), seq, payload)
	if _, err := f.Write(rec); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: committing snapshot: %w", err)
	}
	syncDir(l.dir)

	l.mu.Lock()
	old := l.snapName
	l.snapName = name
	if seq > l.snapSeq {
		l.snapSeq = seq
	}
	if seq > l.maxSeq {
		l.maxSeq = seq
	}
	// Compact: drop sealed segments whose every record the snapshot covers.
	kept := l.sealed[:0]
	var dropped []string
	for _, s := range l.sealed {
		if s.last <= seq {
			dropped = append(dropped, s.name)
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	l.mu.Unlock()

	for _, n := range dropped {
		os.Remove(filepath.Join(l.dir, n))
	}
	if old != "" && old != name {
		os.Remove(filepath.Join(l.dir, old))
	}
	l.stats.snapshots.Add(1)
	l.stats.snapshotNanos.Store(uint64(time.Since(t0).Nanoseconds()))
	l.stats.compacted.Add(uint64(len(dropped)))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file is durable under its
// new name. Best-effort: some platforms reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
}

// SegmentInfo describes one sealed, immutable segment — the unit of
// replica catch-up for the planned shard-replication layer.
type SegmentInfo struct {
	Name     string `json:"name"`
	Size     int64  `json:"size"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Records  int64  `json:"records"`
}

// Segments lists the sealed segments in replay order. The active segment
// is excluded: it is still being written.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, len(l.sealed))
	for i, s := range l.sealed {
		out[i] = SegmentInfo{Name: s.name, Size: s.size, FirstSeq: s.first, LastSeq: s.last, Records: s.records}
	}
	return out
}

// SealedBytes returns the total size of the sealed segments — the "dead
// weight" recovery would replay, which the stores watch to trigger
// background snapshot+compaction.
func (l *Log) SealedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, s := range l.sealed {
		n += s.size
	}
	return n
}

// SnapshotSeq returns the covering sequence of the live snapshot and
// whether one exists.
func (l *Log) SnapshotSeq() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq, l.snapName != ""
}

// SegmentReader streams one sealed segment's records.
type SegmentReader struct {
	*RecordReader
	f *os.File
}

// Close releases the underlying file.
func (r *SegmentReader) Close() error { return r.f.Close() }

// OpenSegment opens a sealed segment by name for streaming — the
// replication hook: a replica fetches sealed segments (and the snapshot)
// it has not yet applied. The name must come from Segments.
func (l *Log) OpenSegment(name string) (*SegmentReader, error) {
	l.mu.Lock()
	found := false
	for _, s := range l.sealed {
		if s.name == name {
			found = true
			break
		}
	}
	l.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("wal: %q is not a sealed segment", name)
	}
	f, err := os.Open(filepath.Join(l.dir, name))
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	return &SegmentReader{RecordReader: NewRecordReader(f), f: f}, nil
}
