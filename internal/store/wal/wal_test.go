package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openReady opens a log over dir and runs the recovery protocol, returning
// the log plus everything replayed.
func openReady(t *testing.T, dir string, opts Options) (*Log, []byte, uint64, map[uint64][]byte) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snap, snapSeq, _, err := l.LoadSnapshot()
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	got := make(map[uint64][]byte)
	if err := l.Replay(func(seq uint64, payload []byte) error {
		got[seq] = append([]byte(nil), payload...)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return l, snap, snapSeq, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, _, got := openReady(t, dir, Options{Fsync: FsyncNever})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	if !l.Empty() {
		t.Fatal("fresh log not Empty")
	}
	want := map[uint64][]byte{}
	for seq := uint64(1); seq <= 100; seq++ {
		p := []byte(fmt.Sprintf("payload-%d", seq))
		want[seq] = p
		if err := l.Append(seq, p); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, _, _, got2 := openReady(t, dir, Options{Fsync: FsyncNever})
	defer l2.Close()
	if l2.Empty() {
		t.Fatal("reopened log reports Empty")
	}
	if l2.MaxSeq() != 100 {
		t.Fatalf("MaxSeq = %d, want 100", l2.MaxSeq())
	}
	if len(got2) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got2), len(want))
	}
	for seq, p := range want {
		if !bytes.Equal(got2[seq], p) {
			t.Fatalf("seq %d: got %q want %q", seq, got2[seq], p)
		}
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncAlways})
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	var seq struct {
		sync.Mutex
		n uint64
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq.Lock()
				seq.n++
				s := seq.n
				seq.Unlock()
				if err := l.Append(s, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Append: %v", err)
	}
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Fsyncs == 0 {
		t.Fatal("no fsyncs recorded under FsyncAlways")
	}
	if st.Fsyncs > st.Appends {
		t.Fatalf("more fsyncs (%d) than appends (%d)", st.Fsyncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, _, _, got := openReady(t, dir, Options{})
	defer l2.Close()
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncNever, SegmentSize: 256})
	payload := bytes.Repeat([]byte("x"), 64)
	for seq := uint64(1); seq <= 40; seq++ {
		if err := l.Append(seq, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	segs := l.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected multiple sealed segments, got %d", len(segs))
	}
	var recs int64
	for i, s := range segs {
		if s.Records == 0 || s.FirstSeq == 0 || s.LastSeq < s.FirstSeq {
			t.Fatalf("segment %d has bad metadata: %+v", i, s)
		}
		if i > 0 && s.FirstSeq <= segs[i-1].LastSeq {
			t.Fatalf("segments out of order: %+v after %+v", s, segs[i-1])
		}
		recs += s.Records
	}
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatal("no rotations recorded")
	}

	// Sealed segments are streamable via the replication hook.
	r, err := l.OpenSegment(segs[0].Name)
	if err != nil {
		t.Fatalf("OpenSegment: %v", err)
	}
	var streamed int64
	for {
		_, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("streaming sealed segment: %v", err)
		}
		streamed++
	}
	r.Close()
	if streamed != segs[0].Records {
		t.Fatalf("streamed %d records, metadata says %d", streamed, segs[0].Records)
	}
	if _, err := l.OpenSegment("seg-9999999999999999.wal"); err == nil {
		t.Fatal("OpenSegment accepted an unknown name")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, _, _, got := openReady(t, dir, Options{})
	defer l2.Close()
	if len(got) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(got))
	}
}

func TestSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncNever, SegmentSize: 256})
	payload := bytes.Repeat([]byte("y"), 64)
	for seq := uint64(1); seq <= 30; seq++ {
		if err := l.Append(seq, payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before := l.SealedBytes()
	if before == 0 {
		t.Fatal("expected sealed bytes before compaction")
	}
	if err := l.WriteSnapshot(30, []byte("state-at-30")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if after := l.SealedBytes(); after != 0 {
		t.Fatalf("SealedBytes = %d after full-coverage snapshot, want 0", after)
	}
	if seq, ok := l.SnapshotSeq(); !ok || seq != 30 {
		t.Fatalf("SnapshotSeq = %d,%v want 30,true", seq, ok)
	}
	// Tail writes after the snapshot must replay on top of it.
	for seq := uint64(31); seq <= 35; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("tail-%d", seq))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, snap, snapSeq, got := openReady(t, dir, Options{})
	defer l2.Close()
	if string(snap) != "state-at-30" || snapSeq != 30 {
		t.Fatalf("snapshot = %q seq %d, want state-at-30 seq 30", snap, snapSeq)
	}
	if len(got) != 5 {
		t.Fatalf("replayed %d tail records, want 5", len(got))
	}
	for seq := uint64(31); seq <= 35; seq++ {
		if want := fmt.Sprintf("tail-%d", seq); string(got[seq]) != want {
			t.Fatalf("seq %d: got %q want %q", seq, got[seq], want)
		}
	}
	if l2.MaxSeq() != 35 {
		t.Fatalf("MaxSeq = %d, want 35", l2.MaxSeq())
	}
}

func TestSnapshotReplacesOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncNever})
	if err := l.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("expected exactly one snapshot on disk, found %v", snaps)
	}
	l2, snap, seq, _ := openReady(t, dir, Options{})
	defer l2.Close()
	if string(snap) != "two" || seq != 2 {
		t.Fatalf("recovered snapshot %q seq %d, want \"two\" seq 2", snap, seq)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncNever})
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("v%d", seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	last := segs[len(segs)-1]
	clean, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a partial record: simulate with garbage.
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x07, 0xff, 0x03, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, _, _, got := openReady(t, dir, Options{})
	if len(got) != 10 {
		t.Fatalf("replayed %d records after torn tail, want 10", len(got))
	}
	if st := l2.Stats(); st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	l2.Close()
	truncated, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if truncated.Size() != clean.Size() {
		t.Fatalf("torn segment is %d bytes, want truncated back to %d", truncated.Size(), clean.Size())
	}

	// And the log keeps working after truncation: reopen once more and write.
	l3, _, _, got3 := openReady(t, dir, Options{})
	defer l3.Close()
	if len(got3) != 10 {
		t.Fatalf("replay after truncation found %d records, want 10", len(got3))
	}
	if err := l3.Append(11, []byte("post-truncate")); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
}

func TestTornTailStrictModeFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncNever})
	if err := l.Append(1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0x02})
	f.Close()

	l2, err := Open(dir, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, _, _, err := l2.LoadSnapshot(); err != nil {
		t.Fatal(err)
	}
	err = l2.Replay(func(uint64, []byte) error { return nil })
	if err == nil {
		t.Fatal("Strict Replay accepted a torn tail")
	}
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("Strict Replay error = %v, want ErrTorn", err)
	}
}

func TestMidHistoryCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncNever, SegmentSize: 128})
	payload := bytes.Repeat([]byte("z"), 48)
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(seq, payload); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.Segments()) < 1 {
		t.Fatal("test needs at least one sealed segment")
	}
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(segs))
	}
	// Flip a byte in the middle of the FIRST segment — sealed, so any
	// corruption there is real damage, not a crash artifact.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o600); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, _, _, err := l2.LoadSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Replay(func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay accepted mid-history corruption")
	}
}

func TestLifecycleErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("x")); err == nil {
		t.Fatal("Append before Replay succeeded")
	}
	if err := l.Replay(func(uint64, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("second Replay succeeded")
	}
	if err := l.WriteSnapshot(0, nil); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(2, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.WriteSnapshot(3, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after Close = %v, want ErrClosed", err)
	}

	if _, err := Open(dir, Options{Fsync: Policy("bogus")}); err == nil {
		// ParsePolicy guards flag input; Options trusts the caller, so
		// document that an unknown literal policy behaves like FsyncNever
		// rather than erroring — but ParsePolicy must reject it.
		t.Log("Open does not validate Policy literals; ParsePolicy is the gate")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
	for _, s := range []string{"", "always", "interval", "never"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Fatalf("ParsePolicy(%q): %v", s, err)
		}
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncNever})
	defer l.Close()
	huge := make([]byte, MaxRecordSize+1)
	if err := l.Append(1, huge); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var b []byte
	b = AppendRecord(b, 7, []byte("hello"))
	b = AppendRecord(b, 8, nil)
	b = AppendRecord(b, 1<<60, bytes.Repeat([]byte{0}, 1000))
	rr := NewRecordReader(bytes.NewReader(b))
	seq, p, err := rr.Next()
	if err != nil || seq != 7 || string(p) != "hello" {
		t.Fatalf("record 1: seq=%d p=%q err=%v", seq, p, err)
	}
	seq, p, err = rr.Next()
	if err != nil || seq != 8 || len(p) != 0 {
		t.Fatalf("record 2: seq=%d p=%q err=%v", seq, p, err)
	}
	seq, p, err = rr.Next()
	if err != nil || seq != 1<<60 || len(p) != 1000 {
		t.Fatalf("record 3: seq=%d len=%d err=%v", seq, len(p), err)
	}
	if _, _, err := rr.Next(); err != io.EOF {
		t.Fatalf("trailing Next = %v, want io.EOF", err)
	}
	if rr.Offset() != int64(len(b)) {
		t.Fatalf("Offset = %d, want %d", rr.Offset(), len(b))
	}

	// A flipped bit anywhere must surface as ErrTorn, never as valid data.
	for i := range b {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x40
		rr := NewRecordReader(bytes.NewReader(mut))
		for {
			gotSeq, gotP, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrTorn) {
					t.Fatalf("flip at %d: error %v does not wrap ErrTorn", i, err)
				}
				break
			}
			// A record that still parses must be one of the originals
			// (flips confined to a later record leave earlier ones intact).
			switch gotSeq {
			case 7:
				if string(gotP) != "hello" {
					t.Fatalf("flip at %d: corrupt payload passed CRC", i)
				}
			case 8, 1 << 60:
			default:
				t.Fatalf("flip at %d: fabricated record seq=%d passed CRC", i, gotSeq)
			}
		}
	}
}

func TestStatsAggregate(t *testing.T) {
	dir := t.TempDir()
	l, _, _, _ := openReady(t, dir, Options{Fsync: FsyncAlways})
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(seq, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	agg := Aggregate()
	if agg.Appends < 5 {
		t.Fatalf("Aggregate().Appends = %d, want >= 5", agg.Appends)
	}
	st := l.Stats()
	if st.FsyncMeanUs <= 0 {
		t.Fatalf("FsyncMeanUs = %v, want > 0", st.FsyncMeanUs)
	}
	if len(st.FsyncHist) == 0 {
		t.Fatal("empty fsync histogram after FsyncAlways appends")
	}
	if len(st.BatchHist) == 0 {
		t.Fatal("empty batch histogram after FsyncAlways appends")
	}
	l.Close()
}
