package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the record reader: truncated
// varints, corrupted CRCs, and hostile length prefixes must all surface as
// errors (never a panic, never an over-allocation), and any record that
// does parse must re-encode to the exact bytes that were read.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, 1, []byte("hello")))
	f.Add(AppendRecord(AppendRecord(nil, 1, []byte("a")), 2, []byte("bb")))
	f.Add(AppendRecord(nil, 1<<63, bytes.Repeat([]byte{0xaa}, 300)))
	// Truncated mid-payload.
	f.Add(AppendRecord(nil, 9, []byte("chopped"))[:6])
	// Varint that never terminates.
	f.Add(bytes.Repeat([]byte{0x80}, 16))
	// Length prefix claiming ~1 EiB.
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRecordReader(bytes.NewReader(data))
		var prevOff int64
		for {
			seq, payload, err := rr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrTorn) {
					t.Fatalf("error %v does not wrap ErrTorn", err)
				}
				if rr.Offset() < prevOff || rr.Offset() > int64(len(data)) {
					t.Fatalf("Offset %d outside [%d,%d] after error", rr.Offset(), prevOff, len(data))
				}
				break
			}
			off := rr.Offset()
			if off <= prevOff || off > int64(len(data)) {
				t.Fatalf("Offset %d did not advance within [%d,%d]", off, prevOff, len(data))
			}
			// Round-trip: the parsed record must re-encode to the bytes read.
			rec := AppendRecord(nil, seq, payload)
			if !bytes.Equal(rec, data[prevOff:off]) {
				t.Fatalf("record at %d does not re-encode to its source bytes", prevOff)
			}
			prevOff = off
		}
	})
}
