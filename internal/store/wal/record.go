// Record framing: the unit both stores append and both recovery paths
// replay. A record is
//
//	uvarint(seq) | uvarint(len(payload)) | payload | crc32c (4 bytes LE)
//
// where the CRC covers the encoded header and the payload, so a torn or
// bit-flipped length is caught exactly like a torn payload. Raw bytes ride
// as raw bytes — no base64, unlike the v1 text AOF — and the sequence
// number is the *store's* commit order, not the file order: appends happen
// outside the stores' stripe locks, so two records may land in the file
// slightly out of sequence and recovery re-sorts per stripe before
// applying.
//
// The reader never trusts a decoded length before bounding it (a corrupt
// 2^60 length must error, not allocate), never panics on malformed input,
// and reports the byte offset of the last well-formed record so lenient
// recovery can truncate a torn tail in place.

package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxRecordSize bounds one record's payload. Store operations are index
// cells and document blobs — far below this — so any larger decoded
// length is corruption, rejected before allocation.
const MaxRecordSize = 64 << 20

// ErrTorn reports a truncated or corrupt record: a partial header, a
// payload cut short, an insane length, or a CRC mismatch. In lenient
// recovery a torn tail of the last segment is truncated at the last valid
// record; anywhere else it is fatal.
var ErrTorn = errors.New("wal: torn or corrupt record")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends one framed record to b and returns the extended
// slice. It is the only encoder; snapshots reuse it with the snapshot's
// covering sequence.
func AppendRecord(b []byte, seq uint64, payload []byte) []byte {
	start := len(b)
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	crc := crc32.Checksum(b[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(b, crc)
}

// RecordReader decodes a stream of framed records, tracking the offset of
// the last clean record boundary.
type RecordReader struct {
	br      *bufio.Reader
	scratch []byte
	off     int64
}

// NewRecordReader returns a reader over r.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Offset returns the byte offset just past the last successfully decoded
// record — the truncation point when the next record is torn.
func (r *RecordReader) Offset() int64 { return r.off }

// readUvarint consumes one LEB128 varint, appending its raw bytes to
// scratch (the CRC covers the bytes as written, not a re-encoding).
func (r *RecordReader) readUvarint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		b, err := r.br.ReadByte()
		if err != nil {
			return 0, err
		}
		r.scratch = append(r.scratch, b)
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: varint overflow", ErrTorn)
}

// Next returns the next record's sequence and payload. The payload is a
// fresh allocation owned by the caller. A clean end of input returns
// io.EOF; anything else mid-record returns an error wrapping ErrTorn.
func (r *RecordReader) Next() (seq uint64, payload []byte, err error) {
	r.scratch = r.scratch[:0]
	seq, err = r.readUvarint()
	if err != nil {
		if err == io.EOF && len(r.scratch) == 0 {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrTorn, err)
	}
	n, err := r.readUvarint()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: length: %v", ErrTorn, err)
	}
	if n > MaxRecordSize {
		return 0, nil, fmt.Errorf("%w: record length %d exceeds cap", ErrTorn, n)
	}
	hdr := len(r.scratch)
	need := int(n) + 4
	if cap(r.scratch) < hdr+need {
		r.scratch = append(r.scratch, make([]byte, need)...)
	} else {
		r.scratch = r.scratch[:hdr+need]
	}
	if _, err := io.ReadFull(r.br, r.scratch[hdr:]); err != nil {
		return 0, nil, fmt.Errorf("%w: body: %v", ErrTorn, err)
	}
	body := r.scratch[:hdr+int(n)]
	want := binary.LittleEndian.Uint32(r.scratch[hdr+int(n):])
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, fmt.Errorf("%w: crc mismatch", ErrTorn)
	}
	payload = append([]byte(nil), body[hdr:]...)
	r.off += int64(hdr + need)
	return seq, payload, nil
}
