// Package wal is the shard-local persistence engine v2 shared by the
// kvstore (tactic indexes) and docstore (encrypted documents): a segmented
// append-only log of length-prefixed binary records with per-record
// CRC32C, a group-commit fsync stage, point-in-time snapshots with segment
// compaction, and crash-tolerant recovery that truncates a torn tail at
// the last valid record.
//
// # Durability model
//
// Records carry the owning store's commit sequence. The store claims the
// sequence while holding its stripe lock (fixing same-key order) but
// appends *outside* the lock, so the log — not the keyspace stripes — is
// the only shared write structure, and it is engineered for concurrency:
// appends go into one buffered writer under a short mutex, and durability
// waits are batched. Under FsyncAlways, the first waiting writer becomes
// the commit leader: it flushes the buffer and issues one Fdatasync
// covering every record appended so far, then releases every writer whose
// record that sync covered — the same cross-caller group-commit shape as
// the gateway's coalescer, so durable write throughput scales with callers
// instead of serializing on one fsync per operation.
//
// # Recovery
//
// Open scans the directory; LoadSnapshot returns the newest snapshot
// payload; Replay streams every record with seq greater than the
// snapshot's covering sequence, in file order. Records may be slightly
// out of sequence order (appends race outside the stripe locks), so
// stores re-order by sequence before applying — the kvstore buckets by
// lock stripe and replays all 32 stripes in parallel. A torn tail in the
// last segment is truncated in place (Strict mode makes it fatal);
// corruption anywhere earlier is always fatal, because sealed segments
// are flushed and fsynced before the next one opens.
//
// Sealed segments are immutable and enumerable (Segments, OpenSegment) —
// the replica catch-up hook for shard replication: a replica holding
// sequence S fetches the snapshot if its seq exceeds S, then every sealed
// segment with records above S.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Policy selects when appended records are forced to stable storage.
type Policy string

const (
	// FsyncAlways makes Append return only after a group-committed fsync
	// covers the record: no acked write is lost to a crash.
	FsyncAlways Policy = "always"
	// FsyncInterval flushes and fsyncs on a background interval (default
	// 1s): a crash loses at most the last window. This is the default,
	// matching the paper's "semi-persistent durability mode" Redis tier.
	FsyncInterval Policy = "interval"
	// FsyncNever leaves flushing to segment seals, explicit Sync calls,
	// Close, and the operating system.
	FsyncNever Policy = "never"
)

// ParsePolicy maps a flag string to a Policy ("" selects the default).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return FsyncInterval, nil
	case FsyncAlways, FsyncInterval, FsyncNever:
		return Policy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Defaults for Options zero values.
const (
	DefaultSegmentSize  = 16 << 20
	DefaultSyncInterval = time.Second
)

// Options configures a Log.
type Options struct {
	// Fsync is the durability policy (zero value: FsyncInterval).
	Fsync Policy
	// SyncInterval is the FsyncInterval flush cadence (0 = 1s).
	SyncInterval time.Duration
	// SegmentSize rotates the active segment once it reaches this many
	// bytes (0 = 16 MiB).
	SegmentSize int64
	// Strict makes a torn tail a fatal Replay error instead of truncating
	// at the last CRC-valid record.
	Strict bool
}

func (o Options) withDefaults() Options {
	if o.Fsync == "" {
		o.Fsync = FsyncInterval
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	return o
}

// segment is one sealed, immutable log file.
type segment struct {
	name    string
	size    int64
	first   uint64 // lowest record seq (0 when empty)
	last    uint64 // highest record seq
	records int64
}

// Log is one store's segmented write-ahead log. Construct with Open, then
// LoadSnapshot and Replay exactly once before the first Append.
type Log struct {
	dir   string
	opts  Options
	stats counters

	mu      sync.Mutex
	cond    *sync.Cond
	ready   bool // recovery finished; appends allowed
	closed  bool
	f       *os.File
	buf     *bufWriter
	scratch []byte
	segIdx  uint64 // index of the active segment file
	segName string
	seg     segment // active segment metadata (name unset)
	sealed  []segment

	appendPos   uint64 // total bytes ever appended (across segments)
	syncedPos   uint64 // total bytes known durable
	pendingRecs uint64 // records appended since the last fsync
	syncing     bool
	syncErr     error

	snapSeq  uint64
	snapName string
	maxSeq   uint64
	segFiles []string // recovery worklist, cleared by Replay
	wasEmpty bool     // no snapshot and no segments existed at Open

	done chan struct{} // stops the interval syncer
}

// bufWriter is a minimal bufio.Writer replacement whose buffered length
// is observable (bufio hides whether an error left bytes behind).
type bufWriter struct {
	f   *os.File
	b   []byte
	max int
}

func newBufWriter(f *os.File) *bufWriter { return &bufWriter{f: f, max: 1 << 16} }

func (w *bufWriter) Write(p []byte) (int, error) {
	if len(w.b)+len(p) > w.max {
		if err := w.Flush(); err != nil {
			return 0, err
		}
	}
	if len(p) > w.max {
		_, err := w.f.Write(p)
		return len(p), err
	}
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *bufWriter) Flush() error {
	if len(w.b) == 0 {
		return nil
	}
	_, err := w.f.Write(w.b)
	w.b = w.b[:0]
	return err
}

// Open prepares a log over dir, creating it if needed, and scans for
// existing snapshots and segments. No file is replayed yet: call
// LoadSnapshot, then Replay, before the first Append.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("wal: creating dir: %w", err)
	}
	l := &Log{dir: dir, opts: opts.withDefaults()}
	l.cond = sync.NewCond(&l.mu)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading dir: %w", err)
	}
	var snaps []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			l.segFiles = append(l.segFiles, name)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snaps = append(snaps, name)
		}
	}
	sort.Strings(l.segFiles)
	sort.Strings(snaps)
	if n := len(l.segFiles); n > 0 {
		last := l.segFiles[n-1]
		if _, err := fmt.Sscanf(last, "seg-%016d.wal", &l.segIdx); err != nil {
			return nil, fmt.Errorf("wal: unparseable segment name %q", last)
		}
		l.segIdx++
	}
	// Only the newest snapshot is live; stale ones are leftovers from a
	// crash between rename and cleanup.
	if len(snaps) > 0 {
		l.snapName = snaps[len(snaps)-1]
		for _, s := range snaps[:len(snaps)-1] {
			os.Remove(filepath.Join(dir, s))
		}
	}
	l.wasEmpty = l.snapName == "" && len(l.segFiles) == 0
	register(l)
	return l, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Empty reports whether the directory held no snapshot and no segments at
// Open — the condition under which stores run legacy-format migration.
func (l *Log) Empty() bool { return l.wasEmpty }

// MaxSeq returns the highest sequence recovered (snapshot covering seq or
// any replayed record); the store resumes its sequence from here.
func (l *Log) MaxSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxSeq
}

// Append writes one record and, under FsyncAlways, blocks until a group
// commit makes it durable. Safe for concurrent use.
func (l *Log) Append(seq uint64, payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordSize", len(payload))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !l.ready {
		l.mu.Unlock()
		return fmt.Errorf("wal: Append before Replay")
	}
	l.scratch = AppendRecord(l.scratch[:0], seq, payload)
	n := len(l.scratch)
	if _, err := l.buf.Write(l.scratch); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.seg.size += int64(n)
	l.seg.records++
	l.appendPos += uint64(n)
	l.pendingRecs++
	if l.seg.first == 0 || seq < l.seg.first {
		l.seg.first = seq
	}
	if seq > l.seg.last {
		l.seg.last = seq
	}
	if seq > l.maxSeq {
		l.maxSeq = seq
	}
	l.stats.appends.Add(1)
	l.stats.appendBytes.Add(uint64(n))
	if l.seg.size >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	pos := l.appendPos
	if l.opts.Fsync == FsyncAlways {
		err := l.waitSyncedLocked(pos)
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	return nil
}

// rotateLocked seals the active segment (flush, fsync, close) and opens
// the next one. Sealed segments are therefore always fully durable, which
// is what lets recovery treat mid-history corruption as fatal and what
// makes the Segments hook safe to stream from.
func (l *Log) rotateLocked() error {
	for l.syncing {
		l.cond.Wait()
	}
	if err := l.buf.Flush(); err != nil {
		return fmt.Errorf("wal: sealing %s: %w", l.segName, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing %s: %w", l.segName, err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing %s: %w", l.segName, err)
	}
	sealed := l.seg
	sealed.name = l.segName
	l.sealed = append(l.sealed, sealed)
	l.syncedPos = l.appendPos
	l.pendingRecs = 0
	l.stats.rotations.Add(1)
	l.cond.Broadcast()
	return l.openSegmentLocked()
}

// openSegmentLocked creates the next active segment file.
func (l *Log) openSegmentLocked() error {
	name := fmt.Sprintf("seg-%016d.wal", l.segIdx)
	l.segIdx++
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f = f
	l.buf = newBufWriter(f)
	l.segName = name
	l.seg = segment{}
	return nil
}

// waitSyncedLocked blocks until the durable watermark covers pos. The
// first waiter to find no sync in flight becomes the leader: it flushes
// and fsyncs once for every record appended so far, then wakes the group.
func (l *Log) waitSyncedLocked(pos uint64) error {
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.syncedPos >= pos {
			return nil
		}
		if l.closed {
			return ErrClosed
		}
		if !l.syncing {
			l.syncing = true
			target := l.appendPos
			batch := l.pendingRecs
			l.pendingRecs = 0
			if err := l.buf.Flush(); err != nil {
				l.syncErr = fmt.Errorf("wal: flush: %w", err)
				l.syncing = false
				l.cond.Broadcast()
				return l.syncErr
			}
			f := l.f
			l.mu.Unlock()
			t0 := time.Now()
			err := fdatasync(f)
			d := time.Since(t0)
			l.mu.Lock()
			l.stats.recordFsync(d, batch)
			if err != nil {
				l.syncErr = fmt.Errorf("wal: fsync: %w", err)
			} else if target > l.syncedPos {
				l.syncedPos = target
			}
			l.syncing = false
			l.cond.Broadcast()
		} else {
			l.cond.Wait()
		}
	}
}

// Sync forces everything appended so far to stable storage, joining any
// in-flight group commit.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.ready {
		return nil
	}
	return l.waitSyncedLocked(l.appendPos)
}

// runIntervalSync is the FsyncInterval background flusher.
func (l *Log) runIntervalSync() {
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.ready && l.appendPos > l.syncedPos {
				l.waitSyncedLocked(l.appendPos) //nolint:errcheck // latched in syncErr
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes, fsyncs, and closes the log. Waiters parked on a group
// commit are released durable before the file closes. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	for l.syncing {
		l.cond.Wait()
	}
	var err error
	if l.ready {
		if ferr := l.buf.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if ferr := l.f.Sync(); ferr != nil && err == nil {
			err = ferr
		}
		if err == nil {
			l.syncedPos = l.appendPos
		}
		if ferr := l.f.Close(); ferr != nil && err == nil {
			err = ferr
		}
	}
	l.closed = true
	if l.done != nil {
		close(l.done)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	unregister(l)
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
