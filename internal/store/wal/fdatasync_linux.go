//go:build linux

package wal

import (
	"os"
	"syscall"
)

// fdatasync flushes file data without forcing a metadata write when the
// platform distinguishes the two — the group-commit stage issues one of
// these per batch, so the cheaper variant matters.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
