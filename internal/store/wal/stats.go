// Storage-engine observability, following the coalescer's pattern: cheap
// always-on atomic counters per Log, snapshotted on demand and aggregated
// across every live Log in the process into one expvar
// ("datablinder_store"), so the -pprof endpoint of gateway and cloudserver
// exposes appends, fsync latency, group-commit batch sizes, segment
// counts, and recovery cost without extra wiring.

package wal

import (
	"expvar"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// fsyncBoundsUs are the inclusive upper bounds (µs) of the fsync-latency
// histogram; the last bucket is unbounded.
var fsyncBoundsUs = []uint64{50, 100, 250, 500, 1000, 2500, 5000, 10000}

// batchBounds are the inclusive upper bounds of the group-commit
// batch-size histogram (records per fsync); the last bucket is unbounded.
var batchBounds = []uint64{1, 2, 4, 8, 16, 32, 64}

func bucketLabels(bounds []uint64, unit string) []string {
	labels := make([]string, len(bounds)+1)
	lo := uint64(1)
	for i, hi := range bounds {
		if lo == hi {
			labels[i] = strconv.FormatUint(hi, 10) + unit
		} else {
			labels[i] = "<=" + strconv.FormatUint(hi, 10) + unit
		}
		lo = hi + 1
	}
	labels[len(bounds)] = ">" + strconv.FormatUint(bounds[len(bounds)-1], 10) + unit
	return labels
}

var (
	fsyncLabels = bucketLabels(fsyncBoundsUs, "us")
	batchLabels = bucketLabels(batchBounds, "")
)

// counters are one Log's live counters.
type counters struct {
	appends     atomic.Uint64
	appendBytes atomic.Uint64
	fsyncs      atomic.Uint64
	fsyncNanos  atomic.Uint64
	fsyncHist   [9]atomic.Uint64
	batchHist   [8]atomic.Uint64
	rotations   atomic.Uint64
	tornTails   atomic.Uint64
	snapshots   atomic.Uint64
	compacted   atomic.Uint64
	// snapshotNanos / recoveryNanos hold the most recent durations;
	// recoveryRecords the record count of the last Replay.
	snapshotNanos   atomic.Uint64
	recoveryNanos   atomic.Uint64
	recoveryRecords atomic.Uint64
}

func (c *counters) recordFsync(d time.Duration, batch uint64) {
	c.fsyncs.Add(1)
	c.fsyncNanos.Add(uint64(d.Nanoseconds()))
	us := uint64(d.Microseconds())
	idx := len(fsyncBoundsUs)
	for i, hi := range fsyncBoundsUs {
		if us <= hi {
			idx = i
			break
		}
	}
	c.fsyncHist[idx].Add(1)
	if batch == 0 {
		return // records were already durable (sealed by rotation)
	}
	bidx := len(batchBounds)
	for i, hi := range batchBounds {
		if batch <= hi {
			bidx = i
			break
		}
	}
	c.batchHist[bidx].Add(1)
}

// Stats is a point-in-time snapshot of one Log (or, via Aggregate, of
// every live Log in the process).
type Stats struct {
	// Appends counts records written; AppendBytes their framed size.
	Appends     uint64 `json:"appends"`
	AppendBytes uint64 `json:"append_bytes"`
	// Fsyncs counts physical data syncs; FsyncMeanUs is the mean latency
	// and FsyncHist the latency histogram. BatchHist buckets each group
	// commit by how many records one fsync made durable.
	Fsyncs      uint64            `json:"fsyncs"`
	FsyncMeanUs float64           `json:"fsync_mean_us"`
	FsyncHist   map[string]uint64 `json:"fsync_latency_hist"`
	BatchHist   map[string]uint64 `json:"group_commit_batch_hist"`
	// Segments / SealedBytes describe the live log structure; Rotations,
	// Snapshots, CompactedSegments, and TornTails count lifecycle events.
	Segments          int    `json:"segments"`
	SealedBytes       int64  `json:"sealed_bytes"`
	Rotations         uint64 `json:"rotations"`
	Snapshots         uint64 `json:"snapshots"`
	CompactedSegments uint64 `json:"compacted_segments"`
	TornTails         uint64 `json:"torn_tails_truncated"`
	// SnapshotLastMs / RecoveryLastMs are the most recent snapshot write
	// and Replay durations; RecoveryRecords the records the last Replay
	// applied.
	SnapshotLastMs  float64 `json:"snapshot_last_ms"`
	RecoveryLastMs  float64 `json:"recovery_last_ms"`
	RecoveryRecords uint64  `json:"recovery_records"`
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	c := &l.stats
	s := Stats{
		Appends:           c.appends.Load(),
		AppendBytes:       c.appendBytes.Load(),
		Fsyncs:            c.fsyncs.Load(),
		Rotations:         c.rotations.Load(),
		Snapshots:         c.snapshots.Load(),
		CompactedSegments: c.compacted.Load(),
		TornTails:         c.tornTails.Load(),
		SnapshotLastMs:    float64(c.snapshotNanos.Load()) / 1e6,
		RecoveryLastMs:    float64(c.recoveryNanos.Load()) / 1e6,
		RecoveryRecords:   c.recoveryRecords.Load(),
		FsyncHist:         make(map[string]uint64),
		BatchHist:         make(map[string]uint64),
	}
	if s.Fsyncs > 0 {
		s.FsyncMeanUs = float64(c.fsyncNanos.Load()) / 1e3 / float64(s.Fsyncs)
	}
	for i, name := range fsyncLabels {
		if n := c.fsyncHist[i].Load(); n > 0 {
			s.FsyncHist[name] = n
		}
	}
	for i, name := range batchLabels {
		if n := c.batchHist[i].Load(); n > 0 {
			s.BatchHist[name] = n
		}
	}
	l.mu.Lock()
	s.Segments = len(l.sealed)
	if l.ready && !l.closed {
		s.Segments++ // the active segment
	}
	for _, seg := range l.sealed {
		s.SealedBytes += seg.size
	}
	l.mu.Unlock()
	return s
}

// Merge folds other into s (histograms summed key-wise; "last" gauges
// take the maximum, which aggregates to "worst recent" across logs).
func (s *Stats) Merge(other Stats) {
	totalNanosA := s.FsyncMeanUs * 1e3 * float64(s.Fsyncs)
	totalNanosB := other.FsyncMeanUs * 1e3 * float64(other.Fsyncs)
	s.Appends += other.Appends
	s.AppendBytes += other.AppendBytes
	s.Fsyncs += other.Fsyncs
	if s.Fsyncs > 0 {
		s.FsyncMeanUs = (totalNanosA + totalNanosB) / 1e3 / float64(s.Fsyncs)
	}
	s.Segments += other.Segments
	s.SealedBytes += other.SealedBytes
	s.Rotations += other.Rotations
	s.Snapshots += other.Snapshots
	s.CompactedSegments += other.CompactedSegments
	s.TornTails += other.TornTails
	s.RecoveryRecords += other.RecoveryRecords
	if other.SnapshotLastMs > s.SnapshotLastMs {
		s.SnapshotLastMs = other.SnapshotLastMs
	}
	if other.RecoveryLastMs > s.RecoveryLastMs {
		s.RecoveryLastMs = other.RecoveryLastMs
	}
	if s.FsyncHist == nil {
		s.FsyncHist = make(map[string]uint64)
	}
	for k, v := range other.FsyncHist {
		s.FsyncHist[k] += v
	}
	if s.BatchHist == nil {
		s.BatchHist = make(map[string]uint64)
	}
	for k, v := range other.BatchHist {
		s.BatchHist[k] += v
	}
}

// registry tracks live Logs for process-wide aggregation.
var (
	regMu    sync.Mutex
	registry = make(map[*Log]struct{})
)

func register(l *Log) {
	regMu.Lock()
	registry[l] = struct{}{}
	regMu.Unlock()
}

func unregister(l *Log) {
	regMu.Lock()
	delete(registry, l)
	regMu.Unlock()
}

// Aggregate merges the stats of every live Log in the process.
func Aggregate() Stats {
	regMu.Lock()
	logs := make([]*Log, 0, len(registry))
	for l := range registry {
		logs = append(logs, l)
	}
	regMu.Unlock()
	var out Stats
	out.FsyncHist = make(map[string]uint64)
	out.BatchHist = make(map[string]uint64)
	for _, l := range logs {
		out.Merge(l.Stats())
	}
	return out
}

func init() {
	expvar.Publish("datablinder_store", expvar.Func(func() any { return Aggregate() }))
}
