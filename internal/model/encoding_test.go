package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrderedUint64Int(t *testing.T) {
	values := []int64{math.MinInt64, -100, -1, 0, 1, 100, math.MaxInt64}
	var prev uint64
	for i, v := range values {
		u, err := OrderedUint64(v, TypeInt)
		if err != nil {
			t.Fatalf("OrderedUint64(%d): %v", v, err)
		}
		if i > 0 && u <= prev {
			t.Fatalf("order violated at %d", v)
		}
		prev = u
	}
}

func TestOrderedUint64Float(t *testing.T) {
	values := []float64{math.Inf(-1), -1e300, -6.3, -0.0001, 0, 0.0001, 6.3, 1e300, math.Inf(1)}
	var prev uint64
	for i, v := range values {
		u, err := OrderedUint64(v, TypeFloat)
		if err != nil {
			t.Fatalf("OrderedUint64(%g): %v", v, err)
		}
		if i > 0 && u <= prev {
			t.Fatalf("order violated at %g", v)
		}
		prev = u
	}
}

func TestOrderedUint64NegativeZero(t *testing.T) {
	nz, err := OrderedUint64(math.Copysign(0, -1), TypeFloat)
	if err != nil {
		t.Fatal(err)
	}
	pz, err := OrderedUint64(0.0, TypeFloat)
	if err != nil {
		t.Fatal(err)
	}
	if nz > pz {
		t.Fatal("-0.0 ordered above +0.0")
	}
}

func TestOrderedUint64Errors(t *testing.T) {
	if _, err := OrderedUint64(math.NaN(), TypeFloat); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := OrderedUint64("x", TypeInt); err == nil {
		t.Fatal("string accepted")
	}
	if _, err := OrderedUint64(1, TypeString); err == nil {
		t.Fatal("non-numeric type accepted")
	}
}

func TestOrderedUint64QuickInt(t *testing.T) {
	f := func(a, b int64) bool {
		ua, err1 := OrderedUint64(a, TypeInt)
		ub, err2 := OrderedUint64(b, TypeInt)
		if err1 != nil || err2 != nil {
			return false
		}
		return (a < b) == (ua < ub)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedUint64QuickFloat(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ua, err1 := OrderedUint64(a, TypeFloat)
		ub, err2 := OrderedUint64(b, TypeFloat)
		if err1 != nil || err2 != nil {
			return false
		}
		if a == b { // covers -0.0 vs +0.0
			return true
		}
		return (a < b) == (ua < ub)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointRoundTrip(t *testing.T) {
	tests := []float64{0, 6.3, -6.3, 123.456789, -0.000001}
	for _, v := range tests {
		fp, err := ToFixedPoint(v, TypeFloat)
		if err != nil {
			t.Fatalf("ToFixedPoint(%g): %v", v, err)
		}
		got := FromFixedPoint(fp)
		if math.Abs(got-v) > 1e-6 {
			t.Fatalf("round trip %g -> %g", v, got)
		}
	}
	fp, err := ToFixedPoint(int64(42), TypeInt)
	if err != nil || fp != 42*FixedPointScale {
		t.Fatalf("ToFixedPoint(int 42) = %d, %v", fp, err)
	}
}

func TestFixedPointErrors(t *testing.T) {
	if _, err := ToFixedPoint(math.NaN(), TypeFloat); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := ToFixedPoint(math.Inf(1), TypeFloat); err == nil {
		t.Fatal("Inf accepted")
	}
	if _, err := ToFixedPoint(1e300, TypeFloat); err == nil {
		t.Fatal("overflow accepted")
	}
	if _, err := ToFixedPoint("x", TypeFloat); err == nil {
		t.Fatal("string accepted")
	}
}
