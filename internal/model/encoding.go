package model

import (
	"fmt"
	"math"
)

// FixedPointScale is the scaling factor used when aggregating float fields
// homomorphically: floats become int64 micro-units (6 decimal digits of
// precision survive Paillier round trips).
const FixedPointScale = 1_000_000

// OrderedUint64 maps a numeric field value to a uint64 whose unsigned
// order matches the numeric order of the values, across int64 and float64
// inputs of the SAME field type (callers must not mix types within one
// field, which schema validation guarantees).
//
// Integers use the offset-by-2^63 embedding. Floats use the standard
// IEEE-754 total-order trick: flip all bits of negatives, flip only the
// sign bit of non-negatives.
func OrderedUint64(v any, t FieldType) (uint64, error) {
	switch t {
	case TypeInt:
		i, _, err := NormalizeNumeric(v, t)
		if err != nil {
			return 0, err
		}
		return uint64(i) ^ (1 << 63), nil
	case TypeFloat:
		_, f, err := NormalizeNumeric(v, t)
		if err != nil {
			return 0, err
		}
		if math.IsNaN(f) {
			return 0, fmt.Errorf("model: NaN is not orderable")
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			return ^bits, nil
		}
		return bits | (1 << 63), nil
	default:
		return 0, fmt.Errorf("model: field type %q is not orderable", string(t))
	}
}

// ToFixedPoint converts a numeric field value to int64 micro-units for
// homomorphic aggregation.
func ToFixedPoint(v any, t FieldType) (int64, error) {
	_, f, err := NormalizeNumeric(v, t)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("model: %v is not aggregatable", f)
	}
	scaled := f * FixedPointScale
	if scaled > math.MaxInt64 || scaled < math.MinInt64 {
		return 0, fmt.Errorf("model: %v overflows fixed-point range", f)
	}
	return int64(math.Round(scaled)), nil
}

// FromFixedPoint converts an aggregated fixed-point value back to float64.
func FromFixedPoint(v int64) float64 {
	return float64(v) / FixedPointScale
}
