// Package model defines DataBlinder's two conceptual abstraction models
// (paper §3): the data protection tactic model — operations, per-operation
// leakage profiles, and performance metrics — and the data access model —
// per-field protection classes and requested query functionality.
package model

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Leakage is the five-level leakage taxonomy of Fuller et al. (SoK, IEEE
// S&P 2017) adopted by the paper. Structure is the most secure level;
// Order is the weakest.
type Leakage int

// Leakage levels, ordered from least to most leakage.
const (
	LeakStructure   Leakage = iota + 1 // size of the structure only
	LeakIdentifiers                    // past/future access patterns of identifiers
	LeakPredicates                     // complex query predicate information
	LeakEqualities                     // which objects share a value
	LeakOrder                          // numerical/lexicographic order
)

var leakageNames = map[Leakage]string{
	LeakStructure:   "Structure",
	LeakIdentifiers: "Identifiers",
	LeakPredicates:  "Predicates",
	LeakEqualities:  "Equalities",
	LeakOrder:       "Order",
}

// String returns the taxonomy name of the leakage level.
func (l Leakage) String() string {
	if s, ok := leakageNames[l]; ok {
		return s
	}
	return fmt.Sprintf("Leakage(%d)", int(l))
}

// Valid reports whether l is one of the five taxonomy levels.
func (l Leakage) Valid() bool {
	return l >= LeakStructure && l <= LeakOrder
}

// Class is the data-access-model protection class C1..C5. Each class
// corresponds to its counterpart leakage level: C1 tolerates only
// Structure leakage (most protective); C5 tolerates Order leakage.
type Class int

// Protection classes.
const (
	Class1 Class = iota + 1
	Class2
	Class3
	Class4
	Class5
)

// String renders the class in the paper's "C3" notation.
func (c Class) String() string { return fmt.Sprintf("C%d", int(c)) }

// Valid reports whether c is within C1..C5.
func (c Class) Valid() bool { return c >= Class1 && c <= Class5 }

// Tolerates reports whether a field annotated with class c may employ a
// tactic operation with leakage l. A field's protection level equals the
// tactic with the weakest guarantee (§3.2: "a chain is only as strong as
// its weakest link"), so every attached tactic must individually satisfy
// the ceiling.
func (c Class) Tolerates(l Leakage) bool { return Leakage(c) >= l }

// ClassForLeakage returns the weakest (highest-numbered) class that a
// tactic with leakage l still satisfies — i.e. the class whose ceiling
// equals l.
func ClassForLeakage(l Leakage) Class { return Class(l) }

// ParseClass parses the "C3" notation.
func ParseClass(s string) (Class, error) {
	s = strings.TrimSpace(s)
	if len(s) != 2 || (s[0] != 'C' && s[0] != 'c') || s[1] < '1' || s[1] > '5' {
		return 0, fmt.Errorf("model: invalid protection class %q (want C1..C5)", s)
	}
	return Class(s[1] - '0'), nil
}

// Op identifies a high-level data-access operation from the data access
// model (Fig. 2): CRUD plus the search predicates.
type Op string

// Data-access operations. The short codes (I, EQ, BL, RG) match the
// paper's §5.1 annotation notation.
const (
	OpInsert   Op = "I"  // insert a document
	OpRead     Op = "R"  // retrieve by identifier
	OpUpdate   Op = "U"  // update a document
	OpDelete   Op = "D"  // delete a document
	OpEquality Op = "EQ" // equality search
	OpBoolean  Op = "BL" // boolean search (conjunction/disjunction/negation)
	OpRange    Op = "RG" // range query
)

var opNames = map[Op]string{
	OpInsert:   "Insert",
	OpRead:     "Read",
	OpUpdate:   "Update",
	OpDelete:   "Delete",
	OpEquality: "Equality Search",
	OpBoolean:  "Boolean Search",
	OpRange:    "Range Query",
}

// Name returns the long human-readable operation name.
func (o Op) Name() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return string(o)
}

// Valid reports whether o is a known operation code.
func (o Op) Valid() bool { _, ok := opNames[o]; return ok }

// ParseOp parses an annotation operation code such as "EQ".
func ParseOp(s string) (Op, error) {
	o := Op(strings.ToUpper(strings.TrimSpace(s)))
	if !o.Valid() {
		return "", fmt.Errorf("model: unknown operation %q", s)
	}
	return o, nil
}

// Agg identifies an aggregate function that can be combined with search
// operations (§3.2: sum, average, count, maximum, minimum, ...).
type Agg string

// Aggregate functions.
const (
	AggSum   Agg = "sum"
	AggAvg   Agg = "avg"
	AggCount Agg = "count"
	AggMin   Agg = "min"
	AggMax   Agg = "max"
)

var validAggs = map[Agg]bool{
	AggSum: true, AggAvg: true, AggCount: true, AggMin: true, AggMax: true,
}

// Valid reports whether a is a known aggregate function.
func (a Agg) Valid() bool { return validAggs[a] }

// ParseAgg parses an aggregate annotation such as "avg".
func ParseAgg(s string) (Agg, error) {
	a := Agg(strings.ToLower(strings.TrimSpace(s)))
	if !a.Valid() {
		return "", fmt.Errorf("model: unknown aggregate %q", s)
	}
	return a, nil
}

// FieldType is the declared type of a schema field. Tactics constrain
// which types they can protect (e.g. OPE/Paillier need numeric fields).
type FieldType string

// Field types.
const (
	TypeString FieldType = "string"
	TypeInt    FieldType = "int"
	TypeFloat  FieldType = "float"
	TypeBool   FieldType = "bool"
)

// Valid reports whether t is a known field type.
func (t FieldType) Valid() bool {
	switch t {
	case TypeString, TypeInt, TypeFloat, TypeBool:
		return true
	}
	return false
}

// Numeric reports whether values of this type support range and
// arithmetic-aggregate operations.
func (t FieldType) Numeric() bool { return t == TypeInt || t == TypeFloat }

// OpLeakage describes the leakage profile of a single tactic operation
// (Fig. 1: leakage is reified per operation, not per tactic, because e.g.
// update operations may leak differently from queries).
type OpLeakage struct {
	Op      Op      `json:"op"`
	Leakage Leakage `json:"leakage"`
	// Note documents operation-specific caveats, e.g. "leaks result size"
	// or "forward private: inserts reveal nothing about past queries".
	Note string `json:"note,omitempty"`
}

// PerfMetrics quantifies an operation's cost profile along the three axes
// of Fig. 1: algorithmic complexity, network overhead, and storage
// overhead. Values are descriptive metadata used for tactic comparison and
// Table 2 generation; measured numbers come from the benchmark harness.
type PerfMetrics struct {
	// Complexity is the asymptotic search/update complexity, e.g.
	// "O(n_w)" (result size), "O(log n)", "O(N)" (exhaustive).
	Complexity string `json:"complexity,omitempty"`
	// RoundTrips is the number of gateway<->cloud round trips required.
	RoundTrips int `json:"round_trips,omitempty"`
	// ClientStorage notes gateway-side state, e.g. "counter per keyword".
	ClientStorage string `json:"client_storage,omitempty"`
	// ServerStorageFactor is the approximate cloud storage expansion
	// relative to plaintext (1 means none, 2 means 2x, ...).
	ServerStorageFactor float64 `json:"server_storage_factor,omitempty"`
	// Costs are numeric per-operation cost priors (microseconds) used by
	// the cost-based planner before live measurements exist; once a tactic
	// has observed latencies, the priors only contribute their shape (the
	// PerDoc term extrapolates measured costs to other corpus sizes).
	Costs map[Op]CostPrior `json:"costs,omitempty"`
}

// CostPrior is one operation's a-priori cost model: Fixed microseconds per
// call plus PerDoc microseconds for every stored document the operation
// must touch (ORE's compare-scan query grows linearly with the corpus,
// OPE's sorted-index query does not).
type CostPrior struct {
	// Fixed is the corpus-independent cost in microseconds.
	Fixed float64 `json:"fixed,omitempty"`
	// PerDoc is the additional microseconds per stored document.
	PerDoc float64 `json:"per_doc,omitempty"`
}

// At evaluates the prior at a corpus of n documents, in microseconds.
func (p CostPrior) At(n float64) float64 { return p.Fixed + p.PerDoc*n }

// Zero reports whether the prior carries no information.
func (p CostPrior) Zero() bool { return p.Fixed == 0 && p.PerDoc == 0 }

// Annotation is the per-field data protection annotation of the data
// access model (Fig. 2 / §5.1), e.g. `C3, op [I, EQ, BL], agg [avg]`.
type Annotation struct {
	// Class is the protection ceiling for the field.
	Class Class `json:"class"`
	// Ops are the requested data-access operations.
	Ops []Op `json:"ops"`
	// Aggs are the requested aggregate functions (optional).
	Aggs []Agg `json:"aggs,omitempty"`
	// Tactics optionally pins specific tactic names, overriding adaptive
	// selection (the paper's explicit per-field tactic choice in §5.1).
	Tactics []string `json:"tactics,omitempty"`
}

// HasOp reports whether the annotation requests op.
func (a Annotation) HasOp(op Op) bool {
	for _, o := range a.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// HasAgg reports whether the annotation requests agg.
func (a Annotation) HasAgg(agg Agg) bool {
	for _, g := range a.Aggs {
		if g == agg {
			return true
		}
	}
	return false
}

// Validate checks internal consistency of the annotation.
func (a Annotation) Validate() error {
	if !a.Class.Valid() {
		return fmt.Errorf("model: invalid class %d", int(a.Class))
	}
	if len(a.Ops) == 0 {
		return errors.New("model: annotation requires at least one operation")
	}
	seen := make(map[Op]bool, len(a.Ops))
	for _, o := range a.Ops {
		if !o.Valid() {
			return fmt.Errorf("model: invalid operation %q", string(o))
		}
		if seen[o] {
			return fmt.Errorf("model: duplicate operation %q", string(o))
		}
		seen[o] = true
	}
	for _, g := range a.Aggs {
		if !g.Valid() {
			return fmt.Errorf("model: invalid aggregate %q", string(g))
		}
	}
	return nil
}

// String renders the annotation in the paper's notation.
func (a Annotation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s, op [", a.Class)
	for i, o := range a.Ops {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(string(o))
	}
	sb.WriteString("]")
	if len(a.Aggs) > 0 {
		sb.WriteString(", agg [")
		for i, g := range a.Aggs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(string(g))
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// ParseAnnotation parses the paper's annotation notation, e.g.
// "C3, op [I, EQ, BL], agg [avg]". Tactic pins may be given as
// "tactic [DET, OPE]".
func ParseAnnotation(s string) (Annotation, error) {
	var ann Annotation
	parts := splitTopLevel(s)
	if len(parts) == 0 {
		return ann, errors.New("model: empty annotation")
	}
	cls, err := ParseClass(parts[0])
	if err != nil {
		return ann, err
	}
	ann.Class = cls
	for _, p := range parts[1:] {
		p = strings.TrimSpace(p)
		switch {
		case strings.HasPrefix(p, "op"):
			items, err := parseBracketList(p, "op")
			if err != nil {
				return ann, err
			}
			for _, it := range items {
				o, err := ParseOp(it)
				if err != nil {
					return ann, err
				}
				ann.Ops = append(ann.Ops, o)
			}
		case strings.HasPrefix(p, "agg"):
			items, err := parseBracketList(p, "agg")
			if err != nil {
				return ann, err
			}
			for _, it := range items {
				g, err := ParseAgg(it)
				if err != nil {
					return ann, err
				}
				ann.Aggs = append(ann.Aggs, g)
			}
		case strings.HasPrefix(p, "tactic"):
			items, err := parseBracketList(p, "tactic")
			if err != nil {
				return ann, err
			}
			ann.Tactics = append(ann.Tactics, items...)
		default:
			return ann, fmt.Errorf("model: unknown annotation clause %q", p)
		}
	}
	if err := ann.Validate(); err != nil {
		return ann, err
	}
	return ann, nil
}

// splitTopLevel splits on commas that are not inside brackets.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		parts = append(parts, tail)
	}
	return parts
}

func parseBracketList(clause, keyword string) ([]string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(clause, keyword))
	if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
		return nil, fmt.Errorf("model: malformed %s clause %q", keyword, clause)
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(rest, "["), "]")
	var items []string
	for _, it := range strings.Split(inner, ",") {
		it = strings.TrimSpace(it)
		if it != "" {
			items = append(items, it)
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("model: empty %s list", keyword)
	}
	return items, nil
}

// Field is a named, typed, annotated schema field.
type Field struct {
	Name       string     `json:"name"`
	Type       FieldType  `json:"type"`
	Annotation Annotation `json:"annotation"`
	// Sensitive marks whether the field is protected at all; insensitive
	// fields are stored in plaintext inside the (encrypted) document and
	// get no indexes.
	Sensitive bool `json:"sensitive"`
}

// Schema describes one application document type and its protection
// annotations — the artifact managed by the data protection metadata
// subsystem (Fig. 4).
type Schema struct {
	// Name identifies the document collection, e.g. "observation".
	Name   string  `json:"name"`
	Fields []Field `json:"fields"`
}

// Validate checks the schema for structural errors: empty names, duplicate
// fields, invalid annotations, and type/operation mismatches (range and
// arithmetic aggregates require numeric fields).
func (s *Schema) Validate() error {
	if s.Name == "" {
		return errors.New("model: schema name required")
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("model: schema %q has no fields", s.Name)
	}
	seen := make(map[string]bool, len(s.Fields))
	for _, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("model: schema %q has a field with no name", s.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("model: schema %q duplicates field %q", s.Name, f.Name)
		}
		seen[f.Name] = true
		if !f.Type.Valid() {
			return fmt.Errorf("model: field %q has invalid type %q", f.Name, string(f.Type))
		}
		if !f.Sensitive {
			continue
		}
		if err := f.Annotation.Validate(); err != nil {
			return fmt.Errorf("model: field %q: %w", f.Name, err)
		}
		if f.Annotation.HasOp(OpRange) && !f.Type.Numeric() {
			return fmt.Errorf("model: field %q requests range queries on non-numeric type %q", f.Name, string(f.Type))
		}
		for _, g := range f.Annotation.Aggs {
			if g != AggCount && !f.Type.Numeric() {
				return fmt.Errorf("model: field %q requests aggregate %q on non-numeric type %q", f.Name, string(g), string(f.Type))
			}
		}
	}
	return nil
}

// Field returns the named field and whether it exists.
func (s *Schema) Field(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// SensitiveFields returns the protected fields in declaration order.
func (s *Schema) SensitiveFields() []Field {
	var out []Field
	for _, f := range s.Fields {
		if f.Sensitive {
			out = append(out, f)
		}
	}
	return out
}

// Document is an application document: a flat field-name → value map plus
// an identifier. Values must be string, int64, float64, or bool to match
// the declared FieldType.
type Document struct {
	ID     string         `json:"id"`
	Fields map[string]any `json:"fields"`
}

// UnmarshalJSON decodes the document with json.Number so integer literals
// survive losslessly: the default decoder's float64 round-trip silently
// corrupts values above 2^53. Plain integer literals that fit int64 decode
// as int64 (accepted by validation for both int and float fields);
// everything else keeps the default decoder's float64 representation.
func (d *Document) UnmarshalJSON(data []byte) error {
	type alias Document // drops the method; avoids recursing into this func
	var a alias
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&a); err != nil {
		return err
	}
	for k, v := range a.Fields {
		nv, err := convertJSONNumbers(v)
		if err != nil {
			return fmt.Errorf("model: field %q: %w", k, err)
		}
		a.Fields[k] = nv
	}
	*d = Document(a)
	return nil
}

// convertJSONNumbers recursively replaces json.Number artifacts: integer
// literals that fit int64 become int64, anything else float64.
func convertJSONNumbers(v any) (any, error) {
	switch t := v.(type) {
	case json.Number:
		s := t.String()
		if !strings.ContainsAny(s, ".eE") {
			if i, err := strconv.ParseInt(s, 10, 64); err == nil {
				return i, nil
			}
		}
		return t.Float64()
	case map[string]any:
		for k, e := range t {
			ne, err := convertJSONNumbers(e)
			if err != nil {
				return nil, err
			}
			t[k] = ne
		}
		return t, nil
	case []any:
		for i, e := range t {
			ne, err := convertJSONNumbers(e)
			if err != nil {
				return nil, err
			}
			t[i] = ne
		}
		return t, nil
	}
	return v, nil
}

// ValidateAgainst checks that the document's fields conform to the schema:
// every document field must be declared, and values must match the
// declared types. Missing fields are permitted (sparse documents).
func (d *Document) ValidateAgainst(s *Schema) error {
	if d.ID == "" {
		return errors.New("model: document requires an id")
	}
	names := make([]string, 0, len(d.Fields))
	for name := range d.Fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, ok := s.Field(name)
		if !ok {
			return fmt.Errorf("model: document %s has undeclared field %q", d.ID, name)
		}
		if err := checkValueType(d.Fields[name], f.Type); err != nil {
			return fmt.Errorf("model: document %s field %q: %w", d.ID, name, err)
		}
	}
	return nil
}

func checkValueType(v any, t FieldType) error {
	switch t {
	case TypeString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want string, got %T", v)
		}
	case TypeInt:
		switch x := v.(type) {
		case int64, int:
		case float64:
			// JSON decoding yields float64 for every number; accept it
			// for int fields when the value is integral.
			if x != math.Trunc(x) || math.IsInf(x, 0) {
				return fmt.Errorf("want int, got non-integral float %v", x)
			}
		default:
			return fmt.Errorf("want int, got %T", v)
		}
	case TypeFloat:
		switch v.(type) {
		case float64, int64, int:
		default:
			return fmt.Errorf("want float, got %T", v)
		}
	case TypeBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want bool, got %T", v)
		}
	default:
		return fmt.Errorf("unknown field type %q", string(t))
	}
	return nil
}

// NormalizeNumeric converts any accepted numeric representation to int64
// (for TypeInt) or float64 (for TypeFloat), returning an error for
// non-numeric input. It is used by tactics that index numeric values.
func NormalizeNumeric(v any, t FieldType) (int64, float64, error) {
	switch t {
	case TypeInt:
		switch x := v.(type) {
		case int64:
			return x, float64(x), nil
		case int:
			return int64(x), float64(x), nil
		case float64:
			if x == math.Trunc(x) && !math.IsInf(x, 0) {
				return int64(x), x, nil
			}
		}
	case TypeFloat:
		switch x := v.(type) {
		case float64:
			return int64(x), x, nil
		case int64:
			return x, float64(x), nil
		case int:
			return int64(x), float64(x), nil
		}
	}
	return 0, 0, fmt.Errorf("model: value %v (%T) is not numeric for type %q", v, v, string(t))
}

// ValueToString canonicalizes a field value for keyword indexing.
func ValueToString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int:
		return fmt.Sprintf("%d", x)
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		// Trim trailing zeros so 6.30 and 6.3 index identically.
		s := fmt.Sprintf("%g", x)
		return s
	default:
		return fmt.Sprintf("%v", x)
	}
}
