package model

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestLeakageOrdering(t *testing.T) {
	if !(LeakStructure < LeakIdentifiers && LeakIdentifiers < LeakPredicates &&
		LeakPredicates < LeakEqualities && LeakEqualities < LeakOrder) {
		t.Fatal("leakage levels are not strictly ordered")
	}
}

func TestLeakageString(t *testing.T) {
	tests := []struct {
		l    Leakage
		want string
	}{
		{LeakStructure, "Structure"},
		{LeakIdentifiers, "Identifiers"},
		{LeakPredicates, "Predicates"},
		{LeakEqualities, "Equalities"},
		{LeakOrder, "Order"},
		{Leakage(99), "Leakage(99)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("Leakage(%d).String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
}

func TestClassTolerates(t *testing.T) {
	// C1 tolerates only Structure; C5 tolerates everything.
	tests := []struct {
		c    Class
		l    Leakage
		want bool
	}{
		{Class1, LeakStructure, true},
		{Class1, LeakIdentifiers, false},
		{Class2, LeakIdentifiers, true},
		{Class2, LeakPredicates, false},
		{Class3, LeakPredicates, true},
		{Class3, LeakEqualities, false},
		{Class4, LeakEqualities, true},
		{Class4, LeakOrder, false},
		{Class5, LeakOrder, true},
		{Class5, LeakStructure, true},
	}
	for _, tt := range tests {
		if got := tt.c.Tolerates(tt.l); got != tt.want {
			t.Errorf("%s.Tolerates(%s) = %v, want %v", tt.c, tt.l, got, tt.want)
		}
	}
}

func TestClassToleratesMonotone(t *testing.T) {
	// Property: if class c tolerates leakage l, every weaker class (c+1..C5)
	// also tolerates l.
	f := func(ci, li uint8) bool {
		c := Class(ci%5) + 1
		l := Leakage(li%5) + 1
		if !c.Tolerates(l) {
			return true
		}
		for weaker := c; weaker <= Class5; weaker++ {
			if !weaker.Tolerates(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseClass(t *testing.T) {
	tests := []struct {
		in      string
		want    Class
		wantErr bool
	}{
		{"C1", Class1, false},
		{"c5", Class5, false},
		{" C3 ", Class3, false},
		{"C0", 0, true},
		{"C6", 0, true},
		{"X3", 0, true},
		{"", 0, true},
		{"C33", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseClass(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseClass(%q) err=%v, wantErr=%v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseClass(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseOpAndAgg(t *testing.T) {
	if op, err := ParseOp(" eq "); err != nil || op != OpEquality {
		t.Fatalf("ParseOp(eq) = %v, %v", op, err)
	}
	if _, err := ParseOp("ZZ"); err == nil {
		t.Fatal("ParseOp accepted unknown code")
	}
	if ag, err := ParseAgg("AVG"); err != nil || ag != AggAvg {
		t.Fatalf("ParseAgg(AVG) = %v, %v", ag, err)
	}
	if _, err := ParseAgg("median"); err == nil {
		t.Fatal("ParseAgg accepted unknown aggregate")
	}
}

func TestParseAnnotationPaperExamples(t *testing.T) {
	// The exact annotations from §5.1 of the paper.
	tests := []struct {
		in        string
		wantClass Class
		wantOps   []Op
		wantAggs  []Agg
	}{
		{"C3, op [I, EQ, BL]", Class3, []Op{OpInsert, OpEquality, OpBoolean}, nil},
		{"C2, op [I, EQ]", Class2, []Op{OpInsert, OpEquality}, nil},
		{"C5, op [I, EQ, BL, RG]", Class5, []Op{OpInsert, OpEquality, OpBoolean, OpRange}, nil},
		{"C1, op [I]", Class1, []Op{OpInsert}, nil},
		{"C3, op [I, EQ, BL], agg [avg]", Class3, []Op{OpInsert, OpEquality, OpBoolean}, []Agg{AggAvg}},
	}
	for _, tt := range tests {
		ann, err := ParseAnnotation(tt.in)
		if err != nil {
			t.Errorf("ParseAnnotation(%q): %v", tt.in, err)
			continue
		}
		if ann.Class != tt.wantClass {
			t.Errorf("%q: class = %v, want %v", tt.in, ann.Class, tt.wantClass)
		}
		if len(ann.Ops) != len(tt.wantOps) {
			t.Errorf("%q: ops = %v, want %v", tt.in, ann.Ops, tt.wantOps)
			continue
		}
		for i := range tt.wantOps {
			if ann.Ops[i] != tt.wantOps[i] {
				t.Errorf("%q: op[%d] = %v, want %v", tt.in, i, ann.Ops[i], tt.wantOps[i])
			}
		}
		if len(ann.Aggs) != len(tt.wantAggs) {
			t.Errorf("%q: aggs = %v, want %v", tt.in, ann.Aggs, tt.wantAggs)
		}
	}
}

func TestParseAnnotationTacticPins(t *testing.T) {
	ann, err := ParseAnnotation("C5, op [I, EQ, RG], tactic [DET, OPE]")
	if err != nil {
		t.Fatalf("ParseAnnotation: %v", err)
	}
	if len(ann.Tactics) != 2 || ann.Tactics[0] != "DET" || ann.Tactics[1] != "OPE" {
		t.Fatalf("tactic pins = %v", ann.Tactics)
	}
}

func TestParseAnnotationErrors(t *testing.T) {
	bad := []string{
		"",
		"C3",                     // no ops
		"C9, op [I]",             // bad class
		"C3, op []",              // empty op list
		"C3, op [I, I]",          // duplicate op
		"C3, op [XX]",            // unknown op
		"C3, op [I], agg [mode]", // unknown agg
		"C3, weird [I]",          // unknown clause
		"C3, op I",               // missing brackets
	}
	for _, in := range bad {
		if _, err := ParseAnnotation(in); err == nil {
			t.Errorf("ParseAnnotation(%q) succeeded, want error", in)
		}
	}
}

func TestAnnotationRoundTrip(t *testing.T) {
	in := "C3, op [I, EQ, BL], agg [avg]"
	ann, err := ParseAnnotation(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := ann.String()
	ann2, err := ParseAnnotation(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if ann2.String() != out {
		t.Fatalf("annotation round trip unstable: %q -> %q", out, ann2.String())
	}
}

func observationSchema() *Schema {
	return &Schema{
		Name: "observation",
		Fields: []Field{
			{Name: "id", Type: TypeString},
			{Name: "status", Type: TypeString, Sensitive: true,
				Annotation: Annotation{Class: Class3, Ops: []Op{OpInsert, OpEquality, OpBoolean}}},
			{Name: "effective", Type: TypeInt, Sensitive: true,
				Annotation: Annotation{Class: Class5, Ops: []Op{OpInsert, OpEquality, OpBoolean, OpRange}}},
			{Name: "value", Type: TypeFloat, Sensitive: true,
				Annotation: Annotation{Class: Class3, Ops: []Op{OpInsert, OpEquality, OpBoolean}, Aggs: []Agg{AggAvg}}},
		},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := observationSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
}

func TestSchemaValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Schema)
		substr string
	}{
		{"empty name", func(s *Schema) { s.Name = "" }, "name required"},
		{"no fields", func(s *Schema) { s.Fields = nil }, "no fields"},
		{"dup field", func(s *Schema) { s.Fields = append(s.Fields, s.Fields[1]) }, "duplicates"},
		{"bad type", func(s *Schema) { s.Fields[0].Type = "blob" }, "invalid type"},
		{"range on string", func(s *Schema) {
			s.Fields[1].Annotation.Ops = append(s.Fields[1].Annotation.Ops, OpRange)
		}, "range queries on non-numeric"},
		{"avg on string", func(s *Schema) {
			s.Fields[1].Annotation.Aggs = []Agg{AggAvg}
		}, "aggregate"},
		{"unnamed field", func(s *Schema) { s.Fields[0].Name = "" }, "no name"},
		{"bad class", func(s *Schema) { s.Fields[1].Annotation.Class = 7 }, "invalid class"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := observationSchema()
			tt.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid schema")
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Fatalf("error %q does not contain %q", err, tt.substr)
			}
		})
	}
}

func TestCountAggregateOnString(t *testing.T) {
	// count is the one aggregate that works on non-numeric fields.
	s := observationSchema()
	s.Fields[1].Annotation.Aggs = []Agg{AggCount}
	if err := s.Validate(); err != nil {
		t.Fatalf("count on string field rejected: %v", err)
	}
}

func TestSchemaFieldLookup(t *testing.T) {
	s := observationSchema()
	if f, ok := s.Field("status"); !ok || f.Name != "status" {
		t.Fatal("Field lookup failed")
	}
	if _, ok := s.Field("missing"); ok {
		t.Fatal("Field lookup found nonexistent field")
	}
	sf := s.SensitiveFields()
	if len(sf) != 3 {
		t.Fatalf("SensitiveFields = %d, want 3", len(sf))
	}
}

func TestDocumentValidation(t *testing.T) {
	s := observationSchema()
	doc := &Document{ID: "f001", Fields: map[string]any{
		"status":    "final",
		"effective": int64(1359966610),
		"value":     6.3,
	}}
	if err := doc.ValidateAgainst(s); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}

	bad := []*Document{
		{ID: "", Fields: map[string]any{"status": "final"}},
		{ID: "x", Fields: map[string]any{"unknown": "v"}},
		{ID: "x", Fields: map[string]any{"status": 42}},
		{ID: "x", Fields: map[string]any{"effective": "soon"}},
		{ID: "x", Fields: map[string]any{"value": "high"}},
	}
	for i, d := range bad {
		if err := d.ValidateAgainst(s); err == nil {
			t.Errorf("bad document %d accepted", i)
		}
	}
}

func TestDocumentIntAcceptsGoInt(t *testing.T) {
	s := observationSchema()
	doc := &Document{ID: "f002", Fields: map[string]any{"effective": 123}}
	if err := doc.ValidateAgainst(s); err != nil {
		t.Fatalf("int value rejected for int field: %v", err)
	}
	// Float fields accept ints too (common after JSON decoding fix-ups).
	doc = &Document{ID: "f003", Fields: map[string]any{"value": 6}}
	if err := doc.ValidateAgainst(s); err != nil {
		t.Fatalf("int value rejected for float field: %v", err)
	}
}

func TestIntFieldsAcceptIntegralJSONFloats(t *testing.T) {
	// JSON decoding produces float64 for every number; integral floats
	// must be accepted (and normalized) for int fields, non-integral ones
	// rejected.
	s := observationSchema()
	doc := &Document{ID: "j1", Fields: map[string]any{"effective": 1359966610.0}}
	if err := doc.ValidateAgainst(s); err != nil {
		t.Fatalf("integral float rejected for int field: %v", err)
	}
	doc = &Document{ID: "j2", Fields: map[string]any{"effective": 135.5}}
	if err := doc.ValidateAgainst(s); err == nil {
		t.Fatal("non-integral float accepted for int field")
	}
	i, _, err := NormalizeNumeric(42.0, TypeInt)
	if err != nil || i != 42 {
		t.Fatalf("NormalizeNumeric(42.0, int) = %d, %v", i, err)
	}
	if _, _, err := NormalizeNumeric(42.5, TypeInt); err == nil {
		t.Fatal("NormalizeNumeric accepted non-integral float for int")
	}
}

func TestDocumentUnmarshalLosslessInts(t *testing.T) {
	// 2^53+1 is the first integer float64 cannot represent; the default
	// map[string]any decode silently returns 2^53 for it.
	raw := []byte(`{"id":"big","fields":{
		"issued": 9007199254740993,
		"effective": -9007199254740995,
		"value": 6.3,
		"exp": 1e3,
		"status": "final",
		"nested": {"n": 9007199254740993, "list": [9007199254740993, 0.5]}
	}}`)
	var d Document
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if d.ID != "big" {
		t.Fatalf("ID = %q", d.ID)
	}
	if d.Fields["issued"] != int64(9007199254740993) {
		t.Errorf("issued = %v (%T)", d.Fields["issued"], d.Fields["issued"])
	}
	if d.Fields["effective"] != int64(-9007199254740995) {
		t.Errorf("effective = %v (%T)", d.Fields["effective"], d.Fields["effective"])
	}
	if d.Fields["value"] != 6.3 {
		t.Errorf("value = %v (%T)", d.Fields["value"], d.Fields["value"])
	}
	// Exponent notation is a float literal even when integral.
	if d.Fields["exp"] != 1000.0 {
		t.Errorf("exp = %v (%T)", d.Fields["exp"], d.Fields["exp"])
	}
	if d.Fields["status"] != "final" {
		t.Errorf("status = %v", d.Fields["status"])
	}
	nested := d.Fields["nested"].(map[string]any)
	if nested["n"] != int64(9007199254740993) {
		t.Errorf("nested.n = %v (%T)", nested["n"], nested["n"])
	}
	list := nested["list"].([]any)
	if list[0] != int64(9007199254740993) || list[1] != 0.5 {
		t.Errorf("nested.list = %v", list)
	}
	// Integers beyond int64 fall back to float64 rather than erroring.
	var huge Document
	if err := json.Unmarshal([]byte(`{"id":"h","fields":{"v": 99999999999999999999}}`), &huge); err != nil {
		t.Fatalf("Unmarshal(>int64): %v", err)
	}
	if _, ok := huge.Fields["v"].(float64); !ok {
		t.Errorf("beyond-int64 literal = %T, want float64", huge.Fields["v"])
	}
}

func TestNormalizeNumeric(t *testing.T) {
	if i, _, err := NormalizeNumeric(42, TypeInt); err != nil || i != 42 {
		t.Fatalf("NormalizeNumeric(int) = %d, %v", i, err)
	}
	if i, _, err := NormalizeNumeric(int64(7), TypeInt); err != nil || i != 7 {
		t.Fatalf("NormalizeNumeric(int64) = %d, %v", i, err)
	}
	if _, f, err := NormalizeNumeric(6.3, TypeFloat); err != nil || f != 6.3 {
		t.Fatalf("NormalizeNumeric(float64) = %g, %v", f, err)
	}
	if _, f, err := NormalizeNumeric(6, TypeFloat); err != nil || f != 6.0 {
		t.Fatalf("NormalizeNumeric(int->float) = %g, %v", f, err)
	}
	if _, _, err := NormalizeNumeric("oops", TypeInt); err == nil {
		t.Fatal("NormalizeNumeric accepted a string")
	}
	if _, _, err := NormalizeNumeric(1, TypeString); err == nil {
		t.Fatal("NormalizeNumeric accepted non-numeric field type")
	}
}

func TestValueToString(t *testing.T) {
	tests := []struct {
		in   any
		want string
	}{
		{"abc", "abc"},
		{true, "true"},
		{false, "false"},
		{42, "42"},
		{int64(42), "42"},
		{6.3, "6.3"},
		{6.0, "6"},
	}
	for _, tt := range tests {
		if got := ValueToString(tt.in); got != tt.want {
			t.Errorf("ValueToString(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestClassForLeakage(t *testing.T) {
	for l := LeakStructure; l <= LeakOrder; l++ {
		c := ClassForLeakage(l)
		if !c.Tolerates(l) {
			t.Errorf("ClassForLeakage(%s) = %s does not tolerate %s", l, c, l)
		}
		if c > Class1 && (c - 1).Tolerates(l) {
			t.Errorf("ClassForLeakage(%s) = %s is not the tightest class", l, c)
		}
	}
}
