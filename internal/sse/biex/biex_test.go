package biex

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"datablinder/internal/crypto/primitives"
	"datablinder/internal/sse/emm"
	"datablinder/internal/store/kvstore"
)

func setup(t testing.TB, v Variant) (*Client, *Server) {
	t.Helper()
	key, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	c, err := NewClient(key, NewMemState(), v)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return c, NewServer(kvstore.New(), "obs")
}

func insert(t testing.TB, c *Client, s *Server, id string, kws ...string) {
	t.Helper()
	groups, err := c.Insert("obs", id, kws, SingleShard)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	for _, e := range groups {
		if err := s.Insert(*e); err != nil {
			t.Fatalf("server Insert: %v", err)
		}
	}
}

func run(t testing.TB, c *Client, s *Server, q Query) []string {
	t.Helper()
	tok, err := c.Token("obs", q)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	vids, err := s.Search(tok)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	ids, err := c.Resolve("obs", vids)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return ids
}

func pos(w string) Literal { return Literal{Keyword: w} }
func neg(w string) Literal { return Literal{Keyword: w, Negated: true} }

// seedCorpus inserts a small medical corpus shared by many tests.
func seedCorpus(t testing.TB, c *Client, s *Server) {
	insert(t, c, s, "d1", "status=final", "code=glucose", "interp=high")
	insert(t, c, s, "d2", "status=final", "code=glucose", "interp=normal")
	insert(t, c, s, "d3", "status=draft", "code=glucose", "interp=high")
	insert(t, c, s, "d4", "status=final", "code=insulin", "interp=high")
}

func variants(t *testing.T, f func(t *testing.T, variant Variant)) {
	t.Helper()
	for _, v := range []Variant{Variant2Lev, VariantZMF} {
		t.Run(string(v), func(t *testing.T) { f(t, v) })
	}
}

func TestSingleKeyword(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		got := run(t, c, s, Query{{pos("code=glucose")}})
		if !reflect.DeepEqual(got, []string{"d1", "d2", "d3"}) {
			t.Fatalf("single keyword = %v", got)
		}
	})
}

func TestConjunction(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		got := run(t, c, s, Query{{pos("status=final"), pos("code=glucose")}})
		if !reflect.DeepEqual(got, []string{"d1", "d2"}) {
			t.Fatalf("conjunction = %v", got)
		}
		got = run(t, c, s, Query{{pos("status=final"), pos("code=glucose"), pos("interp=high")}})
		if !reflect.DeepEqual(got, []string{"d1"}) {
			t.Fatalf("3-way conjunction = %v", got)
		}
	})
}

func TestDisjunction(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		got := run(t, c, s, Query{{pos("code=insulin")}, {pos("status=draft")}})
		if !reflect.DeepEqual(got, []string{"d3", "d4"}) {
			t.Fatalf("disjunction = %v", got)
		}
	})
}

func TestNegation(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		// final AND NOT high -> d2
		got := run(t, c, s, Query{{pos("status=final"), neg("interp=high")}})
		if !reflect.DeepEqual(got, []string{"d2"}) {
			t.Fatalf("negation = %v", got)
		}
	})
}

func TestDNFMix(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		// (glucose AND high) OR (insulin) -> d1, d3, d4
		got := run(t, c, s, Query{
			{pos("code=glucose"), pos("interp=high")},
			{pos("code=insulin")},
		})
		if !reflect.DeepEqual(got, []string{"d1", "d3", "d4"}) {
			t.Fatalf("DNF = %v", got)
		}
	})
}

func TestEmptyResults(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		if got := run(t, c, s, Query{{pos("code=never")}}); len(got) != 0 {
			t.Fatalf("unknown keyword = %v", got)
		}
		if got := run(t, c, s, Query{{pos("status=draft"), pos("code=insulin")}}); len(got) != 0 {
			t.Fatalf("unsatisfiable conjunction = %v", got)
		}
	})
}

func TestDeleteHidesDocument(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		if err := c.Delete("obs", "d1"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		got := run(t, c, s, Query{{pos("code=glucose")}})
		if !reflect.DeepEqual(got, []string{"d2", "d3"}) {
			t.Fatalf("after delete = %v", got)
		}
		got = run(t, c, s, Query{{pos("status=final"), pos("interp=high")}})
		if !reflect.DeepEqual(got, []string{"d4"}) {
			t.Fatalf("conjunction after delete = %v", got)
		}
	})
}

func TestUpdateReplacesKeywords(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		seedCorpus(t, c, s)
		// d3 transitions draft -> final: delete + reinsert with new keywords.
		if err := c.Delete("obs", "d3"); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		insert(t, c, s, "d3", "status=final", "code=glucose", "interp=high")

		got := run(t, c, s, Query{{pos("status=draft")}})
		if len(got) != 0 {
			t.Fatalf("stale keyword still matches: %v", got)
		}
		got = run(t, c, s, Query{{pos("status=final"), pos("code=glucose")}})
		if !reflect.DeepEqual(got, []string{"d1", "d2", "d3"}) {
			t.Fatalf("after update = %v", got)
		}
	})
}

func TestDeleteUnknownIsNoop(t *testing.T) {
	c, _ := setup(t, Variant2Lev)
	if err := c.Delete("obs", "never-existed"); err != nil {
		t.Fatalf("Delete(unknown): %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	c, _ := setup(t, Variant2Lev)
	if _, err := c.Token("obs", Query{}); err != ErrEmptyQuery {
		t.Fatalf("empty query = %v", err)
	}
	if _, err := c.Token("obs", Query{{neg("a")}}); err != ErrNoPositiveLiteral {
		t.Fatalf("all-negative conjunction = %v", err)
	}
}

func TestBadVariant(t *testing.T) {
	key, _ := primitives.NewRandomKey()
	if _, err := NewClient(key, NewMemState(), Variant("bogus")); err != ErrBadVariant {
		t.Fatalf("bad variant = %v", err)
	}
}

func TestDuplicateKeywordsDeduplicated(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		c, s := setup(t, v)
		insert(t, c, s, "d1", "w", "w", "w")
		got := run(t, c, s, Query{{pos("w")}})
		if !reflect.DeepEqual(got, []string{"d1"}) {
			t.Fatalf("dedup = %v", got)
		}
	})
}

func TestVariantsAgreeQuick(t *testing.T) {
	// Property: both variants and a plaintext reference evaluator agree on
	// random corpora and random 2-term conjunctive/negated queries.
	key, _ := primitives.NewRandomKey()
	c2, err := NewClient(key, NewMemState(), Variant2Lev)
	if err != nil {
		t.Fatal(err)
	}
	cz, err := NewClient(key, NewMemState(), VariantZMF)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(kvstore.New(), "obs")
	sz := NewServer(kvstore.New(), "obs")
	ref := make(map[string]map[string]bool) // id -> keyword set
	nextID := 0

	f := func(kwMask uint8, queryA, queryB uint8, negB bool) bool {
		// Insert a doc with 1-4 keywords drawn from a pool of 6.
		var kws []string
		for b := 0; b < 6; b++ {
			if kwMask&(1<<b) != 0 {
				kws = append(kws, fmt.Sprintf("k%d", b))
			}
		}
		if len(kws) == 0 {
			kws = []string{"k0"}
		}
		id := fmt.Sprintf("d%03d", nextID)
		nextID++
		e2, err := c2.Insert("obs", id, kws, SingleShard)
		if err != nil {
			return false
		}
		for _, e := range e2 {
			if err := s2.Insert(*e); err != nil {
				return false
			}
		}
		ez, err := cz.Insert("obs", id, kws, SingleShard)
		if err != nil {
			return false
		}
		for _, e := range ez {
			if err := sz.Insert(*e); err != nil {
				return false
			}
		}
		ref[id] = make(map[string]bool)
		for _, w := range kws {
			ref[id][w] = true
		}

		wa := fmt.Sprintf("k%d", queryA%6)
		wb := fmt.Sprintf("k%d", queryB%6)
		q := Query{{pos(wa), {Keyword: wb, Negated: negB}}}

		var want []string
		for id, set := range ref {
			if set[wa] && set[wb] != negB {
				want = append(want, id)
			}
		}
		sort.Strings(want)

		got2 := runQuiet(c2, s2, q)
		gotz := runQuiet(cz, sz, q)
		return reflect.DeepEqual(got2, want) && reflect.DeepEqual(gotz, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func runQuiet(c *Client, s *Server, q Query) []string {
	tok, err := c.Token("obs", q)
	if err != nil {
		return nil
	}
	vids, err := s.Search(tok)
	if err != nil {
		return nil
	}
	ids, err := c.Resolve("obs", vids)
	if err != nil {
		return nil
	}
	return ids
}

// TestPartitionedMatchesSingleServer drives the sharded placement contract
// directly: the same corpus lands on one server via SingleShard and on
// three servers via a hash of the routing label, and every query — routed
// per conjunction to the shard owning its anchor's label, results merged
// — must agree with the single-server run.
func TestPartitionedMatchesSingleServer(t *testing.T) {
	variants(t, func(t *testing.T, v Variant) {
		key, err := primitives.NewRandomKey()
		if err != nil {
			t.Fatal(err)
		}
		single, err := NewClient(key, NewMemState(), v)
		if err != nil {
			t.Fatal(err)
		}
		parted, err := NewClient(key, NewMemState(), v)
		if err != nil {
			t.Fatal(err)
		}
		ss := NewServer(kvstore.New(), "obs")
		shards := []*Server{
			NewServer(kvstore.New(), "obs"),
			NewServer(kvstore.New(), "obs"),
			NewServer(kvstore.New(), "obs"),
		}
		shardOf := func(label string) int {
			h := 0
			for i := 0; i < len(label); i++ {
				h = h*31 + int(label[i])
			}
			if h < 0 {
				h = -h
			}
			return h % len(shards)
		}

		docs := map[string][]string{
			"d1": {"status=final", "code=glucose", "interp=high"},
			"d2": {"status=final", "code=glucose", "interp=normal"},
			"d3": {"status=draft", "code=glucose", "interp=high"},
			"d4": {"status=final", "code=insulin", "interp=high"},
			"d5": {"status=final"},
		}
		touched := make(map[int]bool)
		for id, kws := range docs {
			insert(t, single, ss, id, kws...)
			groups, err := parted.Insert("obs", id, kws, shardOf)
			if err != nil {
				t.Fatalf("Insert(%s): %v", id, err)
			}
			for s, e := range groups {
				touched[s] = true
				if err := shards[s].Insert(*e); err != nil {
					t.Fatalf("shard %d Insert: %v", s, err)
				}
			}
		}
		if len(touched) < 2 {
			t.Fatalf("entries landed on %d shards — partitioning is not spreading", len(touched))
		}

		runParted := func(q Query) []string {
			tok, err := parted.Token("obs", q)
			if err != nil {
				t.Fatalf("Token: %v", err)
			}
			var lists [][]string
			for s := range shards {
				var sub SearchToken
				for _, ct := range tok.Conjunctions {
					if shardOf(ct.Route) == s {
						sub.Conjunctions = append(sub.Conjunctions, ct)
					}
				}
				if len(sub.Conjunctions) == 0 {
					continue
				}
				vids, err := shards[s].Search(sub)
				if err != nil {
					t.Fatalf("shard %d Search: %v", s, err)
				}
				lists = append(lists, vids)
			}
			merged := make(map[string]bool)
			var union []string
			for _, l := range lists {
				for _, vid := range l {
					if !merged[vid] {
						merged[vid] = true
						union = append(union, vid)
					}
				}
			}
			ids, err := parted.Resolve("obs", union)
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			return ids
		}

		queries := []Query{
			{{pos("code=glucose")}},
			{{pos("status=final"), pos("code=glucose")}},
			{{pos("status=final"), pos("code=glucose"), pos("interp=high")}},
			{{pos("status=final"), neg("interp=high")}},
			{{pos("code=glucose"), pos("interp=high")}, {pos("code=insulin")}},
			{{pos("code=never")}},
			{{pos("status=draft"), pos("code=insulin")}},
		}
		for i, q := range queries {
			want := run(t, single, ss, q)
			got := runParted(q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("query %d: partitioned %v != single %v", i, got, want)
			}
		}
	})
}

func TestBucketRouteStableAndScoped(t *testing.T) {
	c, _ := setup(t, Variant2Lev)
	if c.BucketRoute("obs", "w", 0) != c.BucketRoute("obs", "w", 0) {
		t.Fatal("routing label not deterministic")
	}
	if c.BucketRoute("obs", "w", 0) == c.BucketRoute("obs", "x", 0) {
		t.Fatal("distinct keywords share a routing label")
	}
	if c.BucketRoute("obs", "w", 0) == c.BucketRoute("other", "w", 0) {
		t.Fatal("routing label leaks across namespaces")
	}
	if c.BucketRoute("obs", "w", 0) == c.BucketRoute("obs", "w", 1) {
		t.Fatal("distinct spill buckets share a routing label")
	}
}

// TestSpillFansHotKeywordAcrossBuckets drives one keyword past several
// spill thresholds and checks (a) the query fans one ConjToken per
// bucket, each with a distinct route, (b) the union over bucket slices
// equals the full corpus, and (c) a cold keyword stays single-bucket.
func TestSpillFansHotKeywordAcrossBuckets(t *testing.T) {
	for _, v := range []Variant{Variant2Lev, VariantZMF} {
		t.Run(string(v), func(t *testing.T) {
			c, s := setup(t, v)
			const docs = SpillThreshold*2 + 5 // 3 buckets
			var want []string
			for i := 0; i < docs; i++ {
				id := fmt.Sprintf("d%03d", i)
				want = append(want, id)
				insert(t, c, s, id, "status=final", fmt.Sprintf("seq=%03d", i))
			}
			if n, _ := c.Buckets("obs", "status=final"); n != 3 {
				t.Fatalf("Buckets(hot) = %d, want 3", n)
			}
			if n, _ := c.Buckets("obs", "seq=000"); n != 1 {
				t.Fatalf("Buckets(cold) = %d, want 1", n)
			}
			tok, err := c.Token("obs", Query{{pos("status=final")}})
			if err != nil {
				t.Fatal(err)
			}
			if len(tok.Conjunctions) != 3 {
				t.Fatalf("hot conjunction fanned to %d sub-tokens, want 3", len(tok.Conjunctions))
			}
			routes := make(map[string]bool)
			for _, ct := range tok.Conjunctions {
				routes[ct.Route] = true
			}
			if len(routes) != 3 {
				t.Fatalf("%d distinct routes across 3 buckets", len(routes))
			}
			got := run(t, c, s, Query{{pos("status=final")}})
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("spilled union = %v, want all %d docs", got, docs)
			}
			// A conjunction refines within each bucket slice too.
			got = run(t, c, s, Query{{pos("status=final"), pos(fmt.Sprintf("seq=%03d", docs-1))}})
			if fmt.Sprint(got) != fmt.Sprint([]string{fmt.Sprintf("d%03d", docs-1)}) {
				t.Fatalf("conjunction across spill = %v", got)
			}
		})
	}
}

func TestKVStateVersions(t *testing.T) {
	st := NewKVState(kvstore.New())
	if err := st.SetVersion("ns", "d1", 3); err != nil {
		t.Fatal(err)
	}
	v, err := st.Version("ns", "d1")
	if err != nil || v != 3 {
		t.Fatalf("Version = %d, %v", v, err)
	}
	if v, _ := st.Version("ns", "absent"); v != 0 {
		t.Fatalf("Version(absent) = %d", v)
	}
}

func benchInsert(b *testing.B, v Variant) {
	c, s := setup(b, v)
	kws := []string{"a", "b", "c", "d", "e"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups, err := c.Insert("obs", fmt.Sprintf("d%d", i), kws, SingleShard)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range groups {
			if err := s.Insert(*e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkInsert2Lev5Keywords(b *testing.B) { benchInsert(b, Variant2Lev) }
func BenchmarkInsertZMF5Keywords(b *testing.B)  { benchInsert(b, VariantZMF) }

func benchConjunction(b *testing.B, v Variant) {
	c, s := setup(b, v)
	for i := 0; i < 500; i++ {
		kws := []string{"common"}
		if i%10 == 0 {
			kws = append(kws, "rare")
		}
		groups, _ := c.Insert("obs", fmt.Sprintf("d%d", i), kws, SingleShard)
		for _, e := range groups {
			s.Insert(*e)
		}
	}
	q := Query{{pos("common"), pos("rare")}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok, err := c.Token("obs", q)
		if err != nil {
			b.Fatal(err)
		}
		vids, err := s.Search(tok)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Resolve("obs", vids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConjunction2Lev(b *testing.B) { benchConjunction(b, Variant2Lev) }
func BenchmarkConjunctionZMF(b *testing.B)  { benchConjunction(b, VariantZMF) }

func TestPairCellsShareSealedPayload(t *testing.T) {
	c, s := setup(t, Variant2Lev)
	groups, err := c.Insert("obs", "doc1", []string{"a", "b", "c"}, SingleShard)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	g, ok := groups[0]
	if !ok {
		t.Fatal("no shard-0 group")
	}
	if len(g.CrossPacked) == 0 {
		t.Fatal("no packed pair cells")
	}
	cells := 0
	for _, p := range g.CrossPacked {
		cells += p.Count
		if len(p.Shared) == 0 {
			t.Fatal("packed pair entry lacks shared payload")
		}
		if len(p.Nonce) != emm.SharedNonceLen {
			t.Fatalf("nonce len = %d, want %d", len(p.Nonce), emm.SharedNonceLen)
		}
		// Value dedup: each cell ships a fixed-size key wrap, not a
		// replicated sealed payload.
		if p.ValLen != emm.SharedWrapLen {
			t.Fatalf("ValLen = %d, want wrap size %d", p.ValLen, emm.SharedWrapLen)
		}
		if len(p.Vals) != p.Count*emm.SharedWrapLen {
			t.Fatalf("Vals = %d bytes for %d cells, want %d", len(p.Vals), p.Count, p.Count*emm.SharedWrapLen)
		}
	}
	if want := 3; cells != want { // C(3,2) pairs on a single shard
		t.Fatalf("pair cells = %d, want %d", cells, want)
	}
	if err := s.Insert(*g); err != nil {
		t.Fatalf("server Insert: %v", err)
	}
	got := run(t, c, s, Query{{pos("a"), pos("b")}})
	if !reflect.DeepEqual(got, []string{"doc1"}) {
		t.Fatalf("conjunction over shared pair cells = %v, want [doc1]", got)
	}
}

func TestUnpackRejectsMalformedShared(t *testing.T) {
	mk := func(valLen, nonceLen int) PackedEntry {
		return PackedEntry{
			Count:   1,
			AddrLen: 4,
			ValLen:  valLen,
			Addrs:   make([]byte, 4),
			Vals:    make([]byte, valLen),
			Shared:  []byte("sealed"),
			Nonce:   make([]byte, nonceLen),
		}
	}
	if _, err := UnpackEntries([]PackedEntry{mk(emm.SharedWrapLen+1, emm.SharedNonceLen)}); err == nil {
		t.Fatal("UnpackEntries accepted shared entry with non-wrap ValLen")
	}
	if _, err := UnpackEntries([]PackedEntry{mk(emm.SharedWrapLen, emm.SharedNonceLen-1)}); err == nil {
		t.Fatal("UnpackEntries accepted shared entry with short nonce")
	}
	if _, err := UnpackEntries([]PackedEntry{mk(emm.SharedWrapLen, emm.SharedNonceLen)}); err != nil {
		t.Fatalf("UnpackEntries rejected well-formed shared entry: %v", err)
	}
}
