// Package biex implements boolean searchable symmetric encryption in the
// style of the IEX construction of Kamara and Moataz (EUROCRYPT 2017),
// in the two variants the paper integrates from Clusion:
//
//   - BIEX-2Lev: a *global* encrypted multimap g (keyword → ids) plus a
//     *cross* multimap x (keyword pair → ids of documents containing both).
//     Conjunctions resolve by intersecting server-side multimap lookups —
//     read-efficient but storage-heavy (the paper's "storage impl.
//     complexity" challenge).
//   - BIEX-ZMF: the same global multimap, with the cross multimap replaced
//     by per-keyword matryoshka (counting Bloom) filters — space-efficient
//     with a bounded false-positive rate.
//
// Queries are boolean formulas in disjunctive normal form; each
// conjunction needs at least one positive literal (the IEX anchor).
// The leakage level is Predicates (protection class 3): the server learns
// the shape of the query and partial intersection sizes, not the keywords.
//
// Deletions and updates use *versioned index ids*: every insert of a
// document id is tagged with a fresh version (id#v). Deleting bumps the
// version without inserting, so stale index cells resolve to superseded
// versions and are dropped at resolution time. This layers dynamism over
// the static IEX structures without server-side tombstones.
package biex

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"datablinder/internal/crypto/primitives"
	"datablinder/internal/sse/emm"
	"datablinder/internal/sse/zmf"
	"datablinder/internal/store/kvstore"
)

// Variant selects the cross-keyword structure.
type Variant string

// Variants.
const (
	Variant2Lev Variant = "2lev"
	VariantZMF  Variant = "zmf"
)

// Errors returned by this package.
var (
	ErrNoPositiveLiteral = errors.New("biex: every conjunction needs at least one positive literal")
	ErrEmptyQuery        = errors.New("biex: empty query")
	ErrBadVariant        = errors.New("biex: unknown variant")
)

// Literal is one keyword occurrence in a conjunction.
type Literal struct {
	Keyword string `json:"keyword"`
	Negated bool   `json:"negated,omitempty"`
}

// Query is a boolean formula in DNF: the union of its conjunctions.
type Query [][]Literal

// Validate checks the DNF restrictions.
func (q Query) Validate() error {
	if len(q) == 0 {
		return ErrEmptyQuery
	}
	for _, conj := range q {
		hasPos := false
		for _, l := range conj {
			if !l.Negated {
				hasPos = true
				break
			}
		}
		if !hasPos {
			return ErrNoPositiveLiteral
		}
	}
	return nil
}

// Constraint refines an anchor's candidate set server-side: exactly one of
// Cross (2Lev pair lookup) or Filter (ZMF membership test) is set.
type Constraint struct {
	Cross   *emm.SearchToken `json:"cross,omitempty"`
	Filter  *zmf.TestToken   `json:"filter,omitempty"`
	Negated bool             `json:"negated,omitempty"`
}

// ConjToken resolves one conjunction.
type ConjToken struct {
	Anchor      emm.SearchToken `json:"anchor"`
	Constraints []Constraint    `json:"constraints,omitempty"`
}

// SearchToken resolves a full DNF query.
type SearchToken struct {
	Conjunctions []ConjToken `json:"conjunctions"`
}

// State persists the client's per-document versions on top of the EMM
// counter state.
type State interface {
	emm.State
	// Version returns the current version of id (0 = never inserted).
	Version(namespace, id string) (uint64, error)
	// SetVersion stores the current version of id.
	SetVersion(namespace, id string, v uint64) error
}

// MemState is an in-memory State.
type MemState struct {
	*emm.MemState
	mu sync.RWMutex
	v  map[string]uint64
}

// NewMemState returns an empty MemState.
func NewMemState() *MemState {
	return &MemState{MemState: emm.NewMemState(), v: make(map[string]uint64)}
}

// Version implements State.
func (s *MemState) Version(namespace, id string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v[namespace+"\x00"+id], nil
}

// SetVersion implements State.
func (s *MemState) SetVersion(namespace, id string, v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v[namespace+"\x00"+id] = v
	return nil
}

// KVState persists versions and EMM counters in the gateway kvstore.
type KVState struct {
	*emm.KVState
	store *kvstore.Store
}

// NewKVState wraps store.
func NewKVState(store *kvstore.Store) *KVState {
	return &KVState{KVState: emm.NewKVState(store), store: store}
}

// Version implements State.
func (s *KVState) Version(namespace, id string) (uint64, error) {
	raw, ok, err := s.store.Get([]byte("biexver/" + namespace + "\x00" + id))
	if err != nil || !ok {
		return 0, err
	}
	v, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("biex: decoding version: %w", err)
	}
	return v, nil
}

// SetVersion implements State.
func (s *KVState) SetVersion(namespace, id string, v uint64) error {
	return s.store.Set([]byte("biexver/"+namespace+"\x00"+id), []byte(strconv.FormatUint(v, 10)))
}

func versionedID(id string, v uint64) string {
	return id + "#" + strconv.FormatUint(v, 10)
}

func splitVersioned(vid string) (id string, v uint64, ok bool) {
	i := strings.LastIndexByte(vid, '#')
	if i < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseUint(vid[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return vid[:i], v, true
}

// pairKeyword canonicalizes a keyword pair for the cross multimap. The
// pair is unordered: (a,b) and (b,a) share one cell list.
func pairKeyword(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "\x00" + b
}

// Entries is the batch of server updates produced by one client operation.
type Entries struct {
	Global []emm.Entry       `json:"global,omitempty"`
	Cross  []emm.Entry       `json:"cross,omitempty"`
	Filter []zmf.UpdateEntry `json:"filter,omitempty"`
}

// Client is the gateway half of BIEX.
type Client struct {
	variant Variant
	global  *emm.Client
	cross   *emm.Client
	filters *zmf.Client
	state   State
}

// NewClient derives a BIEX client from key.
func NewClient(key primitives.Key, state State, variant Variant) (*Client, error) {
	if variant != Variant2Lev && variant != VariantZMF {
		return nil, ErrBadVariant
	}
	return &Client{
		variant: variant,
		global:  emm.NewClient(primitives.PRFKey(key, []byte("biex-global")), state),
		cross:   emm.NewClient(primitives.PRFKey(key, []byte("biex-cross")), state),
		filters: zmf.NewClient(primitives.PRFKey(key, []byte("biex-zmf"))),
		state:   state,
	}, nil
}

// Variant reports the client's cross-structure variant.
func (c *Client) Variant() Variant { return c.variant }

// Insert indexes a document's keywords, assigning a fresh version. The
// caller delivers the returned entries to Server.Insert.
func (c *Client) Insert(namespace, id string, keywords []string) (Entries, error) {
	v, err := c.state.Version(namespace, id)
	if err != nil {
		return Entries{}, err
	}
	v++
	if err := c.state.SetVersion(namespace, id, v); err != nil {
		return Entries{}, err
	}
	vid := versionedID(id, v)

	// Deduplicate keywords; pair generation assumes distinct keywords.
	uniq := make([]string, 0, len(keywords))
	seen := make(map[string]bool, len(keywords))
	for _, w := range keywords {
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	sort.Strings(uniq)

	var out Entries
	for _, w := range uniq {
		e, err := c.global.Append(namespace, w, vid)
		if err != nil {
			return Entries{}, err
		}
		out.Global = append(out.Global, e)
	}
	switch c.variant {
	case Variant2Lev:
		for i := 0; i < len(uniq); i++ {
			for j := i + 1; j < len(uniq); j++ {
				e, err := c.cross.Append(namespace, pairKeyword(uniq[i], uniq[j]), vid)
				if err != nil {
					return Entries{}, err
				}
				out.Cross = append(out.Cross, e)
			}
		}
	case VariantZMF:
		for _, w := range uniq {
			out.Filter = append(out.Filter, c.filters.Insert(namespace, w, vid))
		}
	}
	return out, nil
}

// Delete supersedes every index entry of id by bumping its version. No
// server interaction is required; stale cells become unreachable results.
func (c *Client) Delete(namespace, id string) error {
	v, err := c.state.Version(namespace, id)
	if err != nil {
		return err
	}
	if v == 0 {
		return nil // never indexed
	}
	return c.state.SetVersion(namespace, id, v+1)
}

// Token compiles a DNF query into a search token.
func (c *Client) Token(namespace string, q Query) (SearchToken, error) {
	if err := q.Validate(); err != nil {
		return SearchToken{}, err
	}
	var tok SearchToken
	for _, conj := range q {
		// Anchor: the first positive literal.
		anchorIdx := -1
		for i, l := range conj {
			if !l.Negated {
				anchorIdx = i
				break
			}
		}
		anchorKw := conj[anchorIdx].Keyword
		anchor, err := c.global.Token(namespace, anchorKw)
		if err != nil {
			return SearchToken{}, err
		}
		ct := ConjToken{Anchor: anchor}
		unsatisfiable := false
		for i, l := range conj {
			if i == anchorIdx {
				continue
			}
			// Literals repeating the anchor keyword degenerate: a positive
			// repeat is redundant; a negated repeat (w AND NOT w) makes the
			// whole conjunction unsatisfiable. The cross multimap stores no
			// self-pairs, so these must be resolved here.
			if l.Keyword == anchorKw {
				if l.Negated {
					unsatisfiable = true
					break
				}
				continue
			}
			var con Constraint
			con.Negated = l.Negated
			switch c.variant {
			case Variant2Lev:
				t, err := c.cross.Token(namespace, pairKeyword(conj[anchorIdx].Keyword, l.Keyword))
				if err != nil {
					return SearchToken{}, err
				}
				con.Cross = &t
			case VariantZMF:
				t := c.filters.Token(namespace, l.Keyword)
				con.Filter = &t
			}
			ct.Constraints = append(ct.Constraints, con)
		}
		if unsatisfiable {
			continue
		}
		tok.Conjunctions = append(tok.Conjunctions, ct)
	}
	return tok, nil
}

// LiveVersioned filters versioned index ids down to those carrying their
// document's current version, preserving the versioned form. Compaction
// uses it to decide which entries survive a repack.
func (c *Client) LiveVersioned(namespace string, vids []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, vid := range vids {
		id, v, ok := splitVersioned(vid)
		if !ok || seen[vid] {
			continue
		}
		cur, err := c.state.Version(namespace, id)
		if err != nil {
			return nil, err
		}
		if v == cur {
			seen[vid] = true
			out = append(out, vid)
		}
	}
	sort.Strings(out)
	return out, nil
}

// RepackGlobal rebuilds keyword w's global-multimap list into 2Lev packed
// buckets holding exactly the given live versioned ids, superseding the
// dynamic tail cells accumulated by inserts. It returns the new bucket
// entries and the addresses of the now-stale cells; deliver both to
// Server.RepackGlobal. Read efficiency improves from one fetch per id to
// one fetch per bucket.
func (c *Client) RepackGlobal(namespace, w string, liveVids []string) (entries []emm.Entry, stale [][]byte, err error) {
	entries, old, _, err := c.global.BuildPacked(namespace, w, liveVids)
	if err != nil {
		return nil, nil, err
	}
	return entries, c.global.StaleAddrs(namespace, w, old), nil
}

// Resolve filters the server's versioned results down to live document
// ids: only entries carrying a document's *current* version survive.
func (c *Client) Resolve(namespace string, vids []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, vid := range vids {
		id, v, ok := splitVersioned(vid)
		if !ok {
			continue // foreign/corrupt entry; skip
		}
		cur, err := c.state.Version(namespace, id)
		if err != nil {
			return nil, err
		}
		if v == cur && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Server is the cloud half of BIEX.
type Server struct {
	global  *emm.Server
	cross   *emm.Server
	filters *zmf.Server
}

// NewServer builds a server over store. namespace isolates schemas.
func NewServer(store *kvstore.Store, namespace string) *Server {
	return &Server{
		global:  emm.NewServer(store, "biexg/"+namespace),
		cross:   emm.NewServer(store, "biexx/"+namespace),
		filters: zmf.NewServer(store, "biexz/"+namespace),
	}
}

// RepackGlobal atomically (delete-then-insert) replaces a keyword's
// global-multimap cells with packed buckets produced by
// Client.RepackGlobal.
func (s *Server) RepackGlobal(stale [][]byte, entries []emm.Entry) error {
	if err := s.global.Delete(stale); err != nil {
		return err
	}
	return s.global.Insert(entries)
}

// Insert applies a client update batch.
func (s *Server) Insert(e Entries) error {
	if err := s.global.Insert(e.Global); err != nil {
		return err
	}
	if err := s.cross.Insert(e.Cross); err != nil {
		return err
	}
	return s.filters.Apply(e.Filter)
}

// Search executes the DNF token and returns versioned ids (the union of
// the conjunction results). The gateway must Resolve them.
func (s *Server) Search(tok SearchToken) ([]string, error) {
	union := make(map[string]bool)
	var order []string
	for _, conj := range tok.Conjunctions {
		ids, err := s.searchConj(conj)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if !union[id] {
				union[id] = true
				order = append(order, id)
			}
		}
	}
	sort.Strings(order)
	return order, nil
}

func (s *Server) searchConj(conj ConjToken) ([]string, error) {
	candidates, err := s.global.Search(conj.Anchor)
	if err != nil {
		return nil, err
	}
	for _, con := range conj.Constraints {
		if len(candidates) == 0 {
			return nil, nil
		}
		switch {
		case con.Cross != nil:
			pairIDs, err := s.cross.Search(*con.Cross)
			if err != nil {
				return nil, err
			}
			inPair := make(map[string]bool, len(pairIDs))
			for _, id := range pairIDs {
				inPair[id] = true
			}
			candidates = filterIDs(candidates, func(id string) bool {
				return inPair[id] != con.Negated
			})
		case con.Filter != nil:
			member, err := s.filters.Test(*con.Filter, candidates)
			if err != nil {
				return nil, err
			}
			kept := candidates[:0:0]
			for i, id := range candidates {
				if member[i] != con.Negated {
					kept = append(kept, id)
				}
			}
			candidates = kept
		default:
			return nil, errors.New("biex: constraint with no structure")
		}
	}
	return candidates, nil
}

func filterIDs(ids []string, keep func(string) bool) []string {
	out := ids[:0:0]
	for _, id := range ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return out
}

var (
	_ State = (*MemState)(nil)
	_ State = (*KVState)(nil)
)
