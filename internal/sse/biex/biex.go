// Package biex implements boolean searchable symmetric encryption in the
// style of the IEX construction of Kamara and Moataz (EUROCRYPT 2017),
// in the two variants the paper integrates from Clusion:
//
//   - BIEX-2Lev: a *global* encrypted multimap g (keyword → ids) plus a
//     *cross* multimap x (keyword pair → ids of documents containing both).
//     Conjunctions resolve by intersecting server-side multimap lookups —
//     read-efficient but storage-heavy (the paper's "storage impl.
//     complexity" challenge).
//   - BIEX-ZMF: the same global multimap, with the cross multimap replaced
//     by per-keyword matryoshka (counting Bloom) filters — space-efficient
//     with a bounded false-positive rate.
//
// Queries are boolean formulas in disjunctive normal form; each
// conjunction needs at least one positive literal (the IEX anchor).
// The leakage level is Predicates (protection class 3): the server learns
// the shape of the query and partial intersection sizes, not the keywords.
//
// Deletions and updates use *versioned index ids*: every insert of a
// document id is tagged with a fresh version (id#v). Deleting bumps the
// version without inserting, so stale index cells resolve to superseded
// versions and are dropped at resolution time. This layers dynamism over
// the static IEX structures without server-side tombstones.
//
// # Keyword partitioning
//
// The index shards by keyword: every keyword carries a routing label (a
// PRF of the keyword, independent of the cell addresses), and all state a
// conjunction anchored at that keyword needs co-locates on the label's
// shard — the keyword's global-multimap cells, a replica of every cross
// pair cell the keyword participates in, and (ZMF) the filters of its
// co-occurring keywords. Insert takes a ShardFunc and returns one Entries
// batch per shard; Token stamps each conjunction with its anchor's label
// so the caller can route it. A conjunction therefore still resolves
// entirely server-side on one shard (the sub-linear IEX walk is
// preserved), while distinct anchor keywords — and hence the index as a
// whole — spread across the tier.
//
// # Hot-keyword spill
//
// Keyword-granular placement alone cannot balance a skewed corpus: an
// enum keyword matching a fifth of all documents pins that fifth's cells
// (and every pair replica it anchors) to one shard. Each keyword's index
// therefore splits into fixed-size spill buckets: the client counts the
// keyword's inserts, and every SpillThreshold of them open a new bucket
// with its own routing label. A document's cells for keyword w — its
// global cell, the pair replicas anchored at w, the filters shipped for
// w's benefit — all place by w's bucket at that insert, so each bucket
// shard holds a self-contained slice of the keyword's index and refines
// its conjunctions entirely locally. Queries anchored at w fan to its
// buckets (cold keywords have exactly one, keeping the single-shard
// resolution of the long tail) and union the slices. Bucket membership is
// a pure function of client-side counters, so placement needs no
// directory and survives restarts.
package biex

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"datablinder/internal/crypto/primitives"
	"datablinder/internal/sse/emm"
	"datablinder/internal/sse/zmf"
	"datablinder/internal/store/kvstore"
)

// Variant selects the cross-keyword structure.
type Variant string

// Variants.
const (
	Variant2Lev Variant = "2lev"
	VariantZMF  Variant = "zmf"
)

// Errors returned by this package.
var (
	ErrNoPositiveLiteral = errors.New("biex: every conjunction needs at least one positive literal")
	ErrEmptyQuery        = errors.New("biex: empty query")
	ErrBadVariant        = errors.New("biex: unknown variant")
)

// SpillThreshold is how many inserts of one keyword share a spill bucket
// before the next bucket (and routing label) opens. Low enough that an
// enum keyword matching a large corpus fraction spreads over several
// shards; high enough that the long tail of rare keywords stays in bucket
// 0 and keeps single-shard conjunction resolution.
const SpillThreshold = 32

// Literal is one keyword occurrence in a conjunction.
type Literal struct {
	Keyword string `json:"keyword"`
	Negated bool   `json:"negated,omitempty"`
}

// Query is a boolean formula in DNF: the union of its conjunctions.
type Query [][]Literal

// Validate checks the DNF restrictions.
func (q Query) Validate() error {
	if len(q) == 0 {
		return ErrEmptyQuery
	}
	for _, conj := range q {
		hasPos := false
		for _, l := range conj {
			if !l.Negated {
				hasPos = true
				break
			}
		}
		if !hasPos {
			return ErrNoPositiveLiteral
		}
	}
	return nil
}

// Constraint refines an anchor's candidate set server-side: exactly one of
// Cross (2Lev pair lookup) or Filter (ZMF membership test) is set.
type Constraint struct {
	Cross   *emm.SearchToken `json:"cross,omitempty"`
	Filter  *zmf.TestToken   `json:"filter,omitempty"`
	Negated bool             `json:"negated,omitempty"`
}

// ConjToken resolves one conjunction.
type ConjToken struct {
	Anchor      emm.SearchToken `json:"anchor"`
	Constraints []Constraint    `json:"constraints,omitempty"`
	// Route is the anchor keyword's routing label: the shard owning it
	// holds every cell this conjunction touches. Gateway-side only — the
	// server resolves whatever conjunctions it is handed, so the label is
	// never serialized toward the untrusted zone.
	Route string `json:"-"`
}

// SearchToken resolves a full DNF query.
type SearchToken struct {
	Conjunctions []ConjToken `json:"conjunctions"`
}

// State persists the client's per-document versions and per-keyword spill
// counters on top of the EMM counter state.
type State interface {
	emm.State
	// Version returns the current version of id (0 = never inserted).
	Version(namespace, id string) (uint64, error)
	// SetVersion stores the current version of id.
	SetVersion(namespace, id string, v uint64) error
	// Spill returns how many inserts of keyword w have been indexed
	// (0 = never seen). Spill/SpillThreshold is the keyword's current
	// bucket.
	Spill(namespace, w string) (uint64, error)
	// SetSpill stores keyword w's insert count.
	SetSpill(namespace, w string, n uint64) error
}

// MemState is an in-memory State.
type MemState struct {
	*emm.MemState
	mu sync.RWMutex
	v  map[string]uint64
	sp map[string]uint64
}

// NewMemState returns an empty MemState.
func NewMemState() *MemState {
	return &MemState{
		MemState: emm.NewMemState(),
		v:        make(map[string]uint64),
		sp:       make(map[string]uint64),
	}
}

// Version implements State.
func (s *MemState) Version(namespace, id string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.v[namespace+"\x00"+id], nil
}

// SetVersion implements State.
func (s *MemState) SetVersion(namespace, id string, v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v[namespace+"\x00"+id] = v
	return nil
}

// Spill implements State.
func (s *MemState) Spill(namespace, w string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sp[namespace+"\x00"+w], nil
}

// SetSpill implements State.
func (s *MemState) SetSpill(namespace, w string, n uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sp[namespace+"\x00"+w] = n
	return nil
}

// KVState persists versions and EMM counters in the gateway kvstore.
type KVState struct {
	*emm.KVState
	store *kvstore.Store
}

// NewKVState wraps store.
func NewKVState(store *kvstore.Store) *KVState {
	return &KVState{KVState: emm.NewKVState(store), store: store}
}

// Version implements State.
func (s *KVState) Version(namespace, id string) (uint64, error) {
	raw, ok, err := s.store.Get([]byte("biexver/" + namespace + "\x00" + id))
	if err != nil || !ok {
		return 0, err
	}
	v, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("biex: decoding version: %w", err)
	}
	return v, nil
}

// SetVersion implements State.
func (s *KVState) SetVersion(namespace, id string, v uint64) error {
	return s.store.Set([]byte("biexver/"+namespace+"\x00"+id), []byte(strconv.FormatUint(v, 10)))
}

// Spill implements State.
func (s *KVState) Spill(namespace, w string) (uint64, error) {
	raw, ok, err := s.store.Get([]byte("biexspill/" + namespace + "\x00" + w))
	if err != nil || !ok {
		return 0, err
	}
	n, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("biex: decoding spill counter: %w", err)
	}
	return n, nil
}

// SetSpill implements State.
func (s *KVState) SetSpill(namespace, w string, n uint64) error {
	return s.store.Set([]byte("biexspill/"+namespace+"\x00"+w), []byte(strconv.FormatUint(n, 10)))
}

func versionedID(id string, v uint64) string {
	return id + "#" + strconv.FormatUint(v, 10)
}

func splitVersioned(vid string) (id string, v uint64, ok bool) {
	i := strings.LastIndexByte(vid, '#')
	if i < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseUint(vid[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return vid[:i], v, true
}

// pairKeyword canonicalizes a keyword pair for the cross multimap. The
// pair is unordered: (a,b) and (b,a) share one cell list.
func pairKeyword(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "\x00" + b
}

// bucketKeyword names keyword w's spill bucket b in the global multimap.
// Every bucket — including bucket 0 — is encoded uniformly, so each has
// its own EMM counter and packed state and compaction can repack one
// bucket without disturbing its siblings. Cross pair cells and ZMF
// filters keep raw keyword addressing: buckets partition *placement*, not
// the cross structures' key space.
func bucketKeyword(w string, b uint64) string {
	return strconv.FormatUint(b, 10) + "\x00" + w
}

// Entries is the batch of server updates produced by one client operation.
// Cross pair cells ship packed (CrossPacked); the per-cell Cross form is
// retained for wire compatibility with writers that predate packing.
type Entries struct {
	Global      []emm.Entry       `json:"global,omitempty"`
	Cross       []emm.Entry       `json:"cross,omitempty"`
	CrossPacked []PackedEntry     `json:"cross_packed,omitempty"`
	Filter      []zmf.UpdateEntry `json:"filter,omitempty"`
}

// Cells counts the index cells the batch carries, counting packed entries
// by their contents — the unit a node's multimap insert work scales with,
// regardless of how the cells were framed.
func (e Entries) Cells() int {
	n := len(e.Global) + len(e.Cross) + len(e.Filter)
	for _, p := range e.CrossPacked {
		n += p.Count
	}
	return n
}

// WireEntries counts the top-level entries the batch serializes — the
// framing the packed form compresses: a k-keyword document's O(k²) pair
// cells collapse into O(1) packed entries per shard.
func (e Entries) WireEntries() int {
	return len(e.Global) + len(e.Cross) + len(e.CrossPacked) + len(e.Filter)
}

// PackedEntry ships n same-shaped multimap cells as two concatenated
// blobs. BIEX pair cells are uniform — PRF-sized addresses and, within one
// document insert, equal-length sealed values — so the O(k²) cells of a
// k-keyword document pack into a single entry per shard, replacing O(k²)
// per-cell JSON envelopes (two base64 fields and their keys per cell) with
// O(k²) bytes in two blobs.
type PackedEntry struct {
	Count   int    `json:"n"`
	AddrLen int    `json:"alen"`
	ValLen  int    `json:"vlen"`
	Addrs   []byte `json:"addrs"`
	Vals    []byte `json:"vals"`
	// Shared, when set, is a sealed payload common to every cell in the
	// entry: each cell's Vals slot is then an emm.SharedWrapLen-byte key
	// wrap, and the stored value is assembled server-side as
	// emm.SharedValue(wrap, Nonce, Shared). A k-keyword document's O(k²)
	// pair cells — identical plaintext sealed under O(k²) pair keys in the
	// legacy form — ship the payload once per entry and 32 bytes per cell.
	Shared []byte `json:"shared,omitempty"`
	// Nonce is the shared group's wrap nonce (emm.SharedNonceLen bytes).
	Nonce []byte `json:"nonce,omitempty"`
}

// PackEntries groups cells by (address length, value length) shape,
// preserving first-seen group order and cell order within each group.
func PackEntries(cells []emm.Entry) []PackedEntry {
	if len(cells) == 0 {
		return nil
	}
	idx := make(map[[2]int]int)
	out := make([]PackedEntry, 0, 1)
	for _, e := range cells {
		k := [2]int{len(e.Addr), len(e.Val)}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, PackedEntry{AddrLen: k[0], ValLen: k[1]})
		}
		p := &out[i]
		p.Count++
		p.Addrs = append(p.Addrs, e.Addr...)
		p.Vals = append(p.Vals, e.Val...)
	}
	return out
}

// UnpackEntries expands packed entries back into individual cells,
// validating blob lengths against the declared shape.
func UnpackEntries(packed []PackedEntry) ([]emm.Entry, error) {
	var total int
	for _, p := range packed {
		if p.Count < 0 || p.AddrLen <= 0 || p.ValLen <= 0 ||
			len(p.Addrs) != p.Count*p.AddrLen || len(p.Vals) != p.Count*p.ValLen {
			return nil, fmt.Errorf("biex: malformed packed entry (n=%d alen=%d vlen=%d addrs=%d vals=%d)",
				p.Count, p.AddrLen, p.ValLen, len(p.Addrs), len(p.Vals))
		}
		if len(p.Shared) > 0 && (p.ValLen != emm.SharedWrapLen || len(p.Nonce) != emm.SharedNonceLen) {
			return nil, fmt.Errorf("biex: malformed shared packed entry (vlen=%d nonce=%d)",
				p.ValLen, len(p.Nonce))
		}
		total += p.Count
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]emm.Entry, 0, total)
	for _, p := range packed {
		for i := 0; i < p.Count; i++ {
			val := p.Vals[i*p.ValLen : (i+1)*p.ValLen : (i+1)*p.ValLen]
			if len(p.Shared) > 0 {
				// Expand the wrap into a self-contained stored value; the
				// dedup is a wire-framing optimization only.
				val = emm.SharedValue(val, p.Nonce, p.Shared)
			}
			out = append(out, emm.Entry{
				Addr: p.Addrs[i*p.AddrLen : (i+1)*p.AddrLen : (i+1)*p.AddrLen],
				Val:  val,
			})
		}
	}
	return out, nil
}

// ShardFunc maps a routing label to the index of the shard owning it.
// Single-node deployments pass SingleShard; sharded gateways pass the
// consistent-hash ring's lookup.
type ShardFunc func(label string) int

// SingleShard is the ShardFunc of an unsharded deployment: everything
// lands on shard 0.
func SingleShard(string) int { return 0 }

// Client is the gateway half of BIEX.
type Client struct {
	variant Variant
	global  *emm.Client
	cross   *emm.Client
	filters *zmf.Client
	route   primitives.Key // derives per-keyword routing labels
	state   State
}

// NewClient derives a BIEX client from key.
func NewClient(key primitives.Key, state State, variant Variant) (*Client, error) {
	if variant != Variant2Lev && variant != VariantZMF {
		return nil, ErrBadVariant
	}
	return &Client{
		variant: variant,
		global:  emm.NewClient(primitives.PRFKey(key, []byte("biex-global")), state),
		cross:   emm.NewClient(primitives.PRFKey(key, []byte("biex-cross")), state),
		filters: zmf.NewClient(primitives.PRFKey(key, []byte("biex-zmf"))),
		route:   primitives.PRFKey(key, []byte("biex-route")),
		state:   state,
	}, nil
}

// Variant reports the client's cross-structure variant.
func (c *Client) Variant() Variant { return c.variant }

// BucketRoute returns the routing label of keyword w's spill bucket: the
// pseudorandom, stable key that places that bucket's index state on a
// shard. It is derived independently of the cell addresses, so handing it
// to a router leaks nothing beyond which operations share a (keyword,
// bucket) — which the search tokens reveal anyway.
func (c *Client) BucketRoute(namespace, w string, bucket uint64) string {
	return hex.EncodeToString(primitives.PRF(
		c.route, []byte(namespace), []byte{0}, []byte(w), []byte{0},
		[]byte(strconv.FormatUint(bucket, 10))))
}

// Buckets reports how many spill buckets keyword w currently spans: at
// least 1 (a never-seen keyword still owns its empty bucket 0), growing
// by one for every SpillThreshold inserts.
func (c *Client) Buckets(namespace, w string) (int, error) {
	n, err := c.state.Spill(namespace, w)
	if err != nil || n == 0 {
		return 1, err
	}
	return int((n-1)/SpillThreshold) + 1, nil
}

// Insert indexes a document's keywords, assigning a fresh version, and
// groups the produced entries by owning shard (per shardOf over each
// keyword's current spill-bucket routing label). The caller delivers each
// batch to the matching shard's Server.Insert. Placement invariants:
//
//   - a keyword's global cell lands on the shard of its current spill
//     bucket (the bucket also names the cell, giving each bucket its own
//     EMM counter);
//   - a cross pair cell is appended once (one counter bump) but shipped
//     to both member keywords' bucket shards, so whichever of the two
//     anchors a future conjunction can refine server-side;
//   - a ZMF filter update for keyword u is shipped to the bucket shard of
//     every keyword co-occurring with u in this document — exactly the
//     shards that can anchor a conjunction constraining on u. On a single
//     shard this degenerates to one update per keyword pair set, and a
//     document's sole keyword needs no filter at all (a filter is only
//     consulted for candidates that matched a co-occurring anchor).
//
// All of a document's cells for keyword w place by one bucket, so that
// bucket's shard holds a self-contained slice of w's index: anchoring a
// conjunction there never needs another shard's cells.
func (c *Client) Insert(namespace, id string, keywords []string, shardOf ShardFunc) (map[int]*Entries, error) {
	v, err := c.state.Version(namespace, id)
	if err != nil {
		return nil, err
	}
	v++
	if err := c.state.SetVersion(namespace, id, v); err != nil {
		return nil, err
	}
	vid := versionedID(id, v)

	// Deduplicate keywords; pair generation assumes distinct keywords.
	uniq := make([]string, 0, len(keywords))
	seen := make(map[string]bool, len(keywords))
	for _, w := range keywords {
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	sort.Strings(uniq)

	shard := make([]int, len(uniq))
	bucket := make([]uint64, len(uniq))
	for i, w := range uniq {
		n, err := c.state.Spill(namespace, w)
		if err != nil {
			return nil, err
		}
		bucket[i] = n / SpillThreshold
		if err := c.state.SetSpill(namespace, w, n+1); err != nil {
			return nil, err
		}
		shard[i] = shardOf(c.BucketRoute(namespace, w, bucket[i]))
	}
	out := make(map[int]*Entries)
	grp := func(s int) *Entries {
		e, ok := out[s]
		if !ok {
			e = &Entries{}
			out[s] = e
		}
		return e
	}

	for i, w := range uniq {
		e, err := c.global.Append(namespace, bucketKeyword(w, bucket[i]), vid)
		if err != nil {
			return nil, err
		}
		g := grp(shard[i])
		g.Global = append(g.Global, e)
	}
	switch c.variant {
	case Variant2Lev:
		// Pair cells accumulate per shard and ship packed: one counter
		// bump per pair, a replica on both member keywords' shards, but
		// O(1) wire entries per shard instead of one per cell. Every pair
		// cell of this insert carries the same versioned id, so the sealed
		// payload ships once per entry (value-deduped): each cell is a
		// fixed-size wrap of an ephemeral group key, and the server
		// expands wraps into self-contained stored values.
		if len(uniq) >= 2 {
			kd, err := primitives.NewRandomKey()
			if err != nil {
				return nil, err
			}
			nonce, err := primitives.RandomBytes(emm.SharedNonceLen)
			if err != nil {
				return nil, err
			}
			shared, err := emm.SealSharedIDs(kd, []string{vid})
			if err != nil {
				return nil, err
			}
			perShard := make(map[int][]emm.Entry)
			for i := 0; i < len(uniq); i++ {
				for j := i + 1; j < len(uniq); j++ {
					addr, vk, err := c.cross.AppendAddr(namespace, pairKeyword(uniq[i], uniq[j]))
					if err != nil {
						return nil, err
					}
					e := emm.Entry{Addr: addr, Val: emm.WrapSharedKey(vk, nonce, kd)}
					perShard[shard[i]] = append(perShard[shard[i]], e)
					if shard[j] != shard[i] {
						perShard[shard[j]] = append(perShard[shard[j]], e)
					}
				}
			}
			for s, cells := range perShard {
				g := grp(s)
				g.CrossPacked = PackEntries(cells)
				for i := range g.CrossPacked {
					g.CrossPacked[i].Shared = shared
					g.CrossPacked[i].Nonce = nonce
				}
			}
		}
	case VariantZMF:
		for i, w := range uniq {
			var entry *zmf.UpdateEntry
			targets := make(map[int]bool, len(uniq)-1)
			for j := range uniq {
				if j == i || targets[shard[j]] {
					continue
				}
				targets[shard[j]] = true
				if entry == nil {
					e := c.filters.Insert(namespace, w, vid)
					entry = &e
				}
				g := grp(shard[j])
				g.Filter = append(g.Filter, *entry)
			}
		}
	}
	return out, nil
}

// Delete supersedes every index entry of id by bumping its version. No
// server interaction is required; stale cells become unreachable results.
func (c *Client) Delete(namespace, id string) error {
	v, err := c.state.Version(namespace, id)
	if err != nil {
		return err
	}
	if v == 0 {
		return nil // never indexed
	}
	return c.state.SetVersion(namespace, id, v+1)
}

// Token compiles a DNF query into a search token. A conjunction whose
// anchor keyword has spilled into several buckets becomes one ConjToken
// per bucket — identical constraints, bucket-specific anchor and route —
// and the server-side union of the bucket slices reproduces the
// single-shard result (a document version lands in exactly one bucket).
func (c *Client) Token(namespace string, q Query) (SearchToken, error) {
	if err := q.Validate(); err != nil {
		return SearchToken{}, err
	}
	var tok SearchToken
	for _, conj := range q {
		// Anchor: the first positive literal.
		anchorIdx := -1
		for i, l := range conj {
			if !l.Negated {
				anchorIdx = i
				break
			}
		}
		anchorKw := conj[anchorIdx].Keyword
		var constraints []Constraint
		unsatisfiable := false
		for i, l := range conj {
			if i == anchorIdx {
				continue
			}
			// Literals repeating the anchor keyword degenerate: a positive
			// repeat is redundant; a negated repeat (w AND NOT w) makes the
			// whole conjunction unsatisfiable. The cross multimap stores no
			// self-pairs, so these must be resolved here.
			if l.Keyword == anchorKw {
				if l.Negated {
					unsatisfiable = true
					break
				}
				continue
			}
			var con Constraint
			con.Negated = l.Negated
			switch c.variant {
			case Variant2Lev:
				t, err := c.cross.Token(namespace, pairKeyword(anchorKw, l.Keyword))
				if err != nil {
					return SearchToken{}, err
				}
				con.Cross = &t
			case VariantZMF:
				t := c.filters.Token(namespace, l.Keyword)
				con.Filter = &t
			}
			constraints = append(constraints, con)
		}
		if unsatisfiable {
			continue
		}
		buckets, err := c.Buckets(namespace, anchorKw)
		if err != nil {
			return SearchToken{}, err
		}
		for b := 0; b < buckets; b++ {
			anchor, err := c.global.Token(namespace, bucketKeyword(anchorKw, uint64(b)))
			if err != nil {
				return SearchToken{}, err
			}
			tok.Conjunctions = append(tok.Conjunctions, ConjToken{
				Anchor:      anchor,
				Constraints: constraints,
				Route:       c.BucketRoute(namespace, anchorKw, uint64(b)),
			})
		}
	}
	return tok, nil
}

// LiveVersioned filters versioned index ids down to those carrying their
// document's current version, preserving the versioned form. Compaction
// uses it to decide which entries survive a repack.
func (c *Client) LiveVersioned(namespace string, vids []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, vid := range vids {
		id, v, ok := splitVersioned(vid)
		if !ok || seen[vid] {
			continue
		}
		cur, err := c.state.Version(namespace, id)
		if err != nil {
			return nil, err
		}
		if v == cur {
			seen[vid] = true
			out = append(out, vid)
		}
	}
	sort.Strings(out)
	return out, nil
}

// BucketToken builds a single-conjunction token fetching every cell of
// keyword w's spill bucket, for compaction sweeps. Route it with
// BucketRoute(namespace, w, bucket).
func (c *Client) BucketToken(namespace, w string, bucket uint64) (SearchToken, error) {
	anchor, err := c.global.Token(namespace, bucketKeyword(w, bucket))
	if err != nil {
		return SearchToken{}, err
	}
	return SearchToken{Conjunctions: []ConjToken{{
		Anchor: anchor,
		Route:  c.BucketRoute(namespace, w, bucket),
	}}}, nil
}

// RepackGlobal rebuilds one spill bucket of keyword w's global-multimap
// list into 2Lev packed buckets holding exactly the given live versioned
// ids, superseding the dynamic tail cells accumulated by inserts. It
// returns the new bucket entries and the addresses of the now-stale
// cells; deliver both to Server.RepackGlobal on the spill bucket's shard
// — the packed cells stay co-located with that bucket's pair replicas and
// filters. Read efficiency improves from one fetch per id to one fetch
// per packed bucket.
func (c *Client) RepackGlobal(namespace, w string, bucket uint64, liveVids []string) (entries []emm.Entry, stale [][]byte, err error) {
	bw := bucketKeyword(w, bucket)
	entries, old, _, err := c.global.BuildPacked(namespace, bw, liveVids)
	if err != nil {
		return nil, nil, err
	}
	return entries, c.global.StaleAddrs(namespace, bw, old), nil
}

// Resolve filters the server's versioned results down to live document
// ids: only entries carrying a document's *current* version survive.
func (c *Client) Resolve(namespace string, vids []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, vid := range vids {
		id, v, ok := splitVersioned(vid)
		if !ok {
			continue // foreign/corrupt entry; skip
		}
		cur, err := c.state.Version(namespace, id)
		if err != nil {
			return nil, err
		}
		if v == cur && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Server is the cloud half of BIEX.
type Server struct {
	global  *emm.Server
	cross   *emm.Server
	filters *zmf.Server
}

// NewServer builds a server over store. namespace isolates schemas.
func NewServer(store *kvstore.Store, namespace string) *Server {
	return &Server{
		global:  emm.NewServer(store, "biexg/"+namespace),
		cross:   emm.NewServer(store, "biexx/"+namespace),
		filters: zmf.NewServer(store, "biexz/"+namespace),
	}
}

// RepackGlobal atomically (delete-then-insert) replaces a keyword's
// global-multimap cells with packed buckets produced by
// Client.RepackGlobal.
func (s *Server) RepackGlobal(stale [][]byte, entries []emm.Entry) error {
	if err := s.global.Delete(stale); err != nil {
		return err
	}
	return s.global.Insert(entries)
}

// Insert applies a client update batch, expanding packed pair cells.
func (s *Server) Insert(e Entries) error {
	if err := s.global.Insert(e.Global); err != nil {
		return err
	}
	if err := s.cross.Insert(e.Cross); err != nil {
		return err
	}
	if len(e.CrossPacked) > 0 {
		cells, err := UnpackEntries(e.CrossPacked)
		if err != nil {
			return err
		}
		if err := s.cross.Insert(cells); err != nil {
			return err
		}
	}
	return s.filters.Apply(e.Filter)
}

// Search executes the DNF token and returns versioned ids (the union of
// the conjunction results). The gateway must Resolve them.
func (s *Server) Search(tok SearchToken) ([]string, error) {
	union := make(map[string]bool)
	var order []string
	for _, conj := range tok.Conjunctions {
		ids, err := s.searchConj(conj)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if !union[id] {
				union[id] = true
				order = append(order, id)
			}
		}
	}
	sort.Strings(order)
	return order, nil
}

func (s *Server) searchConj(conj ConjToken) ([]string, error) {
	candidates, err := s.global.Search(conj.Anchor)
	if err != nil {
		return nil, err
	}
	for _, con := range conj.Constraints {
		if len(candidates) == 0 {
			return nil, nil
		}
		switch {
		case con.Cross != nil:
			pairIDs, err := s.cross.Search(*con.Cross)
			if err != nil {
				return nil, err
			}
			inPair := make(map[string]bool, len(pairIDs))
			for _, id := range pairIDs {
				inPair[id] = true
			}
			candidates = filterIDs(candidates, func(id string) bool {
				return inPair[id] != con.Negated
			})
		case con.Filter != nil:
			member, err := s.filters.Test(*con.Filter, candidates)
			if err != nil {
				return nil, err
			}
			kept := candidates[:0:0]
			for i, id := range candidates {
				if member[i] != con.Negated {
					kept = append(kept, id)
				}
			}
			candidates = kept
		default:
			return nil, errors.New("biex: constraint with no structure")
		}
	}
	return candidates, nil
}

func filterIDs(ids []string, keep func(string) bool) []string {
	out := ids[:0:0]
	for _, id := range ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return out
}

var (
	_ State = (*MemState)(nil)
	_ State = (*KVState)(nil)
)
