// Package emm implements a dynamic, response-revealing encrypted multimap
// (EMM) in the style of the 2Lev construction of Cash et al. (NDSS 2014)
// as packaged by the Clusion library the paper builds on.
//
// An EMM maps keywords to lists of document identifiers without revealing
// the keywords to the server. This implementation is two-level, mirroring
// 2Lev's design for read efficiency:
//
//   - a *packed* level: at (re)build time each keyword's identifier list is
//     sealed into fixed-capacity buckets stored under PRF-derived addresses
//     (good locality, one fetch per bucket);
//   - a *tail* level: dynamic appends land in per-entry cells addressed by
//     a client-side counter (the standard dynamic-EMM counter chain).
//
// Search tokens carry per-keyword derived keys plus the two counters; the
// server resolves addresses, decrypts the cells with the token's value key
// (response-revealing — the access pattern and result identifiers leak,
// i.e. "Identifiers"-level leakage; boolean composition on top of this
// structure yields the "Predicates" level of BIEX), and returns plaintext
// identifiers.
package emm

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"datablinder/internal/crypto/keycache"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

// BucketCapacity is the number of identifiers per packed bucket.
const BucketCapacity = 8

// Errors returned by this package.
var ErrBadToken = errors.New("emm: malformed search token")

// Counts is the client-side per-keyword state: how many packed buckets and
// how many tail entries exist for the keyword.
type Counts struct {
	Packed uint64 `json:"packed"`
	Tail   uint64 `json:"tail"`
}

// State persists the client's per-keyword counters. Implementations must
// be safe for concurrent use; NextTail must be atomic so concurrent
// appends to one keyword never reuse a cell index.
type State interface {
	// Counts returns the counters for keyword w (zero value if absent).
	Counts(namespace, w string) (Counts, error)
	// NextTail atomically reserves and returns the next tail index for w.
	NextTail(namespace, w string) (uint64, error)
	// SetCounts stores the counters for keyword w (rebuilds/restores).
	SetCounts(namespace, w string, c Counts) error
}

// MemState is an in-memory State for tests and ephemeral gateways.
type MemState struct {
	mu sync.RWMutex
	m  map[string]Counts
}

// NewMemState returns an empty MemState.
func NewMemState() *MemState { return &MemState{m: make(map[string]Counts)} }

// Counts implements State.
func (s *MemState) Counts(namespace, w string) (Counts, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[namespace+"\x00"+w], nil
}

// NextTail implements State.
func (s *MemState) NextTail(namespace, w string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := namespace + "\x00" + w
	c := s.m[k]
	i := c.Tail
	c.Tail++
	s.m[k] = c
	return i, nil
}

// SetCounts implements State.
func (s *MemState) SetCounts(namespace, w string, c Counts) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[namespace+"\x00"+w] = c
	return nil
}

// KVState persists counters in a kvstore (the gateway's local Redis in the
// paper's deployment).
type KVState struct {
	store *kvstore.Store
}

// NewKVState wraps store.
func NewKVState(store *kvstore.Store) *KVState { return &KVState{store: store} }

func (s *KVState) tailKey(namespace, w string) []byte {
	return []byte("emmtail/" + namespace + "\x00" + w)
}

func (s *KVState) packedKey(namespace, w string) []byte {
	return []byte("emmpacked/" + namespace + "\x00" + w)
}

// Counts implements State.
func (s *KVState) Counts(namespace, w string) (Counts, error) {
	tail, err := s.store.Counter(s.tailKey(namespace, w))
	if err != nil {
		return Counts{}, fmt.Errorf("emm: loading tail state: %w", err)
	}
	packed, err := s.store.Counter(s.packedKey(namespace, w))
	if err != nil {
		return Counts{}, fmt.Errorf("emm: loading packed state: %w", err)
	}
	return Counts{Packed: uint64(packed), Tail: uint64(tail)}, nil
}

// NextTail implements State atomically via the store's counter primitive.
func (s *KVState) NextTail(namespace, w string) (uint64, error) {
	c, err := s.store.Incr(s.tailKey(namespace, w), 1)
	if err != nil {
		return 0, fmt.Errorf("emm: reserving tail index: %w", err)
	}
	return uint64(c - 1), nil
}

// SetCounts implements State.
func (s *KVState) SetCounts(namespace, w string, c Counts) error {
	cur, err := s.Counts(namespace, w)
	if err != nil {
		return err
	}
	if _, err := s.store.Incr(s.tailKey(namespace, w), int64(c.Tail)-int64(cur.Tail)); err != nil {
		return fmt.Errorf("emm: storing tail state: %w", err)
	}
	if _, err := s.store.Incr(s.packedKey(namespace, w), int64(c.Packed)-int64(cur.Packed)); err != nil {
		return fmt.Errorf("emm: storing packed state: %w", err)
	}
	return nil
}

// Entry is one encrypted cell destined for the server.
type Entry struct {
	Addr []byte `json:"addr"`
	Val  []byte `json:"val"`
}

// SearchToken lets the server resolve one keyword's cells. It reveals the
// per-keyword derived keys but nothing about the keyword itself.
type SearchToken struct {
	// AddrKey derives cell addresses: PRF(AddrKey, level || index).
	AddrKey []byte `json:"addr_key"`
	// ValueKey decrypts cell payloads.
	ValueKey []byte `json:"value_key"`
	// Counts bounds the address enumeration.
	Counts Counts `json:"counts"`
}

// Client is the gateway half of the EMM. It is safe for concurrent use
// given a concurrency-safe State.
type Client struct {
	keyAddr primitives.Key // derives per-keyword address keys
	keyVal  primitives.Key // derives per-keyword value keys
	state   State
	kwKeys  *keycache.Cache[string, [2]primitives.Key] // (addr, value) pairs
}

// NewClient derives the EMM client keys from key. state persists the
// per-keyword counters.
func NewClient(key primitives.Key, state State) *Client {
	return &Client{
		keyAddr: primitives.PRFKey(key, []byte("emm-addr")),
		keyVal:  primitives.PRFKey(key, []byte("emm-val")),
		state:   state,
		kwKeys:  keycache.New[string, [2]primitives.Key](keycache.DefaultSize),
	}
}

// keywordKeys derives (or recalls) the per-keyword address and value keys.
func (c *Client) keywordKeys(namespace, w string) (addr, val primitives.Key) {
	ck := namespace + "\x00" + w
	if pair, ok := c.kwKeys.Get(ck); ok {
		return pair[0], pair[1]
	}
	addr = primitives.PRFKey(c.keyAddr, []byte(namespace), []byte{0}, []byte(w))
	val = primitives.PRFKey(c.keyVal, []byte(namespace), []byte{0}, []byte(w))
	c.kwKeys.Put(ck, [2]primitives.Key{addr, val})
	return addr, val
}

func (c *Client) addrKey(namespace, w string) primitives.Key {
	addr, _ := c.keywordKeys(namespace, w)
	return addr
}

// tailAddr computes the address of tail cell i.
func tailAddr(addrKey primitives.Key, i uint64) []byte {
	return primitives.PRF(addrKey, []byte("t"), primitives.Uint64Bytes(i))
}

// packedAddr computes the address of packed bucket j.
func packedAddr(addrKey primitives.Key, j uint64) []byte {
	return primitives.PRF(addrKey, []byte("p"), primitives.Uint64Bytes(j))
}

// aeads caches constructed AEADs per value key: cipher construction (key
// schedule + GCM tables) dominates small-cell seal/open costs. The cache
// is package-level so the client and server halves share it.
var aeads = keycache.New[primitives.Key, *primitives.AEAD](keycache.DefaultSize)

func aeadFor(valueKey primitives.Key) (*primitives.AEAD, error) {
	return aeads.GetOrCompute(valueKey, func() (*primitives.AEAD, error) {
		return primitives.NewAEAD(valueKey)
	})
}

func sealIDs(valueKey primitives.Key, ids []string) ([]byte, error) {
	aead, err := aeadFor(valueKey)
	if err != nil {
		return nil, err
	}
	pt, err := json.Marshal(ids)
	if err != nil {
		return nil, fmt.Errorf("emm: encoding ids: %w", err)
	}
	return aead.Seal(pt, nil)
}

func openIDs(valueKey primitives.Key, blob []byte) ([]string, error) {
	if ids, ok := openShared(valueKey, blob); ok {
		return ids, nil
	}
	aead, err := aeadFor(valueKey)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(blob, nil)
	if err != nil {
		return nil, err
	}
	var ids []string
	if err := json.Unmarshal(pt, &ids); err != nil {
		return nil, fmt.Errorf("emm: decoding ids: %w", err)
	}
	return ids, nil
}

// Shared-payload cells
//
// An operation that fans one identical identifier list into many keywords'
// cells (BIEX's pair replication: a k-keyword document writes O(k²) pair
// cells all carrying the same versioned id) would seal the same plaintext
// under O(k²) different value keys — distinct ciphertexts, so nothing
// downstream can deduplicate them. The shared-payload form seals the list
// ONCE under a fresh ephemeral key and stores, per cell, only a fixed-size
// wrap binding that key to the cell's keyword value key:
//
//	stored value = 'S' || wrap || nonce || sealed(kd, ids)
//	wrap         = PRF(valueKey, "emm-shared", nonce) ⊕ kd
//
// The nonce is drawn once per group; within a group every cell has a
// distinct value key, so no PRF pad ever repeats. Only a holder of the
// cell's value key recovers kd, which keeps the response-revealing
// semantics exactly: a search token still opens exactly its keyword's
// cells. openIDs recognizes the magic prefix and falls back to the legacy
// whole-cell AEAD on authentication failure, so mixed-era indexes resolve.

const (
	// SharedWrapLen is the byte length of a shared-payload key wrap.
	SharedWrapLen = primitives.KeySize
	// SharedNonceLen is the byte length of a shared-payload group nonce.
	SharedNonceLen = 16
	// sharedMagic prefixes stored cell values in shared-payload form.
	sharedMagic = 0x53 // 'S'
)

// sharedLabel domain-separates the wrap PRF from address derivation.
var sharedLabel = []byte("emm-shared")

// AppendAddr reserves the next tail cell for w and returns its address
// plus the keyword's value key, for callers assembling shared-payload
// cells (WrapSharedKey + SealSharedIDs + server-side SharedValue).
func (c *Client) AppendAddr(namespace, w string) ([]byte, primitives.Key, error) {
	ak, vk := c.keywordKeys(namespace, w)
	i, err := c.state.NextTail(namespace, w)
	if err != nil {
		return nil, primitives.Key{}, err
	}
	return tailAddr(ak, i), vk, nil
}

// SealSharedIDs seals one identifier list under an ephemeral group key.
func SealSharedIDs(kd primitives.Key, ids []string) ([]byte, error) {
	return sealIDs(kd, ids)
}

// WrapSharedKey binds the group key kd to one cell's value key.
func WrapSharedKey(valueKey primitives.Key, nonce []byte, kd primitives.Key) []byte {
	pad := primitives.PRF(valueKey, sharedLabel, nonce)
	return primitives.XOR(pad[:primitives.KeySize], kd[:])
}

// SharedValue assembles the stored cell value of a shared-payload cell.
func SharedValue(wrap, nonce, shared []byte) []byte {
	out := make([]byte, 0, 1+len(wrap)+len(nonce)+len(shared))
	out = append(out, sharedMagic)
	out = append(out, wrap...)
	out = append(out, nonce...)
	return append(out, shared...)
}

// openShared attempts to open blob as a shared-payload cell; ok=false
// means "not that form" (wrong magic, short, or failed authentication)
// and the caller should try the legacy form.
func openShared(valueKey primitives.Key, blob []byte) ([]string, bool) {
	minLen := 1 + SharedWrapLen + SharedNonceLen + primitives.NonceSize + primitives.TagSize
	if len(blob) < minLen || blob[0] != sharedMagic {
		return nil, false
	}
	wrap := blob[1 : 1+SharedWrapLen]
	nonce := blob[1+SharedWrapLen : 1+SharedWrapLen+SharedNonceLen]
	shared := blob[1+SharedWrapLen+SharedNonceLen:]
	pad := primitives.PRF(valueKey, sharedLabel, nonce)
	kd, err := primitives.KeyFromBytes(primitives.XOR(pad[:primitives.KeySize], wrap))
	if err != nil {
		return nil, false
	}
	aead, err := aeadFor(kd)
	if err != nil {
		return nil, false
	}
	pt, err := aead.Open(shared, nil)
	if err != nil {
		return nil, false
	}
	var ids []string
	if err := json.Unmarshal(pt, &ids); err != nil {
		return nil, false
	}
	return ids, true
}

// Append produces the encrypted tail cell for (w -> id) and advances the
// client counter atomically. The returned entry must be delivered to
// Server.Insert.
func (c *Client) Append(namespace, w, id string) (Entry, error) {
	ak, vk := c.keywordKeys(namespace, w)
	val, err := sealIDs(vk, []string{id})
	if err != nil {
		return Entry{}, err
	}
	i, err := c.state.NextTail(namespace, w)
	if err != nil {
		return Entry{}, err
	}
	return Entry{Addr: tailAddr(ak, i), Val: val}, nil
}

// BuildPacked seals a full identifier list for w into packed buckets,
// replacing all previous state for the keyword. It returns the bucket
// entries plus the number of now-stale cells the server should drop
// (callers pass the old counts to Server.Rebuild).
func (c *Client) BuildPacked(namespace, w string, ids []string) (entries []Entry, old, nu Counts, err error) {
	old, err = c.state.Counts(namespace, w)
	if err != nil {
		return nil, Counts{}, Counts{}, err
	}
	ak, vk := c.keywordKeys(namespace, w)
	for j := 0; j*BucketCapacity < len(ids) || (j == 0 && len(ids) == 0); j++ {
		loEnd := j * BucketCapacity
		hiEnd := loEnd + BucketCapacity
		if hiEnd > len(ids) {
			hiEnd = len(ids)
		}
		val, err := sealIDs(vk, ids[loEnd:hiEnd])
		if err != nil {
			return nil, Counts{}, Counts{}, err
		}
		entries = append(entries, Entry{Addr: packedAddr(ak, uint64(j)), Val: val})
		if hiEnd == len(ids) {
			break
		}
	}
	nu = Counts{Packed: uint64(len(entries))}
	if err := c.state.SetCounts(namespace, w, nu); err != nil {
		return nil, Counts{}, Counts{}, err
	}
	return entries, old, nu, nil
}

// Token builds the search token for w.
func (c *Client) Token(namespace, w string) (SearchToken, error) {
	counts, err := c.state.Counts(namespace, w)
	if err != nil {
		return SearchToken{}, err
	}
	ak, vk := c.keywordKeys(namespace, w)
	return SearchToken{AddrKey: ak[:], ValueKey: vk[:], Counts: counts}, nil
}

// StaleAddrs enumerates the server addresses occupied by the given counts
// for w; Rebuild uses it to garbage-collect replaced cells.
func (c *Client) StaleAddrs(namespace, w string, counts Counts) [][]byte {
	ak := c.addrKey(namespace, w)
	addrs := make([][]byte, 0, counts.Packed+counts.Tail)
	for j := uint64(0); j < counts.Packed; j++ {
		addrs = append(addrs, packedAddr(ak, j))
	}
	for i := uint64(0); i < counts.Tail; i++ {
		addrs = append(addrs, tailAddr(ak, i))
	}
	return addrs
}

// Server is the cloud half of the EMM: an opaque cell store.
type Server struct {
	store     *kvstore.Store
	namespace string
}

// NewServer builds a server over store. namespace isolates multiple EMMs
// (e.g. the BIEX global and cross multimaps) in one store.
func NewServer(store *kvstore.Store, namespace string) *Server {
	return &Server{store: store, namespace: namespace}
}

func (s *Server) cellKey(addr []byte) []byte {
	return append([]byte("emm/"+s.namespace+"/"), addr...)
}

// Insert stores encrypted cells.
func (s *Server) Insert(entries []Entry) error {
	for _, e := range entries {
		if err := s.store.Set(s.cellKey(e.Addr), e.Val); err != nil {
			return fmt.Errorf("emm: inserting cell: %w", err)
		}
	}
	return nil
}

// Delete drops the cells at the given addresses (used by rebuilds).
func (s *Server) Delete(addrs [][]byte) error {
	for _, a := range addrs {
		if err := s.store.Del(s.cellKey(a)); err != nil {
			return fmt.Errorf("emm: deleting cell: %w", err)
		}
	}
	return nil
}

// Search resolves a token to the identifier list. Missing cells are
// tolerated (they may have been garbage-collected mid-rebuild); corrupt
// cells are an error.
func (s *Server) Search(t SearchToken) ([]string, error) {
	ak, err := primitives.KeyFromBytes(t.AddrKey)
	if err != nil {
		return nil, ErrBadToken
	}
	vk, err := primitives.KeyFromBytes(t.ValueKey)
	if err != nil {
		return nil, ErrBadToken
	}
	var ids []string
	fetch := func(addr []byte) error {
		val, ok, err := s.store.Get(s.cellKey(addr))
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		cell, err := openIDs(vk, val)
		if err != nil {
			return fmt.Errorf("emm: opening cell: %w", err)
		}
		ids = append(ids, cell...)
		return nil
	}
	for j := uint64(0); j < t.Counts.Packed; j++ {
		if err := fetch(packedAddr(ak, j)); err != nil {
			return nil, err
		}
	}
	for i := uint64(0); i < t.Counts.Tail; i++ {
		if err := fetch(tailAddr(ak, i)); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

var (
	_ State = (*MemState)(nil)
	_ State = (*KVState)(nil)
)
