package emm

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

func setup(t testing.TB) (*Client, *Server) {
	t.Helper()
	key, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	client := NewClient(key, NewMemState())
	server := NewServer(kvstore.New(), "test")
	return client, server
}

func appendAll(t testing.TB, c *Client, s *Server, ns, w string, ids ...string) {
	t.Helper()
	for _, id := range ids {
		e, err := c.Append(ns, w, id)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := s.Insert([]Entry{e}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
}

func search(t testing.TB, c *Client, s *Server, ns, w string) []string {
	t.Helper()
	tok, err := c.Token(ns, w)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	ids, err := s.Search(tok)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	sort.Strings(ids)
	return ids
}

func TestAppendSearch(t *testing.T) {
	c, s := setup(t)
	appendAll(t, c, s, "ns", "diabetes", "d1", "d2", "d3")
	got := search(t, c, s, "ns", "diabetes")
	want := []string{"d1", "d2", "d3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Search = %v, want %v", got, want)
	}
}

func TestEmptyKeyword(t *testing.T) {
	c, s := setup(t)
	if got := search(t, c, s, "ns", "never-inserted"); len(got) != 0 {
		t.Fatalf("Search(empty keyword) = %v", got)
	}
}

func TestKeywordIsolation(t *testing.T) {
	c, s := setup(t)
	appendAll(t, c, s, "ns", "w1", "a")
	appendAll(t, c, s, "ns", "w2", "b")
	if got := search(t, c, s, "ns", "w1"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("w1 = %v", got)
	}
	if got := search(t, c, s, "ns", "w2"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("w2 = %v", got)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	c, s := setup(t)
	appendAll(t, c, s, "ns1", "w", "a")
	if got := search(t, c, s, "ns2", "w"); len(got) != 0 {
		t.Fatalf("cross-namespace search = %v", got)
	}
	// Also across server namespaces: same client, different server ns.
	s2 := NewServer(kvstore.New(), "other")
	tok, _ := c.Token("ns1", "w")
	ids, err := s2.Search(tok)
	if err != nil || len(ids) != 0 {
		t.Fatalf("foreign server returned %v, %v", ids, err)
	}
}

func TestBuildPackedAndTail(t *testing.T) {
	c, s := setup(t)
	// 20 ids -> 3 buckets at capacity 8.
	var ids []string
	for i := 0; i < 20; i++ {
		ids = append(ids, fmt.Sprintf("d%02d", i))
	}
	entries, old, nu, err := c.BuildPacked("ns", "w", ids)
	if err != nil {
		t.Fatalf("BuildPacked: %v", err)
	}
	if old.Packed != 0 || old.Tail != 0 {
		t.Fatalf("old counts = %+v", old)
	}
	if nu.Packed != 3 || nu.Tail != 0 {
		t.Fatalf("new counts = %+v", nu)
	}
	if len(entries) != 3 {
		t.Fatalf("bucket count = %d", len(entries))
	}
	if err := s.Insert(entries); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got := search(t, c, s, "ns", "w")
	if len(got) != 20 {
		t.Fatalf("Search after pack = %d ids", len(got))
	}
	// Dynamic tail on top of packed level.
	appendAll(t, c, s, "ns", "w", "d-new")
	got = search(t, c, s, "ns", "w")
	if len(got) != 21 || got[20] != "d20" && got[0] != "d-new" {
		if len(got) != 21 {
			t.Fatalf("Search after tail append = %d ids", len(got))
		}
	}
}

func TestRebuildReplacesOldCells(t *testing.T) {
	c, s := setup(t)
	appendAll(t, c, s, "ns", "w", "a", "b", "c")

	// Rebuild with only the surviving ids (simulating deletion of "b").
	entries, old, _, err := c.BuildPacked("ns", "w", []string{"a", "c"})
	if err != nil {
		t.Fatalf("BuildPacked: %v", err)
	}
	if err := s.Delete(c.StaleAddrs("ns", "w", old)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Insert(entries); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got := search(t, c, s, "ns", "w")
	if !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("Search after rebuild = %v", got)
	}
}

func TestServerCellsAreOpaque(t *testing.T) {
	// Every stored cell must look like ciphertext: no plaintext ids in keys
	// or values.
	key, _ := primitives.NewRandomKey()
	store := kvstore.New()
	c := NewClient(key, NewMemState())
	s := NewServer(store, "ns")
	e, err := c.Append("ns", "hypertension", "patient-007")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([]Entry{e}); err != nil {
		t.Fatal(err)
	}
	keys, _ := store.Keys(nil)
	for _, k := range keys {
		if containsSubstring(k, "hypertension") || containsSubstring(k, "patient-007") {
			t.Fatalf("plaintext leaked into server key %q", k)
		}
		v, _, _ := store.Get(k)
		if containsSubstring(v, "patient-007") {
			t.Fatalf("plaintext leaked into server value")
		}
	}
}

func containsSubstring(b []byte, sub string) bool {
	return len(sub) > 0 && len(b) >= len(sub) && (string(b) == sub || indexOf(b, sub) >= 0)
}

func indexOf(b []byte, sub string) int {
	for i := 0; i+len(sub) <= len(b); i++ {
		if string(b[i:i+len(sub)]) == sub {
			return i
		}
	}
	return -1
}

func TestSearchRejectsBadToken(t *testing.T) {
	_, s := setup(t)
	if _, err := s.Search(SearchToken{AddrKey: []byte{1}, ValueKey: []byte{2}}); err != ErrBadToken {
		t.Fatalf("bad token error = %v", err)
	}
}

func TestWrongValueKeyFailsClosed(t *testing.T) {
	c, s := setup(t)
	appendAll(t, c, s, "ns", "w", "a")
	tok, _ := c.Token("ns", "w")
	// Corrupt the value key: the address resolves but decryption must fail
	// rather than return garbage.
	tok.ValueKey = make([]byte, primitives.KeySize)
	if _, err := s.Search(tok); err == nil {
		t.Fatal("Search with wrong value key succeeded")
	}
}

func TestKVStateRoundTrip(t *testing.T) {
	st := NewKVState(kvstore.New())
	if err := st.SetCounts("ns", "w", Counts{Packed: 2, Tail: 5}); err != nil {
		t.Fatalf("SetCounts: %v", err)
	}
	c, err := st.Counts("ns", "w")
	if err != nil || c.Packed != 2 || c.Tail != 5 {
		t.Fatalf("Counts = %+v, %v", c, err)
	}
	c, err = st.Counts("ns", "other")
	if err != nil || c.Packed != 0 || c.Tail != 0 {
		t.Fatalf("Counts(absent) = %+v, %v", c, err)
	}
}

func TestSearchEqualsReferenceIndexQuick(t *testing.T) {
	// Property: EMM search results always equal a plaintext inverted index
	// built from the same operations.
	c, s := setup(t)
	ref := make(map[string][]string)
	f := func(wSel, idSel uint8) bool {
		w := fmt.Sprintf("w%d", wSel%5)
		id := fmt.Sprintf("d%d", idSel)
		e, err := c.Append("q", w, id)
		if err != nil {
			return false
		}
		if err := s.Insert([]Entry{e}); err != nil {
			return false
		}
		ref[w] = append(ref[w], id)

		tok, err := c.Token("q", w)
		if err != nil {
			return false
		}
		got, err := s.Search(tok)
		if err != nil {
			return false
		}
		sort.Strings(got)
		want := append([]string(nil), ref[w]...)
		sort.Strings(want)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	c, s := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := c.Append("ns", "w", fmt.Sprintf("d%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Insert([]Entry{e}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch1000(b *testing.B) {
	c, s := setup(b)
	for i := 0; i < 1000; i++ {
		e, _ := c.Append("ns", "w", fmt.Sprintf("d%d", i))
		s.Insert([]Entry{e})
	}
	tok, _ := c.Token("ns", "w")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(tok); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchPacked1000(b *testing.B) {
	c, s := setup(b)
	var ids []string
	for i := 0; i < 1000; i++ {
		ids = append(ids, fmt.Sprintf("d%d", i))
	}
	entries, _, _, _ := c.BuildPacked("ns", "w", ids)
	s.Insert(entries)
	tok, _ := c.Token("ns", "w")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(tok); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSharedCellsMixWithLegacy(t *testing.T) {
	c, s := setup(t)
	appendAll(t, c, s, "ns", "w", "d1", "d2")

	// A newer writer ships shared-payload cells for the same keyword:
	// each cell is a key wrap and the server stores the assembled
	// self-contained value.
	kd, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("kd: %v", err)
	}
	nonce, err := primitives.RandomBytes(SharedNonceLen)
	if err != nil {
		t.Fatalf("nonce: %v", err)
	}
	shared, err := SealSharedIDs(kd, []string{"d3", "d4"})
	if err != nil {
		t.Fatalf("SealSharedIDs: %v", err)
	}
	addr, vk, err := c.AppendAddr("ns", "w")
	if err != nil {
		t.Fatalf("AppendAddr: %v", err)
	}
	wrap := WrapSharedKey(vk, nonce, kd)
	if len(wrap) != SharedWrapLen {
		t.Fatalf("wrap len = %d, want %d", len(wrap), SharedWrapLen)
	}
	if err := s.Insert([]Entry{{Addr: addr, Val: SharedValue(wrap, nonce, shared)}}); err != nil {
		t.Fatalf("Insert: %v", err)
	}

	got := search(t, c, s, "ns", "w")
	want := []string{"d1", "d2", "d3", "d4"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed-era Search = %v, want %v", got, want)
	}
}

func TestSharedCellWrongKeyFailsClosed(t *testing.T) {
	c, s := setup(t)
	kd, _ := primitives.NewRandomKey()
	nonce, _ := primitives.RandomBytes(SharedNonceLen)
	shared, err := SealSharedIDs(kd, []string{"d1"})
	if err != nil {
		t.Fatalf("SealSharedIDs: %v", err)
	}
	addr, _, err := c.AppendAddr("ns", "w")
	if err != nil {
		t.Fatalf("AppendAddr: %v", err)
	}
	// Wrap under an unrelated key: neither the shared parse nor the
	// legacy fallback may yield ids.
	wrong, _ := primitives.NewRandomKey()
	if err := s.Insert([]Entry{{Addr: addr, Val: SharedValue(WrapSharedKey(wrong, nonce, kd), nonce, shared)}}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	tok, err := c.Token("ns", "w")
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	if _, err := s.Search(tok); err == nil {
		t.Fatal("Search with mis-wrapped shared cell succeeded, want error")
	}
}
