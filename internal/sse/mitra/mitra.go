// Package mitra implements the Mitra dynamic symmetric searchable
// encryption scheme of Chamani, Papadopoulos, Papamanthou and Jalili
// (CCS 2018): forward AND backward private, with all decryption performed
// at the client (the cloud only ever sees pseudo-random addresses and
// pads), which is why its protection class in the paper's Table 2 is 2
// (Identifiers leakage) and its listed challenge is "Local storage" — the
// client keeps a counter per keyword.
//
// Protocol sketch:
//
//	Update(w, id, op): c := ctr[w]++ ;
//	    addr = PRF(K_w, c || 0) ; val = (op||id) XOR PRF(K_w, c || 1)
//	Search(w): client sends all addresses addr_1..addr_c; the server
//	    returns the stored values; the client decrypts and cancels
//	    deletions against additions.
package mitra

import (
	"errors"
	"fmt"
	"sync"

	"datablinder/internal/crypto/keycache"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

// Op marks an update as addition or deletion.
type Op byte

// Update operations.
const (
	OpAdd Op = 1
	OpDel Op = 2
)

// idSlot is the fixed plaintext width of an encrypted (op, id) cell:
// 1 op byte + 1 length byte + up to MaxIDLen id bytes.
const (
	// MaxIDLen is the longest supported document identifier.
	MaxIDLen = 62
	idSlot   = 2 + MaxIDLen
)

// Errors returned by this package.
var (
	ErrIDTooLong = errors.New("mitra: document id exceeds 62 bytes")
	ErrBadCell   = errors.New("mitra: malformed server cell")
)

// State persists the client's per-keyword counter. Implementations must
// be safe for concurrent use; Next must be atomic so concurrent updates
// to the same keyword never reuse a cell index.
type State interface {
	// Counter returns the number of updates issued for w (0 if none).
	Counter(namespace, w string) (uint64, error)
	// Next atomically reserves and returns the next update index for w
	// (0 for the first update).
	Next(namespace, w string) (uint64, error)
	// SetCounter stores the update count for w (used by restores/tests).
	SetCounter(namespace, w string, c uint64) error
}

// MemState is an in-memory State.
type MemState struct {
	mu sync.RWMutex
	m  map[string]uint64
}

// NewMemState returns an empty MemState.
func NewMemState() *MemState { return &MemState{m: make(map[string]uint64)} }

// Counter implements State.
func (s *MemState) Counter(namespace, w string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[namespace+"\x00"+w], nil
}

// Next implements State.
func (s *MemState) Next(namespace, w string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := namespace + "\x00" + w
	c := s.m[k]
	s.m[k] = c + 1
	return c, nil
}

// SetCounter implements State.
func (s *MemState) SetCounter(namespace, w string, c uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[namespace+"\x00"+w] = c
	return nil
}

// KVState persists counters in the gateway kvstore.
type KVState struct {
	store *kvstore.Store
}

// NewKVState wraps store.
func NewKVState(store *kvstore.Store) *KVState { return &KVState{store: store} }

func (s *KVState) key(namespace, w string) []byte {
	return []byte("mitractr/" + namespace + "\x00" + w)
}

// Counter implements State.
func (s *KVState) Counter(namespace, w string) (uint64, error) {
	c, err := s.store.Counter(s.key(namespace, w))
	return uint64(c), err
}

// Next implements State atomically via the store's counter primitive.
func (s *KVState) Next(namespace, w string) (uint64, error) {
	c, err := s.store.Incr(s.key(namespace, w), 1)
	if err != nil {
		return 0, err
	}
	return uint64(c - 1), nil
}

// SetCounter implements State.
func (s *KVState) SetCounter(namespace, w string, c uint64) error {
	cur, err := s.store.Counter(s.key(namespace, w))
	if err != nil {
		return err
	}
	_, err = s.store.Incr(s.key(namespace, w), int64(c)-cur)
	return err
}

// Entry is one encrypted update cell.
type Entry struct {
	Addr []byte `json:"addr"`
	Val  []byte `json:"val"`
}

// SearchRequest carries the addresses of every update cell for the queried
// keyword. The server learns only which cells are touched (access pattern).
type SearchRequest struct {
	Addrs [][]byte `json:"addrs"`
}

// Client is the gateway half of Mitra.
type Client struct {
	key    primitives.Key
	state  State
	kwKeys *keycache.Cache[string, primitives.Key]
}

// NewClient derives the client from key; state persists keyword counters.
func NewClient(key primitives.Key, state State) *Client {
	return &Client{
		key:    primitives.PRFKey(key, []byte("mitra")),
		state:  state,
		kwKeys: keycache.New[string, primitives.Key](keycache.DefaultSize),
	}
}

func (c *Client) keywordKey(namespace, w string) primitives.Key {
	ck := namespace + "\x00" + w
	if k, ok := c.kwKeys.Get(ck); ok {
		return k
	}
	k := primitives.PRFKey(c.key, []byte(namespace), []byte{0}, []byte(w))
	c.kwKeys.Put(ck, k)
	return k
}

func addrOf(kw primitives.Key, i uint64) []byte {
	return primitives.PRF(kw, primitives.Uint64Bytes(i), []byte{0})
}

// pad derives the idSlot-byte encryption pad for update i.
func pad(kw primitives.Key, i uint64) []byte {
	p := make([]byte, 0, idSlot)
	for blk := uint64(0); len(p) < idSlot; blk++ {
		p = append(p, primitives.PRF(kw, primitives.Uint64Bytes(i), []byte{1}, primitives.Uint64Bytes(blk))...)
	}
	return p[:idSlot]
}

func encodeCell(op Op, id string) ([]byte, error) {
	if len(id) > MaxIDLen {
		return nil, ErrIDTooLong
	}
	cell := make([]byte, idSlot)
	cell[0] = byte(op)
	cell[1] = byte(len(id))
	copy(cell[2:], id)
	return cell, nil
}

func decodeCell(cell []byte) (Op, string, error) {
	if len(cell) != idSlot {
		return 0, "", ErrBadCell
	}
	op := Op(cell[0])
	if op != OpAdd && op != OpDel {
		return 0, "", ErrBadCell
	}
	n := int(cell[1])
	if n > MaxIDLen {
		return 0, "", ErrBadCell
	}
	return op, string(cell[2 : 2+n]), nil
}

// Update produces the encrypted cell for an add/delete of id under w.
// The cell index is reserved atomically, so concurrent updates to one
// keyword never collide.
func (c *Client) Update(namespace, w string, op Op, id string) (Entry, error) {
	kw := c.keywordKey(namespace, w)
	cell, err := encodeCell(op, id)
	if err != nil {
		return Entry{}, err
	}
	ctr, err := c.state.Next(namespace, w)
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		Addr: addrOf(kw, ctr),
		Val:  primitives.XOR(cell, pad(kw, ctr)),
	}, nil
}

// SearchRequest enumerates the cell addresses for w. An empty request
// (zero counter) means the keyword has never been updated.
func (c *Client) SearchRequest(namespace, w string) (SearchRequest, error) {
	ctr, err := c.state.Counter(namespace, w)
	if err != nil {
		return SearchRequest{}, err
	}
	kw := c.keywordKey(namespace, w)
	req := SearchRequest{Addrs: make([][]byte, 0, ctr)}
	for i := uint64(0); i < ctr; i++ {
		req.Addrs = append(req.Addrs, addrOf(kw, i))
	}
	return req, nil
}

// Resolve decrypts the server's response and cancels deletions: an id is
// in the result iff its additions outnumber its deletions (each add
// contributes one live reference, each delete removes one).
func (c *Client) Resolve(namespace, w string, vals [][]byte) ([]string, error) {
	kw := c.keywordKey(namespace, w)
	live := make(map[string]int)
	seen := make(map[string]bool)
	order := make([]string, 0, len(vals))
	for i, v := range vals {
		if v == nil {
			continue // cell missing server-side; tolerate
		}
		if len(v) != idSlot {
			return nil, ErrBadCell
		}
		op, id, err := decodeCell(primitives.XOR(v, pad(kw, uint64(i))))
		if err != nil {
			return nil, err
		}
		switch op {
		case OpAdd:
			if !seen[id] {
				seen[id] = true
				order = append(order, id)
			}
			live[id]++
		case OpDel:
			live[id]--
		}
	}
	out := make([]string, 0, len(order))
	for _, id := range order {
		if live[id] > 0 {
			out = append(out, id)
		}
	}
	return out, nil
}

// Server is the cloud half of Mitra: a write-once cell store.
type Server struct {
	store     *kvstore.Store
	namespace string
}

// NewServer builds a server over store.
func NewServer(store *kvstore.Store, namespace string) *Server {
	return &Server{store: store, namespace: namespace}
}

func (s *Server) cellKey(addr []byte) []byte {
	return append([]byte("mitra/"+s.namespace+"/"), addr...)
}

// Insert stores encrypted cells.
func (s *Server) Insert(entries []Entry) error {
	for _, e := range entries {
		if err := s.store.Set(s.cellKey(e.Addr), e.Val); err != nil {
			return fmt.Errorf("mitra: inserting cell: %w", err)
		}
	}
	return nil
}

// Search returns the stored values for the requested addresses, position-
// aligned with the request (nil for missing cells) so the client can
// derive the right pad per position.
func (s *Server) Search(req SearchRequest) ([][]byte, error) {
	out := make([][]byte, len(req.Addrs))
	for i, addr := range req.Addrs {
		v, ok, err := s.store.Get(s.cellKey(addr))
		if err != nil {
			return nil, err
		}
		if ok {
			out[i] = v
		}
	}
	return out, nil
}

var (
	_ State = (*MemState)(nil)
	_ State = (*KVState)(nil)
)
