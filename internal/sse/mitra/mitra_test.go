package mitra

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

func setup(t testing.TB) (*Client, *Server) {
	t.Helper()
	key, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	return NewClient(key, NewMemState()), NewServer(kvstore.New(), "test")
}

func update(t testing.TB, c *Client, s *Server, ns, w string, op Op, id string) {
	t.Helper()
	e, err := c.Update(ns, w, op, id)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := s.Insert([]Entry{e}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
}

func search(t testing.TB, c *Client, s *Server, ns, w string) []string {
	t.Helper()
	req, err := c.SearchRequest(ns, w)
	if err != nil {
		t.Fatalf("SearchRequest: %v", err)
	}
	vals, err := s.Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	ids, err := c.Resolve(ns, w, vals)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	sort.Strings(ids)
	return ids
}

func TestAddSearch(t *testing.T) {
	c, s := setup(t)
	update(t, c, s, "ns", "cancer", OpAdd, "d1")
	update(t, c, s, "ns", "cancer", OpAdd, "d2")
	got := search(t, c, s, "ns", "cancer")
	if !reflect.DeepEqual(got, []string{"d1", "d2"}) {
		t.Fatalf("Search = %v", got)
	}
}

func TestBackwardPrivacyDeletion(t *testing.T) {
	c, s := setup(t)
	update(t, c, s, "ns", "w", OpAdd, "d1")
	update(t, c, s, "ns", "w", OpAdd, "d2")
	update(t, c, s, "ns", "w", OpDel, "d1")
	got := search(t, c, s, "ns", "w")
	if !reflect.DeepEqual(got, []string{"d2"}) {
		t.Fatalf("Search after delete = %v", got)
	}
	// Re-adding a deleted id resurrects it.
	update(t, c, s, "ns", "w", OpAdd, "d1")
	got = search(t, c, s, "ns", "w")
	if !reflect.DeepEqual(got, []string{"d1", "d2"}) {
		t.Fatalf("Search after re-add = %v", got)
	}
}

func TestDeleteBeforeAdd(t *testing.T) {
	// A dangling delete must not produce a phantom result, and a later add
	// is cancelled by the earlier delete only if net count <= 0; Mitra
	// semantics are net-count based.
	c, s := setup(t)
	update(t, c, s, "ns", "w", OpDel, "ghost")
	if got := search(t, c, s, "ns", "w"); len(got) != 0 {
		t.Fatalf("Search = %v, want empty", got)
	}
}

func TestEmptyKeyword(t *testing.T) {
	c, s := setup(t)
	if got := search(t, c, s, "ns", "nothing"); len(got) != 0 {
		t.Fatalf("Search(empty) = %v", got)
	}
}

func TestKeywordAndNamespaceIsolation(t *testing.T) {
	c, s := setup(t)
	update(t, c, s, "ns1", "w", OpAdd, "a")
	update(t, c, s, "ns1", "x", OpAdd, "b")
	if got := search(t, c, s, "ns1", "w"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("w = %v", got)
	}
	if got := search(t, c, s, "ns2", "w"); len(got) != 0 {
		t.Fatalf("cross-namespace = %v", got)
	}
}

func TestIDTooLong(t *testing.T) {
	c, _ := setup(t)
	long := strings.Repeat("x", MaxIDLen+1)
	if _, err := c.Update("ns", "w", OpAdd, long); err != ErrIDTooLong {
		t.Fatalf("Update(long id) = %v", err)
	}
}

func TestMaxLengthID(t *testing.T) {
	c, s := setup(t)
	id := strings.Repeat("y", MaxIDLen)
	update(t, c, s, "ns", "w", OpAdd, id)
	got := search(t, c, s, "ns", "w")
	if !reflect.DeepEqual(got, []string{id}) {
		t.Fatalf("Search = %v", got)
	}
}

func TestServerSeesOnlyOpaqueData(t *testing.T) {
	key, _ := primitives.NewRandomKey()
	store := kvstore.New()
	c := NewClient(key, NewMemState())
	s := NewServer(store, "ns")
	e, err := c.Update("ns", "diagnosis", OpAdd, "patient-9")
	if err != nil {
		t.Fatal(err)
	}
	s.Insert([]Entry{e})
	keys, _ := store.Keys(nil)
	for _, k := range keys {
		if strings.Contains(string(k), "diagnosis") || strings.Contains(string(k), "patient-9") {
			t.Fatal("plaintext leaked into server key")
		}
		v, _, _ := store.Get(k)
		if strings.Contains(string(v), "patient-9") {
			t.Fatal("plaintext leaked into server value")
		}
	}
}

func TestResolveRejectsCorruptCell(t *testing.T) {
	c, s := setup(t)
	update(t, c, s, "ns", "w", OpAdd, "d1")
	req, _ := c.SearchRequest("ns", "w")
	vals, _ := s.Search(req)
	vals[0] = make([]byte, idSlot) // zero cell decrypts to garbage op
	if _, err := c.Resolve("ns", "w", vals); err == nil {
		t.Fatal("Resolve accepted corrupt cell")
	}
	short := [][]byte{{1, 2, 3}}
	if _, err := c.Resolve("ns", "w", short); err == nil {
		t.Fatal("Resolve accepted short cell")
	}
}

func TestForwardPrivacyAddressUnlinkability(t *testing.T) {
	// Successive updates to the same keyword must produce unrelated
	// addresses (no shared prefix beyond chance).
	c, _ := setup(t)
	e1, _ := c.Update("ns", "w", OpAdd, "d1")
	e2, _ := c.Update("ns", "w", OpAdd, "d2")
	if reflect.DeepEqual(e1.Addr, e2.Addr) {
		t.Fatal("two updates share an address")
	}
}

func TestSearchEqualsReferenceQuick(t *testing.T) {
	c, s := setup(t)
	ref := make(map[string]map[string]int) // w -> id -> net count
	f := func(wSel, idSel uint8, del bool) bool {
		w := fmt.Sprintf("w%d", wSel%4)
		id := fmt.Sprintf("d%d", idSel%16)
		op := OpAdd
		if del {
			op = OpDel
		}
		e, err := c.Update("q", w, op, id)
		if err != nil {
			return false
		}
		if err := s.Insert([]Entry{e}); err != nil {
			return false
		}
		if ref[w] == nil {
			ref[w] = make(map[string]int)
		}
		if del {
			ref[w][id]--
		} else {
			ref[w][id]++
		}

		got := searchQuiet(c, s, "q", w)
		var want []string
		for id, n := range ref[w] {
			if n > 0 {
				want = append(want, id)
			}
		}
		sort.Strings(want)
		if want == nil {
			want = []string{}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func searchQuiet(c *Client, s *Server, ns, w string) []string {
	req, err := c.SearchRequest(ns, w)
	if err != nil {
		return nil
	}
	vals, err := s.Search(req)
	if err != nil {
		return nil
	}
	ids, err := c.Resolve(ns, w, vals)
	if err != nil {
		return nil
	}
	sort.Strings(ids)
	if ids == nil {
		ids = []string{}
	}
	return ids
}

func TestKVStatePersistence(t *testing.T) {
	st := NewKVState(kvstore.New())
	if err := st.SetCounter("ns", "w", 9); err != nil {
		t.Fatal(err)
	}
	c, err := st.Counter("ns", "w")
	if err != nil || c != 9 {
		t.Fatalf("Counter = %d, %v", c, err)
	}
	if c, _ := st.Counter("ns", "absent"); c != 0 {
		t.Fatalf("Counter(absent) = %d", c)
	}
}

func BenchmarkUpdate(b *testing.B) {
	c, s := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := c.Update("ns", "w", OpAdd, fmt.Sprintf("d%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Insert([]Entry{e}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch1000(b *testing.B) {
	c, s := setup(b)
	for i := 0; i < 1000; i++ {
		e, _ := c.Update("ns", "w", OpAdd, fmt.Sprintf("d%d", i))
		s.Insert([]Entry{e})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := c.SearchRequest("ns", "w")
		vals, err := s.Search(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Resolve("ns", "w", vals); err != nil {
			b.Fatal(err)
		}
	}
}
