package sophos

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

// One RSA keypair for the whole test package; 2048-bit keygen is slow.
var (
	tdpOnce sync.Once
	tdp     *rsa.PrivateKey
)

func testTDP(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	tdpOnce.Do(func() {
		k, err := rsa.GenerateKey(rand.Reader, RSABits)
		if err != nil {
			t.Fatalf("rsa keygen: %v", err)
		}
		tdp = k
	})
	return tdp
}

func setup(t testing.TB) (*Client, *Server) {
	t.Helper()
	key, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	client, err := NewClientWithTDP(key, NewMemState(), testTDP(t))
	if err != nil {
		t.Fatalf("NewClientWithTDP: %v", err)
	}
	server := NewServer(kvstore.New(), "test", client.PublicKey())
	return client, server
}

func insert(t testing.TB, c *Client, s *Server, ns, w, id string) {
	t.Helper()
	e, err := c.Insert(ns, w, id)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := s.Insert([]Entry{e}); err != nil {
		t.Fatalf("server Insert: %v", err)
	}
}

func search(t testing.TB, c *Client, s *Server, ns, w string) []string {
	t.Helper()
	tok, ok, err := c.Token(ns, w)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	if !ok {
		return nil
	}
	ids, err := s.Search(tok)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	sort.Strings(ids)
	return ids
}

func TestInsertSearch(t *testing.T) {
	c, s := setup(t)
	insert(t, c, s, "ns", "glucose", "d1")
	insert(t, c, s, "ns", "glucose", "d2")
	insert(t, c, s, "ns", "glucose", "d3")
	got := search(t, c, s, "ns", "glucose")
	if !reflect.DeepEqual(got, []string{"d1", "d2", "d3"}) {
		t.Fatalf("Search = %v", got)
	}
}

func TestEmptyKeyword(t *testing.T) {
	c, s := setup(t)
	if got := search(t, c, s, "ns", "nothing"); len(got) != 0 {
		t.Fatalf("Search(empty) = %v", got)
	}
}

func TestKeywordIsolation(t *testing.T) {
	c, s := setup(t)
	insert(t, c, s, "ns", "w1", "a")
	insert(t, c, s, "ns", "w2", "b")
	if got := search(t, c, s, "ns", "w1"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("w1 = %v", got)
	}
	if got := search(t, c, s, "ns", "w2"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("w2 = %v", got)
	}
}

func TestManyInsertsChainWalk(t *testing.T) {
	// The server must walk a long TDP chain correctly.
	c, s := setup(t)
	var want []string
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("d%02d", i)
		insert(t, c, s, "ns", "w", id)
		want = append(want, id)
	}
	got := search(t, c, s, "ns", "w")
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Search returned %d ids, want %d", len(got), len(want))
	}
}

func TestForwardPrivacyUnlinkability(t *testing.T) {
	c, _ := setup(t)
	e1, err := c.Insert("ns", "w", "d1")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Insert("ns", "w", "d2")
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(e1.Addr, e2.Addr) {
		t.Fatal("two inserts share an address")
	}
}

func TestIDTooLong(t *testing.T) {
	c, _ := setup(t)
	if _, err := c.Insert("ns", "w", strings.Repeat("x", MaxIDLen+1)); err != ErrIDTooLong {
		t.Fatalf("Insert(long id) = %v", err)
	}
}

func TestMaxLengthID(t *testing.T) {
	c, s := setup(t)
	id := strings.Repeat("z", MaxIDLen)
	insert(t, c, s, "ns", "w", id)
	got := search(t, c, s, "ns", "w")
	if !reflect.DeepEqual(got, []string{id}) {
		t.Fatalf("Search = %v", got)
	}
}

func TestServerSeesOnlyOpaqueData(t *testing.T) {
	key, _ := primitives.NewRandomKey()
	store := kvstore.New()
	c, err := NewClientWithTDP(key, NewMemState(), testTDP(t))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(store, "ns", c.PublicKey())
	e, err := c.Insert("ns", "oncology", "patient-42")
	if err != nil {
		t.Fatal(err)
	}
	s.Insert([]Entry{e})
	keys, _ := store.Keys(nil)
	for _, k := range keys {
		if strings.Contains(string(k), "oncology") || strings.Contains(string(k), "patient-42") {
			t.Fatal("plaintext leaked into server key")
		}
		v, _, _ := store.Get(k)
		if strings.Contains(string(v), "patient-42") {
			t.Fatal("plaintext leaked into server value")
		}
	}
}

func TestSearchRejectsBadToken(t *testing.T) {
	_, s := setup(t)
	if _, err := s.Search(SearchToken{KeywordKey: []byte{1}, ST: []byte{2}, Count: 1}); err != ErrBadToken {
		t.Fatalf("bad token error = %v", err)
	}
}

func TestStatePersistenceAcrossClients(t *testing.T) {
	// A gateway restart (same state store + same TDP) must continue the
	// chain without breaking searchability.
	key, _ := primitives.NewRandomKey()
	state := NewKVState(kvstore.New())
	store := kvstore.New()
	c1, err := NewClientWithTDP(key, state, testTDP(t))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(store, "ns", c1.PublicKey())
	e, _ := c1.Insert("ns", "w", "before-restart")
	s.Insert([]Entry{e})

	c2, err := NewClientWithTDP(key, state, testTDP(t))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c2.Insert("ns", "w", "after-restart")
	if err != nil {
		t.Fatal(err)
	}
	s.Insert([]Entry{e2})

	got := search(t, c2, s, "ns", "w")
	if !reflect.DeepEqual(got, []string{"after-restart", "before-restart"}) {
		t.Fatalf("Search across restart = %v", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	c, s := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := c.Insert("ns", "w", fmt.Sprintf("d%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Insert([]Entry{e}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch100(b *testing.B) {
	c, s := setup(b)
	for i := 0; i < 100; i++ {
		e, _ := c.Insert("ns", "w", fmt.Sprintf("d%d", i))
		s.Insert([]Entry{e})
	}
	tok, _, _ := c.Token("ns", "w")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(tok); err != nil {
			b.Fatal(err)
		}
	}
}
