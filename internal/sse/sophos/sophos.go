// Package sophos implements the Σoφoς (Sophos) forward-private searchable
// encryption scheme of Bost (CCS 2016). Forward privacy means update
// tokens reveal nothing about previously searched keywords: each update's
// address is derived from a fresh search-token state obtained by walking a
// trapdoor permutation *backwards* with the client's private key; at
// search time the server walks *forwards* with the public key, so old
// states never have to be re-sent.
//
// The trapdoor permutation is raw RSA over Z_N* (x^d for the client's
// inverse step, x^e for the server's forward step), exactly as in Bost's
// construction. The paper's Table 2 lists Sophos at protection class 2
// (Identifiers) with "Key management" as its integration challenge — the
// gateway must hold the RSA private key and per-keyword state.
package sophos

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"datablinder/internal/crypto/keycache"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

// stBytes is the fixed serialized width of a TDP state (2048-bit modulus).
const stBytes = 256

// RSABits is the TDP modulus size.
const RSABits = 2048

// idSlot is the fixed plaintext width of a value cell: 1 length byte +
// up to MaxIDLen id bytes.
const (
	// MaxIDLen is the longest supported document identifier.
	MaxIDLen = 63
	idSlot   = 1 + MaxIDLen
)

// Errors returned by this package.
var (
	ErrIDTooLong = errors.New("sophos: document id exceeds 63 bytes")
	ErrBadCell   = errors.New("sophos: malformed server cell")
	ErrBadToken  = errors.New("sophos: malformed search token")
)

// KeywordState is the client's per-keyword record: the latest TDP state
// and the number of updates.
type KeywordState struct {
	ST    []byte `json:"st"` // current state, fixed width
	Count uint64 `json:"count"`
}

// State persists per-keyword records.
type State interface {
	// Keyword returns the record for w and whether it exists.
	Keyword(namespace, w string) (KeywordState, bool, error)
	// SetKeyword stores the record for w.
	SetKeyword(namespace, w string, ks KeywordState) error
}

// MemState is an in-memory State.
type MemState struct {
	mu sync.RWMutex
	m  map[string]KeywordState
}

// NewMemState returns an empty MemState.
func NewMemState() *MemState { return &MemState{m: make(map[string]KeywordState)} }

// Keyword implements State.
func (s *MemState) Keyword(namespace, w string) (KeywordState, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks, ok := s.m[namespace+"\x00"+w]
	return ks, ok, nil
}

// SetKeyword implements State.
func (s *MemState) SetKeyword(namespace, w string, ks KeywordState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[namespace+"\x00"+w] = ks
	return nil
}

// KVState persists keyword records in the gateway kvstore.
type KVState struct {
	store *kvstore.Store
}

// NewKVState wraps store.
func NewKVState(store *kvstore.Store) *KVState { return &KVState{store: store} }

// Keyword implements State.
func (s *KVState) Keyword(namespace, w string) (KeywordState, bool, error) {
	raw, ok, err := s.store.Get([]byte("sophosstate/" + namespace + "\x00" + w))
	if err != nil || !ok {
		return KeywordState{}, false, err
	}
	var ks KeywordState
	if err := json.Unmarshal(raw, &ks); err != nil {
		return KeywordState{}, false, fmt.Errorf("sophos: decoding state: %w", err)
	}
	return ks, true, nil
}

// SetKeyword implements State.
func (s *KVState) SetKeyword(namespace, w string, ks KeywordState) error {
	raw, err := json.Marshal(ks)
	if err != nil {
		return err
	}
	return s.store.Set([]byte("sophosstate/"+namespace+"\x00"+w), raw)
}

// Entry is one encrypted update cell.
type Entry struct {
	Addr []byte `json:"addr"`
	Val  []byte `json:"val"`
}

// SearchToken lets the server walk the TDP chain forwards.
type SearchToken struct {
	// KeywordKey keys the H1/H2 hashes for this keyword.
	KeywordKey []byte `json:"keyword_key"`
	// ST is the newest state.
	ST []byte `json:"st"`
	// Count is the number of updates (chain length).
	Count uint64 `json:"count"`
}

// Client is the gateway half of Sophos. It holds the RSA trapdoor.
// Inserts are serialized per keyword (the TDP state chain is inherently
// sequential) via striped locks, so the client is safe for concurrent use.
type Client struct {
	key    primitives.Key
	rsa    *rsa.PrivateKey
	state  State
	locks  [64]sync.Mutex
	kwKeys *keycache.Cache[string, primitives.Key]
}

// NewClient derives the Sophos client. Generating the RSA trapdoor takes
// noticeable time; reuse clients.
func NewClient(key primitives.Key, state State) (*Client, error) {
	pk, err := rsa.GenerateKey(rand.Reader, RSABits)
	if err != nil {
		return nil, fmt.Errorf("sophos: generating TDP: %w", err)
	}
	return NewClientWithTDP(key, state, pk)
}

// NewClientWithTDP builds a client over an existing RSA trapdoor (e.g.
// loaded from the key management system).
func NewClientWithTDP(key primitives.Key, state State, pk *rsa.PrivateKey) (*Client, error) {
	if pk.N.BitLen() > RSABits {
		return nil, fmt.Errorf("sophos: TDP modulus %d bits exceeds %d", pk.N.BitLen(), RSABits)
	}
	return &Client{
		key:    primitives.PRFKey(key, []byte("sophos")),
		rsa:    pk,
		state:  state,
		kwKeys: keycache.New[string, primitives.Key](keycache.DefaultSize),
	}, nil
}

// PublicKey returns the TDP public key material for the server.
type PublicKey struct {
	N []byte `json:"n"`
	E int    `json:"e"`
}

// PublicKey exports the server half of the trapdoor.
func (c *Client) PublicKey() PublicKey {
	return PublicKey{N: c.rsa.N.Bytes(), E: c.rsa.E}
}

// TDP exposes the RSA trapdoor so callers can persist it (key management
// integration); treat the returned key as secret material.
func (c *Client) TDP() *rsa.PrivateKey { return c.rsa }

func (c *Client) keywordKey(namespace, w string) primitives.Key {
	ck := namespace + "\x00" + w
	if k, ok := c.kwKeys.Get(ck); ok {
		return k
	}
	k := primitives.PRFKey(c.key, []byte(namespace), []byte{0}, []byte(w))
	c.kwKeys.Put(ck, k)
	return k
}

// inverse applies π⁻¹ (x^d mod N).
func (c *Client) inverse(st []byte) []byte {
	x := new(big.Int).SetBytes(st)
	y := new(big.Int).Exp(x, c.rsa.D, c.rsa.N)
	out := make([]byte, stBytes)
	y.FillBytes(out)
	return out
}

// forward applies π (x^e mod N) — the server-side step.
func forward(pk PublicKey, st []byte) []byte {
	n := new(big.Int).SetBytes(pk.N)
	x := new(big.Int).SetBytes(st)
	y := new(big.Int).Exp(x, big.NewInt(int64(pk.E)), n)
	out := make([]byte, stBytes)
	y.FillBytes(out)
	return out
}

func h1(kw, st []byte) []byte {
	k, _ := primitives.KeyFromBytes(kw)
	return primitives.PRF(k, []byte{1}, st)
}

func h2(kw, st []byte) []byte {
	k, _ := primitives.KeyFromBytes(kw)
	p := make([]byte, 0, idSlot)
	for blk := uint64(0); len(p) < idSlot; blk++ {
		p = append(p, primitives.PRF(k, []byte{2}, st, primitives.Uint64Bytes(blk))...)
	}
	return p[:idSlot]
}

func encodeCell(id string) ([]byte, error) {
	if len(id) > MaxIDLen {
		return nil, ErrIDTooLong
	}
	cell := make([]byte, idSlot)
	cell[0] = byte(len(id))
	copy(cell[1:], id)
	return cell, nil
}

func decodeCell(cell []byte) (string, error) {
	if len(cell) != idSlot || int(cell[0]) > MaxIDLen {
		return "", ErrBadCell
	}
	return string(cell[1 : 1+cell[0]]), nil
}

func (c *Client) lockFor(namespace, w string) *sync.Mutex {
	h := fnv32(namespace + "\x00" + w)
	return &c.locks[h%uint32(len(c.locks))]
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Insert produces the encrypted cell adding id under w. Sophos has no
// native deletion; the middleware layers a revocation set above it.
func (c *Client) Insert(namespace, w, id string) (Entry, error) {
	mu := c.lockFor(namespace, w)
	mu.Lock()
	defer mu.Unlock()
	ks, ok, err := c.state.Keyword(namespace, w)
	if err != nil {
		return Entry{}, err
	}
	if !ok {
		// First update: sample ST_0 uniformly from Z_N*.
		st0, err := rand.Int(rand.Reader, c.rsa.N)
		if err != nil {
			return Entry{}, fmt.Errorf("sophos: sampling ST0: %w", err)
		}
		buf := make([]byte, stBytes)
		st0.FillBytes(buf)
		ks = KeywordState{ST: buf, Count: 0}
	} else {
		// Walk backwards: ST_c = π⁻¹(ST_{c-1}).
		ks.ST = c.inverse(ks.ST)
	}
	ks.Count++

	kw := c.keywordKey(namespace, w)
	cell, err := encodeCell(id)
	if err != nil {
		return Entry{}, err
	}
	e := Entry{
		Addr: h1(kw[:], ks.ST),
		Val:  primitives.XOR(cell, h2(kw[:], ks.ST)),
	}
	if err := c.state.SetKeyword(namespace, w, ks); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// Token builds the search token for w. ok is false when w has never been
// inserted (the search trivially returns nothing).
func (c *Client) Token(namespace, w string) (SearchToken, bool, error) {
	ks, ok, err := c.state.Keyword(namespace, w)
	if err != nil || !ok {
		return SearchToken{}, false, err
	}
	kw := c.keywordKey(namespace, w)
	return SearchToken{KeywordKey: kw[:], ST: ks.ST, Count: ks.Count}, true, nil
}

// Server is the cloud half of Sophos.
type Server struct {
	store     *kvstore.Store
	namespace string
	pk        PublicKey
}

// NewServer builds a server over store with the client's TDP public key.
func NewServer(store *kvstore.Store, namespace string, pk PublicKey) *Server {
	return &Server{store: store, namespace: namespace, pk: pk}
}

func (s *Server) cellKey(addr []byte) []byte {
	return append([]byte("sophos/"+s.namespace+"/"), addr...)
}

// Insert stores encrypted cells.
func (s *Server) Insert(entries []Entry) error {
	for _, e := range entries {
		if err := s.store.Set(s.cellKey(e.Addr), e.Val); err != nil {
			return fmt.Errorf("sophos: inserting cell: %w", err)
		}
	}
	return nil
}

// Search walks the TDP chain from the newest state to ST_1, decrypting the
// cell at each state, and returns the ids. Missing cells are tolerated.
func (s *Server) Search(t SearchToken) ([]string, error) {
	if len(t.KeywordKey) != primitives.KeySize || len(t.ST) != stBytes {
		return nil, ErrBadToken
	}
	ids := make([]string, 0, t.Count)
	st := t.ST
	for i := t.Count; i > 0; i-- {
		addr := h1(t.KeywordKey, st)
		val, ok, err := s.store.Get(s.cellKey(addr))
		if err != nil {
			return nil, err
		}
		if ok {
			if len(val) != idSlot {
				return nil, ErrBadCell
			}
			id, err := decodeCell(primitives.XOR(val, h2(t.KeywordKey, st)))
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		if i > 1 {
			st = forward(s.pk, st)
		}
	}
	return ids, nil
}

var (
	_ State = (*MemState)(nil)
	_ State = (*KVState)(nil)
)
