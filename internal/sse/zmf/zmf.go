// Package zmf implements an encrypted set-membership index in the spirit
// of the Z-index matryoshka filters used by the BIEX-ZMF variant of
// Kamara-Moataz boolean SSE (EUROCRYPT 2017): one fixed-size counting
// Bloom filter per keyword, with bit positions derived from a per-keyword
// PRF key so the server learns nothing about ids it has no test token for.
//
// Compared with the cross-multimap of BIEX-2Lev, filters cost O(1) space
// per (keyword, id) pair instead of one multimap cell per *pair of
// keywords* per document — the space/read-efficiency trade-off the paper's
// Table 2 contrasts (BIEX-2Lev vs BIEX-ZMF) — at the price of a bounded
// false-positive rate.
package zmf

import (
	"errors"
	"fmt"
	"sync"

	"datablinder/internal/crypto/keycache"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

// Filter geometry. With m = 2^18 counters and k = 7 probes, a keyword with
// 1,000 members has a false-positive rate around 1e-7.
const (
	// FilterBits is the number of counters per keyword filter.
	FilterBits = 1 << 18
	// Hashes is the number of probes per id.
	Hashes = 7
)

// ErrBadToken is returned for malformed test tokens.
var ErrBadToken = errors.New("zmf: malformed test token")

// TestToken lets the server test arbitrary ids against one keyword's
// filter. Handing out the per-keyword key is the scheme's query leakage:
// the server can thereafter test any id it knows against this keyword.
type TestToken struct {
	// Label addresses the filter.
	Label []byte `json:"label"`
	// ProbeKey derives probe positions for ids.
	ProbeKey []byte `json:"probe_key"`
}

// UpdateEntry is one encrypted filter update: the filter label plus the
// probe positions to increment or decrement.
type UpdateEntry struct {
	Label     []byte   `json:"label"`
	Positions []uint64 `json:"positions"`
	// Delta is +1 for insertion, -1 for deletion.
	Delta int64 `json:"delta"`
}

// kwDerived is the cached per-keyword material: filter label + probe key.
type kwDerived struct {
	label primitives.Key // full PRF output; sliced when used as a label
	probe primitives.Key
}

// Client is the gateway half.
type Client struct {
	keyLabel primitives.Key
	keyProbe primitives.Key
	kwKeys   *keycache.Cache[string, kwDerived]
}

// NewClient derives the ZMF client keys from key.
func NewClient(key primitives.Key) *Client {
	return &Client{
		keyLabel: primitives.PRFKey(key, []byte("zmf-label")),
		keyProbe: primitives.PRFKey(key, []byte("zmf-probe")),
		kwKeys:   keycache.New[string, kwDerived](keycache.DefaultSize),
	}
}

func (c *Client) derived(namespace, w string) kwDerived {
	ck := namespace + "\x00" + w
	if d, ok := c.kwKeys.Get(ck); ok {
		return d
	}
	d := kwDerived{
		label: primitives.PRFKey(c.keyLabel, []byte(namespace), []byte{0}, []byte(w)),
		probe: primitives.PRFKey(c.keyProbe, []byte(namespace), []byte{0}, []byte(w)),
	}
	c.kwKeys.Put(ck, d)
	return d
}

func (c *Client) label(namespace, w string) []byte {
	d := c.derived(namespace, w)
	return d.label[:]
}

func (c *Client) probeKey(namespace, w string) primitives.Key {
	return c.derived(namespace, w).probe
}

// positions derives the probe positions of id under a probe key.
func positions(probeKey primitives.Key, id string) []uint64 {
	out := make([]uint64, Hashes)
	for h := uint64(0); h < Hashes; h++ {
		out[h] = primitives.PRFUint64(probeKey, primitives.Uint64Bytes(h), []byte(id)) % FilterBits
	}
	return out
}

// Insert builds the filter update adding id to keyword w.
func (c *Client) Insert(namespace, w, id string) UpdateEntry {
	return UpdateEntry{
		Label:     c.label(namespace, w),
		Positions: positions(c.probeKey(namespace, w), id),
		Delta:     1,
	}
}

// Delete builds the filter update removing id from keyword w. Counting
// filters make deletion exact as long as every delete matches a prior
// insert.
func (c *Client) Delete(namespace, w, id string) UpdateEntry {
	e := c.Insert(namespace, w, id)
	e.Delta = -1
	return e
}

// Token builds the membership-test token for keyword w.
func (c *Client) Token(namespace, w string) TestToken {
	pk := c.probeKey(namespace, w)
	return TestToken{Label: c.label(namespace, w), ProbeKey: pk[:]}
}

// Server is the cloud half: a counting-filter store.
type Server struct {
	store     *kvstore.Store
	namespace string
	mu        sync.Mutex // serializes read-modify-write of counters
}

// NewServer builds a server over store.
func NewServer(store *kvstore.Store, namespace string) *Server {
	return &Server{store: store, namespace: namespace}
}

func (s *Server) filterKey(label []byte) []byte {
	return append([]byte("zmf/"+s.namespace+"/"), label...)
}

func posField(p uint64) []byte { return primitives.Uint64Bytes(p) }

// Apply executes filter updates.
func (s *Server) Apply(entries []UpdateEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if len(e.Positions) != Hashes {
			return fmt.Errorf("zmf: update with %d positions, want %d", len(e.Positions), Hashes)
		}
		fk := s.filterKey(e.Label)
		for _, p := range e.Positions {
			if p >= FilterBits {
				return fmt.Errorf("zmf: position %d out of range", p)
			}
			cur, ok, err := s.store.HGet(fk, posField(p))
			if err != nil {
				return err
			}
			var n int64
			if ok {
				n = int64(uint64(cur[0]) | uint64(cur[1])<<8 | uint64(cur[2])<<16 | uint64(cur[3])<<24)
			}
			n += e.Delta
			if n < 0 {
				n = 0 // deletes beyond inserts clamp; never corrupt the filter
			}
			if n == 0 {
				if err := s.store.HDel(fk, posField(p)); err != nil {
					return err
				}
				continue
			}
			buf := []byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}
			if err := s.store.HSet(fk, posField(p), buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// Test reports, for each id, whether it is (probably) a member of the
// token's keyword set. False positives occur with the filter's designed
// probability; false negatives never occur.
func (s *Server) Test(t TestToken, ids []string) ([]bool, error) {
	pk, err := primitives.KeyFromBytes(t.ProbeKey)
	if err != nil {
		return nil, ErrBadToken
	}
	fk := s.filterKey(t.Label)
	out := make([]bool, len(ids))
	for i, id := range ids {
		member := true
		for _, p := range positions(pk, id) {
			_, ok, err := s.store.HGet(fk, posField(p))
			if err != nil {
				return nil, err
			}
			if !ok {
				member = false
				break
			}
		}
		out[i] = member
	}
	return out, nil
}

// FilterSize returns the number of occupied counters for a token's filter
// (storage accounting for the benchmarks).
func (s *Server) FilterSize(t TestToken) (int, error) {
	return s.store.HLen(s.filterKey(t.Label))
}
