package zmf

import (
	"fmt"
	"testing"

	"datablinder/internal/crypto/primitives"
	"datablinder/internal/store/kvstore"
)

func setup(t testing.TB) (*Client, *Server) {
	t.Helper()
	key, err := primitives.NewRandomKey()
	if err != nil {
		t.Fatalf("key: %v", err)
	}
	return NewClient(key), NewServer(kvstore.New(), "test")
}

func TestInsertTest(t *testing.T) {
	c, s := setup(t)
	if err := s.Apply([]UpdateEntry{c.Insert("ns", "diabetes", "d1"), c.Insert("ns", "diabetes", "d2")}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, err := s.Test(c.Token("ns", "diabetes"), []string{"d1", "d2", "d3"})
	if err != nil {
		t.Fatalf("Test: %v", err)
	}
	if !got[0] || !got[1] {
		t.Fatalf("members reported absent: %v", got)
	}
	if got[2] {
		t.Fatal("non-member reported present (unlucky false positive at n=2 is ~impossible)")
	}
}

func TestKeywordIsolation(t *testing.T) {
	c, s := setup(t)
	s.Apply([]UpdateEntry{c.Insert("ns", "w1", "d1")})
	got, err := s.Test(c.Token("ns", "w2"), []string{"d1"})
	if err != nil || got[0] {
		t.Fatalf("cross-keyword membership = %v, %v", got, err)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	c, s := setup(t)
	s.Apply([]UpdateEntry{c.Insert("ns1", "w", "d1")})
	got, err := s.Test(c.Token("ns2", "w"), []string{"d1"})
	if err != nil || got[0] {
		t.Fatalf("cross-namespace membership = %v, %v", got, err)
	}
}

func TestCountingDeletion(t *testing.T) {
	c, s := setup(t)
	s.Apply([]UpdateEntry{c.Insert("ns", "w", "d1"), c.Insert("ns", "w", "d2")})
	s.Apply([]UpdateEntry{c.Delete("ns", "w", "d1")})
	got, err := s.Test(c.Token("ns", "w"), []string{"d1", "d2"})
	if err != nil {
		t.Fatalf("Test: %v", err)
	}
	if got[0] {
		t.Fatal("deleted member still present")
	}
	if !got[1] {
		t.Fatal("surviving member lost after unrelated delete")
	}
}

func TestDoubleInsertSurvivesOneDelete(t *testing.T) {
	c, s := setup(t)
	s.Apply([]UpdateEntry{c.Insert("ns", "w", "d1"), c.Insert("ns", "w", "d1")})
	s.Apply([]UpdateEntry{c.Delete("ns", "w", "d1")})
	got, _ := s.Test(c.Token("ns", "w"), []string{"d1"})
	if !got[0] {
		t.Fatal("counting semantics broken: one delete erased two inserts")
	}
}

func TestDeleteBeyondInsertsClamps(t *testing.T) {
	c, s := setup(t)
	if err := s.Apply([]UpdateEntry{c.Delete("ns", "w", "ghost")}); err != nil {
		t.Fatalf("Apply(delete of absent): %v", err)
	}
	// Filter must still work afterwards.
	s.Apply([]UpdateEntry{c.Insert("ns", "w", "d1")})
	got, _ := s.Test(c.Token("ns", "w"), []string{"d1"})
	if !got[0] {
		t.Fatal("filter corrupted by clamped delete")
	}
}

func TestApplyValidation(t *testing.T) {
	_, s := setup(t)
	if err := s.Apply([]UpdateEntry{{Label: []byte("l"), Positions: []uint64{1, 2}, Delta: 1}}); err == nil {
		t.Fatal("Apply accepted wrong probe count")
	}
	bad := make([]uint64, Hashes)
	bad[0] = FilterBits
	if err := s.Apply([]UpdateEntry{{Label: []byte("l"), Positions: bad, Delta: 1}}); err == nil {
		t.Fatal("Apply accepted out-of-range position")
	}
}

func TestTestRejectsBadToken(t *testing.T) {
	_, s := setup(t)
	if _, err := s.Test(TestToken{Label: []byte("l"), ProbeKey: []byte{1}}, []string{"x"}); err != ErrBadToken {
		t.Fatalf("bad token error = %v", err)
	}
}

func TestNoFalseNegativesBulk(t *testing.T) {
	c, s := setup(t)
	var entries []UpdateEntry
	ids := make([]string, 500)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc-%04d", i)
		entries = append(entries, c.Insert("ns", "w", ids[i]))
	}
	if err := s.Apply(entries); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, err := s.Test(c.Token("ns", "w"), ids)
	if err != nil {
		t.Fatalf("Test: %v", err)
	}
	for i, m := range got {
		if !m {
			t.Fatalf("false negative for %s", ids[i])
		}
	}
}

func TestFalsePositiveRateBounded(t *testing.T) {
	c, s := setup(t)
	var entries []UpdateEntry
	for i := 0; i < 1000; i++ {
		entries = append(entries, c.Insert("ns", "w", fmt.Sprintf("in-%d", i)))
	}
	if err := s.Apply(entries); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	probes := make([]string, 2000)
	for i := range probes {
		probes[i] = fmt.Sprintf("out-%d", i)
	}
	got, err := s.Test(c.Token("ns", "w"), probes)
	if err != nil {
		t.Fatalf("Test: %v", err)
	}
	fp := 0
	for _, m := range got {
		if m {
			fp++
		}
	}
	// Designed rate ~1e-7 at n=1000; even 1% would indicate a geometry bug.
	if fp > 2 {
		t.Fatalf("false positives = %d / 2000", fp)
	}
}

func TestFilterSize(t *testing.T) {
	c, s := setup(t)
	s.Apply([]UpdateEntry{c.Insert("ns", "w", "d1")})
	n, err := s.FilterSize(c.Token("ns", "w"))
	if err != nil {
		t.Fatalf("FilterSize: %v", err)
	}
	if n == 0 || n > Hashes {
		t.Fatalf("FilterSize = %d, want 1..%d", n, Hashes)
	}
}

func BenchmarkInsert(b *testing.B) {
	c, s := setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Apply([]UpdateEntry{c.Insert("ns", "w", fmt.Sprintf("d%d", i))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTest100(b *testing.B) {
	c, s := setup(b)
	var entries []UpdateEntry
	ids := make([]string, 100)
	for i := range ids {
		ids[i] = fmt.Sprintf("d%d", i)
		entries = append(entries, c.Insert("ns", "w", ids[i]))
	}
	s.Apply(entries)
	tok := c.Token("ns", "w")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Test(tok, ids); err != nil {
			b.Fatal(err)
		}
	}
}
