package planner

import (
	"testing"
	"time"

	"datablinder/internal/model"
)

func TestCostPrefersMeasurement(t *testing.T) {
	s := NewStats()
	prior := model.CostPrior{Fixed: 100} // 100µs prior
	s.SetPriors(map[Key]model.CostPrior{{Tactic: "A", Op: model.OpEquality}: prior})

	// Below MinSamples: estimate falls back to the (calibrated) prior.
	ns, ok := s.Cost("A", model.OpEquality, prior, 0)
	if !ok || ns != 100*1e3 {
		t.Fatalf("prior estimate = %v, %v; want 100000, true", ns, ok)
	}
	if _, ok := s.MeasuredCost("A", model.OpEquality, prior, 0); ok {
		t.Fatal("MeasuredCost reported ok with no samples")
	}

	for i := 0; i < MinSamples; i++ {
		s.Record("sch", []string{"f"}, "A", model.OpEquality, 400*time.Microsecond)
	}
	ns, ok = s.Cost("A", model.OpEquality, prior, 0)
	if !ok || ns < 350*1e3 || ns > 450*1e3 {
		t.Fatalf("measured estimate = %v, %v; want ~400000, true", ns, ok)
	}
	if _, ok := s.MeasuredCost("A", model.OpEquality, prior, 0); !ok {
		t.Fatal("MeasuredCost not ok after MinSamples observations")
	}
}

func TestCostExtrapolatesWithPriorShape(t *testing.T) {
	s := NewStats()
	// Linear-in-corpus prior: measurements at small N must predict larger
	// costs at big N.
	prior := model.CostPrior{Fixed: 10, PerDoc: 1}
	s.SeedDocs("sch", 100)
	for i := 0; i < MinSamples; i++ {
		s.Record("sch", nil, "A", model.OpRange, 110*time.Microsecond)
	}
	at100, _ := s.Cost("A", model.OpRange, prior, 100)
	at1000, ok := s.Cost("A", model.OpRange, prior, 1000)
	if !ok {
		t.Fatal("not ok")
	}
	if at1000 < 8*at100 {
		t.Fatalf("linear prior should scale estimate: at100=%v at1000=%v", at100, at1000)
	}
}

func TestCalibrationScalesPriors(t *testing.T) {
	s := NewStats()
	pa := model.CostPrior{Fixed: 100}
	pb := model.CostPrior{Fixed: 50}
	s.SetPriors(map[Key]model.CostPrior{
		{Tactic: "A", Op: model.OpInsert}: pa,
		{Tactic: "B", Op: model.OpInsert}: pb,
	})
	// Machine runs 3x slower than priors suggest: A measures 300µs.
	for i := 0; i < MinSamples; i++ {
		s.Record("sch", nil, "A", model.OpInsert, 300*time.Microsecond)
	}
	// B unmeasured: prior 50µs should calibrate to ~150µs.
	ns, ok := s.Cost("B", model.OpInsert, pb, 0)
	if !ok {
		t.Fatal("not ok")
	}
	if ns < 120*1e3 || ns > 180*1e3 {
		t.Fatalf("calibrated prior = %vns; want ~150000", ns)
	}
}

func TestDocsTracking(t *testing.T) {
	s := NewStats()
	s.SeedDocs("sch", 10)
	s.SeedDocs("sch", 99) // second seed ignored
	s.DocDelta("sch", 5)
	s.DocDelta("sch", -2)
	if got := s.Docs("sch"); got != 13 {
		t.Fatalf("Docs = %d; want 13", got)
	}
	if !s.DocsSeeded("sch") || s.DocsSeeded("other") {
		t.Fatal("DocsSeeded wrong")
	}
}

func TestFieldRatesAndSnapshot(t *testing.T) {
	s := NewStats()
	s.Record("sch", []string{"f", "g"}, "OPE", model.OpInsert, time.Millisecond)
	s.Record("sch", []string{"f"}, "OPE", model.OpRange, 2*time.Millisecond)
	s.RPC("ope", 3)
	s.MigrationDone()
	rates := s.FieldRates("sch", "f")
	if rates[model.OpInsert] != 1 || rates[model.OpRange] != 1 {
		t.Fatalf("rates = %v", rates)
	}
	snap := s.Snapshot()
	ts, ok := snap.Tactics["OPE"]
	if !ok {
		t.Fatalf("snapshot missing OPE: %v", snap)
	}
	if ts.RPCs != 3 {
		t.Fatalf("RPCs = %d; want 3", ts.RPCs)
	}
	if ts.Ops[string(model.OpInsert)].Count != 1 {
		t.Fatalf("ops = %v", ts.Ops)
	}
	if snap.Migrations != 1 {
		t.Fatalf("migrations = %d", snap.Migrations)
	}
	if names := snap.SortedTactics(); len(names) != 1 || names[0] != "OPE" {
		t.Fatalf("SortedTactics = %v", names)
	}
}
