// Package planner holds DataBlinder's runtime cost model: engine-resident
// per-tactic, per-operation observed costs (EWMA latency, RPC counts, wire
// bytes) promoted out of the benchmark harness, plus the estimation logic
// the adaptive tactic planner uses to rank tactics by *measured* cost
// instead of assuming leakage and performance trade off monotonically.
//
// A Stats instance rides inside one engine; every instance registers into
// a process-wide list exported as expvar "datablinder_tactics" (visible on
// the -pprof listener next to datablinder_wire / datablinder_coalesce /
// datablinder_store).
//
// Cost estimation combines two sources:
//
//   - Measured: an EWMA of gateway-observed operation latency per
//     (tactic, op), recorded together with an EWMA of the corpus size at
//     measurement time. Estimates for other corpus sizes reuse the
//     descriptor prior's *shape* (est = ewma × prior(N)/prior(N_measured)),
//     so an O(N) tactic measured on a small corpus is correctly predicted
//     to degrade as the corpus grows.
//   - Priors: the descriptor's numeric per-op CostPrior (microseconds,
//     Fixed + PerDoc×N), scaled by a global calibration factor derived
//     from whatever (tactic, op) pairs *have* been measured, so priors and
//     measurements stay comparable on the same hardware.
package planner

import (
	"context"
	"expvar"
	"sort"
	"strings"
	"sync"
	"time"

	"datablinder/internal/model"
	"datablinder/internal/transport"
)

// ewmaAlpha weights the newest sample in the latency averages. 0.2 reacts
// within tens of operations without flapping on one outlier.
const ewmaAlpha = 0.2

// MinSamples is how many observations a (tactic, op) needs before its EWMA
// outranks the prior-based estimate (and before the classic selector's
// cost tie-break considers the pair measured at all).
const MinSamples = 8

// Key identifies one (tactic, operation) cost series.
type Key struct {
	Tactic string
	Op     model.Op
}

type opStat struct {
	count   uint64
	totalNs float64
	ewmaNs  float64
	// ewmaDocs tracks the corpus size the latencies were observed at, so
	// estimates can be re-shaped to other corpus sizes via the prior.
	ewmaDocs float64
}

type fieldKey struct {
	Schema string
	Field  string
	Op     model.Op
}

// Stats is one engine's live tactic cost counters. All methods are safe
// for concurrent use.
type Stats struct {
	mu     sync.Mutex
	ops    map[Key]*opStat
	fields map[fieldKey]uint64
	docs   map[string]int64 // schema -> live document estimate
	seeded map[string]bool  // schema -> docs was seeded from a real count
	priors map[Key]model.CostPrior
	migs   uint64 // completed online re-indexes

	// rpcs counts cloud RPCs per service name, recorded by the conn
	// wrapper interposed outside the write coalescer (so one caller-issued
	// sub-call counts once, however it is batched downstream).
	rpcs sync.Map // string -> *uint64
}

// NewStats builds an empty Stats.
func NewStats() *Stats {
	return &Stats{
		ops:    make(map[Key]*opStat),
		fields: make(map[fieldKey]uint64),
		docs:   make(map[string]int64),
		seeded: make(map[string]bool),
		priors: make(map[Key]model.CostPrior),
	}
}

// SetPriors installs the descriptor cost priors (used for calibration and
// for estimating unmeasured tactics). Call once at engine construction.
func (s *Stats) SetPriors(p map[Key]model.CostPrior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range p {
		s.priors[k] = v
	}
}

// Record observes one completed operation: latency feeds the (tactic, op)
// EWMA, and each touched field's op counter feeds the per-field workload
// rates the planner weighs costs by.
func (s *Stats) Record(schema string, fields []string, tactic string, op model.Op, d time.Duration) {
	ns := float64(d.Nanoseconds())
	s.mu.Lock()
	defer s.mu.Unlock()
	k := Key{Tactic: tactic, Op: op}
	st := s.ops[k]
	if st == nil {
		st = &opStat{}
		s.ops[k] = st
	}
	docs := float64(s.docs[schema])
	st.count++
	st.totalNs += ns
	if st.count == 1 {
		st.ewmaNs = ns
		st.ewmaDocs = docs
	} else {
		st.ewmaNs += ewmaAlpha * (ns - st.ewmaNs)
		st.ewmaDocs += ewmaAlpha * (docs - st.ewmaDocs)
	}
	for _, f := range fields {
		s.fields[fieldKey{Schema: schema, Field: f, Op: op}]++
	}
}

// DocDelta adjusts a schema's live document estimate (insert +1, delete -1).
func (s *Stats) DocDelta(schema string, d int64) {
	s.mu.Lock()
	s.docs[schema] += d
	s.mu.Unlock()
}

// SeedDocs installs an authoritative document count for a schema, unless
// one was already seeded (deltas keep it current afterwards).
func (s *Stats) SeedDocs(schema string, n int64) {
	s.mu.Lock()
	if !s.seeded[schema] {
		s.seeded[schema] = true
		s.docs[schema] = n
	}
	s.mu.Unlock()
}

// DocsSeeded reports whether SeedDocs ran for schema.
func (s *Stats) DocsSeeded(schema string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seeded[schema]
}

// Docs returns the schema's live document estimate.
func (s *Stats) Docs(schema string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.docs[schema]
}

// FieldRates returns a field's per-op observed operation counts — the
// workload mix the planner weighs per-op costs by.
func (s *Stats) FieldRates(schema, field string) map[model.Op]float64 {
	out := make(map[model.Op]float64)
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, n := range s.fields {
		if k.Schema == schema && k.Field == field {
			out[k.Op] = float64(n)
		}
	}
	return out
}

// RPC counts one cloud sub-call against a service.
func (s *Stats) RPC(service string, n uint64) {
	v, ok := s.rpcs.Load(service)
	if !ok {
		v, _ = s.rpcs.LoadOrStore(service, new(uint64))
	}
	s.mu.Lock()
	*v.(*uint64) += n
	s.mu.Unlock()
}

// MigrationDone counts one completed online re-index.
func (s *Stats) MigrationDone() {
	s.mu.Lock()
	s.migs++
	s.mu.Unlock()
}

// calibrationLocked returns the average measured/prior ratio over every
// (tactic, op) with enough samples and a usable prior, anchoring
// prior-only estimates to this machine's speed. 1 when nothing is
// measured yet (priors then rank tactics by their relative magnitudes,
// which is all selection needs).
func (s *Stats) calibrationLocked() float64 {
	sum, n := 0.0, 0
	for k, st := range s.ops {
		if st.count < MinSamples {
			continue
		}
		p, ok := s.priors[k]
		if !ok || p.Zero() {
			continue
		}
		at := p.At(st.ewmaDocs) * 1e3 // prior is µs, EWMA is ns
		if at <= 0 {
			continue
		}
		sum += st.ewmaNs / at
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Cost estimates the latency (ns) of one (tactic, op) at a corpus of docs
// documents, preferring measured EWMAs and falling back to calibrated
// priors. ok is false when neither a measurement nor a prior exists.
func (s *Stats) Cost(tactic string, op model.Op, prior model.CostPrior, docs float64) (ns float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := Key{Tactic: tactic, Op: op}
	if st := s.ops[k]; st != nil && st.count >= MinSamples {
		est := st.ewmaNs
		if prior.PerDoc > 0 {
			// Re-shape the measurement to the requested corpus size using
			// the prior's growth curve.
			if base := prior.At(st.ewmaDocs); base > 0 {
				est = est * prior.At(docs) / base
			}
		}
		return est, true
	}
	if prior.Zero() {
		return 0, false
	}
	return prior.At(docs) * 1e3 * s.calibrationLocked(), true
}

// MeasuredCost is Cost restricted to pairs with live measurements: it
// never falls back to priors. The classic (leakage-maximal) selector uses
// it so equal-leakage ties rank by *measured* cost when the engine has
// observed both candidates, and keep the historical name tie-break —
// deterministic across deployments — when it has not.
func (s *Stats) MeasuredCost(tactic string, op model.Op, prior model.CostPrior, docs float64) (ns float64, ok bool) {
	s.mu.Lock()
	st := s.ops[Key{Tactic: tactic, Op: op}]
	measured := st != nil && st.count >= MinSamples
	s.mu.Unlock()
	if !measured {
		return 0, false
	}
	return s.Cost(tactic, op, prior, docs)
}

// serviceTactic maps a cloud RPC service name to the catalog tactic family
// it belongs to ("" for non-tactic plumbing like doc storage or batching).
func serviceTactic(service string) string {
	switch service {
	case "det":
		return "DET"
	case "rnd":
		return "RND"
	case "mitra":
		return "Mitra"
	case "sophos":
		return "Sophos"
	case "biex":
		return "BIEX"
	case "ope":
		return "OPE"
	case "ore":
		return "ORE"
	case "agg", "paillier":
		return "Paillier"
	}
	return ""
}

// OpSnapshot is one (tactic, op) series in a Snapshot.
type OpSnapshot struct {
	Count  uint64  `json:"count"`
	AvgMs  float64 `json:"avg_ms"`
	EwmaMs float64 `json:"ewma_ms"`
	AtDocs float64 `json:"at_docs"`
}

// TacticSnapshot aggregates one tactic's series plus its wire activity.
type TacticSnapshot struct {
	Ops       map[string]OpSnapshot `json:"ops"`
	RPCs      uint64                `json:"rpcs"`
	WireBytes uint64                `json:"wire_bytes"`
}

// Snapshot is the exported state of one or more Stats instances, as
// published under the "datablinder_tactics" expvar.
type Snapshot struct {
	Tactics    map[string]TacticSnapshot `json:"tactics"`
	Docs       map[string]int64          `json:"docs"`
	Migrations uint64                    `json:"migrations"`
}

// Snapshot renders the current counters. Wire bytes come from the
// process-wide transport counters, attributed to tactics by service name.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{Tactics: make(map[string]TacticSnapshot), Docs: make(map[string]int64)}
	wire := transport.WireStats()
	bytesByTactic := make(map[string]uint64)
	for method, m := range wire.Methods {
		service, _, _ := strings.Cut(method, ".")
		if t := serviceTactic(service); t != "" {
			bytesByTactic[t] += m.BytesOut + m.BytesIn
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, st := range s.ops {
		t := snap.Tactics[k.Tactic]
		if t.Ops == nil {
			t.Ops = make(map[string]OpSnapshot)
		}
		t.Ops[string(k.Op)] = OpSnapshot{
			Count:  st.count,
			AvgMs:  st.totalNs / float64(st.count) / 1e6,
			EwmaMs: st.ewmaNs / 1e6,
			AtDocs: st.ewmaDocs,
		}
		snap.Tactics[k.Tactic] = t
	}
	s.rpcs.Range(func(key, v any) bool {
		tn := serviceTactic(key.(string))
		if tn == "" {
			return true
		}
		t := snap.Tactics[tn]
		if t.Ops == nil {
			t.Ops = make(map[string]OpSnapshot)
		}
		t.RPCs += *v.(*uint64)
		snap.Tactics[tn] = t
		return true
	})
	for name, b := range bytesByTactic {
		t := snap.Tactics[name]
		if t.Ops == nil {
			t.Ops = make(map[string]OpSnapshot)
		}
		t.WireBytes = b
		snap.Tactics[name] = t
	}
	for schema, n := range s.docs {
		snap.Docs[schema] = n
	}
	snap.Migrations = s.migs
	return snap
}

// Merge folds other into s (expvar aggregation across engines).
func (snap *Snapshot) merge(other Snapshot) {
	for name, t := range other.Tactics {
		cur := snap.Tactics[name]
		if cur.Ops == nil {
			cur.Ops = make(map[string]OpSnapshot)
		}
		for op, o := range t.Ops {
			c := cur.Ops[op]
			total := c.Count + o.Count
			if total > 0 {
				c.AvgMs = (c.AvgMs*float64(c.Count) + o.AvgMs*float64(o.Count)) / float64(total)
			}
			c.Count = total
			c.EwmaMs = o.EwmaMs // latest-writer wins; per-engine detail is in each engine's Stats
			c.AtDocs = o.AtDocs
			cur.Ops[op] = c
		}
		cur.RPCs += t.RPCs
		if t.WireBytes > cur.WireBytes {
			cur.WireBytes = t.WireBytes // process-wide counters, not additive
		}
		snap.Tactics[name] = cur
	}
	for schema, n := range other.Docs {
		snap.Docs[schema] += n
	}
	snap.Migrations += other.Migrations
}

var (
	regMu      sync.Mutex
	registered []*Stats
	publish    sync.Once
)

// Register adds a Stats instance to the process-wide "datablinder_tactics"
// expvar aggregation.
func Register(s *Stats) {
	regMu.Lock()
	registered = append(registered, s)
	regMu.Unlock()
	publish.Do(func() {
		expvar.Publish("datablinder_tactics", expvar.Func(func() any {
			out := Snapshot{Tactics: make(map[string]TacticSnapshot), Docs: make(map[string]int64)}
			regMu.Lock()
			defer regMu.Unlock()
			for _, s := range registered {
				snap := s.Snapshot()
				out.merge(snap)
			}
			return out
		}))
	})
}

// Unregister removes a Stats instance from the expvar aggregation
// (engines of closed clients, benchmark arms).
func Unregister(s *Stats) {
	regMu.Lock()
	defer regMu.Unlock()
	for i, r := range registered {
		if r == s {
			registered = append(registered[:i], registered[i+1:]...)
			return
		}
	}
}

// SortedTactics returns the snapshot's tactic names, sorted (stable
// rendering for logs and docs).
func (snap Snapshot) SortedTactics() []string {
	out := make([]string, 0, len(snap.Tactics))
	for n := range snap.Tactics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// statsConn counts cloud sub-calls per service. It sits *outside* the
// write coalescer (caller → stats → coalesce → transport), so one logical
// sub-call counts once regardless of downstream batching, and ring
// placement is untouched (the wrapping happens via Ring.WithConns).
type statsConn struct {
	under transport.Conn
	s     *Stats
}

// WrapConn interposes RPC counting on one shard connection.
func WrapConn(conn transport.Conn, s *Stats) transport.Conn {
	return &statsConn{under: conn, s: s}
}

func (c *statsConn) Call(ctx context.Context, service, method string, args, reply any) error {
	c.s.RPC(service, 1)
	return c.under.Call(ctx, service, method, args, reply)
}

func (c *statsConn) Close() error { return c.under.Close() }

// CallBatch preserves downstream batching: the coalescer's CallBatch path
// must see the batch whole, not one call at a time.
func (c *statsConn) CallBatch(ctx context.Context, calls []transport.BatchCall) ([]transport.BatchResult, error) {
	for _, call := range calls {
		c.s.RPC(call.Service, 1)
	}
	return transport.CallBatch(ctx, c.under, calls)
}
