package sophos_test

import (
	"context"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/sophos"
	"datablinder/internal/transport"
)

type env struct {
	binding spi.Binding
	cloudKV *kvstore.Store
}

func newEnv(t *testing.T) env {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	sophos.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	local := kvstore.New()
	t.Cleanup(func() { local.Close() })
	return env{
		binding: spi.Binding{Schema: "obs", Keys: kp, Cloud: transport.NewLoopback(mux), Local: local},
		cloudKV: cloudKV,
	}
}

func instance(t *testing.T, e env) spi.Tactic {
	t.Helper()
	inst, err := sophos.New(e.binding)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(context.Background()); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return inst
}

func TestOperationsRequireSetup(t *testing.T) {
	e := newEnv(t)
	inst, err := sophos.New(e.binding)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := inst.(spi.Inserter).Insert(ctx, "f", "d1", "v"); err == nil {
		t.Fatal("Insert before Setup succeeded")
	}
	if _, err := inst.(spi.EqSearcher).SearchEq(ctx, "f", "v"); err == nil {
		t.Fatal("SearchEq before Setup succeeded")
	}
}

func TestTDPPersistsAcrossInstances(t *testing.T) {
	// A second tactic instance over the same gateway store (gateway
	// restart) must load the persisted RSA trapdoor: entries written by
	// the first instance stay searchable.
	e := newEnv(t)
	ctx := context.Background()
	inst1 := instance(t, e)
	if err := inst1.(spi.Inserter).Insert(ctx, "f", "d1", "v"); err != nil {
		t.Fatal(err)
	}

	inst2 := instance(t, e)
	if err := inst2.(spi.Inserter).Insert(ctx, "f", "d2", "v"); err != nil {
		t.Fatal(err)
	}
	ids, err := inst2.(spi.EqSearcher).SearchEq(ctx, "f", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("search across restart = %v", ids)
	}
}

func TestVersionedDeletion(t *testing.T) {
	// Sophos has no native delete; the tactic layers versioned ids on top.
	e := newEnv(t)
	ctx := context.Background()
	inst := instance(t, e)
	ins := inst.(spi.Inserter)
	del := inst.(spi.Deleter)
	es := inst.(spi.EqSearcher)

	if err := ins.Insert(ctx, "f", "d1", "v"); err != nil {
		t.Fatal(err)
	}
	if err := ins.Insert(ctx, "f", "d2", "v"); err != nil {
		t.Fatal(err)
	}
	if err := del.Delete(ctx, "f", "d1", "v"); err != nil {
		t.Fatal(err)
	}
	ids, err := es.SearchEq(ctx, "f", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "d2" {
		t.Fatalf("search after delete = %v", ids)
	}

	// Re-insert resurrects under a fresh version.
	if err := ins.Insert(ctx, "f", "d1", "v"); err != nil {
		t.Fatal(err)
	}
	ids, _ = es.SearchEq(ctx, "f", "v")
	if len(ids) != 2 {
		t.Fatalf("search after re-insert = %v", ids)
	}

	// Update semantics: delete + insert under a different value.
	if err := del.Delete(ctx, "f", "d2", "v"); err != nil {
		t.Fatal(err)
	}
	if err := ins.Insert(ctx, "f", "d2", "w"); err != nil {
		t.Fatal(err)
	}
	ids, _ = es.SearchEq(ctx, "f", "v")
	if len(ids) != 1 || ids[0] != "d1" {
		t.Fatalf("old value after update = %v", ids)
	}
	ids, _ = es.SearchEq(ctx, "f", "w")
	if len(ids) != 1 || ids[0] != "d2" {
		t.Fatalf("new value after update = %v", ids)
	}
}

func TestDeleteUnknownIsNoop(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	if err := inst.(spi.Deleter).Delete(context.Background(), "f", "ghost", "v"); err != nil {
		t.Fatalf("Delete(unknown): %v", err)
	}
}

func TestDescriptorMatchesTable2(t *testing.T) {
	d := sophos.Describe()
	if len(d.GatewayInterfaces) != 6 || len(d.CloudInterfaces) != 4 {
		t.Fatalf("SPI counts = %d/%d, want 6/4", len(d.GatewayInterfaces), len(d.CloudInterfaces))
	}
	if d.Challenge != "Key management" {
		t.Fatalf("challenge = %q", d.Challenge)
	}
}
