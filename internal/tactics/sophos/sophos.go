// Package sophos implements the Sophos tactic: forward-private SSE for
// equality search (paper Table 2 — protection class 2, Identifiers
// leakage, implemented from scratch; challenge: "Key management", because
// the gateway must hold and persist the RSA trapdoor alongside per-keyword
// chain state).
//
// The underlying scheme (Bost's Σoφoς) has no native deletion; this tactic
// layers exact deletion over it with per-(field, document) versioned index
// ids, resolved at the gateway.
package sophos

import (
	"context"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"datablinder/internal/cloud/ring"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	ssesophos "datablinder/internal/sse/sophos"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Name is the tactic's registry name.
const Name = "Sophos"

// Service is the cloud RPC service name.
const Service = "sophos"

// RPC payloads.
type (
	// SetupArgs ships the TDP public key to the cloud.
	SetupArgs struct {
		Schema string              `json:"schema"`
		PK     ssesophos.PublicKey `json:"pk"`
	}
	// InsertArgs delivers encrypted update cells.
	InsertArgs struct {
		Schema  string            `json:"schema"`
		Entries []ssesophos.Entry `json:"entries"`
	}
	// SearchArgs carries the newest-state search token.
	SearchArgs struct {
		Schema string                `json:"schema"`
		Token  ssesophos.SearchToken `json:"token"`
	}
	// SearchReply returns the (versioned) index ids.
	SearchReply struct {
		IDs []string `json:"ids"`
	}
)

// Describe returns the tactic's static descriptor.
func Describe() spi.Descriptor {
	return spi.Descriptor{
		Name:      Name,
		Operation: "Equality Search",
		Class:     model.Class2,
		Leakage:   model.LeakIdentifiers,
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakStructure, Note: "forward private via trapdoor-permutation state chains"},
			{Op: model.OpEquality, Leakage: model.LeakIdentifiers, Note: "search reveals the access pattern; the server can replay past states forward"},
		},
		Ops: []model.Op{model.OpInsert, model.OpDelete, model.OpEquality},
		GatewayInterfaces: []string{
			"Setup", "Insertion", "DocIDGen", "SecureEnc", "EqQuery", "EqResolution",
		},
		CloudInterfaces: []string{
			"Setup", "Insertion", "Retrieval", "EqQuery",
		},
		Perf: model.PerfMetrics{
			Complexity:          "O(u_w) RSA evaluations per search",
			RoundTrips:          1,
			ClientStorage:       "TDP private key + (state, counter) per keyword",
			ServerStorageFactor: 2.0,
			Costs: map[model.Op]model.CostPrior{
				// Every insert evaluates the RSA trapdoor permutation, and
				// searches replay the chain per update.
				model.OpInsert:   {Fixed: 400},
				model.OpEquality: {Fixed: 200, PerDoc: 0.2},
				model.OpDelete:   {Fixed: 400},
			},
		},
		Challenge: "Key management",
		Origin:    spi.OriginImplemented,
	}
}

// Tactic is the gateway half.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring

	mu     sync.Mutex
	client *ssesophos.Client // built by Setup
}

// New constructs the gateway half. Call Setup before use.
func New(b spi.Binding) (spi.Tactic, error) {
	return &Tactic{binding: b, shards: ring.Of(b.Cloud)}, nil
}

// route places one keyword's state chain on a shard: insert and search both
// derive from the keyword, so the whole chain co-locates.
func (t *Tactic) route(w string) string {
	return "sophos/" + t.binding.Schema + "/" + w
}

// Registration couples descriptor and factory for the registry.
func Registration() spi.Registration {
	return spi.Registration{Descriptor: Describe(), Factory: New}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return Describe() }

func (t *Tactic) tdpKey() []byte {
	return []byte("sophostdp/" + t.binding.Schema)
}

// Setup implements spi.Tactic: it loads or generates the RSA trapdoor,
// persists it in the gateway store, and registers the public key with the
// cloud half. Setup is idempotent.
func (t *Tactic) Setup(ctx context.Context) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.client != nil {
		return nil
	}
	root, err := t.binding.Keys.Key(keys.Ref{Schema: t.binding.Schema, Field: "*", Tactic: Name, Purpose: "root"})
	if err != nil {
		return err
	}
	state := ssesophos.NewKVState(t.binding.Local)

	raw, ok, err := t.binding.Local.Get(t.tdpKey())
	if err != nil {
		return fmt.Errorf("sophos: loading TDP: %w", err)
	}
	var client *ssesophos.Client
	if ok {
		pk, err := x509.ParsePKCS1PrivateKey(raw)
		if err != nil {
			return fmt.Errorf("sophos: parsing stored TDP: %w", err)
		}
		client, err = ssesophos.NewClientWithTDP(root, state, pk)
		if err != nil {
			return err
		}
	} else {
		client, err = ssesophos.NewClient(root, state)
		if err != nil {
			return err
		}
		if err := t.binding.Local.Set(t.tdpKey(), x509.MarshalPKCS1PrivateKey(client.TDP())); err != nil {
			return fmt.Errorf("sophos: persisting TDP: %w", err)
		}
	}
	// Every shard must hold the public key: keyword chains are spread
	// across the ring, and each node verifies/extends its own chains.
	if err := t.shards.Broadcast(ctx, Service, "setup",
		SetupArgs{Schema: t.binding.Schema, PK: client.PublicKey()}); err != nil {
		return fmt.Errorf("sophos: registering public key: %w", err)
	}
	t.client = client
	return nil
}

func (t *Tactic) getClient() (*ssesophos.Client, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.client == nil {
		return nil, fmt.Errorf("sophos: Setup has not run")
	}
	return t.client, nil
}

func keyword(field string, value any) string {
	return field + "=" + model.ValueToString(value)
}

// version management: per-(field, doc) monotone counters implementing
// deletion over a forward-only scheme.

func (t *Tactic) verKey(field, docID string) []byte {
	return []byte("sophosver/" + t.binding.Schema + "/" + field + "\x00" + docID)
}

func (t *Tactic) version(field, docID string) (uint64, error) {
	raw, ok, err := t.binding.Local.Get(t.verKey(field, docID))
	if err != nil || !ok {
		return 0, err
	}
	return strconv.ParseUint(string(raw), 10, 64)
}

func (t *Tactic) setVersion(field, docID string, v uint64) error {
	return t.binding.Local.Set(t.verKey(field, docID), []byte(strconv.FormatUint(v, 10)))
}

// Insert implements spi.Inserter.
func (t *Tactic) Insert(ctx context.Context, field, docID string, value any) error {
	client, err := t.getClient()
	if err != nil {
		return err
	}
	v, err := t.version(field, docID)
	if err != nil {
		return err
	}
	v++
	if err := t.setVersion(field, docID, v); err != nil {
		return err
	}
	vid := docID + "#" + strconv.FormatUint(v, 10)
	w := keyword(field, value)
	e, err := client.Insert(t.binding.Schema, w, vid)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(w), Service, "insert",
		InsertArgs{Schema: t.binding.Schema, Entries: []ssesophos.Entry{e}}, nil)
}

// Delete implements spi.Deleter by superseding the current version; stale
// index cells resolve to dropped versions at the gateway.
func (t *Tactic) Delete(_ context.Context, field, docID string, _ any) error {
	v, err := t.version(field, docID)
	if err != nil {
		return err
	}
	if v == 0 {
		return nil
	}
	return t.setVersion(field, docID, v+1)
}

// SearchEq implements spi.EqSearcher.
func (t *Tactic) SearchEq(ctx context.Context, field string, value any) ([]string, error) {
	client, err := t.getClient()
	if err != nil {
		return nil, err
	}
	w := keyword(field, value)
	tok, ok, err := client.Token(t.binding.Schema, w)
	if err != nil || !ok {
		return nil, err
	}
	var reply SearchReply
	if err := t.shards.Call(ctx, t.route(w), Service, "search",
		SearchArgs{Schema: t.binding.Schema, Token: tok}, &reply); err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	for _, vid := range reply.IDs {
		i := strings.LastIndexByte(vid, '#')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseUint(vid[i+1:], 10, 64)
		if err != nil {
			continue
		}
		docID := vid[:i]
		cur, err := t.version(field, docID)
		if err != nil {
			return nil, err
		}
		if v == cur && !seen[docID] {
			seen[docID] = true
			out = append(out, docID)
		}
	}
	return out, nil
}

// RegisterCloud installs the cloud half on mux, backed by store. The TDP
// public key arrives via the setup call and persists in the store.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	pkKey := func(schema string) []byte { return []byte("sophospk/" + schema) }
	loadPK := func(schema string) (ssesophos.PublicKey, error) {
		raw, ok, err := store.Get(pkKey(schema))
		if err != nil {
			return ssesophos.PublicKey{}, err
		}
		if !ok {
			return ssesophos.PublicKey{}, fmt.Errorf("sophos: schema %q has no registered public key", schema)
		}
		var pk ssesophos.PublicKey
		if err := json.Unmarshal(raw, &pk); err != nil {
			return ssesophos.PublicKey{}, err
		}
		return pk, nil
	}
	transport.HandleTyped(mux, Service, "setup", func(_ context.Context, in *SetupArgs) (any, error) {
		raw, err := json.Marshal(in.PK)
		if err != nil {
			return nil, err
		}
		return nil, store.Set(pkKey(in.Schema), raw)
	})
	transport.HandleTyped(mux, Service, "insert", func(_ context.Context, in *InsertArgs) (any, error) {
		pk, err := loadPK(in.Schema)
		if err != nil {
			return nil, err
		}
		return nil, ssesophos.NewServer(store, in.Schema, pk).Insert(in.Entries)
	})
	transport.HandleTyped(mux, Service, "search", func(_ context.Context, in *SearchArgs) (any, error) {
		pk, err := loadPK(in.Schema)
		if err != nil {
			return nil, err
		}
		ids, err := ssesophos.NewServer(store, in.Schema, pk).Search(in.Token)
		if err != nil {
			return nil, err
		}
		return &SearchReply{IDs: ids}, nil
	})
}

var (
	_ spi.Inserter   = (*Tactic)(nil)
	_ spi.Deleter    = (*Tactic)(nil)
	_ spi.EqSearcher = (*Tactic)(nil)
)
