// Typed wire codecs (codec v2) for the Sophos SSE tactic. The setup RPC
// (RSA public key, once per schema) stays JSON — only the hot insert and
// search paths get binary framing.

package sophos

import (
	ssesophos "datablinder/internal/sse/sophos"
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func init() {
	transport.RegisterCodec(Service, "insert", transport.WriteCodec(
		func(b []byte, a *InsertArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendUvarint(b, uint64(len(a.Entries)))
			for _, e := range a.Entries {
				b = wirefmt.AppendBytes(b, e.Addr)
				b = wirefmt.AppendBytes(b, e.Val)
			}
			return b
		},
		func(r *wirefmt.Reader, a *InsertArgs) {
			a.Schema = r.String()
			n := r.Count()
			if n == 0 {
				return
			}
			a.Entries = make([]ssesophos.Entry, n)
			for i := range a.Entries {
				a.Entries[i].Addr = r.Bytes()
				a.Entries[i].Val = r.Bytes()
			}
		},
	))
	transport.RegisterCodec(Service, "search", transport.Codec(
		func(b []byte, a *SearchArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendBytes(b, a.Token.KeywordKey)
			b = wirefmt.AppendBytes(b, a.Token.ST)
			return wirefmt.AppendUvarint(b, a.Token.Count)
		},
		func(r *wirefmt.Reader, a *SearchArgs) {
			a.Schema = r.String()
			a.Token.KeywordKey = r.Bytes()
			a.Token.ST = r.Bytes()
			a.Token.Count = r.Uvarint()
		},
		func(b []byte, out *SearchReply) []byte { return wirefmt.AppendStrings(b, out.IDs) },
		func(r *wirefmt.Reader, out *SearchReply) { out.IDs = r.Strings() },
	))
}
