package rnd_test

import (
	"context"
	"strings"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/rnd"
	"datablinder/internal/transport"
)

func setup(t *testing.T) (spi.Tactic, *kvstore.Store) {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	rnd.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := rnd.New(spi.Binding{
		Schema: "obs", Keys: kp,
		Cloud: transport.NewLoopback(mux),
		Local: kvstore.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst, cloudKV
}

func TestProbabilisticCiphertexts(t *testing.T) {
	// Two documents with the same value must produce distinct ciphertexts
	// in the cloud column (no equality leakage — that is RND's point).
	inst, cloudKV := setup(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	if err := ins.Insert(ctx, "performer", "d1", "john-smith"); err != nil {
		t.Fatal(err)
	}
	if err := ins.Insert(ctx, "performer", "d2", "john-smith"); err != nil {
		t.Fatal(err)
	}
	col := []byte("rndidx/obs/performer")
	c1, ok1, _ := cloudKV.HGet(col, []byte("d1"))
	c2, ok2, _ := cloudKV.HGet(col, []byte("d2"))
	if !ok1 || !ok2 {
		t.Fatal("ciphertexts not stored")
	}
	if string(c1) == string(c2) {
		t.Fatal("equal plaintexts produced equal RND ciphertexts")
	}
	if strings.Contains(string(c1), "john-smith") {
		t.Fatal("plaintext leaked")
	}
}

func TestExhaustiveSearchCorrectness(t *testing.T) {
	inst, _ := setup(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	for i, v := range []string{"a", "b", "a", "c", "a"} {
		if err := ins.Insert(ctx, "f", string(rune('0'+i)), v); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "f", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("exhaustive search = %v", ids)
	}
}

func TestTamperedColumnFailsClosed(t *testing.T) {
	// Equality search authenticates every ciphertext; a tampered cloud
	// column must produce an error, not silently wrong results.
	inst, cloudKV := setup(t)
	ctx := context.Background()
	if err := inst.(spi.Inserter).Insert(ctx, "f", "d1", "value"); err != nil {
		t.Fatal(err)
	}
	col := []byte("rndidx/obs/f")
	ct, _, _ := cloudKV.HGet(col, []byte("d1"))
	ct[len(ct)-1] ^= 1
	cloudKV.HSet(col, []byte("d1"), ct)
	if _, err := inst.(spi.EqSearcher).SearchEq(ctx, "f", "value"); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestCiphertextBoundToDocID(t *testing.T) {
	// Moving a ciphertext to another document id must break authentication
	// (the doc id is associated data).
	inst, cloudKV := setup(t)
	ctx := context.Background()
	if err := inst.(spi.Inserter).Insert(ctx, "f", "d1", "value"); err != nil {
		t.Fatal(err)
	}
	col := []byte("rndidx/obs/f")
	ct, _, _ := cloudKV.HGet(col, []byte("d1"))
	cloudKV.HDel(col, []byte("d1"))
	cloudKV.HSet(col, []byte("d2"), ct)
	if _, err := inst.(spi.EqSearcher).SearchEq(ctx, "f", "value"); err == nil {
		t.Fatal("replayed ciphertext under wrong doc id accepted")
	}
}

func TestDeleteRemovesColumnEntry(t *testing.T) {
	inst, _ := setup(t)
	ctx := context.Background()
	if err := inst.(spi.Inserter).Insert(ctx, "f", "d1", "v"); err != nil {
		t.Fatal(err)
	}
	if err := inst.(spi.Deleter).Delete(ctx, "f", "d1", nil); err != nil {
		t.Fatal(err)
	}
	ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "f", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("deleted entry still found: %v", ids)
	}
}
