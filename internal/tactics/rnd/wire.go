// Typed wire codecs (codec v2) for the RND tactic.

package rnd

import (
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func init() {
	transport.RegisterCodec(Service, "put", transport.WriteCodec(
		func(b []byte, a *PutArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendString(b, a.Field)
			b = wirefmt.AppendString(b, a.DocID)
			return wirefmt.AppendBytes(b, a.CT)
		},
		func(r *wirefmt.Reader, a *PutArgs) {
			a.Schema = r.String()
			a.Field = r.String()
			a.DocID = r.String()
			a.CT = r.Bytes()
		},
	))
	transport.RegisterCodec(Service, "remove", transport.WriteCodec(
		func(b []byte, a *RemoveArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendString(b, a.Field)
			return wirefmt.AppendString(b, a.DocID)
		},
		func(r *wirefmt.Reader, a *RemoveArgs) {
			a.Schema = r.String()
			a.Field = r.String()
			a.DocID = r.String()
		},
	))
	transport.RegisterCodec(Service, "scan", transport.Codec(
		func(b []byte, a *ScanArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			return wirefmt.AppendString(b, a.Field)
		},
		func(r *wirefmt.Reader, a *ScanArgs) {
			a.Schema = r.String()
			a.Field = r.String()
		},
		func(b []byte, out *ScanReply) []byte {
			b = wirefmt.AppendUvarint(b, uint64(len(out.Items)))
			for _, it := range out.Items {
				b = wirefmt.AppendString(b, it.DocID)
				b = wirefmt.AppendBytes(b, it.CT)
			}
			return b
		},
		func(r *wirefmt.Reader, out *ScanReply) {
			n := r.Count()
			if n == 0 {
				return
			}
			out.Items = make([]ScanItem, n)
			for i := range out.Items {
				out.Items[i].DocID = r.String()
				out.Items[i].CT = r.Bytes()
			}
		},
	))
}
