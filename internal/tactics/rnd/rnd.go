// Package rnd implements the RND tactic: probabilistic (random-IV)
// encryption, the strongest protection level in the catalog (paper Table 2
// — protection class 1, Structure leakage, implemented from scratch).
//
// Nothing about the value is searchable server-side; the cloud stores an
// opaque AEAD ciphertext per (field, document). Equality search is still
// offered — by exhaustively streaming every ciphertext of the field to the
// gateway and filtering after decryption — which is exactly the
// "Inefficiency" challenge the paper's Table 2 notes for RND.
package rnd

import (
	"context"
	"fmt"

	"datablinder/internal/cloud/ring"
	"datablinder/internal/crypto/keycache"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Name is the tactic's registry name.
const Name = "RND"

// Service is the cloud RPC service name.
const Service = "rnd"

// RPC payloads.
type (
	// PutArgs stores a ciphertext for (field, doc).
	PutArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		DocID  string `json:"doc_id"`
		CT     []byte `json:"ct"`
	}
	// RemoveArgs drops the ciphertext of (field, doc).
	RemoveArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		DocID  string `json:"doc_id"`
	}
	// ScanArgs streams every ciphertext of a field.
	ScanArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
	}
	// ScanItem is one (doc, ciphertext) pair.
	ScanItem struct {
		DocID string `json:"doc_id"`
		CT    []byte `json:"ct"`
	}
	// ScanReply carries the full field column.
	ScanReply struct {
		Items []ScanItem `json:"items"`
	}
)

// Describe returns the tactic's static descriptor.
func Describe() spi.Descriptor {
	return spi.Descriptor{
		Name:      Name,
		Operation: "Equality Search",
		Class:     model.Class1,
		Leakage:   model.LeakStructure,
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakStructure, Note: "only column size grows"},
			{Op: model.OpEquality, Leakage: model.LeakStructure, Note: "server sees a full-column scan regardless of the predicate"},
		},
		Ops: []model.Op{model.OpInsert, model.OpEquality},
		GatewayInterfaces: []string{
			"Setup", "Insertion", "SecureEnc", "Retrieval", "EqQuery", "EqResolution",
		},
		CloudInterfaces: []string{
			"Setup", "Insertion", "Retrieval", "EqQuery",
		},
		Perf: model.PerfMetrics{
			Complexity:          "O(N) exhaustive scan",
			RoundTrips:          1,
			ClientStorage:       "none",
			ServerStorageFactor: 1.3,
			Costs: map[model.Op]model.CostPrior{
				model.OpInsert:   {Fixed: 5},
				model.OpEquality: {Fixed: 100, PerDoc: 5.0},
				model.OpDelete:   {Fixed: 5},
			},
		},
		Challenge: "Inefficiency",
		Origin:    spi.OriginImplemented,
	}
}

// Tactic is the gateway half.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring
	aeads   *keycache.Cache[string, *primitives.AEAD]
}

// New constructs the gateway half.
func New(b spi.Binding) (spi.Tactic, error) {
	return &Tactic{
		binding: b,
		shards:  ring.Of(b.Cloud),
		aeads:   keycache.New[string, *primitives.AEAD](keycache.DefaultSize),
	}, nil
}

// route places one document's ciphertext cells on a shard; the exhaustive
// scan then gathers every shard's slice of the column.
func (t *Tactic) route(docID string) string {
	return "rnd/" + t.binding.Schema + "/" + docID
}

// Registration couples descriptor and factory for the registry.
func Registration() spi.Registration {
	return spi.Registration{Descriptor: Describe(), Factory: New}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return Describe() }

// Setup implements spi.Tactic.
func (t *Tactic) Setup(context.Context) error { return nil }

// aead returns the per-field cipher, constructing it at most once per
// field (construction re-runs the AES key schedule and GCM setup).
func (t *Tactic) aead(field string) (*primitives.AEAD, error) {
	return t.aeads.GetOrCompute(field, func() (*primitives.AEAD, error) {
		k, err := t.binding.Keys.Key(keys.Ref{Schema: t.binding.Schema, Field: field, Tactic: Name, Purpose: "enc"})
		if err != nil {
			return nil, err
		}
		return primitives.NewAEAD(k)
	})
}

// Insert implements spi.Inserter.
func (t *Tactic) Insert(ctx context.Context, field, docID string, value any) error {
	aead, err := t.aead(field)
	if err != nil {
		return err
	}
	ct, err := aead.Seal([]byte(model.ValueToString(value)), []byte(docID))
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(docID), Service, "put",
		PutArgs{Schema: t.binding.Schema, Field: field, DocID: docID, CT: ct}, nil)
}

// Delete implements spi.Deleter. The old value is not needed: the cloud
// column is keyed by document id.
func (t *Tactic) Delete(ctx context.Context, field, docID string, _ any) error {
	return t.shards.Call(ctx, t.route(docID), Service, "remove",
		RemoveArgs{Schema: t.binding.Schema, Field: field, DocID: docID}, nil)
}

// SearchEq implements spi.EqSearcher by exhaustive scan + gateway-side
// decryption.
func (t *Tactic) SearchEq(ctx context.Context, field string, value any) ([]string, error) {
	aead, err := t.aead(field)
	if err != nil {
		return nil, err
	}
	// Exhaustive scan scatter-gathers: each shard streams its slice of the
	// column (already in doc-id order), the slices merge by doc id, and
	// decryption/filtering stays gateway-side as before.
	perShard := make([][]ScanItem, t.shards.N())
	err = t.shards.Each(ctx, func(gctx context.Context, shard int, conn transport.Conn) error {
		var reply ScanReply
		if err := conn.Call(gctx, Service, "scan",
			ScanArgs{Schema: t.binding.Schema, Field: field}, &reply); err != nil {
			return err
		}
		perShard[shard] = reply.Items
		return nil
	})
	if err != nil {
		return nil, err
	}
	items := mergeScans(perShard)
	want := model.ValueToString(value)
	var ids []string
	for _, item := range items {
		pt, err := aead.Open(item.CT, []byte(item.DocID))
		if err != nil {
			return nil, fmt.Errorf("rnd: ciphertext for %s failed authentication: %w", item.DocID, err)
		}
		if string(pt) == want {
			ids = append(ids, item.DocID)
		}
	}
	return ids, nil
}

// mergeScans k-way merges per-shard column slices ascending by doc id,
// matching the single-node scan order.
func mergeScans(perShard [][]ScanItem) []ScanItem {
	if len(perShard) == 1 {
		return perShard[0]
	}
	n := 0
	for _, s := range perShard {
		n += len(s)
	}
	out := make([]ScanItem, 0, n)
	pos := make([]int, len(perShard))
	for {
		best := -1
		for i, s := range perShard {
			if pos[i] >= len(s) {
				continue
			}
			if best < 0 || s[pos[i]].DocID < perShard[best][pos[best]].DocID {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, perShard[best][pos[best]])
		pos[best]++
	}
}

// RegisterCloud installs the cloud half on mux, backed by store.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	colKey := func(schema, field string) []byte {
		return []byte(fmt.Sprintf("rndidx/%s/%s", schema, field))
	}
	transport.HandleTyped(mux, Service, "put", func(_ context.Context, in *PutArgs) (any, error) {
		return nil, store.HSet(colKey(in.Schema, in.Field), []byte(in.DocID), in.CT)
	})
	transport.HandleTyped(mux, Service, "remove", func(_ context.Context, in *RemoveArgs) (any, error) {
		return nil, store.HDel(colKey(in.Schema, in.Field), []byte(in.DocID))
	})
	transport.HandleTyped(mux, Service, "scan", func(_ context.Context, in *ScanArgs) (any, error) {
		fields, err := store.HFields(colKey(in.Schema, in.Field))
		if err != nil {
			return nil, err
		}
		reply := ScanReply{Items: make([]ScanItem, 0, len(fields))}
		for _, f := range fields {
			ct, ok, err := store.HGet(colKey(in.Schema, in.Field), f)
			if err != nil {
				return nil, err
			}
			if ok {
				reply.Items = append(reply.Items, ScanItem{DocID: string(f), CT: ct})
			}
		}
		return &reply, nil
	})
}

var (
	_ spi.Inserter   = (*Tactic)(nil)
	_ spi.Deleter    = (*Tactic)(nil)
	_ spi.EqSearcher = (*Tactic)(nil)
)
