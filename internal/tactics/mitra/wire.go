// Typed wire codecs (codec v2) for the Mitra SSE tactic: update cells and
// search address lists ride as raw bytes instead of base64 JSON.

package mitra

import (
	ssemitra "datablinder/internal/sse/mitra"
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func init() {
	transport.RegisterCodec(Service, "insert", transport.WriteCodec(
		func(b []byte, a *InsertArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendUvarint(b, uint64(len(a.Entries)))
			for _, e := range a.Entries {
				b = wirefmt.AppendBytes(b, e.Addr)
				b = wirefmt.AppendBytes(b, e.Val)
			}
			return b
		},
		func(r *wirefmt.Reader, a *InsertArgs) {
			a.Schema = r.String()
			n := r.Count()
			if n == 0 {
				return
			}
			a.Entries = make([]ssemitra.Entry, n)
			for i := range a.Entries {
				a.Entries[i].Addr = r.Bytes()
				a.Entries[i].Val = r.Bytes()
			}
		},
	))
	transport.RegisterCodec(Service, "search", transport.Codec(
		func(b []byte, a *SearchArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			return wirefmt.AppendByteSlices(b, a.Addrs)
		},
		func(r *wirefmt.Reader, a *SearchArgs) {
			a.Schema = r.String()
			a.Addrs = r.ByteSlices()
		},
		func(b []byte, out *SearchReply) []byte { return wirefmt.AppendByteSlices(b, out.Vals) },
		func(r *wirefmt.Reader, out *SearchReply) { out.Vals = r.ByteSlices() },
	))
}
