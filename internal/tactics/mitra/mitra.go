// Package mitra implements the Mitra tactic: forward- and backward-private
// dynamic SSE for equality search (paper Table 2 — protection class 2,
// Identifiers leakage, implemented from scratch; challenge: "Local
// storage", because the gateway keeps a counter per keyword).
package mitra

import (
	"context"

	"datablinder/internal/cloud/ring"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	ssemitra "datablinder/internal/sse/mitra"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Name is the tactic's registry name.
const Name = "Mitra"

// Service is the cloud RPC service name.
const Service = "mitra"

// RPC payloads.
type (
	// InsertArgs delivers encrypted update cells.
	InsertArgs struct {
		Schema  string           `json:"schema"`
		Entries []ssemitra.Entry `json:"entries"`
	}
	// SearchArgs carries the per-update cell addresses.
	SearchArgs struct {
		Schema string   `json:"schema"`
		Addrs  [][]byte `json:"addrs"`
	}
	// SearchReply returns the cells, position-aligned (nil for misses).
	SearchReply struct {
		Vals [][]byte `json:"vals"`
	}
)

// Describe returns the tactic's static descriptor.
func Describe() spi.Descriptor {
	return spi.Descriptor{
		Name:      Name,
		Operation: "Equality Search",
		Class:     model.Class2,
		Leakage:   model.LeakIdentifiers,
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakStructure, Note: "forward private: updates are unlinkable to past queries"},
			{Op: model.OpDelete, Leakage: model.LeakStructure, Note: "backward private: deletions are indistinguishable from additions"},
			{Op: model.OpEquality, Leakage: model.LeakIdentifiers, Note: "search reveals the access pattern of matching cells"},
		},
		Ops: []model.Op{model.OpInsert, model.OpDelete, model.OpEquality},
		GatewayInterfaces: []string{
			"Setup", "Insertion", "DocIDGen", "SecureEnc", "Deletion", "EqQuery", "EqResolution",
		},
		CloudInterfaces: []string{
			"Setup", "Insertion", "Deletion", "Retrieval", "EqQuery",
		},
		Perf: model.PerfMetrics{
			Complexity:          "O(u_w) per search (all updates of the keyword)",
			RoundTrips:          1,
			ClientStorage:       "one counter per keyword",
			ServerStorageFactor: 2.5,
			Costs: map[model.Op]model.CostPrior{
				// Searches replay the keyword's whole update history, so
				// query cost tracks corpus growth.
				model.OpInsert:   {Fixed: 30},
				model.OpEquality: {Fixed: 50, PerDoc: 0.2},
				model.OpDelete:   {Fixed: 30},
			},
		},
		Challenge: "Local storage",
		Origin:    spi.OriginImplemented,
	}
}

// Tactic is the gateway half.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring
	client  *ssemitra.Client
}

// New constructs the gateway half; keyword counters persist in the
// gateway's local store.
func New(b spi.Binding) (spi.Tactic, error) {
	key, err := b.Keys.Key(keys.Ref{Schema: b.Schema, Field: "*", Tactic: Name, Purpose: "root"})
	if err != nil {
		return nil, err
	}
	return &Tactic{
		binding: b,
		shards:  ring.Of(b.Cloud),
		client:  ssemitra.NewClient(key, ssemitra.NewKVState(b.Local)),
	}, nil
}

// route places one keyword's update cells on a shard. The keyword is known
// at both insert and search time (the gateway derives cell addresses from
// it), so a keyword's whole posting structure co-locates on one node.
func (t *Tactic) route(w string) string {
	return "mitra/" + t.binding.Schema + "/" + w
}

// Registration couples descriptor and factory for the registry.
func Registration() spi.Registration {
	return spi.Registration{Descriptor: Describe(), Factory: New}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return Describe() }

// Setup implements spi.Tactic.
func (t *Tactic) Setup(context.Context) error { return nil }

func keyword(field string, value any) string {
	return field + "=" + model.ValueToString(value)
}

func (t *Tactic) update(ctx context.Context, op ssemitra.Op, field, docID string, value any) error {
	w := keyword(field, value)
	e, err := t.client.Update(t.binding.Schema, w, op, docID)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(w), Service, "insert",
		InsertArgs{Schema: t.binding.Schema, Entries: []ssemitra.Entry{e}}, nil)
}

// Insert implements spi.Inserter.
func (t *Tactic) Insert(ctx context.Context, field, docID string, value any) error {
	return t.update(ctx, ssemitra.OpAdd, field, docID, value)
}

// Delete implements spi.Deleter.
func (t *Tactic) Delete(ctx context.Context, field, docID string, value any) error {
	return t.update(ctx, ssemitra.OpDel, field, docID, value)
}

// SearchEq implements spi.EqSearcher.
func (t *Tactic) SearchEq(ctx context.Context, field string, value any) ([]string, error) {
	w := keyword(field, value)
	req, err := t.client.SearchRequest(t.binding.Schema, w)
	if err != nil {
		return nil, err
	}
	if len(req.Addrs) == 0 {
		return nil, nil
	}
	var reply SearchReply
	if err := t.shards.Call(ctx, t.route(w), Service, "search",
		SearchArgs{Schema: t.binding.Schema, Addrs: req.Addrs}, &reply); err != nil {
		return nil, err
	}
	return t.client.Resolve(t.binding.Schema, w, reply.Vals)
}

// RegisterCloud installs the cloud half on mux, backed by store.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	servers := newServerCache(store)
	transport.HandleTyped(mux, Service, "insert", func(_ context.Context, in *InsertArgs) (any, error) {
		return nil, servers.get(in.Schema).Insert(in.Entries)
	})
	transport.HandleTyped(mux, Service, "search", func(_ context.Context, in *SearchArgs) (any, error) {
		vals, err := servers.get(in.Schema).Search(ssemitra.SearchRequest{Addrs: in.Addrs})
		if err != nil {
			return nil, err
		}
		return &SearchReply{Vals: vals}, nil
	})
}

// serverCache memoizes per-schema server handles (they are just namespace
// wrappers over the shared store).
type serverCache struct {
	store *kvstore.Store
}

func newServerCache(store *kvstore.Store) *serverCache { return &serverCache{store: store} }

func (c *serverCache) get(schema string) *ssemitra.Server {
	return ssemitra.NewServer(c.store, schema)
}

var (
	_ spi.Inserter   = (*Tactic)(nil)
	_ spi.Deleter    = (*Tactic)(nil)
	_ spi.EqSearcher = (*Tactic)(nil)
)
