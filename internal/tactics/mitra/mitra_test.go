package mitra_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/mitra"
	"datablinder/internal/transport"
)

type env struct {
	binding spi.Binding
}

func newEnv(t *testing.T) env {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	mitra.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	local := kvstore.New()
	t.Cleanup(func() { local.Close() })
	return env{binding: spi.Binding{
		Schema: "obs", Keys: kp,
		Cloud: transport.NewLoopback(mux),
		Local: local,
	}}
}

func instance(t *testing.T, e env) spi.Tactic {
	t.Helper()
	inst, err := mitra.New(e.binding)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestDeleteThenReinsert(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	del := inst.(spi.Deleter)
	es := inst.(spi.EqSearcher)

	ins.Insert(ctx, "subject", "d1", "alice")
	ins.Insert(ctx, "subject", "d2", "alice")
	del.Delete(ctx, "subject", "d1", "alice")
	ids, err := es.SearchEq(ctx, "subject", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"d2"}) {
		t.Fatalf("after delete = %v", ids)
	}
	ins.Insert(ctx, "subject", "d1", "alice")
	ids, _ = es.SearchEq(ctx, "subject", "alice")
	if len(ids) != 2 {
		t.Fatalf("after re-insert = %v", ids)
	}
}

func TestStateSharedAcrossInstances(t *testing.T) {
	// Counters live in the gateway kvstore: a second instance over the
	// same store continues the sequence.
	e := newEnv(t)
	ctx := context.Background()
	inst1 := instance(t, e)
	inst1.(spi.Inserter).Insert(ctx, "f", "d1", "v")

	inst2 := instance(t, e)
	inst2.(spi.Inserter).Insert(ctx, "f", "d2", "v")
	ids, err := inst2.(spi.EqSearcher).SearchEq(ctx, "f", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("cross-instance search = %v", ids)
	}
}

func TestConcurrentInsertsSameKeyword(t *testing.T) {
	// The atomic counter reservation must prevent cell collisions when
	// many goroutines update one keyword.
	e := newEnv(t)
	inst := instance(t, e)
	ctx := context.Background()
	var wg sync.WaitGroup
	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := "doc-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			if err := inst.(spi.Inserter).Insert(ctx, "f", id, "shared"); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "f", "shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("concurrent inserts lost cells: %d/%d survived", len(ids), n)
	}
}

func TestEmptyKeywordNoRPC(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	ids, err := inst.(spi.EqSearcher).SearchEq(context.Background(), "f", "never")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("empty keyword = %v", ids)
	}
}
