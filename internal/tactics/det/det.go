// Package det implements the DET tactic: deterministic encryption for
// equality search (paper Table 2 — protection class 4, Equalities leakage,
// implemented from scratch).
//
// The gateway deterministically encrypts the field value (SIV mode); the
// cloud keeps a map from ciphertext to the set of document ids holding that
// value. Equality search is a single ciphertext lookup — the fastest
// equality tactic and the weakest of the searchable ones (equal plaintexts
// are visible as equal ciphertexts even in a snapshot).
package det

import (
	"context"
	"fmt"
	"sort"

	"datablinder/internal/cloud/ring"
	"datablinder/internal/conc"
	"datablinder/internal/crypto/keycache"
	"datablinder/internal/crypto/primitives"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Name is the tactic's registry name.
const Name = "DET"

// Service is the cloud RPC service name.
const Service = "det"

// AddArgs / RemoveArgs / LookupArgs are the cloud RPC payloads.
type (
	// AddArgs adds docID under a deterministic ciphertext.
	AddArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		CT     []byte `json:"ct"`
		DocID  string `json:"doc_id"`
	}
	// RemoveArgs removes docID from a ciphertext's id set.
	RemoveArgs = AddArgs
	// LookupArgs fetches the id set of a ciphertext.
	LookupArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		CT     []byte `json:"ct"`
	}
	// LookupReply carries the matching ids.
	LookupReply struct {
		DocIDs []string `json:"doc_ids"`
	}
)

// Describe returns the tactic's static descriptor.
func Describe() spi.Descriptor {
	return spi.Descriptor{
		Name:      Name,
		Operation: "Equality Search",
		Class:     model.Class4,
		Leakage:   model.LeakEqualities,
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakEqualities, Note: "equal values collide at insert time (snapshot-visible)"},
			{Op: model.OpEquality, Leakage: model.LeakEqualities, Note: "query token equals the stored ciphertext"},
		},
		Ops: []model.Op{model.OpInsert, model.OpEquality},
		GatewayInterfaces: []string{
			"Setup", "Insertion", "DocIDGen", "SecureEnc", "Update",
			"Retrieval", "Deletion", "EqQuery", "EqResolution",
		},
		CloudInterfaces: []string{
			"Setup", "Insertion", "Update", "Retrieval", "Deletion", "EqQuery",
		},
		Perf: model.PerfMetrics{
			Complexity:          "O(1) lookup + O(n_w) result",
			RoundTrips:          1,
			ClientStorage:       "none",
			ServerStorageFactor: 1.2,
			Costs: map[model.Op]model.CostPrior{
				model.OpInsert:   {Fixed: 20},
				model.OpEquality: {Fixed: 30},
				model.OpDelete:   {Fixed: 20},
			},
		},
		Challenge: "-",
		Origin:    spi.OriginImplemented,
	}
}

// Tactic is the gateway half.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring
	ciphers *keycache.Cache[string, *primitives.DET]
}

// New constructs the gateway half.
func New(b spi.Binding) (spi.Tactic, error) {
	return &Tactic{
		binding: b,
		shards:  ring.Of(b.Cloud),
		ciphers: keycache.New[string, *primitives.DET](keycache.DefaultSize),
	}, nil
}

// route is the routing key placing one (field, ciphertext) posting set on a
// shard: the deterministic ciphertext is stable across restarts, so insert,
// delete and lookup for one value always land on the same shard.
func (t *Tactic) route(field string, ct []byte) string {
	return "det/" + t.binding.Schema + "/" + field + "/" + string(ct)
}

// Registration couples descriptor and factory for the registry.
func Registration() spi.Registration {
	return spi.Registration{Descriptor: Describe(), Factory: New}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return Describe() }

// Setup implements spi.Tactic. DET needs no provisioning beyond key
// derivation, which happens lazily per field.
func (t *Tactic) Setup(context.Context) error { return nil }

// cipher returns the per-field deterministic cipher, constructing it at
// most once per field (cipher construction re-runs the AES key schedule).
func (t *Tactic) cipher(field string) (*primitives.DET, error) {
	return t.ciphers.GetOrCompute(field, func() (*primitives.DET, error) {
		enc, err := t.binding.Keys.Key(keys.Ref{Schema: t.binding.Schema, Field: field, Tactic: Name, Purpose: "enc"})
		if err != nil {
			return nil, err
		}
		mac, err := t.binding.Keys.Key(keys.Ref{Schema: t.binding.Schema, Field: field, Tactic: Name, Purpose: "mac"})
		if err != nil {
			return nil, err
		}
		return primitives.NewDET(enc, mac)
	})
}

func (t *Tactic) encrypt(field string, value any) ([]byte, error) {
	c, err := t.cipher(field)
	if err != nil {
		return nil, err
	}
	return c.Encrypt([]byte(model.ValueToString(value))), nil
}

// Insert implements spi.Inserter.
func (t *Tactic) Insert(ctx context.Context, field, docID string, value any) error {
	ct, err := t.encrypt(field, value)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(field, ct), Service, "add",
		AddArgs{Schema: t.binding.Schema, Field: field, CT: ct, DocID: docID}, nil)
}

// Delete implements spi.Deleter.
func (t *Tactic) Delete(ctx context.Context, field, docID string, value any) error {
	ct, err := t.encrypt(field, value)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(field, ct), Service, "remove",
		RemoveArgs{Schema: t.binding.Schema, Field: field, CT: ct, DocID: docID}, nil)
}

// batchOps encrypts every field value and coalesces the per-field index
// mutations into one transport batch per owning shard (a single
// gateway↔cloud frame each; shard batches run concurrently).
func (t *Tactic) batchOps(ctx context.Context, method, docID string, fields map[string]any) error {
	names := make([]string, 0, len(fields))
	for f := range fields {
		names = append(names, f)
	}
	sort.Strings(names)
	routes := make([]string, len(names))
	calls := make([]transport.BatchCall, len(names))
	for i, f := range names {
		ct, err := t.encrypt(f, fields[f])
		if err != nil {
			return err
		}
		routes[i] = t.route(f, ct)
		calls[i] = transport.BatchCall{
			Service: Service, Method: method,
			Args: AddArgs{Schema: t.binding.Schema, Field: f, CT: ct, DocID: docID},
		}
	}
	groups := t.shards.Split(routes)
	shardList := make([]int, 0, len(groups))
	for s := range groups {
		shardList = append(shardList, s)
	}
	return conc.ForEach(ctx, len(shardList), 0, func(gctx context.Context, gi int) error {
		shard := shardList[gi]
		idx := groups[shard]
		sub := make([]transport.BatchCall, len(idx))
		for j, i := range idx {
			sub[j] = calls[i]
		}
		results, err := transport.CallBatch(gctx, t.shards.Conn(shard), sub)
		if err != nil {
			return err
		}
		for j, r := range results {
			if r.Err != nil {
				return fmt.Errorf("det: %s field %s: %w", method, names[idx[j]], r.Err)
			}
		}
		return nil
	})
}

// InsertDoc implements spi.DocInserter: a document touching n DET-indexed
// fields costs one round trip instead of n.
func (t *Tactic) InsertDoc(ctx context.Context, docID string, fields map[string]any) error {
	if len(fields) == 1 {
		for f, v := range fields {
			return t.Insert(ctx, f, docID, v)
		}
	}
	return t.batchOps(ctx, "add", docID, fields)
}

// DeleteDoc implements spi.DocDeleter, batching like InsertDoc.
func (t *Tactic) DeleteDoc(ctx context.Context, docID string, fields map[string]any) error {
	if len(fields) == 1 {
		for f, v := range fields {
			return t.Delete(ctx, f, docID, v)
		}
	}
	return t.batchOps(ctx, "remove", docID, fields)
}

// SearchEq implements spi.EqSearcher.
func (t *Tactic) SearchEq(ctx context.Context, field string, value any) ([]string, error) {
	ct, err := t.encrypt(field, value)
	if err != nil {
		return nil, err
	}
	var reply LookupReply
	if err := t.shards.Call(ctx, t.route(field, ct), Service, "lookup",
		LookupArgs{Schema: t.binding.Schema, Field: field, CT: ct}, &reply); err != nil {
		return nil, err
	}
	return reply.DocIDs, nil
}

// RegisterCloud installs the cloud half on mux, backed by store.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	setKey := func(schema, field string, ct []byte) []byte {
		return append([]byte(fmt.Sprintf("detidx/%s/%s/", schema, field)), ct...)
	}
	transport.HandleTyped(mux, Service, "add", func(_ context.Context, in *AddArgs) (any, error) {
		return nil, store.SAdd(setKey(in.Schema, in.Field, in.CT), []byte(in.DocID))
	})
	transport.HandleTyped(mux, Service, "remove", func(_ context.Context, in *RemoveArgs) (any, error) {
		return nil, store.SRem(setKey(in.Schema, in.Field, in.CT), []byte(in.DocID))
	})
	transport.HandleTyped(mux, Service, "lookup", func(_ context.Context, in *LookupArgs) (any, error) {
		members, err := store.SMembers(setKey(in.Schema, in.Field, in.CT))
		if err != nil {
			return nil, err
		}
		reply := LookupReply{DocIDs: make([]string, len(members))}
		for i, m := range members {
			reply.DocIDs[i] = string(m)
		}
		return &reply, nil
	})
}

var (
	_ spi.Inserter    = (*Tactic)(nil)
	_ spi.Deleter     = (*Tactic)(nil)
	_ spi.DocInserter = (*Tactic)(nil)
	_ spi.DocDeleter  = (*Tactic)(nil)
	_ spi.EqSearcher  = (*Tactic)(nil)
)
