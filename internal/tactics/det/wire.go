// Typed wire codecs (codec v2) for the DET tactic: ciphertexts ride as
// raw bytes instead of base64 JSON.

package det

import (
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func appendAdd(b []byte, a *AddArgs) []byte {
	b = wirefmt.AppendString(b, a.Schema)
	b = wirefmt.AppendString(b, a.Field)
	b = wirefmt.AppendBytes(b, a.CT)
	return wirefmt.AppendString(b, a.DocID)
}

func readAdd(r *wirefmt.Reader, a *AddArgs) {
	a.Schema = r.String()
	a.Field = r.String()
	a.CT = r.Bytes()
	a.DocID = r.String()
}

func init() {
	transport.RegisterCodec(Service, "add", transport.WriteCodec(appendAdd, readAdd))
	transport.RegisterCodec(Service, "remove", transport.WriteCodec(appendAdd, readAdd))
	transport.RegisterCodec(Service, "lookup", transport.Codec(
		func(b []byte, a *LookupArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendString(b, a.Field)
			return wirefmt.AppendBytes(b, a.CT)
		},
		func(r *wirefmt.Reader, a *LookupArgs) {
			a.Schema = r.String()
			a.Field = r.String()
			a.CT = r.Bytes()
		},
		func(b []byte, out *LookupReply) []byte { return wirefmt.AppendStrings(b, out.DocIDs) },
		func(r *wirefmt.Reader, out *LookupReply) { out.DocIDs = r.Strings() },
	))
}
