package det_test

import (
	"context"
	"strings"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/det"
	"datablinder/internal/transport"
)

func setup(t *testing.T) (spi.Tactic, *kvstore.Store) {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	det.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := det.New(spi.Binding{
		Schema: "obs", Keys: kp,
		Cloud: transport.NewLoopback(mux),
		Local: kvstore.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst, cloudKV
}

func TestFieldIsolation(t *testing.T) {
	inst, _ := setup(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	if err := ins.Insert(ctx, "status", "d1", "final"); err != nil {
		t.Fatal(err)
	}
	// The same value under a different field must not match: keys are
	// derived per field.
	ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "final")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("cross-field match: %v", ids)
	}
}

func TestCloudSeesOnlyCiphertext(t *testing.T) {
	inst, cloudKV := setup(t)
	ctx := context.Background()
	if err := inst.(spi.Inserter).Insert(ctx, "diagnosis", "patient-7", "pancreatic-cancer"); err != nil {
		t.Fatal(err)
	}
	keysList, _ := cloudKV.Keys(nil)
	for _, k := range keysList {
		if strings.Contains(string(k), "pancreatic-cancer") {
			t.Fatal("plaintext value leaked into cloud index key")
		}
	}
}

func TestNumericCanonicalization(t *testing.T) {
	// int and int64 representations of the same number must produce the
	// same deterministic ciphertext (ValueToString canonicalization).
	inst, _ := setup(t)
	ctx := context.Background()
	if err := inst.(spi.Inserter).Insert(ctx, "n", "d1", int64(42)); err != nil {
		t.Fatal(err)
	}
	ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "n", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("int/int64 canonicalization broken: %v", ids)
	}
}

func TestDescriptorMatchesTable2(t *testing.T) {
	d := det.Describe()
	if len(d.GatewayInterfaces) != 9 || len(d.CloudInterfaces) != 6 {
		t.Fatalf("SPI counts = %d/%d, want 9/6", len(d.GatewayInterfaces), len(d.CloudInterfaces))
	}
	if d.Challenge != "-" {
		t.Fatalf("challenge = %q", d.Challenge)
	}
}
