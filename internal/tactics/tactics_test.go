package tactics_test

// Shared SPI conformance tests: every registered tactic must honor the
// contract the engine relies on — idempotent setup, insert→search
// round-trips for the operations it advertises, and clean deletion
// semantics. Tactic-specific behaviour is covered in each tactic's own
// test file.

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics"
	"datablinder/internal/transport"
)

// newBinding builds a binding over a fresh cloud mux + stores.
func newBinding(t testing.TB, schema string) spi.Binding {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	tactics.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	local := kvstore.New()
	t.Cleanup(func() { local.Close() })
	return spi.Binding{
		Schema: schema,
		Keys:   kp,
		Cloud:  transport.NewLoopback(mux),
		Local:  local,
	}
}

func instantiate(t testing.TB, name string, b spi.Binding) spi.Tactic {
	t.Helper()
	registry, err := tactics.Registry()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := reg.Factory(b)
	if err != nil {
		t.Fatalf("factory(%s): %v", name, err)
	}
	if err := inst.Setup(context.Background()); err != nil {
		t.Fatalf("setup(%s): %v", name, err)
	}
	return inst
}

func insertValue(t testing.TB, inst spi.Tactic, field, docID string, value any) {
	t.Helper()
	ctx := context.Background()
	if di, ok := inst.(spi.DocInserter); ok {
		if err := di.InsertDoc(ctx, docID, map[string]any{field: value}); err != nil {
			t.Fatalf("InsertDoc: %v", err)
		}
		return
	}
	if err := inst.(spi.Inserter).Insert(ctx, field, docID, value); err != nil {
		t.Fatalf("Insert: %v", err)
	}
}

func deleteValue(t testing.TB, inst spi.Tactic, field, docID string, value any) {
	t.Helper()
	ctx := context.Background()
	if dd, ok := inst.(spi.DocDeleter); ok {
		if err := dd.DeleteDoc(ctx, docID, map[string]any{field: value}); err != nil {
			t.Fatalf("DeleteDoc: %v", err)
		}
		return
	}
	if err := inst.(spi.Deleter).Delete(ctx, field, docID, value); err != nil {
		t.Fatalf("Delete: %v", err)
	}
}

func searchEq(t testing.TB, inst spi.Tactic, field string, value any) []string {
	t.Helper()
	ids, err := inst.(spi.EqSearcher).SearchEq(context.Background(), field, value)
	if err != nil {
		t.Fatalf("SearchEq: %v", err)
	}
	sort.Strings(ids)
	return ids
}

// eqValue returns a value of the right type for the tactic (numeric-only
// tactics index int64s).
func eqValue(d spi.Descriptor, i int) any {
	if d.NumericOnly {
		return int64(100 + i)
	}
	return fmt.Sprintf("val-%d", i)
}

// TestEqualityConformance exercises insert -> search -> delete -> search
// for every tactic that advertises equality search.
func TestEqualityConformance(t *testing.T) {
	registry, err := tactics.Registry()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range registry.Descriptors() {
		if !d.SupportsOp(model.OpEquality) {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			b := newBinding(t, "conf")
			inst := instantiate(t, d.Name, b)

			v0, v1 := eqValue(d, 0), eqValue(d, 1)
			insertValue(t, inst, "f", "d1", v0)
			insertValue(t, inst, "f", "d2", v0)
			insertValue(t, inst, "f", "d3", v1)

			if got := searchEq(t, inst, "f", v0); len(got) != 2 || got[0] != "d1" || got[1] != "d2" {
				t.Fatalf("search(v0) = %v", got)
			}
			if got := searchEq(t, inst, "f", v1); len(got) != 1 || got[0] != "d3" {
				t.Fatalf("search(v1) = %v", got)
			}
			if got := searchEq(t, inst, "f", eqValue(d, 9)); len(got) != 0 {
				t.Fatalf("search(absent) = %v", got)
			}

			if d.SupportsOp(model.OpDelete) || isDeleter(inst) {
				deleteValue(t, inst, "f", "d1", v0)
				if got := searchEq(t, inst, "f", v0); len(got) != 1 || got[0] != "d2" {
					t.Fatalf("search after delete = %v", got)
				}
			}
		})
	}
}

func isDeleter(inst spi.Tactic) bool {
	if _, ok := inst.(spi.Deleter); ok {
		return true
	}
	_, ok := inst.(spi.DocDeleter)
	return ok
}

// TestSetupIdempotent calls Setup twice for every tactic.
func TestSetupIdempotent(t *testing.T) {
	registry, err := tactics.Registry()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := newBinding(t, "idem")
			inst := instantiate(t, name, b)
			if err := inst.Setup(context.Background()); err != nil {
				t.Fatalf("second Setup: %v", err)
			}
		})
	}
}

// TestSchemaIsolation verifies two tactic instances on different schemas
// never see each other's entries.
func TestSchemaIsolation(t *testing.T) {
	registry, err := tactics.Registry()
	if err != nil {
		t.Fatal(err)
	}
	// Both schemas share one cloud and one gateway store (as in a real
	// multi-tenant gateway).
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	tactics.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	local := kvstore.New()
	t.Cleanup(func() { local.Close() })
	mk := func(schema string) spi.Binding {
		return spi.Binding{Schema: schema, Keys: kp, Cloud: transport.NewLoopback(mux), Local: local}
	}

	for _, d := range registry.Descriptors() {
		if !d.SupportsOp(model.OpEquality) {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			instA := instantiate(t, d.Name, mk("tenant-a-"+d.Name))
			instB := instantiate(t, d.Name, mk("tenant-b-"+d.Name))
			v := eqValue(d, 0)
			insertValue(t, instA, "f", "da", v)
			if got := searchEq(t, instB, "f", v); len(got) != 0 {
				t.Fatalf("tenant B sees tenant A's entry: %v", got)
			}
			if got := searchEq(t, instA, "f", v); len(got) != 1 {
				t.Fatalf("tenant A lost its entry: %v", got)
			}
		})
	}
}

// TestDescriptorOpLeakageWithinOverall checks each tactic's per-operation
// leakage never exceeds its declared overall leakage (the overall level is
// the weakest operation by definition).
func TestDescriptorOpLeakageWithinOverall(t *testing.T) {
	registry, err := tactics.Registry()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range registry.Descriptors() {
		if d.Leakage == 0 {
			continue // aggregate-only
		}
		for _, ol := range d.OpLeakage {
			if ol.Leakage > d.Leakage {
				t.Errorf("%s: op %s leaks %s > overall %s", d.Name, string(ol.Op), ol.Leakage, d.Leakage)
			}
		}
	}
}
