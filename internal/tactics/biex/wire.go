// Typed wire codecs (codec v2) for the BIEX tactic. A k-keyword document
// insert ships O(k²) PRF-sized cells; with JSON every cell pays two base64
// fields plus key names, so this is the codec with the most to gain.
//
// ConjToken.Route is gateway-side routing state (`json:"-"`): the binary
// encoding must match JSON semantics and leak nothing extra to the
// untrusted zone, so it is never written to the wire.

package biex

import (
	ssebiex "datablinder/internal/sse/biex"
	"datablinder/internal/sse/emm"
	"datablinder/internal/sse/zmf"
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func appendCells(b []byte, cells []emm.Entry) []byte {
	b = wirefmt.AppendUvarint(b, uint64(len(cells)))
	for _, e := range cells {
		b = wirefmt.AppendBytes(b, e.Addr)
		b = wirefmt.AppendBytes(b, e.Val)
	}
	return b
}

func readCells(r *wirefmt.Reader) []emm.Entry {
	n := r.Count()
	if n == 0 {
		return nil
	}
	cells := make([]emm.Entry, n)
	for i := range cells {
		cells[i].Addr = r.Bytes()
		cells[i].Val = r.Bytes()
	}
	return cells
}

func appendEMMToken(b []byte, t *emm.SearchToken) []byte {
	b = wirefmt.AppendBytes(b, t.AddrKey)
	b = wirefmt.AppendBytes(b, t.ValueKey)
	b = wirefmt.AppendUvarint(b, t.Counts.Packed)
	return wirefmt.AppendUvarint(b, t.Counts.Tail)
}

func readEMMToken(r *wirefmt.Reader, t *emm.SearchToken) {
	t.AddrKey = r.Bytes()
	t.ValueKey = r.Bytes()
	t.Counts.Packed = r.Uvarint()
	t.Counts.Tail = r.Uvarint()
}

// Constraint flag bits.
const (
	conFlagCross   = 1 << 0
	conFlagFilter  = 1 << 1
	conFlagNegated = 1 << 2
)

func init() {
	transport.RegisterCodec(Service, "insert", transport.WriteCodec(
		func(b []byte, a *InsertArgs) []byte {
			b = wirefmt.AppendString(b, a.Namespace)
			b = appendCells(b, a.Entries.Global)
			b = appendCells(b, a.Entries.Cross)
			b = wirefmt.AppendUvarint(b, uint64(len(a.Entries.CrossPacked)))
			for _, p := range a.Entries.CrossPacked {
				b = wirefmt.AppendUvarint(b, uint64(p.Count))
				b = wirefmt.AppendUvarint(b, uint64(p.AddrLen))
				b = wirefmt.AppendUvarint(b, uint64(p.ValLen))
				b = wirefmt.AppendBytes(b, p.Addrs)
				b = wirefmt.AppendBytes(b, p.Vals)
				b = wirefmt.AppendBytes(b, p.Shared)
				b = wirefmt.AppendBytes(b, p.Nonce)
			}
			b = wirefmt.AppendUvarint(b, uint64(len(a.Entries.Filter)))
			for _, f := range a.Entries.Filter {
				b = wirefmt.AppendBytes(b, f.Label)
				b = wirefmt.AppendUint64s(b, f.Positions)
				b = wirefmt.AppendInt64(b, f.Delta)
			}
			return b
		},
		func(r *wirefmt.Reader, a *InsertArgs) {
			a.Namespace = r.String()
			a.Entries.Global = readCells(r)
			a.Entries.Cross = readCells(r)
			if n := r.Count(); n > 0 {
				a.Entries.CrossPacked = make([]ssebiex.PackedEntry, n)
				for i := range a.Entries.CrossPacked {
					p := &a.Entries.CrossPacked[i]
					p.Count = int(r.Uvarint())
					p.AddrLen = int(r.Uvarint())
					p.ValLen = int(r.Uvarint())
					p.Addrs = r.Bytes()
					p.Vals = r.Bytes()
					p.Shared = r.Bytes()
					p.Nonce = r.Bytes()
				}
			}
			if n := r.Count(); n > 0 {
				a.Entries.Filter = make([]zmf.UpdateEntry, n)
				for i := range a.Entries.Filter {
					f := &a.Entries.Filter[i]
					f.Label = r.Bytes()
					f.Positions = r.Uint64s()
					f.Delta = r.Int64()
				}
			}
		},
	))
	transport.RegisterCodec(Service, "search", transport.Codec(
		func(b []byte, a *SearchArgs) []byte {
			b = wirefmt.AppendString(b, a.Namespace)
			b = wirefmt.AppendUvarint(b, uint64(len(a.Token.Conjunctions)))
			for i := range a.Token.Conjunctions {
				cj := &a.Token.Conjunctions[i]
				b = appendEMMToken(b, &cj.Anchor)
				b = wirefmt.AppendUvarint(b, uint64(len(cj.Constraints)))
				for j := range cj.Constraints {
					c := &cj.Constraints[j]
					var flags byte
					if c.Cross != nil {
						flags |= conFlagCross
					}
					if c.Filter != nil {
						flags |= conFlagFilter
					}
					if c.Negated {
						flags |= conFlagNegated
					}
					b = append(b, flags)
					if c.Cross != nil {
						b = appendEMMToken(b, c.Cross)
					}
					if c.Filter != nil {
						b = wirefmt.AppendBytes(b, c.Filter.Label)
						b = wirefmt.AppendBytes(b, c.Filter.ProbeKey)
					}
				}
			}
			return b
		},
		func(r *wirefmt.Reader, a *SearchArgs) {
			a.Namespace = r.String()
			n := r.Count()
			if n == 0 {
				return
			}
			a.Token.Conjunctions = make([]ssebiex.ConjToken, n)
			for i := range a.Token.Conjunctions {
				cj := &a.Token.Conjunctions[i]
				readEMMToken(r, &cj.Anchor)
				if m := r.Count(); m > 0 {
					cj.Constraints = make([]ssebiex.Constraint, m)
					for j := range cj.Constraints {
						c := &cj.Constraints[j]
						flags := r.Byte()
						if flags&conFlagCross != 0 {
							c.Cross = new(emm.SearchToken)
							readEMMToken(r, c.Cross)
						}
						if flags&conFlagFilter != 0 {
							c.Filter = new(zmf.TestToken)
							c.Filter.Label = r.Bytes()
							c.Filter.ProbeKey = r.Bytes()
						}
						c.Negated = flags&conFlagNegated != 0
					}
				}
			}
		},
		func(b []byte, out *SearchReply) []byte { return wirefmt.AppendStrings(b, out.IDs) },
		func(r *wirefmt.Reader, out *SearchReply) { out.IDs = r.Strings() },
	))
	transport.RegisterCodec(Service, "repack", transport.WriteCodec(
		func(b []byte, a *RepackArgs) []byte {
			b = wirefmt.AppendString(b, a.Namespace)
			b = wirefmt.AppendByteSlices(b, a.Stale)
			return appendCells(b, a.Entries)
		},
		func(r *wirefmt.Reader, a *RepackArgs) {
			a.Namespace = r.String()
			a.Stale = r.ByteSlices()
			a.Entries = readCells(r)
		},
	))
}
