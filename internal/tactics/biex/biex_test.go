package biex_test

import (
	"context"
	"reflect"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/biex"
	"datablinder/internal/transport"
)

func instance(t *testing.T, reg spi.Registration) spi.Tactic {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	biex.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := reg.Factory(spi.Binding{
		Schema: "obs", Keys: kp,
		Cloud: transport.NewLoopback(mux),
		Local: kvstore.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func variants(t *testing.T, f func(t *testing.T, inst spi.Tactic)) {
	t.Helper()
	for _, reg := range []spi.Registration{biex.Registration2Lev(), biex.RegistrationZMF()} {
		reg := reg
		t.Run(reg.Descriptor.Name, func(t *testing.T) {
			f(t, instance(t, reg))
		})
	}
}

func seed(t *testing.T, inst spi.Tactic) {
	t.Helper()
	ctx := context.Background()
	di := inst.(spi.DocInserter)
	docs := map[string]map[string]any{
		"d1": {"status": "final", "code": "glucose"},
		"d2": {"status": "final", "code": "insulin"},
		"d3": {"status": "draft", "code": "glucose"},
	}
	for id, fields := range docs {
		if err := di.InsertDoc(ctx, id, fields); err != nil {
			t.Fatalf("InsertDoc(%s): %v", id, err)
		}
	}
}

func TestCrossFieldConjunction(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ids, err := inst.(spi.BoolSearcher).SearchBool(context.Background(), spi.BoolQuery{{
			{Field: "status", Value: "final"},
			{Field: "code", Value: "glucose"},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d1"}) {
			t.Fatalf("conjunction = %v", ids)
		}
	})
}

func TestDisjunctionAndNegation(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ctx := context.Background()
		bs := inst.(spi.BoolSearcher)

		// draft OR insulin.
		ids, err := bs.SearchBool(ctx, spi.BoolQuery{
			{{Field: "status", Value: "draft"}},
			{{Field: "code", Value: "insulin"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d2", "d3"}) {
			t.Fatalf("disjunction = %v", ids)
		}

		// glucose AND NOT final.
		ids, err = bs.SearchBool(ctx, spi.BoolQuery{{
			{Field: "code", Value: "glucose"},
			{Field: "status", Value: "final", Negated: true},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d3"}) {
			t.Fatalf("negation = %v", ids)
		}
	})
}

func TestEqualityDegeneratesToSingleKeyword(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ids, err := inst.(spi.EqSearcher).SearchEq(context.Background(), "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d1", "d3"}) {
			t.Fatalf("eq = %v", ids)
		}
	})
}

func TestDocDeleteSupersedes(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ctx := context.Background()
		if err := inst.(spi.DocDeleter).DeleteDoc(ctx, "d1", nil); err != nil {
			t.Fatal(err)
		}
		ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d3"}) {
			t.Fatalf("after delete = %v", ids)
		}
		// Re-insert with changed fields: only new keywords match.
		if err := inst.(spi.DocInserter).InsertDoc(ctx, "d1", map[string]any{
			"status": "amended", "code": "bmi",
		}); err != nil {
			t.Fatal(err)
		}
		ids, _ = inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if !reflect.DeepEqual(ids, []string{"d3"}) {
			t.Fatalf("stale keyword after update = %v", ids)
		}
		ids, _ = inst.(spi.EqSearcher).SearchEq(ctx, "code", "bmi")
		if !reflect.DeepEqual(ids, []string{"d1"}) {
			t.Fatalf("new keyword after update = %v", ids)
		}
	})
}

func TestCompactPreservesResults(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		ctx := context.Background()
		di := inst.(spi.DocInserter)
		// 30 docs under one hot keyword, some deleted before compaction.
		for i := 0; i < 30; i++ {
			id := []string{"dA", "dB", "dC"}[i%3] + string(rune('0'+i/3))
			if err := di.InsertDoc(ctx, id, map[string]any{"code": "glucose"}); err != nil {
				t.Fatal(err)
			}
		}
		inst.(spi.DocDeleter).DeleteDoc(ctx, "dA0", nil)
		inst.(spi.DocDeleter).DeleteDoc(ctx, "dB3", nil)

		before, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.(*biex.Tactic).Compact(ctx, "code", "glucose"); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		after, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("Compact changed results: %v -> %v", before, after)
		}
		if len(after) != 28 {
			t.Fatalf("results = %d ids, want 28", len(after))
		}
		// Inserts after compaction land in the fresh tail and still match.
		if err := di.InsertDoc(ctx, "post-compact", map[string]any{"code": "glucose"}); err != nil {
			t.Fatal(err)
		}
		final, _ := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if len(final) != 29 {
			t.Fatalf("post-compact insert lost: %d ids", len(final))
		}
		// Compacting an idle keyword is harmless.
		if err := inst.(*biex.Tactic).Compact(ctx, "code", "never-seen"); err != nil {
			t.Fatalf("Compact(empty): %v", err)
		}
	})
}

func TestVariantsShareCloudWithoutInterference(t *testing.T) {
	// Both variants on the same schema and cloud store must not collide
	// (distinct namespaces + distinct derived keys).
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	biex.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	binding := spi.Binding{Schema: "obs", Keys: kp, Cloud: transport.NewLoopback(mux), Local: kvstore.New()}
	i2, err := biex.Registration2Lev().Factory(binding)
	if err != nil {
		t.Fatal(err)
	}
	iz, err := biex.RegistrationZMF().Factory(binding)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := i2.(spi.DocInserter).InsertDoc(ctx, "d1", map[string]any{"f": "v"}); err != nil {
		t.Fatal(err)
	}
	// ZMF variant never saw d1.
	ids, err := iz.(spi.EqSearcher).SearchEq(ctx, "f", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("variant leakage: %v", ids)
	}
	ids, _ = i2.(spi.EqSearcher).SearchEq(ctx, "f", "v")
	if !reflect.DeepEqual(ids, []string{"d1"}) {
		t.Fatalf("2Lev lost its entry: %v", ids)
	}
}
