package biex_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"datablinder/internal/cloud/ring"
	"datablinder/internal/keys"
	"datablinder/internal/spi"
	ssebiex "datablinder/internal/sse/biex"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/biex"
	"datablinder/internal/transport"
)

// shardedInstance builds a tactic over n in-process cloud shards (n == 1
// degenerates to the unsharded loopback setup). The returned stores allow
// per-shard index inspection.
func shardedInstance(t *testing.T, reg spi.Registration, n int) (spi.Tactic, []*kvstore.Store) {
	t.Helper()
	conns := make([]transport.Conn, n)
	stores := make([]*kvstore.Store, n)
	for i := 0; i < n; i++ {
		mux := transport.NewMux()
		kv := kvstore.New()
		t.Cleanup(func() { kv.Close() })
		biex.RegisterCloud(mux, kv)
		conns[i] = transport.NewLoopback(mux)
		stores[i] = kv
	}
	var cloud transport.Conn
	if n == 1 {
		cloud = conns[0]
	} else {
		cloud = ring.NewClient(conns, 0)
	}
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := reg.Factory(spi.Binding{
		Schema: "obs", Keys: kp,
		Cloud: cloud,
		Local: kvstore.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst, stores
}

func instance(t *testing.T, reg spi.Registration) spi.Tactic {
	t.Helper()
	inst, _ := shardedInstance(t, reg, 1)
	return inst
}

func variants(t *testing.T, f func(t *testing.T, inst spi.Tactic)) {
	t.Helper()
	for _, reg := range []spi.Registration{biex.Registration2Lev(), biex.RegistrationZMF()} {
		reg := reg
		t.Run(reg.Descriptor.Name, func(t *testing.T) {
			f(t, instance(t, reg))
		})
	}
}

func seed(t *testing.T, inst spi.Tactic) {
	t.Helper()
	ctx := context.Background()
	di := inst.(spi.DocInserter)
	docs := map[string]map[string]any{
		"d1": {"status": "final", "code": "glucose"},
		"d2": {"status": "final", "code": "insulin"},
		"d3": {"status": "draft", "code": "glucose"},
	}
	for id, fields := range docs {
		if err := di.InsertDoc(ctx, id, fields); err != nil {
			t.Fatalf("InsertDoc(%s): %v", id, err)
		}
	}
}

func TestCrossFieldConjunction(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ids, err := inst.(spi.BoolSearcher).SearchBool(context.Background(), spi.BoolQuery{{
			{Field: "status", Value: "final"},
			{Field: "code", Value: "glucose"},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d1"}) {
			t.Fatalf("conjunction = %v", ids)
		}
	})
}

func TestDisjunctionAndNegation(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ctx := context.Background()
		bs := inst.(spi.BoolSearcher)

		// draft OR insulin.
		ids, err := bs.SearchBool(ctx, spi.BoolQuery{
			{{Field: "status", Value: "draft"}},
			{{Field: "code", Value: "insulin"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d2", "d3"}) {
			t.Fatalf("disjunction = %v", ids)
		}

		// glucose AND NOT final.
		ids, err = bs.SearchBool(ctx, spi.BoolQuery{{
			{Field: "code", Value: "glucose"},
			{Field: "status", Value: "final", Negated: true},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d3"}) {
			t.Fatalf("negation = %v", ids)
		}
	})
}

func TestEqualityDegeneratesToSingleKeyword(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ids, err := inst.(spi.EqSearcher).SearchEq(context.Background(), "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d1", "d3"}) {
			t.Fatalf("eq = %v", ids)
		}
	})
}

func TestDocDeleteSupersedes(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		seed(t, inst)
		ctx := context.Background()
		if err := inst.(spi.DocDeleter).DeleteDoc(ctx, "d1", nil); err != nil {
			t.Fatal(err)
		}
		ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"d3"}) {
			t.Fatalf("after delete = %v", ids)
		}
		// Re-insert with changed fields: only new keywords match.
		if err := inst.(spi.DocInserter).InsertDoc(ctx, "d1", map[string]any{
			"status": "amended", "code": "bmi",
		}); err != nil {
			t.Fatal(err)
		}
		ids, _ = inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if !reflect.DeepEqual(ids, []string{"d3"}) {
			t.Fatalf("stale keyword after update = %v", ids)
		}
		ids, _ = inst.(spi.EqSearcher).SearchEq(ctx, "code", "bmi")
		if !reflect.DeepEqual(ids, []string{"d1"}) {
			t.Fatalf("new keyword after update = %v", ids)
		}
	})
}

func TestCompactPreservesResults(t *testing.T) {
	variants(t, func(t *testing.T, inst spi.Tactic) {
		ctx := context.Background()
		di := inst.(spi.DocInserter)
		// 30 docs under one hot keyword, some deleted before compaction.
		for i := 0; i < 30; i++ {
			id := []string{"dA", "dB", "dC"}[i%3] + string(rune('0'+i/3))
			if err := di.InsertDoc(ctx, id, map[string]any{"code": "glucose"}); err != nil {
				t.Fatal(err)
			}
		}
		inst.(spi.DocDeleter).DeleteDoc(ctx, "dA0", nil)
		inst.(spi.DocDeleter).DeleteDoc(ctx, "dB3", nil)

		before, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.(*biex.Tactic).Compact(ctx, "code", "glucose"); err != nil {
			t.Fatalf("Compact: %v", err)
		}
		after, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("Compact changed results: %v -> %v", before, after)
		}
		if len(after) != 28 {
			t.Fatalf("results = %d ids, want 28", len(after))
		}
		// Inserts after compaction land in the fresh tail and still match.
		if err := di.InsertDoc(ctx, "post-compact", map[string]any{"code": "glucose"}); err != nil {
			t.Fatal(err)
		}
		final, _ := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
		if len(final) != 29 {
			t.Fatalf("post-compact insert lost: %d ids", len(final))
		}
		// Compacting an idle keyword is harmless.
		if err := inst.(*biex.Tactic).Compact(ctx, "code", "never-seen"); err != nil {
			t.Fatalf("Compact(empty): %v", err)
		}
	})
}

// shardedPair builds the same variant over 1 shard and over 3 shards and
// seeds both with identical documents.
func shardedPair(t *testing.T, reg spi.Registration, docs map[string]map[string]any) (single, sharded spi.Tactic, stores []*kvstore.Store) {
	t.Helper()
	single, _ = shardedInstance(t, reg, 1)
	sharded, stores = shardedInstance(t, reg, 3)
	ctx := context.Background()
	for id, fields := range docs {
		for _, inst := range []spi.Tactic{single, sharded} {
			if err := inst.(spi.DocInserter).InsertDoc(ctx, id, fields); err != nil {
				t.Fatalf("InsertDoc(%s): %v", id, err)
			}
		}
	}
	return single, sharded, stores
}

// shardedCorpus is sized so the enum keywords cross the spill threshold:
// 120 docs over 3 statuses put 40 inserts on each status keyword (2 spill
// buckets), so the identity battery exercises multi-bucket anchors, while
// the 4 codes (30 inserts each) and the unique seq keywords stay in
// bucket 0.
func shardedCorpus() map[string]map[string]any {
	docs := make(map[string]map[string]any, 120)
	statuses := []string{"final", "preliminary", "draft"}
	codes := []string{"glucose", "insulin", "bmi", "hr"}
	for i := 0; i < 120; i++ {
		docs[fmt.Sprintf("d%03d", i)] = map[string]any{
			"status": statuses[i%3],
			"code":   codes[i%4],
			"seq":    fmt.Sprintf("s%03d", i), // unique per doc: spreads labels
		}
	}
	return docs
}

// TestShardedMatchesSingleShard is the result-identity battery: every
// boolean query shape — conjunction, disjunction, negation, duplicate
// anchors, empty results — must return the same ids from a 3-shard ring
// as from a single node.
func TestShardedMatchesSingleShard(t *testing.T) {
	for _, reg := range []spi.Registration{biex.Registration2Lev(), biex.RegistrationZMF()} {
		reg := reg
		t.Run(reg.Descriptor.Name, func(t *testing.T) {
			single, sharded, stores := shardedPair(t, reg, shardedCorpus())
			ctx := context.Background()

			queries := map[string]spi.BoolQuery{
				"single keyword": {{{Field: "code", Value: "glucose"}}},
				"conjunction":    {{{Field: "status", Value: "final"}, {Field: "code", Value: "glucose"}}},
				"negation":       {{{Field: "status", Value: "final"}, {Field: "code", Value: "glucose", Negated: true}}},
				"disjunction": {
					{{Field: "status", Value: "draft"}},
					{{Field: "code", Value: "bmi"}},
				},
				"duplicate anchor": {{
					{Field: "status", Value: "final"},
					{Field: "status", Value: "final"},
					{Field: "code", Value: "insulin"},
				}},
				"unsatisfiable repeat": {{
					{Field: "status", Value: "final"},
					{Field: "status", Value: "final", Negated: true},
				}},
				"empty result": {{{Field: "code", Value: "never-indexed"}}},
				"empty conjunction, live disjunct": {
					{{Field: "code", Value: "never-indexed"}, {Field: "status", Value: "final"}},
					{{Field: "code", Value: "hr"}},
				},
			}
			nonEmpty := map[string]bool{
				"single keyword": true, "conjunction": true, "negation": true,
				"disjunction": true, "duplicate anchor": true,
				"empty conjunction, live disjunct": true,
			}
			for name, q := range queries {
				want, err := single.(spi.BoolSearcher).SearchBool(ctx, q)
				if err != nil {
					t.Fatalf("%s single: %v", name, err)
				}
				got, err := sharded.(spi.BoolSearcher).SearchBool(ctx, q)
				if err != nil {
					t.Fatalf("%s sharded: %v", name, err)
				}
				if nonEmpty[name] && len(want) == 0 {
					t.Fatalf("%s: single node returned no results — query exercises nothing", name)
				}
				if !nonEmpty[name] && len(want) != 0 {
					t.Fatalf("%s: expected empty, single node returned %v", name, want)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: sharded %v != single %v", name, got, want)
				}
			}

			// The index must actually be spread: with 120 unique seq keywords
			// every shard gets cells with near certainty.
			spread := 0
			for _, kv := range stores {
				st, err := kv.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if st["emm"].Keys+st["zmf"].Keys > 0 {
					spread++
				}
			}
			if spread < 2 {
				t.Errorf("index landed on %d of 3 shards — keyword routing is not spreading", spread)
			}
		})
	}
}

// TestShardedCompactPreservesResults is the Compact routing regression:
// after partitioning, each bucket's repack RPC must land on the shard
// that owns that bucket's cells, or the swap deletes nothing and inserts
// orphans. 80 docs under one keyword put it in 3 spill buckets, so the
// per-bucket sweep is exercised, not just bucket 0.
func TestShardedCompactPreservesResults(t *testing.T) {
	for _, reg := range []spi.Registration{biex.Registration2Lev(), biex.RegistrationZMF()} {
		reg := reg
		t.Run(reg.Descriptor.Name, func(t *testing.T) {
			ctx := context.Background()
			inst, _ := shardedInstance(t, reg, 3)
			di := inst.(spi.DocInserter)
			for i := 0; i < 80; i++ {
				id := fmt.Sprintf("c%02d", i)
				if err := di.InsertDoc(ctx, id, map[string]any{
					"code": "glucose",
					"seq":  fmt.Sprintf("s%02d", i),
				}); err != nil {
					t.Fatal(err)
				}
			}
			inst.(spi.DocDeleter).DeleteDoc(ctx, "c03", nil)
			inst.(spi.DocDeleter).DeleteDoc(ctx, "c71", nil) // one delete per end bucket

			before, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
			if err != nil {
				t.Fatal(err)
			}
			if len(before) != 78 {
				t.Fatalf("pre-compact results = %d ids, want 78", len(before))
			}
			if err := inst.(*biex.Tactic).Compact(ctx, "code", "glucose"); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			after, err := inst.(spi.EqSearcher).SearchEq(ctx, "code", "glucose")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("Compact on 3 shards changed results: %v -> %v", before, after)
			}
			// Conjunctions spanning the compacted keyword still refine.
			ids, err := inst.(spi.BoolSearcher).SearchBool(ctx, spi.BoolQuery{{
				{Field: "code", Value: "glucose"},
				{Field: "seq", Value: "s05"},
			}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids, []string{"c05"}) {
				t.Fatalf("post-compact conjunction = %v", ids)
			}
		})
	}
}

// TestNegatedOnlyConjunctionRejected asserts ErrNoPositiveLiteral
// surfaces identically regardless of ring size. The engine's planner
// never sends such a query (it falls back to plaintext filtering), so the
// tactic API is exercised directly.
func TestNegatedOnlyConjunctionRejected(t *testing.T) {
	for _, reg := range []spi.Registration{biex.Registration2Lev(), biex.RegistrationZMF()} {
		for _, n := range []int{1, 3} {
			reg, n := reg, n
			t.Run(fmt.Sprintf("%s/%d-shard", reg.Descriptor.Name, n), func(t *testing.T) {
				inst, _ := shardedInstance(t, reg, n)
				_, err := inst.(spi.BoolSearcher).SearchBool(context.Background(), spi.BoolQuery{{
					{Field: "status", Value: "final", Negated: true},
				}})
				if !errors.Is(err, ssebiex.ErrNoPositiveLiteral) {
					t.Fatalf("negated-only conjunction: err = %v, want ErrNoPositiveLiteral", err)
				}
			})
		}
	}
}

// failingConn fails the n-th biex insert RPC observed across all wrapped
// connections, making partial-failure deterministic regardless of which
// shards a document's batches land on.
type failingConn struct {
	transport.Conn
	counter *atomic.Int64
	failAt  int64
}

func (f *failingConn) Call(ctx context.Context, service, method string, args, reply any) error {
	if service == biex.Service && method == "insert" {
		if f.counter.Add(1) == f.failAt {
			return errors.New("injected shard failure")
		}
	}
	return f.Conn.Call(ctx, service, method, args, reply)
}

// TestInsertCompensatesOnPartialFailure: when one shard's insert batch
// fails, the gateway supersedes the version it just indexed, so the
// surviving shards' cells can never surface the document.
func TestInsertCompensatesOnPartialFailure(t *testing.T) {
	for _, reg := range []spi.Registration{biex.Registration2Lev(), biex.RegistrationZMF()} {
		reg := reg
		t.Run(reg.Descriptor.Name, func(t *testing.T) {
			ctx := context.Background()
			var counter atomic.Int64
			conns := make([]transport.Conn, 3)
			for i := range conns {
				mux := transport.NewMux()
				kv := kvstore.New()
				t.Cleanup(func() { kv.Close() })
				biex.RegisterCloud(mux, kv)
				conns[i] = &failingConn{Conn: transport.NewLoopback(mux), counter: &counter, failAt: 1}
			}
			kp, err := keys.NewRandomStore()
			if err != nil {
				t.Fatal(err)
			}
			inst, err := reg.Factory(spi.Binding{
				Schema: "obs", Keys: kp,
				Cloud: ring.NewClient(conns, 0),
				Local: kvstore.New(),
			})
			if err != nil {
				t.Fatal(err)
			}

			// First insert: the very first batch RPC fails; the others (if
			// any) may have landed. The call must report the failure...
			fields := map[string]any{"status": "final", "code": "glucose", "seq": "s00"}
			if err := inst.(spi.DocInserter).InsertDoc(ctx, "doomed", fields); err == nil {
				t.Fatal("InsertDoc with failing shard: want error, got nil")
			}
			// ...and the partially indexed document must never surface.
			for _, kw := range []string{"final", "glucose"} {
				field := map[string]string{"final": "status", "glucose": "code"}[kw]
				ids, err := inst.(spi.EqSearcher).SearchEq(ctx, field, kw)
				if err != nil {
					t.Fatalf("SearchEq(%s): %v", kw, err)
				}
				if len(ids) != 0 {
					t.Fatalf("partially inserted doc surfaced under %s=%s: %v", field, kw, ids)
				}
			}
			// Retrying the insert succeeds (no further injected failures) and
			// the document becomes fully searchable under a fresh version.
			if err := inst.(spi.DocInserter).InsertDoc(ctx, "doomed", fields); err != nil {
				t.Fatalf("retry InsertDoc: %v", err)
			}
			ids, err := inst.(spi.BoolSearcher).SearchBool(ctx, spi.BoolQuery{{
				{Field: "status", Value: "final"},
				{Field: "code", Value: "glucose"},
			}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids, []string{"doomed"}) {
				t.Fatalf("after retry = %v", ids)
			}
		})
	}
}

func TestVariantsShareCloudWithoutInterference(t *testing.T) {
	// Both variants on the same schema and cloud store must not collide
	// (distinct namespaces + distinct derived keys).
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	biex.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	binding := spi.Binding{Schema: "obs", Keys: kp, Cloud: transport.NewLoopback(mux), Local: kvstore.New()}
	i2, err := biex.Registration2Lev().Factory(binding)
	if err != nil {
		t.Fatal(err)
	}
	iz, err := biex.RegistrationZMF().Factory(binding)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := i2.(spi.DocInserter).InsertDoc(ctx, "d1", map[string]any{"f": "v"}); err != nil {
		t.Fatal(err)
	}
	// ZMF variant never saw d1.
	ids, err := iz.(spi.EqSearcher).SearchEq(ctx, "f", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("variant leakage: %v", ids)
	}
	ids, _ = i2.(spi.EqSearcher).SearchEq(ctx, "f", "v")
	if !reflect.DeepEqual(ids, []string{"d1"}) {
		t.Fatalf("2Lev lost its entry: %v", ids)
	}
}
