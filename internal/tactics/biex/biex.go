// Package biex implements the two boolean-search tactics of the paper's
// Table 2 — BIEX-2Lev and BIEX-ZMF (protection class 3, Predicates
// leakage, adapted from the Clusion constructions; challenge: "Storage
// impl. complexity").
//
// Both variants share the gateway logic; they differ in the cross-keyword
// structure (pair multimap vs matryoshka filters), which is also the
// read-efficiency/space trade-off the benchmarks contrast. The tactic
// spans every boolean-annotated field of a schema: it implements the
// doc-level SPI (DocInserter/DocDeleter) so cross-field keyword pairs form
// at insertion time, plus single-keyword equality as a degenerate boolean
// query.
package biex

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"datablinder/internal/cloud/ring"
	"datablinder/internal/conc"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	ssebiex "datablinder/internal/sse/biex"
	"datablinder/internal/sse/emm"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Tactic registry names.
const (
	Name2Lev = "BIEX-2Lev"
	NameZMF  = "BIEX-ZMF"
)

// Service is the cloud RPC service name (both variants share it; payload
// namespaces disambiguate).
const Service = "biex"

// RPC payloads.
type (
	// InsertArgs delivers a client update batch.
	InsertArgs struct {
		Namespace string          `json:"namespace"`
		Entries   ssebiex.Entries `json:"entries"`
	}
	// SearchArgs carries a compiled DNF token.
	SearchArgs struct {
		Namespace string              `json:"namespace"`
		Token     ssebiex.SearchToken `json:"token"`
	}
	// SearchReply returns versioned index ids.
	SearchReply struct {
		IDs []string `json:"ids"`
	}
	// RepackArgs replaces a keyword's global-multimap cells with packed
	// buckets (the 2Lev static build, run as maintenance).
	RepackArgs struct {
		Namespace string      `json:"namespace"`
		Stale     [][]byte    `json:"stale"`
		Entries   []emm.Entry `json:"entries"`
	}
)

func describe(name string, variant ssebiex.Variant) spi.Descriptor {
	perf := model.PerfMetrics{
		Complexity:          "sub-linear: anchor list + per-constraint refinement",
		RoundTrips:          1,
		ClientStorage:       "EMM counters + per-doc versions",
		ServerStorageFactor: 4.0, // pair multimap dominates
		Costs: map[model.Op]model.CostPrior{
			// Inserts replicate pair cells across the cross-structure;
			// boolean queries resolve on the anchor's buckets.
			model.OpInsert:   {Fixed: 120},
			model.OpEquality: {Fixed: 80},
			model.OpBoolean:  {Fixed: 150},
			model.OpDelete:   {Fixed: 120},
		},
	}
	challenge := "Storage impl. complexity"
	if variant == ssebiex.VariantZMF {
		perf.ServerStorageFactor = 1.6
		perf.Complexity = "sub-linear: anchor list + filter probes (bounded false positives)"
		perf.Costs = map[model.Op]model.CostPrior{
			// ZMF trades storage for filter-probe work at both ends.
			model.OpInsert:   {Fixed: 200},
			model.OpEquality: {Fixed: 120},
			model.OpBoolean:  {Fixed: 250},
			model.OpDelete:   {Fixed: 200},
		}
	}
	return spi.Descriptor{
		Name:      name,
		Operation: "Boolean Search",
		Class:     model.Class3,
		Leakage:   model.LeakPredicates,
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakStructure, Note: "updates land in fresh PRF-addressed cells"},
			{Op: model.OpEquality, Leakage: model.LeakIdentifiers, Note: "single-keyword query reveals the access pattern"},
			{Op: model.OpBoolean, Leakage: model.LeakPredicates, Note: "query shape and partial intersection sizes leak"},
		},
		Ops: []model.Op{model.OpInsert, model.OpDelete, model.OpEquality, model.OpBoolean},
		GatewayInterfaces: []string{
			"Setup", "Insertion", "DocIDGen", "SecureEnc", "Deletion",
			"BoolQuery", "BoolResolution", "EqQuery",
		},
		CloudInterfaces: []string{
			"Setup", "Insertion", "Deletion", "BoolQuery", "EqQuery",
		},
		Perf:      perf,
		Challenge: challenge,
		Origin:    spi.OriginAdapted,
	}
}

// Tactic is the gateway half of either variant. The index partitions by
// keyword: every cell routes to the ring shard owning its (anchor)
// keyword's current spill-bucket label, with cross-structure state
// replicated so a conjunction resolves entirely on its anchor's bucket
// shards. Inserts, DNF searches, and per-bucket maintenance (Compact)
// all fan out to the owning shards in parallel; hot keywords spread over
// several shards in SpillThreshold-sized bucket slices while the long
// tail keeps single-shard resolution.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring
	name    string
	variant ssebiex.Variant
	client  *ssebiex.Client
	ns      string
}

func newTactic(name string, variant ssebiex.Variant) spi.Factory {
	return func(b spi.Binding) (spi.Tactic, error) {
		root, err := b.Keys.Key(keys.Ref{Schema: b.Schema, Field: "*", Tactic: name, Purpose: "root"})
		if err != nil {
			return nil, err
		}
		client, err := ssebiex.NewClient(root, ssebiex.NewKVState(b.Local), variant)
		if err != nil {
			return nil, err
		}
		return &Tactic{
			binding: b,
			shards:  ring.Of(b.Cloud),
			name:    name,
			variant: variant,
			client:  client,
			// Distinct namespaces keep the two variants' indexes and
			// version counters apart when both serve the same schema.
			ns: b.Schema + "|" + string(variant),
		}, nil
	}
}

// Registration2Lev registers the pair-multimap variant.
func Registration2Lev() spi.Registration {
	return spi.Registration{Descriptor: describe(Name2Lev, ssebiex.Variant2Lev), Factory: newTactic(Name2Lev, ssebiex.Variant2Lev)}
}

// RegistrationZMF registers the matryoshka-filter variant.
func RegistrationZMF() spi.Registration {
	return spi.Registration{Descriptor: describe(NameZMF, ssebiex.VariantZMF), Factory: newTactic(NameZMF, ssebiex.VariantZMF)}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return describe(t.name, t.variant) }

// Setup implements spi.Tactic.
func (t *Tactic) Setup(context.Context) error { return nil }

func keyword(field string, value any) string {
	return field + "=" + model.ValueToString(value)
}

// InsertDoc implements spi.DocInserter. The client groups the document's
// index entries by owning shard; the batches ship in parallel. A partial
// failure is compensated the way the engine compensates a failed document
// insert — by superseding, not rolling back: Delete bumps the version
// past the one the surviving batches indexed, so their cells resolve to a
// stale version and drop out at resolution time. Rolling the version
// counter back instead would let a later insert re-issue the same
// versioned id and resurrect the orphaned cells.
func (t *Tactic) InsertDoc(ctx context.Context, docID string, fields map[string]any) error {
	kws := make([]string, 0, len(fields))
	for f, v := range fields {
		kws = append(kws, keyword(f, v))
	}
	groups, err := t.client.Insert(t.ns, docID, kws, t.shards.Shard)
	if err != nil {
		return err
	}
	targets := make([]int, 0, len(groups))
	for s := range groups {
		targets = append(targets, s)
	}
	sort.Ints(targets)
	err = conc.ForEach(ctx, len(targets), 0, func(gctx context.Context, i int) error {
		s := targets[i]
		return t.shards.Conn(s).Call(gctx, Service, "insert",
			InsertArgs{Namespace: t.ns, Entries: *groups[s]}, nil)
	})
	if err != nil {
		if derr := t.client.Delete(t.ns, docID); derr != nil {
			return fmt.Errorf("biex: insert failed (%w) and compensation failed: %v", err, derr)
		}
		return fmt.Errorf("biex: insert failed, index entries superseded: %w", err)
	}
	return nil
}

// DeleteDoc implements spi.DocDeleter. Deletion is local: the document's
// index version is superseded.
func (t *Tactic) DeleteDoc(_ context.Context, docID string, _ map[string]any) error {
	return t.client.Delete(t.ns, docID)
}

// SearchBool implements spi.BoolSearcher.
func (t *Tactic) SearchBool(ctx context.Context, q spi.BoolQuery) ([]string, error) {
	query := make(ssebiex.Query, 0, len(q))
	for _, conj := range q {
		lits := make([]ssebiex.Literal, 0, len(conj))
		for _, l := range conj {
			lits = append(lits, ssebiex.Literal{Keyword: keyword(l.Field, l.Value), Negated: l.Negated})
		}
		query = append(query, lits)
	}
	tok, err := t.client.Token(t.ns, query)
	if err != nil {
		return nil, err
	}
	// Every conjunction resolves on the shard owning its anchor keyword;
	// distinct anchors fan out in parallel and the union merges here. The
	// token may compile to nothing (all conjunctions unsatisfiable).
	if len(tok.Conjunctions) == 0 {
		return t.client.Resolve(t.ns, nil)
	}
	groups := ring.GroupByShard(t.shards, tok.Conjunctions,
		func(ct ssebiex.ConjToken) string { return ct.Route })
	targets := make([]int, 0, len(groups))
	for s := range groups {
		targets = append(targets, s)
	}
	sort.Ints(targets)
	perShard := make([][]string, len(targets))
	err = conc.ForEach(ctx, len(targets), 0, func(gctx context.Context, i int) error {
		s := targets[i]
		var reply SearchReply
		if err := t.shards.Conn(s).Call(gctx, Service, "search",
			SearchArgs{Namespace: t.ns, Token: ssebiex.SearchToken{Conjunctions: groups[s]}}, &reply); err != nil {
			return err
		}
		perShard[i] = reply.IDs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t.client.Resolve(t.ns, ring.MergeSorted(perShard))
}

// SearchEq implements spi.EqSearcher as a single-keyword boolean query.
func (t *Tactic) SearchEq(ctx context.Context, field string, value any) ([]string, error) {
	return t.SearchBool(ctx, spi.BoolQuery{{{Field: field, Value: value}}})
}

// Compact repacks one keyword's global-multimap lists into 2Lev packed
// buckets: it searches the current cells, drops superseded versions,
// seals the survivors into fixed-capacity buckets, and atomically swaps
// them in cloud-side. Search cost for the keyword drops from one cell
// fetch per update to one per BucketCapacity ids. Run it as maintenance
// on hot keywords (the paper's static 2Lev build, amortized).
//
// Compaction works one spill bucket at a time: each bucket's search and
// repack land on the shard owning that bucket's routing label — the same
// key insertion used to place its cells — so the packed cells stay
// co-located with the bucket's pair replicas and filters. Buckets repack
// in parallel; they share no state.
func (t *Tactic) Compact(ctx context.Context, field string, value any) error {
	w := keyword(field, value)
	buckets, err := t.client.Buckets(t.ns, w)
	if err != nil {
		return err
	}
	return conc.ForEach(ctx, buckets, 0, func(gctx context.Context, b int) error {
		tok, err := t.client.BucketToken(t.ns, w, uint64(b))
		if err != nil {
			return err
		}
		route := t.client.BucketRoute(t.ns, w, uint64(b))
		var reply SearchReply
		if err := t.shards.Call(gctx, route, Service, "search",
			SearchArgs{Namespace: t.ns, Token: tok}, &reply); err != nil {
			return err
		}
		live, err := t.client.LiveVersioned(t.ns, reply.IDs)
		if err != nil {
			return err
		}
		entries, stale, err := t.client.RepackGlobal(t.ns, w, uint64(b), live)
		if err != nil {
			return err
		}
		return t.shards.Call(gctx, route, Service, "repack",
			RepackArgs{Namespace: t.ns, Stale: stale, Entries: entries}, nil)
	})
}

// RegisterCloud installs the cloud half on mux, backed by store. Both
// variants share the handlers; the namespace in each payload selects the
// index.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	// Server handles are cached per namespace: the ZMF counting filters
	// inside carry a mutex that must serialize concurrent updates.
	var mu sync.Mutex
	servers := make(map[string]*ssebiex.Server)
	server := func(ns string) *ssebiex.Server {
		mu.Lock()
		defer mu.Unlock()
		s, ok := servers[ns]
		if !ok {
			s = ssebiex.NewServer(store, ns)
			servers[ns] = s
		}
		return s
	}
	transport.HandleTyped(mux, Service, "insert", func(_ context.Context, in *InsertArgs) (any, error) {
		return nil, server(in.Namespace).Insert(in.Entries)
	})
	transport.HandleTyped(mux, Service, "search", func(_ context.Context, in *SearchArgs) (any, error) {
		ids, err := server(in.Namespace).Search(in.Token)
		if err != nil {
			return nil, err
		}
		return &SearchReply{IDs: ids}, nil
	})
	transport.HandleTyped(mux, Service, "repack", func(_ context.Context, in *RepackArgs) (any, error) {
		return nil, server(in.Namespace).RepackGlobal(in.Stale, in.Entries)
	})
}

var (
	_ spi.DocInserter  = (*Tactic)(nil)
	_ spi.DocDeleter   = (*Tactic)(nil)
	_ spi.BoolSearcher = (*Tactic)(nil)
	_ spi.EqSearcher   = (*Tactic)(nil)
)
