package paillier_test

import (
	"context"
	"math"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/paillier"
	"datablinder/internal/transport"
)

type env struct {
	binding spi.Binding
	cloudKV *kvstore.Store
}

func newEnv(t *testing.T) env {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	paillier.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	local := kvstore.New()
	t.Cleanup(func() { local.Close() })
	return env{
		binding: spi.Binding{Schema: "obs", Keys: kp, Cloud: transport.NewLoopback(mux), Local: local},
		cloudKV: cloudKV,
	}
}

func instance(t *testing.T, e env) spi.Tactic {
	t.Helper()
	inst, err := paillier.New(e.binding)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Setup(context.Background()); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return inst
}

func TestSumAndAverage(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	agg := inst.(spi.Aggregator)

	values := map[string]float64{"d1": 6.3, "d2": 5.1, "d3": 7.9}
	var ids []string
	var sum float64
	for id, v := range values {
		if err := ins.Insert(ctx, "value", id, v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		sum += v
	}
	got, err := agg.Aggregate(ctx, "value", model.AggSum, ids)
	if err != nil {
		t.Fatalf("sum: %v", err)
	}
	if math.Abs(got-sum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, sum)
	}
	got, err = agg.Aggregate(ctx, "value", model.AggAvg, ids)
	if err != nil {
		t.Fatalf("avg: %v", err)
	}
	if math.Abs(got-sum/3) > 1e-6 {
		t.Fatalf("avg = %g, want %g", got, sum/3)
	}
}

func TestNegativeAndIntValues(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	if err := ins.Insert(ctx, "v", "d1", int64(-50)); err != nil {
		t.Fatal(err)
	}
	if err := ins.Insert(ctx, "v", "d2", 30); err != nil {
		t.Fatal(err)
	}
	got, err := inst.(spi.Aggregator).Aggregate(ctx, "v", model.AggSum, []string{"d1", "d2"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-20)) > 1e-6 {
		t.Fatalf("sum = %g, want -20", got)
	}
}

func TestMissingDocsSkipped(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	ctx := context.Background()
	if err := inst.(spi.Inserter).Insert(ctx, "v", "d1", 10.0); err != nil {
		t.Fatal(err)
	}
	// d2 never inserted: the average must divide by the count of present
	// ciphertexts, not the requested ids.
	got, err := inst.(spi.Aggregator).Aggregate(ctx, "v", model.AggAvg, []string{"d1", "d2", "d3"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-6 {
		t.Fatalf("avg with misses = %g, want 10", got)
	}
}

func TestEmptyAggregate(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	got, err := inst.(spi.Aggregator).Aggregate(context.Background(), "v", model.AggSum, nil)
	if err != nil || got != 0 {
		t.Fatalf("empty sum = %g, %v", got, err)
	}
}

func TestDeleteRemovesCiphertext(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	ctx := context.Background()
	inst.(spi.Inserter).Insert(ctx, "v", "d1", 10.0)
	inst.(spi.Inserter).Insert(ctx, "v", "d2", 20.0)
	if err := inst.(spi.Deleter).Delete(ctx, "v", "d1", nil); err != nil {
		t.Fatal(err)
	}
	got, err := inst.(spi.Aggregator).Aggregate(ctx, "v", model.AggSum, []string{"d1", "d2"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-6 {
		t.Fatalf("sum after delete = %g", got)
	}
}

func TestKeyPersistsAcrossInstances(t *testing.T) {
	// A restarted gateway must decrypt sums over ciphertexts produced by
	// the previous instance (the Paillier key is persisted locally).
	e := newEnv(t)
	ctx := context.Background()
	inst1 := instance(t, e)
	if err := inst1.(spi.Inserter).Insert(ctx, "v", "d1", 42.0); err != nil {
		t.Fatal(err)
	}
	inst2 := instance(t, e)
	got, err := inst2.(spi.Aggregator).Aggregate(ctx, "v", model.AggSum, []string{"d1"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-42) > 1e-6 {
		t.Fatalf("sum across restart = %g", got)
	}
}

func TestRejectsNonNumeric(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	if err := inst.(spi.Inserter).Insert(context.Background(), "v", "d1", "not a number"); err == nil {
		t.Fatal("string value accepted")
	}
}

func TestSetupRequired(t *testing.T) {
	e := newEnv(t)
	inst, err := paillier.New(e.binding)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.(spi.Inserter).Insert(context.Background(), "v", "d1", 1.0); err == nil {
		t.Fatal("Insert before Setup succeeded")
	}
}

func TestFixedPointPrecision(t *testing.T) {
	e := newEnv(t)
	inst := instance(t, e)
	ctx := context.Background()
	// Six decimal places survive the fixed-point encoding.
	inst.(spi.Inserter).Insert(ctx, "v", "d1", 0.000001)
	inst.(spi.Inserter).Insert(ctx, "v", "d2", 0.000002)
	got, err := inst.(spi.Aggregator).Aggregate(ctx, "v", model.AggSum, []string{"d1", "d2"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.000003) > 1e-9 {
		t.Fatalf("precision lost: %g", got)
	}
}
