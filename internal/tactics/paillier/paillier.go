// Package paillier implements the Sum and Average aggregate tactics over
// the Paillier partially homomorphic cryptosystem (paper Table 2 — no
// protection class or leakage row, because the ciphertext column is never
// searched; challenge: "Key management"; adapted from the Javallier-style
// integration).
//
// Each numeric field value is encrypted under the gateway's Paillier
// public key and shipped to the cloud. Aggregation multiplies ciphertexts
// cloud-side (homomorphic addition); only the final sum travels back and
// is decrypted at the gateway, which also divides by the count for
// averages (the AggFunctionResolution interface).
package paillier

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"sync"

	"datablinder/internal/cloud/ring"
	cryptopaillier "datablinder/internal/crypto/paillier"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Name is the tactic's registry name.
const Name = "Paillier"

// Service is the cloud RPC service name.
const Service = "agg"

// KeyBits is the Paillier modulus size. 1024 bits keeps the ~50k-call
// benchmark workloads tractable while exercising the full protocol; raise
// to 2048+ for production deployments.
const KeyBits = 1024

// randPoolSize is how many precomputed encryption masks the gateway keeps
// ready; inserts draw one mask per encrypted value. The cloud side keeps a
// smaller pool since it only encrypts the zero accumulator per sum request.
const (
	randPoolSize      = 128
	cloudRandPoolSize = 16
)

// RPC payloads.
type (
	// SetupArgs ships the Paillier public key (modulus) to the cloud.
	SetupArgs struct {
		Schema string `json:"schema"`
		N      []byte `json:"n"`
	}
	// PutArgs stores a field ciphertext for a document.
	PutArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		DocID  string `json:"doc_id"`
		CT     []byte `json:"ct"`
	}
	// RemoveArgs drops a document's field ciphertext.
	RemoveArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		DocID  string `json:"doc_id"`
	}
	// SumArgs requests the homomorphic sum over the given documents.
	SumArgs struct {
		Schema string   `json:"schema"`
		Field  string   `json:"field"`
		DocIDs []string `json:"doc_ids"`
	}
	// SumReply returns the encrypted sum and how many ciphertexts
	// contributed (documents lacking the field are skipped).
	SumReply struct {
		CT    []byte `json:"ct"`
		Count int    `json:"count"`
	}
)

// serializedKey is the gateway-store representation of the private key.
type serializedKey struct {
	N      []byte `json:"n"`
	Lambda []byte `json:"lambda"`
	Mu     []byte `json:"mu"`
}

// Describe returns the tactic's static descriptor. Class and Leakage are
// zero: Table 2 marks them "-" — the aggregate column is never queried by
// value.
func Describe() spi.Descriptor {
	return spi.Descriptor{
		Name:      Name,
		Operation: "Sum / Average",
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakStructure, Note: "probabilistic ciphertexts; only column size leaks"},
		},
		Ops:               []model.Op{model.OpInsert, model.OpDelete},
		Aggs:              []model.Agg{model.AggSum, model.AggAvg},
		NumericOnly:       true,
		GatewayInterfaces: []string{"Setup", "Insertion", "AggFunctionResolution"},
		CloudInterfaces:   []string{"Setup", "Insertion", "AggFunction"},
		Perf: model.PerfMetrics{
			Complexity:          "O(n) modular multiplications cloud-side; one decryption gateway-side",
			RoundTrips:          1,
			ClientStorage:       "Paillier private key",
			ServerStorageFactor: 8.0, // 2048-bit ciphertexts per numeric value
			Costs: map[model.Op]model.CostPrior{
				// A 2048-bit modular exponentiation per insert dominates.
				model.OpInsert: {Fixed: 2000},
				model.OpDelete: {Fixed: 100},
			},
		},
		Challenge: "Key management",
		Origin:    spi.OriginAdapted,
	}
}

// Tactic is the gateway half.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring

	mu sync.Mutex
	sk *cryptopaillier.PrivateKey
}

// New constructs the gateway half. Call Setup before use.
func New(b spi.Binding) (spi.Tactic, error) {
	return &Tactic{binding: b, shards: ring.Of(b.Cloud)}, nil
}

// route places one document's aggregate ciphertexts on a shard; sums split
// the id set by the same key and combine per-shard partial sums
// homomorphically at the gateway — losslessly, since Paillier addition is
// associative.
func (t *Tactic) route(docID string) string {
	return "agg/" + t.binding.Schema + "/" + docID
}

// Registration couples descriptor and factory for the registry.
func Registration() spi.Registration {
	return spi.Registration{Descriptor: Describe(), Factory: New}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return Describe() }

func (t *Tactic) skKey() []byte { return []byte("paillierkey/" + t.binding.Schema) }

// Setup implements spi.Tactic: load or generate the key pair, persist it,
// and register the public key with the cloud. Idempotent.
func (t *Tactic) Setup(ctx context.Context) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sk != nil {
		return nil
	}
	raw, ok, err := t.binding.Local.Get(t.skKey())
	if err != nil {
		return fmt.Errorf("paillier: loading key: %w", err)
	}
	var sk *cryptopaillier.PrivateKey
	if ok {
		var ser serializedKey
		if err := json.Unmarshal(raw, &ser); err != nil {
			return fmt.Errorf("paillier: decoding stored key: %w", err)
		}
		n := new(big.Int).SetBytes(ser.N)
		sk = &cryptopaillier.PrivateKey{
			PublicKey: cryptopaillier.PublicKey{
				N:  n,
				G:  new(big.Int).Add(n, big.NewInt(1)),
				N2: new(big.Int).Mul(n, n),
			},
			Lambda: new(big.Int).SetBytes(ser.Lambda),
			Mu:     new(big.Int).SetBytes(ser.Mu),
		}
	} else {
		sk, err = cryptopaillier.GenerateKey(KeyBits)
		if err != nil {
			return err
		}
		ser, err := json.Marshal(serializedKey{
			N: sk.N.Bytes(), Lambda: sk.Lambda.Bytes(), Mu: sk.Mu.Bytes(),
		})
		if err != nil {
			return err
		}
		if err := t.binding.Local.Set(t.skKey(), ser); err != nil {
			return fmt.Errorf("paillier: persisting key: %w", err)
		}
	}
	// Every shard holds a slice of the ciphertext column and computes
	// partial sums, so each needs the public key.
	if err := t.shards.Broadcast(ctx, Service, "setup",
		SetupArgs{Schema: t.binding.Schema, N: sk.PublicKey.Bytes()}); err != nil {
		return fmt.Errorf("paillier: registering public key: %w", err)
	}
	sk.EnableRandPool(randPoolSize)
	t.sk = sk
	return nil
}

func (t *Tactic) key() (*cryptopaillier.PrivateKey, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sk == nil {
		return nil, fmt.Errorf("paillier: Setup has not run")
	}
	return t.sk, nil
}

// Insert implements spi.Inserter.
func (t *Tactic) Insert(ctx context.Context, field, docID string, value any) error {
	sk, err := t.key()
	if err != nil {
		return err
	}
	var ft model.FieldType
	switch value.(type) {
	case int, int64:
		ft = model.TypeInt
	case float64:
		ft = model.TypeFloat
	default:
		return fmt.Errorf("paillier: value %v (%T) is not numeric", value, value)
	}
	fp, err := model.ToFixedPoint(value, ft)
	if err != nil {
		return err
	}
	ct, err := sk.EncryptInt64(fp)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(docID), Service, "put",
		PutArgs{Schema: t.binding.Schema, Field: field, DocID: docID, CT: ct.Bytes()}, nil)
}

// Delete implements spi.Deleter.
func (t *Tactic) Delete(ctx context.Context, field, docID string, _ any) error {
	return t.shards.Call(ctx, t.route(docID), Service, "remove",
		RemoveArgs{Schema: t.binding.Schema, Field: field, DocID: docID}, nil)
}

// Aggregate implements spi.Aggregator for sum and avg.
func (t *Tactic) Aggregate(ctx context.Context, field string, agg model.Agg, docIDs []string) (float64, error) {
	sk, err := t.key()
	if err != nil {
		return 0, err
	}
	if len(docIDs) == 0 {
		return 0, nil
	}
	ct, count, err := t.partialSums(ctx, field, docIDs, sk)
	if err != nil {
		return 0, err
	}
	total, err := sk.DecryptInt64(ct)
	if err != nil {
		return 0, err
	}
	sum := model.FromFixedPoint(total)
	switch agg {
	case model.AggSum:
		return sum, nil
	case model.AggAvg:
		if count == 0 {
			return 0, nil
		}
		return sum / float64(count), nil
	default:
		return 0, fmt.Errorf("paillier: unsupported aggregate %q", string(agg))
	}
}

// partialSums computes the encrypted sum over docIDs. On a sharded ring the
// id set splits by owning shard, each shard sums its slice homomorphically,
// and the partial sums combine gateway-side with one Paillier addition per
// shard — the result is bit-for-bit a valid encryption of the total, so
// sharding loses nothing.
func (t *Tactic) partialSums(ctx context.Context, field string, docIDs []string, sk *cryptopaillier.PrivateKey) (*cryptopaillier.Ciphertext, int, error) {
	if t.shards.N() == 1 {
		var reply SumReply
		if err := t.shards.Conn(0).Call(ctx, Service, "sum",
			SumArgs{Schema: t.binding.Schema, Field: field, DocIDs: docIDs}, &reply); err != nil {
			return nil, 0, err
		}
		ct, err := cryptopaillier.CiphertextFromBytes(&sk.PublicKey, reply.CT)
		if err != nil {
			return nil, 0, err
		}
		return ct, reply.Count, nil
	}
	routes := make([]string, len(docIDs))
	for i, id := range docIDs {
		routes[i] = t.route(id)
	}
	groups := t.shards.Split(routes)
	replies := make([]*SumReply, t.shards.N())
	err := t.shards.Each(ctx, func(gctx context.Context, shard int, conn transport.Conn) error {
		idx := groups[shard]
		if len(idx) == 0 {
			return nil
		}
		sub := make([]string, len(idx))
		for j, i := range idx {
			sub[j] = docIDs[i]
		}
		var reply SumReply
		if err := conn.Call(gctx, Service, "sum",
			SumArgs{Schema: t.binding.Schema, Field: field, DocIDs: sub}, &reply); err != nil {
			return err
		}
		replies[shard] = &reply
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	var acc *cryptopaillier.Ciphertext
	count := 0
	for _, reply := range replies {
		if reply == nil {
			continue
		}
		ct, err := cryptopaillier.CiphertextFromBytes(&sk.PublicKey, reply.CT)
		if err != nil {
			return nil, 0, err
		}
		if acc == nil {
			acc = ct
		} else {
			acc, err = cryptopaillier.Add(acc, ct)
			if err != nil {
				return nil, 0, err
			}
		}
		count += reply.Count
	}
	if acc == nil {
		// Every shard group was empty — cannot happen with len(docIDs) > 0,
		// but fail safe with an encryption of zero.
		acc, err = sk.PublicKey.EncryptZero()
		if err != nil {
			return nil, 0, err
		}
	}
	return acc, count, nil
}

// RegisterCloud installs the cloud half on mux, backed by store.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	pkKey := func(schema string) []byte { return []byte("aggpk/" + schema) }
	colKey := func(schema, field string) []byte {
		return []byte(fmt.Sprintf("aggidx/%s/%s", schema, field))
	}
	// Parsing a public key recomputes n², so cache the parsed key (with an
	// attached mask pool) per schema instead of rebuilding it per request.
	var pkMu sync.Mutex
	pkCache := make(map[string]*cryptopaillier.PublicKey)
	cachedPK := func(schema string, nBytes []byte) (*cryptopaillier.PublicKey, error) {
		pkMu.Lock()
		defer pkMu.Unlock()
		if pk, ok := pkCache[schema]; ok && bytes.Equal(pk.Bytes(), nBytes) {
			return pk, nil
		}
		pk, err := cryptopaillier.PublicKeyFromN(nBytes)
		if err != nil {
			return nil, err
		}
		pk.EnableRandPool(cloudRandPoolSize)
		pkCache[schema] = pk
		return pk, nil
	}
	transport.HandleTyped(mux, Service, "setup", func(_ context.Context, in *SetupArgs) (any, error) {
		return nil, store.Set(pkKey(in.Schema), in.N)
	})
	transport.HandleTyped(mux, Service, "put", func(_ context.Context, in *PutArgs) (any, error) {
		return nil, store.HSet(colKey(in.Schema, in.Field), []byte(in.DocID), in.CT)
	})
	transport.HandleTyped(mux, Service, "remove", func(_ context.Context, in *RemoveArgs) (any, error) {
		return nil, store.HDel(colKey(in.Schema, in.Field), []byte(in.DocID))
	})
	transport.HandleTyped(mux, Service, "sum", func(_ context.Context, in *SumArgs) (any, error) {
		nBytes, ok, err := store.Get(pkKey(in.Schema))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("paillier: schema %q has no registered public key", in.Schema)
		}
		pk, err := cachedPK(in.Schema, nBytes)
		if err != nil {
			return nil, err
		}
		acc, err := pk.EncryptZero()
		if err != nil {
			return nil, err
		}
		count := 0
		for _, docID := range in.DocIDs {
			raw, ok, err := store.HGet(colKey(in.Schema, in.Field), []byte(docID))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue // document lacks this field
			}
			ct, err := cryptopaillier.CiphertextFromBytes(pk, raw)
			if err != nil {
				return nil, err
			}
			acc, err = cryptopaillier.Add(acc, ct)
			if err != nil {
				return nil, err
			}
			count++
		}
		return &SumReply{CT: acc.Bytes(), Count: count}, nil
	})
}

var (
	_ spi.Inserter   = (*Tactic)(nil)
	_ spi.Deleter    = (*Tactic)(nil)
	_ spi.Aggregator = (*Tactic)(nil)
)
