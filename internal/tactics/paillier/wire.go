// Typed wire codecs (codec v2) for the Paillier aggregation tactic:
// ~256-byte ciphertexts ride as raw bytes instead of base64 JSON. The
// setup RPC (public key, once per schema) stays JSON.

package paillier

import (
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func init() {
	transport.RegisterCodec(Service, "put", transport.WriteCodec(
		func(b []byte, a *PutArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendString(b, a.Field)
			b = wirefmt.AppendString(b, a.DocID)
			return wirefmt.AppendBytes(b, a.CT)
		},
		func(r *wirefmt.Reader, a *PutArgs) {
			a.Schema = r.String()
			a.Field = r.String()
			a.DocID = r.String()
			a.CT = r.Bytes()
		},
	))
	transport.RegisterCodec(Service, "remove", transport.WriteCodec(
		func(b []byte, a *RemoveArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendString(b, a.Field)
			return wirefmt.AppendString(b, a.DocID)
		},
		func(r *wirefmt.Reader, a *RemoveArgs) {
			a.Schema = r.String()
			a.Field = r.String()
			a.DocID = r.String()
		},
	))
	transport.RegisterCodec(Service, "sum", transport.Codec(
		func(b []byte, a *SumArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendString(b, a.Field)
			return wirefmt.AppendStrings(b, a.DocIDs)
		},
		func(r *wirefmt.Reader, a *SumArgs) {
			a.Schema = r.String()
			a.Field = r.String()
			a.DocIDs = r.Strings()
		},
		func(b []byte, out *SumReply) []byte {
			b = wirefmt.AppendBytes(b, out.CT)
			return wirefmt.AppendUvarint(b, uint64(out.Count))
		},
		func(r *wirefmt.Reader, out *SumReply) {
			out.CT = r.Bytes()
			out.Count = int(r.Uvarint())
		},
	))
}
