// Package ore implements the ORE tactic: order-revealing encryption for
// range queries (paper Table 2 — protection class 5, Order leakage,
// adapted from the FastORE construction; 3 gateway + 3 cloud interfaces).
//
// Unlike OPE, stored ciphertexts are not ordered numbers: order is only
// revealed through a comparison algorithm. The cloud therefore evaluates
// range predicates by a linear scan with the public Compare function over
// the field column — the storage-friendly but read-heavier end of the
// range-tactic spectrum (the OPE-vs-ORE ablation benchmark contrasts the
// two).
package ore

import (
	"context"
	"fmt"

	"datablinder/internal/cloud/ring"
	cryptoore "datablinder/internal/crypto/ore"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Name is the tactic's registry name.
const Name = "ORE"

// Service is the cloud RPC service name.
const Service = "ore"

// RPC payloads.
type (
	// AddArgs indexes (ciphertext, doc).
	AddArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		CT     []byte `json:"ct"`
		DocID  string `json:"doc_id"`
	}
	// RemoveArgs drops a doc from the column.
	RemoveArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		DocID  string `json:"doc_id"`
	}
	// QueryArgs asks for ids whose ciphertext compares within [Lo, Hi].
	QueryArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		Lo     []byte `json:"lo,omitempty"`
		Hi     []byte `json:"hi,omitempty"`
		LoInc  bool   `json:"lo_inc"`
		HiInc  bool   `json:"hi_inc"`
	}
	// QueryReply carries matching ids.
	QueryReply struct {
		DocIDs []string `json:"doc_ids"`
	}
)

// Describe returns the tactic's static descriptor.
func Describe() spi.Descriptor {
	return spi.Descriptor{
		Name:      Name,
		Operation: "Range Query",
		Class:     model.Class5,
		Leakage:   model.LeakOrder,
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakEqualities, Note: "ciphertexts are deterministic; order needs the compare algorithm"},
			{Op: model.OpRange, Leakage: model.LeakOrder, Note: "comparisons reveal order and first differing bit"},
		},
		Ops:               []model.Op{model.OpInsert, model.OpDelete, model.OpRange},
		NumericOnly:       true,
		GatewayInterfaces: []string{"Setup", "Insertion", "RangeQuery"},
		CloudInterfaces:   []string{"Setup", "Insertion", "RangeQuery"},
		Perf: model.PerfMetrics{
			Complexity:          "O(N) compare scan",
			RoundTrips:          1,
			ClientStorage:       "none",
			ServerStorageFactor: 1.5,
			Costs: map[model.Op]model.CostPrior{
				// Encryption is a handful of PRF calls — inserts are cheap.
				// Queries compare against every stored cell, so their cost
				// grows linearly with the corpus.
				model.OpInsert: {Fixed: 40},
				model.OpRange:  {Fixed: 60, PerDoc: 2.0},
				model.OpDelete: {Fixed: 30},
			},
		},
		Challenge: "-",
		Origin:    spi.OriginAdapted,
	}
}

// Tactic is the gateway half.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring
}

// New constructs the gateway half.
func New(b spi.Binding) (spi.Tactic, error) {
	return &Tactic{binding: b, shards: ring.Of(b.Cloud)}, nil
}

// route places one document's column cells on a shard. Deletion only knows
// the document id, so the id — not the ciphertext — must be the key.
func (t *Tactic) route(docID string) string {
	return "ore/" + t.binding.Schema + "/" + docID
}

// Registration couples descriptor and factory for the registry.
func Registration() spi.Registration {
	return spi.Registration{Descriptor: Describe(), Factory: New}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return Describe() }

// Setup implements spi.Tactic.
func (t *Tactic) Setup(context.Context) error { return nil }

func (t *Tactic) encrypt(field string, value any) ([]byte, error) {
	var ft model.FieldType
	switch value.(type) {
	case int, int64:
		ft = model.TypeInt
	case float64:
		ft = model.TypeFloat
	default:
		return nil, fmt.Errorf("ore: value %v (%T) is not numeric", value, value)
	}
	u, err := model.OrderedUint64(value, ft)
	if err != nil {
		return nil, err
	}
	k, err := t.binding.Keys.Key(keys.Ref{Schema: t.binding.Schema, Field: field, Tactic: Name, Purpose: "enc"})
	if err != nil {
		return nil, err
	}
	return cryptoore.New(k).EncryptUint64(u), nil
}

// Insert implements spi.Inserter.
func (t *Tactic) Insert(ctx context.Context, field, docID string, value any) error {
	ct, err := t.encrypt(field, value)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(docID), Service, "add",
		AddArgs{Schema: t.binding.Schema, Field: field, CT: ct, DocID: docID}, nil)
}

// Delete implements spi.Deleter.
func (t *Tactic) Delete(ctx context.Context, field, docID string, _ any) error {
	return t.shards.Call(ctx, t.route(docID), Service, "remove",
		RemoveArgs{Schema: t.binding.Schema, Field: field, DocID: docID}, nil)
}

// SearchRange implements spi.RangeSearcher.
func (t *Tactic) SearchRange(ctx context.Context, field string, lo, hi any, loInc, hiInc bool) ([]string, error) {
	args := QueryArgs{Schema: t.binding.Schema, Field: field, LoInc: loInc, HiInc: hiInc}
	if lo != nil {
		ct, err := t.encrypt(field, lo)
		if err != nil {
			return nil, err
		}
		args.Lo = ct
	}
	if hi != nil {
		ct, err := t.encrypt(field, hi)
		if err != nil {
			return nil, err
		}
		args.Hi = ct
	}
	if t.shards.N() == 1 {
		var reply QueryReply
		if err := t.shards.Conn(0).Call(ctx, Service, "query", args, &reply); err != nil {
			return nil, err
		}
		return reply.DocIDs, nil
	}
	// Scatter-gather: each shard compare-scans its slice of the column in
	// doc-id order, so merging the sorted per-shard streams reproduces the
	// single-node result order.
	perShard := make([][]string, t.shards.N())
	err := t.shards.Each(ctx, func(gctx context.Context, shard int, conn transport.Conn) error {
		var reply QueryReply
		if err := conn.Call(gctx, Service, "query", args, &reply); err != nil {
			return err
		}
		perShard[shard] = reply.DocIDs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ring.MergeSorted(perShard), nil
}

// SearchEq implements spi.EqSearcher as a degenerate closed range.
func (t *Tactic) SearchEq(ctx context.Context, field string, value any) ([]string, error) {
	return t.SearchRange(ctx, field, value, value, true, true)
}

// RegisterCloud installs the cloud half on mux, backed by store. The
// column lives in a hash (doc id → ciphertext); queries scan it with the
// public ORE comparison.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	colKey := func(schema, field string) []byte {
		return []byte(fmt.Sprintf("oreidx/%s/%s", schema, field))
	}
	transport.HandleTyped(mux, Service, "add", func(_ context.Context, in *AddArgs) (any, error) {
		return nil, store.HSet(colKey(in.Schema, in.Field), []byte(in.DocID), in.CT)
	})
	transport.HandleTyped(mux, Service, "remove", func(_ context.Context, in *RemoveArgs) (any, error) {
		return nil, store.HDel(colKey(in.Schema, in.Field), []byte(in.DocID))
	})
	transport.HandleTyped(mux, Service, "query", func(_ context.Context, in *QueryArgs) (any, error) {
		key := colKey(in.Schema, in.Field)
		docs, err := store.HFields(key)
		if err != nil {
			return nil, err
		}
		var reply QueryReply
		for _, d := range docs {
			ct, ok, err := store.HGet(key, d)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if in.Lo != nil {
				c, err := cryptoore.Compare(ct, in.Lo)
				if err != nil {
					return nil, err
				}
				if c < 0 || (c == 0 && !in.LoInc) {
					continue
				}
			}
			if in.Hi != nil {
				c, err := cryptoore.Compare(ct, in.Hi)
				if err != nil {
					return nil, err
				}
				if c > 0 || (c == 0 && !in.HiInc) {
					continue
				}
			}
			reply.DocIDs = append(reply.DocIDs, string(d))
		}
		return &reply, nil
	})
}

var (
	_ spi.Inserter      = (*Tactic)(nil)
	_ spi.Deleter       = (*Tactic)(nil)
	_ spi.RangeSearcher = (*Tactic)(nil)
	_ spi.EqSearcher    = (*Tactic)(nil)
)
