package ore_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	opet "datablinder/internal/tactics/ope"
	oret "datablinder/internal/tactics/ore"
	"datablinder/internal/transport"
)

func instance(t *testing.T) spi.Tactic {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	oret.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := oret.New(spi.Binding{
		Schema: "obs", Keys: kp,
		Cloud: transport.NewLoopback(mux),
		Local: kvstore.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRangeQuery(t *testing.T) {
	inst := instance(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	for id, v := range map[string]int64{"a": 10, "b": 20, "c": 30, "d": -5} {
		if err := ins.Insert(ctx, "ts", id, v); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := inst.(spi.RangeSearcher).SearchRange(ctx, "ts", int64(0), int64(25), true, true)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ids)
	if !reflect.DeepEqual(ids, []string{"a", "b"}) {
		t.Fatalf("range = %v", ids)
	}
	// Exclusive bounds.
	ids, err = inst.(spi.RangeSearcher).SearchRange(ctx, "ts", int64(10), int64(30), false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"b"}) {
		t.Fatalf("exclusive range = %v", ids)
	}
	// Negative values order correctly through the signed embedding.
	ids, err = inst.(spi.RangeSearcher).SearchRange(ctx, "ts", nil, int64(0), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"d"}) {
		t.Fatalf("negative range = %v", ids)
	}
}

func TestEqualityViaDegenerateRange(t *testing.T) {
	inst := instance(t)
	ctx := context.Background()
	inst.(spi.Inserter).Insert(ctx, "ts", "d1", int64(7))
	inst.(spi.Inserter).Insert(ctx, "ts", "d2", int64(8))
	ids, err := inst.(spi.EqSearcher).SearchEq(ctx, "ts", int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"d1"}) {
		t.Fatalf("eq = %v", ids)
	}
}

func TestDeleteByDocID(t *testing.T) {
	// ORE deletion needs no value: the column is keyed by document id.
	inst := instance(t)
	ctx := context.Background()
	inst.(spi.Inserter).Insert(ctx, "ts", "d1", int64(5))
	if err := inst.(spi.Deleter).Delete(ctx, "ts", "d1", nil); err != nil {
		t.Fatal(err)
	}
	ids, err := inst.(spi.RangeSearcher).SearchRange(ctx, "ts", nil, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("deleted entry still found: %v", ids)
	}
}

// TestOPEOREAgree cross-checks the two range tactics on the same data.
func TestOPEOREAgree(t *testing.T) {
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	opet.RegisterCloud(mux, cloudKV)
	oret.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	binding := spi.Binding{Schema: "x", Keys: kp, Cloud: transport.NewLoopback(mux), Local: kvstore.New()}
	opeInst, err := opet.New(binding)
	if err != nil {
		t.Fatal(err)
	}
	oreInst, err := oret.New(binding)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	values := []int64{-100, -1, 0, 1, 50, 999, 1000}
	for i, v := range values {
		id := string(rune('a' + i))
		if err := opeInst.(spi.Inserter).Insert(ctx, "n", id, v); err != nil {
			t.Fatal(err)
		}
		if err := oreInst.(spi.Inserter).Insert(ctx, "n", id, v); err != nil {
			t.Fatal(err)
		}
	}
	ranges := [][2]int64{{-100, 0}, {0, 1000}, {-5, 5}, {500, 600}}
	for _, r := range ranges {
		a, err := opeInst.(spi.RangeSearcher).SearchRange(ctx, "n", r[0], r[1], true, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := oreInst.(spi.RangeSearcher).SearchRange(ctx, "n", r[0], r[1], true, true)
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(a)
		sort.Strings(b)
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("range %v: OPE=%v ORE=%v", r, a, b)
		}
	}
}
