// Package ope implements the OPE tactic: order-preserving encryption for
// range queries (paper Table 2 — protection class 5, Order leakage,
// adapted construction; 3 gateway + 3 cloud interfaces).
//
// Ciphertexts are order-preserving fixed-width byte strings, so the cloud
// answers range queries with a plain sorted-index scan (a kvstore sorted
// set) — logarithmic seek plus result-size output, the read-efficient end
// of the range-tactic spectrum (contrast with ORE's linear scan).
package ope

import (
	"bytes"
	"context"
	"fmt"

	"datablinder/internal/cloud/ring"
	cryptoope "datablinder/internal/crypto/ope"
	"datablinder/internal/keys"
	"datablinder/internal/model"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/transport"
)

// Name is the tactic's registry name.
const Name = "OPE"

// Service is the cloud RPC service name.
const Service = "ope"

// RPC payloads.
type (
	// AddArgs indexes (ciphertext, doc).
	AddArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		CT     []byte `json:"ct"`
		DocID  string `json:"doc_id"`
	}
	// RemoveArgs drops (ciphertext, doc).
	RemoveArgs = AddArgs
	// QueryArgs asks for ids with ciphertexts in [Lo, Hi] (nil = open).
	QueryArgs struct {
		Schema string `json:"schema"`
		Field  string `json:"field"`
		Lo     []byte `json:"lo,omitempty"`
		Hi     []byte `json:"hi,omitempty"`
		LoInc  bool   `json:"lo_inc"`
		HiInc  bool   `json:"hi_inc"`
	}
	// QueryReply carries matching ids in ciphertext order. Scores is
	// position-aligned with DocIDs and holds each id's order-preserving
	// ciphertext: a sharded gateway k-way merges per-shard replies by
	// (score, id) to reproduce the single-node result order.
	QueryReply struct {
		DocIDs []string `json:"doc_ids"`
		Scores [][]byte `json:"scores,omitempty"`
	}
)

// Describe returns the tactic's static descriptor.
func Describe() spi.Descriptor {
	return spi.Descriptor{
		Name:      Name,
		Operation: "Range Query",
		Class:     model.Class5,
		Leakage:   model.LeakOrder,
		OpLeakage: []model.OpLeakage{
			{Op: model.OpInsert, Leakage: model.LeakOrder, Note: "ciphertext order equals plaintext order at rest"},
			{Op: model.OpRange, Leakage: model.LeakOrder, Note: "range bounds and result order leak"},
		},
		Ops:               []model.Op{model.OpInsert, model.OpDelete, model.OpRange},
		NumericOnly:       true,
		GatewayInterfaces: []string{"Setup", "Insertion", "RangeQuery"},
		CloudInterfaces:   []string{"Setup", "Insertion", "RangeQuery"},
		Perf: model.PerfMetrics{
			Complexity:          "O(log N + n) sorted-index range scan",
			RoundTrips:          1,
			ClientStorage:       "none",
			ServerStorageFactor: 1.1,
			Costs: map[model.Op]model.CostPrior{
				// Encoding walks the mutable-OPE tree with a round trip
				// per level, so inserts are expensive; range queries hit
				// the sorted index directly and stay cheap at any size.
				model.OpInsert: {Fixed: 900},
				model.OpRange:  {Fixed: 120},
				model.OpDelete: {Fixed: 40},
			},
		},
		Challenge: "-",
		Origin:    spi.OriginAdapted,
	}
}

// Tactic is the gateway half.
type Tactic struct {
	binding spi.Binding
	shards  *ring.Ring
}

// New constructs the gateway half.
func New(b spi.Binding) (spi.Tactic, error) {
	return &Tactic{binding: b, shards: ring.Of(b.Cloud)}, nil
}

// route places one document's index entries on a shard. Range queries have
// no useful single-shard key (any shard may hold in-range ciphertexts), so
// writes spread by document id and queries scatter-gather.
func (t *Tactic) route(docID string) string {
	return "ope/" + t.binding.Schema + "/" + docID
}

// Registration couples descriptor and factory for the registry.
func Registration() spi.Registration {
	return spi.Registration{Descriptor: Describe(), Factory: New}
}

// Descriptor implements spi.Tactic.
func (t *Tactic) Descriptor() spi.Descriptor { return Describe() }

// Setup implements spi.Tactic.
func (t *Tactic) Setup(context.Context) error { return nil }

func (t *Tactic) cipher(field string) (*cryptoope.Cipher, error) {
	k, err := t.binding.Keys.Key(keys.Ref{Schema: t.binding.Schema, Field: field, Tactic: Name, Purpose: "enc"})
	if err != nil {
		return nil, err
	}
	return cryptoope.New(k), nil
}

// fieldType resolves the field's numeric type for order encoding: the
// engine passes int64 for int fields and float64 for float fields; raw Go
// ints may arrive from examples.
func fieldType(value any) (model.FieldType, error) {
	switch value.(type) {
	case int, int64:
		return model.TypeInt, nil
	case float64:
		return model.TypeFloat, nil
	default:
		return "", fmt.Errorf("ope: value %v (%T) is not numeric", value, value)
	}
}

func (t *Tactic) encrypt(field string, value any) ([]byte, error) {
	ft, err := fieldType(value)
	if err != nil {
		return nil, err
	}
	u, err := model.OrderedUint64(value, ft)
	if err != nil {
		return nil, err
	}
	c, err := t.cipher(field)
	if err != nil {
		return nil, err
	}
	return c.EncryptUint64(u), nil
}

// Insert implements spi.Inserter.
func (t *Tactic) Insert(ctx context.Context, field, docID string, value any) error {
	ct, err := t.encrypt(field, value)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(docID), Service, "add",
		AddArgs{Schema: t.binding.Schema, Field: field, CT: ct, DocID: docID}, nil)
}

// Delete implements spi.Deleter.
func (t *Tactic) Delete(ctx context.Context, field, docID string, value any) error {
	ct, err := t.encrypt(field, value)
	if err != nil {
		return err
	}
	return t.shards.Call(ctx, t.route(docID), Service, "remove",
		RemoveArgs{Schema: t.binding.Schema, Field: field, CT: ct, DocID: docID}, nil)
}

// SearchRange implements spi.RangeSearcher.
func (t *Tactic) SearchRange(ctx context.Context, field string, lo, hi any, loInc, hiInc bool) ([]string, error) {
	args := QueryArgs{Schema: t.binding.Schema, Field: field, LoInc: loInc, HiInc: hiInc}
	if lo != nil {
		ct, err := t.encrypt(field, lo)
		if err != nil {
			return nil, err
		}
		args.Lo = ct
	}
	if hi != nil {
		ct, err := t.encrypt(field, hi)
		if err != nil {
			return nil, err
		}
		args.Hi = ct
	}
	if t.shards.N() == 1 {
		var reply QueryReply
		if err := t.shards.Conn(0).Call(ctx, Service, "query", args, &reply); err != nil {
			return nil, err
		}
		return reply.DocIDs, nil
	}
	// Scatter-gather: every shard scans its slice of the sorted index, and
	// the per-shard replies — each ascending by (score, id) — k-way merge
	// into the exact order a single node would have returned.
	replies := make([]QueryReply, t.shards.N())
	err := t.shards.Each(ctx, func(gctx context.Context, shard int, conn transport.Conn) error {
		return conn.Call(gctx, Service, "query", args, &replies[shard])
	})
	if err != nil {
		return nil, err
	}
	return mergeByScore(replies), nil
}

// mergeByScore k-way merges per-shard query replies ascending by
// (score, doc id), matching the kvstore sorted-set iteration order.
func mergeByScore(replies []QueryReply) []string {
	n := 0
	for _, r := range replies {
		n += len(r.DocIDs)
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	pos := make([]int, len(replies))
	for {
		best := -1
		for i, r := range replies {
			p := pos[i]
			if p >= len(r.DocIDs) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			b := replies[best]
			if c := bytes.Compare(r.Scores[p], b.Scores[pos[best]]); c < 0 ||
				(c == 0 && r.DocIDs[p] < b.DocIDs[pos[best]]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, replies[best].DocIDs[pos[best]])
		pos[best]++
	}
}

// SearchEq implements spi.EqSearcher as a degenerate closed range.
func (t *Tactic) SearchEq(ctx context.Context, field string, value any) ([]string, error) {
	return t.SearchRange(ctx, field, value, value, true, true)
}

// RegisterCloud installs the cloud half on mux, backed by store.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	idxKey := func(schema, field string) []byte {
		return []byte(fmt.Sprintf("opeidx/%s/%s", schema, field))
	}
	transport.HandleTyped(mux, Service, "add", func(_ context.Context, in *AddArgs) (any, error) {
		return nil, store.ZAdd(idxKey(in.Schema, in.Field), in.CT, []byte(in.DocID))
	})
	transport.HandleTyped(mux, Service, "remove", func(_ context.Context, in *RemoveArgs) (any, error) {
		return nil, store.ZRem(idxKey(in.Schema, in.Field), in.CT, []byte(in.DocID))
	})
	transport.HandleTyped(mux, Service, "query", func(_ context.Context, in *QueryArgs) (any, error) {
		pairs, err := store.ZRangeByScore(idxKey(in.Schema, in.Field), in.Lo, in.Hi, in.LoInc, in.HiInc)
		if err != nil {
			return nil, err
		}
		reply := QueryReply{
			DocIDs: make([]string, len(pairs)),
			Scores: make([][]byte, len(pairs)),
		}
		for i, p := range pairs {
			reply.DocIDs[i] = string(p.Member)
			reply.Scores[i] = p.Score
		}
		return &reply, nil
	})
}

var (
	_ spi.Inserter      = (*Tactic)(nil)
	_ spi.Deleter       = (*Tactic)(nil)
	_ spi.RangeSearcher = (*Tactic)(nil)
	_ spi.EqSearcher    = (*Tactic)(nil)
)
