package ope_test

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"datablinder/internal/keys"
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/ope"
	"datablinder/internal/transport"
)

func instance(t *testing.T) spi.Tactic {
	t.Helper()
	mux := transport.NewMux()
	cloudKV := kvstore.New()
	t.Cleanup(func() { cloudKV.Close() })
	ope.RegisterCloud(mux, cloudKV)
	kp, err := keys.NewRandomStore()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ope.New(spi.Binding{
		Schema: "obs", Keys: kp,
		Cloud: transport.NewLoopback(mux),
		Local: kvstore.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRangeQueryBounds(t *testing.T) {
	inst := instance(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	for _, v := range []int64{10, 20, 30, 40, 50} {
		if err := ins.Insert(ctx, "ts", string(rune('a'+v/10)), v); err != nil {
			t.Fatal(err)
		}
	}
	rs := inst.(spi.RangeSearcher)

	tests := []struct {
		name         string
		lo, hi       any
		loInc, hiInc bool
		want         int
	}{
		{"closed", int64(20), int64(40), true, true, 3},
		{"open", int64(20), int64(40), false, false, 1},
		{"half-open lo", int64(20), int64(40), false, true, 2},
		{"unbounded hi", int64(35), nil, true, true, 2},
		{"unbounded lo", nil, int64(15), true, true, 1},
		{"empty", int64(41), int64(49), true, true, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ids, err := rs.SearchRange(ctx, "ts", tt.lo, tt.hi, tt.loInc, tt.hiInc)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != tt.want {
				t.Fatalf("range = %v, want %d ids", ids, tt.want)
			}
		})
	}
}

func TestResultsComeBackInOrder(t *testing.T) {
	// The OPE index is a sorted set; results arrive in plaintext order,
	// which the engine may rely on for pagination.
	inst := instance(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	values := map[string]int64{"d3": 30, "d1": 10, "d2": 20}
	for id, v := range values {
		if err := ins.Insert(ctx, "ts", id, v); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := inst.(spi.RangeSearcher).SearchRange(ctx, "ts", nil, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"d1", "d2", "d3"}) {
		t.Fatalf("order = %v", ids)
	}
}

func TestFloatRanges(t *testing.T) {
	inst := instance(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	for id, v := range map[string]float64{"a": -2.5, "b": 0.0, "c": 3.25, "d": 100.0} {
		if err := ins.Insert(ctx, "val", id, v); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := inst.(spi.RangeSearcher).SearchRange(ctx, "val", -3.0, 4.0, true, true)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ids)
	if !reflect.DeepEqual(ids, []string{"a", "b", "c"}) {
		t.Fatalf("float range = %v", ids)
	}
}

func TestRejectsNonNumeric(t *testing.T) {
	inst := instance(t)
	if err := inst.(spi.Inserter).Insert(context.Background(), "ts", "d1", "tomorrow"); err == nil {
		t.Fatal("string accepted by numeric tactic")
	}
}

func TestDeleteRemovesFromIndex(t *testing.T) {
	inst := instance(t)
	ctx := context.Background()
	inst.(spi.Inserter).Insert(ctx, "ts", "d1", int64(5))
	if err := inst.(spi.Deleter).Delete(ctx, "ts", "d1", int64(5)); err != nil {
		t.Fatal(err)
	}
	ids, err := inst.(spi.RangeSearcher).SearchRange(ctx, "ts", nil, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("deleted entry still indexed: %v", ids)
	}
}

func TestRangeEqualsPlaintextQuick(t *testing.T) {
	inst := instance(t)
	ctx := context.Background()
	ins := inst.(spi.Inserter)
	rs := inst.(spi.RangeSearcher)
	stored := map[string]int64{}
	n := 0
	f := func(v int64, loRaw, span uint16) bool {
		id := string(rune('A'+n%26)) + string(rune('0'+n%10)) + string(rune('a'+n/260%26))
		n++
		if _, dup := stored[id]; !dup {
			if err := ins.Insert(ctx, "q", id, v); err != nil {
				return false
			}
			stored[id] = v
		}
		lo := int64(loRaw) - 32768
		hi := lo + int64(span)
		got, err := rs.SearchRange(ctx, "q", lo, hi, true, true)
		if err != nil {
			return false
		}
		var want []string
		for id, sv := range stored {
			if sv >= lo && sv <= hi {
				want = append(want, id)
			}
		}
		sort.Strings(got)
		sort.Strings(want)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
