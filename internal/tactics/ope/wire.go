// Typed wire codecs (codec v2) for the OPE tactic.

package ope

import (
	"datablinder/internal/transport"
	"datablinder/internal/wirefmt"
)

func appendAdd(b []byte, a *AddArgs) []byte {
	b = wirefmt.AppendString(b, a.Schema)
	b = wirefmt.AppendString(b, a.Field)
	b = wirefmt.AppendBytes(b, a.CT)
	return wirefmt.AppendString(b, a.DocID)
}

func readAdd(r *wirefmt.Reader, a *AddArgs) {
	a.Schema = r.String()
	a.Field = r.String()
	a.CT = r.Bytes()
	a.DocID = r.String()
}

func init() {
	transport.RegisterCodec(Service, "add", transport.WriteCodec(appendAdd, readAdd))
	transport.RegisterCodec(Service, "remove", transport.WriteCodec(appendAdd, readAdd))
	transport.RegisterCodec(Service, "query", transport.Codec(
		func(b []byte, a *QueryArgs) []byte {
			b = wirefmt.AppendString(b, a.Schema)
			b = wirefmt.AppendString(b, a.Field)
			b = wirefmt.AppendBytes(b, a.Lo)
			b = wirefmt.AppendBytes(b, a.Hi)
			b = wirefmt.AppendBool(b, a.LoInc)
			return wirefmt.AppendBool(b, a.HiInc)
		},
		func(r *wirefmt.Reader, a *QueryArgs) {
			a.Schema = r.String()
			a.Field = r.String()
			a.Lo = r.Bytes()
			a.Hi = r.Bytes()
			a.LoInc = r.Bool()
			a.HiInc = r.Bool()
		},
		func(b []byte, out *QueryReply) []byte {
			b = wirefmt.AppendStrings(b, out.DocIDs)
			return wirefmt.AppendByteSlices(b, out.Scores)
		},
		func(r *wirefmt.Reader, out *QueryReply) {
			out.DocIDs = r.Strings()
			out.Scores = r.ByteSlices()
		},
	))
}
