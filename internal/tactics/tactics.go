// Package tactics assembles DataBlinder's built-in data protection tactic
// catalog — the nine schemes of the paper's Table 2 — for both deployment
// halves. Registration is explicit (no init-time side effects): gateways
// call Registry, cloud servers call RegisterCloud.
package tactics

import (
	"datablinder/internal/spi"
	"datablinder/internal/store/kvstore"
	"datablinder/internal/tactics/biex"
	"datablinder/internal/tactics/det"
	"datablinder/internal/tactics/mitra"
	"datablinder/internal/tactics/ope"
	"datablinder/internal/tactics/ore"
	"datablinder/internal/tactics/paillier"
	"datablinder/internal/tactics/rnd"
	"datablinder/internal/tactics/sophos"
	"datablinder/internal/transport"
)

// Registry returns a registry populated with every built-in tactic.
func Registry() (*spi.Registry, error) {
	return spi.NewRegistry(
		det.Registration(),
		rnd.Registration(),
		mitra.Registration(),
		sophos.Registration(),
		biex.Registration2Lev(),
		biex.RegistrationZMF(),
		ope.Registration(),
		ore.Registration(),
		paillier.Registration(),
	)
}

// RegisterCloud installs every built-in tactic's cloud half on mux, all
// backed by the same store.
func RegisterCloud(mux *transport.Mux, store *kvstore.Store) {
	det.RegisterCloud(mux, store)
	rnd.RegisterCloud(mux, store)
	mitra.RegisterCloud(mux, store)
	sophos.RegisterCloud(mux, store)
	biex.RegisterCloud(mux, store)
	ope.RegisterCloud(mux, store)
	ore.RegisterCloud(mux, store)
	paillier.RegisterCloud(mux, store)
}
