// Wire codec v2: a negotiated binary framing for the gateway↔cloud channel.
//
// The v1 protocol ships length-prefixed JSON, so every ciphertext, PRF
// label, and BIEX cell pays base64 (+33% bytes) plus reflective
// encode/decode allocations on both ends. Codec v2 replaces the JSON
// envelope with a varint-framed binary one and, for the hot RPCs, replaces
// the JSON payload with a hand-rolled typed encoding in which raw bytes
// ride as raw bytes.
//
// Negotiation: the first request a client sends on a fresh socket is a
// v1-framed `_wire.hello` carrying the sorted list of methods it has typed
// codecs for. A v2 server replies with the subset it also supports and
// both sides switch the socket to binary framing; the agreed subset,
// in order, becomes the method id table (id i+1 = i'th accepted method,
// id 0 = inline method name, the escape hatch for cold setup/admin
// methods). A server that predates v2 rejects the unknown method and a
// server run with binary framing disabled answers `version: 1`; in both
// cases the client simply stays on JSON, so mixed-version fleets keep
// working.
//
// Binary frame layout (both directions, after a successful hello):
//
//	frame    := uvarint(len(body)) body            // len ≤ MaxFrameSize
//	body     := 0x01 uvarint(id) call              // request
//	          | 0x02 uvarint(id) result            // response
//	call     := method enc uvarint(len) payload
//	method   := uvarint(mid)                       // mid=0: + str(service.method)
//	enc      := 0x00 (JSON) | 0x01 (typed) | 0x02 (batch, _batch.exec only)
//	result   := 0x00 enc uvarint(len) payload      // ok
//	          | 0x01 str(code) str(msg)            // handler error
//	batch    := uvarint(n) n×call                  // request payload, enc 0|1
//	batchres := uvarint(n) n×result                // response payload
//	str      := uvarint(len) bytes
//
// Typed payloads are used only for methods in the agreed table (both ends
// are then guaranteed to hold the codec); everything else — including any
// argument value a codec does not recognise — falls back to a JSON payload
// inside the binary envelope.
package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"datablinder/internal/wirefmt"
)

// Reserved negotiation endpoint. The leading underscore keeps it out of
// Mux.Services(); the server intercepts it before dispatch.
const (
	wireService     = "_wire"
	wireHelloMethod = "hello"
	wireVersion     = 2
)

// Binary frame kind and payload encoding tags.
const (
	wireKindReq  = 0x01
	wireKindResp = 0x02

	encJSON  = 0x00 // payload is JSON bytes
	encTyped = 0x01 // payload is the method's registered PayloadCodec encoding
	encBatch = 0x02 // payload is a batch of calls (_batch.exec only)

	wireStatusOK  = 0x00
	wireStatusErr = 0x01
)

// ErrWireProtocol reports a malformed binary frame (truncated varint,
// oversized length, unknown method id, bad tag byte). Peers that send one
// have their connection dropped.
var ErrWireProtocol = errors.New("transport: wire protocol violation")

// helloArgs is the client's negotiation proposal: the sorted service.method
// names it holds typed payload codecs for.
type helloArgs struct {
	Version int      `json:"version"`
	Methods []string `json:"methods,omitempty"`
}

// helloReply is the server's answer. Version 2 switches the socket to
// binary framing; Accept indexes into the client's Methods list and fixes
// the method id table (id = position in Accept + 1).
type helloReply struct {
	Version int   `json:"version"`
	Accept  []int `json:"accept,omitempty"`
}

// PayloadCodec is the typed binary encoding of one method's argument and
// reply payloads. Encode appends to dst (which may be a pooled frame
// buffer) and returns the extended slice; an encode error (e.g. an
// unexpected argument type) makes the transport fall back to a JSON
// payload for that call. Decode must be strictly bounds-checked: malformed
// input returns an error, never panics. Decoded byte slices may alias the
// input buffer.
type PayloadCodec struct {
	NewArgs     func() any
	EncodeArgs  func(dst []byte, args any) ([]byte, error)
	DecodeArgs  func(data []byte, args any) error
	NewReply    func() any                                  // nil when the reply stays JSON
	EncodeReply func(dst []byte, reply any) ([]byte, error) // nil: reply always JSON
	DecodeReply func(data []byte, reply any) error
}

// codecReg maps service.method → *PayloadCodec. Populated by package
// init() functions on both ends of the channel (the tactic and cloud
// packages register their wire shapes when imported), so gateway and
// cloudserver agree on the encodable set without central coordination.
var (
	codecMu  sync.RWMutex
	codecReg = make(map[string]*PayloadCodec)
)

// RegisterCodec registers the typed payload codec for service.method.
// Intended to be called from init(); later registrations replace earlier
// ones.
func RegisterCodec(service, method string, c *PayloadCodec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	codecReg[service+"."+method] = c
}

// LookupCodec returns the codec registered for name ("service.method"),
// or nil.
func LookupCodec(name string) *PayloadCodec {
	codecMu.RLock()
	defer codecMu.RUnlock()
	return codecReg[name]
}

// RegisteredWireMethods returns the sorted names of all methods with typed
// codecs — the client's negotiation proposal.
func RegisteredWireMethods() []string {
	codecMu.RLock()
	out := make([]string, 0, len(codecReg))
	for k := range codecReg {
		out = append(out, k)
	}
	codecMu.RUnlock()
	sort.Strings(out)
	return out
}

// errCodecType reports an argument/reply value a typed codec does not
// recognise; the transport falls back to JSON for that payload.
var errCodecType = errors.New("transport: value type not handled by codec")

// NoReply marks a method without a typed reply encoding in Codec.
type NoReply = struct{}

// Codec builds a PayloadCodec from four append/consume functions, keeping
// per-method codecs down to their field lists. encR may be nil for
// write-style methods whose replies stay JSON (use NoReply for R).
// Encoders must be deterministic (coalescing dedups on encoded bytes).
// Decode functions receive a pooled Reader and must not retain it past
// the call (decoded values alias the payload buffer, not the Reader).
func Codec[A, R any](
	encA func(dst []byte, a *A) []byte,
	decA func(r *wirefmt.Reader, a *A),
	encR func(dst []byte, out *R) []byte,
	decR func(r *wirefmt.Reader, out *R),
) *PayloadCodec {
	c := &PayloadCodec{
		NewArgs: func() any { return new(A) },
		EncodeArgs: func(dst []byte, args any) ([]byte, error) {
			a, ok := argPtr[A](args)
			if !ok {
				return nil, errCodecType
			}
			return encA(dst, a), nil
		},
		DecodeArgs: func(data []byte, args any) error {
			a, ok := args.(*A)
			if !ok {
				return errCodecType
			}
			r := wirefmt.GetReader(data)
			decA(r, a)
			err := r.Finish()
			wirefmt.PutReader(r)
			return err
		},
	}
	if encR != nil {
		c.NewReply = func() any { return new(R) }
		c.EncodeReply = func(dst []byte, reply any) ([]byte, error) {
			out, ok := argPtr[R](reply)
			if !ok {
				return nil, errCodecType
			}
			return encR(dst, out), nil
		}
		c.DecodeReply = func(data []byte, reply any) error {
			out, ok := reply.(*R)
			if !ok {
				return errCodecType
			}
			r := wirefmt.GetReader(data)
			decR(r, out)
			err := r.Finish()
			wirefmt.PutReader(r)
			return err
		}
	}
	return c
}

// WriteCodec builds a PayloadCodec for a write-style method whose reply is
// empty (the handler returns nil); only the arguments get a typed encoding.
func WriteCodec[A any](
	encA func(dst []byte, a *A) []byte,
	decA func(r *wirefmt.Reader, a *A),
) *PayloadCodec {
	return Codec[A, NoReply](encA, decA, nil, nil)
}

// argPtr views v as *T, accepting both T and *T (handlers return reply
// values, callers pass pointers).
func argPtr[T any](v any) (*T, bool) {
	switch x := v.(type) {
	case *T:
		return x, true
	case T:
		return &x, true
	}
	return nil, false
}

// wireTable is one connection's negotiated method id table: the ordered
// intersection of the two peers' codec registries. mid i+1 ↔ names[i].
type wireTable struct {
	names  []string
	codecs []*PayloadCodec
	ids    map[string]uint16
}

// newWireTable builds the table both peers derive from a hello exchange.
// proposal is the client's method list, accept the server's chosen indexes
// (strictly increasing, in range); every accepted method must be in the
// local registry.
func newWireTable(proposal []string, accept []int) (*wireTable, error) {
	t := &wireTable{ids: make(map[string]uint16, len(accept))}
	prev := -1
	for _, idx := range accept {
		if idx <= prev || idx >= len(proposal) {
			return nil, fmt.Errorf("%w: bad accept index %d", ErrWireProtocol, idx)
		}
		prev = idx
		name := proposal[idx]
		c := LookupCodec(name)
		if c == nil {
			return nil, fmt.Errorf("%w: accepted unknown method %q", ErrWireProtocol, name)
		}
		t.names = append(t.names, name)
		t.codecs = append(t.codecs, c)
		t.ids[name] = uint16(len(t.names))
	}
	return t, nil
}

// resolve maps a method id to its name and codec.
func (t *wireTable) resolve(mid uint64) (string, *PayloadCodec, bool) {
	if t == nil || mid == 0 || mid > uint64(len(t.names)) {
		return "", nil, false
	}
	return t.names[mid-1], t.codecs[mid-1], true
}

// acceptIndexes picks the proposal entries present in the local registry.
func acceptIndexes(proposal []string) []int {
	var accept []int
	for i, name := range proposal {
		if LookupCodec(name) != nil {
			accept = append(accept, i)
		}
	}
	return accept
}

// wireBufPool recycles binary frame encode buffers (the analogue of
// encBufPool for the v1 path).
var wireBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// wireFrameHdr is the reserved prefix for the frame length uvarint
// (MaxFrameSize < 2^28 → at most 4 bytes, +1 slack).
const wireFrameHdr = 5

// newWireFrameBuf returns a pooled buffer pre-seeded with the length
// placeholder. Finish with finishWireFrame; recycle with putWireFrameBuf.
func newWireFrameBuf() []byte {
	b := (*wireBufPool.Get().(*[]byte))[:0]
	return append(b, 0, 0, 0, 0, 0)
}

func putWireFrameBuf(b []byte) {
	if cap(b) <= maxPooledBuf {
		b = b[:0]
		wireBufPool.Put(&b)
	}
}

// finishWireFrame writes the body length uvarint immediately before the
// body and returns the wire-ready frame (a suffix of buf).
func finishWireFrame(buf []byte) ([]byte, error) {
	body := len(buf) - wireFrameHdr
	if body > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	var hdr [wireFrameHdr]byte
	n := binary.PutUvarint(hdr[:], uint64(body))
	frame := buf[wireFrameHdr-n:]
	copy(frame[:n], hdr[:n])
	return frame, nil
}

// readWireFrame reads one varint-framed body. The returned buffer is
// freshly allocated and owned by the caller: typed decoders alias it, so
// it is never pooled.
func readWireFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// appendCall appends one call section (method, enc, length-prefixed
// payload), compressing the method to its table id when negotiated.
func appendCall(b []byte, t *wireTable, name string, enc byte, payload []byte) []byte {
	if mid, ok := t.ids[name]; ok {
		b = binary.AppendUvarint(b, uint64(mid))
	} else {
		b = append(b, 0)
		b = wirefmt.AppendString(b, name)
	}
	b = append(b, enc)
	return wirefmt.AppendBytes(b, payload)
}

// callWireSize is the exact encoded size of one call section — the
// codec-derived per-sub-call overhead the batch chunker uses.
func callWireSize(t *wireTable, name string, payloadLen int) int {
	n := 1 // enc byte
	if mid, ok := t.ids[name]; ok {
		n += uvarintLen(uint64(mid))
	} else {
		n += 1 + uvarintLen(uint64(len(name))) + len(name)
	}
	return n + uvarintLen(uint64(payloadLen)) + payloadLen
}

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// parsedCall is one decoded call section.
type parsedCall struct {
	name    string
	codec   *PayloadCodec // non-nil when resolved via the table
	enc     byte
	payload []byte // aliases the frame buffer
}

// parseCall consumes one call section from r.
func parseCall(r *wirefmt.Reader, t *wireTable) (parsedCall, error) {
	var c parsedCall
	mid := r.Uvarint()
	if mid == 0 {
		c.name = r.String()
	} else {
		name, codec, ok := t.resolve(mid)
		if !ok {
			return c, fmt.Errorf("%w: unknown method id %d", ErrWireProtocol, mid)
		}
		c.name, c.codec = name, codec
	}
	c.enc = r.Byte()
	c.payload = r.Bytes()
	if err := r.Err(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrWireProtocol, err)
	}
	if c.enc > encBatch {
		return c, fmt.Errorf("%w: bad payload encoding 0x%02x", ErrWireProtocol, c.enc)
	}
	if c.codec == nil && c.enc == encTyped {
		// Typed payloads are only legal for table methods; an inline-named
		// typed payload would be undecodable.
		c.codec = LookupCodec(c.name)
		if c.codec == nil {
			return c, fmt.Errorf("%w: typed payload for unregistered method %s", ErrWireProtocol, c.name)
		}
	}
	return c, nil
}

// appendResultOK appends an ok result section.
func appendResultOK(b []byte, enc byte, payload []byte) []byte {
	b = append(b, wireStatusOK, enc)
	return wirefmt.AppendBytes(b, payload)
}

// appendResultErr appends a handler-error result section.
func appendResultErr(b []byte, code, msg string) []byte {
	b = append(b, wireStatusErr)
	b = wirefmt.AppendString(b, code)
	return wirefmt.AppendString(b, msg)
}

// parsedResult is one decoded result section.
type parsedResult struct {
	ok      bool
	enc     byte
	payload []byte // aliases the frame buffer
	code    string
	msg     string
}

func parseResult(r *wirefmt.Reader) (parsedResult, error) {
	var res parsedResult
	switch status := r.Byte(); status {
	case wireStatusOK:
		res.ok = true
		res.enc = r.Byte()
		res.payload = r.Bytes()
	case wireStatusErr:
		res.code = r.String()
		res.msg = r.String()
	default:
		if err := r.Err(); err != nil {
			return res, fmt.Errorf("%w: %v", ErrWireProtocol, err)
		}
		return res, fmt.Errorf("%w: bad result status 0x%02x", ErrWireProtocol, status)
	}
	if err := r.Err(); err != nil {
		return res, fmt.Errorf("%w: %v", ErrWireProtocol, err)
	}
	if res.ok && res.enc > encBatch {
		return res, fmt.Errorf("%w: bad result encoding 0x%02x", ErrWireProtocol, res.enc)
	}
	return res, nil
}

// encodeArgsPayload encodes args for one outgoing call: typed when the
// method is in the negotiated table and its codec recognises the value,
// JSON otherwise. Pre-encoded RawArgs pass through unchanged unless the
// socket's codec can no longer carry the payload — see RawArgs. The
// payload may be retained by the caller, so it is always freshly
// allocated; hot paths that copy it into a frame immediately should use
// encodeArgsScratch instead.
func encodeArgsPayload(t *wireTable, service, method string, args any) (payload []byte, enc byte, err error) {
	payload, enc, _, err = encodeArgsScratch(nil, t, service, method, args)
	return payload, enc, err
}

// encodeArgsScratch is encodeArgsPayload with a caller-supplied scratch
// buffer for the typed-codec branch. fromScratch reports that the payload
// was appended to scratch (possibly grown) and may be recycled once the
// caller has copied it into a frame; when false the payload is a
// pass-through (RawArgs) or a fresh JSON buffer and scratch is untouched.
func encodeArgsScratch(scratch []byte, t *wireTable, service, method string, args any) (payload []byte, enc byte, fromScratch bool, err error) {
	if raw, ok := args.(RawArgs); ok {
		if raw.Typed {
			if t != nil {
				if _, ok := t.ids[service+"."+method]; ok {
					return raw.Payload, encTyped, false, nil
				}
			}
			// The socket renegotiated since the payload was encoded:
			// re-encode from the retained args.
			if raw.Args != nil {
				return encodeArgsScratch(scratch, t, service, method, raw.Args)
			}
			if t == nil {
				return nil, 0, false, errors.New("transport: typed RawArgs on a JSON connection")
			}
			return nil, 0, false, fmt.Errorf("transport: typed RawArgs for unnegotiated method %s.%s", service, method)
		}
		return raw.Payload, encJSON, false, nil
	}
	if t != nil {
		if mid, ok := t.ids[service+"."+method]; ok {
			codec := t.codecs[mid-1]
			start := time.Now()
			if b, cerr := codec.EncodeArgs(scratch, args); cerr == nil {
				wireRecordEncode(service+"."+method, time.Since(start))
				return b, encTyped, scratch != nil, nil
			}
			// Unrecognised argument type: fall back to JSON.
		}
	}
	if args == nil {
		return nil, encJSON, false, nil
	}
	b, err := json.Marshal(args)
	if err != nil {
		return nil, 0, false, fmt.Errorf("transport: encoding args: %w", err)
	}
	return b, encJSON, false, nil
}

// decodeResultPayload decodes a result payload into reply, honouring the
// payload encoding. A *BatchResult reply captures the raw payload without
// decoding (the coalescer's deferred-decode path).
func decodeResultPayload(name string, enc byte, payload []byte, reply any) error {
	if enc == encBatch {
		// Batch results are consumed by batchRoundTrip, never by Call.
		return fmt.Errorf("%w: unexpected batch result for %s", ErrWireProtocol, name)
	}
	if br, ok := reply.(*BatchResult); ok {
		br.Payload = append(br.Payload[:0], payload...)
		br.typed = enc == encTyped
		br.method = name
		return nil
	}
	if reply == nil || len(payload) == 0 {
		return nil
	}
	if enc == encTyped {
		codec := LookupCodec(name)
		if codec == nil || codec.DecodeReply == nil {
			return fmt.Errorf("transport: no reply codec for %s", name)
		}
		start := time.Now()
		err := codec.DecodeReply(payload, reply)
		wireRecordDecode(name, time.Since(start))
		if err != nil {
			return fmt.Errorf("transport: decoding %s reply: %w", name, err)
		}
		return nil
	}
	if err := json.Unmarshal(payload, reply); err != nil {
		return fmt.Errorf("transport: decoding reply: %w", err)
	}
	return nil
}

// wireExec executes one parsed call against m and appends its result
// section to dst. typedReply authorises typed reply payloads (the peer
// negotiated this method). Batch payloads recurse one level.
func wireExec(ctx context.Context, m *Mux, t *wireTable, dst []byte, call parsedCall, typedReply bool) []byte {
	if call.enc == encBatch {
		if call.name != BatchService+"."+BatchMethod {
			return appendResultErr(dst, "", "transport: batch payload on non-batch method "+call.name)
		}
		r := wirefmt.NewReader(call.payload)
		n := r.Count()
		if r.Err() != nil {
			return appendResultErr(dst, "", "transport: decoding batch: malformed count")
		}
		body := newWireFrameBuf()
		defer putWireFrameBuf(body)
		body = binary.AppendUvarint(body[:wireFrameHdr], uint64(n))
		for i := 0; i < n; i++ {
			sub, err := parseCall(r, t)
			if err != nil {
				return appendResultErr(dst, "", fmt.Sprintf("transport: decoding batch sub-call %d: %v", i, err))
			}
			if sub.enc == encBatch || sub.name == BatchService+"."+BatchMethod {
				body = appendResultErr(body, "", "transport: nested batch calls are not allowed")
				continue
			}
			body = wireExec(ctx, m, t, body, sub, typedReply)
		}
		if err := r.Finish(); err != nil {
			return appendResultErr(dst, "", "transport: decoding batch: trailing bytes")
		}
		return appendResultOK(dst, encBatch, body[wireFrameHdr:])
	}

	entry := m.lookup(call.name)
	if entry == nil {
		return appendResultErr(dst, "", fmt.Sprintf("%v: %s", ErrNoHandler, call.name))
	}

	var (
		result any
		err    error
	)
	switch call.enc {
	case encTyped:
		args := call.codec.NewArgs()
		start := time.Now()
		derr := call.codec.DecodeArgs(call.payload, args)
		wireRecordDecode(call.name, time.Since(start))
		if derr != nil {
			return appendResultErr(dst, "", fmt.Sprintf("transport: decoding %s args: %v", call.name, derr))
		}
		if entry.typed != nil {
			result, err = entry.typed(ctx, args)
		} else {
			// Handler registered without a typed path: re-encode the decoded
			// args as JSON so plain Handle registrations keep working.
			b, merr := json.Marshal(args)
			if merr != nil {
				return appendResultErr(dst, "", fmt.Sprintf("transport: re-encoding %s args: %v", call.name, merr))
			}
			result, err = entry.h(ctx, b)
		}
	default: // encJSON
		result, err = entry.h(ctx, call.payload)
	}
	if err != nil {
		return appendResultErr(dst, ErrorCode(err), err.Error())
	}

	// A nil result (write-style methods) needs no payload at all.
	if result == nil {
		return appendResultOK(dst, encJSON, nil)
	}

	// Encode the reply: typed when authorised and the codec recognises the
	// handler's value, JSON otherwise. The typed encode runs in a pooled
	// scratch buffer — it is copied into dst immediately.
	if typedReply {
		if codec := codecForReply(t, call); codec != nil && codec.EncodeReply != nil {
			mark := len(dst)
			dst = append(dst, wireStatusOK, encTyped)
			lenMark := len(dst)
			scratch := (*wireBufPool.Get().(*[]byte))[:0]
			start := time.Now()
			b, cerr := codec.EncodeReply(scratch, result)
			wireRecordEncode(call.name, time.Since(start))
			if cerr == nil {
				dst = wirefmt.AppendBytes(dst[:lenMark], b)
				putWireFrameBuf(b)
				return dst
			}
			putWireFrameBuf(scratch)
			dst = dst[:mark]
		}
	}
	payload, merr := json.Marshal(result)
	if merr != nil {
		return appendResultErr(dst, "", fmt.Sprintf("transport: encoding response: %v", merr))
	}
	return appendResultOK(dst, encJSON, payload)
}

// codecForReply returns the codec authorised for a typed reply to call:
// the table entry when the call came in by id, or the registry entry for
// an inline-named call the peer nevertheless negotiated.
func codecForReply(t *wireTable, call parsedCall) *PayloadCodec {
	if call.codec != nil {
		return call.codec
	}
	if t != nil {
		if mid, ok := t.ids[call.name]; ok {
			return t.codecs[mid-1]
		}
	}
	return nil
}

// RawArgs is an argument value whose payload was already encoded by the
// connection's WireCodec (see ConnCodec / WireCodec.EncodeArgs). The
// coalescer encodes sub-calls at enqueue time — for byte-accurate flush
// triggers and dedup keys — and ships them with RawArgs so the transport
// does not encode twice. A Typed payload is only sendable on the
// connection whose codec produced it; if the socket has since renegotiated
// down to a codec that cannot carry it, the transport re-encodes from the
// retained Args (when set) instead of failing the call.
type RawArgs struct {
	Payload []byte
	Typed   bool
	// Args is the original argument value, kept for re-encoding when the
	// pre-encoded payload no longer matches the socket's codec.
	Args any
}

// MarshalJSON makes RawArgs transparent to JSON encoders: a JSON payload
// passes through verbatim, a typed payload re-encodes from the retained
// args. Wrapper connections that inspect arguments with json.Marshal
// (bench instrumentation, logging) keep seeing the original value shape.
func (r RawArgs) MarshalJSON() ([]byte, error) {
	if !r.Typed {
		if len(r.Payload) == 0 {
			return []byte("null"), nil
		}
		return r.Payload, nil
	}
	if r.Args == nil {
		return nil, errors.New("transport: typed RawArgs without retained args")
	}
	return json.Marshal(r.Args)
}

// WireCodec describes how a Conn encodes call payloads, letting the batch
// chunker and the coalescer account exact per-sub-call wire sizes and
// pre-encode payloads for the active codec.
type WireCodec interface {
	// Name is "json" or "binary".
	Name() string
	// EncodeArgs returns the payload for service.method and whether it used
	// the typed encoding.
	EncodeArgs(service, method string, args any) (payload []byte, typed bool, err error)
	// SubSize is the exact (binary) or estimated (JSON) encoded size of one
	// batch sub-call with a payload of payloadLen bytes.
	SubSize(service, method string, payloadLen int) int
	// MaxChunkBytes caps the summed SubSizes shipped in one batch frame.
	MaxChunkBytes() int
}

// wireCodecProvider is implemented by Conns whose codec can be queried.
type wireCodecProvider interface {
	WireCodec() WireCodec
}

// ConnCodec returns conn's active wire codec. Conns that do not expose one
// (wrappers, test fakes) report the JSON codec, which matches how CallBatch
// falls back to v1 framing for them.
func ConnCodec(conn Conn) WireCodec {
	if p, ok := conn.(wireCodecProvider); ok {
		if c := p.WireCodec(); c != nil {
			return c
		}
	}
	return jsonWireCodec{}
}

// jsonWireCodec is the v1 accounting: JSON payloads and the historical
// 56-byte envelope estimate.
type jsonWireCodec struct{}

func (jsonWireCodec) Name() string { return "json" }

func (jsonWireCodec) EncodeArgs(service, method string, args any) ([]byte, bool, error) {
	if args == nil {
		return nil, false, nil
	}
	b, err := json.Marshal(args)
	if err != nil {
		return nil, false, fmt.Errorf("transport: encoding args: %w", err)
	}
	return b, false, nil
}

func (jsonWireCodec) SubSize(service, method string, payloadLen int) int {
	return payloadLen + len(service) + len(method) + subRequestOverhead
}

func (jsonWireCodec) MaxChunkBytes() int { return maxBatchChunkBytes }

// binaryWireCodec accounts for the negotiated binary framing.
type binaryWireCodec struct{ table *wireTable }

func (binaryWireCodec) Name() string { return "binary" }

func (c binaryWireCodec) EncodeArgs(service, method string, args any) ([]byte, bool, error) {
	payload, enc, err := encodeArgsPayload(c.table, service, method, args)
	return payload, enc == encTyped, err
}

func (c binaryWireCodec) SubSize(service, method string, payloadLen int) int {
	return callWireSize(c.table, service+"."+method, payloadLen)
}

func (binaryWireCodec) MaxChunkBytes() int { return maxBatchChunkBytes }
