// Package transport implements DataBlinder's gateway↔cloud communication
// channel: a length-prefixed JSON RPC protocol over TCP, plus an in-process
// loopback implementation with identical serialization semantics.
//
// Every data protection tactic is a distributed protocol (paper §4.2);
// its gateway half reaches its cloud half exclusively through a Conn, so
// the same tactic code runs single-process (benchmarks, tests) or truly
// distributed (cmd/gateway + cmd/cloudserver).
//
// The TCP path is fully pipelined: each socket carries an unbounded number
// of in-flight calls correlated by request id, with a dedicated reader
// goroutine delivering out-of-order responses, and the server dispatches
// every request on its own goroutine (bounded by a semaphore) so pipelined
// requests genuinely overlap. Round trips therefore cost latency, not
// occupancy — the property the paper's §6 evaluation shows dominates
// end-to-end cost once tactics are distributed.
package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameSize bounds a single request or response frame (16 MiB). Frames
// beyond this indicate a protocol violation or abuse.
const MaxFrameSize = 16 << 20

// Common errors.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
	ErrClosed        = errors.New("transport: connection closed")
	ErrNoHandler     = errors.New("transport: no handler registered")
)

// Structured remote error codes. Handlers attach them with WithCode; the
// mux preserves them across the wire so clients can branch without
// matching message substrings.
const (
	CodeNotFound      = "not_found"
	CodeAlreadyExists = "already_exists"
)

// RemoteError is an error returned by the remote handler, preserved across
// the wire.
type RemoteError struct {
	// Code is the structured error code set by the handler via WithCode,
	// or "" when the handler returned an uncoded error.
	Code string
	Msg  string
}

func (e *RemoteError) Error() string { return e.Msg }

// ErrorCode implements the coded-error interface, so codes survive
// re-wrapping (e.g. a gateway proxying a cloud error onwards).
func (e *RemoteError) ErrorCode() string { return e.Code }

// codedError attaches a structured code to an error.
type codedError struct {
	err  error
	code string
}

func (e *codedError) Error() string     { return e.err.Error() }
func (e *codedError) Unwrap() error     { return e.err }
func (e *codedError) ErrorCode() string { return e.code }

// WithCode attaches a structured code to err. The mux serializes the code
// into the response so the client-side RemoteError carries it.
func WithCode(err error, code string) error {
	if err == nil {
		return nil
	}
	return &codedError{err: err, code: code}
}

// ErrorCode extracts the structured code from err ("" if none). It unwraps
// through fmt.Errorf chains and across RemoteError.
func ErrorCode(err error) string {
	var c interface{ ErrorCode() string }
	if errors.As(err, &c) {
		return c.ErrorCode()
	}
	return ""
}

// request is the wire format of a call.
type request struct {
	ID      uint64          `json:"id"`
	Service string          `json:"service"`
	Method  string          `json:"method"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// response is the wire format of a reply.
type response struct {
	ID      uint64          `json:"id"`
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Code    string          `json:"code,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Handler processes one RPC. The returned value is JSON-encoded into the
// response payload.
type Handler func(ctx context.Context, payload json.RawMessage) (any, error)

// Mux routes service.method names to handlers. The zero value is unusable;
// construct with NewMux. Handle calls must complete before Serve starts.
//
// Every mux serves the reserved BatchService, which executes a slice of
// sub-requests received in one frame (see CallBatch).
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewMux returns an empty router (plus the built-in batch executor).
func NewMux() *Mux {
	m := &Mux{handlers: make(map[string]Handler)}
	m.handlers[BatchService+"."+BatchMethod] = m.execBatch
	return m
}

// Handle registers h for service.method, replacing any previous handler.
func (m *Mux) Handle(service, method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[service+"."+method] = h
}

// Services returns the registered service.method names, unordered.
// Reserved internal services (leading underscore) are omitted.
func (m *Mux) Services() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.handlers))
	for k := range m.handlers {
		if strings.HasPrefix(k, "_") {
			continue
		}
		out = append(out, k)
	}
	return out
}

func (m *Mux) dispatch(ctx context.Context, req *request) *response {
	m.mu.RLock()
	h, ok := m.handlers[req.Service+"."+req.Method]
	m.mu.RUnlock()
	if !ok {
		return &response{ID: req.ID, Error: fmt.Sprintf("%v: %s.%s", ErrNoHandler, req.Service, req.Method)}
	}
	result, err := h(ctx, req.Payload)
	if err != nil {
		return &response{ID: req.ID, Error: err.Error(), Code: ErrorCode(err)}
	}
	payload, err := json.Marshal(result)
	if err != nil {
		return &response{ID: req.ID, Error: fmt.Sprintf("transport: encoding response: %v", err)}
	}
	return &response{ID: req.ID, OK: true, Payload: payload}
}

// Conn is a client connection to a cloud endpoint. Implementations are safe
// for concurrent use.
type Conn interface {
	// Call invokes service.method with args (JSON-encoded) and decodes the
	// response payload into reply (which may be nil to discard it).
	Call(ctx context.Context, service, method string, args, reply any) error
	// Close releases the connection. Subsequent calls return ErrClosed.
	Close() error
}

// maxPooledBuf caps the capacity of recycled frame buffers so one huge
// frame does not pin megabytes in the pools forever.
const maxPooledBuf = 64 << 10

// framePools recycle the encode buffer (header + JSON body, written as a
// single frame) and the decode body across frames. Decoded values do not
// alias the pooled body: json.RawMessage.UnmarshalJSON copies its input,
// and every other frame field is a string or number.
var (
	encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	bodyPool   = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}
)

// writeFrame writes one length-prefixed JSON value as a single Write.
func writeFrame(w io.Writer, v any) error {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			encBufPool.Put(buf)
		}
	}()
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("transport: encoding frame: %w", err)
	}
	frame := buf.Bytes()
	frame = frame[:len(frame)-1] // drop the Encoder's trailing newline
	body := frame[4:]
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	_, err := w.Write(frame)
	return err
}

// readFrame reads one length-prefixed JSON value into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	bp := bodyPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	body := (*bp)[:n]
	defer func() {
		if cap(body) <= maxPooledBuf {
			*bp = body
			bodyPool.Put(bp)
		}
	}()
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("transport: decoding frame: %w", err)
	}
	return nil
}

// DefaultMaxInFlight is the default per-server bound on concurrently
// executing handlers.
const DefaultMaxInFlight = 256

// Server serves a Mux over TCP. One reader goroutine per connection, one
// worker goroutine per request (bounded by a server-wide semaphore), so
// pipelined requests from a single socket execute concurrently and may
// complete out of order; the client correlates responses by request id.
type Server struct {
	mux *Mux

	// MaxInFlight bounds concurrently executing handlers across all
	// connections (DefaultMaxInFlight if zero). Set before Listen.
	MaxInFlight int

	sem    chan struct{}
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer constructs a server for mux.
func NewServer(mux *Mux) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{mux: mux, conns: make(map[net.Conn]struct{}), ctx: ctx, cancel: cancel}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	if s.sem == nil {
		n := s.MaxInFlight
		if n <= 0 {
			n = DefaultMaxInFlight
		}
		s.sem = make(chan struct{}, n)
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Responses from concurrent workers interleave on the socket; writeMu
	// keeps individual frames atomic.
	var writeMu sync.Mutex
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return // EOF, broken frame, or peer reset: drop the connection
		}
		select {
		case s.sem <- struct{}{}:
		case <-s.ctx.Done():
			return
		}
		s.wg.Add(1)
		go func(req request) {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			resp := s.mux.dispatch(s.ctx, &req)
			writeMu.Lock()
			err := writeFrame(conn, resp)
			writeMu.Unlock()
			if err != nil {
				conn.Close() // wakes the read loop; connection is torn down
			}
		}(req)
	}
}

// Close stops accepting, cancels in-flight handlers, closes all
// connections, and waits for workers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// pending is one in-flight call awaiting its response.
type pending struct {
	ch chan *response // buffered(1); the reader delivers exactly once
}

// msock is one multiplexed client socket: a single writer-side mutex
// serializes frame writes, a dedicated reader goroutine correlates
// responses to pending calls by request id.
type msock struct {
	c       net.Conn
	writeMu sync.Mutex

	mu     sync.Mutex
	calls  map[uint64]*pending
	err    error         // terminal socket error, set once before closing dead
	dead   chan struct{} // closed when the reader exits
	closed bool
}

func newMsock(c net.Conn) *msock {
	m := &msock{c: c, calls: make(map[uint64]*pending), dead: make(chan struct{})}
	go m.readLoop()
	return m
}

// readLoop delivers responses until the socket fails, then drains every
// pending call with the terminal error.
func (m *msock) readLoop() {
	for {
		var resp response
		if err := readFrame(m.c, &resp); err != nil {
			m.fail(fmt.Errorf("transport: read: %w", err))
			return
		}
		m.mu.Lock()
		p := m.calls[resp.ID]
		delete(m.calls, resp.ID)
		m.mu.Unlock()
		if p != nil {
			p.ch <- &resp // buffered; never blocks
		}
		// No pending entry: the caller gave up (timeout/cancel); the
		// response is discarded and the socket stays usable.
	}
}

// fail marks the socket dead and wakes every pending caller.
func (m *msock) fail(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	m.calls = nil // callers learn the error via dead; entries are dropped
	m.mu.Unlock()
	m.c.Close()
	close(m.dead)
}

// register files a pending call under id. It fails if the socket is dead.
func (m *msock) register(id uint64, p *pending) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.err
	}
	m.calls[id] = p
	return nil
}

// deregister abandons a pending call (timeout/cancel). The response, if it
// ever arrives, is discarded by the read loop.
func (m *msock) deregister(id uint64) {
	m.mu.Lock()
	if m.calls != nil {
		delete(m.calls, id)
	}
	m.mu.Unlock()
}

// socketSlot lazily (re)dials one pool position. Slots fail independently:
// a dead socket only costs the calls in flight on it, and the next call on
// the slot redials.
type socketSlot struct {
	mu  sync.Mutex
	cur *msock // nil until dialed or after a failure was observed
}

// TCPClient is a Conn over a pool of multiplexed TCP sockets. Calls are
// distributed round-robin; every socket carries an unbounded number of
// concurrent in-flight calls (requests are pipelined, responses may return
// out of order), so PoolSize=1 already sustains N concurrent callers
// without serializing them. Additional sockets only add TCP-level
// parallelism (congestion windows, kernel buffers).
type TCPClient struct {
	addr    string
	timeout time.Duration

	nextID uint64 // atomic; request ids unique across the pool
	rr     uint32 // atomic round-robin cursor

	mu    sync.Mutex
	slots []*socketSlot
	done  bool
}

// DialOptions configures Dial.
type DialOptions struct {
	// PoolSize is the number of sockets (default 4). Because every socket
	// is pipelined, this bounds TCP-level parallelism, not in-flight calls.
	PoolSize int
	// Timeout bounds each dial and each call round trip (default 30s).
	Timeout time.Duration
}

// Dial connects to a Server at addr.
func Dial(addr string, opts DialOptions) (*TCPClient, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 4
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	c := &TCPClient{
		addr:    addr,
		timeout: opts.Timeout,
		slots:   make([]*socketSlot, opts.PoolSize),
	}
	for i := range c.slots {
		c.slots[i] = &socketSlot{}
	}
	// Dial the first socket eagerly so an unreachable server fails fast;
	// the remaining slots dial lazily on first use.
	sock, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c.slots[0].cur = newMsock(sock)
	return c, nil
}

// acquire returns a healthy multiplexed socket for the next call, redialing
// the slot if its previous socket died.
func (c *TCPClient) acquire() (*msock, error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	n := len(c.slots)
	c.mu.Unlock()

	slot := c.slots[int(atomic.AddUint32(&c.rr, 1))%n]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if slot.cur != nil {
		select {
		case <-slot.cur.dead:
			slot.cur = nil // observed failure; fall through to redial
		default:
			return slot.cur, nil
		}
	}
	sock, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		sock.Close()
		return nil, ErrClosed
	}
	c.mu.Unlock()
	slot.cur = newMsock(sock)
	return slot.cur, nil
}

// Call implements Conn. The call is pipelined: it occupies the socket only
// for the duration of the frame write, then waits for its correlated
// response while other calls proceed on the same socket.
//
// A call that fails because its socket died mid-flight (write error, or
// the reader exiting before the response arrived) is transparently
// replayed exactly once: acquire redials the dead slot, and only this call
// is resent — neighbouring calls that failed on the same socket each make
// their own retry decision. If the replay fails too, the original error is
// surfaced. Timeouts and context cancellations are never replayed (the
// request may still be executing server-side), and remote errors are
// definitive answers, not transport failures.
func (c *TCPClient) Call(ctx context.Context, service, method string, args, reply any) error {
	var payload json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("transport: encoding args: %w", err)
		}
		payload = b
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	resp, err, sockDead := c.roundTrip(ctx, service, method, payload)
	if sockDead && ctx.Err() == nil {
		if resp2, err2, dead2 := c.roundTrip(ctx, service, method, payload); err2 == nil && !dead2 {
			resp, err = resp2, nil
		}
		// Replay failed: report the original failure, not the retry's.
	}
	if err != nil {
		return err
	}
	if !resp.OK {
		return &RemoteError{Code: resp.Code, Msg: resp.Error}
	}
	if reply != nil && len(resp.Payload) > 0 {
		if err := json.Unmarshal(resp.Payload, reply); err != nil {
			return fmt.Errorf("transport: decoding reply: %w", err)
		}
	}
	return nil
}

// roundTrip sends one request and waits for its response. sockDead reports
// that the failure was the socket dying under this call — the class of
// error a single redial-and-replay can heal — as opposed to a timeout,
// cancellation, client close, or a response that actually arrived.
func (c *TCPClient) roundTrip(ctx context.Context, service, method string, payload json.RawMessage) (resp *response, err error, sockDead bool) {
	m, err := c.acquire()
	if err != nil {
		return nil, err, false
	}

	id := atomic.AddUint64(&c.nextID, 1)
	req := &request{ID: id, Service: service, Method: method, Payload: payload}
	p := &pending{ch: make(chan *response, 1)}
	if err := m.register(id, p); err != nil {
		// The socket died between acquire and register; same class as a
		// write failure (unless the client itself was closed).
		return nil, err, !errors.Is(err, ErrClosed)
	}

	// Frame writes are short; bound them so a wedged peer cannot hold the
	// write mutex forever. Read timeouts are per-call (the timer below),
	// never socket-wide: a slow response must not fail its neighbours.
	m.writeMu.Lock()
	werr := m.c.SetWriteDeadline(time.Now().Add(c.timeout))
	if werr == nil {
		werr = writeFrame(m.c, req)
	}
	m.writeMu.Unlock()
	if werr != nil {
		m.deregister(id)
		// A half-written frame poisons the stream for every call on the
		// socket; kill it so they fail fast and the slot redials.
		m.fail(fmt.Errorf("transport: write: %w", werr))
		return nil, fmt.Errorf("transport: write: %w", werr), true
	}

	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case resp = <-p.ch:
	case <-ctx.Done():
		m.deregister(id)
		return nil, ctx.Err(), false
	case <-timer.C:
		m.deregister(id)
		return nil, fmt.Errorf("transport: call %s.%s: timeout after %v", service, method, c.timeout), false
	case <-m.dead:
		// The reader exited; either our response will never come, or it
		// raced in just before the failure.
		select {
		case resp = <-p.ch:
		default:
			return nil, m.err, !errors.Is(m.err, ErrClosed)
		}
	}
	return resp, nil, false
}

// Close implements Conn.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil
	}
	c.done = true
	slots := c.slots
	c.mu.Unlock()
	for _, slot := range slots {
		slot.mu.Lock()
		if slot.cur != nil {
			slot.cur.fail(ErrClosed)
			slot.cur = nil
		}
		slot.mu.Unlock()
	}
	return nil
}

// Loopback is a Conn that dispatches directly into a Mux in-process, still
// passing every payload through JSON so serialization behaviour matches the
// TCP path exactly. It is used by benchmarks (scenario S_B/S_C single-host
// runs) and tests. Calls dispatch on the caller's goroutine, so it is as
// concurrent as its callers.
type Loopback struct {
	mux *Mux

	mu     sync.Mutex
	closed bool
}

// NewLoopback returns a loopback connection to mux.
func NewLoopback(mux *Mux) *Loopback {
	return &Loopback{mux: mux}
}

// Call implements Conn.
func (l *Loopback) Call(ctx context.Context, service, method string, args, reply any) error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var payload json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("transport: encoding args: %w", err)
		}
		payload = b
	}
	resp := l.mux.dispatch(ctx, &request{ID: 1, Service: service, Method: method, Payload: payload})
	if !resp.OK {
		return &RemoteError{Code: resp.Code, Msg: resp.Error}
	}
	if reply != nil && len(resp.Payload) > 0 {
		if err := json.Unmarshal(resp.Payload, reply); err != nil {
			return fmt.Errorf("transport: decoding reply: %w", err)
		}
	}
	return nil
}

// Close implements Conn.
func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// IsNotFoundError reports whether err is a remote "not found" error.
// Coded errors (CodeNotFound) are authoritative; uncoded remote errors
// fall back to message matching for compatibility with older peers.
func IsNotFoundError(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	if re.Code != "" {
		return re.Code == CodeNotFound
	}
	return strings.Contains(re.Msg, "not found")
}

// IsAlreadyExistsError reports whether err is a remote "already exists"
// error (e.g. an insert hitting a duplicate document id).
func IsAlreadyExistsError(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	if re.Code != "" {
		return re.Code == CodeAlreadyExists
	}
	return strings.Contains(re.Msg, "already exists")
}

var (
	_ Conn = (*TCPClient)(nil)
	_ Conn = (*Loopback)(nil)
)
