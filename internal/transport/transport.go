// Package transport implements DataBlinder's gateway↔cloud communication
// channel: a length-prefixed JSON RPC protocol over TCP, plus an in-process
// loopback implementation with identical serialization semantics.
//
// Every data protection tactic is a distributed protocol (paper §4.2);
// its gateway half reaches its cloud half exclusively through a Conn, so
// the same tactic code runs single-process (benchmarks, tests) or truly
// distributed (cmd/gateway + cmd/cloudserver).
package transport

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// MaxFrameSize bounds a single request or response frame (16 MiB). Frames
// beyond this indicate a protocol violation or abuse.
const MaxFrameSize = 16 << 20

// Common errors.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
	ErrClosed        = errors.New("transport: connection closed")
	ErrNoHandler     = errors.New("transport: no handler registered")
)

// RemoteError is an error returned by the remote handler, preserved across
// the wire.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return e.Msg }

// request is the wire format of a call.
type request struct {
	ID      uint64          `json:"id"`
	Service string          `json:"service"`
	Method  string          `json:"method"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// response is the wire format of a reply.
type response struct {
	ID      uint64          `json:"id"`
	OK      bool            `json:"ok"`
	Error   string          `json:"error,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Handler processes one RPC. The returned value is JSON-encoded into the
// response payload.
type Handler func(ctx context.Context, payload json.RawMessage) (any, error)

// Mux routes service.method names to handlers. The zero value is unusable;
// construct with NewMux. Handle calls must complete before Serve starts.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewMux returns an empty router.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler)}
}

// Handle registers h for service.method, replacing any previous handler.
func (m *Mux) Handle(service, method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[service+"."+method] = h
}

// Services returns the registered service.method names, unordered.
func (m *Mux) Services() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.handlers))
	for k := range m.handlers {
		out = append(out, k)
	}
	return out
}

func (m *Mux) dispatch(ctx context.Context, req *request) *response {
	m.mu.RLock()
	h, ok := m.handlers[req.Service+"."+req.Method]
	m.mu.RUnlock()
	if !ok {
		return &response{ID: req.ID, Error: fmt.Sprintf("%v: %s.%s", ErrNoHandler, req.Service, req.Method)}
	}
	result, err := h(ctx, req.Payload)
	if err != nil {
		return &response{ID: req.ID, Error: err.Error()}
	}
	payload, err := json.Marshal(result)
	if err != nil {
		return &response{ID: req.ID, Error: fmt.Sprintf("transport: encoding response: %v", err)}
	}
	return &response{ID: req.ID, OK: true, Payload: payload}
}

// Conn is a client connection to a cloud endpoint. Implementations are safe
// for concurrent use.
type Conn interface {
	// Call invokes service.method with args (JSON-encoded) and decodes the
	// response payload into reply (which may be nil to discard it).
	Call(ctx context.Context, service, method string, args, reply any) error
	// Close releases the connection. Subsequent calls return ErrClosed.
	Close() error
}

// writeFrame writes one length-prefixed JSON value.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("transport: encoding frame: %w", err)
	}
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON value into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("transport: decoding frame: %w", err)
	}
	return nil
}

// Server serves a Mux over TCP. One goroutine per connection, one request
// at a time per connection (pipelining is provided by the client pool).
type Server struct {
	mux *Mux

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer constructs a server for mux.
func NewServer(mux *Mux) *Server {
	return &Server{mux: mux, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	ctx := context.Background()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return // EOF, broken frame, or peer reset: drop the connection
		}
		resp := s.mux.dispatch(ctx, &req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// tcpConn is one pooled client socket.
type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	next uint64
}

// TCPClient is a Conn over a pool of TCP sockets. Concurrent calls are
// distributed across the pool; each socket carries one call at a time.
type TCPClient struct {
	addr    string
	timeout time.Duration

	pool chan *tcpConn
	mu   sync.Mutex
	all  []*tcpConn
	done bool
}

// DialOptions configures Dial.
type DialOptions struct {
	// PoolSize is the number of sockets (default 4).
	PoolSize int
	// Timeout bounds each dial and each call round trip (default 30s).
	Timeout time.Duration
}

// Dial connects to a Server at addr.
func Dial(addr string, opts DialOptions) (*TCPClient, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 4
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	c := &TCPClient{
		addr:    addr,
		timeout: opts.Timeout,
		pool:    make(chan *tcpConn, opts.PoolSize),
	}
	for i := 0; i < opts.PoolSize; i++ {
		sock, err := net.DialTimeout("tcp", addr, opts.Timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		tc := &tcpConn{c: sock}
		c.mu.Lock()
		c.all = append(c.all, tc)
		c.mu.Unlock()
		c.pool <- tc
	}
	return c, nil
}

// Call implements Conn.
func (c *TCPClient) Call(ctx context.Context, service, method string, args, reply any) error {
	var payload json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("transport: encoding args: %w", err)
		}
		payload = b
	}
	var tc *tcpConn
	select {
	case tc = <-c.pool:
	case <-ctx.Done():
		return ctx.Err()
	}
	resp, err := c.roundTrip(ctx, tc, service, method, payload)
	if err != nil {
		// The socket may hold a half-written frame; reconnect before
		// reuse. If the reconnect itself fails (server down), the broken
		// socket goes back to the pool anyway — the next call fails fast
		// on it and retries the reconnect, so the pool never drains.
		_ = c.reconnect(tc)
		c.pool <- tc
		return err
	}
	c.pool <- tc
	if !resp.OK {
		return &RemoteError{Msg: resp.Error}
	}
	if reply != nil && len(resp.Payload) > 0 {
		if err := json.Unmarshal(resp.Payload, reply); err != nil {
			return fmt.Errorf("transport: decoding reply: %w", err)
		}
	}
	return nil
}

func (c *TCPClient) roundTrip(ctx context.Context, tc *tcpConn, service, method string, payload json.RawMessage) (*response, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.next++
	req := &request{ID: tc.next, Service: service, Method: method, Payload: payload}

	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := tc.c.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("transport: set deadline: %w", err)
	}
	if err := writeFrame(tc.c, req); err != nil {
		return nil, fmt.Errorf("transport: write: %w", err)
	}
	var resp response
	if err := readFrame(tc.c, &resp); err != nil {
		return nil, fmt.Errorf("transport: read: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("transport: response id %d for request %d", resp.ID, req.ID)
	}
	return &resp, nil
}

func (c *TCPClient) reconnect(tc *tcpConn) error {
	c.mu.Lock()
	done := c.done
	c.mu.Unlock()
	if done {
		return ErrClosed
	}
	sock, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	tc.c.Close()
	tc.c = sock
	tc.mu.Unlock()
	return nil
}

// Close implements Conn.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil
	}
	c.done = true
	all := c.all
	c.mu.Unlock()
	for _, tc := range all {
		tc.mu.Lock()
		tc.c.Close()
		tc.mu.Unlock()
	}
	return nil
}

// Loopback is a Conn that dispatches directly into a Mux in-process, still
// passing every payload through JSON so serialization behaviour matches the
// TCP path exactly. It is used by benchmarks (scenario S_B/S_C single-host
// runs) and tests.
type Loopback struct {
	mux *Mux

	mu     sync.Mutex
	closed bool
}

// NewLoopback returns a loopback connection to mux.
func NewLoopback(mux *Mux) *Loopback {
	return &Loopback{mux: mux}
}

// Call implements Conn.
func (l *Loopback) Call(ctx context.Context, service, method string, args, reply any) error {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var payload json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("transport: encoding args: %w", err)
		}
		payload = b
	}
	resp := l.mux.dispatch(ctx, &request{ID: 1, Service: service, Method: method, Payload: payload})
	if !resp.OK {
		return &RemoteError{Msg: resp.Error}
	}
	if reply != nil && len(resp.Payload) > 0 {
		if err := json.Unmarshal(resp.Payload, reply); err != nil {
			return fmt.Errorf("transport: decoding reply: %w", err)
		}
	}
	return nil
}

// Close implements Conn.
func (l *Loopback) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// IsNotFoundError reports whether err is a remote "not found" error. Cloud
// handlers encode store misses as plain messages; this helper lets gateway
// code branch on them without importing store packages.
func IsNotFoundError(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "not found")
}

var (
	_ Conn = (*TCPClient)(nil)
	_ Conn = (*Loopback)(nil)
)
